//===- tools/dspec.cpp - Command-line data specializer -----------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `dspec` command-line tool: reads a dsc source file, specializes one
/// of its functions on a user-supplied input partition, and prints the
/// cache loader and cache reader (Figure 2 style) plus the cache layout.
///
///   dspec FILE --fragment NAME --vary a,b[,c...]
///         [--limit BYTES] [--reassoc] [--no-phi] [--speculate]
///         [--show-normalized] [--stats]
///
/// Snapshot subcommands persist a specialization (and its loader-filled
/// cache arena) across processes:
///
///   dspec snapshot save (--gallery SHADER | FILE --fragment NAME)
///         --out SNAP [--vary P1[,P2...]] [--width W] [--height H]
///         [--controls v1,v2,...] [--limit BYTES] [--reassoc] [--no-phi]
///         [--speculate]
///   dspec snapshot info SNAP
///   dspec snapshot verify SNAP
///
/// Service subcommands run the long-lived specialization service and talk
/// to it over a unix-domain socket or TCP (see docs/SERVICE.md):
///
///   dspec serve (--socket PATH | --listen HOST:PORT) [--io-threads N]
///         [--threads N] [--tile PIXELS] [--cache-units N] [--queue N]
///         [--dispatchers N] [--exec-tier switch|threaded|batched|native]
///         [--quota-rps R] [--quota-burst B] [--client-queue N]
///         [--read-deadline MS] [--stream-chunk PIXELS]
///         [--spill-dir PATH] [--spill-cap-mb N]
///   dspec request (--socket PATH | --tcp HOST:PORT) --gallery SHADER
///         [--width W] [--height H] [--vary P1[,P2...]] [--controls v1,...]
///         [--deadline MS] [--repeat N] [--stream] [--check-plain]
///         [--ppm PATH]
///   dspec request (--socket PATH | --tcp HOST:PORT) --statsz
///
/// Exit codes (uniform across every subcommand):
///   0  success
///   1  usage error (bad flags or arguments)
///   2  runtime failure (I/O, parse/specialize error, trap, failed verify)
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "engine/RenderEngine.h"
#include "jit/Jit.h"
#include "lang/ASTPrinter.h"
#include "net/Acceptor.h"
#include "net/NetServer.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "service/Transport.h"
#include "shading/ShaderGallery.h"
#include "shading/ShaderLab.h"
#include "snapshot/Snapshot.h"
#include "support/Crc32.h"
#include "support/StringUtil.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

using namespace dspec;

namespace {

// Uniform exit codes, printed by --help and used by every subcommand.
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitFailure = 2;

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s FILE --fragment NAME --vary P1[,P2...]\n"
      "            [--limit BYTES] [--llc-bytes N|auto --arena-pixels N]\n"
      "            [--reassoc] [--no-phi] [--speculate]\n"
      "            [--explain] [--variants N]\n"
      "            [--show-normalized] [--stats]\n"
      "       %s snapshot save (--gallery SHADER | FILE --fragment NAME)\n"
      "            --out SNAP [--vary P1[,P2...]] [--width W] [--height H]\n"
      "            [--controls v1,v2,...] [--limit BYTES] [--reassoc]\n"
      "            [--no-phi] [--speculate] [--variants N]\n"
      "       %s snapshot info SNAP\n"
      "       %s snapshot verify SNAP\n"
      "       %s serve (--socket PATH | --listen HOST:PORT) [--io-threads N]\n"
      "            [--threads N] [--tile PIXELS] [--cache-units N]\n"
      "            [--cache-shards N] [--queue N] [--dispatchers N]\n"
      "            [--variants N]\n"
      "            [--exec-tier switch|threaded|batched|native] [--quota-rps R]\n"
      "            [--arena-layout pixel-major|slot-major|tile-blocked|auto]\n"
      "            [--llc-bytes N|auto]\n"
      "            [--quota-burst B] [--client-queue N] [--read-deadline MS]\n"
      "            [--stream-chunk PIXELS] [--spill-dir PATH]\n"
      "            [--spill-cap-mb N]\n"
      "       %s request (--socket PATH | --tcp HOST:PORT) --gallery SHADER\n"
      "            [--width W] [--height H] [--vary P1[,P2...]]\n"
      "            [--controls v1,...] [--deadline MS] [--repeat N]\n"
      "            [--stream] [--check-plain] [--ppm PATH] [--variants N]\n"
      "       %s request (--socket PATH | --tcp HOST:PORT) --statsz\n"
      "\n"
      "Splits the named dsc function into a cache loader and cache reader\n"
      "for the input partition where P1, P2, ... vary and every other\n"
      "parameter is fixed (Knoblock & Ruf, PLDI 1996). The snapshot\n"
      "subcommands persist the split programs plus a loader-filled cache\n"
      "arena so fresh processes warm-start straight into reader frames.\n"
      "The serve/request subcommands run the specialization service: a\n"
      "long-lived daemon with a keyed cache of specialization units.\n"
      "--variants N enables polyvariant specialization: up to N\n"
      "property-keyed reader variants (parameter pinned to 0 or 1) beside\n"
      "the generic one.\n"
      "\n"
      "exit codes: 0 success, 1 usage error, 2 runtime/verify failure\n",
      Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0);
}

bool readFileToString(const char *Path, std::string &Out) {
  std::ifstream File(Path);
  if (!File)
    return false;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Out = Buffer.str();
  return true;
}

int snapshotSave(int Argc, char **Argv) {
  const char *FilePath = nullptr;
  const char *GalleryName = nullptr;
  const char *FragmentName = nullptr;
  const char *OutPath = nullptr;
  std::vector<std::string> Varying;
  std::vector<float> UserControls;
  bool HaveUserControls = false;
  unsigned Width = 48, Height = 32;
  unsigned VariantCount = 0;
  SpecializerOptions Options;

  for (int I = 0; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg);
        std::exit(kExitUsage);
      }
      return Argv[++I];
    };
    if (std::strcmp(Arg, "--gallery") == 0) {
      GalleryName = NextValue();
    } else if (std::strcmp(Arg, "--fragment") == 0) {
      FragmentName = NextValue();
    } else if (std::strcmp(Arg, "--out") == 0 || std::strcmp(Arg, "-o") == 0) {
      OutPath = NextValue();
    } else if (std::strcmp(Arg, "--vary") == 0) {
      for (const std::string &Name : splitString(NextValue(), ','))
        if (!Name.empty())
          Varying.push_back(Name);
    } else if (std::strcmp(Arg, "--width") == 0) {
      Width = static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    } else if (std::strcmp(Arg, "--height") == 0) {
      Height = static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    } else if (std::strcmp(Arg, "--controls") == 0) {
      HaveUserControls = true;
      for (const std::string &Text : splitString(NextValue(), ','))
        if (!Text.empty())
          UserControls.push_back(std::strtof(Text.c_str(), nullptr));
    } else if (std::strcmp(Arg, "--limit") == 0) {
      Options.CacheByteLimit = std::strtoul(NextValue(), nullptr, 10);
    } else if (std::strcmp(Arg, "--reassoc") == 0) {
      Options.EnableReassociate = true;
    } else if (std::strcmp(Arg, "--no-phi") == 0) {
      Options.EnableJoinNormalize = false;
    } else if (std::strcmp(Arg, "--speculate") == 0) {
      Options.AllowSpeculation = true;
    } else if (std::strcmp(Arg, "--variants") == 0) {
      VariantCount =
          static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      return kExitUsage;
    } else if (!FilePath) {
      FilePath = Arg;
    } else {
      std::fprintf(stderr, "error: multiple input files\n");
      return kExitUsage;
    }
  }

  if (!OutPath || (!GalleryName && (!FilePath || !FragmentName)) ||
      (GalleryName && FilePath)) {
    std::fprintf(stderr,
                 "error: snapshot save needs --out and either --gallery "
                 "SHADER or FILE --fragment NAME\n");
    return kExitUsage;
  }
  if (Width == 0 || Height == 0) {
    std::fprintf(stderr, "error: --width/--height must be positive\n");
    return kExitUsage;
  }

  std::string Source;
  std::string Fragment;
  std::vector<float> DefaultControls;
  if (GalleryName) {
    const ShaderInfo *Info = findShader(GalleryName);
    if (!Info) {
      std::fprintf(stderr, "error: no gallery shader named '%s'\n",
                   GalleryName);
      return kExitFailure;
    }
    Source = Info->Source;
    Fragment = Info->Name;
    for (const ControlParam &Control : Info->Controls)
      DefaultControls.push_back(Control.Default);
    if (Varying.empty())
      Varying.push_back(Info->Controls.front().Name);
  } else {
    if (!readFileToString(FilePath, Source)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", FilePath);
      return kExitFailure;
    }
    Fragment = FragmentName;
    if (Varying.empty()) {
      std::fprintf(stderr, "error: --vary is required with a FILE input\n");
      return kExitUsage;
    }
  }

  auto Unit = parseUnit(Source);
  if (!Unit->ok()) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return kExitFailure;
  }
  auto Spec = specializeAndCompile(*Unit, Fragment, Varying, Options);
  if (!Spec) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return kExitFailure;
  }

  if (Spec->LoaderChunk.NumParams < RenderEngine::NumPixelParams) {
    std::fprintf(stderr,
                 "error: '%s' takes %u parameters; a renderable fragment "
                 "needs the %u per-pixel inputs (uv, P, N, I) first\n",
                 Fragment.c_str(), Spec->LoaderChunk.NumParams,
                 RenderEngine::NumPixelParams);
    return kExitFailure;
  }
  unsigned NumControls =
      Spec->LoaderChunk.NumParams - RenderEngine::NumPixelParams;
  std::vector<float> Controls(NumControls, 1.0f);
  if (!DefaultControls.empty() && DefaultControls.size() == NumControls)
    Controls = DefaultControls;
  if (HaveUserControls) {
    if (UserControls.size() != NumControls) {
      std::fprintf(stderr,
                   "error: --controls has %zu value(s); '%s' takes %u\n",
                   UserControls.size(), Fragment.c_str(), NumControls);
      return kExitUsage;
    }
    Controls = UserControls;
  }

  RenderGrid Grid(Width, Height);
  RenderEngine Engine(1);
  CacheArena Arena;
  if (!Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid, Controls,
                         Arena)) {
    std::fprintf(stderr, "error: loader pass trapped: %s\n",
                 Engine.lastTrap().c_str());
    return kExitFailure;
  }

  // Polyvariant save: build the property-keyed variant set and run the
  // loader for each variant so every one warm-starts from the file.
  std::vector<SnapshotVariant> SnapVariants;
  if (VariantCount > 1) {
    VariantSetOptions VOptions;
    VOptions.MaxVariants = VariantCount;
    auto Set = specializeAndCompileVariants(*Unit, Fragment, Varying, Options,
                                            VOptions);
    if (!Set) {
      std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
      return kExitFailure;
    }
    for (CompiledVariant &V : Set->Variants) {
      if (V.Key.isGeneric())
        continue;
      SnapshotVariant SV;
      SV.Key = V.Key;
      SV.Label = V.Label;
      SV.Layout = V.Compiled.Spec.Layout;
      SV.Loader = std::move(V.Compiled.LoaderChunk);
      SV.Reader = std::move(V.Compiled.ReaderChunk);
      CacheArena VariantArena;
      if (!Engine.loaderPass(SV.Loader, SV.Layout, Grid, Controls,
                             VariantArena)) {
        std::fprintf(stderr, "error: loader pass for variant '%s' trapped: "
                             "%s\n",
                     SV.Label.c_str(), Engine.lastTrap().c_str());
        return kExitFailure;
      }
      SV.ArenaPixels = VariantArena.pixelCount();
      SV.ArenaStride = VariantArena.strideBytes();
      SV.ArenaBytes.assign(VariantArena.raw(),
                           VariantArena.raw() + VariantArena.totalBytes());
      SnapVariants.push_back(std::move(SV));
    }
  }

  SnapshotMeta Meta = SnapshotMeta::fromOptions(Options);
  Meta.FragmentName = Fragment;
  Meta.VaryingParams = Varying;
  Meta.GridWidth = Width;
  Meta.GridHeight = Height;
  Meta.Controls = Controls;

  std::string Error;
  if (!RenderEngine::saveSnapshot(OutPath, Meta, Spec->LoaderChunk,
                                  Spec->ReaderChunk, Spec->Spec.Layout, Arena,
                                  SnapVariants, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return kExitFailure;
  }

  std::printf("wrote %s: '%s' vary ", OutPath, Fragment.c_str());
  for (size_t I = 0; I < Varying.size(); ++I)
    std::printf("%s%s", I ? "," : "", Varying[I].c_str());
  std::printf("; %ux%u pixels x %uB cache = %zu arena bytes (%s)\n", Width,
              Height, Spec->Spec.Layout.totalBytes(), Arena.totalBytes(),
              Meta.optionsSummary().c_str());
  for (const SnapshotVariant &SV : SnapVariants)
    std::printf("  + variant %-20s %uB/pixel cache\n", SV.Label.c_str(),
                SV.ArenaStride);
  return kExitOk;
}

int snapshotInfo(const char *Path) {
  SnapshotFileInfo Info;
  std::string Error;
  if (!inspectSnapshotFile(Path, Info, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return kExitFailure;
  }
  std::printf("%s: snapshot format v%u, %llu bytes, %zu sections\n", Path,
              Info.FormatVersion,
              static_cast<unsigned long long>(Info.FileBytes),
              Info.Sections.size());
  std::printf("  %-8s %10s %12s %12s %s\n", "section", "offset", "bytes",
              "crc32", "check");
  for (const SnapshotSectionInfo &Section : Info.Sections)
    std::printf("  %-8s %10llu %12llu     %08x %s\n",
                snapshotSectionName(Section.Id),
                static_cast<unsigned long long>(Section.Offset),
                static_cast<unsigned long long>(Section.Bytes),
                Section.StoredCrc, Section.CrcOk ? "ok" : "FAIL");

  // Decode the payloads too when they are intact; info stays useful on a
  // partially corrupt file by degrading to the table above.
  SpecializationSnapshot Snap;
  if (!readSnapshotFile(Path, Snap, &Error)) {
    std::printf("  (payloads not decoded: %s)\n", Error.c_str());
    return kExitOk;
  }
  std::printf("  fragment '%s', vary ", Snap.Meta.FragmentName.c_str());
  for (size_t I = 0; I < Snap.Meta.VaryingParams.size(); ++I)
    std::printf("%s%s", I ? "," : "", Snap.Meta.VaryingParams[I].c_str());
  std::printf("; options: %s\n", Snap.Meta.optionsSummary().c_str());
  std::printf("  grid %ux%u, %u controls; loader %zu instrs, reader %zu "
              "instrs\n",
              Snap.Meta.GridWidth, Snap.Meta.GridHeight,
              static_cast<unsigned>(Snap.Meta.Controls.size()),
              Snap.Loader.Code.size(), Snap.Reader.Code.size());
  std::printf("  cache layout: %u slot(s), %u byte(s)/pixel\n",
              Snap.Layout.slotCount(), Snap.Layout.totalBytes());
  for (const CacheSlot &Slot : Snap.Layout.slots())
    std::printf("    slot%-3u %-6s offset %u\n", Slot.Index,
                Slot.SlotType.name(), Slot.Offset);
  if (!Snap.Variants.empty()) {
    std::printf("  %zu property variant(s):\n", Snap.Variants.size());
    for (const SnapshotVariant &V : Snap.Variants)
      std::printf("    %-20s reader %zu instrs, %uB/pixel cache\n",
                  V.Label.c_str(), V.Reader.Code.size(), V.ArenaStride);
  }
  return kExitOk;
}

int snapshotVerify(const char *Path) {
  SpecializationSnapshot Snap;
  std::string Error;
  if (!readSnapshotFile(Path, Snap, &Error)) {
    std::fprintf(stderr, "%s: FAILED\n  %s\n", Path, Error.c_str());
    return kExitFailure;
  }
  std::printf("%s: OK ('%s', %u pixels x %uB cache, all CRCs and chunk "
              "verification passed)\n",
              Path, Snap.Meta.FragmentName.c_str(), Snap.ArenaPixels,
              Snap.ArenaStride);
  return kExitOk;
}

int snapshotMain(int Argc, char **Argv) {
  if (Argc < 1) {
    std::fprintf(stderr,
                 "error: snapshot needs a subcommand (save|info|verify)\n");
    return kExitUsage;
  }
  const char *Sub = Argv[0];
  if (std::strcmp(Sub, "save") == 0)
    return snapshotSave(Argc - 1, Argv + 1);
  if (std::strcmp(Sub, "info") == 0 || std::strcmp(Sub, "verify") == 0) {
    if (Argc != 2) {
      std::fprintf(stderr, "error: snapshot %s takes exactly one file\n",
                   Sub);
      return kExitUsage;
    }
    return std::strcmp(Sub, "info") == 0 ? snapshotInfo(Argv[1])
                                         : snapshotVerify(Argv[1]);
  }
  std::fprintf(stderr, "error: unknown snapshot subcommand '%s'\n", Sub);
  return kExitUsage;
}

//===----------------------------------------------------------------------===//
// dspec serve
//===----------------------------------------------------------------------===//

volatile std::sig_atomic_t GStopRequested = 0;
/// eventfd the signal handler writes so the parked main thread wakes
/// immediately (write(2) is async-signal-safe; no polling interval).
int GStopEventFd = -1;

void handleStopSignal(int) {
  GStopRequested = 1;
  if (GStopEventFd >= 0) {
    uint64_t One = 1;
    [[maybe_unused]] ssize_t N = ::write(GStopEventFd, &One, sizeof(One));
  }
}

int serveMain(int Argc, char **Argv) {
  const char *SocketPath = nullptr;
  const char *ListenHostPort = nullptr;
  ServiceConfig Config;
  NetServerConfig Net;
  bool ArenaLayoutAuto = false;

  for (int I = 0; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg);
        std::exit(kExitUsage);
      }
      return Argv[++I];
    };
    auto NextUnsigned = [&]() -> unsigned {
      return static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    };
    if (std::strcmp(Arg, "--socket") == 0)
      SocketPath = NextValue();
    else if (std::strcmp(Arg, "--listen") == 0)
      ListenHostPort = NextValue();
    else if (std::strcmp(Arg, "--io-threads") == 0)
      Net.IoThreads = NextUnsigned();
    else if (std::strcmp(Arg, "--quota-rps") == 0)
      Net.QuotaRps = std::strtod(NextValue(), nullptr);
    else if (std::strcmp(Arg, "--quota-burst") == 0)
      Net.QuotaBurst = std::strtod(NextValue(), nullptr);
    else if (std::strcmp(Arg, "--client-queue") == 0)
      Net.MaxClientQueue = NextUnsigned();
    else if (std::strcmp(Arg, "--read-deadline") == 0)
      Net.ReadDeadlineMillis = NextUnsigned();
    else if (std::strcmp(Arg, "--stream-chunk") == 0)
      Net.StreamChunkPixels = NextUnsigned();
    else if (std::strcmp(Arg, "--spill-dir") == 0)
      Config.SpillDir = NextValue();
    else if (std::strcmp(Arg, "--spill-cap-mb") == 0)
      Config.SpillMaxBytes = static_cast<uint64_t>(NextUnsigned()) << 20;
    else if (std::strcmp(Arg, "--threads") == 0)
      Config.RenderThreads = NextUnsigned();
    else if (std::strcmp(Arg, "--tile") == 0)
      Config.TilePixels = NextUnsigned();
    else if (std::strcmp(Arg, "--cache-units") == 0)
      Config.CacheUnits = NextUnsigned();
    else if (std::strcmp(Arg, "--cache-shards") == 0)
      Config.CacheShards = NextUnsigned();
    else if (std::strcmp(Arg, "--queue") == 0)
      Config.QueueCapacity = NextUnsigned();
    else if (std::strcmp(Arg, "--dispatchers") == 0)
      Config.Dispatchers = NextUnsigned();
    else if (std::strcmp(Arg, "--variants") == 0)
      Config.MaxVariantPins = NextUnsigned();
    else if (std::strcmp(Arg, "--exec-tier") == 0) {
      const char *Name = NextValue();
      if (!parseExecTier(Name, Config.Tier)) {
        std::fprintf(stderr,
                     "error: --exec-tier expects switch, threaded, batched, "
                     "or native (got '%s')\n",
                     Name);
        return kExitUsage;
      }
    } else if (std::strcmp(Arg, "--arena-layout") == 0) {
      const char *Name = NextValue();
      if (std::strcmp(Name, "auto") == 0) {
        ArenaLayoutAuto = true;
      } else if (std::optional<ArenaLayout> Parsed = parseArenaLayout(Name)) {
        ArenaLayoutAuto = false;
        Config.ArenaLayout = ArenaLayoutConfig{
            *Parsed, 0, *Parsed != ArenaLayout::PixelMajor};
      } else {
        std::fprintf(stderr,
                     "error: --arena-layout expects pixel-major, slot-major, "
                     "tile-blocked, or auto (got '%s')\n",
                     Name);
        return kExitUsage;
      }
    } else if (std::strcmp(Arg, "--llc-bytes") == 0) {
      const char *Value = NextValue();
      Config.LlcBytes = std::strcmp(Value, "auto") == 0
                            ? detectLlcBytes()
                            : std::strtoull(Value, nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown serve option '%s'\n", Arg);
      return kExitUsage;
    }
  }
  // `auto` resolves against the final tier/tile choice, so it cannot be
  // computed until every flag is parsed.
  if (ArenaLayoutAuto)
    Config.ArenaLayout = chooseArenaLayout(Config.Tier, Config.TilePixels);
  if (!SocketPath && !ListenHostPort) {
    std::fprintf(stderr,
                 "error: serve requires --socket PATH and/or --listen "
                 "HOST:PORT\n");
    return kExitUsage;
  }
  if (SocketPath)
    Net.UnixPath = SocketPath;
  if (ListenHostPort)
    Net.TcpHostPort = ListenHostPort;

  SpecializationService Service(Config);
  NetServer Server(Service, Net);
  Service.setNetStatsProvider([&Server] { return Server.statsJson(); });

  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return kExitFailure;
  }

  GStopEventFd = ::eventfd(0, EFD_CLOEXEC);
  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);

  std::string Where;
  if (SocketPath)
    Where = SocketPath;
  if (Server.boundTcpPort() != 0) {
    if (!Where.empty())
      Where += " and ";
    Where += "tcp " + std::string(ListenHostPort);
    Where += formatString(" (port %u)", Server.boundTcpPort());
  }
  std::printf("dspec serve: listening on %s (%u io thread(s), %u render "
              "thread(s), cache %u units, queue %u, %s tier, %s arena%s%s)\n",
              Where.c_str(), Server.config().IoThreads,
              Service.config().RenderThreads, Service.config().CacheUnits,
              Service.config().QueueCapacity,
              execTierName(Service.config().Tier),
              arenaLayoutName(Service.config().ArenaLayout.Layout),
              Config.LlcBytes != 0 ? ", llc bound" : "",
              Config.SpillDir.empty() ? "" : ", spill on");
  std::fflush(stdout);

  // Park until SIGINT/SIGTERM; the handler's eventfd write ends the
  // indefinite poll immediately.
  while (!GStopRequested) {
    pollfd P = {GStopEventFd, POLLIN, 0};
    int Ready = ::poll(&P, 1, -1);
    if (Ready > 0)
      break;
  }

  // Graceful drain: stop accepting, answer everything already queued,
  // flush every reply to the kernel, then tear the loops down.
  std::printf("dspec serve: SIGINT/SIGTERM received, draining\n");
  Server.beginDrain();
  Service.drain();
  Server.quiesce(/*TimeoutSeconds=*/5.0);

  std::printf("dspec serve: final statsz\n%s\n",
              Service.statsz().toJson().c_str());

  Server.shutdownServer();
  ::close(GStopEventFd);
  GStopEventFd = -1;
  return kExitOk;
}

//===----------------------------------------------------------------------===//
// dspec request
//===----------------------------------------------------------------------===//

/// Renders the same frame locally with the *unspecialized* shader — the
/// plain-pass ground truth a service reply must match bit-for-bit.
bool renderPlainReference(const ShaderInfo &Info, unsigned Width,
                          unsigned Height, const std::vector<float> &Controls,
                          Framebuffer &Out, std::string &Error) {
  auto Unit = parseUnit(Info.Source);
  if (!Unit->ok()) {
    Error = Unit->Diags.str();
    return false;
  }
  auto Plain = compileFunction(*Unit, Info.Name);
  if (!Plain) {
    Error = Unit->Diags.str();
    return false;
  }
  RenderGrid Grid(Width, Height);
  RenderEngine Engine(1);
  if (!Engine.plainPass(*Plain, Grid, Controls, &Out)) {
    Error = "plain pass trapped: " + Engine.lastTrap();
    return false;
  }
  return true;
}

bool framebuffersBitIdentical(const Framebuffer &A, const Framebuffer &B) {
  if (A.width() != B.width() || A.height() != B.height())
    return false;
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X) {
      const Value &Va = A.at(X, Y), &Vb = B.at(X, Y);
      if (std::memcmp(Va.F, Vb.F, sizeof(Va.F)) != 0)
        return false;
    }
  return true;
}

int requestMain(int Argc, char **Argv) {
  const char *SocketPath = nullptr;
  const char *TcpHostPort = nullptr;
  const char *GalleryName = nullptr;
  const char *PpmPath = nullptr;
  bool WantStats = false;
  bool CheckPlain = false;
  unsigned Repeat = 1;
  RenderRequest Request;

  for (int I = 0; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg);
        std::exit(kExitUsage);
      }
      return Argv[++I];
    };
    if (std::strcmp(Arg, "--socket") == 0)
      SocketPath = NextValue();
    else if (std::strcmp(Arg, "--tcp") == 0)
      TcpHostPort = NextValue();
    else if (std::strcmp(Arg, "--stream") == 0)
      Request.StreamTiles = true;
    else if (std::strcmp(Arg, "--gallery") == 0)
      GalleryName = NextValue();
    else if (std::strcmp(Arg, "--statsz") == 0)
      WantStats = true;
    else if (std::strcmp(Arg, "--width") == 0)
      Request.Width =
          static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    else if (std::strcmp(Arg, "--height") == 0)
      Request.Height =
          static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    else if (std::strcmp(Arg, "--vary") == 0) {
      for (const std::string &Name : splitString(NextValue(), ','))
        if (!Name.empty())
          Request.Varying.push_back(Name);
    } else if (std::strcmp(Arg, "--controls") == 0) {
      for (const std::string &Text : splitString(NextValue(), ','))
        if (!Text.empty())
          Request.Controls.push_back(std::strtof(Text.c_str(), nullptr));
    } else if (std::strcmp(Arg, "--deadline") == 0)
      Request.DeadlineMillis =
          static_cast<uint32_t>(std::strtoul(NextValue(), nullptr, 10));
    else if (std::strcmp(Arg, "--repeat") == 0)
      Repeat = static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    else if (std::strcmp(Arg, "--variants") == 0)
      Request.VariantPins =
          static_cast<uint32_t>(std::strtoul(NextValue(), nullptr, 10));
    else if (std::strcmp(Arg, "--check-plain") == 0)
      CheckPlain = true;
    else if (std::strcmp(Arg, "--ppm") == 0)
      PpmPath = NextValue();
    else {
      std::fprintf(stderr, "error: unknown request option '%s'\n", Arg);
      return kExitUsage;
    }
  }

  if ((!SocketPath && !TcpHostPort) || (SocketPath && TcpHostPort) ||
      (!GalleryName && !WantStats) || (GalleryName && WantStats) ||
      Repeat == 0) {
    std::fprintf(stderr,
                 "error: request needs --socket PATH or --tcp HOST:PORT "
                 "(not both) and either --gallery SHADER or --statsz\n");
    return kExitUsage;
  }

  std::string Error;
  std::unique_ptr<Transport> Conn;
  if (TcpHostPort) {
    std::string Host;
    uint16_t Port = 0;
    if (!splitHostPort(TcpHostPort, Host, Port)) {
      std::fprintf(stderr,
                   "error: malformed --tcp address '%s' (expected "
                   "host:port)\n",
                   TcpHostPort);
      return kExitUsage;
    }
    Conn = connectTcp(Host, Port, &Error);
  } else {
    Conn = connectUnixSocket(SocketPath, &Error);
  }
  if (!Conn) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return kExitFailure;
  }

  if (WantStats) {
    auto Json = requestStats(*Conn, &Error);
    if (!Json) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return kExitFailure;
    }
    std::printf("%s\n", Json->c_str());
    return kExitOk;
  }

  const ShaderInfo *Info = findShader(GalleryName);
  if (!Info) {
    std::fprintf(stderr, "error: no gallery shader named '%s'\n",
                 GalleryName);
    return kExitFailure;
  }
  Request.Shader = Info->Name;
  // Resolve defaults client-side so --check-plain knows the exact control
  // vector the service renders with.
  if (Request.Controls.empty())
    Request.Controls = ShaderLab::defaultControls(*Info);
  if (Request.Varying.empty())
    Request.Varying.push_back(Info->Controls.front().Name);
  const ControlParam *Sweep = nullptr;
  size_t SweepIndex = 0;
  for (size_t C = 0; C < Info->Controls.size(); ++C)
    if (Info->Controls[C].Name == Request.Varying.front()) {
      Sweep = &Info->Controls[C];
      SweepIndex = C;
    }

  for (unsigned Frame = 0; Frame < Repeat; ++Frame) {
    // Drag the first varying control across its sweep range, one value
    // per repeat — the service should hit its unit cache after frame 0.
    if (Sweep && Repeat > 1 && SweepIndex < Request.Controls.size())
      Request.Controls[SweepIndex] =
          Sweep->SweepMin + (Sweep->SweepMax - Sweep->SweepMin) *
                                static_cast<float>(Frame) /
                                static_cast<float>(Repeat - 1);

    auto Start = std::chrono::steady_clock::now();
    auto Reply = requestRender(*Conn, Request, &Error);
    double ClientMillis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - Start)
            .count();
    if (!Reply) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return kExitFailure;
    }
    if (!Reply->ok()) {
      std::fprintf(stderr, "%s: %s (%s)\n", Info->Name.c_str(),
                   renderStatusName(Reply->Status), Reply->Error.c_str());
      return kExitFailure;
    }

    uint32_t PixelCrc =
        crc32(Reply->Pixels.data(), Reply->Pixels.size() * sizeof(float));
    // Two latencies per frame: what the service measured and what this
    // client saw wall-to-wall (framing, transport, reassembly included).
    std::printf("%s frame %u: %ux%u, %s, service %.3f ms, client %.3f ms, "
                "pixels crc32 %08x\n",
                Info->Name.c_str(), Frame, Reply->Width, Reply->Height,
                Reply->CacheHit ? "cache hit" : "cache miss",
                static_cast<double>(Reply->ServiceMicros) / 1000.0,
                ClientMillis, PixelCrc);

    if (CheckPlain) {
      Framebuffer Reference(Request.Width, Request.Height);
      if (!renderPlainReference(*Info, Request.Width, Request.Height,
                                Request.Controls, Reference, Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return kExitFailure;
      }
      if (!framebuffersBitIdentical(Reply->toFramebuffer(), Reference)) {
        std::fprintf(stderr,
                     "error: %s frame %u differs from the local plain-pass "
                     "render\n",
                     Info->Name.c_str(), Frame);
        return kExitFailure;
      }
      std::printf("%s frame %u: bit-identical to the local plain pass\n",
                  Info->Name.c_str(), Frame);
    }
    if (PpmPath && Frame == Repeat - 1 &&
        !Reply->toFramebuffer().writePPM(PpmPath)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", PpmPath);
      return kExitFailure;
    }
  }
  return kExitOk;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::strcmp(Argv[1], "snapshot") == 0)
    return snapshotMain(Argc - 2, Argv + 2);
  if (Argc >= 2 && std::strcmp(Argv[1], "serve") == 0)
    return serveMain(Argc - 2, Argv + 2);
  if (Argc >= 2 && std::strcmp(Argv[1], "request") == 0)
    return requestMain(Argc - 2, Argv + 2);

  const char *FilePath = nullptr;
  const char *FragmentName = nullptr;
  std::vector<std::string> Varying;
  SpecializerOptions Options;
  bool ShowNormalized = false;
  bool ShowStats = false;
  unsigned VariantCount = 0;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg);
        std::exit(kExitUsage);
      }
      return Argv[++I];
    };
    if (std::strcmp(Arg, "--fragment") == 0) {
      FragmentName = NextValue();
    } else if (std::strcmp(Arg, "--vary") == 0) {
      for (const std::string &Name : splitString(NextValue(), ','))
        if (!Name.empty())
          Varying.push_back(Name);
    } else if (std::strcmp(Arg, "--limit") == 0) {
      Options.CacheByteLimit = std::strtoul(NextValue(), nullptr, 10);
    } else if (std::strcmp(Arg, "--llc-bytes") == 0) {
      const char *Value = NextValue();
      Options.LlcByteBound = std::strcmp(Value, "auto") == 0
                                 ? detectLlcBytes()
                                 : std::strtoull(Value, nullptr, 10);
    } else if (std::strcmp(Arg, "--arena-pixels") == 0) {
      Options.ArenaPixels =
          static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    } else if (std::strcmp(Arg, "--reassoc") == 0) {
      Options.EnableReassociate = true;
    } else if (std::strcmp(Arg, "--no-phi") == 0) {
      Options.EnableJoinNormalize = false;
    } else if (std::strcmp(Arg, "--speculate") == 0) {
      Options.AllowSpeculation = true;
    } else if (std::strcmp(Arg, "--show-normalized") == 0) {
      ShowNormalized = true;
    } else if (std::strcmp(Arg, "--explain") == 0) {
      Options.CollectExplanation = true;
    } else if (std::strcmp(Arg, "--variants") == 0) {
      VariantCount =
          static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    } else if (std::strcmp(Arg, "--stats") == 0) {
      ShowStats = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return kExitOk;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return kExitUsage;
    } else if (!FilePath) {
      FilePath = Arg;
    } else {
      std::fprintf(stderr, "error: multiple input files\n");
      return kExitUsage;
    }
  }

  if (!FilePath || !FragmentName || Varying.empty()) {
    usage(Argv[0]);
    return kExitUsage;
  }
  if (Options.LlcByteBound != 0 && Options.ArenaPixels == 0) {
    std::fprintf(stderr, "error: --llc-bytes requires --arena-pixels N (the "
                         "grid the working set is measured over)\n");
    return kExitUsage;
  }

  std::string Source;
  if (!readFileToString(FilePath, Source)) {
    std::fprintf(stderr, "error: cannot open '%s'\n", FilePath);
    return kExitFailure;
  }

  auto Unit = parseUnit(Source);
  if (!Unit->ok()) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return kExitFailure;
  }

  auto Spec = specializeAndCompile(*Unit, FragmentName, Varying, Options);
  if (!Spec) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return kExitFailure;
  }

  if (ShowNormalized)
    std::printf("// normalized fragment (after Section 4.1/4.2 "
                "preprocessing)\n%s\n",
                Spec->normalizedSource().c_str());
  std::printf("// cache loader\n%s\n", Spec->loaderSource().c_str());
  std::printf("// cache reader\n%s\n", Spec->readerSource().c_str());

  std::printf("// cache layout: %u slot(s), %u byte(s)\n",
              Spec->Spec.Layout.slotCount(), Spec->Spec.Layout.totalBytes());
  for (const CacheSlot &Slot : Spec->Spec.Layout.slots())
    std::printf("//   slot%-3u %-6s offset %u%s\n", Slot.Index,
                Slot.SlotType.name(), Slot.Offset,
                Slot.isCold() ? "  (cold)" : "");

  // The polyvariant view: build the property-keyed variant set and print
  // its table whenever variants were requested or an explanation was.
  if (VariantCount > 1 || Options.CollectExplanation) {
    VariantSetOptions VOptions;
    if (VariantCount > 1)
      VOptions.MaxVariants = VariantCount;
    SpecializerOptions VariantOptions = Options;
    VariantOptions.CollectExplanation = false; // table only
    auto Set = specializeAndCompileVariants(*Unit, FragmentName, Varying,
                                            VariantOptions, VOptions);
    if (!Set) {
      std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
      return kExitFailure;
    }
    std::printf("\n%s", Set->Table.c_str());
  }

  if (Options.CollectExplanation) {
    std::printf("\n%s", Spec->Spec.Explanation.c_str());

    // The execution view: what the fast interpreter's fusion pass made of
    // the reader bytecode (see docs/ENGINE.md, "Execution tiers"). The
    // decoded classification is authoritative over the AST-level counts
    // printed above: a batch-safe (effect-free) reader starts on the
    // batched tier, masks its maskable diamonds when lanes diverge, and
    // bails a tile to per-pixel execution only at a divergent unmaskable
    // branch.
    ExecChunk Exec = buildExecChunk(Spec->ReaderChunk);
    if (Exec.Valid) {
      const char *TierName =
          !Exec.BatchSafe
              ? "effectful, per-pixel tier"
              : (Exec.UnmaskableBranches
                     ? "batched tier, bails on divergent loops"
                     : "batched tier");
      std::printf("\nreader bytecode: %u maskable / %u unmaskable "
                  "branch(es) — %s\n",
                  Exec.MaskableBranches, Exec.UnmaskableBranches, TierName);
      std::printf("reader superinstructions (%zu decoded op(s)):\n",
                  Exec.Code.size());
      auto Fused = fusedHistogram(Exec);
      if (Fused.empty())
        std::printf("  (no fusible pairs)\n");
      for (const auto &Row : Fused)
        std::printf("  %-12s x%u\n", Row.first, Row.second);

      // The native tier's view: what the copy-and-patch JIT stitches the
      // same reader into (docs/ENGINE.md, "Native tier").
      if (!jit::available()) {
        std::printf("reader native code: unavailable in this build\n");
      } else if (auto Prog = jit::compileChunk(Spec->ReaderChunk)) {
        std::printf("reader native code: %zu byte(s), stitched in %.3f ms\n",
                    Prog->codeBytes(), Prog->compileSeconds() * 1e3);
      } else {
        std::printf("reader native code: deopt (cannot stitch)\n");
      }
    }
  }

  if (ShowStats) {
    const SpecializationStats &S = Spec->Spec.Stats;
    std::printf("// stats: fragment %u terms (normalized %u), loader %u, "
                "reader %u\n"
                "//        exprs: %u static / %u cached / %u dynamic; "
                "%u dependent terms\n"
                "//        phi copies %u, chains reassociated %u, limiter "
                "victims %u\n",
                S.FragmentTerms, S.NormalizedTerms, S.LoaderTerms,
                S.ReaderTerms, S.StaticExprs, S.CachedExprs, S.DynamicExprs,
                S.DependentTerms, S.PhiCopiesInserted, S.ChainsReassociated,
                S.LimiterVictims);
  }
  return kExitOk;
}
