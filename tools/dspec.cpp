//===- tools/dspec.cpp - Command-line data specializer -----------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `dspec` command-line tool: reads a dsc source file, specializes one
/// of its functions on a user-supplied input partition, and prints the
/// cache loader and cache reader (Figure 2 style) plus the cache layout.
///
///   dspec FILE --fragment NAME --vary a,b[,c...]
///         [--limit BYTES] [--reassoc] [--no-phi] [--speculate]
///         [--show-normalized] [--stats]
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "lang/ASTPrinter.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace dspec;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s FILE --fragment NAME --vary P1[,P2...]\n"
      "            [--limit BYTES] [--reassoc] [--no-phi] [--speculate]\n"
      "            [--explain]\n"
      "            [--show-normalized] [--stats]\n"
      "\n"
      "Splits the named dsc function into a cache loader and cache reader\n"
      "for the input partition where P1, P2, ... vary and every other\n"
      "parameter is fixed (Knoblock & Ruf, PLDI 1996).\n",
      Argv0);
}

} // namespace

int main(int Argc, char **Argv) {
  const char *FilePath = nullptr;
  const char *FragmentName = nullptr;
  std::vector<std::string> Varying;
  SpecializerOptions Options;
  bool ShowNormalized = false;
  bool ShowStats = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (std::strcmp(Arg, "--fragment") == 0) {
      FragmentName = NextValue();
    } else if (std::strcmp(Arg, "--vary") == 0) {
      for (const std::string &Name : splitString(NextValue(), ','))
        if (!Name.empty())
          Varying.push_back(Name);
    } else if (std::strcmp(Arg, "--limit") == 0) {
      Options.CacheByteLimit = std::strtoul(NextValue(), nullptr, 10);
    } else if (std::strcmp(Arg, "--reassoc") == 0) {
      Options.EnableReassociate = true;
    } else if (std::strcmp(Arg, "--no-phi") == 0) {
      Options.EnableJoinNormalize = false;
    } else if (std::strcmp(Arg, "--speculate") == 0) {
      Options.AllowSpeculation = true;
    } else if (std::strcmp(Arg, "--show-normalized") == 0) {
      ShowNormalized = true;
    } else if (std::strcmp(Arg, "--explain") == 0) {
      Options.CollectExplanation = true;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      ShowStats = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    } else if (!FilePath) {
      FilePath = Arg;
    } else {
      std::fprintf(stderr, "error: multiple input files\n");
      return 2;
    }
  }

  if (!FilePath || !FragmentName || Varying.empty()) {
    usage(Argv[0]);
    return 2;
  }

  std::ifstream File(FilePath);
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s'\n", FilePath);
    return 1;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  std::string Source = Buffer.str();

  auto Unit = parseUnit(Source);
  if (!Unit->ok()) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return 1;
  }

  auto Spec = specializeAndCompile(*Unit, FragmentName, Varying, Options);
  if (!Spec) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return 1;
  }

  if (ShowNormalized)
    std::printf("// normalized fragment (after Section 4.1/4.2 "
                "preprocessing)\n%s\n",
                Spec->normalizedSource().c_str());
  std::printf("// cache loader\n%s\n", Spec->loaderSource().c_str());
  std::printf("// cache reader\n%s\n", Spec->readerSource().c_str());

  std::printf("// cache layout: %u slot(s), %u byte(s)\n",
              Spec->Spec.Layout.slotCount(), Spec->Spec.Layout.totalBytes());
  for (const CacheSlot &Slot : Spec->Spec.Layout.slots())
    std::printf("//   slot%-3u %-6s offset %u\n", Slot.Index,
                Slot.SlotType.name(), Slot.Offset);

  if (Options.CollectExplanation)
    std::printf("\n%s", Spec->Spec.Explanation.c_str());

  if (ShowStats) {
    const SpecializationStats &S = Spec->Spec.Stats;
    std::printf("// stats: fragment %u terms (normalized %u), loader %u, "
                "reader %u\n"
                "//        exprs: %u static / %u cached / %u dynamic; "
                "%u dependent terms\n"
                "//        phi copies %u, chains reassociated %u, limiter "
                "victims %u\n",
                S.FragmentTerms, S.NormalizedTerms, S.LoaderTerms,
                S.ReaderTerms, S.StaticExprs, S.CachedExprs, S.DynamicExprs,
                S.DependentTerms, S.PhiCopiesInserted, S.ChainsReassociated,
                S.LimiterVictims);
  }
  return 0;
}
