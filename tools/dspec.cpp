//===- tools/dspec.cpp - Command-line data specializer -----------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `dspec` command-line tool: reads a dsc source file, specializes one
/// of its functions on a user-supplied input partition, and prints the
/// cache loader and cache reader (Figure 2 style) plus the cache layout.
///
///   dspec FILE --fragment NAME --vary a,b[,c...]
///         [--limit BYTES] [--reassoc] [--no-phi] [--speculate]
///         [--show-normalized] [--stats]
///
/// Snapshot subcommands persist a specialization (and its loader-filled
/// cache arena) across processes:
///
///   dspec snapshot save (--gallery SHADER | FILE --fragment NAME)
///         --out SNAP [--vary P1[,P2...]] [--width W] [--height H]
///         [--controls v1,v2,...] [--limit BYTES] [--reassoc] [--no-phi]
///         [--speculate]
///   dspec snapshot info SNAP
///   dspec snapshot verify SNAP
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "engine/RenderEngine.h"
#include "lang/ASTPrinter.h"
#include "shading/ShaderGallery.h"
#include "snapshot/Snapshot.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace dspec;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s FILE --fragment NAME --vary P1[,P2...]\n"
      "            [--limit BYTES] [--reassoc] [--no-phi] [--speculate]\n"
      "            [--explain]\n"
      "            [--show-normalized] [--stats]\n"
      "       %s snapshot save (--gallery SHADER | FILE --fragment NAME)\n"
      "            --out SNAP [--vary P1[,P2...]] [--width W] [--height H]\n"
      "            [--controls v1,v2,...] [--limit BYTES] [--reassoc]\n"
      "            [--no-phi] [--speculate]\n"
      "       %s snapshot info SNAP\n"
      "       %s snapshot verify SNAP\n"
      "\n"
      "Splits the named dsc function into a cache loader and cache reader\n"
      "for the input partition where P1, P2, ... vary and every other\n"
      "parameter is fixed (Knoblock & Ruf, PLDI 1996). The snapshot\n"
      "subcommands persist the split programs plus a loader-filled cache\n"
      "arena so fresh processes warm-start straight into reader frames.\n",
      Argv0, Argv0, Argv0, Argv0);
}

bool readFileToString(const char *Path, std::string &Out) {
  std::ifstream File(Path);
  if (!File)
    return false;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Out = Buffer.str();
  return true;
}

int snapshotSave(int Argc, char **Argv) {
  const char *FilePath = nullptr;
  const char *GalleryName = nullptr;
  const char *FragmentName = nullptr;
  const char *OutPath = nullptr;
  std::vector<std::string> Varying;
  std::vector<float> UserControls;
  bool HaveUserControls = false;
  unsigned Width = 48, Height = 32;
  SpecializerOptions Options;

  for (int I = 0; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (std::strcmp(Arg, "--gallery") == 0) {
      GalleryName = NextValue();
    } else if (std::strcmp(Arg, "--fragment") == 0) {
      FragmentName = NextValue();
    } else if (std::strcmp(Arg, "--out") == 0 || std::strcmp(Arg, "-o") == 0) {
      OutPath = NextValue();
    } else if (std::strcmp(Arg, "--vary") == 0) {
      for (const std::string &Name : splitString(NextValue(), ','))
        if (!Name.empty())
          Varying.push_back(Name);
    } else if (std::strcmp(Arg, "--width") == 0) {
      Width = static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    } else if (std::strcmp(Arg, "--height") == 0) {
      Height = static_cast<unsigned>(std::strtoul(NextValue(), nullptr, 10));
    } else if (std::strcmp(Arg, "--controls") == 0) {
      HaveUserControls = true;
      for (const std::string &Text : splitString(NextValue(), ','))
        if (!Text.empty())
          UserControls.push_back(std::strtof(Text.c_str(), nullptr));
    } else if (std::strcmp(Arg, "--limit") == 0) {
      Options.CacheByteLimit = std::strtoul(NextValue(), nullptr, 10);
    } else if (std::strcmp(Arg, "--reassoc") == 0) {
      Options.EnableReassociate = true;
    } else if (std::strcmp(Arg, "--no-phi") == 0) {
      Options.EnableJoinNormalize = false;
    } else if (std::strcmp(Arg, "--speculate") == 0) {
      Options.AllowSpeculation = true;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      return 2;
    } else if (!FilePath) {
      FilePath = Arg;
    } else {
      std::fprintf(stderr, "error: multiple input files\n");
      return 2;
    }
  }

  if (!OutPath || (!GalleryName && (!FilePath || !FragmentName)) ||
      (GalleryName && FilePath)) {
    std::fprintf(stderr,
                 "error: snapshot save needs --out and either --gallery "
                 "SHADER or FILE --fragment NAME\n");
    return 2;
  }
  if (Width == 0 || Height == 0) {
    std::fprintf(stderr, "error: --width/--height must be positive\n");
    return 2;
  }

  std::string Source;
  std::string Fragment;
  std::vector<float> DefaultControls;
  if (GalleryName) {
    const ShaderInfo *Info = findShader(GalleryName);
    if (!Info) {
      std::fprintf(stderr, "error: no gallery shader named '%s'\n",
                   GalleryName);
      return 1;
    }
    Source = Info->Source;
    Fragment = Info->Name;
    for (const ControlParam &Control : Info->Controls)
      DefaultControls.push_back(Control.Default);
    if (Varying.empty())
      Varying.push_back(Info->Controls.front().Name);
  } else {
    if (!readFileToString(FilePath, Source)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", FilePath);
      return 1;
    }
    Fragment = FragmentName;
    if (Varying.empty()) {
      std::fprintf(stderr, "error: --vary is required with a FILE input\n");
      return 2;
    }
  }

  auto Unit = parseUnit(Source);
  if (!Unit->ok()) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return 1;
  }
  auto Spec = specializeAndCompile(*Unit, Fragment, Varying, Options);
  if (!Spec) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return 1;
  }

  if (Spec->LoaderChunk.NumParams < RenderEngine::NumPixelParams) {
    std::fprintf(stderr,
                 "error: '%s' takes %u parameters; a renderable fragment "
                 "needs the %u per-pixel inputs (uv, P, N, I) first\n",
                 Fragment.c_str(), Spec->LoaderChunk.NumParams,
                 RenderEngine::NumPixelParams);
    return 1;
  }
  unsigned NumControls =
      Spec->LoaderChunk.NumParams - RenderEngine::NumPixelParams;
  std::vector<float> Controls(NumControls, 1.0f);
  if (!DefaultControls.empty() && DefaultControls.size() == NumControls)
    Controls = DefaultControls;
  if (HaveUserControls) {
    if (UserControls.size() != NumControls) {
      std::fprintf(stderr,
                   "error: --controls has %zu value(s); '%s' takes %u\n",
                   UserControls.size(), Fragment.c_str(), NumControls);
      return 2;
    }
    Controls = UserControls;
  }

  RenderGrid Grid(Width, Height);
  RenderEngine Engine(1);
  CacheArena Arena;
  if (!Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid, Controls,
                         Arena)) {
    std::fprintf(stderr, "error: loader pass trapped: %s\n",
                 Engine.lastTrap().c_str());
    return 1;
  }

  SnapshotMeta Meta = SnapshotMeta::fromOptions(Options);
  Meta.FragmentName = Fragment;
  Meta.VaryingParams = Varying;
  Meta.GridWidth = Width;
  Meta.GridHeight = Height;
  Meta.Controls = Controls;

  std::string Error;
  if (!RenderEngine::saveSnapshot(OutPath, Meta, Spec->LoaderChunk,
                                  Spec->ReaderChunk, Spec->Spec.Layout, Arena,
                                  &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  std::printf("wrote %s: '%s' vary ", OutPath, Fragment.c_str());
  for (size_t I = 0; I < Varying.size(); ++I)
    std::printf("%s%s", I ? "," : "", Varying[I].c_str());
  std::printf("; %ux%u pixels x %uB cache = %zu arena bytes (%s)\n", Width,
              Height, Spec->Spec.Layout.totalBytes(), Arena.totalBytes(),
              Meta.optionsSummary().c_str());
  return 0;
}

int snapshotInfo(const char *Path) {
  SnapshotFileInfo Info;
  std::string Error;
  if (!inspectSnapshotFile(Path, Info, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%s: snapshot format v%u, %llu bytes, %zu sections\n", Path,
              Info.FormatVersion,
              static_cast<unsigned long long>(Info.FileBytes),
              Info.Sections.size());
  std::printf("  %-8s %10s %12s %12s %s\n", "section", "offset", "bytes",
              "crc32", "check");
  for (const SnapshotSectionInfo &Section : Info.Sections)
    std::printf("  %-8s %10llu %12llu     %08x %s\n",
                snapshotSectionName(Section.Id),
                static_cast<unsigned long long>(Section.Offset),
                static_cast<unsigned long long>(Section.Bytes),
                Section.StoredCrc, Section.CrcOk ? "ok" : "FAIL");

  // Decode the payloads too when they are intact; info stays useful on a
  // partially corrupt file by degrading to the table above.
  SpecializationSnapshot Snap;
  if (!readSnapshotFile(Path, Snap, &Error)) {
    std::printf("  (payloads not decoded: %s)\n", Error.c_str());
    return 0;
  }
  std::printf("  fragment '%s', vary ", Snap.Meta.FragmentName.c_str());
  for (size_t I = 0; I < Snap.Meta.VaryingParams.size(); ++I)
    std::printf("%s%s", I ? "," : "", Snap.Meta.VaryingParams[I].c_str());
  std::printf("; options: %s\n", Snap.Meta.optionsSummary().c_str());
  std::printf("  grid %ux%u, %u controls; loader %zu instrs, reader %zu "
              "instrs\n",
              Snap.Meta.GridWidth, Snap.Meta.GridHeight,
              static_cast<unsigned>(Snap.Meta.Controls.size()),
              Snap.Loader.Code.size(), Snap.Reader.Code.size());
  std::printf("  cache layout: %u slot(s), %u byte(s)/pixel\n",
              Snap.Layout.slotCount(), Snap.Layout.totalBytes());
  for (const CacheSlot &Slot : Snap.Layout.slots())
    std::printf("    slot%-3u %-6s offset %u\n", Slot.Index,
                Slot.SlotType.name(), Slot.Offset);
  return 0;
}

int snapshotVerify(const char *Path) {
  SpecializationSnapshot Snap;
  std::string Error;
  if (!readSnapshotFile(Path, Snap, &Error)) {
    std::fprintf(stderr, "%s: FAILED\n  %s\n", Path, Error.c_str());
    return 1;
  }
  std::printf("%s: OK ('%s', %u pixels x %uB cache, all CRCs and chunk "
              "verification passed)\n",
              Path, Snap.Meta.FragmentName.c_str(), Snap.ArenaPixels,
              Snap.ArenaStride);
  return 0;
}

int snapshotMain(int Argc, char **Argv) {
  if (Argc < 1) {
    std::fprintf(stderr,
                 "error: snapshot needs a subcommand (save|info|verify)\n");
    return 2;
  }
  const char *Sub = Argv[0];
  if (std::strcmp(Sub, "save") == 0)
    return snapshotSave(Argc - 1, Argv + 1);
  if (std::strcmp(Sub, "info") == 0 || std::strcmp(Sub, "verify") == 0) {
    if (Argc != 2) {
      std::fprintf(stderr, "error: snapshot %s takes exactly one file\n",
                   Sub);
      return 2;
    }
    return std::strcmp(Sub, "info") == 0 ? snapshotInfo(Argv[1])
                                         : snapshotVerify(Argv[1]);
  }
  std::fprintf(stderr, "error: unknown snapshot subcommand '%s'\n", Sub);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::strcmp(Argv[1], "snapshot") == 0)
    return snapshotMain(Argc - 2, Argv + 2);

  const char *FilePath = nullptr;
  const char *FragmentName = nullptr;
  std::vector<std::string> Varying;
  SpecializerOptions Options;
  bool ShowNormalized = false;
  bool ShowStats = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (std::strcmp(Arg, "--fragment") == 0) {
      FragmentName = NextValue();
    } else if (std::strcmp(Arg, "--vary") == 0) {
      for (const std::string &Name : splitString(NextValue(), ','))
        if (!Name.empty())
          Varying.push_back(Name);
    } else if (std::strcmp(Arg, "--limit") == 0) {
      Options.CacheByteLimit = std::strtoul(NextValue(), nullptr, 10);
    } else if (std::strcmp(Arg, "--reassoc") == 0) {
      Options.EnableReassociate = true;
    } else if (std::strcmp(Arg, "--no-phi") == 0) {
      Options.EnableJoinNormalize = false;
    } else if (std::strcmp(Arg, "--speculate") == 0) {
      Options.AllowSpeculation = true;
    } else if (std::strcmp(Arg, "--show-normalized") == 0) {
      ShowNormalized = true;
    } else if (std::strcmp(Arg, "--explain") == 0) {
      Options.CollectExplanation = true;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      ShowStats = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    } else if (!FilePath) {
      FilePath = Arg;
    } else {
      std::fprintf(stderr, "error: multiple input files\n");
      return 2;
    }
  }

  if (!FilePath || !FragmentName || Varying.empty()) {
    usage(Argv[0]);
    return 2;
  }

  std::string Source;
  if (!readFileToString(FilePath, Source)) {
    std::fprintf(stderr, "error: cannot open '%s'\n", FilePath);
    return 1;
  }

  auto Unit = parseUnit(Source);
  if (!Unit->ok()) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return 1;
  }

  auto Spec = specializeAndCompile(*Unit, FragmentName, Varying, Options);
  if (!Spec) {
    std::fprintf(stderr, "%s", Unit->Diags.str().c_str());
    return 1;
  }

  if (ShowNormalized)
    std::printf("// normalized fragment (after Section 4.1/4.2 "
                "preprocessing)\n%s\n",
                Spec->normalizedSource().c_str());
  std::printf("// cache loader\n%s\n", Spec->loaderSource().c_str());
  std::printf("// cache reader\n%s\n", Spec->readerSource().c_str());

  std::printf("// cache layout: %u slot(s), %u byte(s)\n",
              Spec->Spec.Layout.slotCount(), Spec->Spec.Layout.totalBytes());
  for (const CacheSlot &Slot : Spec->Spec.Layout.slots())
    std::printf("//   slot%-3u %-6s offset %u\n", Slot.Index,
                Slot.SlotType.name(), Slot.Offset);

  if (Options.CollectExplanation)
    std::printf("\n%s", Spec->Spec.Explanation.c_str());

  if (ShowStats) {
    const SpecializationStats &S = Spec->Spec.Stats;
    std::printf("// stats: fragment %u terms (normalized %u), loader %u, "
                "reader %u\n"
                "//        exprs: %u static / %u cached / %u dynamic; "
                "%u dependent terms\n"
                "//        phi copies %u, chains reassociated %u, limiter "
                "victims %u\n",
                S.FragmentTerms, S.NormalizedTerms, S.LoaderTerms,
                S.ReaderTerms, S.StaticExprs, S.CachedExprs, S.DynamicExprs,
                S.DependentTerms, S.PhiCopiesInserted, S.ChainsReassociated,
                S.LimiterVictims);
  }
  return 0;
}
