# Empty compiler generated dependencies file for dspec_shading.
# This may be replaced when dependencies are built.
