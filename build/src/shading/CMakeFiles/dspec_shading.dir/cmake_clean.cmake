file(REMOVE_RECURSE
  "CMakeFiles/dspec_shading.dir/RenderContext.cpp.o"
  "CMakeFiles/dspec_shading.dir/RenderContext.cpp.o.d"
  "CMakeFiles/dspec_shading.dir/ShaderGallery.cpp.o"
  "CMakeFiles/dspec_shading.dir/ShaderGallery.cpp.o.d"
  "CMakeFiles/dspec_shading.dir/ShaderLab.cpp.o"
  "CMakeFiles/dspec_shading.dir/ShaderLab.cpp.o.d"
  "libdspec_shading.a"
  "libdspec_shading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_shading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
