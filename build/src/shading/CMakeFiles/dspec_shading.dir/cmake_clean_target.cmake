file(REMOVE_RECURSE
  "libdspec_shading.a"
)
