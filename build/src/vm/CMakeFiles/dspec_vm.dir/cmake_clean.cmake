file(REMOVE_RECURSE
  "CMakeFiles/dspec_vm.dir/Builtins.cpp.o"
  "CMakeFiles/dspec_vm.dir/Builtins.cpp.o.d"
  "CMakeFiles/dspec_vm.dir/Bytecode.cpp.o"
  "CMakeFiles/dspec_vm.dir/Bytecode.cpp.o.d"
  "CMakeFiles/dspec_vm.dir/BytecodeCompiler.cpp.o"
  "CMakeFiles/dspec_vm.dir/BytecodeCompiler.cpp.o.d"
  "CMakeFiles/dspec_vm.dir/ChunkOptimizer.cpp.o"
  "CMakeFiles/dspec_vm.dir/ChunkOptimizer.cpp.o.d"
  "CMakeFiles/dspec_vm.dir/Noise.cpp.o"
  "CMakeFiles/dspec_vm.dir/Noise.cpp.o.d"
  "CMakeFiles/dspec_vm.dir/VM.cpp.o"
  "CMakeFiles/dspec_vm.dir/VM.cpp.o.d"
  "CMakeFiles/dspec_vm.dir/Value.cpp.o"
  "CMakeFiles/dspec_vm.dir/Value.cpp.o.d"
  "libdspec_vm.a"
  "libdspec_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
