file(REMOVE_RECURSE
  "libdspec_vm.a"
)
