# Empty dependencies file for dspec_vm.
# This may be replaced when dependencies are built.
