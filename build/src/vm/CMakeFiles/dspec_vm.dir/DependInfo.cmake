
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Builtins.cpp" "src/vm/CMakeFiles/dspec_vm.dir/Builtins.cpp.o" "gcc" "src/vm/CMakeFiles/dspec_vm.dir/Builtins.cpp.o.d"
  "/root/repo/src/vm/Bytecode.cpp" "src/vm/CMakeFiles/dspec_vm.dir/Bytecode.cpp.o" "gcc" "src/vm/CMakeFiles/dspec_vm.dir/Bytecode.cpp.o.d"
  "/root/repo/src/vm/BytecodeCompiler.cpp" "src/vm/CMakeFiles/dspec_vm.dir/BytecodeCompiler.cpp.o" "gcc" "src/vm/CMakeFiles/dspec_vm.dir/BytecodeCompiler.cpp.o.d"
  "/root/repo/src/vm/ChunkOptimizer.cpp" "src/vm/CMakeFiles/dspec_vm.dir/ChunkOptimizer.cpp.o" "gcc" "src/vm/CMakeFiles/dspec_vm.dir/ChunkOptimizer.cpp.o.d"
  "/root/repo/src/vm/Noise.cpp" "src/vm/CMakeFiles/dspec_vm.dir/Noise.cpp.o" "gcc" "src/vm/CMakeFiles/dspec_vm.dir/Noise.cpp.o.d"
  "/root/repo/src/vm/VM.cpp" "src/vm/CMakeFiles/dspec_vm.dir/VM.cpp.o" "gcc" "src/vm/CMakeFiles/dspec_vm.dir/VM.cpp.o.d"
  "/root/repo/src/vm/Value.cpp" "src/vm/CMakeFiles/dspec_vm.dir/Value.cpp.o" "gcc" "src/vm/CMakeFiles/dspec_vm.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/dspec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
