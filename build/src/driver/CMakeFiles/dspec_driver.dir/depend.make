# Empty dependencies file for dspec_driver.
# This may be replaced when dependencies are built.
