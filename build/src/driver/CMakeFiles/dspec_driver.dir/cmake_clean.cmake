file(REMOVE_RECURSE
  "CMakeFiles/dspec_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/dspec_driver.dir/Pipeline.cpp.o.d"
  "libdspec_driver.a"
  "libdspec_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
