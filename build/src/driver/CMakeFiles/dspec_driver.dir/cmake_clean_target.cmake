file(REMOVE_RECURSE
  "libdspec_driver.a"
)
