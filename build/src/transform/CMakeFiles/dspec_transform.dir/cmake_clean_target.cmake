file(REMOVE_RECURSE
  "libdspec_transform.a"
)
