# Empty compiler generated dependencies file for dspec_transform.
# This may be replaced when dependencies are built.
