
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/JoinNormalize.cpp" "src/transform/CMakeFiles/dspec_transform.dir/JoinNormalize.cpp.o" "gcc" "src/transform/CMakeFiles/dspec_transform.dir/JoinNormalize.cpp.o.d"
  "/root/repo/src/transform/Reassociate.cpp" "src/transform/CMakeFiles/dspec_transform.dir/Reassociate.cpp.o" "gcc" "src/transform/CMakeFiles/dspec_transform.dir/Reassociate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dspec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dspec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
