file(REMOVE_RECURSE
  "CMakeFiles/dspec_transform.dir/JoinNormalize.cpp.o"
  "CMakeFiles/dspec_transform.dir/JoinNormalize.cpp.o.d"
  "CMakeFiles/dspec_transform.dir/Reassociate.cpp.o"
  "CMakeFiles/dspec_transform.dir/Reassociate.cpp.o.d"
  "libdspec_transform.a"
  "libdspec_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
