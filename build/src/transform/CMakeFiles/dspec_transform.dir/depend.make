# Empty dependencies file for dspec_transform.
# This may be replaced when dependencies are built.
