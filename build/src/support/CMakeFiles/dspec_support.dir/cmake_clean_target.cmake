file(REMOVE_RECURSE
  "libdspec_support.a"
)
