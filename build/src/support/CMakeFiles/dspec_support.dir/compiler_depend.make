# Empty compiler generated dependencies file for dspec_support.
# This may be replaced when dependencies are built.
