file(REMOVE_RECURSE
  "CMakeFiles/dspec_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/dspec_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/dspec_support.dir/StringUtil.cpp.o"
  "CMakeFiles/dspec_support.dir/StringUtil.cpp.o.d"
  "libdspec_support.a"
  "libdspec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
