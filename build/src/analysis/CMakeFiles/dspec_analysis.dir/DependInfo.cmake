
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CostModel.cpp" "src/analysis/CMakeFiles/dspec_analysis.dir/CostModel.cpp.o" "gcc" "src/analysis/CMakeFiles/dspec_analysis.dir/CostModel.cpp.o.d"
  "/root/repo/src/analysis/DependenceAnalysis.cpp" "src/analysis/CMakeFiles/dspec_analysis.dir/DependenceAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/dspec_analysis.dir/DependenceAnalysis.cpp.o.d"
  "/root/repo/src/analysis/ReachingDefs.cpp" "src/analysis/CMakeFiles/dspec_analysis.dir/ReachingDefs.cpp.o" "gcc" "src/analysis/CMakeFiles/dspec_analysis.dir/ReachingDefs.cpp.o.d"
  "/root/repo/src/analysis/SingleValued.cpp" "src/analysis/CMakeFiles/dspec_analysis.dir/SingleValued.cpp.o" "gcc" "src/analysis/CMakeFiles/dspec_analysis.dir/SingleValued.cpp.o.d"
  "/root/repo/src/analysis/StructureInfo.cpp" "src/analysis/CMakeFiles/dspec_analysis.dir/StructureInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/dspec_analysis.dir/StructureInfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/dspec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
