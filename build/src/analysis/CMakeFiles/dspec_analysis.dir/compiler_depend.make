# Empty compiler generated dependencies file for dspec_analysis.
# This may be replaced when dependencies are built.
