file(REMOVE_RECURSE
  "libdspec_analysis.a"
)
