file(REMOVE_RECURSE
  "CMakeFiles/dspec_analysis.dir/CostModel.cpp.o"
  "CMakeFiles/dspec_analysis.dir/CostModel.cpp.o.d"
  "CMakeFiles/dspec_analysis.dir/DependenceAnalysis.cpp.o"
  "CMakeFiles/dspec_analysis.dir/DependenceAnalysis.cpp.o.d"
  "CMakeFiles/dspec_analysis.dir/ReachingDefs.cpp.o"
  "CMakeFiles/dspec_analysis.dir/ReachingDefs.cpp.o.d"
  "CMakeFiles/dspec_analysis.dir/SingleValued.cpp.o"
  "CMakeFiles/dspec_analysis.dir/SingleValued.cpp.o.d"
  "CMakeFiles/dspec_analysis.dir/StructureInfo.cpp.o"
  "CMakeFiles/dspec_analysis.dir/StructureInfo.cpp.o.d"
  "libdspec_analysis.a"
  "libdspec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
