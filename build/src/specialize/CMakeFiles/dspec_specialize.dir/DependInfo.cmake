
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specialize/CacheLimiter.cpp" "src/specialize/CMakeFiles/dspec_specialize.dir/CacheLimiter.cpp.o" "gcc" "src/specialize/CMakeFiles/dspec_specialize.dir/CacheLimiter.cpp.o.d"
  "/root/repo/src/specialize/CachingAnalysis.cpp" "src/specialize/CMakeFiles/dspec_specialize.dir/CachingAnalysis.cpp.o" "gcc" "src/specialize/CMakeFiles/dspec_specialize.dir/CachingAnalysis.cpp.o.d"
  "/root/repo/src/specialize/DataSpecializer.cpp" "src/specialize/CMakeFiles/dspec_specialize.dir/DataSpecializer.cpp.o" "gcc" "src/specialize/CMakeFiles/dspec_specialize.dir/DataSpecializer.cpp.o.d"
  "/root/repo/src/specialize/Explain.cpp" "src/specialize/CMakeFiles/dspec_specialize.dir/Explain.cpp.o" "gcc" "src/specialize/CMakeFiles/dspec_specialize.dir/Explain.cpp.o.d"
  "/root/repo/src/specialize/Splitter.cpp" "src/specialize/CMakeFiles/dspec_specialize.dir/Splitter.cpp.o" "gcc" "src/specialize/CMakeFiles/dspec_specialize.dir/Splitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/dspec_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dspec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dspec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
