file(REMOVE_RECURSE
  "CMakeFiles/dspec_specialize.dir/CacheLimiter.cpp.o"
  "CMakeFiles/dspec_specialize.dir/CacheLimiter.cpp.o.d"
  "CMakeFiles/dspec_specialize.dir/CachingAnalysis.cpp.o"
  "CMakeFiles/dspec_specialize.dir/CachingAnalysis.cpp.o.d"
  "CMakeFiles/dspec_specialize.dir/DataSpecializer.cpp.o"
  "CMakeFiles/dspec_specialize.dir/DataSpecializer.cpp.o.d"
  "CMakeFiles/dspec_specialize.dir/Explain.cpp.o"
  "CMakeFiles/dspec_specialize.dir/Explain.cpp.o.d"
  "CMakeFiles/dspec_specialize.dir/Splitter.cpp.o"
  "CMakeFiles/dspec_specialize.dir/Splitter.cpp.o.d"
  "libdspec_specialize.a"
  "libdspec_specialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_specialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
