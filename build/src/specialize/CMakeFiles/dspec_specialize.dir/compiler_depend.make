# Empty compiler generated dependencies file for dspec_specialize.
# This may be replaced when dependencies are built.
