file(REMOVE_RECURSE
  "libdspec_specialize.a"
)
