# Empty compiler generated dependencies file for dspec_lang.
# This may be replaced when dependencies are built.
