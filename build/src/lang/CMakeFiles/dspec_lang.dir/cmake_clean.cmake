file(REMOVE_RECURSE
  "CMakeFiles/dspec_lang.dir/AST.cpp.o"
  "CMakeFiles/dspec_lang.dir/AST.cpp.o.d"
  "CMakeFiles/dspec_lang.dir/ASTCloner.cpp.o"
  "CMakeFiles/dspec_lang.dir/ASTCloner.cpp.o.d"
  "CMakeFiles/dspec_lang.dir/ASTPrinter.cpp.o"
  "CMakeFiles/dspec_lang.dir/ASTPrinter.cpp.o.d"
  "CMakeFiles/dspec_lang.dir/Builtins.cpp.o"
  "CMakeFiles/dspec_lang.dir/Builtins.cpp.o.d"
  "CMakeFiles/dspec_lang.dir/Lexer.cpp.o"
  "CMakeFiles/dspec_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/dspec_lang.dir/Parser.cpp.o"
  "CMakeFiles/dspec_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/dspec_lang.dir/Sema.cpp.o"
  "CMakeFiles/dspec_lang.dir/Sema.cpp.o.d"
  "libdspec_lang.a"
  "libdspec_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
