file(REMOVE_RECURSE
  "libdspec_lang.a"
)
