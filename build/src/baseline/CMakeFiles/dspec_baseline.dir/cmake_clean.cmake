file(REMOVE_RECURSE
  "CMakeFiles/dspec_baseline.dir/Memoizer.cpp.o"
  "CMakeFiles/dspec_baseline.dir/Memoizer.cpp.o.d"
  "libdspec_baseline.a"
  "libdspec_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
