file(REMOVE_RECURSE
  "libdspec_baseline.a"
)
