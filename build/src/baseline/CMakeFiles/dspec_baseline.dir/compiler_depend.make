# Empty compiler generated dependencies file for dspec_baseline.
# This may be replaced when dependencies are built.
