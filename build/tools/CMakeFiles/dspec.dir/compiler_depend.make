# Empty compiler generated dependencies file for dspec.
# This may be replaced when dependencies are built.
