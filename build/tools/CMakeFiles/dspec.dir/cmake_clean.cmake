file(REMOVE_RECURSE
  "CMakeFiles/dspec.dir/dspec.cpp.o"
  "CMakeFiles/dspec.dir/dspec.cpp.o.d"
  "dspec"
  "dspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
