
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/TestAnalysis.cpp" "tests/CMakeFiles/dspec_tests.dir/TestAnalysis.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestAnalysis.cpp.o.d"
  "/root/repo/tests/TestBaseline.cpp" "tests/CMakeFiles/dspec_tests.dir/TestBaseline.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestBaseline.cpp.o.d"
  "/root/repo/tests/TestCacheLimiter.cpp" "tests/CMakeFiles/dspec_tests.dir/TestCacheLimiter.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestCacheLimiter.cpp.o.d"
  "/root/repo/tests/TestCachingAnalysis.cpp" "tests/CMakeFiles/dspec_tests.dir/TestCachingAnalysis.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestCachingAnalysis.cpp.o.d"
  "/root/repo/tests/TestChunkOptimizer.cpp" "tests/CMakeFiles/dspec_tests.dir/TestChunkOptimizer.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestChunkOptimizer.cpp.o.d"
  "/root/repo/tests/TestDotprod.cpp" "tests/CMakeFiles/dspec_tests.dir/TestDotprod.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestDotprod.cpp.o.d"
  "/root/repo/tests/TestEarlyReturn.cpp" "tests/CMakeFiles/dspec_tests.dir/TestEarlyReturn.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestEarlyReturn.cpp.o.d"
  "/root/repo/tests/TestEquivalenceProperties.cpp" "tests/CMakeFiles/dspec_tests.dir/TestEquivalenceProperties.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestEquivalenceProperties.cpp.o.d"
  "/root/repo/tests/TestExplain.cpp" "tests/CMakeFiles/dspec_tests.dir/TestExplain.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestExplain.cpp.o.d"
  "/root/repo/tests/TestLexer.cpp" "tests/CMakeFiles/dspec_tests.dir/TestLexer.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestLexer.cpp.o.d"
  "/root/repo/tests/TestMultiSpecialize.cpp" "tests/CMakeFiles/dspec_tests.dir/TestMultiSpecialize.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestMultiSpecialize.cpp.o.d"
  "/root/repo/tests/TestPaperClaims.cpp" "tests/CMakeFiles/dspec_tests.dir/TestPaperClaims.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestPaperClaims.cpp.o.d"
  "/root/repo/tests/TestParser.cpp" "tests/CMakeFiles/dspec_tests.dir/TestParser.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestParser.cpp.o.d"
  "/root/repo/tests/TestPrinterCloner.cpp" "tests/CMakeFiles/dspec_tests.dir/TestPrinterCloner.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestPrinterCloner.cpp.o.d"
  "/root/repo/tests/TestSema.cpp" "tests/CMakeFiles/dspec_tests.dir/TestSema.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestSema.cpp.o.d"
  "/root/repo/tests/TestShaderGallery.cpp" "tests/CMakeFiles/dspec_tests.dir/TestShaderGallery.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestShaderGallery.cpp.o.d"
  "/root/repo/tests/TestShading.cpp" "tests/CMakeFiles/dspec_tests.dir/TestShading.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestShading.cpp.o.d"
  "/root/repo/tests/TestSpeculation.cpp" "tests/CMakeFiles/dspec_tests.dir/TestSpeculation.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestSpeculation.cpp.o.d"
  "/root/repo/tests/TestSupport.cpp" "tests/CMakeFiles/dspec_tests.dir/TestSupport.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestSupport.cpp.o.d"
  "/root/repo/tests/TestTransforms.cpp" "tests/CMakeFiles/dspec_tests.dir/TestTransforms.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestTransforms.cpp.o.d"
  "/root/repo/tests/TestVM.cpp" "tests/CMakeFiles/dspec_tests.dir/TestVM.cpp.o" "gcc" "tests/CMakeFiles/dspec_tests.dir/TestVM.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shading/CMakeFiles/dspec_shading.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/dspec_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dspec_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/specialize/CMakeFiles/dspec_specialize.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/dspec_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dspec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dspec_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dspec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
