# Empty compiler generated dependencies file for dspec_tests.
# This may be replaced when dependencies are built.
