# Empty compiler generated dependencies file for bench_dotprod.
# This may be replaced when dependencies are built.
