file(REMOVE_RECURSE
  "CMakeFiles/bench_dotprod.dir/bench_dotprod.cpp.o"
  "CMakeFiles/bench_dotprod.dir/bench_dotprod.cpp.o.d"
  "bench_dotprod"
  "bench_dotprod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dotprod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
