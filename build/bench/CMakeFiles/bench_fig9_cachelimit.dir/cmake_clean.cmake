file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cachelimit.dir/bench_fig9_cachelimit.cpp.o"
  "CMakeFiles/bench_fig9_cachelimit.dir/bench_fig9_cachelimit.cpp.o.d"
  "bench_fig9_cachelimit"
  "bench_fig9_cachelimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cachelimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
