# Empty dependencies file for cache_budget.
# This may be replaced when dependencies are built.
