file(REMOVE_RECURSE
  "CMakeFiles/cache_budget.dir/cache_budget.cpp.o"
  "CMakeFiles/cache_budget.dir/cache_budget.cpp.o.d"
  "cache_budget"
  "cache_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
