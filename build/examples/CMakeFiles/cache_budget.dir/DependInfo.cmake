
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cache_budget.cpp" "examples/CMakeFiles/cache_budget.dir/cache_budget.cpp.o" "gcc" "examples/CMakeFiles/cache_budget.dir/cache_budget.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shading/CMakeFiles/dspec_shading.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/dspec_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/specialize/CMakeFiles/dspec_specialize.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/dspec_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dspec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dspec_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dspec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
