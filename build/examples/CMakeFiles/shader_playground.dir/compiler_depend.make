# Empty compiler generated dependencies file for shader_playground.
# This may be replaced when dependencies are built.
