file(REMOVE_RECURSE
  "CMakeFiles/shader_playground.dir/shader_playground.cpp.o"
  "CMakeFiles/shader_playground.dir/shader_playground.cpp.o.d"
  "shader_playground"
  "shader_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shader_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
