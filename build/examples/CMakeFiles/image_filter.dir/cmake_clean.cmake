file(REMOVE_RECURSE
  "CMakeFiles/image_filter.dir/image_filter.cpp.o"
  "CMakeFiles/image_filter.dir/image_filter.cpp.o.d"
  "image_filter"
  "image_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
