//===- bench/bench_variant.cpp - Polyvariant reader A/B over the gallery -----===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what a property-specialized variant buys over the generic
/// reader. For every gallery shader the set builder proposes variants
/// that pin the varying control to the abstract properties 0 and 1
/// (Polyvariant.h); pinning the *varying* parameter moves its whole
/// dependence cone into the cache, so the variant reader does strictly
/// less per-pixel work than the generic reader whenever the control
/// actually sits at the pinned value.
///
/// For each shader we take the highest-predicted-benefit variant, render
/// at its admissible control vector, assert the variant framebuffer is
/// bit-identical to the generic one, and report generic vs variant
/// reader p50 into BENCH_variant.json. The headline config field
/// `variant_wins` counts shaders where the variant reader beat the
/// generic p50 (the acceptance gate wants >= 2).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>

using namespace dspec;
using namespace dspec::bench;

namespace {

bool framebuffersIdentical(const Framebuffer &A, const Framebuffer &B) {
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X) {
      const Value &VA = A.at(X, Y), &VB = B.at(X, Y);
      if (VA.Kind != VB.Kind ||
          std::memcmp(VA.F, VB.F, sizeof(VA.F)) != 0)
        return false;
    }
  return true;
}

double timeSeconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

struct VariantRow {
  std::string Shader;
  std::string Variant;
  double GenericP50 = 0.0;
  double VariantP50 = 0.0;
  double Speedup = 1.0;
  double PredictedBenefit = 0.0;
  unsigned GenericCacheBytes = 0;
  unsigned VariantCacheBytes = 0;
  bool Identical = false;
};

void printVariantSweep(const char *OutPath) {
  banner("Polyvariant specialization: generic vs property-pinned reader p50",
         "a reader specialized to 'the varying control is 0 (or 1)' caches "
         "the control's whole dependence cone, beating the generic reader "
         "bit-for-bit whenever the property holds");

  const unsigned Frames = benchFrames();
  RenderGrid Grid(benchWidth(), benchHeight());
  const unsigned Pixels = Grid.pixelCount();

  std::vector<VariantRow> Rows;
  unsigned Wins = 0, Shaders = 0;

  for (const ShaderInfo &Info : shaderGallery()) {
    auto Unit = parseUnit(Info.Source);
    if (!Unit->ok()) {
      std::fprintf(stderr, "!! %s: %s\n", Info.Name.c_str(),
                   Unit->Diags.str().c_str());
      continue;
    }
    const size_t ParamIndex = 0;
    std::vector<std::string> Varying = {Info.Controls[ParamIndex].Name};
    auto Set = specializeAndCompileVariants(*Unit, Info.Name, Varying);
    if (!Set) {
      std::fprintf(stderr, "!! %s: %s\n", Info.Name.c_str(),
                   Unit->Diags.str().c_str());
      continue;
    }

    // Best non-generic variant by predicted Section 4.3 benefit.
    const CompiledVariant *Best = nullptr;
    for (const CompiledVariant &V : Set->Variants)
      if (!V.Key.isGeneric() &&
          (!Best || V.PredictedBenefit > Best->PredictedBenefit))
        Best = &V;
    if (!Best) {
      std::fprintf(stderr, "!! %s: no variant survived the budget\n",
                   Info.Name.c_str());
      continue;
    }
    const CompiledVariant &Generic = Set->Variants[0];

    // Render at the variant's admissible point: every pinned control set
    // to its property value, everything else at the defaults.
    std::vector<float> Controls = ShaderLab::defaultControls(Info);
    for (const VariantPin &Pin : Best->Key.Pins)
      Controls[Pin.ParamIndex - ShaderInfo::NumPixelParams] =
          Pin.Prop == ParamProp::PP_One ? 1.0f : 0.0f;

    RenderEngine Engine(1);
    CacheArena GenericArena, VariantArena;
    Framebuffer GenericFrame(Grid.width(), Grid.height());
    Framebuffer VariantFrame(Grid.width(), Grid.height());
    if (!Engine.loaderPass(Generic.Compiled.LoaderChunk,
                           Generic.Compiled.Spec.Layout, Grid, Controls,
                           GenericArena) ||
        !Engine.loaderPass(Best->Compiled.LoaderChunk,
                           Best->Compiled.Spec.Layout, Grid, Controls,
                           VariantArena)) {
      std::fprintf(stderr, "!! %s loader trapped: %s\n", Info.Name.c_str(),
                   Engine.lastTrap().c_str());
      continue;
    }

    ++Shaders;
    VariantRow Row;
    Row.Shader = Info.Name;
    Row.Variant = Best->Label;
    Row.PredictedBenefit = Best->PredictedBenefit;
    Row.GenericCacheBytes = Generic.Compiled.Spec.Layout.totalBytes();
    Row.VariantCacheBytes = Best->Compiled.Spec.Layout.totalBytes();

    // Warm up (and capture the frames for the bit-identity check).
    Engine.readerPass(Generic.Compiled.ReaderChunk, Grid, Controls,
                      GenericArena, &GenericFrame);
    Engine.readerPass(Best->Compiled.ReaderChunk, Grid, Controls,
                      VariantArena, &VariantFrame);
    Row.Identical = framebuffersIdentical(GenericFrame, VariantFrame);

    std::vector<double> GenericTimes, VariantTimes;
    for (unsigned F = 0; F < Frames; ++F) {
      GenericTimes.push_back(timeSeconds([&] {
        Engine.readerPass(Generic.Compiled.ReaderChunk, Grid, Controls,
                          GenericArena);
      }));
      VariantTimes.push_back(timeSeconds([&] {
        Engine.readerPass(Best->Compiled.ReaderChunk, Grid, Controls,
                          VariantArena);
      }));
    }
    Row.GenericP50 = p50(GenericTimes);
    Row.VariantP50 = p50(VariantTimes);
    Row.Speedup = Row.VariantP50 > 0.0 ? Row.GenericP50 / Row.VariantP50 : 1.0;
    if (Row.VariantP50 < Row.GenericP50 && Row.Identical)
      ++Wins;
    Rows.push_back(std::move(Row));
  }

  std::printf("%u shader(s), %ux%u pixels, p50 of %u frames, 1 thread:\n\n",
              Shaders, Grid.width(), Grid.height(), Frames);
  std::printf("%-10s %-16s %12s %12s %9s %7s %7s %s\n", "shader", "variant",
              "generic us", "variant us", "speedup", "genB", "varB",
              "identical");
  for (const VariantRow &R : Rows)
    std::printf("%-10s %-16s %12.1f %12.1f %8.2fx %7u %7u %s\n",
                R.Shader.c_str(), R.Variant.c_str(), R.GenericP50 * 1e6,
                R.VariantP50 * 1e6, R.Speedup, R.GenericCacheBytes,
                R.VariantCacheBytes, R.Identical ? "yes" : "NO");
  std::printf("\nvariant beat the generic reader p50 on %u of %u shader(s)\n",
              Wins, Shaders);

  BenchJson Json("variant");
  Json.configUnsigned("width", Grid.width());
  Json.configUnsigned("height", Grid.height());
  Json.configUnsigned("frames", Frames);
  Json.configUnsigned("threads", 1);
  Json.configUnsigned("pixels", Pixels);
  Json.configUnsigned("shaders", Shaders);
  Json.configUnsigned("variant_wins", Wins);
  char Row[320];
  for (const VariantRow &R : Rows) {
    std::snprintf(Row, sizeof(Row),
                  "{\"shader\":%s,\"variant\":%s,"
                  "\"generic_p50_seconds\":%.9f,\"variant_p50_seconds\":%.9f,"
                  "\"speedup\":%.3f,\"predicted_benefit\":%.3f,"
                  "\"generic_cache_bytes\":%u,\"variant_cache_bytes\":%u,"
                  "\"identical\":%s}",
                  jsonQuote(R.Shader).c_str(), jsonQuote(R.Variant).c_str(),
                  R.GenericP50, R.VariantP50, R.Speedup, R.PredictedBenefit,
                  R.GenericCacheBytes, R.VariantCacheBytes,
                  R.Identical ? "true" : "false");
    Json.addRow(Row);
  }
  Json.emit(OutPath);
}

// Micro-benchmark tracking one shader's generic-vs-variant reader frame.
void BM_VariantReaderFrame(benchmark::State &State) {
  const ShaderInfo *Info = findShader("marble");
  auto Unit = parseUnit(Info->Source);
  std::vector<std::string> Varying = {Info->Controls[0].Name};
  auto Set = specializeAndCompileVariants(*Unit, Info->Name, Varying);
  const CompiledVariant *Best = nullptr;
  for (const CompiledVariant &V : Set->Variants)
    if (!V.Key.isGeneric() &&
        (!Best || V.PredictedBenefit > Best->PredictedBenefit))
      Best = &V;
  const CompiledVariant &Pick =
      State.range(0) == 0 || !Best ? Set->Variants[0] : *Best;

  RenderGrid Grid(benchWidth(), benchHeight());
  std::vector<float> Controls = ShaderLab::defaultControls(*Info);
  for (const VariantPin &Pin : Pick.Key.Pins)
    Controls[Pin.ParamIndex - ShaderInfo::NumPixelParams] =
        Pin.Prop == ParamProp::PP_One ? 1.0f : 0.0f;
  RenderEngine Engine(1);
  CacheArena Arena;
  Engine.loaderPass(Pick.Compiled.LoaderChunk, Pick.Compiled.Spec.Layout,
                    Grid, Controls, Arena);
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.readerPass(Pick.Compiled.ReaderChunk,
                                               Grid, Controls, Arena));
  State.SetItemsProcessed(State.iterations() * Grid.pixelCount());
  State.SetLabel(Pick.Label);
}
BENCHMARK(BM_VariantReaderFrame)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  printVariantSweep(OutPath ? OutPath : "BENCH_variant.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
