//===- bench/bench_engine_scaling.cpp - Engine data-path scaling -------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the render-engine data path against the seed's: reader-pass
/// throughput (pixels/second) for
///
///   boxed-serial    the pre-engine path — one std::vector<Value> cache
///                   per pixel (24-byte tagged boxes, a heap allocation
///                   per pixel), one VM, a plain loop;
///   packed-serial   the engine at 1 thread over the packed CacheArena
///                   (one contiguous allocation, Figure 8 byte counts);
///   packed-Nt       the engine at 2/4/8 threads.
///
/// Prints a table plus one machine-readable JSON line per configuration
/// (and a summary object), so the scaling curve can be tracked over time.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace dspec;
using namespace dspec::bench;

namespace {

double timeSeconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The seed's data path: per-pixel boxed caches, one VM, a serial loop.
struct BoxedSerialPath {
  const CompiledSpecialization &Compiled;
  const RenderGrid &Grid;
  VM Machine;
  std::vector<Cache> Caches;

  BoxedSerialPath(const CompiledSpecialization &Compiled,
                  const RenderGrid &Grid)
      : Compiled(Compiled), Grid(Grid), Caches(Grid.pixelCount()) {}

  bool runChunk(const Chunk &Code, const std::vector<float> &Controls) {
    std::vector<Value> Args(RenderEngine::NumPixelParams + Controls.size());
    for (size_t C = 0; C < Controls.size(); ++C)
      Args[RenderEngine::NumPixelParams + C] = Value::makeFloat(Controls[C]);
    const auto &Pixels = Grid.pixels();
    for (unsigned I = 0; I < Grid.pixelCount(); ++I) {
      Args[0] = Pixels[I].UV;
      Args[1] = Pixels[I].P;
      Args[2] = Pixels[I].N;
      Args[3] = Pixels[I].I;
      auto R = Machine.run(Code, Args, &Caches[I]);
      if (!R.ok()) {
        std::fprintf(stderr, "boxed path trapped: %s\n",
                     R.TrapMessage.c_str());
        return false;
      }
      benchmark::DoNotOptimize(R.Result);
    }
    return true;
  }

  bool load(const std::vector<float> &Controls) {
    return runChunk(Compiled.LoaderChunk, Controls);
  }
  bool read(const std::vector<float> &Controls) {
    return runChunk(Compiled.ReaderChunk, Controls);
  }
};

struct ScalingRow {
  std::string Config;
  const char *Tier = "switch";
  unsigned Threads = 1;
  double FrameSeconds = 0.0;
  double PixelsPerSecond = 0.0;
  double SpeedupVsBoxed = 1.0;
};

void printScaling(const char *OutPath) {
  banner("Engine scaling: reader throughput, boxed-serial vs packed arena",
         "packing the per-pixel caches (Figure 8 byte counts, one "
         "contiguous arena) and tiling pixels over a thread pool "
         "compounds the paper's per-frame reader speedup");

  ShaderLab Lab(benchWidth(), benchHeight(), benchFrames());
  const ShaderInfo *Info = findShader("marble");
  const size_t ParamIndex = 0; // vary ka
  auto Spec = Lab.specializePartition(*Info, ParamIndex);
  if (!Spec) {
    std::fprintf(stderr, "%s\n", Lab.lastError().c_str());
    std::abort();
  }
  const unsigned Frames = benchFrames();
  const unsigned Pixels = Lab.grid().pixelCount();
  auto Controls = ShaderLab::defaultControls(*Info);
  auto Sweep = Lab.sweepValues(Info->Controls[ParamIndex], Frames);

  std::vector<ScalingRow> Rows;

  // Boxed-serial: the seed's per-pixel std::vector<Value> data path.
  {
    BoxedSerialPath Boxed(Spec->compiled(), Lab.grid());
    if (!Boxed.load(Controls))
      std::abort();
    std::vector<double> Times;
    for (unsigned F = 0; F < Frames; ++F) {
      Controls[ParamIndex] = Sweep[F];
      Times.push_back(timeSeconds([&] { Boxed.read(Controls); }));
    }
    double T = median(Times);
    Rows.push_back({"boxed-serial", "switch", 1, T, Pixels / T, 1.0});
  }

  // Packed: the engine over the CacheArena at 1/2/4/8 threads, per
  // execution tier (see docs/ENGINE.md, "Execution tiers"). The historic
  // packed-* rows stay pinned to the switch tier so their trajectory is
  // comparable across PRs; the threaded/batched rows track the fast tiers.
  for (ExecTier Tier :
       {ExecTier::Switch, ExecTier::Threaded, ExecTier::Batched}) {
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      RenderEngine Engine(Threads);
      Engine.setExecTier(Tier);
      Controls = ShaderLab::defaultControls(*Info);
      if (!Spec->load(Engine, Lab.grid(), Controls)) {
        std::fprintf(stderr, "loader trapped: %s\n",
                     Engine.lastTrap().c_str());
        std::abort();
      }
      std::vector<double> Times;
      for (unsigned F = 0; F < Frames; ++F) {
        Controls[ParamIndex] = Sweep[F];
        Times.push_back(timeSeconds(
            [&] { Spec->readFrame(Engine, Lab.grid(), Controls); }));
      }
      double T = median(Times);
      std::string Stem =
          Tier == ExecTier::Switch ? "packed" : execTierName(Tier);
      std::string Name = Threads == 1
                             ? Stem + "-serial"
                             : Stem + "-" + std::to_string(Threads) + "t";
      Rows.push_back({Name, execTierName(Tier), Threads, T, Pixels / T,
                      Rows[0].FrameSeconds / T});
    }
  }

  std::printf("marble / vary ka, %ux%u pixels, median of %u frames:\n\n",
              Lab.grid().width(), Lab.grid().height(), Frames);
  std::printf("%-16s %-9s %8s %12s %14s %10s\n", "config", "tier", "threads",
              "frame ms", "pixels/sec", "vs boxed");
  for (const ScalingRow &R : Rows)
    std::printf("%-16s %-9s %8u %12.3f %14.0f %9.2fx\n", R.Config.c_str(),
                R.Tier, R.Threads, R.FrameSeconds * 1e3, R.PixelsPerSecond,
                R.SpeedupVsBoxed);

  BenchJson Json("engine_scaling");
  Json.configString("shader", "marble");
  Json.configString("partition", "ka");
  Json.configUnsigned("width", Lab.grid().width());
  Json.configUnsigned("height", Lab.grid().height());
  Json.configUnsigned("frames", Frames);
  char Row[256];
  for (const ScalingRow &R : Rows) {
    std::snprintf(Row, sizeof(Row),
                  "{\"config\":%s,\"tier\":\"%s\",\"threads\":%u,"
                  "\"frame_seconds\":%.9f,\"pixels_per_second\":%.1f,"
                  "\"speedup_vs_boxed\":%.3f}",
                  jsonQuote(R.Config).c_str(), R.Tier, R.Threads,
                  R.FrameSeconds, R.PixelsPerSecond, R.SpeedupVsBoxed);
    Json.addRow(Row);
  }
  Json.emit(OutPath);
}

// Micro-benchmarks of the same passes for google-benchmark tracking.
void BM_ReaderFramePacked(benchmark::State &State) {
  ShaderLab Lab(benchWidth(), benchHeight(), 2);
  const ShaderInfo *Info = findShader("marble");
  auto Spec = Lab.specializePartition(*Info, 0);
  RenderEngine Engine(static_cast<unsigned>(State.range(0)));
  auto Controls = ShaderLab::defaultControls(*Info);
  Spec->load(Engine, Lab.grid(), Controls);
  for (auto _ : State)
    benchmark::DoNotOptimize(Spec->readFrame(Engine, Lab.grid(), Controls));
  State.SetItemsProcessed(State.iterations() * Lab.grid().pixelCount());
}
BENCHMARK(BM_ReaderFramePacked)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ReaderFrameBoxed(benchmark::State &State) {
  ShaderLab Lab(benchWidth(), benchHeight(), 2);
  const ShaderInfo *Info = findShader("marble");
  auto Spec = Lab.specializePartition(*Info, 0);
  BoxedSerialPath Boxed(Spec->compiled(), Lab.grid());
  auto Controls = ShaderLab::defaultControls(*Info);
  Boxed.load(Controls);
  for (auto _ : State)
    benchmark::DoNotOptimize(Boxed.read(Controls));
  State.SetItemsProcessed(State.iterations() * Lab.grid().pixelCount());
}
BENCHMARK(BM_ReaderFrameBoxed)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  printScaling(OutPath ? OutPath : "BENCH_engine_scaling.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
