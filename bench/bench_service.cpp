//===- bench/bench_service.cpp - Service cold/hit latency and shedding -------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the specialization service end to end over the loopback
/// transport — the full client path of frame encode, CRC, dispatch,
/// unit-cache resolution, tiled reader render, and reply decode:
///
///   cold    first request for a key: pays parse + specialize + compile
///           + loader pass before the reader frame;
///   hit     subsequent frames against the cached unit (varying-control
///           value changes per frame, so these are genuine re-renders,
///           not response memoization).
///
/// The cold/hit gap is the paper's specialization cost amortized behind a
/// server cache: hits should be several times cheaper at p50. A second
/// phase bursts requests into a deliberately tiny queue to demonstrate
/// load shedding (the run fails if nothing is shed — admission control
/// that never triggers is untested code).
///
/// Two more phases exercise the event-loop TCP front end (src/net/):
///
///   open-loop load   32 concurrent TCP clients sending at a fixed
///                    arrival rate regardless of replies, measuring
///                    sustained qps and client-observed p50/p95/p99
///                    (the run fails if p99 blows the request deadline);
///   hot vs fair      a victim's p99 with a quota-throttled hot
///                    neighbor blasting the same server must stay
///                    within 2x of its solo p99 — per-client fairness
///                    measured, not asserted.
///
/// Emits BENCH_service.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "jit/Jit.h"
#include "net/NetServer.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "service/Transport.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <future>
#include <thread>

using namespace dspec;
using namespace dspec::bench;

namespace {

struct ServiceRow {
  std::string Shader;
  double ColdSeconds = 0.0; // single cold sample (one miss per key)
  std::vector<double> HitSeconds;
};

/// One full client round trip; aborts on transport or render failure.
double timedRoundTrip(Transport &Client, const RenderRequest &Request) {
  auto Start = std::chrono::steady_clock::now();
  std::string Error;
  auto Reply = requestRender(Client, Request, &Error);
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  if (!Reply || !Reply->ok()) {
    std::fprintf(stderr, "!! %s: %s\n", Request.Shader.c_str(),
                 Reply ? Reply->Error.c_str() : Error.c_str());
    std::abort();
  }
  return Seconds;
}

void runColdVsHit(BenchJson &Json) {
  banner("Service latency: cold (specialize on miss) vs unit-cache hit",
         "a server-side unit cache amortizes specialization across "
         "requests the way staging amortizes it across frames");

  const unsigned W = benchWidth(), H = benchHeight();
  const unsigned Frames = std::max(benchFrames() * 4u, 20u);

  ServiceConfig Config;
  Config.RenderThreads = 1;
  SpecializationService Service(Config);
  auto [Client, ServerEnd] = makeLoopbackPair();
  std::thread Server(
      [&ServerEnd, &Service] { serveConnection(*ServerEnd, Service); });

  std::vector<ServiceRow> Rows;
  std::vector<double> AllHits;
  std::vector<double> AllColds;
  for (const ShaderInfo &Info : shaderGallery()) {
    ServiceRow Row;
    Row.Shader = Info.Name;
    RenderRequest Request;
    Request.Shader = Info.Name;
    Request.Width = W;
    Request.Height = H;
    Request.Controls = ShaderLab::defaultControls(Info);

    Row.ColdSeconds = timedRoundTrip(*Client, Request);
    AllColds.push_back(Row.ColdSeconds);

    const ControlParam &Sweep = Info.Controls.front();
    for (unsigned F = 0; F < Frames; ++F) {
      // A new varying-control value each frame: every hit is a fresh
      // reader render against the cached arena.
      Request.Controls[0] =
          Sweep.SweepMin + (Sweep.SweepMax - Sweep.SweepMin) *
                               static_cast<float>(F) /
                               static_cast<float>(Frames);
      Row.HitSeconds.push_back(timedRoundTrip(*Client, Request));
    }
    AllHits.insert(AllHits.end(), Row.HitSeconds.begin(),
                   Row.HitSeconds.end());
    Rows.push_back(std::move(Row));
  }

  MetricsSnapshot Stats = Service.statsz();
  Client->shutdown();
  Server.join();

  std::printf("%ux%u pixels, 1 cold + %u hit frames per shader:\n\n", W, H,
              Frames);
  std::printf("%-12s %10s %10s %10s %10s %8s\n", "shader", "cold ms",
              "hit p50", "hit p95", "hit p99", "gap");
  char Row[320];
  for (const ServiceRow &R : Rows) {
    double HitP50 = p50(R.HitSeconds);
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f %7.1fx\n",
                R.Shader.c_str(), R.ColdSeconds * 1e3, HitP50 * 1e3,
                p95(R.HitSeconds) * 1e3, p99(R.HitSeconds) * 1e3,
                R.ColdSeconds / HitP50);
    std::snprintf(Row, sizeof(Row),
                  "{\"shader\":%s,\"cold_seconds\":%.9f,%s,"
                  "\"cold_over_hit_p50\":%.3f}",
                  jsonQuote(R.Shader).c_str(), R.ColdSeconds,
                  latencyPercentilesJson(R.HitSeconds).c_str(),
                  R.ColdSeconds / p50(R.HitSeconds));
    Json.addRow(Row);
  }

  double ColdP50 = p50(AllColds), HitP50 = p50(AllHits);
  std::printf("\ngallery p50: cold %.3f ms, hit %.3f ms => %.1fx; cache "
              "%llu hit / %llu miss\n",
              ColdP50 * 1e3, HitP50 * 1e3, ColdP50 / HitP50,
              static_cast<unsigned long long>(Stats.Cache.Hits),
              static_cast<unsigned long long>(Stats.Cache.Misses));
  Json.config("cold_p50_seconds", std::to_string(ColdP50));
  Json.config("hit_p50_seconds", std::to_string(HitP50));
  Json.config("cold_over_hit_p50",
              std::to_string(HitP50 > 0 ? ColdP50 / HitP50 : 0.0));

  // Native-tier stitch cost: what a cold request would additionally pay
  // (once per chunk, cached across every later frame and warm restart)
  // if the service rendered on ExecTier::Native. Measured directly on
  // each gallery reader chunk, outside the serve loop.
  if (jit::available()) {
    ShaderLab Lab(W, H, 2);
    std::vector<double> StitchSeconds;
    uint64_t StitchBytes = 0;
    for (const ShaderInfo &Info : shaderGallery()) {
      auto Spec = Lab.specializePartition(Info, 0);
      if (!Spec)
        continue;
      auto Prog = jit::compileChunk(Spec->compiled().ReaderChunk);
      if (!Prog)
        continue;
      StitchSeconds.push_back(Prog->compileSeconds());
      StitchBytes += Prog->codeBytes();
    }
    double StitchP50 = p50(StitchSeconds);
    std::printf("native stitch: p50 %.3f ms per reader (%zu of %zu "
                "stitched, %llu code bytes total) — %.2f%% of a cold "
                "build, paid once per chunk\n",
                StitchP50 * 1e3, StitchSeconds.size(),
                shaderGallery().size(),
                static_cast<unsigned long long>(StitchBytes),
                ColdP50 > 0 ? StitchP50 / ColdP50 * 100.0 : 0.0);
    Json.config("native_stitch_p50_seconds", std::to_string(StitchP50));
    Json.configUnsigned("native_stitch_code_bytes",
                        static_cast<unsigned>(StitchBytes));
    Json.configUnsigned("native_stitched_readers",
                        static_cast<unsigned>(StitchSeconds.size()));
  } else {
    std::printf("native stitch: unavailable in this build (fallback tier "
                "serves native requests)\n");
  }

  if (Stats.Cache.Misses != shaderGallery().size() ||
      Stats.Cache.Hits !=
          static_cast<uint64_t>(shaderGallery().size()) * Frames) {
    std::fprintf(stderr, "!! unexpected cache traffic: every shader should "
                         "miss once then hit\n");
    std::exit(1);
  }
}

void runOverloadShed(BenchJson &Json) {
  banner("Service load shedding under a forced overload burst",
         "admission control: a bounded queue rejects with a reason "
         "instead of growing without bound");

  // A tiny queue and no batching, so a burst must overflow while the
  // dispatcher is busy with the first (cold, ms-scale) build.
  ServiceConfig Config;
  Config.QueueCapacity = 4;
  Config.MaxBatch = 1;
  Config.Dispatchers = 1;
  SpecializationService Service(Config);

  constexpr unsigned Burst = 200;
  RenderRequest Request;
  Request.Shader = "rings";
  Request.Width = benchWidth();
  Request.Height = benchHeight();
  std::vector<std::future<RenderReply>> Futures;
  Futures.reserve(Burst);
  for (unsigned I = 0; I < Burst; ++I)
    Futures.push_back(Service.submit(Request));

  unsigned Ok = 0, Shed = 0, Other = 0;
  for (std::future<RenderReply> &F : Futures) {
    RenderReply Reply = F.get();
    if (Reply.ok())
      ++Ok;
    else if (Reply.Status == RenderStatus::ShedQueueFull)
      ++Shed;
    else
      ++Other;
  }
  MetricsSnapshot Stats = Service.statsz();

  std::printf("burst of %u same-key requests into a %u-deep queue: %u "
              "rendered, %u shed, %u other\n",
              Burst, Config.QueueCapacity, Ok, Shed, Other);
  Json.configUnsigned("overload_burst", Burst);
  Json.configUnsigned("overload_queue_capacity", Config.QueueCapacity);
  Json.configUnsigned("overload_rendered", Ok);
  Json.configUnsigned("overload_shed", Shed);

  if (Shed == 0 || Other != 0 ||
      Stats.ShedQueueFull != Shed) {
    std::fprintf(stderr,
                 "!! expected a nonzero shed count under overload "
                 "(shed=%u other=%u statsz=%llu)\n",
                 Shed, Other,
                 static_cast<unsigned long long>(Stats.ShedQueueFull));
    std::exit(1);
  }
}

//===----------------------------------------------------------------------===//
// TCP open-loop load and fairness
//===----------------------------------------------------------------------===//

/// A service plus a NetServer on an ephemeral TCP port.
struct TcpBenchServer {
  explicit TcpBenchServer(const ServiceConfig &ServiceCfg,
                          NetServerConfig NetCfg)
      : Service(ServiceCfg) {
    NetCfg.TcpHostPort = "127.0.0.1:0";
    Server = std::make_unique<NetServer>(Service, std::move(NetCfg));
    std::string Error;
    if (!Server->start(&Error)) {
      std::fprintf(stderr, "!! cannot start TCP server: %s\n", Error.c_str());
      std::abort();
    }
  }
  ~TcpBenchServer() {
    Server->shutdownServer();
    Service.drain();
  }
  std::unique_ptr<Transport> connect() {
    std::string Error;
    auto T = connectTcp("127.0.0.1", Server->boundTcpPort(), &Error);
    if (!T) {
      std::fprintf(stderr, "!! connect: %s\n", Error.c_str());
      std::abort();
    }
    return T;
  }
  SpecializationService Service;
  std::unique_ptr<NetServer> Server;
};

struct LoadClientResult {
  std::vector<double> LatSeconds;
  unsigned Ok = 0, Shed = 0, Other = 0;
};

/// One open-loop client: the sender paces requests on the arrival
/// schedule no matter how fast replies come back (so server-side queueing
/// shows up as client latency, not a slower offered load); the receiver
/// matches replies to send timestamps — valid because the front end
/// serializes replies in strict request order per connection.
void runOpenLoopClient(Transport &T, const RenderRequest &Request,
                       unsigned Count, double Rate,
                       std::chrono::steady_clock::time_point Epoch,
                       LoadClientResult &Out) {
  ByteWriter Payload;
  encodeRenderRequest(Payload, Request);
  std::vector<unsigned char> Frame =
      encodeFrame(FrameType::RenderRequest, Payload.bytes());

  std::vector<std::atomic<uint64_t>> SentNanos(Count);
  std::thread Receiver([&] {
    for (unsigned N = 0; N < Count; ++N) {
      FrameType Type;
      std::vector<unsigned char> Reply;
      std::string Error;
      if (!readFrame(T, Type, Reply, &Error) ||
          Type != FrameType::RenderReply) {
        ++Out.Other;
        continue;
      }
      double Now = std::chrono::duration<double, std::nano>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
      Out.LatSeconds.push_back(
          (Now - static_cast<double>(SentNanos[N].load())) * 1e-9);
      RenderReply Decoded;
      ByteReader R(Reply);
      if (!decodeRenderReply(R, Decoded, &Error))
        ++Out.Other;
      else if (Decoded.ok())
        ++Out.Ok;
      else if (Decoded.Status == RenderStatus::ShedQuota ||
               Decoded.Status == RenderStatus::ShedQueueFull ||
               Decoded.Status == RenderStatus::ShedDeadline)
        ++Out.Shed;
      else
        ++Out.Other;
    }
  });

  for (unsigned N = 0; N < Count; ++N) {
    std::this_thread::sleep_until(
        Epoch + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(N / Rate)));
    SentNanos[N].store(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count()));
    if (!T.writeAll(Frame.data(), Frame.size()))
      break;
  }
  Receiver.join();
}

void runTcpOpenLoopLoad(BenchJson &Json) {
  banner("Open-loop TCP load: 32 concurrent clients at a fixed arrival rate",
         "the event-loop front end multiplexes every connection on a few "
         "IO threads; client-observed tail latency is the contract");

  constexpr unsigned Clients = 32;
  constexpr double RatePerClient = 40.0; // 1280 qps offered
  constexpr unsigned PerClient = 80;     // ~2 s of traffic
  constexpr uint32_t DeadlineMillis = 500;

  ServiceConfig Cfg;
  NetServerConfig Net;
  Net.IoThreads = 2;
  TcpBenchServer S(Cfg, Net);

  RenderRequest Request;
  Request.Shader = "plastic";
  Request.Width = benchWidth();
  Request.Height = benchHeight();
  Request.DeadlineMillis = DeadlineMillis;

  { // Warm the unit, so the load phase measures hits, not one odd build.
    auto Warm = S.connect();
    std::string Error;
    if (!requestRender(*Warm, Request, &Error))
      std::abort();
  }

  std::vector<LoadClientResult> Results(Clients);
  std::vector<std::unique_ptr<Transport>> Conns;
  for (unsigned I = 0; I < Clients; ++I)
    Conns.push_back(S.connect());

  auto Epoch = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(100);
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      runOpenLoopClient(*Conns[I], Request, PerClient, RatePerClient, Epoch,
                        Results[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  std::vector<double> All;
  unsigned Ok = 0, Shed = 0, Other = 0;
  for (const LoadClientResult &R : Results) {
    All.insert(All.end(), R.LatSeconds.begin(), R.LatSeconds.end());
    Ok += R.Ok;
    Shed += R.Shed;
    Other += R.Other;
  }
  unsigned Total = Clients * PerClient;
  double Qps = static_cast<double>(Ok + Shed) / Elapsed;
  double ShedRate = static_cast<double>(Shed) / Total;

  std::printf("%u clients x %u requests at %.0f rps each (offered %.0f "
              "qps):\n  sustained %.0f qps, latency p50 %.3f ms, p95 %.3f "
              "ms, p99 %.3f ms, shed %.1f%%, other %u\n",
              Clients, PerClient, RatePerClient, Clients * RatePerClient,
              Qps, p50(All) * 1e3, p95(All) * 1e3, p99(All) * 1e3,
              ShedRate * 100.0, Other);

  Json.configUnsigned("tcp_load_clients", Clients);
  Json.configUnsigned("tcp_load_requests", Total);
  Json.config("tcp_load_offered_qps",
              std::to_string(Clients * RatePerClient));
  Json.config("tcp_load_sustained_qps", std::to_string(Qps));
  Json.config("tcp_load_p50_seconds", std::to_string(p50(All)));
  Json.config("tcp_load_p95_seconds", std::to_string(p95(All)));
  Json.config("tcp_load_p99_seconds", std::to_string(p99(All)));
  Json.config("tcp_load_shed_rate", std::to_string(ShedRate));

  if (Other != 0 || All.empty() ||
      p99(All) >= static_cast<double>(DeadlineMillis) / 1e3) {
    std::fprintf(stderr,
                 "!! open-loop load failed its contract: p99 %.3f ms vs "
                 "%u ms deadline, %u undecodable replies\n",
                 p99(All) * 1e3, DeadlineMillis, Other);
    std::exit(1);
  }
}

void runHotVsFair(BenchJson &Json) {
  banner("Fairness: victim p99 beside a quota-throttled hot client",
         "per-connection token buckets shed the greedy client's excess "
         "with a structured reply instead of taxing its neighbors");

  constexpr unsigned VictimRequests = 60;
  constexpr unsigned HotRequests = 4000;

  ServiceConfig Cfg;
  NetServerConfig Net;
  Net.IoThreads = 2;
  Net.QuotaRps = 50.0; // the hot client's blast is mostly shed
  Net.QuotaBurst = 8.0;
  TcpBenchServer S(Cfg, Net);

  RenderRequest Request;
  Request.Shader = "rings";
  Request.Width = benchWidth();
  Request.Height = benchHeight();

  { // warm
    auto Warm = S.connect();
    std::string Error;
    if (!requestRender(*Warm, Request, &Error))
      std::abort();
  }

  // The victim runs closed-loop at a modest pace that stays inside its
  // own bucket, so every one of its requests is rendered, never shed.
  auto RunVictim = [&]() {
    auto Conn = S.connect();
    std::vector<double> Lat;
    for (unsigned N = 0; N < VictimRequests; ++N) {
      std::this_thread::sleep_for(std::chrono::milliseconds(21));
      auto T0 = std::chrono::steady_clock::now();
      std::string Error;
      auto Reply = requestRender(*Conn, Request, &Error);
      Lat.push_back(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - T0)
                        .count());
      if (!Reply || !Reply->ok()) {
        std::fprintf(stderr, "!! victim request failed: %s\n",
                     Reply ? Reply->Error.c_str() : Error.c_str());
        std::exit(1);
      }
    }
    return Lat;
  };

  std::vector<double> Solo = RunVictim();

  // Same measurement with a hot neighbor pipelining a blast of requests
  // as fast as the socket accepts them; the quota sheds almost all.
  std::atomic<bool> HotDone{false};
  std::thread Hot([&] {
    auto Conn = S.connect();
    ByteWriter Payload;
    encodeRenderRequest(Payload, Request);
    std::vector<unsigned char> Frame =
        encodeFrame(FrameType::RenderRequest, Payload.bytes());
    std::thread Drain([&] {
      for (unsigned N = 0; N < HotRequests; ++N) {
        FrameType Type;
        std::vector<unsigned char> Reply;
        std::string Error;
        if (!readFrame(*Conn, Type, Reply, &Error))
          break;
      }
    });
    for (unsigned N = 0; N < HotRequests; ++N)
      if (!Conn->writeAll(Frame.data(), Frame.size()))
        break;
    Drain.join();
    HotDone.store(true);
  });
  std::vector<double> Beside = RunVictim();
  Hot.join();

  NetServerStats NetStats = S.Server->stats();
  double SoloP99 = p99(Solo), BesideP99 = p99(Beside);
  // Sub-millisecond p99s wobble with scheduler noise; the fairness claim
  // is judged against a 2 ms floor so the ratio measures interference,
  // not jitter.
  double Ratio = BesideP99 / std::max(SoloP99, 0.002);
  std::printf("victim p99 solo %.3f ms, beside hot client %.3f ms "
              "(%.2fx; hot client shed %llu of %u)\n",
              SoloP99 * 1e3, BesideP99 * 1e3, Ratio,
              static_cast<unsigned long long>(NetStats.QuotaSheds),
              HotRequests);

  Json.config("fair_victim_solo_p99_seconds", std::to_string(SoloP99));
  Json.config("fair_victim_hot_p99_seconds", std::to_string(BesideP99));
  Json.config("fair_victim_p99_ratio", std::to_string(Ratio));
  Json.configUnsigned("fair_hot_shed",
                      static_cast<unsigned>(NetStats.QuotaSheds));

  if (NetStats.QuotaSheds == 0 || Ratio > 2.0) {
    std::fprintf(stderr,
                 "!! fairness violated: victim p99 ratio %.2fx (limit "
                 "2.0x), hot sheds %llu\n",
                 Ratio,
                 static_cast<unsigned long long>(NetStats.QuotaSheds));
    std::exit(1);
  }
}

// Micro-benchmark: one hit round trip through the full framed protocol.
void BM_ServiceHitRoundTrip(benchmark::State &State) {
  SpecializationService Service;
  auto [Client, ServerEnd] = makeLoopbackPair();
  std::thread Server(
      [&ServerEnd, &Service] { serveConnection(*ServerEnd, Service); });
  RenderRequest Request;
  Request.Shader = "plastic";
  Request.Width = benchWidth();
  Request.Height = benchHeight();
  std::string Error;
  if (!requestRender(*Client, Request, &Error)) // warm the cache
    std::abort();
  for (auto _ : State) {
    auto Reply = requestRender(*Client, Request, &Error);
    benchmark::DoNotOptimize(Reply);
  }
  Client->shutdown();
  Server.join();
}
BENCHMARK(BM_ServiceHitRoundTrip)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  BenchJson Json("service");
  Json.configUnsigned("width", benchWidth());
  Json.configUnsigned("height", benchHeight());
  runColdVsHit(Json);
  runOverloadShed(Json);
  runTcpOpenLoopLoad(Json);
  runHotVsFair(Json);
  if (!Json.emit(OutPath ? OutPath : "BENCH_service.json"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
