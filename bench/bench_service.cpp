//===- bench/bench_service.cpp - Service cold/hit latency and shedding -------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the specialization service end to end over the loopback
/// transport — the full client path of frame encode, CRC, dispatch,
/// unit-cache resolution, tiled reader render, and reply decode:
///
///   cold    first request for a key: pays parse + specialize + compile
///           + loader pass before the reader frame;
///   hit     subsequent frames against the cached unit (varying-control
///           value changes per frame, so these are genuine re-renders,
///           not response memoization).
///
/// The cold/hit gap is the paper's specialization cost amortized behind a
/// server cache: hits should be several times cheaper at p50. A second
/// phase bursts requests into a deliberately tiny queue to demonstrate
/// load shedding (the run fails if nothing is shed — admission control
/// that never triggers is untested code). Emits BENCH_service.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "service/Protocol.h"
#include "service/Service.h"
#include "service/Transport.h"

#include <benchmark/benchmark.h>

#include <future>
#include <thread>

using namespace dspec;
using namespace dspec::bench;

namespace {

struct ServiceRow {
  std::string Shader;
  double ColdSeconds = 0.0; // single cold sample (one miss per key)
  std::vector<double> HitSeconds;
};

/// One full client round trip; aborts on transport or render failure.
double timedRoundTrip(Transport &Client, const RenderRequest &Request) {
  auto Start = std::chrono::steady_clock::now();
  std::string Error;
  auto Reply = requestRender(Client, Request, &Error);
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  if (!Reply || !Reply->ok()) {
    std::fprintf(stderr, "!! %s: %s\n", Request.Shader.c_str(),
                 Reply ? Reply->Error.c_str() : Error.c_str());
    std::abort();
  }
  return Seconds;
}

void runColdVsHit(BenchJson &Json) {
  banner("Service latency: cold (specialize on miss) vs unit-cache hit",
         "a server-side unit cache amortizes specialization across "
         "requests the way staging amortizes it across frames");

  const unsigned W = benchWidth(), H = benchHeight();
  const unsigned Frames = std::max(benchFrames() * 4u, 20u);

  ServiceConfig Config;
  Config.RenderThreads = 1;
  SpecializationService Service(Config);
  auto [Client, ServerEnd] = makeLoopbackPair();
  std::thread Server(
      [&ServerEnd, &Service] { serveConnection(*ServerEnd, Service); });

  std::vector<ServiceRow> Rows;
  std::vector<double> AllHits;
  std::vector<double> AllColds;
  for (const ShaderInfo &Info : shaderGallery()) {
    ServiceRow Row;
    Row.Shader = Info.Name;
    RenderRequest Request;
    Request.Shader = Info.Name;
    Request.Width = W;
    Request.Height = H;
    Request.Controls = ShaderLab::defaultControls(Info);

    Row.ColdSeconds = timedRoundTrip(*Client, Request);
    AllColds.push_back(Row.ColdSeconds);

    const ControlParam &Sweep = Info.Controls.front();
    for (unsigned F = 0; F < Frames; ++F) {
      // A new varying-control value each frame: every hit is a fresh
      // reader render against the cached arena.
      Request.Controls[0] =
          Sweep.SweepMin + (Sweep.SweepMax - Sweep.SweepMin) *
                               static_cast<float>(F) /
                               static_cast<float>(Frames);
      Row.HitSeconds.push_back(timedRoundTrip(*Client, Request));
    }
    AllHits.insert(AllHits.end(), Row.HitSeconds.begin(),
                   Row.HitSeconds.end());
    Rows.push_back(std::move(Row));
  }

  MetricsSnapshot Stats = Service.statsz();
  Client->shutdown();
  Server.join();

  std::printf("%ux%u pixels, 1 cold + %u hit frames per shader:\n\n", W, H,
              Frames);
  std::printf("%-12s %10s %10s %10s %10s %8s\n", "shader", "cold ms",
              "hit p50", "hit p95", "hit p99", "gap");
  char Row[320];
  for (const ServiceRow &R : Rows) {
    double HitP50 = p50(R.HitSeconds);
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f %7.1fx\n",
                R.Shader.c_str(), R.ColdSeconds * 1e3, HitP50 * 1e3,
                p95(R.HitSeconds) * 1e3, p99(R.HitSeconds) * 1e3,
                R.ColdSeconds / HitP50);
    std::snprintf(Row, sizeof(Row),
                  "{\"shader\":%s,\"cold_seconds\":%.9f,%s,"
                  "\"cold_over_hit_p50\":%.3f}",
                  jsonQuote(R.Shader).c_str(), R.ColdSeconds,
                  latencyPercentilesJson(R.HitSeconds).c_str(),
                  R.ColdSeconds / p50(R.HitSeconds));
    Json.addRow(Row);
  }

  double ColdP50 = p50(AllColds), HitP50 = p50(AllHits);
  std::printf("\ngallery p50: cold %.3f ms, hit %.3f ms => %.1fx; cache "
              "%llu hit / %llu miss\n",
              ColdP50 * 1e3, HitP50 * 1e3, ColdP50 / HitP50,
              static_cast<unsigned long long>(Stats.Cache.Hits),
              static_cast<unsigned long long>(Stats.Cache.Misses));
  Json.config("cold_p50_seconds", std::to_string(ColdP50));
  Json.config("hit_p50_seconds", std::to_string(HitP50));
  Json.config("cold_over_hit_p50",
              std::to_string(HitP50 > 0 ? ColdP50 / HitP50 : 0.0));

  if (Stats.Cache.Misses != shaderGallery().size() ||
      Stats.Cache.Hits !=
          static_cast<uint64_t>(shaderGallery().size()) * Frames) {
    std::fprintf(stderr, "!! unexpected cache traffic: every shader should "
                         "miss once then hit\n");
    std::exit(1);
  }
}

void runOverloadShed(BenchJson &Json) {
  banner("Service load shedding under a forced overload burst",
         "admission control: a bounded queue rejects with a reason "
         "instead of growing without bound");

  // A tiny queue and no batching, so a burst must overflow while the
  // dispatcher is busy with the first (cold, ms-scale) build.
  ServiceConfig Config;
  Config.QueueCapacity = 4;
  Config.MaxBatch = 1;
  Config.Dispatchers = 1;
  SpecializationService Service(Config);

  constexpr unsigned Burst = 200;
  RenderRequest Request;
  Request.Shader = "rings";
  Request.Width = benchWidth();
  Request.Height = benchHeight();
  std::vector<std::future<RenderReply>> Futures;
  Futures.reserve(Burst);
  for (unsigned I = 0; I < Burst; ++I)
    Futures.push_back(Service.submit(Request));

  unsigned Ok = 0, Shed = 0, Other = 0;
  for (std::future<RenderReply> &F : Futures) {
    RenderReply Reply = F.get();
    if (Reply.ok())
      ++Ok;
    else if (Reply.Status == RenderStatus::ShedQueueFull)
      ++Shed;
    else
      ++Other;
  }
  MetricsSnapshot Stats = Service.statsz();

  std::printf("burst of %u same-key requests into a %u-deep queue: %u "
              "rendered, %u shed, %u other\n",
              Burst, Config.QueueCapacity, Ok, Shed, Other);
  Json.configUnsigned("overload_burst", Burst);
  Json.configUnsigned("overload_queue_capacity", Config.QueueCapacity);
  Json.configUnsigned("overload_rendered", Ok);
  Json.configUnsigned("overload_shed", Shed);

  if (Shed == 0 || Other != 0 ||
      Stats.ShedQueueFull != Shed) {
    std::fprintf(stderr,
                 "!! expected a nonzero shed count under overload "
                 "(shed=%u other=%u statsz=%llu)\n",
                 Shed, Other,
                 static_cast<unsigned long long>(Stats.ShedQueueFull));
    std::exit(1);
  }
}

// Micro-benchmark: one hit round trip through the full framed protocol.
void BM_ServiceHitRoundTrip(benchmark::State &State) {
  SpecializationService Service;
  auto [Client, ServerEnd] = makeLoopbackPair();
  std::thread Server(
      [&ServerEnd, &Service] { serveConnection(*ServerEnd, Service); });
  RenderRequest Request;
  Request.Shader = "plastic";
  Request.Width = benchWidth();
  Request.Height = benchHeight();
  std::string Error;
  if (!requestRender(*Client, Request, &Error)) // warm the cache
    std::abort();
  for (auto _ : State) {
    auto Reply = requestRender(*Client, Request, &Error);
    benchmark::DoNotOptimize(Reply);
  }
  Client->shutdown();
  Server.join();
}
BENCHMARK(BM_ServiceHitRoundTrip)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  BenchJson Json("service");
  Json.configUnsigned("width", benchWidth());
  Json.configUnsigned("height", benchHeight());
  runColdVsHit(Json);
  runOverloadShed(Json);
  if (!Json.emit(OutPath ? OutPath : "BENCH_service.json"))
    return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
