//===- bench/bench_fig10_normalized.cpp - Figure 10 --------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 10: each rings partition's speedup under a cache
/// byte bound, normalized to that partition's unlimited (maximum)
/// speedup, plus the mean curve. Paper expectations: roughly 70% of the
/// maximum speedup is retained when the cache is limited to 20% of its
/// full size, and roughly 90% at 30% — because many partitions need less
/// than the full budget, and the first cached values carry most of the
/// benefit (the paper's lightx partition gets 65% of its speedup from its
/// first four bytes).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace dspec;
using namespace dspec::bench;

namespace {

void printFigure10() {
  banner("Figure 10: % of maximum speedup vs cache size, shader 10 (rings)",
         "~70% of max speedup at 20% of the cache budget; ~90% at 30%; "
         "100% as the bound reaches each partition's natural size");

  ShaderLab Lab(benchWidth(), benchHeight(), benchFrames());
  const unsigned MaxBound = 40;
  auto Rows = runCacheLimitSweep(Lab, MaxBound);

  std::map<std::string, std::map<unsigned, double>> Table;
  for (const LimitSweepRow &Row : Rows)
    Table[Row.ParamName][Row.ByteLimit] = Row.Speedup;

  std::printf("%-11s", "partition");
  for (unsigned Bound = 0; Bound <= MaxBound; Bound += 4)
    std::printf(" %5uB", Bound);
  std::printf("\n");

  std::map<unsigned, std::vector<double>> PerBound;
  for (const ShaderInfo &Info = *findShader("rings");
       const ControlParam &Param : Info.Controls) {
    auto It = Table.find(Param.Name);
    if (It == Table.end())
      continue;
    // Normalize: a speedup of 1.0x counts as 0% benefit, the unlimited
    // speedup as 100%, so the curve measures retained *benefit*.
    double MaxSpeedup = It->second[MaxBound];
    std::printf("%-11s", Param.Name.c_str());
    for (unsigned Bound = 0; Bound <= MaxBound; Bound += 4) {
      double Pct = MaxSpeedup > 1.0
                       ? 100.0 * (It->second[Bound] - 1.0) / (MaxSpeedup - 1.0)
                       : 100.0;
      Pct = std::max(0.0, std::min(120.0, Pct));
      PerBound[Bound].push_back(Pct);
      std::printf(" %5.0f%%", Pct);
    }
    std::printf("\n");
  }

  std::printf("%-11s", "mean");
  for (unsigned Bound = 0; Bound <= MaxBound; Bound += 4)
    std::printf(" %5.0f%%", mean(PerBound[Bound]));
  std::printf("\n");

  std::printf("\nmean retained benefit at 8B (20%% of 40B): %.0f%% "
              "(paper: ~70%%);  at 12B (30%%): %.0f%% (paper: ~90%%)\n",
              mean(PerBound[8]), mean(PerBound[12]));
}

} // namespace

int main(int argc, char **argv) {
  printFigure10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
