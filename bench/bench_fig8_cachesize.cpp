//===- bench/bench_fig8_cachesize.cpp - Figure 8 -----------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 8: the single-pixel cache size of every input
/// partition, plus the Section 5.3 aggregates. Paper expectations: sizes
/// vary widely across partitions even within one shader; overall mean 22
/// and median 20 bytes; total memory (size x number of per-pixel caches)
/// comfortably fits a workstation.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace dspec;
using namespace dspec::bench;

namespace {

void printFigure8(const char *OutPath) {
  banner("Figure 8: single-pixel cache sizes for all input partitions",
         "wide variance; overall mean 22 bytes, median 20 bytes; total for "
         "a 640x480 image well within physical memory");

  ShaderLab Lab(2, 2); // no timing needed: layout only
  std::printf("%-3s %-9s %-11s %8s %6s\n", "sh", "shader", "partition",
              "bytes", "slots");

  BenchJson Json("fig8_cachesize");
  std::vector<double> AllBytes;
  char Row[192];
  for (const ShaderInfo &Info : shaderGallery()) {
    for (size_t C = 0; C < Info.Controls.size(); ++C) {
      auto Spec = Lab.specializePartition(Info, C);
      if (!Spec) {
        std::printf("!! %s: %s\n", Info.Name.c_str(),
                    Lab.lastError().c_str());
        continue;
      }
      const CacheLayout &Layout = Spec->compiled().Spec.Layout;
      AllBytes.push_back(Layout.totalBytes());
      std::printf("%-3u %-9s %-11s %7uB %6u\n", Info.Index,
                  Info.Name.c_str(), Info.Controls[C].Name.c_str(),
                  Layout.totalBytes(), Layout.slotCount());
      std::snprintf(Row, sizeof(Row),
                    "{\"shader\":%s,\"partition\":%s,\"cache_bytes\":%u,"
                    "\"slots\":%u}",
                    jsonQuote(Info.Name).c_str(),
                    jsonQuote(Info.Controls[C].Name).c_str(),
                    Layout.totalBytes(), Layout.slotCount());
      Json.addRow(Row);
    }
  }

  double Mean = mean(AllBytes);
  double Median = median(AllBytes);
  std::printf("\noverall: mean %.1f bytes (paper: 22), median %.1f bytes "
              "(paper: 20), %zu partitions\n",
              Mean, Median, AllBytes.size());

  // Section 5.3's memory check for a full 640x480 image.
  double WorstBytes = *std::max_element(AllBytes.begin(), AllBytes.end());
  double TotalMB = WorstBytes * 640.0 * 480.0 / (1024.0 * 1024.0);
  std::printf("worst-case 640x480 image: %.0f caches x %.0f bytes = %.1f "
              "MiB (paper: well within a 64 MB workstation)\n",
              640.0 * 480.0, WorstBytes, TotalMB);

  char Num[64];
  std::snprintf(Num, sizeof(Num), "%.1f", Mean);
  Json.config("mean_bytes", Num);
  std::snprintf(Num, sizeof(Num), "%.1f", Median);
  Json.config("median_bytes", Num);
  std::snprintf(Num, sizeof(Num), "%.0f", WorstBytes);
  Json.config("worst_bytes", Num);
  Json.configUnsigned("partitions", static_cast<unsigned>(AllBytes.size()));
  Json.emit(OutPath);
}

void BM_SpecializeRingsPartition(benchmark::State &State) {
  // Cost of constructing one loader/reader pair (the paper installs a
  // shader by building all of its partitions, "a few seconds" total).
  ShaderLab Lab(2, 2);
  const ShaderInfo *Info = findShader("rings");
  for (auto _ : State)
    benchmark::DoNotOptimize(Lab.specializePartition(*Info, 8));
}
BENCHMARK(BM_SpecializeRingsPartition)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  printFigure8(OutPath ? OutPath : "BENCH_fig8.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
