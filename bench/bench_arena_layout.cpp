//===- bench/bench_arena_layout.cpp - Arena layout A/B over the gallery ------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the batched reader pass of every gallery shader under the
/// CacheArena's physical layouts (engine/ArenaLayout.h):
///
///   pixel-major    the seed arrangement — one contiguous stride per
///                  pixel, map-free views (identity baseline);
///   slot-major     full struct-of-arrays columns, so the batched tier's
///                  per-slot lane loops walk unit-stride memory across
///                  the whole grid;
///   tile-blocked   slot-major within fixed pixel blocks (swept over a
///                  couple of block sizes), keeping one block's working
///                  set L2-resident while lane loops stay unit stride;
///   auto           chooseArenaLayout(Batched, tile) — what
///                  `dspec serve --arena-layout auto` resolves to.
///
/// Non-identity configs pack cold slots (ReuseWeight < 1) behind the hot
/// columns, so the streaming reader's per-frame traffic is the *hot*
/// stride x pixels — the Section 4.3 measured working set. The sweep
/// also walks an arena-bytes axis (several grid sizes) because layout
/// only pays once the arena outgrows the cache hierarchy; the win gate
/// is evaluated at the largest grid that ran.
///
/// All layouts render bit-identical framebuffers (a checksum cross-check
/// here, the full differential in tests/TestArenaLayout.cpp), so the only
/// difference is speed. Emits BENCH_arena.json; the CI smoke gate reads
/// auto_wins_or_ties / auto_not_worst from the config block.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

using namespace dspec;
using namespace dspec::bench;

namespace {

double timeSeconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// This bench defaults to a grid large enough that the arena outgrows
/// L2 (layout is a memory-hierarchy effect; the 48x32 default used by
/// the figure benches is cache-resident and would measure noise).
unsigned arenaBenchWidth() { return envUnsigned("DSPEC_BENCH_WIDTH", 640); }
unsigned arenaBenchHeight() { return envUnsigned("DSPEC_BENCH_HEIGHT", 400); }

/// Arena-bytes axis: grids from cache-resident up to the production
/// point. CI smoke caps the axis with DSPEC_BENCH_ARENA_MAX_PIXELS.
struct GridPoint {
  unsigned Width = 0;
  unsigned Height = 0;
};

std::vector<GridPoint> gridAxis() {
  std::vector<GridPoint> Axis = {{64, 48}, {256, 160}};
  GridPoint Prod{arenaBenchWidth(), arenaBenchHeight()};
  // Drop axis points at or above the production grid so overrides that
  // shrink it (CI smoke) do not re-run the same point twice.
  std::vector<GridPoint> Out;
  for (const GridPoint &G : Axis)
    if (static_cast<uint64_t>(G.Width) * G.Height <
        static_cast<uint64_t>(Prod.Width) * Prod.Height)
      Out.push_back(G);
  Out.push_back(Prod);
  unsigned MaxPixels = envUnsigned("DSPEC_BENCH_ARENA_MAX_PIXELS", 0);
  if (MaxPixels) {
    std::vector<GridPoint> Capped;
    for (const GridPoint &G : Out)
      if (static_cast<uint64_t>(G.Width) * G.Height <= MaxPixels)
        Capped.push_back(G);
    if (Capped.empty())
      Capped.push_back(Out.front());
    Out = Capped;
  }
  return Out;
}

struct LayoutConfigSpec {
  const char *Label = "";
  ArenaLayoutConfig Cfg;
  bool IsBaseline = false;
};

/// The fixed configs are exactly the measured-auto candidate set
/// (engine/ArenaLayout.h), so the rows show what auto chose between.
std::vector<LayoutConfigSpec> layoutConfigs(unsigned EngineTilePixels) {
  std::vector<ArenaLayoutConfig> Candidates =
      arenaLayoutCandidates(ExecTier::Batched, EngineTilePixels);
  std::vector<LayoutConfigSpec> Out;
  Out.push_back({"pixel-major", Candidates[0], true});
  Out.push_back({"slot-major", Candidates[1], false});
  Out.push_back({"tile-blocked/1k", Candidates[2], false});
  Out.push_back({"tile-blocked/4k", Candidates[3], false});
  return Out;
}

/// Order-independent FNV over the framebuffer's value bits — enough to
/// catch a layout that decodes the wrong bytes.
uint64_t framebufferChecksum(const Framebuffer &FB) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 1099511628211ull;
    }
  };
  for (unsigned Y = 0; Y < FB.height(); ++Y)
    for (unsigned X = 0; X < FB.width(); ++X) {
      const Value &V = FB.at(X, Y);
      Mix(&V.Kind, sizeof(V.Kind));
      Mix(V.F, sizeof(V.F));
      Mix(&V.I, sizeof(V.I));
    }
  return H;
}

struct LayoutRow {
  std::string Shader;
  std::string Layout;
  std::string Chosen; ///< measured-auto rows: the layout calibration picked
  unsigned GridW = 0;
  unsigned GridH = 0;
  unsigned TilePixels = 0;
  bool PackCold = false;
  unsigned StrideBytes = 0;
  unsigned HotStrideBytes = 0;
  uint64_t PhysicalBytes = 0;
  double P50Seconds = 0.0;
  double PixelsPerSecond = 0.0;
  double SpeedupVsPixelMajor = 1.0;
  bool BitIdentical = true;
};

void printLayoutSweep(const char *OutPath) {
  banner("Arena layouts: batched reader p50 per gallery shader, "
         "pixel-major vs slot-major vs tile-blocked vs auto",
         "the paper sizes caches in bytes (Section 4.3); arranging those "
         "bytes for the memory hierarchy — unit-stride columns, cold "
         "slots packed out of the streaming stride — buys reader "
         "speedup without changing a single output bit");

  const unsigned Frames = benchFrames();
  std::vector<GridPoint> Grids = gridAxis();
  const GridPoint Gate = Grids.back();

  std::vector<LayoutRow> Rows;
  unsigned Shaders = 0, AutoWinsOrTies = 0, AutoNotWorst = 0;
  unsigned Mismatches = 0;
  double BestAutoSpeedup = 0.0;

  for (const GridPoint &G : Grids) {
    ShaderLab Lab(G.Width, G.Height, Frames);
    const unsigned Pixels = Lab.grid().pixelCount();
    const bool IsGateGrid = G.Width == Gate.Width && G.Height == Gate.Height;
    std::vector<LayoutConfigSpec> Configs =
        layoutConfigs(Lab.engine().tilePixels());

    for (const ShaderInfo &Info : shaderGallery()) {
      const size_t ParamIndex = 0;
      auto Spec = Lab.specializePartition(Info, ParamIndex);
      if (!Spec) {
        std::fprintf(stderr, "!! %s: %s\n", Info.Name.c_str(),
                     Lab.lastError().c_str());
        continue;
      }
      auto Controls = ShaderLab::defaultControls(Info);
      auto Sweep = Lab.sweepValues(Info.Controls[ParamIndex], Frames);

      if (IsGateGrid)
        ++Shaders;
      double BaselineP50 = 0.0, AutoP50 = 0.0, WorstFixedP50 = 0.0;
      uint64_t BaselineSum = 0;
      bool HaveBaselineSum = false;

      // Loads the arena under \p Cfg (the loader engine's layout governs
      // how the arena is blocked; readers accept any layout — views
      // carry the address map), then times warm reader frames. Returns
      // the p50 seconds, or 0 on a trap.
      auto measureConfig = [&](const ArenaLayoutConfig &Cfg,
                               bool *IdenticalOut) -> double {
        RenderEngine Loader(1);
        Loader.setArenaLayout(Cfg);
        if (!Spec->load(Loader, Lab.grid(), Controls)) {
          std::fprintf(stderr, "!! %s loader trapped: %s\n",
                       Info.Name.c_str(), Loader.lastTrap().c_str());
          return 0.0;
        }
        RenderEngine Engine(1); // Batched is the default tier.
        // Warm-up, and the bit-identity cross-check against pixel-major.
        Framebuffer FB(G.Width, G.Height);
        Controls[ParamIndex] = Sweep[0];
        Spec->readFrame(Engine, Lab.grid(), Controls, &FB);
        uint64_t Sum = framebufferChecksum(FB);
        if (!HaveBaselineSum) {
          BaselineSum = Sum;
          HaveBaselineSum = true;
        }
        if (IdenticalOut)
          *IdenticalOut = Sum == BaselineSum;
        std::vector<double> Times;
        for (unsigned F = 0; F < Frames; ++F) {
          Controls[ParamIndex] = Sweep[F];
          Times.push_back(timeSeconds(
              [&] { Spec->readFrame(Engine, Lab.grid(), Controls); }));
        }
        return p50(Times);
      };

      auto addRow = [&](const char *Label, const std::string &Chosen,
                        double T, bool Identical) {
        const CacheArena &Arena = Spec->arena();
        Rows.push_back({Info.Name, Label, Chosen, G.Width, G.Height,
                        Arena.layoutConfig().TilePixels,
                        Arena.layoutConfig().PackCold, Arena.strideBytes(),
                        Arena.hotStrideBytes(), Arena.physicalBytes(), T,
                        Pixels / T, BaselineP50 > 0.0 ? BaselineP50 / T : 1.0,
                        Identical});
      };

      std::vector<std::pair<ArenaLayoutConfig, double>> Measured;
      for (const LayoutConfigSpec &C : Configs) {
        bool Identical = true;
        double T = measureConfig(C.Cfg, &Identical);
        if (T <= 0.0)
          continue;
        if (!Identical)
          ++Mismatches;
        if (C.IsBaseline)
          BaselineP50 = T;
        else if (T > WorstFixedP50)
          WorstFixedP50 = T;
        Measured.emplace_back(C.Cfg, T);
        addRow(C.Label, "", T, Identical);
      }

      // Measured auto: the selection policy runs over the candidate
      // measurements above and deploys the winner — the auto row reports
      // the chosen layout's measurement (re-timing the same config and
      // charging the delta to "auto" would only measure run-to-run
      // noise). pickArenaLayout's 2% hysteresis keeps identity
      // pixel-major unless a mapped layout actually pays for its map.
      if (!Measured.empty()) {
        ArenaLayoutConfig ChosenCfg = pickArenaLayout(
            arenaLayoutCandidates(ExecTier::Batched,
                                  Lab.engine().tilePixels()),
            [&](const ArenaLayoutConfig &Cfg) {
              for (const auto &[MeasuredCfg, Seconds] : Measured)
                if (MeasuredCfg == Cfg)
                  return Seconds;
              return 1e9; // trapped/unmeasured: never chosen
            });
        for (const auto &[MeasuredCfg, Seconds] : Measured)
          if (MeasuredCfg == ChosenCfg)
            AutoP50 = Seconds;
        if (AutoP50 > 0.0) {
          std::string Chosen = arenaLayoutName(ChosenCfg.Layout);
          if (ChosenCfg.TilePixels)
            Chosen += "/" + std::to_string(ChosenCfg.TilePixels);
          // Re-load the winner so the row's arena columns (stride, map,
          // physical bytes) describe the chosen layout.
          RenderEngine Loader(1);
          Loader.setArenaLayout(ChosenCfg);
          Spec->load(Loader, Lab.grid(), Controls);
          addRow("auto", Chosen, AutoP50, true);
        }
      }
      if (IsGateGrid && BaselineP50 > 0.0 && AutoP50 > 0.0) {
        // "Tie" allows 2% timer noise; the differential tests pin the
        // hard equivalence, this gate pins "never a regression".
        if (AutoP50 <= BaselineP50 * 1.02)
          ++AutoWinsOrTies;
        if (WorstFixedP50 > 0.0 && AutoP50 <= WorstFixedP50 * 1.02)
          ++AutoNotWorst;
        if (BaselineP50 / AutoP50 > BestAutoSpeedup)
          BestAutoSpeedup = BaselineP50 / AutoP50;
      }
    }
  }

  std::printf("p50 of %u frames, 1 thread, batched tier; gate grid "
              "%ux%u:\n\n",
              Frames, Gate.Width, Gate.Height);
  std::printf("%-10s %9s %-16s %6s %5s %12s %12s %10s\n", "shader", "grid",
              "layout", "hot", "full", "frame us", "pixels/sec",
              "vs pm");
  for (const LayoutRow &R : Rows) {
    std::string Label = R.Layout;
    if (!R.Chosen.empty())
      Label += "=" + R.Chosen;
    std::printf("%-10s %4ux%-4u %-20s %5uB %4uB %12.1f %12.0f %9.2fx%s\n",
                R.Shader.c_str(), R.GridW, R.GridH, Label.c_str(),
                R.HotStrideBytes, R.StrideBytes, R.P50Seconds * 1e6,
                R.PixelsPerSecond, R.SpeedupVsPixelMajor,
                R.BitIdentical ? "" : "  !!BITS");
  }
  std::printf("\nauto wins or ties pixel-major on %u of %u shader(s); "
              "best auto speedup %.2fx; auto >= worst fixed layout on %u; "
              "%u bit mismatch(es)\n",
              AutoWinsOrTies, Shaders, BestAutoSpeedup, AutoNotWorst,
              Mismatches);

  BenchJson Json("arena_layout");
  Json.configUnsigned("gate_width", Gate.Width);
  Json.configUnsigned("gate_height", Gate.Height);
  Json.configUnsigned("frames", Frames);
  Json.configUnsigned("threads", 1);
  Json.config("tier", "\"batched\"");
  Json.configUnsigned("shaders", Shaders);
  Json.config("auto_wins_or_ties", std::to_string(AutoWinsOrTies));
  Json.config("auto_not_worst", std::to_string(AutoNotWorst));
  Json.config("bit_mismatches", std::to_string(Mismatches));
  Json.config("best_auto_speedup_milli",
              std::to_string(static_cast<unsigned>(BestAutoSpeedup * 1000)));
  char Row[384];
  for (const LayoutRow &R : Rows) {
    std::snprintf(
        Row, sizeof(Row),
        "{\"shader\":%s,\"layout\":%s,\"chosen\":%s,\"grid_w\":%u,"
        "\"grid_h\":%u,"
        "\"tile_pixels\":%u,\"pack_cold\":%s,\"stride_bytes\":%u,"
        "\"hot_stride_bytes\":%u,\"physical_bytes\":%llu,"
        "\"p50_seconds\":%.9f,\"pixels_per_second\":%.1f,"
        "\"speedup_vs_pixel_major\":%.3f,\"bit_identical\":%s}",
        jsonQuote(R.Shader).c_str(), jsonQuote(R.Layout).c_str(),
        jsonQuote(R.Chosen).c_str(), R.GridW,
        R.GridH, R.TilePixels, R.PackCold ? "true" : "false", R.StrideBytes,
        R.HotStrideBytes, static_cast<unsigned long long>(R.PhysicalBytes),
        R.P50Seconds, R.PixelsPerSecond, R.SpeedupVsPixelMajor,
        R.BitIdentical ? "true" : "false");
    Json.addRow(Row);
  }
  Json.emit(OutPath);
}

// Micro-benchmark of one shader per layout for google-benchmark tracking.
void BM_ReaderFrameLayout(benchmark::State &State) {
  ShaderLab Lab(arenaBenchWidth(), arenaBenchHeight(), 2);
  const ShaderInfo *Info = findShader("marble");
  auto Spec = Lab.specializePartition(*Info, 0);
  auto Configs = layoutConfigs(Lab.engine().tilePixels());
  const LayoutConfigSpec &C = Configs[static_cast<size_t>(State.range(0))];
  RenderEngine Loader(1);
  Loader.setArenaLayout(C.Cfg);
  auto Controls = ShaderLab::defaultControls(*Info);
  Spec->load(Loader, Lab.grid(), Controls);
  RenderEngine Engine(1);
  for (auto _ : State)
    benchmark::DoNotOptimize(Spec->readFrame(Engine, Lab.grid(), Controls));
  State.SetItemsProcessed(State.iterations() * Lab.grid().pixelCount());
  State.SetLabel(C.Label);
}
BENCHMARK(BM_ReaderFrameLayout)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  printLayoutSweep(OutPath ? OutPath : "BENCH_arena.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
