//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benchmark binaries: a
/// standard main() that prints the figure table and then runs any
/// registered google-benchmark micro-benchmarks, plus small statistics
/// and formatting utilities.
///
/// Environment knobs (all optional):
///   DSPEC_BENCH_WIDTH / DSPEC_BENCH_HEIGHT   pixel grid (default 48x32)
///   DSPEC_BENCH_FRAMES                       frames per measurement (5)
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_BENCH_BENCHUTIL_H
#define DATASPEC_BENCH_BENCHUTIL_H

#include "shading/ShaderLab.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace dspec {
namespace bench {

inline unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *Text = std::getenv(Name);
  if (!Text)
    return Default;
  long Value = std::strtol(Text, nullptr, 10);
  return Value > 0 ? static_cast<unsigned>(Value) : Default;
}

inline unsigned benchWidth() { return envUnsigned("DSPEC_BENCH_WIDTH", 48); }
inline unsigned benchHeight() { return envUnsigned("DSPEC_BENCH_HEIGHT", 32); }
inline unsigned benchFrames() { return envUnsigned("DSPEC_BENCH_FRAMES", 5); }

inline double median(std::vector<double> Samples) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

inline double mean(const std::vector<double> &Samples) {
  if (Samples.empty())
    return 0.0;
  double Sum = 0.0;
  for (double S : Samples)
    Sum += S;
  return Sum / static_cast<double>(Samples.size());
}

/// One (partition, byte-bound) measurement of the Figure 9/10 study.
struct LimitSweepRow {
  std::string ParamName;
  unsigned ByteLimit = 0;
  unsigned ActualBytes = 0;
  double Speedup = 0.0;
};

/// Runs the Figure 9/10 sweep: every input partition of shader 10
/// ("rings") under cache byte bounds 0, Step, ..., MaxBytes.
inline std::vector<LimitSweepRow>
runCacheLimitSweep(ShaderLab &Lab, unsigned MaxBytes = 40,
                   unsigned Step = 4) {
  std::vector<LimitSweepRow> Rows;
  const ShaderInfo *Info = findShader("rings");
  for (size_t C = 0; C < Info->Controls.size(); ++C) {
    for (unsigned Bound = 0; Bound <= MaxBytes; Bound += Step) {
      SpecializerOptions Options;
      Options.CacheByteLimit = Bound;
      auto R = Lab.measurePartition(*Info, C, Options);
      if (!R) {
        std::fprintf(stderr, "!! rings/%s bound=%u: %s\n",
                     Info->Controls[C].Name.c_str(), Bound,
                     Lab.lastError().c_str());
        continue;
      }
      Rows.push_back(
          {R->ParamName, Bound, R->CacheBytes, R->Speedup});
    }
  }
  return Rows;
}

/// Prints the standard banner for one reproduced figure/table.
inline void banner(const char *Figure, const char *PaperClaim) {
  std::printf("\n================================================================"
              "======\n");
  std::printf("%s\n", Figure);
  std::printf("paper: %s\n", PaperClaim);
  std::printf("=================================================================="
              "====\n");
}

} // namespace bench
} // namespace dspec

#endif // DATASPEC_BENCH_BENCHUTIL_H
