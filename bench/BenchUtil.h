//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benchmark binaries: a
/// standard main() that prints the figure table and then runs any
/// registered google-benchmark micro-benchmarks, plus small statistics
/// and formatting utilities.
///
/// Environment knobs (all optional):
///   DSPEC_BENCH_WIDTH / DSPEC_BENCH_HEIGHT   pixel grid (default 48x32)
///   DSPEC_BENCH_FRAMES                       frames per measurement (5)
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_BENCH_BENCHUTIL_H
#define DATASPEC_BENCH_BENCHUTIL_H

#include "shading/ShaderLab.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace dspec {
namespace bench {

inline unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *Text = std::getenv(Name);
  if (!Text)
    return Default;
  long Value = std::strtol(Text, nullptr, 10);
  return Value > 0 ? static_cast<unsigned>(Value) : Default;
}

inline unsigned benchWidth() { return envUnsigned("DSPEC_BENCH_WIDTH", 48); }
inline unsigned benchHeight() { return envUnsigned("DSPEC_BENCH_HEIGHT", 32); }
inline unsigned benchFrames() { return envUnsigned("DSPEC_BENCH_FRAMES", 5); }

inline double median(std::vector<double> Samples) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

inline double mean(const std::vector<double> &Samples) {
  if (Samples.empty())
    return 0.0;
  double Sum = 0.0;
  for (double S : Samples)
    Sum += S;
  return Sum / static_cast<double>(Samples.size());
}

/// Nearest-rank percentile (\p Pct in [0, 100]) over a copy of the
/// samples; matches the service's /statsz percentile definition.
inline double percentile(std::vector<double> Samples, double Pct) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  if (Pct <= 0.0)
    return Samples.front();
  if (Pct >= 100.0)
    return Samples.back();
  size_t Rank = static_cast<size_t>(
      Pct / 100.0 * static_cast<double>(Samples.size()) + 0.5);
  if (Rank > 0)
    --Rank;
  if (Rank >= Samples.size())
    Rank = Samples.size() - 1;
  return Samples[Rank];
}

inline double p50(const std::vector<double> &S) { return percentile(S, 50); }
inline double p95(const std::vector<double> &S) { return percentile(S, 95); }
inline double p99(const std::vector<double> &S) { return percentile(S, 99); }

/// Formats the standard latency-percentile JSON fragment appended to
/// benchmark rows: `"p50_us":...,"p95_us":...,"p99_us":...` (samples in
/// seconds, reported in microseconds).
inline std::string latencyPercentilesJson(const std::vector<double> &Seconds) {
  char Buffer[160];
  std::snprintf(Buffer, sizeof(Buffer),
                "\"p50_us\":%.3f,\"p95_us\":%.3f,\"p99_us\":%.3f",
                p50(Seconds) * 1e6, p95(Seconds) * 1e6, p99(Seconds) * 1e6);
  return Buffer;
}

/// One (partition, byte-bound) measurement of the Figure 9/10 study.
struct LimitSweepRow {
  std::string ParamName;
  unsigned ByteLimit = 0;
  unsigned ActualBytes = 0;
  double Speedup = 0.0;
};

/// Runs the Figure 9/10 sweep: every input partition of shader 10
/// ("rings") under cache byte bounds 0, Step, ..., MaxBytes.
inline std::vector<LimitSweepRow>
runCacheLimitSweep(ShaderLab &Lab, unsigned MaxBytes = 40,
                   unsigned Step = 4) {
  std::vector<LimitSweepRow> Rows;
  const ShaderInfo *Info = findShader("rings");
  for (size_t C = 0; C < Info->Controls.size(); ++C) {
    for (unsigned Bound = 0; Bound <= MaxBytes; Bound += Step) {
      SpecializerOptions Options;
      Options.CacheByteLimit = Bound;
      auto R = Lab.measurePartition(*Info, C, Options);
      if (!R) {
        std::fprintf(stderr, "!! rings/%s bound=%u: %s\n",
                     Info->Controls[C].Name.c_str(), Bound,
                     Lab.lastError().c_str());
        continue;
      }
      Rows.push_back(
          {R->ParamName, Bound, R->CacheBytes, R->Speedup});
    }
  }
  return Rows;
}

/// Minimal JSON string quoting (benchmark names and paths are ASCII).
inline std::string jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
  return Out;
}

/// Builds the shared BENCH_*.json document every benchmark emits:
///
///   {"bench": NAME, "schema_version": 1, "config": {...}, "rows": [...]}
///
/// Config entries and rows keep insertion order; rows are preformatted
/// JSON objects (the benches already format their own fields).
class BenchJson {
public:
  explicit BenchJson(std::string BenchName) : Name(std::move(BenchName)) {}

  void config(const std::string &Key, const std::string &RawJson) {
    Config.push_back({Key, RawJson});
  }
  void configString(const std::string &Key, const std::string &V) {
    config(Key, jsonQuote(V));
  }
  void configUnsigned(const std::string &Key, unsigned V) {
    config(Key, std::to_string(V));
  }

  void addRow(std::string RowJson) { Rows.push_back(std::move(RowJson)); }

  std::string str() const {
    std::string Out =
        "{\"bench\":" + jsonQuote(Name) + ",\"schema_version\":1,\"config\":{";
    for (size_t I = 0; I < Config.size(); ++I) {
      if (I)
        Out += ',';
      Out += jsonQuote(Config[I].first) + ':' + Config[I].second;
    }
    Out += "},\"rows\":[";
    for (size_t I = 0; I < Rows.size(); ++I) {
      if (I)
        Out += ',';
      Out += Rows[I];
    }
    Out += "]}";
    return Out;
  }

  /// Prints the document to stdout and, when \p OutPath is non-null,
  /// writes it there too. Returns false on I/O failure.
  bool emit(const char *OutPath) const {
    std::string Doc = str();
    std::printf("\nJSON:\n%s\n", Doc.c_str());
    if (!OutPath)
      return true;
    std::FILE *File = std::fopen(OutPath, "w");
    if (!File) {
      std::fprintf(stderr, "!! cannot open '%s' for writing\n", OutPath);
      return false;
    }
    bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), File) == Doc.size() &&
              std::fputc('\n', File) != EOF;
    Ok = std::fclose(File) == 0 && Ok;
    if (Ok)
      std::printf("wrote %s\n", OutPath);
    else
      std::fprintf(stderr, "!! short write to '%s'\n", OutPath);
    return Ok;
  }

private:
  std::string Name;
  std::vector<std::pair<std::string, std::string>> Config;
  std::vector<std::string> Rows;
};

/// Extracts `--out PATH` from argv (removing both tokens, so the
/// remaining flags can go to benchmark::Initialize untouched). Returns
/// null when absent.
inline const char *takeOutPathArg(int *Argc, char **Argv) {
  const char *Out = nullptr;
  int W = 1;
  for (int I = 1; I < *Argc; ++I) {
    if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < *Argc) {
      Out = Argv[++I];
      continue;
    }
    Argv[W++] = Argv[I];
  }
  *Argc = W;
  return Out;
}

/// Prints the standard banner for one reproduced figure/table.
inline void banner(const char *Figure, const char *PaperClaim) {
  std::printf("\n================================================================"
              "======\n");
  std::printf("%s\n", Figure);
  std::printf("paper: %s\n", PaperClaim);
  std::printf("=================================================================="
              "====\n");
}

} // namespace bench
} // namespace dspec

#endif // DATASPEC_BENCH_BENCHUTIL_H
