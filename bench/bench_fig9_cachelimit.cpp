//===- bench/bench_fig9_cachelimit.cpp - Figure 9 ----------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 9: absolute speedup versus cache size limit for all
/// 14 input partitions of shader 10 ("rings"). Paper expectations: as the
/// bound drops from 40 bytes to 0, speedups fall off toward 1.0x, but
/// gradually — many partitions need fewer than 40 bytes and are unaffected
/// until the bound crosses their natural size, and the most valuable slots
/// are evicted last (cliffs are possible for individual partitions, e.g.
/// ringscale in the paper).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace dspec;
using namespace dspec::bench;

namespace {

void printFigure9(const char *OutPath) {
  banner("Figure 9: speedup factor vs cache size, shader 10 (rings)",
         "speedups decay toward 1.0x as the byte bound shrinks to 0; "
         "partitions below their natural size are unaffected");

  ShaderLab Lab(benchWidth(), benchHeight(), benchFrames());
  auto Rows = runCacheLimitSweep(Lab);

  // Pivot: one line per partition, one column per bound.
  std::map<std::string, std::map<unsigned, double>> Table;
  unsigned MaxBound = 0;
  for (const LimitSweepRow &Row : Rows) {
    Table[Row.ParamName][Row.ByteLimit] = Row.Speedup;
    MaxBound = std::max(MaxBound, Row.ByteLimit);
  }

  std::printf("%-11s", "partition");
  for (unsigned Bound = 0; Bound <= MaxBound; Bound += 4)
    std::printf(" %6uB", Bound);
  std::printf("\n");
  for (const ShaderInfo &Info = *findShader("rings");
       const ControlParam &Param : Info.Controls) {
    auto It = Table.find(Param.Name);
    if (It == Table.end())
      continue;
    std::printf("%-11s", Param.Name.c_str());
    for (unsigned Bound = 0; Bound <= MaxBound; Bound += 4)
      std::printf(" %6.2fx", It->second.count(Bound) ? It->second[Bound]
                                                     : 0.0);
    std::printf("\n");
  }

  // Sanity summary: unlimited vs zero-bound speedups.
  std::vector<double> AtZero, AtMax;
  for (const LimitSweepRow &Row : Rows) {
    if (Row.ByteLimit == 0)
      AtZero.push_back(Row.Speedup);
    if (Row.ByteLimit == MaxBound)
      AtMax.push_back(Row.Speedup);
  }
  std::printf("\nmedian speedup at %uB bound: %.2fx;  at 0B bound: %.2fx "
              "(paper: ~1.0x at 0 bytes)\n",
              MaxBound, median(AtMax), median(AtZero));

  BenchJson Json("fig9_cachelimit");
  Json.configUnsigned("width", benchWidth());
  Json.configUnsigned("height", benchHeight());
  Json.configUnsigned("frames", benchFrames());
  Json.configUnsigned("max_bound_bytes", MaxBound);
  char Num[64];
  std::snprintf(Num, sizeof(Num), "%.3f", median(AtMax));
  Json.config("median_speedup_at_max_bound", Num);
  std::snprintf(Num, sizeof(Num), "%.3f", median(AtZero));
  Json.config("median_speedup_at_zero_bound", Num);
  char Row[192];
  for (const LimitSweepRow &R : Rows) {
    std::snprintf(Row, sizeof(Row),
                  "{\"partition\":%s,\"byte_limit\":%u,\"cache_bytes\":%u,"
                  "\"speedup\":%.3f}",
                  jsonQuote(R.ParamName).c_str(), R.ByteLimit, R.ActualBytes,
                  R.Speedup);
    Json.addRow(Row);
  }
  Json.emit(OutPath);
}

void BM_RingsReaderLimited16B(benchmark::State &State) {
  ShaderLab Lab(benchWidth(), benchHeight(), 2);
  const ShaderInfo *Info = findShader("rings");
  SpecializerOptions Options;
  Options.CacheByteLimit = 16;
  auto Spec = Lab.specializePartition(*Info, 8, Options); // lightx
  RenderEngine &Engine = Lab.engine();
  auto Controls = ShaderLab::defaultControls(*Info);
  Spec->load(Engine, Lab.grid(), Controls);
  for (auto _ : State)
    benchmark::DoNotOptimize(Spec->readFrame(Engine, Lab.grid(), Controls));
}
BENCHMARK(BM_RingsReaderLimited16B)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  printFigure9(OutPath ? OutPath : "BENCH_fig9.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
