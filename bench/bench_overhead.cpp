//===- bench/bench_overhead.cpp - Section 5.2 break-even ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 5.2 overhead study: for every one of the 131
/// loader/reader pairs, the number of uses after which the staged pair
/// beats re-running the original (use #1 runs the loader, which also
/// yields the result). Paper: 127 of 131 partitions (97%) break even at
/// two uses, 3 need three uses, 1 needs 17. The key claim is the shape —
/// the overwhelming majority amortize after the second use, with a small
/// tail.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace dspec;
using namespace dspec::bench;

namespace {

void printOverheadTable() {
  banner("Section 5.2: break-even use counts for all 131 partitions",
         "127/131 at 2 uses, 3 at 3 uses, 1 at 17 uses; loader cost is "
         "within a few percent of the original");

  ShaderLab Lab(benchWidth(), benchHeight(), benchFrames());
  std::map<unsigned, unsigned> Histogram;
  std::vector<double> Overheads;
  std::vector<std::pair<std::string, unsigned>> Tail;

  for (const ShaderInfo &Info : shaderGallery()) {
    for (size_t C = 0; C < Info.Controls.size(); ++C) {
      auto R = Lab.measurePartition(Info, C);
      if (!R) {
        std::printf("!! %s: %s\n", Info.Name.c_str(),
                    Lab.lastError().c_str());
        continue;
      }
      ++Histogram[R->BreakevenUses];
      Overheads.push_back(R->LoaderOverhead);
      if (R->BreakevenUses > 2)
        Tail.emplace_back(Info.Name + "/" + R->ParamName, R->BreakevenUses);
    }
  }

  std::printf("break-even histogram:\n");
  unsigned Total = 0, AtMostTwo = 0;
  for (const auto &[Uses, Count] : Histogram) {
    std::printf("  %4u use(s): %3u partition(s)\n", Uses, Count);
    Total += Count;
    if (Uses <= 2)
      AtMostTwo += Count;
  }
  std::printf("\n%u/%u partitions (%.0f%%) break even within two uses "
              "(paper: 127/131 = 97%%)\n",
              AtMostTwo, Total, 100.0 * AtMostTwo / Total);
  std::printf("median loader cost: %.2fx an original execution "
              "(paper: low single-digit %% overhead)\n",
              median(Overheads));
  if (!Tail.empty()) {
    std::printf("\nslow-to-amortize tail:\n");
    for (const auto &[Name, Uses] : Tail)
      std::printf("  %-22s %u uses\n", Name.c_str(), Uses);
  }
}

} // namespace

int main(int argc, char **argv) {
  printOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
