//===- bench/bench_dotprod.cpp - Paper Section 2 numbers --------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Section 2 measurements on the dotprod example
/// (Figures 1 and 2): the modest asymptotic speedup when scale != 0, the
/// ~0% speedup when scale == 0 (the error branch does no cacheable work),
/// the low loader startup cost, and break-even after two executions.
/// Registers google-benchmark timings for all three programs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Pipeline.h"
#include "vm/VM.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

using namespace dspec;

namespace {

const char *DotprodSource = R"(
float dotprod(float x1, float y1, float z1,
              float x2, float y2, float z2, float scale) {
  if (scale != 0.0) {
    return (x1*x2 + y1*y2 + z1*z2) / scale;
  } else {
    return -1.0;
  }
}
)";

struct DotprodSetup {
  std::unique_ptr<CompilationUnit> Unit;
  CompiledSpecialization Compiled;

  DotprodSetup() {
    Unit = parseUnit(DotprodSource);
    SpecializerOptions Options;
    Options.EnableReassociate = true;
    auto C = specializeAndCompile(*Unit, "dotprod", {"z1", "z2"}, Options);
    if (!C) {
      std::fprintf(stderr, "specialization failed:\n%s\n",
                   Unit->Diags.str().c_str());
      std::abort();
    }
    Compiled = std::move(*C);
  }

  static std::vector<Value> args(float Z1, float Z2, float Scale) {
    return {Value::makeFloat(1.5f),  Value::makeFloat(-2.0f),
            Value::makeFloat(Z1),    Value::makeFloat(0.75f),
            Value::makeFloat(3.25f), Value::makeFloat(Z2),
            Value::makeFloat(Scale)};
  }
};

DotprodSetup &setup() {
  static DotprodSetup S;
  return S;
}

/// Times N executions of a chunk, returning seconds per execution.
double timePerCall(VM &Machine, const Chunk &Code,
                   const std::vector<Value> &Args, Cache *Slots,
                   unsigned Calls) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Calls; ++I)
    benchmark::DoNotOptimize(Machine.run(Code, Args, Slots));
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count() / Calls;
}

void printSection2Table() {
  using namespace dspec::bench;
  banner("Section 2: dotprod example (Figures 1 and 2)",
         "11% speedup when scale != 0 (0% when scale == 0); 5.5% startup "
         "cost; break-even at 2 executions; cache = one float");

  DotprodSetup &S = setup();
  VM Machine;
  const unsigned Calls = 400000;

  for (float Scale : {2.0f, 0.0f}) {
    auto Args = DotprodSetup::args(0.5f, -1.25f, Scale);
    Cache Slots;
    Machine.run(S.Compiled.LoaderChunk, Args, &Slots);

    std::vector<double> OrigT, LoadT, ReadT;
    for (int Rep = 0; Rep < 5; ++Rep) {
      OrigT.push_back(
          timePerCall(Machine, S.Compiled.OriginalChunk, Args, nullptr,
                      Calls));
      LoadT.push_back(
          timePerCall(Machine, S.Compiled.LoaderChunk, Args, &Slots, Calls));
      ReadT.push_back(
          timePerCall(Machine, S.Compiled.ReaderChunk, Args, &Slots, Calls));
    }
    double Orig = median(OrigT), Load = median(LoadT), Read = median(ReadT);
    double SpeedupPct = (Orig / Read - 1.0) * 100.0;
    double StartupPct = (Load / Orig - 1.0) * 100.0;
    unsigned Breakeven = 1;
    if (Load > Orig && Read < Orig)
      Breakeven = static_cast<unsigned>(
          std::ceil((Load - Read) / (Orig - Read) - 1e-9));

    std::printf("\nscale %s 0:\n", Scale != 0.0f ? "!=" : "==");
    std::printf("  original  %8.1f ns/call\n", Orig * 1e9);
    std::printf("  loader    %8.1f ns/call   (startup cost %+5.1f%%, paper "
                "%s)\n",
                Load * 1e9, StartupPct, Scale != 0.0f ? "+5.5%" : "~0%");
    std::printf("  reader    %8.1f ns/call   (speedup %+5.1f%%, paper %s)\n",
                Read * 1e9, SpeedupPct, Scale != 0.0f ? "+11%" : "~0%");
    std::printf("  break-even at %u execution(s)   (paper: 2)\n", Breakeven);
  }

  std::printf("\ncache layout: %u slot(s), %u bytes (paper: one float)\n",
              setup().Compiled.Spec.Layout.slotCount(),
              setup().Compiled.Spec.Layout.totalBytes());
  std::printf("\nloader listing:\n%s", setup().Compiled.loaderSource().c_str());
  std::printf("\nreader listing:\n%s", setup().Compiled.readerSource().c_str());
}

void BM_DotprodOriginal(benchmark::State &State) {
  VM Machine;
  auto Args = DotprodSetup::args(0.5f, -1.25f, 2.0f);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Machine.run(setup().Compiled.OriginalChunk, Args));
}
BENCHMARK(BM_DotprodOriginal);

void BM_DotprodLoader(benchmark::State &State) {
  VM Machine;
  Cache Slots;
  auto Args = DotprodSetup::args(0.5f, -1.25f, 2.0f);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Machine.run(setup().Compiled.LoaderChunk, Args, &Slots));
}
BENCHMARK(BM_DotprodLoader);

void BM_DotprodReader(benchmark::State &State) {
  VM Machine;
  Cache Slots;
  auto Args = DotprodSetup::args(0.5f, -1.25f, 2.0f);
  Machine.run(setup().Compiled.LoaderChunk, Args, &Slots);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Machine.run(setup().Compiled.ReaderChunk, Args, &Slots));
}
BENCHMARK(BM_DotprodReader);

} // namespace

int main(int argc, char **argv) {
  printSection2Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
