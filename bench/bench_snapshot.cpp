//===- bench/bench_snapshot.cpp - Cold vs warm start via snapshots -----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the snapshot subsystem buys: the paper's staging split
/// stretched across processes. For every gallery shader (varying its
/// first control parameter) we time
///
///   cold start   parse + specialize + compile, then a loader pass and
///                one reader frame — what a fresh process pays without
///                a snapshot;
///   warm start   RenderEngine::fromSnapshot (read + validate + rebuild
///                the grid and arena) and one reader frame — what a
///                fresh process pays *with* one.
///
/// The snapshot file is written untimed beforehand, and the cold and
/// warm reader framebuffers are asserted bit-identical, so the two
/// columns render the same image. Emits BENCH_snapshot.json (or
/// `--out PATH`) through the shared schema helper.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace dspec;
using namespace dspec::bench;

namespace {

double timeSeconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

bool sameImage(const Framebuffer &A, const Framebuffer &B) {
  if (A.width() != B.width() || A.height() != B.height())
    return false;
  for (unsigned Y = 0; Y < A.height(); ++Y)
    for (unsigned X = 0; X < A.width(); ++X) {
      const Value &Va = A.at(X, Y), &Vb = B.at(X, Y);
      if (Va.Kind != Vb.Kind || Va.I != Vb.I ||
          std::memcmp(Va.F, Vb.F, sizeof(Va.F)) != 0)
        return false;
    }
  return true;
}

/// Specializes \p Info on its first control and writes a snapshot of the
/// loader-filled arena to \p Path. Returns false on any failure.
bool writeShaderSnapshot(const ShaderInfo &Info, const RenderGrid &Grid,
                         const std::string &Path) {
  auto Unit = parseUnit(Info.Source);
  if (!Unit->ok())
    return false;
  SpecializerOptions Options;
  auto Spec =
      specializeAndCompile(*Unit, Info.Name, {Info.Controls[0].Name}, Options);
  if (!Spec)
    return false;
  RenderEngine Engine(1);
  CacheArena Arena;
  auto Controls = ShaderLab::defaultControls(Info);
  if (!Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid, Controls,
                         Arena))
    return false;
  SnapshotMeta Meta = SnapshotMeta::fromOptions(Options);
  Meta.FragmentName = Info.Name;
  Meta.VaryingParams = {Info.Controls[0].Name};
  Meta.GridWidth = Grid.width();
  Meta.GridHeight = Grid.height();
  Meta.Controls = Controls;
  std::string Error;
  if (!RenderEngine::saveSnapshot(Path, Meta, Spec->LoaderChunk,
                                  Spec->ReaderChunk, Spec->Spec.Layout, Arena,
                                  &Error)) {
    std::fprintf(stderr, "!! %s: %s\n", Info.Name.c_str(), Error.c_str());
    return false;
  }
  return true;
}

struct SnapshotRow {
  std::string Shader;
  std::string Param;
  uint64_t FileBytes = 0;
  double ColdSeconds = 0.0;
  double WarmSeconds = 0.0;
  double WarmP50 = 0.0;
  double WarmP95 = 0.0;
  bool Identical = false;
};

void printColdVsWarm(const char *OutPath) {
  banner("Snapshot warm start: cold (specialize+loader+reader) vs warm "
         "(load snapshot+reader)",
         "the staging split amortizes loader cost across frames; a "
         "snapshot amortizes specializer+loader cost across processes");

  const unsigned W = benchWidth(), H = benchHeight();
  const unsigned Frames = benchFrames();
  RenderGrid Grid(W, H);
  RenderEngine Engine(1);
  const std::string Path = "bench_snapshot_tmp.dsnap";

  std::vector<SnapshotRow> Rows;
  for (const ShaderInfo &Info : shaderGallery()) {
    if (!writeShaderSnapshot(Info, Grid, Path)) {
      std::fprintf(stderr, "!! %s: snapshot setup failed, skipping\n",
                   Info.Name.c_str());
      continue;
    }
    SnapshotFileInfo FileInfo;
    inspectSnapshotFile(Path, FileInfo);
    auto Controls = ShaderLab::defaultControls(Info);

    // Cold: everything a snapshotless process does to show one frame.
    Framebuffer ColdFb(W, H);
    std::vector<double> ColdTimes;
    for (unsigned F = 0; F < Frames; ++F)
      ColdTimes.push_back(timeSeconds([&] {
        auto Unit = parseUnit(Info.Source);
        auto Spec = specializeAndCompile(*Unit, Info.Name,
                                         {Info.Controls[0].Name});
        CacheArena Arena;
        if (!Spec ||
            !Engine.loaderPass(Spec->LoaderChunk, Spec->Spec.Layout, Grid,
                               Controls, Arena) ||
            !Engine.readerPass(Spec->ReaderChunk, Grid, Controls, Arena,
                               &ColdFb))
          std::abort();
      }));

    // Warm: read + validate the file, rebuild grid/arena, one reader frame.
    Framebuffer WarmFb(W, H);
    std::vector<double> WarmTimes;
    for (unsigned F = 0; F < Frames; ++F)
      WarmTimes.push_back(timeSeconds([&] {
        std::string Error;
        auto Warm = RenderEngine::fromSnapshot(Path, &Error);
        if (!Warm ||
            !Engine.readerPass(Warm->Reader, Warm->Grid, Controls,
                               Warm->Arena, &WarmFb)) {
          std::fprintf(stderr, "!! warm start failed: %s\n", Error.c_str());
          std::abort();
        }
      }));

    Rows.push_back({Info.Name, Info.Controls[0].Name, FileInfo.FileBytes,
                    median(ColdTimes), median(WarmTimes), p50(WarmTimes),
                    p95(WarmTimes), sameImage(ColdFb, WarmFb)});
    std::remove(Path.c_str());
  }

  std::printf("%ux%u pixels, median of %u runs per phase:\n\n", W, H, Frames);
  std::printf("%-12s %-10s %10s %10s %10s %10s %8s %6s\n", "shader", "vary",
              "file KB", "cold ms", "warm p50", "warm p95", "speedup",
              "same");
  for (const SnapshotRow &R : Rows)
    std::printf("%-12s %-10s %10.1f %10.3f %10.3f %10.3f %7.1fx %6s\n",
                R.Shader.c_str(), R.Param.c_str(), R.FileBytes / 1024.0,
                R.ColdSeconds * 1e3, R.WarmP50 * 1e3, R.WarmP95 * 1e3,
                R.ColdSeconds / R.WarmSeconds, R.Identical ? "yes" : "NO");

  BenchJson Json("snapshot");
  Json.configUnsigned("width", W);
  Json.configUnsigned("height", H);
  Json.configUnsigned("frames", Frames);
  char Row[448];
  for (const SnapshotRow &R : Rows) {
    std::snprintf(Row, sizeof(Row),
                  "{\"shader\":%s,\"partition\":%s,\"file_bytes\":%llu,"
                  "\"cold_seconds\":%.9f,\"warm_seconds\":%.9f,"
                  "\"warm_p50_seconds\":%.9f,\"warm_p95_seconds\":%.9f,"
                  "\"warm_speedup\":%.3f,\"bit_identical\":%s}",
                  jsonQuote(R.Shader).c_str(), jsonQuote(R.Param).c_str(),
                  static_cast<unsigned long long>(R.FileBytes), R.ColdSeconds,
                  R.WarmSeconds, R.WarmP50, R.WarmP95,
                  R.ColdSeconds / R.WarmSeconds,
                  R.Identical ? "true" : "false");
    Json.addRow(Row);
  }
  Json.emit(OutPath);

  for (const SnapshotRow &R : Rows)
    if (!R.Identical) {
      std::fprintf(stderr,
                   "!! %s: warm-start image differs from cold start\n",
                   R.Shader.c_str());
      std::exit(1);
    }
}

// Micro-benchmarks of the two warm-start halves for tracking.
void BM_FromSnapshot(benchmark::State &State) {
  RenderGrid Grid(benchWidth(), benchHeight());
  const std::string Path = "bench_snapshot_micro_tmp.dsnap";
  if (!writeShaderSnapshot(*findShader("marble"), Grid, Path))
    std::abort();
  for (auto _ : State) {
    auto Warm = RenderEngine::fromSnapshot(Path);
    benchmark::DoNotOptimize(Warm);
  }
  std::remove(Path.c_str());
}
BENCHMARK(BM_FromSnapshot)->Unit(benchmark::kMicrosecond);

void BM_WarmReaderFrame(benchmark::State &State) {
  RenderGrid Grid(benchWidth(), benchHeight());
  const std::string Path = "bench_snapshot_micro_tmp.dsnap";
  const ShaderInfo *Info = findShader("marble");
  if (!writeShaderSnapshot(*Info, Grid, Path))
    std::abort();
  auto Warm = RenderEngine::fromSnapshot(Path);
  std::remove(Path.c_str());
  RenderEngine Engine(1);
  auto Controls = ShaderLab::defaultControls(*Info);
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.readerPass(Warm->Reader, Warm->Grid,
                                               Controls, Warm->Arena));
  State.SetItemsProcessed(State.iterations() * Grid.pixelCount());
}
BENCHMARK(BM_WarmReaderFrame)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  printColdVsWarm(OutPath ? OutPath : "BENCH_snapshot.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
