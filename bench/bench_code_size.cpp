//===- bench/bench_code_size.cpp - Section 3.3 size claim --------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the Section 3.3 code-size claim across the gallery: the loader
/// is the fragment plus n cache-store assignments, the reader is smaller
/// than the fragment, and "in practice, the sum of the loader and reader
/// sizes has been less than twice the size of the fragment". Sizes are
/// measured in AST terms (statements + expressions), the paper's own
/// granularity.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace dspec;
using namespace dspec::bench;

namespace {

void printCodeSizeTable() {
  banner("Section 3.3: loader/reader sizes relative to the fragment",
         "loader = fragment + n stores; reader < fragment; "
         "loader + reader < 2x fragment");

  ShaderLab Lab(2, 2);
  std::printf("%-9s %-11s %9s %8s %8s %8s %7s\n", "shader", "partition",
              "fragment", "loader", "reader", "sum", "ratio");

  std::vector<double> Ratios;
  unsigned UnderTwo = 0, Total = 0;
  for (const ShaderInfo &Info : shaderGallery()) {
    // One partition per shader suffices to show the shape; the median
    // partition (middle control) is representative.
    size_t C = Info.Controls.size() / 2;
    auto Spec = Lab.specializePartition(Info, C);
    if (!Spec) {
      std::printf("!! %s: %s\n", Info.Name.c_str(), Lab.lastError().c_str());
      continue;
    }
    const SpecializationStats &S = Spec->compiled().Spec.Stats;
    // Compare against the normalized fragment (the split's true input).
    unsigned Fragment = S.NormalizedTerms;
    double Ratio =
        static_cast<double>(S.LoaderTerms + S.ReaderTerms) / Fragment;
    Ratios.push_back(Ratio);
    ++Total;
    if (Ratio < 2.0)
      ++UnderTwo;
    std::printf("%-9s %-11s %9u %8u %8u %8u %6.2fx\n", Info.Name.c_str(),
                Info.Controls[C].Name.c_str(), Fragment, S.LoaderTerms,
                S.ReaderTerms, S.LoaderTerms + S.ReaderTerms, Ratio);
  }

  std::printf("\n%u/%u measured splits under the 2.0x bound; median ratio "
              "%.2fx (paper: < 2x in practice)\n",
              UnderTwo, Total, median(Ratios));
}

void BM_SpecializeAllGalleryPartitions(benchmark::State &State) {
  // Static cost of installing a shader: build every loader/reader pair
  // (the paper reports "a few seconds per input partition" including a
  // full compiler invocation; ours is a few hundred microseconds).
  ShaderLab Lab(2, 2);
  for (auto _ : State) {
    for (const ShaderInfo &Info : shaderGallery())
      for (size_t C = 0; C < Info.Controls.size(); ++C)
        benchmark::DoNotOptimize(Lab.specializePartition(Info, C));
  }
}
BENCHMARK(BM_SpecializeAllGalleryPartitions)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printCodeSizeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
