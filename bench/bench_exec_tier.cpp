//===- bench/bench_exec_tier.cpp - Execution-tier A/B over the gallery -------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the reader pass of every gallery shader under the engine's
/// four execution tiers:
///
///   switch     the classic per-pixel switch interpreter (VM::run);
///   threaded   per-pixel direct-threaded dispatch over the decoded,
///              superinstruction-fused ExecChunk;
///   batched    one instruction dispatch executes a whole tile of pixels
///              against strided CacheArena slots; uniform branches run
///              in lockstep, divergent maskable diamonds run both arms
///              under per-lane masks, and a tile diverging at an
///              unmaskable branch re-runs per-pixel threaded;
///   native     the copy-and-patch template JIT (src/jit/) — stitched
///              x86-64 code per reader chunk, cached on the chunk, or a
///              silent fall back to threaded where unavailable.
///
/// All tiers render bit-identical framebuffers (tests/TestExecTiers.cpp),
/// so the only difference is speed. Emits one row per (shader, tier) with
/// the p50 reader frame time, the speedup over the switch tier, and — for
/// the batched tier — the average active-lane fraction per dispatched
/// instruction (the divergence column) into BENCH_exec.json. The smoke
/// gate in CI reads native_beats_threaded_wins from the config block.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace dspec;
using namespace dspec::bench;

namespace {

double timeSeconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

constexpr ExecTier kTiers[] = {ExecTier::Switch, ExecTier::Threaded,
                               ExecTier::Batched, ExecTier::Native};

struct TierRow {
  std::string Shader;
  const char *Tier = "";
  double P50Seconds = 0.0;
  double PixelsPerSecond = 0.0;
  double SpeedupVsSwitch = 1.0;
  /// Average active-lane fraction per dispatched batch instruction over
  /// the last frame (RenderEngine::PassExecStats). 1.0 on the scalar
  /// tiers and for tiles that never engage a mask; below 1.0 means
  /// divergent diamonds ran masked.
  double ActiveLaneFraction = 1.0;
};

void printTierSweep(const char *OutPath) {
  banner("Execution tiers: reader p50 per gallery shader, "
         "switch vs threaded vs batched",
         "specializing the executor to the residual program — threaded "
         "dispatch and pixel batching — multiplies the paper's reader "
         "speedup without changing a single output bit");

  ShaderLab Lab(benchWidth(), benchHeight(), benchFrames());
  const unsigned Frames = benchFrames();
  const unsigned Pixels = Lab.grid().pixelCount();

  std::vector<TierRow> Rows;
  unsigned BatchedWins = 0, NativeWins = 0, Shaders = 0;

  for (const ShaderInfo &Info : shaderGallery()) {
    const size_t ParamIndex = 0;
    auto Spec = Lab.specializePartition(Info, ParamIndex);
    if (!Spec) {
      std::fprintf(stderr, "!! %s: %s\n", Info.Name.c_str(),
                   Lab.lastError().c_str());
      continue;
    }
    auto Controls = ShaderLab::defaultControls(Info);
    auto Sweep = Lab.sweepValues(Info.Controls[ParamIndex], Frames);

    // One loader pass fills the arena; the tier loop below only re-reads.
    RenderEngine Loader(1);
    if (!Spec->load(Loader, Lab.grid(), Controls)) {
      std::fprintf(stderr, "!! %s loader trapped: %s\n", Info.Name.c_str(),
                   Loader.lastTrap().c_str());
      continue;
    }

    ++Shaders;
    double SwitchP50 = 0.0, ThreadedP50 = 0.0, BatchedP50 = 0.0,
           NativeP50 = 0.0;
    for (ExecTier Tier : kTiers) {
      RenderEngine Engine(1);
      Engine.setExecTier(Tier);
      // Warm-up also stitches the native code, so the timed frames below
      // measure steady-state execution, not one-time compile latency
      // (bench_service reports stitch time separately).
      Spec->readFrame(Engine, Lab.grid(), Controls);
      std::vector<double> Times;
      for (unsigned F = 0; F < Frames; ++F) {
        Controls[ParamIndex] = Sweep[F];
        Times.push_back(timeSeconds(
            [&] { Spec->readFrame(Engine, Lab.grid(), Controls); }));
      }
      double T = p50(Times);
      switch (Tier) {
      case ExecTier::Switch:
        SwitchP50 = T;
        break;
      case ExecTier::Threaded:
        ThreadedP50 = T;
        break;
      case ExecTier::Batched:
        BatchedP50 = T;
        break;
      case ExecTier::Native:
        NativeP50 = T;
        break;
      }
      Rows.push_back({Info.Name, execTierName(Tier), T, Pixels / T,
                      SwitchP50 > 0.0 ? SwitchP50 / T : 1.0,
                      Tier == ExecTier::Batched
                          ? Engine.lastPassStats().activeFraction()
                          : 1.0});
    }
    if (SwitchP50 > 0.0 && BatchedP50 > 0.0 &&
        SwitchP50 / BatchedP50 >= 2.0)
      ++BatchedWins;
    if (NativeP50 > 0.0 && NativeP50 <= ThreadedP50)
      ++NativeWins;
  }

  std::printf("%u shader(s), %ux%u pixels, p50 of %u frames, 1 thread:\n\n",
              Shaders, Lab.grid().width(), Lab.grid().height(), Frames);
  std::printf("%-10s %-9s %12s %14s %11s %9s\n", "shader", "tier",
              "frame us", "pixels/sec", "vs switch", "active");
  for (const TierRow &R : Rows)
    std::printf("%-10s %-9s %12.1f %14.0f %10.2fx %8.1f%%\n",
                R.Shader.c_str(), R.Tier, R.P50Seconds * 1e6,
                R.PixelsPerSecond, R.SpeedupVsSwitch,
                R.ActiveLaneFraction * 100.0);
  std::printf("\nbatched >= 2x switch on %u of %u shader(s)\n", BatchedWins,
              Shaders);
  std::printf("native <= threaded p50 on %u of %u shader(s)\n", NativeWins,
              Shaders);

  BenchJson Json("exec_tier");
  Json.configUnsigned("width", Lab.grid().width());
  Json.configUnsigned("height", Lab.grid().height());
  Json.configUnsigned("frames", Frames);
  Json.configUnsigned("threads", 1);
  Json.config("batched_2x_wins", std::to_string(BatchedWins));
  Json.config("native_beats_threaded_wins", std::to_string(NativeWins));
  Json.configUnsigned("shaders", Shaders);
  char Row[256];
  for (const TierRow &R : Rows) {
    std::snprintf(Row, sizeof(Row),
                  "{\"shader\":%s,\"tier\":\"%s\","
                  "\"p50_seconds\":%.9f,\"pixels_per_second\":%.1f,"
                  "\"speedup_vs_switch\":%.3f,"
                  "\"avg_active_lane_fraction\":%.4f}",
                  jsonQuote(R.Shader).c_str(), R.Tier, R.P50Seconds,
                  R.PixelsPerSecond, R.SpeedupVsSwitch,
                  R.ActiveLaneFraction);
    Json.addRow(Row);
  }
  Json.emit(OutPath);
}

// Micro-benchmark of one shader per tier for google-benchmark tracking.
void BM_ReaderFrameTier(benchmark::State &State) {
  ShaderLab Lab(benchWidth(), benchHeight(), 2);
  const ShaderInfo *Info = findShader("marble");
  auto Spec = Lab.specializePartition(*Info, 0);
  RenderEngine Engine(1);
  Engine.setExecTier(kTiers[State.range(0)]);
  auto Controls = ShaderLab::defaultControls(*Info);
  Spec->load(Engine, Lab.grid(), Controls);
  for (auto _ : State)
    benchmark::DoNotOptimize(Spec->readFrame(Engine, Lab.grid(), Controls));
  State.SetItemsProcessed(State.iterations() * Lab.grid().pixelCount());
  State.SetLabel(execTierName(kTiers[State.range(0)]));
}
BENCHMARK(BM_ReaderFrameTier)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = takeOutPathArg(&argc, argv);
  printTierSweep(OutPath ? OutPath : "BENCH_exec.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
