//===- bench/bench_ablation.cpp - Section 4.1 / 4.2 ablations ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation studies for the two Section 4 refinements:
///
///  * Section 4.1 (join normalization / phi copies): with the pass off,
///    the specializer caches bare variable references at each use (the
///    paper's Figure 5 behavior) and may allocate redundant slots; with
///    it on, one slot per merged value suffices. The paper reports the
///    optimization occasionally halves the cache.
///
///  * Section 4.2 (associative reassociation): with the pass off, a
///    leaning chain like x1*x2 + y1*y2 + z1*z2 with z varying keeps its
///    independent prefix trapped under a dependent addition; with it on,
///    the independent subterm is grouped and cached.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Pipeline.h"

#include <benchmark/benchmark.h>

using namespace dspec;
using namespace dspec::bench;

namespace {

// Figure 4's shape: a variable merged at two join points, consumed by two
// dynamic uses. Naive caching duplicates the slot; phi caching shares it.
const char *JoinSource = R"(
float joins(float a, float b, float p, float v) {
  float x = sqrt(a) * 3.0 + b;
  if (p > 0.0) {
    x = pow(a, b);
  }
  float r = v * x;
  float s = v + x;
  return r - s;
}
)";

const char *ChainSource = R"(
float chain(float x1, float y1, float z1,
            float x2, float y2, float z2) {
  return x1*x2 + y1*y2 + z1*z2;
}
)";

void runCase(const char *Title, const char *Source, const char *Fragment,
             const std::vector<std::string> &Varying,
             SpecializerOptions Base, SpecializerOptions Variant,
             const char *BaseName, const char *VariantName) {
  std::printf("\n--- %s ---\n", Title);
  for (auto [Options, Name] :
       {std::pair{Base, BaseName}, std::pair{Variant, VariantName}}) {
    auto Unit = parseUnit(Source);
    auto Compiled = specializeAndCompile(*Unit, Fragment, Varying, Options);
    if (!Compiled) {
      std::printf("!! %s failed: %s\n", Name, Unit->Diags.str().c_str());
      continue;
    }
    const auto &S = Compiled->Spec.Stats;
    std::printf("%-28s cache %3uB in %u slot(s); reader %3u terms; "
                "cached %u / dynamic %u exprs\n",
                Name, Compiled->Spec.Layout.totalBytes(),
                Compiled->Spec.Layout.slotCount(), S.ReaderTerms,
                S.CachedExprs, S.DynamicExprs);
  }
}

void printAblations() {
  banner("Section 4 ablations: join normalization and reassociation",
         "4.1: phi copies collapse redundant slots (up to half the cache); "
         "4.2: reassociation moves independent subterms into the loader");

  {
    SpecializerOptions On; // defaults: join normalization enabled
    SpecializerOptions Off;
    Off.EnableJoinNormalize = false;
    runCase("4.1 join normalization (Figure 4-6 shape, vary v)", JoinSource,
            "joins", {"v"}, Off, On, "naive (Figure 5 behavior)",
            "with phi copies (Figure 6)");
  }

  {
    // The paper's own Section 4.2 example: x1 and x2 are the dependent
    // operands, so the left-associated chain traps y1*y2 and z1*z2 under
    // dependent additions (two slots) until reassociation groups them.
    SpecializerOptions Off; // defaults: reassociation disabled
    SpecializerOptions On;
    On.EnableReassociate = true;
    runCase("4.2 reassociation (paper's chain, vary x1/x2)", ChainSource,
            "chain", {"x1", "x2"}, Off, On, "left-leaning chain (off)",
            "reassociated (on)");
  }

  // Gallery-wide cache-size effect of 4.1.
  std::printf("\n--- 4.1 across the gallery (cache bytes, naive vs phi) "
              "---\n");
  ShaderLab Lab(2, 2);
  std::vector<double> NaiveBytes, PhiBytes;
  for (const ShaderInfo &Info : shaderGallery()) {
    size_t C = Info.Controls.size() / 2;
    SpecializerOptions Naive;
    Naive.EnableJoinNormalize = false;
    auto Without = Lab.specializePartition(Info, C, Naive);
    auto With = Lab.specializePartition(Info, C);
    if (!Without || !With)
      continue;
    NaiveBytes.push_back(Without->compiled().Spec.Layout.totalBytes());
    PhiBytes.push_back(With->compiled().Spec.Layout.totalBytes());
    std::printf("  %-9s %-11s naive %3.0fB   phi %3.0fB\n",
                Info.Name.c_str(), Info.Controls[C].Name.c_str(),
                NaiveBytes.back(), PhiBytes.back());
  }
  std::printf("  median: naive %.0fB vs phi %.0fB\n", median(NaiveBytes),
              median(PhiBytes));
}

void BM_SpecializeJoinNormalizeOn(benchmark::State &State) {
  auto Unit = parseUnit(JoinSource);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        specializeAndCompile(*Unit, "joins", {"v"}));
}
BENCHMARK(BM_SpecializeJoinNormalizeOn)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printAblations();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
