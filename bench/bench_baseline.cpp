//===- bench/bench_baseline.cpp - Section 6.2 comparison ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 6.2 related-work comparison against incremental
/// computation via function caching ([PT89]/[Hoo92]-style memoization):
///
///   scenario A (slider drag, every frame a NEW value of the varying
///   parameter — the paper's usage model): memoization always misses and
///   degenerates to the original plus bookkeeping, while the data-
///   specialized reader keeps its full speedup;
///
///   scenario B (toggling between two already-seen values): memoization
///   wins outright — one table probe per pixel, no computation — the
///   "avoid more computations than data specialization does" half of the
///   paper's sentence.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/Memoizer.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace dspec;
using namespace dspec::bench;

namespace {

struct Setup {
  ShaderLab Lab;
  const ShaderInfo *Info;
  size_t ParamIndex;
  SpecializedShader Spec;
  MemoizedFragment Memo;
  std::vector<MemoTable> Tables;

  static Setup make() {
    ShaderLab Lab(benchWidth(), benchHeight(), benchFrames());
    const ShaderInfo *Info = findShader("marble");
    size_t ParamIndex = 0; // vary ka
    auto Spec = Lab.specializePartition(*Info, ParamIndex);
    if (!Spec) {
      std::fprintf(stderr, "%s\n", Lab.lastError().c_str());
      std::abort();
    }
    MemoizedFragment Memo(
        Spec->compiled().OriginalChunk,
        {static_cast<unsigned>(ShaderInfo::NumPixelParams + ParamIndex)});
    std::vector<MemoTable> Tables(Lab.grid().pixelCount(), MemoTable(8));
    return Setup{std::move(Lab), Info, ParamIndex, std::move(*Spec),
                 std::move(Memo), std::move(Tables)};
  }

  double timeMemoFrame(VM &Machine, const std::vector<float> &Controls) {
    std::vector<Value> Args(ShaderInfo::NumPixelParams + Controls.size());
    for (size_t C = 0; C < Controls.size(); ++C)
      Args[ShaderInfo::NumPixelParams + C] = Value::makeFloat(Controls[C]);
    auto Start = std::chrono::steady_clock::now();
    const auto &Pixels = Lab.grid().pixels();
    for (unsigned I = 0; I < Lab.grid().pixelCount(); ++I) {
      Args[0] = Pixels[I].UV;
      Args[1] = Pixels[I].P;
      Args[2] = Pixels[I].N;
      Args[3] = Pixels[I].I;
      benchmark::DoNotOptimize(Memo.run(Machine, Args, Tables[I]));
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }
};

void printComparison() {
  banner("Section 6.2: data specialization vs function caching (memoization)",
         "exact-repeat inputs: memoization avoids even the reader's work; "
         "fresh inputs (slider drag): memoization degenerates to the "
         "original while the reader keeps its speedup");

  Setup S = Setup::make();
  RenderEngine &Engine = S.Lab.engine();
  VM Machine; // the memoizer runs on a bare VM
  auto Controls = ShaderLab::defaultControls(*S.Info);
  unsigned Frames = benchFrames();
  auto Sweep = S.Lab.sweepValues(S.Info->Controls[S.ParamIndex], Frames);

  // Data specialization: loader once, reader per frame.
  S.Spec.load(Engine, S.Lab.grid(), Controls);

  std::vector<double> OrigT, ReadT, MemoFreshT, MemoRepeatT;

  // Scenario A: every frame a new value.
  for (unsigned F = 0; F < Frames; ++F) {
    Controls[S.ParamIndex] = Sweep[F];
    auto T0 = std::chrono::steady_clock::now();
    S.Spec.originalFrame(Engine, S.Lab.grid(), Controls);
    auto T1 = std::chrono::steady_clock::now();
    S.Spec.readFrame(Engine, S.Lab.grid(), Controls);
    auto T2 = std::chrono::steady_clock::now();
    OrigT.push_back(std::chrono::duration<double>(T1 - T0).count());
    ReadT.push_back(std::chrono::duration<double>(T2 - T1).count());
    MemoFreshT.push_back(S.timeMemoFrame(Machine, Controls));
  }

  // Scenario B: toggle between the two values seen last; all hits.
  for (unsigned F = 0; F < Frames; ++F) {
    Controls[S.ParamIndex] = Sweep[F % 2 == 0 ? Frames - 1 : Frames - 2];
    MemoRepeatT.push_back(S.timeMemoFrame(Machine, Controls));
  }

  double Orig = median(OrigT), Read = median(ReadT);
  double Fresh = median(MemoFreshT), Repeat = median(MemoRepeatT);
  std::printf("per-frame times (marble, vary ka, %ux%u pixels):\n",
              S.Lab.grid().width(), S.Lab.grid().height());
  std::printf("  original                  %8.2f ms   1.00x\n", Orig * 1e3);
  std::printf("  dataspec reader           %8.2f ms   %.2fx\n", Read * 1e3,
              Orig / Read);
  std::printf("  memoized, fresh values    %8.2f ms   %.2fx   <- slider "
              "drag: misses, no benefit\n",
              Fresh * 1e3, Orig / Fresh);
  std::printf("  memoized, repeated values %8.2f ms   %.2fx   <- exact "
              "repeats: beats even the reader\n",
              Repeat * 1e3, Orig / Repeat);
  std::printf("\nmemo stats: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(S.Memo.hits()),
              static_cast<unsigned long long>(S.Memo.misses()));
  std::printf("\npaper (Section 6.2): dynamic dependence checking \"avoids "
              "more computations than data specialization does, but loses "
              "the efficiency we gain from compiling away the dependence in "
              "advance\" — both halves visible above.\n");
}

void BM_MemoTableLookupHit(benchmark::State &State) {
  MemoTable Table(8);
  Table.insert({0.25f}, Value::makeVec3(1, 2, 3));
  std::vector<float> Key = {0.25f};
  for (auto _ : State)
    benchmark::DoNotOptimize(Table.lookup(Key));
}
BENCHMARK(BM_MemoTableLookupHit);

} // namespace

int main(int argc, char **argv) {
  printComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
