//===- bench/bench_fig7_speedup.cpp - Figure 7 ------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 7: the asymptotic speedup of every input partition
/// of the ten gallery shaders (one partition per control parameter, 131
/// total), plus the per-shader median series the figure overlays. Shape
/// expectations from the paper: every speedup is at least 1.0x, the
/// noise-heavy shaders (3, 4, 5) reach far higher peaks than the simple
/// ones (1, 6, 7, 8), partitions that perturb a noise input lose roughly
/// half (or more) of their shader's best speedup, and light-position
/// partitions score much lower than scaling parameters like ambient.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace dspec;
using namespace dspec::bench;

namespace {

void printFigure7() {
  banner("Figure 7: speedup for all input partitions of ten shaders",
         "all speedups >= 1.0x; noise shaders (3,4,5) peak near 100x; "
         "simple shaders lower; wide variance across partitions");

  ShaderLab Lab(benchWidth(), benchHeight(), benchFrames());
  std::printf("%-3s %-9s %-11s %10s %8s %10s\n", "sh", "shader", "partition",
              "speedup", "cacheB", "breakeven");

  std::vector<std::vector<double>> PerShader(shaderGallery().size() + 1);
  unsigned Partitions = 0;
  unsigned AtLeastOne = 0;
  for (const ShaderInfo &Info : shaderGallery()) {
    for (size_t C = 0; C < Info.Controls.size(); ++C) {
      auto R = Lab.measurePartition(Info, C);
      if (!R) {
        std::printf("!! %s: %s\n", Info.Name.c_str(),
                    Lab.lastError().c_str());
        continue;
      }
      ++Partitions;
      if (R->Speedup >= 1.0)
        ++AtLeastOne;
      PerShader[Info.Index].push_back(R->Speedup);
      std::printf("%-3u %-9s %-11s %9.2fx %7uB %10u\n", Info.Index,
                  Info.Name.c_str(), R->ParamName.c_str(), R->Speedup,
                  R->CacheBytes, R->BreakevenUses);
    }
  }

  std::printf("\nper-shader medians (the figure's median series):\n");
  for (const ShaderInfo &Info : shaderGallery()) {
    auto &Samples = PerShader[Info.Index];
    std::printf("  shader %2u %-9s median %8.2fx   max %8.2fx   over %zu "
                "partitions\n",
                Info.Index, Info.Name.c_str(), median(Samples),
                *std::max_element(Samples.begin(), Samples.end()),
                Samples.size());
  }
  std::printf("\n%u/%u partitions measured; %u with speedup >= 1.0x "
              "(paper: always at least 1.0x)\n",
              Partitions, totalPartitionCount(), AtLeastOne);
}

// A representative per-frame micro-benchmark pair for google-benchmark.
void BM_MarbleOriginalFrame(benchmark::State &State) {
  ShaderLab Lab(benchWidth(), benchHeight(), 2);
  const ShaderInfo *Info = findShader("marble");
  auto Spec = Lab.specializePartition(*Info, 0);
  RenderEngine &Engine = Lab.engine();
  auto Controls = ShaderLab::defaultControls(*Info);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Spec->originalFrame(Engine, Lab.grid(), Controls));
}
BENCHMARK(BM_MarbleOriginalFrame)->Unit(benchmark::kMillisecond);

void BM_MarbleReaderFrame(benchmark::State &State) {
  ShaderLab Lab(benchWidth(), benchHeight(), 2);
  const ShaderInfo *Info = findShader("marble");
  auto Spec = Lab.specializePartition(*Info, 0); // vary ka
  RenderEngine &Engine = Lab.engine();
  auto Controls = ShaderLab::defaultControls(*Info);
  Spec->load(Engine, Lab.grid(), Controls);
  for (auto _ : State)
    benchmark::DoNotOptimize(Spec->readFrame(Engine, Lab.grid(), Controls));
}
BENCHMARK(BM_MarbleReaderFrame)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFigure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
