//===- snapshot/Snapshot.cpp - Persisted specialization snapshots ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "snapshot/Snapshot.h"

#include "specialize/LayoutSerde.h"
#include "support/ByteStream.h"
#include "support/Crc32.h"
#include "vm/Serde.h"

#include <cstdio>
#include <cstring>
#include <iterator>

using namespace dspec;

namespace {

constexpr size_t kHeaderBytes = 16;
constexpr size_t kTableEntryBytes = 28;
constexpr size_t kArenaAlignment = 64;
/// Snapshots hold one shader's programs plus one grid's caches; a file
/// claiming more than this is not one of ours.
constexpr uint64_t kMaxFileBytes = 1ull << 30;
constexpr uint32_t kMaxSections = 64;
/// No-limit encoding of SnapshotMeta::CacheByteLimit.
constexpr uint32_t kNoCacheLimit = 0xFFFFFFFFu;

bool setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = "snapshot: " + Message;
  return false;
}

/// Reads a whole file; empty optional on I/O failure.
bool readWholeFile(const std::string &Path, std::vector<unsigned char> &Out,
                   std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return setError(Error, "cannot open '" + Path + "'");
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  if (Size < 0 || static_cast<uint64_t>(Size) > kMaxFileBytes) {
    std::fclose(File);
    return setError(Error, "'" + Path + "' is not a plausible snapshot size");
  }
  Out.resize(static_cast<size_t>(Size));
  size_t Read = Size == 0 ? 0 : std::fread(Out.data(), 1, Out.size(), File);
  std::fclose(File);
  if (Read != Out.size())
    return setError(Error, "short read from '" + Path + "'");
  return true;
}

void serializeMeta(ByteWriter &Writer, const SpecializationSnapshot &Snap) {
  const SnapshotMeta &Meta = Snap.Meta;
  Writer.writeU32(kChunkSerdeVersion);
  Writer.writeU32(kLayoutSerdeVersion);
  Writer.writeString(Meta.FragmentName);
  Writer.writeU32(static_cast<uint32_t>(Meta.VaryingParams.size()));
  for (const std::string &Name : Meta.VaryingParams)
    Writer.writeString(Name);
  Writer.writeU8(Meta.JoinNormalize ? 1 : 0);
  Writer.writeU8(Meta.Reassociate ? 1 : 0);
  Writer.writeU8(Meta.Speculation ? 1 : 0);
  Writer.writeU8(Meta.WeightVictimBySize ? 1 : 0);
  Writer.writeU32(Meta.CacheByteLimit ? *Meta.CacheByteLimit : kNoCacheLimit);
  Writer.writeU32(Meta.GridWidth);
  Writer.writeU32(Meta.GridHeight);
  Writer.writeU32(static_cast<uint32_t>(Meta.Controls.size()));
  for (float Control : Meta.Controls)
    Writer.writeF32(Control);
  Writer.writeU32(Snap.ArenaPixels);
  Writer.writeU32(Snap.ArenaStride);
}

bool deserializeMeta(ByteReader &Reader, SpecializationSnapshot &Snap,
                     uint32_t &LayoutVersionOut, std::string *Error) {
  uint32_t ChunkVersion = Reader.readU32();
  uint32_t LayoutVersion = Reader.readU32();
  if (Reader.ok() && ChunkVersion != kChunkSerdeVersion)
    return setError(Error, "bytecode format version " +
                               std::to_string(ChunkVersion) +
                               " does not match this build (expected " +
                               std::to_string(kChunkSerdeVersion) + ")");
  // Layout encodings are backward compatible down to version 1 (whose
  // layouts simply carry no reuse weights); only future versions are
  // rejected.
  if (Reader.ok() && (LayoutVersion < kMinLayoutSerdeVersion ||
                      LayoutVersion > kLayoutSerdeVersion))
    return setError(Error, "cache layout format version " +
                               std::to_string(LayoutVersion) +
                               " is not supported by this build (expected " +
                               std::to_string(kMinLayoutSerdeVersion) + ".." +
                               std::to_string(kLayoutSerdeVersion) + ")");
  LayoutVersionOut = LayoutVersion;

  SnapshotMeta &Meta = Snap.Meta;
  Meta.FragmentName = Reader.readString();
  uint32_t VaryingCount = Reader.readU32();
  if (Reader.ok() &&
      static_cast<uint64_t>(VaryingCount) * 4 > Reader.remaining())
    Reader.fail("varying parameter count exceeds the remaining data");
  for (uint32_t I = 0; I < VaryingCount && Reader.ok(); ++I)
    Meta.VaryingParams.push_back(Reader.readString());
  Meta.JoinNormalize = Reader.readU8() != 0;
  Meta.Reassociate = Reader.readU8() != 0;
  Meta.Speculation = Reader.readU8() != 0;
  Meta.WeightVictimBySize = Reader.readU8() != 0;
  uint32_t Limit = Reader.readU32();
  Meta.CacheByteLimit =
      Limit == kNoCacheLimit ? std::nullopt : std::optional<unsigned>(Limit);
  Meta.GridWidth = Reader.readU32();
  Meta.GridHeight = Reader.readU32();
  uint32_t ControlCount = Reader.readU32();
  if (Reader.ok() &&
      static_cast<uint64_t>(ControlCount) * 4 > Reader.remaining())
    Reader.fail("control count exceeds the remaining data");
  for (uint32_t I = 0; I < ControlCount && Reader.ok(); ++I)
    Meta.Controls.push_back(Reader.readF32());
  Snap.ArenaPixels = Reader.readU32();
  Snap.ArenaStride = Reader.readU32();

  if (!Reader.ok())
    return setError(Error, "malformed META section: " + Reader.error());
  if (!Reader.atEnd())
    return setError(Error, "trailing bytes in META section");
  return true;
}

void serializeVariants(ByteWriter &Writer,
                       const std::vector<SnapshotVariant> &Variants) {
  Writer.writeU32(static_cast<uint32_t>(Variants.size()));
  for (const SnapshotVariant &V : Variants) {
    Writer.writeU32(static_cast<uint32_t>(V.Key.Pins.size()));
    for (const VariantPin &Pin : V.Key.Pins) {
      Writer.writeU32(Pin.ParamIndex);
      Writer.writeU8(static_cast<uint8_t>(Pin.Prop));
    }
    Writer.writeString(V.Label);
    serializeLayout(Writer, V.Layout);
    serializeChunk(Writer, V.Loader);
    serializeChunk(Writer, V.Reader);
    Writer.writeU32(V.ArenaPixels);
    Writer.writeU32(V.ArenaStride);
    Writer.writeBytes(V.ArenaBytes.data(), V.ArenaBytes.size());
  }
}

bool deserializeVariants(ByteReader &Reader,
                         std::vector<SnapshotVariant> &Out,
                         uint32_t LayoutVersion, std::string *Error) {
  uint32_t Count = Reader.readU32();
  if (Reader.ok() && Count > 256)
    Reader.fail("implausible variant count " + std::to_string(Count));
  for (uint32_t I = 0; I < Count && Reader.ok(); ++I) {
    SnapshotVariant V;
    uint32_t PinCount = Reader.readU32();
    if (Reader.ok() && static_cast<uint64_t>(PinCount) * 5 > Reader.remaining())
      Reader.fail("pin count exceeds the remaining data");
    for (uint32_t P = 0; P < PinCount && Reader.ok(); ++P) {
      VariantPin Pin;
      Pin.ParamIndex = Reader.readU32();
      uint8_t Prop = Reader.readU8();
      if (Prop > static_cast<uint8_t>(ParamProp::PP_One)) {
        Reader.fail("unknown property kind " + std::to_string(Prop));
        break;
      }
      Pin.Prop = static_cast<ParamProp>(Prop);
      V.Key.Pins.push_back(Pin);
    }
    V.Label = Reader.readString();
    std::string SectionError;
    if (Reader.ok() &&
        !deserializeLayout(Reader, V.Layout, SectionError, LayoutVersion))
      return setError(Error, "VARIANTS section: " + SectionError);
    if (Reader.ok() && !deserializeChunk(Reader, V.Loader, SectionError))
      return setError(Error, "VARIANTS section: " + SectionError);
    if (Reader.ok() && !deserializeChunk(Reader, V.Reader, SectionError))
      return setError(Error, "VARIANTS section: " + SectionError);
    V.ArenaPixels = Reader.readU32();
    V.ArenaStride = Reader.readU32();
    uint64_t ArenaBytes =
        static_cast<uint64_t>(V.ArenaPixels) * V.ArenaStride;
    if (Reader.ok() && ArenaBytes > Reader.remaining())
      Reader.fail("variant arena exceeds the remaining data");
    if (Reader.ok()) {
      std::vector<unsigned char> Raw =
          Reader.readBytes(static_cast<size_t>(ArenaBytes));
      V.ArenaBytes.assign(Raw.begin(), Raw.end());
    }
    if (Reader.ok())
      Out.push_back(std::move(V));
  }
  if (!Reader.ok())
    return setError(Error, "malformed VARIANTS section: " + Reader.error());
  if (!Reader.atEnd())
    return setError(Error, "trailing bytes in VARIANTS section");
  return true;
}

/// Parsed header + bounds/CRC-validated section table over a file image.
struct ParsedContainer {
  uint32_t FormatVersion = 0;
  std::vector<SnapshotSectionInfo> Sections;

  const SnapshotSectionInfo *find(SnapshotSection Id) const {
    for (const SnapshotSectionInfo &S : Sections)
      if (S.Id == static_cast<uint32_t>(Id))
        return &S;
    return nullptr;
  }
};

bool parseContainer(const std::vector<unsigned char> &Image,
                    ParsedContainer &Out, std::string *Error) {
  if (Image.size() < kHeaderBytes)
    return setError(Error, "file is too short to hold a snapshot header");
  if (std::memcmp(Image.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    return setError(Error, "bad magic; not a dataspec snapshot");

  ByteReader Header(Image.data() + sizeof(kSnapshotMagic),
                    kHeaderBytes - sizeof(kSnapshotMagic));
  Out.FormatVersion = Header.readU32();
  uint32_t SectionCount = Header.readU32();
  if (Out.FormatVersion < kMinSnapshotFormatVersion ||
      Out.FormatVersion > kSnapshotFormatVersion)
    return setError(Error, "snapshot format version " +
                               std::to_string(Out.FormatVersion) +
                               " is not supported by this build (expected " +
                               std::to_string(kMinSnapshotFormatVersion) +
                               ".." +
                               std::to_string(kSnapshotFormatVersion) + ")");
  if (SectionCount == 0 || SectionCount > kMaxSections)
    return setError(Error, "implausible section count " +
                               std::to_string(SectionCount));
  uint64_t TableEnd =
      kHeaderBytes + static_cast<uint64_t>(SectionCount) * kTableEntryBytes;
  if (TableEnd > Image.size())
    return setError(Error, "section table is truncated");

  ByteReader Table(Image.data() + kHeaderBytes,
                   static_cast<size_t>(TableEnd) - kHeaderBytes);
  for (uint32_t I = 0; I < SectionCount; ++I) {
    SnapshotSectionInfo Section;
    Section.Id = Table.readU32();
    Table.readU32(); // reserved
    Section.Offset = Table.readU64();
    Section.Bytes = Table.readU64();
    Section.StoredCrc = Table.readU32();
    if (Section.Offset < TableEnd || Section.Offset > Image.size() ||
        Section.Bytes > Image.size() - Section.Offset)
      return setError(Error, std::string(snapshotSectionName(Section.Id)) +
                                 " section lies outside the file");
    Section.CrcOk =
        crc32(Image.data() + Section.Offset,
              static_cast<size_t>(Section.Bytes)) == Section.StoredCrc;
    Out.Sections.push_back(Section);
  }
  return true;
}

/// Locates a required section and rejects CRC mismatches.
const SnapshotSectionInfo *requireSection(const ParsedContainer &Container,
                                          SnapshotSection Id,
                                          std::string *Error) {
  const SnapshotSectionInfo *Section = Container.find(Id);
  const char *Name = snapshotSectionName(static_cast<uint32_t>(Id));
  if (!Section) {
    setError(Error, std::string("missing ") + Name + " section");
    return nullptr;
  }
  if (!Section->CrcOk) {
    setError(Error, std::string(Name) +
                        " section fails its CRC-32 check (corrupt file)");
    return nullptr;
  }
  return Section;
}

} // namespace

const char *dspec::snapshotSectionName(uint32_t Id) {
  switch (static_cast<SnapshotSection>(Id)) {
  case SnapshotSection::Meta:
    return "META";
  case SnapshotSection::Layout:
    return "LAYOUT";
  case SnapshotSection::Loader:
    return "LOADER";
  case SnapshotSection::Reader:
    return "READER";
  case SnapshotSection::Arena:
    return "ARENA";
  case SnapshotSection::Variants:
    return "VARIANTS";
  }
  return "UNKNOWN";
}

SnapshotMeta SnapshotMeta::fromOptions(const SpecializerOptions &Options) {
  SnapshotMeta Meta;
  Meta.JoinNormalize = Options.EnableJoinNormalize;
  Meta.Reassociate = Options.EnableReassociate;
  Meta.Speculation = Options.AllowSpeculation;
  Meta.WeightVictimBySize = Options.WeightVictimBySize;
  Meta.CacheByteLimit = Options.CacheByteLimit;
  return Meta;
}

std::string SnapshotMeta::optionsSummary() const {
  std::string Out = JoinNormalize ? "phi" : "no-phi";
  if (Reassociate)
    Out += ", reassoc";
  if (Speculation)
    Out += ", speculate";
  if (CacheByteLimit)
    Out += ", limit=" + std::to_string(*CacheByteLimit) + "B";
  if (WeightVictimBySize)
    Out += ", weight-by-size";
  return Out;
}

bool dspec::writeSnapshotFile(const std::string &Path,
                              const SpecializationSnapshot &Snap,
                              std::string *Error) {
  // Refuse to persist inconsistent state; the reader enforces the same
  // invariants, so a file we write always loads.
  if (Snap.ArenaStride != Snap.Layout.totalBytes())
    return setError(Error, "arena stride does not match the cache layout");
  if (Snap.ArenaBytes.size() !=
      static_cast<size_t>(Snap.ArenaPixels) * Snap.ArenaStride)
    return setError(Error, "arena byte count does not match pixels x stride");
  if (Snap.Meta.GridWidth * Snap.Meta.GridHeight != Snap.ArenaPixels)
    return setError(Error, "grid dimensions do not match the arena");
  std::string VerifyError;
  if (!verifyChunk(Snap.Loader, VerifyError) ||
      !verifyChunk(Snap.Reader, VerifyError))
    return setError(Error, "refusing to persist a broken chunk: " +
                               VerifyError);
  for (const SnapshotVariant &V : Snap.Variants) {
    if (V.ArenaStride != V.Layout.totalBytes())
      return setError(Error, "variant '" + V.Label +
                                 "': arena stride does not match its layout");
    if (V.ArenaBytes.size() !=
        static_cast<size_t>(V.ArenaPixels) * V.ArenaStride)
      return setError(Error, "variant '" + V.Label +
                                 "': arena byte count does not match pixels "
                                 "x stride");
    if (V.ArenaPixels != Snap.ArenaPixels)
      return setError(Error, "variant '" + V.Label +
                                 "': arena covers a different grid than the "
                                 "generic variant");
    if (!verifyChunk(V.Loader, VerifyError) ||
        !verifyChunk(V.Reader, VerifyError))
      return setError(Error, "refusing to persist a broken variant chunk: " +
                                 VerifyError);
  }

  ByteWriter Meta, Layout, Loader, Reader, Variants;
  serializeMeta(Meta, Snap);
  serializeLayout(Layout, Snap.Layout);
  serializeChunk(Loader, Snap.Loader);
  serializeChunk(Reader, Snap.Reader);
  serializeVariants(Variants, Snap.Variants);

  struct Pending {
    SnapshotSection Id;
    const unsigned char *Data;
    size_t Bytes;
  };
  std::vector<Pending> Sections = {
      {SnapshotSection::Meta, Meta.bytes().data(), Meta.size()},
      {SnapshotSection::Layout, Layout.bytes().data(), Layout.size()},
      {SnapshotSection::Loader, Loader.bytes().data(), Loader.size()},
      {SnapshotSection::Reader, Reader.bytes().data(), Reader.size()},
  };
  if (!Snap.Variants.empty())
    Sections.push_back({SnapshotSection::Variants, Variants.bytes().data(),
                        Variants.size()});
  // The arena stays last so its 64-byte alignment padding is the file's
  // only gap.
  Sections.push_back({SnapshotSection::Arena, Snap.ArenaBytes.data(),
                      Snap.ArenaBytes.size()});
  const size_t SectionCount = Sections.size();

  ByteWriter File;
  File.writeBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  File.writeU32(kSnapshotFormatVersion);
  File.writeU32(static_cast<uint32_t>(SectionCount));

  // Lay out payload offsets: sequential after the table, with the arena
  // (always last) aligned so an mmap'd file exposes 64-byte-aligned
  // cache strides.
  uint64_t Offset = kHeaderBytes + SectionCount * kTableEntryBytes;
  std::vector<uint64_t> Offsets(SectionCount);
  for (size_t I = 0; I < SectionCount; ++I) {
    if (Sections[I].Id == SnapshotSection::Arena)
      Offset = (Offset + kArenaAlignment - 1) / kArenaAlignment *
               kArenaAlignment;
    Offsets[I] = Offset;
    Offset += Sections[I].Bytes;
  }

  for (size_t I = 0; I < SectionCount; ++I) {
    File.writeU32(static_cast<uint32_t>(Sections[I].Id));
    File.writeU32(0); // reserved
    File.writeU64(Offsets[I]);
    File.writeU64(Sections[I].Bytes);
    File.writeU32(crc32(Sections[I].Data, Sections[I].Bytes));
  }
  for (size_t I = 0; I < SectionCount; ++I) {
    while (File.size() < Offsets[I])
      File.writeU8(0);
    File.writeBytes(Sections[I].Data, Sections[I].Bytes);
  }

  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out)
    return setError(Error, "cannot open '" + Path + "' for writing");
  size_t Written =
      std::fwrite(File.bytes().data(), 1, File.size(), Out);
  bool Flushed = std::fclose(Out) == 0;
  if (Written != File.size() || !Flushed)
    return setError(Error, "short write to '" + Path + "'");
  return true;
}

bool dspec::readSnapshotFile(const std::string &Path,
                             SpecializationSnapshot &Out, std::string *Error) {
  Out = SpecializationSnapshot();
  std::vector<unsigned char> Image;
  if (!readWholeFile(Path, Image, Error))
    return false;

  ParsedContainer Container;
  if (!parseContainer(Image, Container, Error))
    return false;

  const SnapshotSectionInfo *Meta =
      requireSection(Container, SnapshotSection::Meta, Error);
  const SnapshotSectionInfo *Layout =
      requireSection(Container, SnapshotSection::Layout, Error);
  const SnapshotSectionInfo *Loader =
      requireSection(Container, SnapshotSection::Loader, Error);
  const SnapshotSectionInfo *Reader =
      requireSection(Container, SnapshotSection::Reader, Error);
  const SnapshotSectionInfo *Arena =
      requireSection(Container, SnapshotSection::Arena, Error);
  if (!Meta || !Layout || !Loader || !Reader || !Arena)
    return false;

  uint32_t LayoutVersion = kLayoutSerdeVersion;
  {
    ByteReader R(Image.data() + Meta->Offset,
                 static_cast<size_t>(Meta->Bytes));
    if (!deserializeMeta(R, Out, LayoutVersion, Error))
      return false;
  }
  std::string SectionError;
  {
    ByteReader R(Image.data() + Layout->Offset,
                 static_cast<size_t>(Layout->Bytes));
    if (!deserializeLayout(R, Out.Layout, SectionError, LayoutVersion))
      return setError(Error, SectionError);
  }
  {
    ByteReader R(Image.data() + Loader->Offset,
                 static_cast<size_t>(Loader->Bytes));
    if (!deserializeChunk(R, Out.Loader, SectionError))
      return setError(Error, "LOADER section: " + SectionError);
  }
  {
    ByteReader R(Image.data() + Reader->Offset,
                 static_cast<size_t>(Reader->Bytes));
    if (!deserializeChunk(R, Out.Reader, SectionError))
      return setError(Error, "READER section: " + SectionError);
  }

  // Cross-section consistency: the layout is authoritative; the arena
  // and both chunks must agree with it.
  if (Out.ArenaStride != Out.Layout.totalBytes())
    return setError(Error, "arena stride " + std::to_string(Out.ArenaStride) +
                               " does not match the cache layout (" +
                               std::to_string(Out.Layout.totalBytes()) +
                               " bytes)");
  // Bounds the procedural grid a warm start rebuilds (the arena section
  // itself cannot vouch for the pixel count when the layout has zero
  // slots and the stride is zero). 16M pixels is a 4096x4096 frame.
  if (Out.ArenaPixels > (1u << 24))
    return setError(Error, "implausible arena pixel count");
  if (static_cast<uint64_t>(Out.Meta.GridWidth) * Out.Meta.GridHeight !=
      Out.ArenaPixels)
    return setError(Error, "grid dimensions do not match the arena pixel "
                           "count");
  if (Arena->Bytes !=
      static_cast<uint64_t>(Out.ArenaPixels) * Out.ArenaStride)
    return setError(Error, "ARENA section size does not equal pixels x "
                           "stride");
  for (const Chunk *C : {&Out.Loader, &Out.Reader}) {
    if (C->CacheBytes > Out.Layout.totalBytes() ||
        C->CacheSlotCount > Out.Layout.slotCount())
      return setError(Error, "chunk '" + C->Name +
                                 "' was compiled against a larger cache "
                                 "layout than the snapshot's");
  }
  if (Out.Loader.NumParams != Out.Reader.NumParams)
    return setError(Error, "loader and reader disagree on the parameter "
                           "count");

  Out.ArenaBytes.assign(Image.data() + Arena->Offset,
                        Image.data() + Arena->Offset + Arena->Bytes);

  // Version 2: the variant set. A version-1 file simply has none; a
  // version-2 file without the section also decodes to the empty set.
  if (const SnapshotSectionInfo *Variants =
          Container.find(SnapshotSection::Variants)) {
    if (!Variants->CrcOk)
      return setError(Error,
                      "VARIANTS section fails its CRC-32 check (corrupt "
                      "file)");
    ByteReader R(Image.data() + Variants->Offset,
                 static_cast<size_t>(Variants->Bytes));
    if (!deserializeVariants(R, Out.Variants, LayoutVersion, Error))
      return false;
    for (const SnapshotVariant &V : Out.Variants) {
      if (V.ArenaStride != V.Layout.totalBytes())
        return setError(Error, "variant '" + V.Label +
                                   "': arena stride does not match its "
                                   "layout");
      if (V.ArenaPixels != Out.ArenaPixels)
        return setError(Error, "variant '" + V.Label +
                                   "': arena covers a different grid than "
                                   "the generic variant");
      for (const Chunk *C : {&V.Loader, &V.Reader})
        if (C->CacheBytes > V.Layout.totalBytes() ||
            C->CacheSlotCount > V.Layout.slotCount())
          return setError(Error, "variant chunk '" + C->Name +
                                     "' was compiled against a larger cache "
                                     "layout than the snapshot's");
      if (V.Loader.NumParams != Out.Loader.NumParams ||
          V.Reader.NumParams != Out.Reader.NumParams)
        return setError(Error, "variant '" + V.Label +
                                   "' disagrees with the generic variant on "
                                   "the parameter count");
    }
  }
  return true;
}

bool dspec::inspectSnapshotFile(const std::string &Path, SnapshotFileInfo &Out,
                                std::string *Error) {
  Out = SnapshotFileInfo();
  std::vector<unsigned char> Image;
  if (!readWholeFile(Path, Image, Error))
    return false;
  ParsedContainer Container;
  if (!parseContainer(Image, Container, Error))
    return false;
  Out.FormatVersion = Container.FormatVersion;
  Out.FileBytes = Image.size();
  Out.Sections = Container.Sections;
  return true;
}
