//===- snapshot/Snapshot.h - Persisted specialization snapshots -*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot subsystem: a versioned, checksummed binary file format
/// that persists one specialization unit — the loader and reader chunks
/// with their constant pools, the authoritative CacheLayout, and the
/// SpecializerOptions provenance — together with a loader-filled packed
/// cache arena. This is the paper's staging split stretched across
/// *processes*: the loader's cost is paid once (by whoever writes the
/// snapshot), and any number of fresh reader processes warm-start from
/// the file and pay only reader frames.
///
/// File layout (all integers little-endian):
///
///   offset  size  field
///   0       8     magic "DSPECSNP"
///   8       4     u32 snapshot format version
///   12      4     u32 section count
///   16      28*n  section table: {u32 id, u32 reserved,
///                                 u64 offset, u64 bytes, u32 crc32}
///   ...           section payloads; the ARENA payload offset is
///                 64-byte aligned so the file can later be mmap'd
///                 straight into a cache arena
///
/// Sections: META (serde versions + provenance + grid/arena shape),
/// LAYOUT (CacheLayout), LOADER / READER (chunks), ARENA (raw packed
/// cache bytes, exactly pixels x stride), and — format version 2 —
/// VARIANTS (the property-specialized variant set: per variant the
/// abstract-property pins, label, layout, both chunks, and a
/// loader-filled arena). The five v1 sections always describe the
/// *generic* variant, so a version-1 file is simply a snapshot whose
/// variant set is empty: the reader accepts both versions, and a
/// variant-free version-2 file (which merely omits the VARIANTS
/// section) is byte-identical to version 1 except for the version
/// field.
///
/// Reading treats the file as untrusted input: magic/version/section
/// bounds are validated, every section's CRC-32 is checked, chunks are
/// run through the vm serde verifier, and the layout/arena shapes must
/// agree — any failure produces a diagnostic string, never UB or a
/// crash. See docs/SNAPSHOT.md for the compatibility policy.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SNAPSHOT_SNAPSHOT_H
#define DATASPEC_SNAPSHOT_SNAPSHOT_H

#include "specialize/CacheLayout.h"
#include "specialize/Polyvariant.h"
#include "specialize/SpecializerOptions.h"
#include "support/AlignedBuffer.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dspec {

/// Container version this build writes. Version 2 added the VARIANTS
/// section; version-1 files (no variants) still load as generic-only.
/// Chunk and layout payloads carry their own serde versions.
constexpr uint32_t kSnapshotFormatVersion = 2;
/// Oldest container version readSnapshotFile accepts.
constexpr uint32_t kMinSnapshotFormatVersion = 1;

/// The file magic; first eight bytes of every snapshot.
constexpr char kSnapshotMagic[8] = {'D', 'S', 'P', 'E', 'C', 'S', 'N', 'P'};

/// Section identifiers (the `id` field of a section-table entry).
enum class SnapshotSection : uint32_t {
  Meta = 1,
  Layout = 2,
  Loader = 3,
  Reader = 4,
  Arena = 5,
  /// Format version 2: the property-specialized variant set.
  Variants = 6,
};

/// Printable name of a section id ("META", "ARENA", ...).
const char *snapshotSectionName(uint32_t Id);

/// Provenance and shape metadata stored in the META section.
struct SnapshotMeta {
  /// Name of the specialized fragment (and of the chunks' source).
  std::string FragmentName;
  /// The input partition: which parameters vary.
  std::vector<std::string> VaryingParams;

  // SpecializerOptions provenance — enough to reproduce (or refuse to
  // mix) specializations made under different rules.
  bool JoinNormalize = true;
  bool Reassociate = false;
  bool Speculation = false;
  bool WeightVictimBySize = false;
  std::optional<unsigned> CacheByteLimit;

  /// Pixel grid the arena was loaded over (RenderGrid is procedural, so
  /// dimensions fully determine the fixed per-pixel inputs).
  unsigned GridWidth = 0;
  unsigned GridHeight = 0;
  /// Control-parameter values the loader pass ran with.
  std::vector<float> Controls;

  /// Copies the option fields out of \p Options.
  static SnapshotMeta fromOptions(const SpecializerOptions &Options);

  /// One-line provenance summary, e.g. "phi, reassoc, limit=40B".
  std::string optionsSummary() const;
};

/// One property-specialized variant persisted alongside the generic
/// unit: its abstract-property key, the human-readable label, its own
/// layout and chunks, and a loader-filled arena over the same grid.
struct SnapshotVariant {
  VariantKey Key;
  std::string Label;
  Chunk Loader;
  Chunk Reader;
  CacheLayout Layout;
  unsigned ArenaPixels = 0;
  unsigned ArenaStride = 0;
  ArenaBuffer ArenaBytes;
};

/// Everything one snapshot file holds, decoded. The top-level fields are
/// the generic variant; Variants holds the property-specialized set
/// (empty for version-1 files).
struct SpecializationSnapshot {
  SnapshotMeta Meta;
  Chunk Loader;
  Chunk Reader;
  CacheLayout Layout;
  /// Arena shape + raw packed bytes — always canonical pixel-major,
  /// Pixels x Stride, whatever physical layout the arena ran with. The
  /// aligned buffer type lets a restore adopt it without a copy.
  unsigned ArenaPixels = 0;
  unsigned ArenaStride = 0;
  ArenaBuffer ArenaBytes;
  /// Property-specialized variants (never includes the generic one).
  std::vector<SnapshotVariant> Variants;
};

/// Serializes \p Snap to \p Path. Returns false with \p Error set on
/// inconsistent contents (arena shape not matching the layout/grid) or
/// I/O failure.
bool writeSnapshotFile(const std::string &Path,
                       const SpecializationSnapshot &Snap,
                       std::string *Error = nullptr);

/// Reads and fully validates \p Path (bounds, CRCs, chunk verification,
/// shape consistency). Returns false with a diagnostic in \p Error on
/// any problem; \p Out is unspecified then.
bool readSnapshotFile(const std::string &Path, SpecializationSnapshot &Out,
                      std::string *Error = nullptr);

/// One section-table row, as reported by inspectSnapshotFile.
struct SnapshotSectionInfo {
  uint32_t Id = 0;
  uint64_t Offset = 0;
  uint64_t Bytes = 0;
  uint32_t StoredCrc = 0;
  bool CrcOk = false;
};

/// Header-level description of a snapshot file (for `dspec snapshot
/// info`): validates magic/version/table bounds and checks CRCs, but
/// does not decode payloads.
struct SnapshotFileInfo {
  uint32_t FormatVersion = 0;
  uint64_t FileBytes = 0;
  std::vector<SnapshotSectionInfo> Sections;
};

bool inspectSnapshotFile(const std::string &Path, SnapshotFileInfo &Out,
                         std::string *Error = nullptr);

} // namespace dspec

#endif // DATASPEC_SNAPSHOT_SNAPSHOT_H
