//===- service/Transport.cpp - Byte transports for the service --------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Transport.h"

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dspec;

//===----------------------------------------------------------------------===//
// Loopback
//===----------------------------------------------------------------------===//

namespace {

/// One direction of the loopback pair: a bounded-by-nothing byte queue.
/// (Frames are small and the protocol is request/response, so writers
/// never run meaningfully ahead of readers.)
struct LoopbackPipe {
  std::mutex M;
  std::condition_variable DataReady;
  std::deque<unsigned char> Bytes;
  bool Closed = false;

  void write(const void *Data, size_t Size) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    {
      std::lock_guard<std::mutex> Lock(M);
      Bytes.insert(Bytes.end(), P, P + Size);
    }
    DataReady.notify_all();
  }

  bool read(void *Data, size_t Size) {
    unsigned char *P = static_cast<unsigned char *>(Data);
    std::unique_lock<std::mutex> Lock(M);
    while (Size > 0) {
      DataReady.wait(Lock, [&] { return !Bytes.empty() || Closed; });
      if (Bytes.empty() && Closed)
        return false;
      size_t Take = Bytes.size() < Size ? Bytes.size() : Size;
      for (size_t I = 0; I < Take; ++I)
        P[I] = Bytes[I];
      Bytes.erase(Bytes.begin(), Bytes.begin() + Take);
      P += Take;
      Size -= Take;
    }
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
    }
    DataReady.notify_all();
  }

  bool closed() {
    std::lock_guard<std::mutex> Lock(M);
    return Closed;
  }
};

class LoopbackTransport : public Transport {
public:
  LoopbackTransport(std::shared_ptr<LoopbackPipe> Outgoing,
                    std::shared_ptr<LoopbackPipe> Incoming)
      : Outgoing(std::move(Outgoing)), Incoming(std::move(Incoming)) {}

  ~LoopbackTransport() override { shutdown(); }

  bool writeAll(const void *Data, size_t Size) override {
    if (Outgoing->closed())
      return false;
    Outgoing->write(Data, Size);
    return true;
  }

  bool readAll(void *Data, size_t Size) override {
    return Incoming->read(Data, Size);
  }

  void shutdown() override {
    // Close both directions so reads *and* writes on both endpoints fail.
    Outgoing->close();
    Incoming->close();
  }

private:
  std::shared_ptr<LoopbackPipe> Outgoing;
  std::shared_ptr<LoopbackPipe> Incoming;
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
dspec::makeLoopbackPair() {
  auto AtoB = std::make_shared<LoopbackPipe>();
  auto BtoA = std::make_shared<LoopbackPipe>();
  return {std::make_unique<LoopbackTransport>(AtoB, BtoA),
          std::make_unique<LoopbackTransport>(BtoA, AtoB)};
}

//===----------------------------------------------------------------------===//
// Unix-domain sockets
//===----------------------------------------------------------------------===//

namespace {

/// Transport over a connected file descriptor. shutdown() uses
/// ::shutdown(2), which unblocks concurrent reads without racing the
/// close of the descriptor itself.
class FdTransport : public Transport {
public:
  explicit FdTransport(int Fd) : Fd(Fd) {}

  ~FdTransport() override {
    shutdown();
    ::close(Fd);
  }

  bool writeAll(const void *Data, size_t Size) override {
    const char *P = static_cast<const char *>(Data);
    while (Size > 0) {
      ssize_t N = ::send(Fd, P, Size, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      P += N;
      Size -= static_cast<size_t>(N);
    }
    return true;
  }

  bool readAll(void *Data, size_t Size) override {
    char *P = static_cast<char *>(Data);
    while (Size > 0) {
      ssize_t N = ::recv(Fd, P, Size, 0);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      if (N == 0)
        return false; // EOF
      P += N;
      Size -= static_cast<size_t>(N);
    }
    return true;
  }

  void shutdown() override { ::shutdown(Fd, SHUT_RDWR); }

private:
  int Fd;
};

bool fillSockaddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Error) {
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + Path;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

bool UnixServerSocket::listenOn(const std::string &SocketPath,
                                std::string *Error) {
  sockaddr_un Addr;
  if (!fillSockaddr(SocketPath, Addr, Error))
    return false;
  int NewFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (NewFd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(SocketPath.c_str()); // stale socket from a previous run
  if (::bind(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(NewFd, 64) < 0) {
    if (Error)
      *Error = "bind/listen on '" + SocketPath +
               "': " + std::strerror(errno);
    ::close(NewFd);
    return false;
  }
  close();
  Fd = NewFd;
  WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  Path = SocketPath;
  return true;
}

std::unique_ptr<Transport> UnixServerSocket::acceptConnection(
    int TimeoutMillis) {
  if (Fd < 0)
    return nullptr;
  // Poll the listen fd *and* the wakeup fd, so interrupt() — e.g. from a
  // signal handler — ends an indefinite wait immediately instead of the
  // caller rediscovering its stop flag at the next timeout.
  pollfd P[2] = {{Fd, POLLIN, 0}, {WakeFd, POLLIN, 0}};
  int Ready = ::poll(P, WakeFd >= 0 ? 2 : 1, TimeoutMillis);
  if (Ready <= 0)
    return nullptr;
  if (WakeFd >= 0 && (P[1].revents & POLLIN)) {
    uint64_t Count;
    while (::read(WakeFd, &Count, sizeof(Count)) > 0) {
    }
    return nullptr;
  }
  if (!(P[0].revents & POLLIN))
    return nullptr;
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0)
    return nullptr;
  return std::make_unique<FdTransport>(Conn);
}

void UnixServerSocket::interrupt() {
  if (WakeFd < 0)
    return;
  uint64_t One = 1;
  [[maybe_unused]] ssize_t N = ::write(WakeFd, &One, sizeof(One));
}

void UnixServerSocket::close() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
  if (WakeFd >= 0) {
    ::close(WakeFd);
    WakeFd = -1;
  }
  if (!Path.empty())
    ::unlink(Path.c_str());
  Path.clear();
}

std::unique_ptr<Transport>
dspec::connectUnixSocket(const std::string &SocketPath, std::string *Error) {
  sockaddr_un Addr;
  if (!fillSockaddr(SocketPath, Addr, Error))
    return nullptr;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Error)
      *Error = "connect to '" + SocketPath + "': " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  return std::make_unique<FdTransport>(Fd);
}

std::unique_ptr<Transport> dspec::connectTcp(const std::string &Host,
                                             uint16_t Port,
                                             std::string *Error) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "cannot parse host '" + Host +
               "' (an IPv4 address like 127.0.0.1)";
    return nullptr;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Error)
      *Error = "connect to " + Host + ":" + std::to_string(Port) + ": " +
               std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return std::make_unique<FdTransport>(Fd);
}
