//===- service/UnitCache.h - Keyed cache of specialization units -*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memoised heart of the specialization service: a sharded,
/// capacity-bounded LRU cache of *specialization units*, keyed by
/// (shader name, invariant-input hash, SpecializerOptions fingerprint).
/// One unit is everything the paper says you pay for once per input
/// partition — the compiled cache loader and reader plus a loader-warmed
/// packed CacheArena — so a cache hit turns a render request into pure
/// reader frames. This is the polyvariant, memo-table view of
/// specialization (Gallagher; Leuschel & Bruynooghe) realized for data
/// specialization: one cache entry per invariant-input partition.
///
/// Concurrency contract:
///  - getOrBuild is safe from any number of threads; concurrent misses on
///    one key run the builder exactly once (single-flight), with the
///    other callers blocking until the build finishes (counted as
///    coalesced waits, not extra misses).
///  - Units are immutable once published and handed out as
///    shared_ptr<const ...>, so an eviction never frees a unit that an
///    in-flight request is still reading.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SERVICE_UNITCACHE_H
#define DATASPEC_SERVICE_UNITCACHE_H

#include "engine/CacheArena.h"
#include "engine/RenderContext.h"
#include "specialize/Polyvariant.h"
#include "specialize/SpecializerOptions.h"
#include "vm/Bytecode.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dspec {

/// One cached specialization: the compiled unit and the loader-warmed
/// arena for one (shader, invariant inputs, options) partition.
/// Immutable after construction; shared by every request that hits it.
struct SpecializationUnit {
  std::string Shader;
  Chunk Loader;
  Chunk Reader;
  CacheLayout Layout;
  RenderGrid Grid;
  CacheArena Arena;
  /// Canonical varying-parameter names and the full control vector the
  /// loader ran with (varying slots hold the build request's values;
  /// cached slots never depend on them).
  std::vector<std::string> Varying;
  std::vector<float> LoadControls;
  /// The abstract-property key this unit was specialized under, and its
  /// human-readable rendering ("generic", "grain=0"). The generic key is
  /// the empty pin list.
  VariantKey Variant;
  std::string VariantLabel = "generic";
  /// Wall-clock cost of specialize + compile + loader pass (what a miss
  /// pays and a hit amortizes).
  double BuildSeconds = 0.0;
  /// The options this unit was specialized under — provenance for the
  /// spill store's snapshot META section.
  SpecializerOptions Options;

  SpecializationUnit(unsigned Width, unsigned Height) : Grid(Width, Height) {}
};

using UnitPtr = std::shared_ptr<const SpecializationUnit>;

/// FNV-1a 64-bit hash (seedable for incremental use).
inline uint64_t fnv1a64(const void *Data, size_t Size,
                        uint64_t Seed = 0xcbf29ce484222325ull) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Fingerprint of every SpecializerOptions field that changes the
/// generated unit. Two requests whose options fingerprints differ must
/// never share a cache entry, even for identical inputs.
uint64_t optionsFingerprint(const SpecializerOptions &Options);

/// Cache key: one entry per (shader, invariant-input partition, options).
/// InvariantHash covers the grid dimensions, the varying-parameter set,
/// and the values of every *fixed* control — the varying controls' values
/// are deliberately excluded, which is exactly what makes the entry
/// reusable across frames of a parameter drag.
struct UnitKey {
  std::string Shader;
  uint64_t InvariantHash = 0;
  uint64_t OptionsFingerprint = 0;
  /// The abstract-property variant this entry holds (empty = generic).
  /// Requests canonicalized to different variants must build distinct
  /// units even when their invariant partitions coincide.
  VariantKey Variant;

  bool operator==(const UnitKey &RHS) const = default;
};

struct UnitKeyHasher {
  size_t operator()(const UnitKey &Key) const {
    uint64_t H = fnv1a64(Key.Shader.data(), Key.Shader.size());
    H = fnv1a64(&Key.InvariantHash, sizeof(Key.InvariantHash), H);
    H = fnv1a64(&Key.OptionsFingerprint, sizeof(Key.OptionsFingerprint), H);
    uint64_t V = Key.Variant.hash();
    H = fnv1a64(&V, sizeof(V), H);
    return static_cast<size_t>(H);
  }
};

/// Sharded LRU cache of specialization units with single-flight misses.
class UnitCache {
public:
  /// Builds a unit on a miss. Returns null with \p Error set on failure;
  /// failures are reported to every coalesced waiter and never cached.
  using Builder = std::function<UnitPtr(std::string &Error)>;

  /// Aggregated counters (summed over shards).
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    /// Callers that blocked behind another caller's in-flight build.
    uint64_t CoalescedWaits = 0;
    uint64_t BuildFailures = 0;
    uint64_t Entries = 0;
  };

  /// Called with each (key, unit) a capacity eviction pushes out, outside
  /// the shard lock so it may do real work (spill to disk). The unit is
  /// still alive (shared_ptr) for the duration of the call.
  using EvictionSink = std::function<void(const UnitKey &, const UnitPtr &)>;

  /// \p Capacity total units across \p Shards shards (each shard holds up
  /// to ceil(Capacity/Shards); both are clamped to at least 1).
  explicit UnitCache(unsigned Capacity, unsigned ShardCount = 4);

  /// Installs the eviction sink. Call before concurrent use (the sink is
  /// read without synchronization on the publish path).
  void setEvictionSink(EvictionSink Sink) { OnEvict = std::move(Sink); }

  /// Returns the unit for \p Key, running \p Build at most once across
  /// all concurrent callers on a miss. \p WasHit (optional) reports
  /// whether this caller was served from the cache without waiting on a
  /// build. Returns null with \p Error set if the build failed.
  UnitPtr getOrBuild(const UnitKey &Key, const Builder &Build,
                     bool *WasHit = nullptr, std::string *Error = nullptr);

  /// Cache lookup without building; counts a hit/miss.
  UnitPtr lookup(const UnitKey &Key);

  /// Visits every cached unit, shard by shard under that shard's lock
  /// (keep the callback cheap — this exists for /statsz arena
  /// aggregation).
  void forEachUnit(const std::function<void(const UnitPtr &)> &Fn) const;

  Stats stats() const;
  unsigned capacity() const { return TotalCapacity; }

private:
  /// Rendezvous for one in-flight build.
  struct InFlight {
    std::mutex M;
    std::condition_variable Ready;
    bool Done = false;
    UnitPtr Result;
    std::string Error;
  };

  struct Shard {
    mutable std::mutex M;
    /// Front = most recently used.
    std::list<std::pair<UnitKey, UnitPtr>> Lru;
    std::unordered_map<UnitKey,
                       std::list<std::pair<UnitKey, UnitPtr>>::iterator,
                       UnitKeyHasher>
        Map;
    std::unordered_map<UnitKey, std::shared_ptr<InFlight>, UnitKeyHasher>
        Building;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t CoalescedWaits = 0;
    uint64_t BuildFailures = 0;
  };

  Shard &shardFor(const UnitKey &Key) {
    // Remix the key hash under a different seed before picking the shard.
    // Reusing UnitKeyHasher's value directly would make every key in a
    // shard share its low bits — the very bits the shard's unordered_map
    // buckets on — degrading the intra-shard maps toward linked lists.
    uint64_t H = UnitKeyHasher()(Key);
    H = fnv1a64(&H, sizeof(H), 0x9e3779b97f4a7c15ull);
    return Shards[H % Shards.size()];
  }

  /// Publishes a built unit into \p S, evicting LRU entries past the
  /// shard capacity. Caller must not hold the shard mutex.
  void publish(Shard &S, const UnitKey &Key, const UnitPtr &Unit);

  std::vector<Shard> Shards;
  unsigned TotalCapacity;
  unsigned ShardCapacity;
  EvictionSink OnEvict;
};

} // namespace dspec

#endif // DATASPEC_SERVICE_UNITCACHE_H
