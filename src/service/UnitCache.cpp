//===- service/UnitCache.cpp - Keyed cache of specialization units ----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/UnitCache.h"

#include "support/ByteStream.h"

using namespace dspec;

uint64_t dspec::optionsFingerprint(const SpecializerOptions &Options) {
  // Serialize the fields through the little-endian writer so the
  // fingerprint is stable across hosts (it may end up in logs and on the
  // wire, not just in process-local keys).
  ByteWriter W;
  W.writeU8(Options.EnableJoinNormalize ? 1 : 0);
  W.writeU8(Options.EnableReassociate ? 1 : 0);
  W.writeU8(Options.Reassoc.AllowFloatReassociation ? 1 : 0);
  W.writeU8(Options.AllowSpeculation ? 1 : 0);
  W.writeU8(Options.WeightVictimBySize ? 1 : 0);
  W.writeU8(Options.CacheByteLimit.has_value() ? 1 : 0);
  W.writeU32(Options.CacheByteLimit.value_or(0));
  W.writeU64(Options.LlcByteBound);
  W.writeU32(Options.ArenaPixels);
  W.writeU32(Options.Cost.LoopMultiplier);
  W.writeU32(Options.Cost.CondDivisor);
  W.writeU32(Options.Cost.CacheRefCost);
  W.writeU8(Options.CollectExplanation ? 1 : 0);
  return fnv1a64(W.bytes().data(), W.size());
}

UnitCache::UnitCache(unsigned Capacity, unsigned ShardCount)
    : Shards(ShardCount == 0 ? 1 : ShardCount),
      TotalCapacity(Capacity == 0 ? 1 : Capacity) {
  unsigned N = static_cast<unsigned>(Shards.size());
  ShardCapacity = (TotalCapacity + N - 1) / N;
  if (ShardCapacity == 0)
    ShardCapacity = 1;
}

UnitPtr UnitCache::lookup(const UnitKey &Key) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Key);
  if (It == S.Map.end()) {
    ++S.Misses;
    return nullptr;
  }
  ++S.Hits;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  return It->second->second;
}

void UnitCache::forEachUnit(
    const std::function<void(const UnitPtr &)> &Fn) const {
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const auto &Entry : S.Lru)
      Fn(Entry.second);
  }
}

void UnitCache::publish(Shard &S, const UnitKey &Key, const UnitPtr &Unit) {
  std::vector<std::pair<UnitKey, UnitPtr>> Evicted;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      // A racing build of the same key already published; keep the
      // existing entry (units for one key are interchangeable by
      // construction).
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      return;
    }
    S.Lru.emplace_front(Key, Unit);
    S.Map[Key] = S.Lru.begin();
    while (S.Lru.size() > ShardCapacity) {
      // Dropping the shared_ptr only releases the map's reference;
      // requests still holding the unit keep it alive until they finish.
      S.Map.erase(S.Lru.back().first);
      Evicted.push_back(std::move(S.Lru.back()));
      S.Lru.pop_back();
      ++S.Evictions;
    }
  }
  // The sink may spill to disk; run it after the shard lock is gone so
  // slow IO never blocks the hot lookup path.
  if (OnEvict)
    for (const auto &[EvictedKey, EvictedUnit] : Evicted)
      OnEvict(EvictedKey, EvictedUnit);
}

UnitPtr UnitCache::getOrBuild(const UnitKey &Key, const Builder &Build,
                              bool *WasHit, std::string *Error) {
  Shard &S = shardFor(Key);
  std::shared_ptr<InFlight> Flight;
  bool Leader = false;

  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      ++S.Hits;
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      if (WasHit)
        *WasHit = true;
      return It->second->second;
    }
    auto Building = S.Building.find(Key);
    if (Building != S.Building.end()) {
      ++S.CoalescedWaits;
      Flight = Building->second;
    } else {
      ++S.Misses;
      Flight = std::make_shared<InFlight>();
      S.Building.emplace(Key, Flight);
      Leader = true;
    }
  }
  if (WasHit)
    *WasHit = false;

  if (!Leader) {
    // Single-flight follower: block until the leader finishes.
    std::unique_lock<std::mutex> Lock(Flight->M);
    Flight->Ready.wait(Lock, [&] { return Flight->Done; });
    if (!Flight->Result && Error)
      *Error = Flight->Error;
    return Flight->Result;
  }

  // Single-flight leader: build outside every lock.
  std::string BuildError;
  UnitPtr Unit = Build(BuildError);

  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Building.erase(Key);
    if (!Unit)
      ++S.BuildFailures;
  }
  if (Unit)
    publish(S, Key, Unit);

  {
    std::lock_guard<std::mutex> Lock(Flight->M);
    Flight->Done = true;
    Flight->Result = Unit;
    Flight->Error = BuildError;
  }
  Flight->Ready.notify_all();

  if (!Unit && Error)
    *Error = BuildError;
  return Unit;
}

UnitCache::Stats UnitCache::stats() const {
  Stats Out;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Out.Hits += S.Hits;
    Out.Misses += S.Misses;
    Out.Evictions += S.Evictions;
    Out.CoalescedWaits += S.CoalescedWaits;
    Out.BuildFailures += S.BuildFailures;
    Out.Entries += S.Lru.size();
  }
  return Out;
}
