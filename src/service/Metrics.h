//===- service/Metrics.h - Service counters and latency stats ---*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for the specialization service: cheap atomic counters on
/// the request path, a bounded reservoir of recent request latencies, and
/// a /statsz-style snapshot (requests, outcome breakdown, cache hit rate,
/// evictions, shed counts, p50/p95/p99 latency) rendered as JSON — what
/// you would scrape from a production server's metrics endpoint.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SERVICE_METRICS_H
#define DATASPEC_SERVICE_METRICS_H

#include "service/UnitCache.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dspec {

/// Percentile over a sample set (nearest-rank); 0 for an empty set.
double percentileOf(std::vector<double> Samples, double Pct);

/// Per-variant request accounting: how many requests resolved to this
/// property variant, split by whether the unit came from the cache.
struct VariantStat {
  std::string Label; // "generic", "grain=0", ...
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Everything one statsz scrape reports. Plain data, so tests can assert
/// on fields instead of parsing JSON.
struct MetricsSnapshot {
  uint64_t RequestsTotal = 0;
  uint64_t RequestsOk = 0;
  uint64_t CacheHitRequests = 0;
  uint64_t BadRequests = 0;
  uint64_t SpecializeErrors = 0;
  uint64_t RenderTraps = 0;
  uint64_t ShedQueueFull = 0;
  uint64_t ShedDeadline = 0;
  uint64_t RejectedDraining = 0;
  /// Shed by the network front end's per-client fairness (token bucket
  /// or in-queue cap) before reaching the service queue.
  uint64_t ShedQuota = 0;

  UnitCache::Stats Cache;
  uint64_t CacheCapacity = 0;

  /// Disk-spill accounting (zero when no spill directory is configured).
  /// DiskHits counts units restored from a spilled snapshot instead of
  /// being respecialized — separate from in-memory Cache.Hits.
  uint64_t SpillDiskHits = 0;
  uint64_t SpillWrites = 0;
  uint64_t SpillErrors = 0;
  uint64_t SpillEvictedFiles = 0;
  uint64_t SpillFiles = 0;
  uint64_t SpillBytes = 0;
  bool SpillEnabled = false;

  /// Per-variant hit/miss breakdown, sorted by label ("generic" first
  /// when present only by accident of ordering — labels sort lexically).
  std::vector<VariantStat> Variants;

  /// Requests served per execution tier ("switch"/"threaded"/"batched"/
  /// "native"), sorted by tier name. Only tiers that served at least one
  /// request appear.
  std::vector<std::pair<std::string, uint64_t>> ExecTiers;
  /// Native-tier stitching totals (jit::stats()); zero in fallback
  /// builds, where ExecTiers still reports "native" requests — they just
  /// ran the threaded deopt path.
  uint64_t JitCompiles = 0;
  uint64_t JitCodeBytes = 0;

  /// Arena accounting, aggregated over the live unit cache at snapshot
  /// time: the configured physical layout, bytes actually allocated
  /// (padding and tail slack included), and the hot per-frame working
  /// set — hot stride x pixels per unit — against the configured LLC
  /// bound (0 = no bound in force).
  std::string ArenaLayout = "pixel-major";
  uint64_t ArenaUnits = 0;
  uint64_t ArenaPhysicalBytes = 0;
  uint64_t ArenaHotFrameBytes = 0;
  uint64_t ArenaMaxHotFrameBytes = 0;
  uint64_t ArenaLlcBytes = 0;
  /// True when every unit's hot working set fits the bound (vacuously
  /// true with no bound).
  bool ArenaFitsLlc = true;

  uint64_t QueueDepth = 0;
  uint64_t LatencySamples = 0;
  double LatencyP50 = 0.0;
  double LatencyP95 = 0.0;
  double LatencyP99 = 0.0;

  /// A preformatted JSON object the network front end contributes
  /// (connections, quota sheds, reaps); empty = no "net" section.
  std::string NetJson;

  /// Total sheds (queue-full + deadline + quota), the admission-control
  /// signal.
  uint64_t shedTotal() const {
    return ShedQueueFull + ShedDeadline + ShedQuota;
  }

  /// Hits / (hits + misses); 0 when the cache is untouched.
  double cacheHitRate() const;

  /// One-line-per-scrape JSON document.
  std::string toJson() const;
};

/// Request-path counters plus a latency reservoir. All record methods are
/// thread-safe and cheap enough for the hot path.
class ServiceMetrics {
public:
  /// Keeps the most recent \p ReservoirSize latency samples.
  explicit ServiceMetrics(size_t ReservoirSize = 4096);

  void recordOk(double LatencySeconds, bool CacheHit);
  /// Attributes one served request to the property variant it rendered
  /// with. \p CacheHit mirrors the reply's cache-hit flag.
  void recordVariant(const std::string &Label, bool CacheHit);
  /// Attributes one served request to the execution tier that rendered it
  /// (the service's configured tier at finish time).
  void recordExecTier(const std::string &TierName);
  void recordBadRequest() { ++RequestsTotal; ++BadRequests; }
  void recordSpecializeError(double LatencySeconds);
  void recordRenderTrap(double LatencySeconds);
  void recordShedQueueFull() { ++RequestsTotal; ++ShedQueueFull; }
  void recordShedDeadline() { ++RequestsTotal; ++ShedDeadline; }
  void recordShedQuota() { ++RequestsTotal; ++ShedQuota; }
  void recordRejectedDraining() { ++RequestsTotal; ++RejectedDraining; }

  /// Fills the counter and latency fields (cache/queue fields are the
  /// caller's — the service composes the full snapshot).
  MetricsSnapshot snapshot() const;

private:
  void recordLatency(double Seconds);

  std::atomic<uint64_t> RequestsTotal{0};
  std::atomic<uint64_t> RequestsOk{0};
  std::atomic<uint64_t> CacheHitRequests{0};
  std::atomic<uint64_t> BadRequests{0};
  std::atomic<uint64_t> SpecializeErrors{0};
  std::atomic<uint64_t> RenderTraps{0};
  std::atomic<uint64_t> ShedQueueFull{0};
  std::atomic<uint64_t> ShedDeadline{0};
  std::atomic<uint64_t> ShedQuota{0};
  std::atomic<uint64_t> RejectedDraining{0};

  mutable std::mutex LatencyMutex;
  std::vector<double> Latencies; // ring buffer
  size_t LatencyNext = 0;
  size_t LatencyCount = 0;

  mutable std::mutex VariantMutex;
  /// Ordered so the snapshot comes out sorted without an extra pass.
  std::map<std::string, std::pair<uint64_t, uint64_t>> VariantCounts;

  mutable std::mutex TierMutex;
  std::map<std::string, uint64_t> TierCounts; // likewise ordered
};

} // namespace dspec

#endif // DATASPEC_SERVICE_METRICS_H
