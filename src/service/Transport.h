//===- service/Transport.h - Byte transports for the service ----*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reliable, ordered byte transports the framed protocol runs over. Two
/// implementations:
///
///   loopback   an in-process bidirectional pipe pair, so tests and
///              benchmarks exercise the full client/server path with no
///              real networking (and no flakiness);
///   unix       a unix-domain stream socket, used by `dspec serve` and
///              `dspec request`.
///
/// A transport moves bytes, nothing more; framing, checksums, and message
/// semantics live in service/Protocol.h. shutdown() is safe to call from
/// any thread and unblocks concurrent readAll/writeAll calls — it is how
/// the server interrupts connections parked in a blocking read during
/// graceful drain.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SERVICE_TRANSPORT_H
#define DATASPEC_SERVICE_TRANSPORT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace dspec {

/// A reliable, ordered, bidirectional byte stream.
class Transport {
public:
  virtual ~Transport() = default;

  /// Writes exactly \p Size bytes; false on a closed/failed peer.
  virtual bool writeAll(const void *Data, size_t Size) = 0;

  /// Reads exactly \p Size bytes; false on EOF or failure (a short read
  /// mid-message is a failure, not a partial success).
  virtual bool readAll(void *Data, size_t Size) = 0;

  /// Makes all current and future I/O on this endpoint fail promptly.
  /// Thread-safe; idempotent.
  virtual void shutdown() = 0;
};

/// Creates a connected in-process transport pair: bytes written to one
/// endpoint are read from the other. Either endpoint's shutdown() (or
/// destruction) unblocks both sides.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeLoopbackPair();

/// A listening unix-domain stream socket. Closes and unlinks on
/// destruction.
class UnixServerSocket {
public:
  UnixServerSocket() = default;
  ~UnixServerSocket() { close(); }
  UnixServerSocket(UnixServerSocket &&Other) noexcept
      : Fd(Other.Fd), WakeFd(Other.WakeFd), Path(std::move(Other.Path)) {
    Other.Fd = -1;
    Other.WakeFd = -1;
  }
  UnixServerSocket &operator=(UnixServerSocket &&) = delete;
  UnixServerSocket(const UnixServerSocket &) = delete;
  UnixServerSocket &operator=(const UnixServerSocket &) = delete;

  /// Binds and listens on \p SocketPath (unlinking a stale file first).
  /// Returns false with \p Error set on failure.
  bool listenOn(const std::string &SocketPath, std::string *Error);

  /// Waits up to \p TimeoutMillis (-1 = indefinitely) for a connection;
  /// returns null on timeout, interrupt(), or a closed socket. Blocking
  /// indefinitely is safe because interrupt() wakes the poll through the
  /// socket's wakeup fd — callers no longer need a timeout-and-recheck
  /// loop to notice a stop flag.
  std::unique_ptr<Transport> acceptConnection(int TimeoutMillis = -1);

  /// Wakes a blocked acceptConnection immediately (it returns null).
  /// Async-signal-safe (one write(2) to an eventfd) and idempotent —
  /// this is how a SIGINT/SIGTERM handler stops the accept loop with no
  /// polling latency.
  void interrupt();

  bool listening() const { return Fd >= 0; }
  void close();

private:
  int Fd = -1;
  /// eventfd that interrupt() writes and acceptConnection polls.
  int WakeFd = -1;
  std::string Path;
};

/// Connects to a unix-domain socket; null with \p Error set on failure.
std::unique_ptr<Transport> connectUnixSocket(const std::string &SocketPath,
                                             std::string *Error);

/// Connects to a TCP endpoint (\p Host is an IPv4 address like
/// 127.0.0.1); null with \p Error set on failure. TCP_NODELAY is set —
/// the protocol is request/response and latency-sensitive.
std::unique_ptr<Transport> connectTcp(const std::string &Host, uint16_t Port,
                                      std::string *Error);

} // namespace dspec

#endif // DATASPEC_SERVICE_TRANSPORT_H
