//===- service/Service.h - The specialization render service ---*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived, multi-client specialization service — the paper's
/// "pay specialization once, execute many times" split turned into a
/// server. A request names a gallery shader, an image size, the set of
/// varying controls, and this frame's control values. The service:
///
///   1. admits it through a bounded queue (full queue => shed with a
///      reason, never unbounded growth);
///   2. resolves its specialization *unit* — compiled loader/reader plus
///      a loader-warmed cache arena — through the keyed UnitCache, where
///      concurrent misses on one key specialize exactly once;
///   3. renders reader frames in tile jobs on the render engine's
///      thread pool, batching queued same-key requests behind one unit
///      resolution;
///   4. answers with a framebuffer that is bit-identical to running the
///      unspecialized shader directly (the paper's equivalence guarantee,
///      now end-to-end through the server).
///
/// Structured like a production inference server: admission control in
/// front, memoised specialization in the middle, deterministic kernels
/// underneath, /statsz on the side.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SERVICE_SERVICE_H
#define DATASPEC_SERVICE_SERVICE_H

#include "engine/RenderEngine.h"
#include "service/Metrics.h"
#include "service/Protocol.h"
#include "service/SpillStore.h"
#include "service/UnitCache.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dspec {

class Transport;

/// Sizing knobs for one service instance.
struct ServiceConfig {
  /// Worker threads per render engine (0 = one per hardware thread).
  unsigned RenderThreads = 1;
  unsigned TilePixels = 128;
  /// Capacity of the unit cache, in specialization units.
  unsigned CacheUnits = 64;
  unsigned CacheShards = 4;
  /// Bounded request queue; submissions past this are shed.
  unsigned QueueCapacity = 256;
  /// Max same-key requests rendered behind one unit resolution.
  unsigned MaxBatch = 16;
  /// Dispatcher threads, each with its own render engine.
  unsigned Dispatchers = 1;
  /// Per-request image size ceiling (pixels).
  unsigned MaxPixels = 1u << 20;
  /// Execution tier for every engine (`dspec serve --exec-tier`); all
  /// tiers render bit-identical frames, so this is a pure speed knob.
  ExecTier Tier = ExecTier::Batched;
  /// Server-side ceiling on the abstract-property pins a request may
  /// canonicalize onto (the effective count is
  /// min(Request.VariantPins, MaxVariantPins)). 0 disables polyvariance:
  /// every request maps to the generic variant.
  unsigned MaxVariantPins = 4;
  /// Physical arena layout every engine's loader pass builds
  /// (engine/ArenaLayout.h). Default is the identity pixel-major
  /// arrangement; `dspec serve --arena-layout auto` resolves
  /// chooseArenaLayout(Tier, TilePixels) before constructing the
  /// service. Readers accept any layout, so this is a pure speed knob.
  ArenaLayoutConfig ArenaLayout;
  /// Measured Section 4.3 bound: when nonzero, every specialization
  /// evicts minimum-benefit hot terms until its hot stride x pixel count
  /// fits this many bytes (`--llc-bytes`; detectLlcBytes() is the usual
  /// source). 0 disables the working-set limiter.
  uint64_t LlcBytes = 0;
  /// Directory evicted-but-warm units spill to as snapshot files (and
  /// are restored from on a later miss — including after a restart).
  /// Empty disables spilling.
  std::string SpillDir;
  /// Byte cap on the spill directory (LRU files deleted past it).
  uint64_t SpillMaxBytes = 256u << 20;
};

/// The service. Thread-safe: submit/render/statsz may be called from any
/// number of connection threads.
class SpecializationService {
public:
  explicit SpecializationService(const ServiceConfig &Config = {});
  ~SpecializationService();

  SpecializationService(const SpecializationService &) = delete;
  SpecializationService &operator=(const SpecializationService &) = delete;

  /// Completion callback for submitAsync. Runs exactly once — on a
  /// dispatcher thread for admitted requests, or synchronously on the
  /// submitting thread for immediate rejections.
  using RenderCallback = std::function<void(RenderReply)>;

  /// Enqueues a request and calls \p Done with the outcome — a
  /// framebuffer, or a structured rejection (shed, draining, bad
  /// request). Rejections complete immediately without queueing. This is
  /// the event-loop front end's entry point: no future, no blocking.
  void submitAsync(RenderRequest Request, RenderCallback Done);

  /// Enqueues a request. The future always becomes ready — with a
  /// framebuffer, or with a structured rejection (shed, draining, bad
  /// request). Rejections resolve immediately without queueing.
  std::future<RenderReply> submit(RenderRequest Request);

  /// submit + wait.
  RenderReply render(RenderRequest Request);

  /// Counts a request the network front end shed for per-client
  /// fairness (token bucket / in-queue cap) before it reached the queue.
  void recordShedQuota() { Metrics.recordShedQuota(); }

  /// Installs a provider whose JSON object becomes the /statsz "net"
  /// section (the network front end's counters). Call before serving.
  void setNetStatsProvider(std::function<std::string()> Provider) {
    NetStatsProvider = std::move(Provider);
  }

  /// Stops admitting work (new submissions answer Draining), finishes
  /// every queued request, and joins the dispatchers. Idempotent; called
  /// by the destructor.
  void drain();

  /// The /statsz snapshot: request counters, cache stats, latency
  /// percentiles, queue depth.
  MetricsSnapshot statsz() const;

  const ServiceConfig &config() const { return Config; }

private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    RenderRequest Request;
    UnitKey Key;
    RenderCallback Done;
    Clock::time_point Enqueued;
    Clock::time_point Deadline; // only meaningful when HasDeadline
    bool HasDeadline = false;
  };

  /// Canonicalizes (fills default controls/varying, sorts the varying
  /// set) and validates a request; computes its cache key. Returns false
  /// with a BadRequest reason in \p Error.
  bool canonicalize(RenderRequest &Request, UnitKey &Key,
                    std::string &Error) const;

  /// The request's SpecializerOptions plus the service-level overlay:
  /// the measured Section 4.3 bound (Config.LlcBytes + the request's
  /// pixel count). Used both for the cache-key fingerprint and the
  /// build, so entries limited under different bounds never collide.
  SpecializerOptions effectiveOptions(const RenderRequest &Request) const;

  void dispatcherLoop(unsigned DispatcherIndex);

  /// Builds the specialization unit for \p Request on \p Engine
  /// (parse + specialize + compile + loader pass), pinned to the
  /// abstract-property \p Variant the request canonicalized onto.
  UnitPtr buildUnit(const RenderRequest &Request, const VariantKey &Variant,
                    RenderEngine &Engine, std::string &Error) const;

  /// Resolves a unit for \p P: spilled snapshot from disk (a disk hit —
  /// no specializer run) or a fresh build. \p FromDisk reports which.
  UnitPtr loadOrBuildUnit(const Pending &P, RenderEngine &Engine,
                          bool &FromDisk, std::string &Error) const;

  /// Renders one request against a resolved unit and fulfills it.
  void finish(Pending &P, const UnitPtr &Unit, bool CacheHit,
              RenderEngine &Engine);

  void reject(Pending &P, RenderStatus Status, std::string Reason);

  double secondsSince(Clock::time_point Start) const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  ServiceConfig Config;
  UnitCache Cache;
  ServiceMetrics Metrics;
  /// Disk spill of evicted units (enabled iff Config.SpillDir is set).
  std::unique_ptr<SpillStore> Spill;
  std::function<std::string()> NetStatsProvider;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueReady;
  std::deque<std::unique_ptr<Pending>> Queue;
  bool Draining = false;

  /// Serializes drain() callers (destructor vs. an explicit drain).
  std::mutex DrainMutex;

  std::vector<std::unique_ptr<RenderEngine>> Engines; // one per dispatcher
  std::vector<std::thread> DispatcherThreads;
};

/// Serves one client connection: reads frames until EOF or a protocol
/// error, dispatching render and stats requests to \p Service. Run on a
/// dedicated thread per connection.
void serveConnection(Transport &Connection, SpecializationService &Service);

} // namespace dspec

#endif // DATASPEC_SERVICE_SERVICE_H
