//===- service/SpillStore.h - On-disk spill of evicted units ----*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A capped on-disk store of specialization units, coupling the
/// UnitCache to the snapshot subsystem: units evicted from the in-memory
/// LRU while still warm are spilled as version-2 snapshot files, and a
/// later miss on the same key restores the unit from disk — a *disk
/// hit* — instead of re-running the specializer. Because snapshot files
/// survive the process, a restarted `dspec serve` warm-starts from the
/// spill directory.
///
/// Layout: one `<key-hash>.dsnp` snapshot per unit, key-hashed over the
/// shader name, invariant hash, options fingerprint, and variant pins —
/// the full UnitKey, so distinct variants land in distinct files. Writes
/// go through a temp file + rename, so a crash mid-spill never leaves a
/// half-written snapshot under a valid name. The byte cap is enforced by
/// deleting least-recently-used files (by mtime; loads bump it).
///
/// Thread-safe: store/load/stats may race from dispatchers and eviction
/// sinks.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SERVICE_SPILLSTORE_H
#define DATASPEC_SERVICE_SPILLSTORE_H

#include "service/UnitCache.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dspec {

class SpillStore {
public:
  struct Stats {
    uint64_t DiskHits = 0;
    uint64_t DiskMisses = 0;
    uint64_t Writes = 0;
    uint64_t Errors = 0;
    uint64_t EvictedFiles = 0;
    uint64_t Files = 0;
    uint64_t Bytes = 0;
  };

  /// Opens (creating if needed) \p Dir and indexes the snapshots already
  /// there — the warm-start inventory. \p MaxBytes caps the directory's
  /// total size (0 = uncapped). False with \p Error on failure.
  bool open(const std::string &Dir, uint64_t MaxBytes, std::string *Error);

  bool enabled() const { return !Root.empty(); }
  const std::string &dir() const { return Root; }

  /// Spills \p Unit under \p Key (temp file + rename), then enforces the
  /// byte cap. Errors are counted, not fatal — spilling is best-effort.
  void store(const UnitKey &Key, const UnitPtr &Unit);

  /// Restores the unit spilled under \p Key, or null (a disk miss, or a
  /// corrupt/mismatched file, with \p Error set). The caller owns filling
  /// VariantLabel — the store has no access to shader parameter names.
  std::shared_ptr<SpecializationUnit> load(const UnitKey &Key,
                                           std::string *Error);

  /// Path a unit with \p Key spills to (exists or not).
  std::string pathFor(const UnitKey &Key) const;

  Stats stats() const;

private:
  uint64_t keyHash(const UnitKey &Key) const;
  /// Deletes LRU files until the cap holds. Caller holds the mutex.
  /// mtime has one-second granularity, so ties are common — they break
  /// deterministically by file name (the hex key hash), and the
  /// just-written file (\p ExcludeName, when non-null) is never the
  /// victim: spilling a unit must not immediately delete it.
  void enforceCapLocked(const std::string *ExcludeName = nullptr);

  std::string Root;
  uint64_t MaxBytes = 0;

  mutable std::mutex M;
  struct FileInfo {
    uint64_t Bytes = 0;
    /// Seconds since epoch of the last write or load (LRU ordering).
    int64_t LastUse = 0;
  };
  /// Indexed by file name ("<hash>.dsnp").
  std::map<std::string, FileInfo> Index;
  uint64_t TotalBytes = 0;
  Stats Counters;
};

} // namespace dspec

#endif // DATASPEC_SERVICE_SPILLSTORE_H
