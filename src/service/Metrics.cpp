//===- service/Metrics.cpp - Service counters and latency stats -------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Metrics.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <cmath>

using namespace dspec;

double dspec::percentileOf(std::vector<double> Samples, double Pct) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  // Nearest-rank: the smallest sample with at least Pct% of the mass at
  // or below it.
  double Rank = std::ceil(Pct / 100.0 * static_cast<double>(Samples.size()));
  size_t Index = Rank < 1.0 ? 0 : static_cast<size_t>(Rank) - 1;
  if (Index >= Samples.size())
    Index = Samples.size() - 1;
  return Samples[Index];
}

double MetricsSnapshot::cacheHitRate() const {
  uint64_t Total = Cache.Hits + Cache.Misses;
  return Total == 0 ? 0.0
                    : static_cast<double>(Cache.Hits) /
                          static_cast<double>(Total);
}

std::string MetricsSnapshot::toJson() const {
  std::string VariantsJson = "{";
  for (size_t I = 0; I < Variants.size(); ++I) {
    const VariantStat &V = Variants[I];
    if (I != 0)
      VariantsJson += ",";
    VariantsJson += formatString(
        "\"%s\":{\"hits\":%llu,\"misses\":%llu}", V.Label.c_str(),
        static_cast<unsigned long long>(V.Hits),
        static_cast<unsigned long long>(V.Misses));
  }
  VariantsJson += "}";
  std::string TiersJson = "{";
  for (size_t I = 0; I < ExecTiers.size(); ++I) {
    if (I != 0)
      TiersJson += ",";
    TiersJson += formatString(
        "\"%s\":%llu", ExecTiers[I].first.c_str(),
        static_cast<unsigned long long>(ExecTiers[I].second));
  }
  TiersJson += "}";
  std::string SpillJson;
  if (SpillEnabled)
    SpillJson = formatString(
        ",\"spill\":{\"disk_hits\":%llu,\"writes\":%llu,\"errors\":%llu,"
        "\"evicted_files\":%llu,\"files\":%llu,\"bytes\":%llu}",
        static_cast<unsigned long long>(SpillDiskHits),
        static_cast<unsigned long long>(SpillWrites),
        static_cast<unsigned long long>(SpillErrors),
        static_cast<unsigned long long>(SpillEvictedFiles),
        static_cast<unsigned long long>(SpillFiles),
        static_cast<unsigned long long>(SpillBytes));
  std::string NetSection;
  if (!NetJson.empty())
    NetSection = ",\"net\":" + NetJson;
  std::string ArenaJson = formatString(
      "\"arena\":{\"layout\":\"%s\",\"units\":%llu,\"physical_bytes\":%llu,"
      "\"hot_frame_bytes\":%llu,\"max_hot_frame_bytes\":%llu,"
      "\"llc_bytes\":%llu,\"fits_llc\":%s}",
      ArenaLayout.c_str(), static_cast<unsigned long long>(ArenaUnits),
      static_cast<unsigned long long>(ArenaPhysicalBytes),
      static_cast<unsigned long long>(ArenaHotFrameBytes),
      static_cast<unsigned long long>(ArenaMaxHotFrameBytes),
      static_cast<unsigned long long>(ArenaLlcBytes),
      ArenaFitsLlc ? "true" : "false");
  return formatString(
      "{\"requests\":{\"total\":%llu,\"ok\":%llu,\"cache_hit\":%llu,"
      "\"bad_request\":%llu,\"specialize_error\":%llu,\"render_trap\":%llu,"
      "\"shed_queue_full\":%llu,\"shed_deadline\":%llu,\"shed_quota\":%llu,"
      "\"rejected_draining\":%llu},"
      "\"unit_cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
      "\"coalesced_waits\":%llu,\"build_failures\":%llu,\"entries\":%llu,"
      "\"capacity\":%llu,\"hit_rate\":%.4f}%s,"
      "\"variants\":%s,"
      "\"exec_tiers\":%s,"
      "\"jit\":{\"compiles\":%llu,\"code_bytes\":%llu},"
      "%s,"
      "\"queue_depth\":%llu,"
      "\"latency_seconds\":{\"samples\":%llu,\"p50\":%.9f,\"p95\":%.9f,"
      "\"p99\":%.9f}%s}",
      static_cast<unsigned long long>(RequestsTotal),
      static_cast<unsigned long long>(RequestsOk),
      static_cast<unsigned long long>(CacheHitRequests),
      static_cast<unsigned long long>(BadRequests),
      static_cast<unsigned long long>(SpecializeErrors),
      static_cast<unsigned long long>(RenderTraps),
      static_cast<unsigned long long>(ShedQueueFull),
      static_cast<unsigned long long>(ShedDeadline),
      static_cast<unsigned long long>(ShedQuota),
      static_cast<unsigned long long>(RejectedDraining),
      static_cast<unsigned long long>(Cache.Hits),
      static_cast<unsigned long long>(Cache.Misses),
      static_cast<unsigned long long>(Cache.Evictions),
      static_cast<unsigned long long>(Cache.CoalescedWaits),
      static_cast<unsigned long long>(Cache.BuildFailures),
      static_cast<unsigned long long>(Cache.Entries),
      static_cast<unsigned long long>(CacheCapacity), cacheHitRate(),
      SpillJson.c_str(), VariantsJson.c_str(), TiersJson.c_str(),
      static_cast<unsigned long long>(JitCompiles),
      static_cast<unsigned long long>(JitCodeBytes), ArenaJson.c_str(),
      static_cast<unsigned long long>(QueueDepth),
      static_cast<unsigned long long>(LatencySamples), LatencyP50, LatencyP95,
      LatencyP99, NetSection.c_str());
}

ServiceMetrics::ServiceMetrics(size_t ReservoirSize)
    : Latencies(ReservoirSize == 0 ? 1 : ReservoirSize, 0.0) {}

void ServiceMetrics::recordLatency(double Seconds) {
  std::lock_guard<std::mutex> Lock(LatencyMutex);
  Latencies[LatencyNext] = Seconds;
  LatencyNext = (LatencyNext + 1) % Latencies.size();
  if (LatencyCount < Latencies.size())
    ++LatencyCount;
}

void ServiceMetrics::recordVariant(const std::string &Label, bool CacheHit) {
  std::lock_guard<std::mutex> Lock(VariantMutex);
  auto &Counts = VariantCounts[Label];
  if (CacheHit)
    ++Counts.first;
  else
    ++Counts.second;
}

void ServiceMetrics::recordExecTier(const std::string &TierName) {
  std::lock_guard<std::mutex> Lock(TierMutex);
  ++TierCounts[TierName];
}

void ServiceMetrics::recordOk(double LatencySeconds, bool CacheHit) {
  ++RequestsTotal;
  ++RequestsOk;
  if (CacheHit)
    ++CacheHitRequests;
  recordLatency(LatencySeconds);
}

void ServiceMetrics::recordSpecializeError(double LatencySeconds) {
  ++RequestsTotal;
  ++SpecializeErrors;
  recordLatency(LatencySeconds);
}

void ServiceMetrics::recordRenderTrap(double LatencySeconds) {
  ++RequestsTotal;
  ++RenderTraps;
  recordLatency(LatencySeconds);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot Out;
  Out.RequestsTotal = RequestsTotal;
  Out.RequestsOk = RequestsOk;
  Out.CacheHitRequests = CacheHitRequests;
  Out.BadRequests = BadRequests;
  Out.SpecializeErrors = SpecializeErrors;
  Out.RenderTraps = RenderTraps;
  Out.ShedQueueFull = ShedQueueFull;
  Out.ShedDeadline = ShedDeadline;
  Out.ShedQuota = ShedQuota;
  Out.RejectedDraining = RejectedDraining;

  std::vector<double> Samples;
  {
    std::lock_guard<std::mutex> Lock(LatencyMutex);
    Samples.assign(Latencies.begin(),
                   Latencies.begin() + static_cast<long>(LatencyCount));
  }
  Out.LatencySamples = Samples.size();
  Out.LatencyP50 = percentileOf(Samples, 50.0);
  Out.LatencyP95 = percentileOf(Samples, 95.0);
  Out.LatencyP99 = percentileOf(Samples, 99.0);

  {
    std::lock_guard<std::mutex> Lock(VariantMutex);
    Out.Variants.reserve(VariantCounts.size());
    for (const auto &[Label, Counts] : VariantCounts)
      Out.Variants.push_back({Label, Counts.first, Counts.second});
  }
  {
    std::lock_guard<std::mutex> Lock(TierMutex);
    Out.ExecTiers.reserve(TierCounts.size());
    for (const auto &[Name, Count] : TierCounts)
      Out.ExecTiers.emplace_back(Name, Count);
  }
  return Out;
}
