//===- service/Protocol.cpp - Framed binary service protocol ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "service/Transport.h"
#include "support/Crc32.h"

#include <algorithm>

using namespace dspec;

const char *dspec::renderStatusName(RenderStatus Status) {
  switch (Status) {
  case RenderStatus::Ok:
    return "ok";
  case RenderStatus::BadRequest:
    return "bad_request";
  case RenderStatus::SpecializeError:
    return "specialize_error";
  case RenderStatus::RenderTrap:
    return "render_trap";
  case RenderStatus::ShedQueueFull:
    return "shed_queue_full";
  case RenderStatus::ShedDeadline:
    return "shed_deadline";
  case RenderStatus::Draining:
    return "draining";
  case RenderStatus::ShedQuota:
    return "shed_quota";
  }
  return "unknown";
}

Framebuffer RenderReply::toFramebuffer() const {
  Framebuffer Fb(Width, Height);
  size_t I = 0;
  for (uint32_t Y = 0; Y < Height; ++Y)
    for (uint32_t X = 0; X < Width; ++X, I += 3)
      Fb.at(X, Y) = Value::makeVec3(Pixels[I], Pixels[I + 1], Pixels[I + 2]);
  return Fb;
}

RenderReply RenderReply::fromFramebuffer(const Framebuffer &Fb) {
  RenderReply Reply;
  Reply.Width = Fb.width();
  Reply.Height = Fb.height();
  Reply.Pixels.reserve(static_cast<size_t>(Fb.width()) * Fb.height() * 3);
  for (uint32_t Y = 0; Y < Fb.height(); ++Y)
    for (uint32_t X = 0; X < Fb.width(); ++X) {
      const Value &V = Fb.at(X, Y);
      Reply.Pixels.push_back(V.F[0]);
      Reply.Pixels.push_back(V.F[1]);
      Reply.Pixels.push_back(V.F[2]);
    }
  return Reply;
}

//===----------------------------------------------------------------------===//
// Payload serde
//===----------------------------------------------------------------------===//

void dspec::encodeRenderRequest(ByteWriter &W, const RenderRequest &Request) {
  W.writeString(Request.Shader);
  W.writeU32(Request.Width);
  W.writeU32(Request.Height);
  W.writeU32(static_cast<uint32_t>(Request.Varying.size()));
  for (const std::string &Name : Request.Varying)
    W.writeString(Name);
  W.writeU32(static_cast<uint32_t>(Request.Controls.size()));
  for (float V : Request.Controls)
    W.writeF32(V);
  W.writeU32(Request.DeadlineMillis);
  W.writeU8(Request.JoinNormalize ? 1 : 0);
  W.writeU8(Request.Reassociate ? 1 : 0);
  W.writeU8(Request.Speculation ? 1 : 0);
  W.writeU8(Request.CacheByteLimit.has_value() ? 1 : 0);
  W.writeU32(Request.CacheByteLimit.value_or(0));
  W.writeU32(Request.VariantPins);
  W.writeU8(Request.StreamTiles ? 1 : 0);
}

bool dspec::decodeRenderRequest(ByteReader &R, RenderRequest &Out,
                                std::string *Error) {
  Out.Shader = R.readString();
  Out.Width = R.readU32();
  Out.Height = R.readU32();
  uint32_t NumVarying = R.readU32();
  if (NumVarying > 4096)
    R.fail("varying-parameter count out of range");
  Out.Varying.clear();
  for (uint32_t I = 0; R.ok() && I < NumVarying; ++I)
    Out.Varying.push_back(R.readString());
  uint32_t NumControls = R.readU32();
  if (NumControls > 4096)
    R.fail("control count out of range");
  Out.Controls.clear();
  for (uint32_t I = 0; R.ok() && I < NumControls; ++I)
    Out.Controls.push_back(R.readF32());
  Out.DeadlineMillis = R.readU32();
  Out.JoinNormalize = R.readU8() != 0;
  Out.Reassociate = R.readU8() != 0;
  Out.Speculation = R.readU8() != 0;
  bool HasLimit = R.readU8() != 0;
  uint32_t Limit = R.readU32();
  Out.CacheByteLimit =
      HasLimit ? std::optional<uint32_t>(Limit) : std::nullopt;
  // Trailing fields, absent in older payloads: default (0 pins, no
  // streaming) instead of failing so old encoders keep working.
  Out.VariantPins = R.ok() && R.remaining() >= 4 ? R.readU32() : 0;
  Out.StreamTiles = R.ok() && R.remaining() >= 1 && R.readU8() != 0;
  if (!R.ok() && Error)
    *Error = "render request: " + R.error();
  return R.ok();
}

void dspec::encodeRenderReply(ByteWriter &W, const RenderReply &Reply) {
  W.writeU8(static_cast<uint8_t>(Reply.Status));
  W.writeString(Reply.Error);
  W.writeU32(Reply.Width);
  W.writeU32(Reply.Height);
  W.writeU8(Reply.CacheHit ? 1 : 0);
  W.writeU64(Reply.ServiceMicros);
  W.writeU32(static_cast<uint32_t>(Reply.Pixels.size()));
  for (float V : Reply.Pixels)
    W.writeF32(V);
}

bool dspec::decodeRenderReply(ByteReader &R, RenderReply &Out,
                              std::string *Error) {
  uint8_t Status = R.readU8();
  if (Status > static_cast<uint8_t>(RenderStatus::ShedQuota))
    R.fail("unknown render status " + std::to_string(Status));
  Out.Status = static_cast<RenderStatus>(Status);
  Out.Error = R.readString();
  Out.Width = R.readU32();
  Out.Height = R.readU32();
  Out.CacheHit = R.readU8() != 0;
  Out.ServiceMicros = R.readU64();
  uint32_t NumFloats = R.readU32();
  if (NumFloats != static_cast<uint64_t>(Out.Width) * Out.Height * 3 &&
      !(NumFloats == 0 && Out.Status != RenderStatus::Ok))
    R.fail("pixel payload does not match the image dimensions");
  if (NumFloats * sizeof(float) > R.remaining())
    R.fail("pixel payload truncated");
  Out.Pixels.clear();
  if (R.ok()) {
    Out.Pixels.reserve(NumFloats);
    for (uint32_t I = 0; R.ok() && I < NumFloats; ++I)
      Out.Pixels.push_back(R.readF32());
  }
  if (!R.ok() && Error)
    *Error = "render reply: " + R.error();
  return R.ok();
}

uint32_t dspec::pixelCrc(const std::vector<float> &Pixels) {
  return crc32(reinterpret_cast<const unsigned char *>(Pixels.data()),
               Pixels.size() * sizeof(float));
}

void dspec::encodeRenderPartial(ByteWriter &W,
                                const RenderPartialChunk &Chunk) {
  W.writeU32(Chunk.Width);
  W.writeU32(Chunk.Height);
  W.writeU32(Chunk.PixelOffset);
  W.writeU32(Chunk.PixelCount);
  for (float V : Chunk.Pixels)
    W.writeF32(V);
}

bool dspec::decodeRenderPartial(ByteReader &R, RenderPartialChunk &Out,
                                std::string *Error) {
  Out.Width = R.readU32();
  Out.Height = R.readU32();
  Out.PixelOffset = R.readU32();
  Out.PixelCount = R.readU32();
  uint64_t Total = static_cast<uint64_t>(Out.Width) * Out.Height;
  if (Out.PixelCount == 0 ||
      static_cast<uint64_t>(Out.PixelOffset) + Out.PixelCount > Total)
    R.fail("partial chunk range outside the image");
  uint64_t NumFloats = static_cast<uint64_t>(Out.PixelCount) * 3;
  if (NumFloats * sizeof(float) > R.remaining())
    R.fail("partial chunk payload truncated");
  Out.Pixels.clear();
  if (R.ok()) {
    Out.Pixels.reserve(NumFloats);
    for (uint64_t I = 0; R.ok() && I < NumFloats; ++I)
      Out.Pixels.push_back(R.readF32());
  }
  if (!R.ok() && Error)
    *Error = "render partial: " + R.error();
  return R.ok();
}

void dspec::encodeRenderDone(ByteWriter &W, const RenderStreamDone &Done) {
  W.writeU8(static_cast<uint8_t>(Done.Status));
  W.writeString(Done.Error);
  W.writeU32(Done.Width);
  W.writeU32(Done.Height);
  W.writeU8(Done.CacheHit ? 1 : 0);
  W.writeU64(Done.ServiceMicros);
  W.writeU32(Done.NumPartials);
  W.writeU32(Done.PixelCrc);
}

bool dspec::decodeRenderDone(ByteReader &R, RenderStreamDone &Out,
                             std::string *Error) {
  uint8_t Status = R.readU8();
  if (Status > static_cast<uint8_t>(RenderStatus::ShedQuota))
    R.fail("unknown render status " + std::to_string(Status));
  Out.Status = static_cast<RenderStatus>(Status);
  Out.Error = R.readString();
  Out.Width = R.readU32();
  Out.Height = R.readU32();
  Out.CacheHit = R.readU8() != 0;
  Out.ServiceMicros = R.readU64();
  Out.NumPartials = R.readU32();
  Out.PixelCrc = R.readU32();
  if (!R.ok() && Error)
    *Error = "render done: " + R.error();
  return R.ok();
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

std::vector<unsigned char>
dspec::encodeFrame(FrameType Type, const std::vector<unsigned char> &Payload) {
  ByteWriter W;
  W.writeU32(kFrameMagic);
  W.writeU8(static_cast<uint8_t>(Type));
  W.writeU8(0);
  W.writeU8(0);
  W.writeU8(0);
  W.writeU32(static_cast<uint32_t>(Payload.size()));
  W.writeU32(crc32(Payload.data(), Payload.size()));
  W.writeBytes(Payload.data(), Payload.size());
  return W.takeBytes();
}

bool dspec::writeFrame(Transport &T, FrameType Type,
                       const std::vector<unsigned char> &Payload) {
  std::vector<unsigned char> Frame = encodeFrame(Type, Payload);
  return T.writeAll(Frame.data(), Frame.size());
}

bool dspec::readFrame(Transport &T, FrameType &Type,
                      std::vector<unsigned char> &Payload,
                      std::string *Error) {
  if (Error)
    Error->clear(); // empty Error on return false means clean EOF
  unsigned char Header[16];
  if (!T.readAll(Header, sizeof(Header)))
    return false;
  ByteReader R(Header, sizeof(Header));
  uint32_t Magic = R.readU32();
  uint8_t RawType = R.readU8();
  R.readU8();
  R.readU8();
  R.readU8();
  uint32_t PayloadBytes = R.readU32();
  uint32_t StoredCrc = R.readU32();
  if (Magic != kFrameMagic) {
    if (Error)
      *Error = "bad frame magic";
    return false;
  }
  if (RawType < static_cast<uint8_t>(FrameType::RenderRequest) ||
      RawType > static_cast<uint8_t>(FrameType::RenderDone)) {
    if (Error)
      *Error = "unknown frame type " + std::to_string(RawType);
    return false;
  }
  if (PayloadBytes > kMaxFramePayload) {
    if (Error)
      *Error = "frame payload of " + std::to_string(PayloadBytes) +
               " bytes exceeds the " + std::to_string(kMaxFramePayload) +
               "-byte limit";
    return false;
  }
  Payload.resize(PayloadBytes);
  if (PayloadBytes > 0 && !T.readAll(Payload.data(), PayloadBytes)) {
    if (Error)
      *Error = "frame payload truncated";
    return false;
  }
  if (crc32(Payload.data(), Payload.size()) != StoredCrc) {
    if (Error)
      *Error = "frame payload CRC mismatch";
    return false;
  }
  Type = static_cast<FrameType>(RawType);
  return true;
}

std::optional<RenderReply> dspec::requestRender(Transport &T,
                                                const RenderRequest &Request,
                                                std::string *Error) {
  ByteWriter W;
  encodeRenderRequest(W, Request);
  if (!writeFrame(T, FrameType::RenderRequest, W.bytes())) {
    if (Error)
      *Error = "cannot send request (connection closed?)";
    return std::nullopt;
  }
  // The reply is either one RenderReply frame, or — when the server
  // honors StreamTiles — RenderPartial frames closed by a RenderDone
  // trailer. Reassemble the latter into the same RenderReply shape.
  std::vector<float> Assembled;
  uint32_t Partials = 0;
  for (;;) {
    FrameType Type;
    std::vector<unsigned char> Payload;
    std::string FrameError;
    if (!readFrame(T, Type, Payload, &FrameError)) {
      if (Error)
        *Error = FrameError.empty() ? "connection closed before the reply"
                                    : FrameError;
      return std::nullopt;
    }
    ByteReader R(Payload);
    if (Type == FrameType::RenderReply) {
      if (Partials != 0) {
        if (Error)
          *Error = "plain reply arrived inside a streamed reply";
        return std::nullopt;
      }
      RenderReply Reply;
      if (!decodeRenderReply(R, Reply, Error))
        return std::nullopt;
      return Reply;
    }
    if (Type == FrameType::RenderPartial) {
      RenderPartialChunk Chunk;
      if (!decodeRenderPartial(R, Chunk, Error))
        return std::nullopt;
      size_t Needed = static_cast<size_t>(Chunk.Width) * Chunk.Height * 3;
      if (Assembled.size() < Needed)
        Assembled.resize(Needed, 0.0f);
      std::copy(Chunk.Pixels.begin(), Chunk.Pixels.end(),
                Assembled.begin() + static_cast<size_t>(Chunk.PixelOffset) * 3);
      ++Partials;
      continue;
    }
    if (Type == FrameType::RenderDone) {
      RenderStreamDone Done;
      if (!decodeRenderDone(R, Done, Error))
        return std::nullopt;
      if (Done.NumPartials != Partials) {
        if (Error)
          *Error = "streamed reply lost chunks (" + std::to_string(Partials) +
                   " of " + std::to_string(Done.NumPartials) + " arrived)";
        return std::nullopt;
      }
      RenderReply Reply;
      Reply.Status = Done.Status;
      Reply.Error = Done.Error;
      Reply.Width = Done.Width;
      Reply.Height = Done.Height;
      Reply.CacheHit = Done.CacheHit;
      Reply.ServiceMicros = Done.ServiceMicros;
      if (Reply.ok()) {
        size_t Needed = static_cast<size_t>(Done.Width) * Done.Height * 3;
        if (Assembled.size() != Needed) {
          if (Error)
            *Error = "streamed reply pixel count does not match the image";
          return std::nullopt;
        }
        if (pixelCrc(Assembled) != Done.PixelCrc) {
          if (Error)
            *Error = "streamed reply pixel CRC mismatch";
          return std::nullopt;
        }
        Reply.Pixels = std::move(Assembled);
      }
      return Reply;
    }
    if (Error)
      *Error = "unexpected frame type in reply";
    return std::nullopt;
  }
}

std::optional<std::string> dspec::requestStats(Transport &T,
                                               std::string *Error) {
  if (!writeFrame(T, FrameType::StatsRequest, {})) {
    if (Error)
      *Error = "cannot send stats request";
    return std::nullopt;
  }
  FrameType Type;
  std::vector<unsigned char> Payload;
  std::string FrameError;
  if (!readFrame(T, Type, Payload, &FrameError)) {
    if (Error)
      *Error = FrameError.empty() ? "connection closed before the reply"
                                  : FrameError;
    return std::nullopt;
  }
  if (Type != FrameType::StatsReply) {
    if (Error)
      *Error = "unexpected frame type in stats reply";
    return std::nullopt;
  }
  return std::string(Payload.begin(), Payload.end());
}
