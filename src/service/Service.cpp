//===- service/Service.cpp - The specialization render service --------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "driver/Pipeline.h"
#include "jit/Jit.h"
#include "service/Transport.h"
#include "shading/ShaderGallery.h"
#include "shading/ShaderLab.h"
#include "support/ByteStream.h"

#include <algorithm>
#include <cstring>

using namespace dspec;

SpecializationService::SpecializationService(const ServiceConfig &InConfig)
    : Config(InConfig),
      Cache(Config.CacheUnits, Config.CacheShards == 0 ? 1 : Config.CacheShards) {
  if (Config.Dispatchers == 0)
    Config.Dispatchers = 1;
  if (Config.MaxBatch == 0)
    Config.MaxBatch = 1;
  if (Config.QueueCapacity == 0)
    Config.QueueCapacity = 1;
  if (!Config.SpillDir.empty()) {
    auto Store = std::make_unique<SpillStore>();
    std::string SpillError;
    if (Store->open(Config.SpillDir, Config.SpillMaxBytes, &SpillError)) {
      Spill = std::move(Store);
      // Evicted-but-warm units go to disk instead of being forgotten;
      // the sink runs outside the cache's shard lock.
      Cache.setEvictionSink([this](const UnitKey &Key, const UnitPtr &Unit) {
        Spill->store(Key, Unit);
      });
    }
    // An unopenable spill dir degrades to no spilling, not to a dead
    // service — same posture as any other best-effort cache tier.
  }
  Engines.reserve(Config.Dispatchers);
  for (unsigned I = 0; I < Config.Dispatchers; ++I) {
    Engines.push_back(std::make_unique<RenderEngine>(Config.RenderThreads,
                                                     Config.TilePixels));
    Engines.back()->setExecTier(Config.Tier);
    Engines.back()->setArenaLayout(Config.ArenaLayout);
  }
  DispatcherThreads.reserve(Config.Dispatchers);
  for (unsigned I = 0; I < Config.Dispatchers; ++I)
    DispatcherThreads.emplace_back([this, I] { dispatcherLoop(I); });
}

SpecializationService::~SpecializationService() { drain(); }

void SpecializationService::drain() {
  std::lock_guard<std::mutex> DrainLock(DrainMutex);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Draining = true;
  }
  QueueReady.notify_all();
  for (std::thread &T : DispatcherThreads)
    if (T.joinable())
      T.join();
  DispatcherThreads.clear();
}

bool SpecializationService::canonicalize(RenderRequest &Request, UnitKey &Key,
                                         std::string &Error) const {
  const ShaderInfo *Info = findShader(Request.Shader);
  if (!Info) {
    Error = "no gallery shader named '" + Request.Shader + "'";
    return false;
  }
  if (Request.Width == 0 || Request.Height == 0) {
    Error = "image dimensions must be positive";
    return false;
  }
  if (static_cast<uint64_t>(Request.Width) * Request.Height >
      Config.MaxPixels) {
    Error = "image of " + std::to_string(Request.Width) + "x" +
            std::to_string(Request.Height) + " exceeds the " +
            std::to_string(Config.MaxPixels) + "-pixel limit";
    return false;
  }

  if (Request.Controls.empty())
    Request.Controls = ShaderLab::defaultControls(*Info);
  if (Request.Controls.size() != Info->Controls.size()) {
    Error = "'" + Request.Shader + "' takes " +
            std::to_string(Info->Controls.size()) + " control(s), got " +
            std::to_string(Request.Controls.size());
    return false;
  }

  if (Request.Varying.empty())
    Request.Varying.push_back(Info->Controls.front().Name);
  // Canonical order so {a,b} and {b,a} share one cache entry.
  std::sort(Request.Varying.begin(), Request.Varying.end());
  Request.Varying.erase(
      std::unique(Request.Varying.begin(), Request.Varying.end()),
      Request.Varying.end());
  std::vector<bool> IsVarying(Info->Controls.size(), false);
  for (const std::string &Name : Request.Varying) {
    size_t Index = 0;
    while (Index < Info->Controls.size() &&
           Info->Controls[Index].Name != Name)
      ++Index;
    if (Index == Info->Controls.size()) {
      Error = "'" + Request.Shader + "' has no control named '" + Name + "'";
      return false;
    }
    IsVarying[Index] = true;
  }

  // The key covers everything invariant across a parameter drag: the
  // grid, the partition (which controls vary), and the *fixed* controls'
  // values. The varying controls' values are excluded on purpose — that
  // is the reuse the cache exists to capture.
  ByteWriter W;
  W.writeU32(Request.Width);
  W.writeU32(Request.Height);
  W.writeU32(static_cast<uint32_t>(Request.Varying.size()));
  for (const std::string &Name : Request.Varying)
    W.writeString(Name);
  for (size_t I = 0; I < Request.Controls.size(); ++I)
    if (!IsVarying[I]) {
      W.writeU32(static_cast<uint32_t>(I));
      W.writeF32(Request.Controls[I]);
    }
  Key.Shader = Request.Shader;
  Key.InvariantHash = fnv1a64(W.bytes().data(), W.size());
  Key.OptionsFingerprint = optionsFingerprint(effectiveOptions(Request));

  // Polyvariant canonicalization: map the request onto the most specific
  // admissible abstract-property variant the client allows. A control
  // whose value is bit-exactly 0.0 or 1.0 (memcmp, so -0.0 stays generic)
  // pins that property; varying controls pin first because pinning one
  // turns its whole dependence cone invariant, which is where the reader
  // savings live. Fixed controls are already invariant, but a pin still
  // settles their branches and folds their literals out of the reader.
  Key.Variant = VariantKey();
  unsigned MaxPins = std::min<unsigned>(Request.VariantPins,
                                        Config.MaxVariantPins);
  if (MaxPins > 0) {
    auto TryPin = [&](size_t I) {
      if (Key.Variant.Pins.size() >= MaxPins)
        return;
      constexpr float Zero = 0.0f, One = 1.0f;
      ParamProp Prop;
      if (std::memcmp(&Request.Controls[I], &Zero, sizeof(float)) == 0)
        Prop = ParamProp::PP_Zero;
      else if (std::memcmp(&Request.Controls[I], &One, sizeof(float)) == 0)
        Prop = ParamProp::PP_One;
      else
        return;
      Key.Variant.Pins.push_back(
          {ShaderInfo::NumPixelParams + static_cast<uint32_t>(I), Prop});
    };
    for (size_t I = 0; I < Request.Controls.size(); ++I)
      if (IsVarying[I])
        TryPin(I);
    for (size_t I = 0; I < Request.Controls.size(); ++I)
      if (!IsVarying[I])
        TryPin(I);
    Key.Variant.canonicalize();
  }
  return true;
}

void SpecializationService::submitAsync(RenderRequest Request,
                                        RenderCallback Done) {
  auto P = std::make_unique<Pending>();
  P->Enqueued = Clock::now();
  P->Request = std::move(Request);
  P->Done = std::move(Done);

  std::string Error;
  if (!canonicalize(P->Request, P->Key, Error)) {
    Metrics.recordBadRequest();
    reject(*P, RenderStatus::BadRequest, std::move(Error));
    return;
  }
  if (P->Request.DeadlineMillis > 0) {
    P->HasDeadline = true;
    P->Deadline =
        P->Enqueued + std::chrono::milliseconds(P->Request.DeadlineMillis);
  }

  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Draining) {
      Metrics.recordRejectedDraining();
      reject(*P, RenderStatus::Draining,
             "service is draining for shutdown");
      return;
    }
    if (Queue.size() >= Config.QueueCapacity) {
      // Load shedding: reject-with-reason instead of unbounded growth.
      Metrics.recordShedQueueFull();
      reject(*P, RenderStatus::ShedQueueFull,
             "queue full (" + std::to_string(Config.QueueCapacity) +
                 " requests)");
      return;
    }
    Queue.push_back(std::move(P));
  }
  QueueReady.notify_one();
}

std::future<RenderReply> SpecializationService::submit(RenderRequest Request) {
  auto Promise = std::make_shared<std::promise<RenderReply>>();
  std::future<RenderReply> Result = Promise->get_future();
  submitAsync(std::move(Request), [Promise](RenderReply Reply) {
    Promise->set_value(std::move(Reply));
  });
  return Result;
}

RenderReply SpecializationService::render(RenderRequest Request) {
  return submit(std::move(Request)).get();
}

void SpecializationService::reject(Pending &P, RenderStatus Status,
                                   std::string Reason) {
  RenderReply Reply;
  Reply.Status = Status;
  Reply.Error = std::move(Reason);
  Reply.ServiceMicros =
      static_cast<uint64_t>(secondsSince(P.Enqueued) * 1e6);
  P.Done(std::move(Reply));
}

SpecializerOptions
SpecializationService::effectiveOptions(const RenderRequest &Request) const {
  SpecializerOptions Options = Request.toOptions();
  if (Config.LlcBytes != 0) {
    Options.LlcByteBound = Config.LlcBytes;
    Options.ArenaPixels = Request.Width * Request.Height;
  }
  return Options;
}

UnitPtr SpecializationService::buildUnit(const RenderRequest &Request,
                                         const VariantKey &Variant,
                                         RenderEngine &Engine,
                                         std::string &Error) const {
  Clock::time_point Start = Clock::now();
  const ShaderInfo *Info = findShader(Request.Shader);
  if (!Info) {
    Error = "shader vanished from the gallery";
    return nullptr;
  }
  auto Unit = parseUnit(Info->Source);
  if (!Unit->ok()) {
    Error = Unit->Diags.str();
    return nullptr;
  }
  // Build exactly the variant the request canonicalized onto (the
  // generic build still goes through the variant path so the keys and
  // labels stay uniform; MaxVariants=1 keeps it to one specialization).
  VariantSetOptions VOptions;
  if (Variant.isGeneric()) {
    VOptions.MaxVariants = 1;
  } else {
    VOptions.ExplicitKeys = {Variant};
    VOptions.MaxVariants = 2;
  }
  auto Set = specializeAndCompileVariants(*Unit, Request.Shader,
                                          Request.Varying,
                                          effectiveOptions(Request), VOptions);
  if (!Set) {
    Error = Unit->Diags.str();
    return nullptr;
  }
  CompiledVariant *Spec = nullptr;
  for (CompiledVariant &V : Set->Variants)
    if (V.Key == Variant)
      Spec = &V;
  if (!Spec) {
    Error = "variant could not be built for '" + Request.Shader + "'";
    return nullptr;
  }
  auto Built =
      std::make_shared<SpecializationUnit>(Request.Width, Request.Height);
  Built->Shader = Request.Shader;
  Built->Options = effectiveOptions(Request);
  Built->Varying = Request.Varying;
  Built->LoadControls = Request.Controls;
  Built->Variant = Spec->Key;
  Built->VariantLabel = Spec->Label;
  Built->Layout = Spec->Compiled.Spec.Layout;
  Built->Loader = std::move(Spec->Compiled.LoaderChunk);
  Built->Reader = std::move(Spec->Compiled.ReaderChunk);
  // The arena's cached slots hold invariant values only, so the varying
  // controls' build-time values are irrelevant to every later hit.
  if (!Engine.loaderPass(Built->Loader, Built->Layout, Built->Grid,
                         Built->LoadControls, Built->Arena)) {
    Error = "loader pass trapped: " + Engine.lastTrap();
    return nullptr;
  }
  Built->BuildSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  return Built;
}

UnitPtr SpecializationService::loadOrBuildUnit(const Pending &P,
                                               RenderEngine &Engine,
                                               bool &FromDisk,
                                               std::string &Error) const {
  FromDisk = false;
  if (Spill) {
    if (auto Unit = Spill->load(P.Key, nullptr)) {
      // A spilled unit carries everything but its human-readable variant
      // label (the store has no parameter-name table).
      if (!P.Key.Variant.isGeneric()) {
        const ShaderInfo *Info = findShader(P.Key.Shader);
        std::vector<std::string> Names;
        if (Info)
          for (const auto &Control : Info->Controls)
            Names.push_back(Control.Name);
        Unit->VariantLabel =
            P.Key.Variant.label(Names, ShaderInfo::NumPixelParams);
      }
      FromDisk = true;
      return Unit;
    }
  }
  return buildUnit(P.Request, P.Key.Variant, Engine, Error);
}

void SpecializationService::finish(Pending &P, const UnitPtr &Unit,
                                   bool CacheHit, RenderEngine &Engine) {
  Framebuffer Fb(P.Request.Width, P.Request.Height);
  if (!Engine.readerPass(Unit->Reader, Unit->Grid, P.Request.Controls,
                         Unit->Arena, &Fb)) {
    Metrics.recordRenderTrap(secondsSince(P.Enqueued));
    reject(P, RenderStatus::RenderTrap,
           "reader pass trapped: " + Engine.lastTrap());
    return;
  }
  RenderReply Reply = RenderReply::fromFramebuffer(Fb);
  Reply.CacheHit = CacheHit;
  double Latency = secondsSince(P.Enqueued);
  Reply.ServiceMicros = static_cast<uint64_t>(Latency * 1e6);
  Metrics.recordOk(Latency, CacheHit);
  Metrics.recordVariant(Unit->VariantLabel, CacheHit);
  Metrics.recordExecTier(execTierName(Engine.execTier()));
  P.Done(std::move(Reply));
}

void SpecializationService::dispatcherLoop(unsigned DispatcherIndex) {
  RenderEngine &Engine = *Engines[DispatcherIndex];
  while (true) {
    std::vector<std::unique_ptr<Pending>> Batch;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueReady.wait(Lock, [&] { return !Queue.empty() || Draining; });
      if (Queue.empty())
        return; // draining and nothing left
      Batch.push_back(std::move(Queue.front()));
      Queue.pop_front();
      // Batch queued same-key requests behind one unit resolution; they
      // will all be reader frames against the same arena.
      for (auto It = Queue.begin();
           It != Queue.end() && Batch.size() < Config.MaxBatch;) {
        if ((*It)->Key == Batch.front()->Key) {
          Batch.push_back(std::move(*It));
          It = Queue.erase(It);
        } else {
          ++It;
        }
      }
    }

    // Shed batch members whose queue deadline already passed — spending
    // render time on an answer nobody is waiting for starves the rest of
    // the queue.
    Clock::time_point Now = Clock::now();
    std::vector<std::unique_ptr<Pending>> Live;
    for (std::unique_ptr<Pending> &P : Batch) {
      if (P->HasDeadline && Now > P->Deadline) {
        Metrics.recordShedDeadline();
        reject(*P, RenderStatus::ShedDeadline,
               "deadline of " + std::to_string(P->Request.DeadlineMillis) +
                   "ms exceeded while queued");
      } else {
        Live.push_back(std::move(P));
      }
    }
    if (Live.empty())
      continue;

    bool WasHit = false;
    bool FromDisk = false;
    std::string Error;
    UnitPtr Unit = Cache.getOrBuild(
        Live.front()->Key,
        [&](std::string &BuildError) {
          // Disk first: a warm spilled unit is a restore, not a rebuild.
          return loadOrBuildUnit(*Live.front(), Engine, FromDisk,
                                 BuildError);
        },
        &WasHit, &Error);
    if (!Unit) {
      for (std::unique_ptr<Pending> &P : Live) {
        Metrics.recordSpecializeError(secondsSince(P->Enqueued));
        reject(*P, RenderStatus::SpecializeError, Error);
      }
      continue;
    }
    for (size_t I = 0; I < Live.size(); ++I)
      // Followers batched behind the leader never pay a build themselves;
      // a disk restore counts as a hit too — no specializer ran.
      finish(*Live[I], Unit, WasHit || FromDisk || I > 0, Engine);
  }
}

MetricsSnapshot SpecializationService::statsz() const {
  MetricsSnapshot Out = Metrics.snapshot();
  Out.Cache = Cache.stats();
  Out.CacheCapacity = Cache.capacity();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Out.QueueDepth = Queue.size();
  }
  if (Spill) {
    SpillStore::Stats S = Spill->stats();
    Out.SpillEnabled = true;
    Out.SpillDiskHits = S.DiskHits;
    Out.SpillWrites = S.Writes;
    Out.SpillErrors = S.Errors;
    Out.SpillEvictedFiles = S.EvictedFiles;
    Out.SpillFiles = S.Files;
    Out.SpillBytes = S.Bytes;
  }
  jit::JitStatsSnapshot J = jit::stats();
  Out.JitCompiles = J.Compiles;
  Out.JitCodeBytes = J.CodeBytes;
  Out.ArenaLayout = arenaLayoutName(Config.ArenaLayout.Layout);
  Out.ArenaLlcBytes = Config.LlcBytes;
  Cache.forEachUnit([&Out](const UnitPtr &Unit) {
    ++Out.ArenaUnits;
    Out.ArenaPhysicalBytes += Unit->Arena.physicalBytes();
    uint64_t Hot = static_cast<uint64_t>(Unit->Arena.hotStrideBytes()) *
                   Unit->Arena.pixelCount();
    Out.ArenaHotFrameBytes += Hot;
    if (Hot > Out.ArenaMaxHotFrameBytes)
      Out.ArenaMaxHotFrameBytes = Hot;
  });
  Out.ArenaFitsLlc =
      Config.LlcBytes == 0 || Out.ArenaMaxHotFrameBytes <= Config.LlcBytes;
  if (NetStatsProvider)
    Out.NetJson = NetStatsProvider();
  return Out;
}

//===----------------------------------------------------------------------===//
// Connection serving
//===----------------------------------------------------------------------===//

void dspec::serveConnection(Transport &Connection,
                            SpecializationService &Service) {
  // Shutting the transport down on every exit path guarantees the peer
  // sees EOF instead of blocking on a read the server will never answer
  // (e.g. after it drops the connection over a corrupt frame).
  struct ShutdownOnExit {
    Transport &T;
    ~ShutdownOnExit() { T.shutdown(); }
  } Closer{Connection};

  while (true) {
    FrameType Type;
    std::vector<unsigned char> Payload;
    std::string Error;
    if (!readFrame(Connection, Type, Payload, &Error))
      return; // EOF, shutdown, or a corrupt frame — drop the connection

    switch (Type) {
    case FrameType::RenderRequest: {
      RenderRequest Request;
      ByteReader R(Payload);
      RenderReply Reply;
      if (!decodeRenderRequest(R, Request, &Error)) {
        Reply.Status = RenderStatus::BadRequest;
        Reply.Error = Error;
      } else {
        Reply = Service.render(std::move(Request));
      }
      ByteWriter W;
      encodeRenderReply(W, Reply);
      if (!writeFrame(Connection, FrameType::RenderReply, W.bytes()))
        return;
      break;
    }
    case FrameType::StatsRequest: {
      std::string Json = Service.statsz().toJson();
      std::vector<unsigned char> Bytes(Json.begin(), Json.end());
      if (!writeFrame(Connection, FrameType::StatsReply, Bytes))
        return;
      break;
    }
    default:
      // A reply frame from a client is a protocol violation.
      return;
    }
  }
}
