//===- service/SpillStore.cpp - On-disk spill of evicted units --------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SpillStore.h"

#include "snapshot/Snapshot.h"
#include "support/ByteStream.h"
#include "support/StringUtil.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace dspec;

namespace {

constexpr const char *kSpillSuffix = ".dsnp";

int64_t nowSeconds() {
  return static_cast<int64_t>(::time(nullptr));
}

bool endsWith(const std::string &Name, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return Name.size() >= N &&
         Name.compare(Name.size() - N, N, Suffix) == 0;
}

} // namespace

uint64_t SpillStore::keyHash(const UnitKey &Key) const {
  // Hash the full key — shader, invariant partition, options, and the
  // variant pins — so each variant spills to its own file. Stable across
  // processes (that is the whole point: restarts must find these files).
  uint64_t H = fnv1a64(Key.Shader.data(), Key.Shader.size());
  H = fnv1a64(&Key.InvariantHash, sizeof(Key.InvariantHash), H);
  H = fnv1a64(&Key.OptionsFingerprint, sizeof(Key.OptionsFingerprint), H);
  for (const VariantPin &Pin : Key.Variant.Pins) {
    uint32_t Param = Pin.ParamIndex;
    uint32_t Prop = static_cast<uint32_t>(Pin.Prop);
    H = fnv1a64(&Param, sizeof(Param), H);
    H = fnv1a64(&Prop, sizeof(Prop), H);
  }
  return H;
}

std::string SpillStore::pathFor(const UnitKey &Key) const {
  return Root + "/" +
         formatString("%016llx",
                      static_cast<unsigned long long>(keyHash(Key))) +
         kSpillSuffix;
}

bool SpillStore::open(const std::string &Dir, uint64_t InMaxBytes,
                      std::string *Error) {
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (Error)
      *Error = "cannot create spill directory '" + Dir +
               "': " + std::strerror(errno);
    return false;
  }
  DIR *D = ::opendir(Dir.c_str());
  if (!D) {
    if (Error)
      *Error = "cannot open spill directory '" + Dir +
               "': " + std::strerror(errno);
    return false;
  }
  std::lock_guard<std::mutex> Lock(M);
  Root = Dir;
  MaxBytes = InMaxBytes;
  Index.clear();
  TotalBytes = 0;
  while (dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (!endsWith(Name, kSpillSuffix))
      continue;
    struct stat St;
    if (::stat((Dir + "/" + Name).c_str(), &St) != 0 ||
        !S_ISREG(St.st_mode))
      continue;
    Index[Name] = {static_cast<uint64_t>(St.st_size),
                   static_cast<int64_t>(St.st_mtime)};
    TotalBytes += static_cast<uint64_t>(St.st_size);
  }
  ::closedir(D);
  enforceCapLocked();
  return true;
}

void SpillStore::enforceCapLocked(const std::string *ExcludeName) {
  while (MaxBytes > 0 && TotalBytes > MaxBytes && Index.size() > 1) {
    // Evict the least recently used file (never the only one — a single
    // over-cap unit is more useful on disk than an empty directory).
    // mtime ticks in whole seconds, so a burst of spills ties on LastUse;
    // the tie breaks by file name — the hex key hash — so every process
    // evicts the same file and restart inventories stay reproducible.
    // The just-stored file is exempt outright: a store must never evict
    // its own unit, however its hash happens to sort.
    auto Victim = Index.end();
    for (auto It = Index.begin(); It != Index.end(); ++It) {
      if (ExcludeName && It->first == *ExcludeName)
        continue;
      if (Victim == Index.end() ||
          It->second.LastUse < Victim->second.LastUse ||
          (It->second.LastUse == Victim->second.LastUse &&
           It->first < Victim->first))
        Victim = It;
    }
    if (Victim == Index.end())
      return; // only the excluded file remains over-cap
    ::unlink((Root + "/" + Victim->first).c_str());
    TotalBytes -= Victim->second.Bytes;
    Index.erase(Victim);
    ++Counters.EvictedFiles;
  }
}

void SpillStore::store(const UnitKey &Key, const UnitPtr &Unit) {
  if (!enabled() || !Unit)
    return;

  SpecializationSnapshot Snap;
  Snap.Meta = SnapshotMeta::fromOptions(Unit->Options);
  Snap.Meta.FragmentName = Unit->Shader;
  Snap.Meta.VaryingParams = Unit->Varying;
  Snap.Meta.GridWidth = Unit->Grid.width();
  Snap.Meta.GridHeight = Unit->Grid.height();
  Snap.Meta.Controls = Unit->LoadControls;
  Snap.Loader = Unit->Loader;
  Snap.Reader = Unit->Reader;
  Snap.Layout = Unit->Layout;
  Snap.ArenaPixels = Unit->Arena.pixelCount();
  Snap.ArenaStride = Unit->Arena.strideBytes();
  Snap.ArenaBytes = Unit->Arena.canonicalBytes();

  std::string Path = pathFor(Key);
  std::string TmpPath =
      Path + formatString(".tmp.%ld", static_cast<long>(::getpid()));
  std::string WriteError;
  if (!writeSnapshotFile(TmpPath, Snap, &WriteError)) {
    ::unlink(TmpPath.c_str());
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Errors;
    return;
  }
  struct stat St;
  uint64_t Bytes =
      ::stat(TmpPath.c_str(), &St) == 0 ? static_cast<uint64_t>(St.st_size)
                                        : 0;
  if (::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Errors;
    return;
  }

  std::lock_guard<std::mutex> Lock(M);
  std::string Name = Path.substr(Root.size() + 1);
  auto It = Index.find(Name);
  if (It != Index.end())
    TotalBytes -= It->second.Bytes;
  Index[Name] = {Bytes, nowSeconds()};
  TotalBytes += Bytes;
  ++Counters.Writes;
  enforceCapLocked(&Name);
}

std::shared_ptr<SpecializationUnit> SpillStore::load(const UnitKey &Key,
                                                     std::string *Error) {
  if (!enabled())
    return nullptr;
  std::string Path = pathFor(Key);
  std::string Name = Path.substr(Root.size() + 1);
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Index.find(Name) == Index.end()) {
      ++Counters.DiskMisses;
      return nullptr;
    }
  }

  SpecializationSnapshot Snap;
  std::string ReadError;
  if (!readSnapshotFile(Path, Snap, &ReadError)) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Errors;
    ++Counters.DiskMisses;
    if (Error)
      *Error = "spilled unit unreadable: " + ReadError;
    return nullptr;
  }
  // The file name is a hash; verify the contents actually describe this
  // key's unit before serving it.
  if (Snap.Meta.FragmentName != Key.Shader) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Errors;
    ++Counters.DiskMisses;
    if (Error)
      *Error = "spilled unit names shader '" + Snap.Meta.FragmentName +
               "', expected '" + Key.Shader + "'";
    return nullptr;
  }

  auto Unit = std::make_shared<SpecializationUnit>(Snap.Meta.GridWidth,
                                                   Snap.Meta.GridHeight);
  Unit->Shader = Snap.Meta.FragmentName;
  Unit->Varying = Snap.Meta.VaryingParams;
  Unit->LoadControls = Snap.Meta.Controls;
  Unit->Layout = Snap.Layout;
  Unit->Loader = std::move(Snap.Loader);
  Unit->Reader = std::move(Snap.Reader);
  Unit->Variant = Key.Variant;
  if (!Unit->Arena.restore(Snap.ArenaPixels, Snap.Layout,
                           std::move(Snap.ArenaBytes))) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Errors;
    ++Counters.DiskMisses;
    if (Error)
      *Error = "spilled arena shape does not match its layout";
    return nullptr;
  }
  Unit->Options.EnableJoinNormalize = Snap.Meta.JoinNormalize;
  Unit->Options.EnableReassociate = Snap.Meta.Reassociate;
  Unit->Options.AllowSpeculation = Snap.Meta.Speculation;
  Unit->Options.WeightVictimBySize = Snap.Meta.WeightVictimBySize;
  if (Snap.Meta.CacheByteLimit)
    Unit->Options.CacheByteLimit = *Snap.Meta.CacheByteLimit;

  // Bump the LRU clock so the cap evicts genuinely cold files first.
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Name);
  if (It != Index.end())
    It->second.LastUse = nowSeconds();
  ++Counters.DiskHits;
  return Unit;
}

SpillStore::Stats SpillStore::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  Stats Out = Counters;
  Out.Files = Index.size();
  Out.Bytes = TotalBytes;
  return Out;
}
