//===- service/Protocol.h - Framed binary service protocol ------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specialization service's wire protocol: length-prefixed,
/// CRC-checked frames over any Transport. Every frame is
///
///   offset  size  field
///   0       4     u32 magic "DSPF"
///   4       1     u8 frame type
///   5       3     reserved (zero)
///   8       4     u32 payload byte count
///   12      4     u32 CRC-32 of the payload
///   16      ...   payload (ByteStream-encoded, little-endian)
///
/// Frame types: RenderRequest (shader + varying set + control values +
/// image size + deadline + options), RenderReply (framebuffer or a
/// structured error with a shed/failure reason), StatsRequest, and
/// StatsReply (a JSON metrics snapshot). Like the snapshot reader, the
/// decoder treats input as untrusted: magic/type/length bounds and the
/// CRC are validated and every payload read is bounds-checked, so a
/// corrupt or malicious peer produces a diagnostic, never UB.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SERVICE_PROTOCOL_H
#define DATASPEC_SERVICE_PROTOCOL_H

#include "engine/RenderContext.h"
#include "specialize/SpecializerOptions.h"
#include "support/ByteStream.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dspec {

class Transport;

/// First four bytes of every frame ("DSPF", little-endian).
constexpr uint32_t kFrameMagic = 0x46505344u;

/// Frames larger than this are rejected before allocation (a corrupt
/// length field must not become a giant allocation).
constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : uint8_t {
  RenderRequest = 1,
  RenderReply = 2,
  StatsRequest = 3,
  StatsReply = 4,
  /// One contiguous run of pixels from a streamed reply (StreamTiles).
  RenderPartial = 5,
  /// Trailer of a streamed reply: status, metadata, and a CRC over the
  /// pixels delivered by the preceding RenderPartial frames.
  RenderDone = 6,
};

/// One render request: which gallery shader, over what grid, with which
/// controls varying at what values.
struct RenderRequest {
  std::string Shader;
  uint32_t Width = 48;
  uint32_t Height = 32;
  /// Names of the varying controls; empty = the shader's first control.
  std::vector<std::string> Varying;
  /// One value per control parameter; empty = the shader's defaults.
  std::vector<float> Controls;
  /// Queue deadline in milliseconds from submission; 0 = none. Requests
  /// still queued past their deadline are shed, not rendered late.
  uint32_t DeadlineMillis = 0;
  /// Maximum abstract-property pins the service may canonicalize this
  /// request onto (0 = generic variant only). When positive, controls
  /// whose value is exactly 0.0 or 1.0 pin the request to the most
  /// specific admissible property variant — a distinct cache entry with a
  /// leaner reader. Encoded as a trailing field; absent on the wire means
  /// 0, so pre-variant encoders stay compatible.
  uint32_t VariantPins = 0;
  /// Ask the server to stream the framebuffer as RenderPartial frames
  /// followed by a RenderDone trailer instead of one RenderReply. Only
  /// the event-loop front end honors this; requestRender() reassembles
  /// transparently. Trailing field: absent on the wire means false.
  bool StreamTiles = false;

  // Specializer options (the fields that change the generated unit, and
  // therefore the cache key).
  bool JoinNormalize = true;
  bool Reassociate = false;
  bool Speculation = false;
  std::optional<uint32_t> CacheByteLimit;

  SpecializerOptions toOptions() const {
    SpecializerOptions O;
    O.EnableJoinNormalize = JoinNormalize;
    O.EnableReassociate = Reassociate;
    O.AllowSpeculation = Speculation;
    if (CacheByteLimit)
      O.CacheByteLimit = *CacheByteLimit;
    return O;
  }
};

/// Why a request did not produce a framebuffer (Ok means it did).
enum class RenderStatus : uint8_t {
  Ok = 0,
  /// Malformed or unsatisfiable request (unknown shader, bad controls).
  BadRequest = 1,
  /// The specializer/compiler failed on a miss.
  SpecializeError = 2,
  /// A VM trap during the loader or reader pass.
  RenderTrap = 3,
  /// Shed at admission: the bounded queue was full.
  ShedQueueFull = 4,
  /// Shed at dispatch: the request sat queued past its deadline.
  ShedDeadline = 5,
  /// Rejected because the service is draining for shutdown.
  Draining = 6,
  /// Shed by the network front end: the client exceeded its request
  /// quota (token bucket) or its per-client in-queue cap.
  ShedQuota = 7,
};

const char *renderStatusName(RenderStatus Status);

/// A request's outcome: a framebuffer (Ok) or a reasoned rejection.
struct RenderReply {
  RenderStatus Status = RenderStatus::Ok;
  std::string Error;
  uint32_t Width = 0;
  uint32_t Height = 0;
  /// Row-major RGB triples, Width*Height*3 floats (bit-exact: floats
  /// travel as their IEEE-754 bit patterns).
  std::vector<float> Pixels;
  /// True when the request was served from a cached unit (no
  /// specialization ran on its behalf).
  bool CacheHit = false;
  /// Server-side latency, submission to completion, in microseconds.
  uint64_t ServiceMicros = 0;

  bool ok() const { return Status == RenderStatus::Ok; }

  /// Rebuilds the framebuffer (vec3 pixels) from the RGB triples.
  Framebuffer toFramebuffer() const;
  static RenderReply fromFramebuffer(const Framebuffer &Fb);
};

/// One contiguous pixel run of a streamed reply.
struct RenderPartialChunk {
  uint32_t Width = 0;
  uint32_t Height = 0;
  /// Offset of the first pixel in this chunk (row-major pixel index).
  uint32_t PixelOffset = 0;
  /// RGB triples for PixelCount pixels (Pixels.size() == PixelCount*3).
  uint32_t PixelCount = 0;
  std::vector<float> Pixels;
};

/// Trailer of a streamed reply (everything RenderReply carries except
/// the pixels, which arrived in RenderPartial frames).
struct RenderStreamDone {
  RenderStatus Status = RenderStatus::Ok;
  std::string Error;
  uint32_t Width = 0;
  uint32_t Height = 0;
  bool CacheHit = false;
  uint64_t ServiceMicros = 0;
  /// How many RenderPartial frames preceded this trailer.
  uint32_t NumPartials = 0;
  /// CRC-32 over the assembled pixel floats (their IEEE-754 bytes), so
  /// a dropped or reordered chunk is detected even if sizes line up.
  uint32_t PixelCrc = 0;
};

//===----------------------------------------------------------------------===//
// Payload serde
//===----------------------------------------------------------------------===//

void encodeRenderRequest(ByteWriter &W, const RenderRequest &Request);
bool decodeRenderRequest(ByteReader &R, RenderRequest &Out,
                         std::string *Error);

void encodeRenderReply(ByteWriter &W, const RenderReply &Reply);
bool decodeRenderReply(ByteReader &R, RenderReply &Out, std::string *Error);

void encodeRenderPartial(ByteWriter &W, const RenderPartialChunk &Chunk);
bool decodeRenderPartial(ByteReader &R, RenderPartialChunk &Out,
                         std::string *Error);

void encodeRenderDone(ByteWriter &W, const RenderStreamDone &Done);
bool decodeRenderDone(ByteReader &R, RenderStreamDone &Out,
                      std::string *Error);

/// CRC-32 over a pixel vector's float bytes (the streaming checksum).
uint32_t pixelCrc(const std::vector<float> &Pixels);

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

/// Wraps \p Payload in a frame header (magic, type, length, CRC).
std::vector<unsigned char> encodeFrame(FrameType Type,
                                       const std::vector<unsigned char> &Payload);

/// Sends one frame. False on transport failure.
bool writeFrame(Transport &T, FrameType Type,
                const std::vector<unsigned char> &Payload);

/// Receives one frame, validating magic, length bound, and CRC. Returns
/// false on clean EOF (\p Error left empty) or on a protocol/transport
/// error (\p Error set).
bool readFrame(Transport &T, FrameType &Type,
               std::vector<unsigned char> &Payload, std::string *Error);

/// Client convenience: send a render request, wait for the reply.
/// Nullopt with \p Error set on transport/protocol failure (a rejected
/// request is a *successful* round trip carrying a non-Ok status).
std::optional<RenderReply> requestRender(Transport &T,
                                         const RenderRequest &Request,
                                         std::string *Error);

/// Client convenience: fetch the /statsz JSON metrics snapshot.
std::optional<std::string> requestStats(Transport &T, std::string *Error);

} // namespace dspec

#endif // DATASPEC_SERVICE_PROTOCOL_H
