//===- vm/FastInterp.cpp - Threaded and batched interpreters -----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The two fast execution tiers over the decoded ExecChunk form:
//
//   runThreaded  direct-threaded dispatch (computed goto where the
//                compiler supports it, a token-threaded switch loop
//                otherwise or under DSPEC_FORCE_SWITCH_DISPATCH), a flat
//                pre-sized operand stack instead of push_back/pop_back,
//                pre-resolved constant pointers, and superinstructions.
//
//   runBatch     one instruction fetch drives a whole tile: every opcode
//                loops over the lanes against slot-major (SoA) stack and
//                locals rows and strided packed caches, so dispatch cost
//                is amortized 1/Lanes and the inner loops are plain
//                arrays the compiler can vectorize. Only for BatchSafe
//                (effect-free) chunks. Control flow runs GPU-warp style:
//                uniform branch outcomes jump in lockstep, divergent
//                maskable diamonds execute both arms under a per-lane
//                mask stack, and divergence at an unmaskable branch
//                bails out of the tile (ExecResult::Diverged) for a
//                per-pixel re-run by the caller.
//
// Both tiers call the shared semantics in vm/InterpOps.h — the same
// functions the classic switch interpreter uses — which is what makes
// framebuffers bit-identical across tiers. Trap messages replicate
// VM.cpp verbatim; keep them in sync.
//
//===----------------------------------------------------------------------===//

#include "vm/InterpOps.h"
#include "vm/VM.h"

#include <algorithm>
#include <cassert>

using namespace dspec;

namespace dspec {
/// Implemented in Builtins.cpp.
Value callBuiltinImpl(uint16_t Id, const Value *Args, VM &Machine);
} // namespace dspec

// Dispatch selection: computed goto is a GNU extension (GCC and Clang
// both define __GNUC__); DSPEC_FORCE_SWITCH_DISPATCH pins the portable
// fallback so CI can keep it honest.
#if defined(DSPEC_FORCE_SWITCH_DISPATCH) || !defined(__GNUC__)
#define DSPEC_SWITCH_DISPATCH 1
#else
#define DSPEC_SWITCH_DISPATCH 0
#endif

#define TRAP(MSG)                                                              \
  do {                                                                         \
    Result.Trapped = true;                                                     \
    Result.TrapMessage = (MSG);                                                \
    Result.InstructionsExecuted = Executed;                                    \
    return Result;                                                             \
  } while (0)

ExecResult VM::runThreaded(const ExecChunk &C, const std::vector<Value> &Args,
                           CacheView Packed) {
  ExecResult Result;
  uint64_t Executed = 0;

  if (!C.Valid)
    TRAP("invalid decoded chunk '" + C.Name + "'");
  if (Args.size() != C.NumParams)
    TRAP("argument count mismatch calling '" + C.Name + "'");

  std::vector<Value> &Locals = LocalsScratch;
  Locals.resize(C.numLocals());
  for (unsigned I = 0; I < C.numLocals(); ++I)
    Locals[I] = Value::zeroOf(Type(C.LocalTypes[I]));
  for (unsigned I = 0; I < C.NumParams; ++I) {
    Value Arg = Args[I];
    if (Arg.Kind != C.LocalTypes[I]) {
      if (Arg.isInt() && C.LocalTypes[I] == TypeKind::TK_Float)
        Arg = Value::makeFloat(static_cast<float>(Arg.I));
      else
        TRAP("argument type mismatch calling '" + C.Name + "'");
    }
    Locals[I] = Arg;
  }

  // Flat operand stack, pre-sized to the verified maximum depth: pushes
  // and pops are raw indexed writes, never bounds-checked or allocating.
  if (StackScratch.size() < C.MaxStack)
    StackScratch.resize(C.MaxStack);
  Value *Stack = StackScratch.data();
  Value *Lp = Locals.data();
  unsigned SP = 0;

  const ExecInstr *Code = C.Code.data();
  const ExecInstr *End = Code + C.Code.size();
  const ExecInstr *Ip = Code;
  const ExecInstr *In = nullptr;
  const bool UsePacked = Packed.data() != nullptr;

// The handler bodies below are written once and compiled under either
// dispatch regime: CASE expands to a goto label or a switch case, NEXT
// to an indirect goto through the label table or a break back to the
// fetch loop.
#if DSPEC_SWITCH_DISPATCH

#define CASE(NAME) case FusedOp::F_##NAME:
#define NEXT() break

  for (;;) {
    if (Ip == End)
      goto halt;
    if (++Executed > InstructionBudget)
      TRAP("instruction budget exceeded in '" + C.Name + "'");
    In = Ip++;
    switch (In->Op) {

#else // computed goto

#define CASE(NAME) L_##NAME:
#define NEXT() goto dispatch

  // Function-local so the table lives in this translation unit only;
  // the ExecChunk itself stays position-independent and shareable
  // across threads and processes.
  static const void *Table[kNumFusedOps] = {
      &&L_Const,        &&L_LoadLocal,    &&L_StoreLocal, &&L_Convert,
      &&L_Pop,          &&L_Neg,          &&L_Not,        &&L_Add,
      &&L_Sub,          &&L_Mul,          &&L_Div,        &&L_Mod,
      &&L_Lt,           &&L_Le,           &&L_Gt,         &&L_Ge,
      &&L_Eq,           &&L_Ne,           &&L_And,        &&L_Or,
      &&L_Select,       &&L_Jump,         &&L_JumpIfFalse,
      &&L_CallBuiltin,  &&L_Member,       &&L_CacheLoad,  &&L_CacheStore,
      &&L_Return,       &&L_ReturnVoid,   &&L_ConstAdd,   &&L_ConstMul,
      &&L_LoadLoad,     &&L_StoreLoad,    &&L_LoadCall,   &&L_CacheLoadAdd,
      &&L_CacheLoadMul, &&L_CacheLoadStore, &&L_CacheLoadRet,
      &&L_LtJf,         &&L_LeJf,         &&L_GtJf,       &&L_GeJf};

dispatch:
  if (Ip == End)
    goto halt;
  if (++Executed > InstructionBudget)
    TRAP("instruction budget exceeded in '" + C.Name + "'");
  In = Ip++;
  goto *Table[static_cast<unsigned>(In->Op)];

#endif

  CASE(Const) {
    Stack[SP++] = *In->K;
    NEXT();
  }
  CASE(LoadLocal) {
    Stack[SP++] = Lp[In->A];
    NEXT();
  }
  CASE(StoreLocal) {
    Lp[In->A] = Stack[--SP];
    NEXT();
  }
  CASE(Convert) {
    Value &V = Stack[SP - 1];
    V = V.convertTo(Type(static_cast<TypeKind>(In->A)));
    NEXT();
  }
  CASE(Pop) {
    --SP;
    NEXT();
  }
  CASE(Neg) {
    Value &V = Stack[SP - 1];
    V = interp::opNeg(V);
    NEXT();
  }
  CASE(Not) {
    Value &V = Stack[SP - 1];
    V = Value::makeBool(!V.asBool());
    NEXT();
  }
  CASE(Add) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opAdd(Lv, Rv);
    NEXT();
  }
  CASE(Sub) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opSub(Lv, Rv);
    NEXT();
  }
  CASE(Mul) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opMul(Lv, Rv);
    NEXT();
  }
  CASE(Div) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    if (Lv.isInt() && Rv.isInt() && Rv.I == 0)
      TRAP("integer division by zero in '" + C.Name + "'" +
           interp::srcLocSuffix(In->A, In->B));
    Lv = interp::opDiv(Lv, Rv);
    NEXT();
  }
  CASE(Mod) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    if (Rv.I == 0)
      TRAP("integer modulo by zero in '" + C.Name + "'" +
           interp::srcLocSuffix(In->A, In->B));
    Lv = Value::makeInt(Lv.I % Rv.I);
    NEXT();
  }
  CASE(Lt) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opLt(Lv, Rv);
    NEXT();
  }
  CASE(Le) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opLe(Lv, Rv);
    NEXT();
  }
  CASE(Gt) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opGt(Lv, Rv);
    NEXT();
  }
  CASE(Ge) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opGe(Lv, Rv);
    NEXT();
  }
  CASE(Eq) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opEq(Lv, Rv);
    NEXT();
  }
  CASE(Ne) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = interp::opNe(Lv, Rv);
    NEXT();
  }
  CASE(And) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = Value::makeBool(Lv.asBool() && Rv.asBool());
    NEXT();
  }
  CASE(Or) {
    const Value &Rv = Stack[--SP];
    Value &Lv = Stack[SP - 1];
    Lv = Value::makeBool(Lv.asBool() || Rv.asBool());
    NEXT();
  }
  CASE(Select) {
    // Stack bottom-to-top: condition, then-value, else-value.
    SP -= 2;
    Value &Cond = Stack[SP - 1];
    Cond = Cond.asBool() ? Stack[SP] : Stack[SP + 1];
    NEXT();
  }
  CASE(Jump) {
    Ip = Code + In->A;
    NEXT();
  }
  CASE(JumpIfFalse) {
    if (!Stack[--SP].asBool())
      Ip = Code + In->A;
    NEXT();
  }
  CASE(CallBuiltin) {
    SP -= static_cast<unsigned>(In->B);
    Stack[SP] =
        callBuiltinImpl(static_cast<uint16_t>(In->A), Stack + SP, *this);
    ++SP;
    NEXT();
  }
  CASE(Member) {
    Value &V = Stack[SP - 1];
    V = Value::makeFloat(V.F[In->A]);
    NEXT();
  }
  CASE(CacheLoad) {
    if (!UsePacked)
      TRAP("cache read without a loaded cache in '" + C.Name + "'");
    TypeKind Kind = static_cast<TypeKind>(In->C);
    unsigned Offset = static_cast<unsigned>(In->B);
    if (!Packed.inBounds(Offset, Kind))
      TRAP("cache read past the layout in '" + C.Name + "'");
    Stack[SP++] = Packed.load(Offset, Kind);
    NEXT();
  }
  CASE(CacheStore) {
    // The stored value stays on the stack.
    if (!UsePacked)
      TRAP("cache write without cache storage in '" + C.Name + "'");
    if (Packed.readOnly())
      TRAP("cache store to a read-only cache in '" + C.Name + "'");
    TypeKind Kind = static_cast<TypeKind>(In->C);
    unsigned Offset = static_cast<unsigned>(In->B);
    const Value &V = Stack[SP - 1];
    if (!Packed.inBounds(Offset, Kind))
      TRAP("cache store past the layout in '" + C.Name + "'");
    if (V.Kind != Kind)
      TRAP("cache store type mismatch in '" + C.Name + "': slot is " +
           Type(Kind).name() + ", value is " + Type(V.Kind).name());
    Packed.store(Offset, V);
    NEXT();
  }
  CASE(Return) {
    Result.Result = Stack[--SP];
    Result.InstructionsExecuted = Executed;
    return Result;
  }
  CASE(ReturnVoid) {
    Result.Result = Value::makeVoid();
    Result.InstructionsExecuted = Executed;
    return Result;
  }

  // Superinstructions: each performs exactly its two source operations
  // in order, skipping the intermediate push/pop where it cancels out.
  CASE(ConstAdd) {
    Value &Lv = Stack[SP - 1];
    Lv = interp::opAdd(Lv, *In->K);
    NEXT();
  }
  CASE(ConstMul) {
    Value &Lv = Stack[SP - 1];
    Lv = interp::opMul(Lv, *In->K);
    NEXT();
  }
  CASE(LoadLoad) {
    Stack[SP] = Lp[In->A];
    Stack[SP + 1] = Lp[In->A2];
    SP += 2;
    NEXT();
  }
  CASE(StoreLoad) {
    Lp[In->A] = Stack[SP - 1];
    Stack[SP - 1] = Lp[In->A2];
    NEXT();
  }
  CASE(LoadCall) {
    Stack[SP++] = Lp[In->A];
    SP -= static_cast<unsigned>(In->B2);
    Stack[SP] =
        callBuiltinImpl(static_cast<uint16_t>(In->A2), Stack + SP, *this);
    ++SP;
    NEXT();
  }
  CASE(CacheLoadAdd) {
    if (!UsePacked)
      TRAP("cache read without a loaded cache in '" + C.Name + "'");
    TypeKind Kind = static_cast<TypeKind>(In->C);
    unsigned Offset = static_cast<unsigned>(In->B);
    if (!Packed.inBounds(Offset, Kind))
      TRAP("cache read past the layout in '" + C.Name + "'");
    Value &Lv = Stack[SP - 1];
    Lv = interp::opAdd(Lv, Packed.load(Offset, Kind));
    NEXT();
  }
  CASE(CacheLoadMul) {
    if (!UsePacked)
      TRAP("cache read without a loaded cache in '" + C.Name + "'");
    TypeKind Kind = static_cast<TypeKind>(In->C);
    unsigned Offset = static_cast<unsigned>(In->B);
    if (!Packed.inBounds(Offset, Kind))
      TRAP("cache read past the layout in '" + C.Name + "'");
    Value &Lv = Stack[SP - 1];
    Lv = interp::opMul(Lv, Packed.load(Offset, Kind));
    NEXT();
  }
  CASE(CacheLoadStore) {
    if (!UsePacked)
      TRAP("cache read without a loaded cache in '" + C.Name + "'");
    TypeKind Kind = static_cast<TypeKind>(In->C);
    unsigned Offset = static_cast<unsigned>(In->B);
    if (!Packed.inBounds(Offset, Kind))
      TRAP("cache read past the layout in '" + C.Name + "'");
    Lp[In->A2] = Packed.load(Offset, Kind);
    NEXT();
  }
  CASE(CacheLoadRet) {
    if (!UsePacked)
      TRAP("cache read without a loaded cache in '" + C.Name + "'");
    TypeKind Kind = static_cast<TypeKind>(In->C);
    unsigned Offset = static_cast<unsigned>(In->B);
    if (!Packed.inBounds(Offset, Kind))
      TRAP("cache read past the layout in '" + C.Name + "'");
    Result.Result = Packed.load(Offset, Kind);
    Result.InstructionsExecuted = Executed;
    return Result;
  }
  CASE(LtJf) {
    const Value &Rv = Stack[SP - 1];
    const Value &Lv = Stack[SP - 2];
    SP -= 2;
    if (!interp::cmpLt(Lv, Rv))
      Ip = Code + In->A2;
    NEXT();
  }
  CASE(LeJf) {
    const Value &Rv = Stack[SP - 1];
    const Value &Lv = Stack[SP - 2];
    SP -= 2;
    if (!interp::cmpLe(Lv, Rv))
      Ip = Code + In->A2;
    NEXT();
  }
  CASE(GtJf) {
    const Value &Rv = Stack[SP - 1];
    const Value &Lv = Stack[SP - 2];
    SP -= 2;
    if (!interp::cmpGt(Lv, Rv))
      Ip = Code + In->A2;
    NEXT();
  }
  CASE(GeJf) {
    const Value &Rv = Stack[SP - 1];
    const Value &Lv = Stack[SP - 2];
    SP -= 2;
    if (!interp::cmpGe(Lv, Rv))
      Ip = Code + In->A2;
    NEXT();
  }

#if DSPEC_SWITCH_DISPATCH
    case FusedOp::F_OpCount:
    default:
      TRAP("corrupt opcode in decoded chunk '" + C.Name + "'");
    }
  }
#endif

halt:
  Result.InstructionsExecuted = Executed;
  return Result;

#undef CASE
#undef NEXT
}

//===----------------------------------------------------------------------===//
// Pixel-batched execution
//===----------------------------------------------------------------------===//

namespace {

inline bool isVecKind(TypeKind K) {
  return K == TypeKind::TK_Vec2 || K == TypeKind::TK_Vec3 ||
         K == TypeKind::TK_Vec4;
}

inline unsigned vecWidth(TypeKind K) {
  return K == TypeKind::TK_Vec2 ? 2 : K == TypeKind::TK_Vec3 ? 3 : 4;
}

#ifndef NDEBUG
/// The fast paths dispatch on lane 0's kinds once per instruction. That
/// is sound because dsc is statically typed: the kind at a given stack
/// depth at a given instruction is a function of the instruction index
/// alone (params are promoted to their declared types, constants and
/// cache slots are typed, and every operator's result kind depends only
/// on its operand kinds), so it cannot differ between lanes.
inline bool uniformKind(const Value *RowData, unsigned Lanes) {
  for (unsigned L = 1; L < Lanes; ++L)
    if (RowData[L].Kind != RowData[0].Kind)
      return false;
  return true;
}
#endif

/// Kind-specialized row-vs-row arithmetic: dispatches on the operand
/// kinds once, then runs a branch-free lane loop. In-place component
/// updates preserve the zeroed padding `interp::arith` produces (every
/// value reaching a row was built by a factory/arith/cache load, all of
/// which zero F[width..4) and I), so results stay bit-identical to the
/// scalar tiers. Returns false for kind mixes left to the generic loop
/// (ints, bools, voids).
template <typename FOp>
inline bool arithRows(Value *Lv, const Value *Rv, unsigned Lanes, FOp F) {
  assert(uniformKind(Lv, Lanes) && uniformKind(Rv, Lanes) &&
         "lane kinds diverged under a statically typed chunk");
  const TypeKind LK = Lv[0].Kind, RK = Rv[0].Kind;
  if (LK == TypeKind::TK_Float && RK == TypeKind::TK_Float) {
    for (unsigned L = 0; L < Lanes; ++L)
      Lv[L].F[0] = F(Lv[L].F[0], Rv[L].F[0]);
    return true;
  }
  if (LK == TypeKind::TK_Vec3 && RK == TypeKind::TK_Vec3) {
    for (unsigned L = 0; L < Lanes; ++L)
      for (unsigned K = 0; K < 3; ++K)
        Lv[L].F[K] = F(Lv[L].F[K], Rv[L].F[K]);
    return true;
  }
  if (LK == TypeKind::TK_Vec3 && RK == TypeKind::TK_Float) {
    for (unsigned L = 0; L < Lanes; ++L) {
      const float S = Rv[L].F[0];
      for (unsigned K = 0; K < 3; ++K)
        Lv[L].F[K] = F(Lv[L].F[K], S);
    }
    return true;
  }
  if (LK == TypeKind::TK_Float && RK == TypeKind::TK_Vec3) {
    for (unsigned L = 0; L < Lanes; ++L) {
      const float S = Lv[L].F[0];
      Lv[L].Kind = TypeKind::TK_Vec3;
      for (unsigned K = 0; K < 3; ++K)
        Lv[L].F[K] = F(S, Rv[L].F[K]);
    }
    return true;
  }
  // vec2/vec4 mixes: same shapes with a runtime width.
  if (isVecKind(LK) && RK == LK) {
    const unsigned W = vecWidth(LK);
    for (unsigned L = 0; L < Lanes; ++L)
      for (unsigned K = 0; K < W; ++K)
        Lv[L].F[K] = F(Lv[L].F[K], Rv[L].F[K]);
    return true;
  }
  if (isVecKind(LK) && RK == TypeKind::TK_Float) {
    const unsigned W = vecWidth(LK);
    for (unsigned L = 0; L < Lanes; ++L) {
      const float S = Rv[L].F[0];
      for (unsigned K = 0; K < W; ++K)
        Lv[L].F[K] = F(Lv[L].F[K], S);
    }
    return true;
  }
  if (LK == TypeKind::TK_Float && isVecKind(RK)) {
    const unsigned W = vecWidth(RK);
    for (unsigned L = 0; L < Lanes; ++L) {
      const float S = Lv[L].F[0];
      Lv[L].Kind = RK;
      for (unsigned K = 0; K < W; ++K)
        Lv[L].F[K] = F(S, Rv[L].F[K]);
    }
    return true;
  }
  return false;
}

/// arithRows against one broadcast constant (F_ConstAdd / F_ConstMul).
template <typename FOp>
inline bool arithRowConst(Value *Lv, const Value &K, unsigned Lanes, FOp F) {
  assert(uniformKind(Lv, Lanes) &&
         "lane kinds diverged under a statically typed chunk");
  const TypeKind LK = Lv[0].Kind;
  if (LK == TypeKind::TK_Float && K.Kind == TypeKind::TK_Float) {
    const float S = K.F[0];
    for (unsigned L = 0; L < Lanes; ++L)
      Lv[L].F[0] = F(Lv[L].F[0], S);
    return true;
  }
  if (isVecKind(LK) && K.Kind == TypeKind::TK_Float) {
    const unsigned W = vecWidth(LK);
    const float S = K.F[0];
    for (unsigned L = 0; L < Lanes; ++L)
      for (unsigned C = 0; C < W; ++C)
        Lv[L].F[C] = F(Lv[L].F[C], S);
    return true;
  }
  if (isVecKind(LK) && K.Kind == LK) {
    const unsigned W = vecWidth(LK);
    for (unsigned L = 0; L < Lanes; ++L)
      for (unsigned C = 0; C < W; ++C)
        Lv[L].F[C] = F(Lv[L].F[C], K.F[C]);
    return true;
  }
  if (LK == TypeKind::TK_Float && isVecKind(K.Kind)) {
    const unsigned W = vecWidth(K.Kind);
    for (unsigned L = 0; L < Lanes; ++L) {
      const float S = Lv[L].F[0];
      Lv[L].Kind = K.Kind;
      for (unsigned C = 0; C < W; ++C)
        Lv[L].F[C] = F(S, K.F[C]);
    }
    return true;
  }
  return false;
}

/// Strided cache-slot load into a row with the kind switch hoisted out
/// of the lane loop. Replicates CacheView::load exactly (fresh Value,
/// zeroed padding, memcpy of the slot width). \p Base already includes
/// the slot's resolved displacement (lane 0's slot bytes); under a
/// slot-major arena \p Stride is the slot width, so the loop walks
/// unit-stride memory.
inline void cacheLoadRow(Value *Dest, const unsigned char *Base,
                         size_t Stride, TypeKind Kind, unsigned Lanes) {
  // Unit-stride columns (slot-major / tile-blocked arenas hand the word
  // slots out contiguously): index the source as a plain array so the
  // compiler sees a dense load stream instead of a runtime stride.
  if (Stride == sizeof(float) &&
      (Kind == TypeKind::TK_Float || Kind == TypeKind::TK_Int ||
       Kind == TypeKind::TK_Bool)) {
    const bool IsFloat = Kind == TypeKind::TK_Float;
    for (unsigned L = 0; L < Lanes; ++L) {
      Value V;
      V.Kind = Kind;
      if (IsFloat)
        std::memcpy(&V.F[0], Base + L * sizeof(float), sizeof(float));
      else
        std::memcpy(&V.I, Base + L * sizeof(int32_t), sizeof(int32_t));
      Dest[L] = V;
    }
    return;
  }
  switch (Kind) {
  case TypeKind::TK_Bool:
  case TypeKind::TK_Int:
    for (unsigned L = 0; L < Lanes; ++L) {
      Value V;
      V.Kind = Kind;
      std::memcpy(&V.I, Base + L * Stride, sizeof(int32_t));
      Dest[L] = V;
    }
    break;
  case TypeKind::TK_Float:
    for (unsigned L = 0; L < Lanes; ++L) {
      Value V;
      V.Kind = Kind;
      std::memcpy(&V.F[0], Base + L * Stride, sizeof(float));
      Dest[L] = V;
    }
    break;
  case TypeKind::TK_Vec2:
    for (unsigned L = 0; L < Lanes; ++L) {
      Value V;
      V.Kind = Kind;
      std::memcpy(V.F, Base + L * Stride, 2 * sizeof(float));
      Dest[L] = V;
    }
    break;
  case TypeKind::TK_Vec3:
    for (unsigned L = 0; L < Lanes; ++L) {
      Value V;
      V.Kind = Kind;
      std::memcpy(V.F, Base + L * Stride, 3 * sizeof(float));
      Dest[L] = V;
    }
    break;
  case TypeKind::TK_Vec4:
    for (unsigned L = 0; L < Lanes; ++L) {
      Value V;
      V.Kind = Kind;
      std::memcpy(V.F, Base + L * Stride, 4 * sizeof(float));
      Dest[L] = V;
    }
    break;
  case TypeKind::TK_Void:
    for (unsigned L = 0; L < Lanes; ++L) {
      Value V;
      V.Kind = Kind;
      Dest[L] = V;
    }
    break;
  }
}

} // namespace

// Batch traps also record the dispatch count so the caller's divergence
// accounting stays consistent on every exit path.
#undef TRAP
#define TRAP(MSG)                                                              \
  do {                                                                         \
    Result.Trapped = true;                                                     \
    Result.TrapMessage = (MSG);                                                \
    Result.InstructionsExecuted = Executed;                                    \
    Result.BatchDispatches = Dispatched;                                       \
    return Result;                                                             \
  } while (0)

// Unmaskable control flow actually diverged across lanes: not an error —
// results are unwritten and the caller re-runs the tile per-pixel.
#define DIVERGE()                                                              \
  do {                                                                         \
    Result.Diverged = true;                                                    \
    Result.InstructionsExecuted = Executed;                                    \
    Result.BatchDispatches = Dispatched;                                       \
    return Result;                                                             \
  } while (0)

ExecResult VM::runBatch(const ExecChunk &C, const BatchRequest &Req) {
  ExecResult Result;
  uint64_t Executed = 0;
  uint64_t Dispatched = 0;

  if (!C.Valid || !C.BatchSafe)
    TRAP("batch execution on an unsupported chunk '" + C.Name + "'");
  if (Req.Lanes == 0) {
    Result.Result = Value::makeVoid();
    return Result;
  }
  if (Req.NumArgs != C.NumParams)
    TRAP("argument count mismatch calling '" + C.Name + "'");

  const unsigned Lanes = Req.Lanes;
  const bool UseCache = Req.CacheBase != nullptr;
  // inBounds for a given (offset, kind) is uniform across lanes, so the
  // per-access bounds decision is made once per instruction below using
  // lane 0's view geometry.
  CacheView Bounds(Req.CacheBase, Req.CacheBytes);

  // Slot-major locals: slot s's values for all lanes are contiguous at
  // row s, so per-instruction lane loops walk plain arrays.
  const unsigned NumLocals = C.numLocals();
  BatchLocals.resize(static_cast<size_t>(NumLocals) * Lanes);
  for (unsigned S = 0; S < NumLocals; ++S) {
    Value *Row = BatchLocals.data() + static_cast<size_t>(S) * Lanes;
    if (S < C.NumParams) {
      for (unsigned L = 0; L < Lanes; ++L) {
        Value Arg = Req.LaneArgs[static_cast<size_t>(L) * Req.NumArgs + S];
        if (Arg.Kind != C.LocalTypes[S]) {
          if (Arg.isInt() && C.LocalTypes[S] == TypeKind::TK_Float)
            Arg = Value::makeFloat(static_cast<float>(Arg.I));
          else
            TRAP("argument type mismatch calling '" + C.Name + "'");
        }
        Row[L] = Arg;
      }
    } else {
      const Value Zero = Value::zeroOf(Type(C.LocalTypes[S]));
      for (unsigned L = 0; L < Lanes; ++L)
        Row[L] = Zero;
    }
  }

  BatchStack.resize(static_cast<size_t>(C.MaxStack) * Lanes);
  unsigned SP = 0;
  auto Row = [&](unsigned Depth) {
    return BatchStack.data() + static_cast<size_t>(Depth) * Lanes;
  };
  auto LocalRow = [&](int32_t Slot) {
    return BatchLocals.data() + static_cast<size_t>(Slot) * Lanes;
  };
  // Resolves one canonical slot offset to (displacement of lane 0's slot
  // bytes from the cache base, per-lane stride). Dense requests keep the
  // seed behavior: base is pre-offset to the tile, stride is the pixel
  // stride. Mapped requests consult the arena's affine word table; the
  // per-pixel-block case (BlockPixels == 1) strides whole blocks, the
  // within-block case strides the slot width — unit-stride columns. The
  // caller guarantees the tile never straddles a block
  // (CacheArena::batchCompatible), so one resolution covers all lanes.
  // Block coordinates depend only on the tile's first pixel, so the
  // divide/modulo happen once per tile here, not per slot access inside
  // the dispatch loop (TilePixels is not a compile-time constant, so the
  // compiler cannot strength-reduce them away).
  const unsigned MapTP = Req.CacheBlockPixels;
  const size_t MapBlockIdx =
      Req.CacheMap && MapTP > 1 ? Req.CacheFirstPixel / MapTP : 0;
  const size_t MapLane0 =
      Req.CacheMap && MapTP > 1 ? Req.CacheFirstPixel % MapTP : 0;
  auto slotRow = [&](unsigned Offset, size_t &LaneStride) -> size_t {
    if (!Req.CacheMap) {
      LaneStride = Req.CacheStride;
      return Offset;
    }
    const ArenaSlotAddr &E = Req.CacheMap[Offset >> 2];
    if (MapTP <= 1) {
      LaneStride = E.Block;
      return static_cast<size_t>(E.Base) +
             static_cast<size_t>(Req.CacheFirstPixel) * E.Block +
             (Offset & 3u);
    }
    LaneStride = E.LaneW;
    return static_cast<size_t>(E.Base) + MapBlockIdx * E.Block +
           MapLane0 * E.LaneW + (Offset & 3u);
  };

  // Divergence state. A null CurMask means every lane is active — the
  // uniform fast path that straight-line chunks and runtime-uniform
  // branches never leave, so they pay no masking cost. A divergent
  // maskable diamond pushes a MaskFrame; CurMask then points at the top
  // frame's current-arm mask. Stack pushes stay unmasked (each arm
  // writes operand rows for every lane, keeping lane kinds uniform);
  // only stores to locals and cache slots are masked, and only those
  // plus trap checks consult CurMask.
  size_t MaskDepth = 0;
  const uint8_t *CurMask = nullptr;
  unsigned ActiveCount = Lanes;
  CondScratch.resize(Lanes);

  auto RefreshMask = [&]() {
    if (MaskDepth == 0) {
      CurMask = nullptr;
      ActiveCount = Lanes;
    } else {
      CurMask = BatchMasks[MaskDepth - 1].Active.data();
      ActiveCount = BatchMasks[MaskDepth - 1].ActiveCount;
    }
  };

  const ExecInstr *Code = C.Code.data();
  const size_t CodeLen = C.Code.size();
  size_t IpIdx = 0;
  while (IpIdx < CodeLen) {
    // Reconvergence: lanes masked off for the innermost diamond rejoin
    // at its join index. Nested diamonds with coinciding joins pop in
    // one go, innermost first.
    while (MaskDepth > 0 &&
           BatchMasks[MaskDepth - 1].Join == static_cast<int32_t>(IpIdx)) {
      --MaskDepth;
      RefreshMask();
    }
    const ExecInstr &In = Code[IpIdx];
    ++Dispatched;
    // Bill active lanes only: a divergent tile is charged the work a
    // per-pixel run would have done, not both arms times every lane.
    Executed += CurMask ? ActiveCount : Lanes;
    if (Executed > InstructionBudget)
      TRAP("instruction budget exceeded in '" + C.Name + "'");
    switch (In.Op) {
    case FusedOp::F_Const: {
      const Value K = *In.K;
      Value *S = Row(SP++);
      for (unsigned L = 0; L < Lanes; ++L)
        S[L] = K;
      break;
    }
    case FusedOp::F_LoadLocal: {
      const Value *Src = LocalRow(In.A);
      std::copy(Src, Src + Lanes, Row(SP++));
      break;
    }
    case FusedOp::F_StoreLocal: {
      const Value *S = Row(--SP);
      Value *D = LocalRow(In.A);
      if (!CurMask) {
        std::copy(S, S + Lanes, D);
      } else {
        for (unsigned L = 0; L < Lanes; ++L)
          if (CurMask[L])
            D[L] = S[L];
      }
      break;
    }
    case FusedOp::F_Convert: {
      const Type To(static_cast<TypeKind>(In.A));
      Value *S = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        S[L] = S[L].convertTo(To);
      break;
    }
    case FusedOp::F_Pop:
      --SP;
      break;
    case FusedOp::F_Neg: {
      Value *S = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        S[L] = interp::opNeg(S[L]);
      break;
    }
    case FusedOp::F_Not: {
      Value *S = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        S[L] = Value::makeBool(!S[L].asBool());
      break;
    }
    case FusedOp::F_Add: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      if (!arithRows(Lv, Rv, Lanes, [](float A, float B) { return A + B; }))
        for (unsigned L = 0; L < Lanes; ++L)
          Lv[L] = interp::opAdd(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_Sub: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      if (!arithRows(Lv, Rv, Lanes, [](float A, float B) { return A - B; }))
        for (unsigned L = 0; L < Lanes; ++L)
          Lv[L] = interp::opSub(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_Mul: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      if (!arithRows(Lv, Rv, Lanes, [](float A, float B) { return A * B; }))
        for (unsigned L = 0; L < Lanes; ++L)
          Lv[L] = interp::opMul(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_Div: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      // The fast paths cover float/vector operands only, where division
      // by zero is well-defined IEEE behavior; the int-zero trap lives
      // in the generic fallback with the other int mixes.
      if (!arithRows(Lv, Rv, Lanes, [](float A, float B) { return A / B; }))
        for (unsigned L = 0; L < Lanes; ++L) {
          if (Lv[L].isInt() && Rv[L].isInt() && Rv[L].I == 0) {
            if (!CurMask || CurMask[L])
              TRAP("integer division by zero in '" + C.Name + "'" +
                   interp::srcLocSuffix(In.A, In.B));
            // Masked-off lane: the trap is suppressed; a kind-correct
            // placeholder keeps the row's lane kinds uniform and is
            // never observed.
            Lv[L] = Value::makeInt(0);
            continue;
          }
          Lv[L] = interp::opDiv(Lv[L], Rv[L]);
        }
      break;
    }
    case FusedOp::F_Mod: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L) {
        if (Rv[L].I == 0) {
          if (!CurMask || CurMask[L])
            TRAP("integer modulo by zero in '" + C.Name + "'" +
                 interp::srcLocSuffix(In.A, In.B));
          Lv[L] = Value::makeInt(0);
          continue;
        }
        Lv[L] = Value::makeInt(Lv[L].I % Rv[L].I);
      }
      break;
    }
    case FusedOp::F_Lt: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Lv[L] = interp::opLt(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_Le: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Lv[L] = interp::opLe(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_Gt: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Lv[L] = interp::opGt(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_Ge: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Lv[L] = interp::opGe(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_Eq: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Lv[L] = interp::opEq(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_Ne: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Lv[L] = interp::opNe(Lv[L], Rv[L]);
      break;
    }
    case FusedOp::F_And: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Lv[L] = Value::makeBool(Lv[L].asBool() && Rv[L].asBool());
      break;
    }
    case FusedOp::F_Or: {
      const Value *Rv = Row(--SP);
      Value *Lv = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Lv[L] = Value::makeBool(Lv[L].asBool() || Rv[L].asBool());
      break;
    }
    case FusedOp::F_Select: {
      SP -= 2;
      Value *Cond = Row(SP - 1);
      const Value *T = Row(SP);
      const Value *F = Row(SP + 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Cond[L] = Cond[L].asBool() ? T[L] : F[L];
      break;
    }
    case FusedOp::F_CallBuiltin: {
      const unsigned Argc = static_cast<unsigned>(In.B);
      assert(Argc <= 8 && "builtin arity exceeds the gather buffer");
      SP -= Argc;
      Value *Dest = Row(SP);
      const Value *ArgRows[8];
      for (unsigned A = 0; A < Argc; ++A)
        ArgRows[A] = Row(SP + A);
      Value Tmp[8];
      for (unsigned L = 0; L < Lanes; ++L) {
        for (unsigned A = 0; A < Argc; ++A)
          Tmp[A] = ArgRows[A][L];
        Dest[L] = callBuiltinImpl(static_cast<uint16_t>(In.A), Tmp, *this);
      }
      ++SP;
      break;
    }
    case FusedOp::F_Member: {
      Value *S = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        S[L] = Value::makeFloat(S[L].F[In.A]);
      break;
    }
    case FusedOp::F_CacheLoad: {
      if (!UseCache)
        TRAP("cache read without a loaded cache in '" + C.Name + "'");
      const TypeKind Kind = static_cast<TypeKind>(In.C);
      const unsigned Offset = static_cast<unsigned>(In.B);
      if (!Bounds.inBounds(Offset, Kind))
        TRAP("cache read past the layout in '" + C.Name + "'");
      size_t RowStride;
      const size_t Disp = slotRow(Offset, RowStride);
      cacheLoadRow(Row(SP++), Req.CacheBase + Disp, RowStride, Kind, Lanes);
      break;
    }
    case FusedOp::F_CacheStore: {
      // The stored value stays on the stack.
      if (!UseCache)
        TRAP("cache write without cache storage in '" + C.Name + "'");
      if (!Req.CacheStoreBase)
        TRAP("cache store to a read-only cache in '" + C.Name + "'");
      const TypeKind Kind = static_cast<TypeKind>(In.C);
      const unsigned Offset = static_cast<unsigned>(In.B);
      if (!Bounds.inBounds(Offset, Kind))
        TRAP("cache store past the layout in '" + C.Name + "'");
      const Value *S = Row(SP - 1);
      size_t RowStride;
      unsigned char *Dst = Req.CacheStoreBase + slotRow(Offset, RowStride);
      for (unsigned L = 0; L < Lanes; ++L) {
        if (CurMask && !CurMask[L])
          continue; // inactive lane: no store, no type trap
        if (S[L].Kind != Kind)
          TRAP("cache store type mismatch in '" + C.Name + "': slot is " +
               Type(Kind).name() + ", value is " + Type(S[L].Kind).name());
        CacheView::storeRaw(Dst + L * RowStride, S[L]);
      }
      break;
    }
    case FusedOp::F_Return: {
      if (MaskDepth > 0)
        DIVERGE(); // classification forbids returns inside a diamond
      const Value *S = Row(SP - 1);
      for (unsigned L = 0; L < Lanes; ++L)
        Req.Results[L] = S[L];
      Result.InstructionsExecuted = Executed;
      Result.BatchDispatches = Dispatched;
      return Result;
    }
    case FusedOp::F_ReturnVoid: {
      if (MaskDepth > 0)
        DIVERGE();
      for (unsigned L = 0; L < Lanes; ++L)
        Req.Results[L] = Value::makeVoid();
      Result.InstructionsExecuted = Executed;
      Result.BatchDispatches = Dispatched;
      return Result;
    }
    case FusedOp::F_ConstAdd: {
      const Value K = *In.K;
      Value *Lv = Row(SP - 1);
      if (!arithRowConst(Lv, K, Lanes, [](float A, float B) { return A + B; }))
        for (unsigned L = 0; L < Lanes; ++L)
          Lv[L] = interp::opAdd(Lv[L], K);
      break;
    }
    case FusedOp::F_ConstMul: {
      const Value K = *In.K;
      Value *Lv = Row(SP - 1);
      if (!arithRowConst(Lv, K, Lanes, [](float A, float B) { return A * B; }))
        for (unsigned L = 0; L < Lanes; ++L)
          Lv[L] = interp::opMul(Lv[L], K);
      break;
    }
    case FusedOp::F_LoadLoad: {
      const Value *A = LocalRow(In.A);
      const Value *B = LocalRow(In.A2);
      std::copy(A, A + Lanes, Row(SP));
      std::copy(B, B + Lanes, Row(SP + 1));
      SP += 2;
      break;
    }
    case FusedOp::F_StoreLoad: {
      // Store first, then load — row-wise order preserves the sequential
      // semantics even when both name the same local. Only the store is
      // masked; the load is a stack push and writes every lane.
      Value *S = Row(SP - 1);
      Value *D = LocalRow(In.A);
      if (!CurMask) {
        std::copy(S, S + Lanes, D);
      } else {
        for (unsigned L = 0; L < Lanes; ++L)
          if (CurMask[L])
            D[L] = S[L];
      }
      const Value *Src = LocalRow(In.A2);
      std::copy(Src, Src + Lanes, S);
      break;
    }
    case FusedOp::F_LoadCall: {
      const Value *Loaded = LocalRow(In.A);
      std::copy(Loaded, Loaded + Lanes, Row(SP));
      ++SP;
      const unsigned Argc = static_cast<unsigned>(In.B2);
      assert(Argc <= 8 && "builtin arity exceeds the gather buffer");
      SP -= Argc;
      Value *Dest = Row(SP);
      const Value *ArgRows[8];
      for (unsigned A = 0; A < Argc; ++A)
        ArgRows[A] = Row(SP + A);
      Value Tmp[8];
      for (unsigned L = 0; L < Lanes; ++L) {
        for (unsigned A = 0; A < Argc; ++A)
          Tmp[A] = ArgRows[A][L];
        Dest[L] = callBuiltinImpl(static_cast<uint16_t>(In.A2), Tmp, *this);
      }
      ++SP;
      break;
    }
    case FusedOp::F_CacheLoadAdd: {
      if (!UseCache)
        TRAP("cache read without a loaded cache in '" + C.Name + "'");
      const TypeKind Kind = static_cast<TypeKind>(In.C);
      const unsigned Offset = static_cast<unsigned>(In.B);
      if (!Bounds.inBounds(Offset, Kind))
        TRAP("cache read past the layout in '" + C.Name + "'");
      // MaxStack covers the unfused pair's transient push, so Row(SP) is
      // valid scratch for the gathered slot row.
      Value *Scratch = Row(SP);
      size_t RowStride;
      const size_t Disp = slotRow(Offset, RowStride);
      cacheLoadRow(Scratch, Req.CacheBase + Disp, RowStride, Kind, Lanes);
      Value *Lv = Row(SP - 1);
      if (!arithRows(Lv, Scratch, Lanes,
                     [](float A, float B) { return A + B; }))
        for (unsigned L = 0; L < Lanes; ++L)
          Lv[L] = interp::opAdd(Lv[L], Scratch[L]);
      break;
    }
    case FusedOp::F_CacheLoadMul: {
      if (!UseCache)
        TRAP("cache read without a loaded cache in '" + C.Name + "'");
      const TypeKind Kind = static_cast<TypeKind>(In.C);
      const unsigned Offset = static_cast<unsigned>(In.B);
      if (!Bounds.inBounds(Offset, Kind))
        TRAP("cache read past the layout in '" + C.Name + "'");
      Value *Scratch = Row(SP);
      size_t RowStride;
      const size_t Disp = slotRow(Offset, RowStride);
      cacheLoadRow(Scratch, Req.CacheBase + Disp, RowStride, Kind, Lanes);
      Value *Lv = Row(SP - 1);
      if (!arithRows(Lv, Scratch, Lanes,
                     [](float A, float B) { return A * B; }))
        for (unsigned L = 0; L < Lanes; ++L)
          Lv[L] = interp::opMul(Lv[L], Scratch[L]);
      break;
    }
    case FusedOp::F_CacheLoadStore: {
      if (!UseCache)
        TRAP("cache read without a loaded cache in '" + C.Name + "'");
      const TypeKind Kind = static_cast<TypeKind>(In.C);
      const unsigned Offset = static_cast<unsigned>(In.B);
      if (!Bounds.inBounds(Offset, Kind))
        TRAP("cache read past the layout in '" + C.Name + "'");
      size_t RowStride;
      const size_t Disp = slotRow(Offset, RowStride);
      if (!CurMask) {
        cacheLoadRow(LocalRow(In.A2), Req.CacheBase + Disp, RowStride, Kind,
                     Lanes);
      } else {
        Value *D = LocalRow(In.A2);
        for (unsigned L = 0; L < Lanes; ++L)
          if (CurMask[L])
            D[L] = CacheView::loadRaw(Req.CacheBase + Disp + L * RowStride,
                                      Kind);
      }
      break;
    }
    case FusedOp::F_CacheLoadRet: {
      if (!UseCache)
        TRAP("cache read without a loaded cache in '" + C.Name + "'");
      const TypeKind Kind = static_cast<TypeKind>(In.C);
      const unsigned Offset = static_cast<unsigned>(In.B);
      if (!Bounds.inBounds(Offset, Kind))
        TRAP("cache read past the layout in '" + C.Name + "'");
      if (MaskDepth > 0)
        DIVERGE();
      size_t RowStride;
      const size_t Disp = slotRow(Offset, RowStride);
      cacheLoadRow(Req.Results, Req.CacheBase + Disp, RowStride, Kind, Lanes);
      Result.InstructionsExecuted = Executed;
      Result.BatchDispatches = Dispatched;
      return Result;
    }
    case FusedOp::F_Jump: {
      // The only forward unconditional jump the compiler emits is the
      // else-skip ending a then-arm. Under a divergent frame for that
      // exact diamond it transitions execution to the else arm instead
      // of jumping; everything else (loop back-edges, skips under a
      // uniform outcome) jumps in lockstep.
      if (MaskDepth > 0) {
        MaskFrame &F = BatchMasks[MaskDepth - 1];
        if (F.InThen && In.A == F.Join) {
          F.Active.swap(F.Pending);
          std::swap(F.ActiveCount, F.PendingCount);
          F.InThen = false;
          CurMask = F.Active.data();
          ActiveCount = F.ActiveCount;
          ++IpIdx; // falls into the else arm (or straight onto the join)
          continue;
        }
      }
      IpIdx = static_cast<size_t>(In.A);
      continue;
    }
    case FusedOp::F_JumpIfFalse:
    case FusedOp::F_LtJf:
    case FusedOp::F_LeJf:
    case FusedOp::F_GtJf:
    case FusedOp::F_GeJf: {
      // Evaluate the condition over the *active* lanes only: masked-off
      // garbage must never influence control flow, and divergence means
      // "the active lanes disagree".
      size_t Target;
      unsigned TrueCount = 0;
      const unsigned ActiveTotal = CurMask ? ActiveCount : Lanes;
      if (In.Op == FusedOp::F_JumpIfFalse) {
        Target = static_cast<size_t>(In.A);
        const Value *S = Row(--SP);
        for (unsigned L = 0; L < Lanes; ++L) {
          const uint8_t B = (!CurMask || CurMask[L]) && S[L].asBool() ? 1 : 0;
          CondScratch[L] = B;
          TrueCount += B;
        }
      } else {
        Target = static_cast<size_t>(In.A2);
        const Value *Rv = Row(--SP);
        const Value *Lv = Row(--SP);
        bool (*Cmp)(const Value &, const Value &) =
            In.Op == FusedOp::F_LtJf   ? interp::cmpLt
            : In.Op == FusedOp::F_LeJf ? interp::cmpLe
            : In.Op == FusedOp::F_GtJf ? interp::cmpGt
                                       : interp::cmpGe;
        for (unsigned L = 0; L < Lanes; ++L) {
          const uint8_t B =
              (!CurMask || CurMask[L]) && Cmp(Lv[L], Rv[L]) ? 1 : 0;
          CondScratch[L] = B;
          TrueCount += B;
        }
      }
      if (TrueCount == ActiveTotal) { // uniformly true: fall through
        ++IpIdx;
        continue;
      }
      if (TrueCount == 0) { // uniformly false: jump in lockstep
        IpIdx = Target;
        continue;
      }
      const int32_t Join = C.BranchJoin.empty() ? -1 : C.BranchJoin[IpIdx];
      if (Join < 0)
        DIVERGE(); // a divergent loop exit or return-bearing diamond
      // Push a mask frame: the then-lanes run first; the else mask waits
      // in Pending until the else-skip transition (and reconverges unused
      // for an if without an else arm).
      if (BatchMasks.size() <= MaskDepth)
        BatchMasks.emplace_back();
      MaskFrame &F = BatchMasks[MaskDepth];
      F.Active.assign(CondScratch.begin(), CondScratch.end());
      F.Pending.resize(Lanes);
      if (MaskDepth == 0) {
        for (unsigned L = 0; L < Lanes; ++L)
          F.Pending[L] = static_cast<uint8_t>(!CondScratch[L]);
      } else {
        const uint8_t *Parent = BatchMasks[MaskDepth - 1].Active.data();
        for (unsigned L = 0; L < Lanes; ++L)
          F.Pending[L] = static_cast<uint8_t>(Parent[L] && !CondScratch[L]);
      }
      F.Join = Join;
      F.InThen = true;
      F.ActiveCount = TrueCount;
      F.PendingCount = ActiveTotal - TrueCount;
      ++MaskDepth;
      CurMask = F.Active.data();
      ActiveCount = TrueCount;
      ++IpIdx;
      continue;
    }
    case FusedOp::F_OpCount:
      TRAP("corrupt opcode in decoded chunk '" + C.Name + "'");
    }
    ++IpIdx;
  }

  // Fell off the end: every lane halts with a void result, matching the
  // scalar interpreters. (Reconvergence at an end-of-code join needs no
  // pops — every lane gets the same void result regardless of masks.)
  for (unsigned L = 0; L < Lanes; ++L)
    Req.Results[L] = Value::makeVoid();
  Result.InstructionsExecuted = Executed;
  Result.BatchDispatches = Dispatched;
  return Result;
}

#undef DIVERGE
#undef TRAP
