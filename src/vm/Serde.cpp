//===- vm/Serde.cpp - Value and Chunk binary serde ---------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Serde.h"

#include "lang/Builtins.h"

#include <vector>

using namespace dspec;

namespace {

bool validTypeKind(uint8_t Raw) {
  return Raw <= static_cast<uint8_t>(TypeKind::TK_Vec4);
}

bool validOpcode(uint8_t Raw) {
  return Raw <= static_cast<uint8_t>(OpCode::OC_ReturnVoid);
}

/// Guards a count field read from untrusted data: each element needs at
/// least \p MinElementBytes more input, so a count larger than that is a
/// lie about data we do not have — reject it before allocating or
/// looping on it.
bool plausibleCount(ByteReader &Reader, uint32_t Count,
                    size_t MinElementBytes, const char *What) {
  if (static_cast<uint64_t>(Count) * MinElementBytes > Reader.remaining()) {
    Reader.fail(std::string(What) + " count " + std::to_string(Count) +
                " exceeds the remaining data");
    return false;
  }
  return true;
}

} // namespace

void dspec::serializeValue(ByteWriter &Writer, const Value &V) {
  Writer.writeU8(static_cast<uint8_t>(V.Kind));
  for (float Component : V.F)
    Writer.writeF32(Component);
  Writer.writeI32(V.I);
}

Value dspec::deserializeValue(ByteReader &Reader) {
  Value Out;
  uint8_t RawKind = Reader.readU8();
  if (!validTypeKind(RawKind)) {
    Reader.fail("invalid value type tag " + std::to_string(RawKind));
    return Value::makeVoid();
  }
  Out.Kind = static_cast<TypeKind>(RawKind);
  for (float &Component : Out.F)
    Component = Reader.readF32();
  Out.I = Reader.readI32();
  return Reader.ok() ? Out : Value::makeVoid();
}

void dspec::serializeChunk(ByteWriter &Writer, const Chunk &C) {
  Writer.writeString(C.Name);
  Writer.writeU32(static_cast<uint32_t>(C.Code.size()));
  for (const Instr &In : C.Code) {
    Writer.writeU8(static_cast<uint8_t>(In.Op));
    Writer.writeI32(In.A);
    Writer.writeI32(In.B);
    Writer.writeI32(In.C);
  }
  Writer.writeU32(static_cast<uint32_t>(C.Constants.size()));
  for (const Value &V : C.Constants)
    serializeValue(Writer, V);
  Writer.writeU32(static_cast<uint32_t>(C.LocalTypes.size()));
  for (TypeKind Kind : C.LocalTypes)
    Writer.writeU8(static_cast<uint8_t>(Kind));
  Writer.writeU32(C.NumParams);
  Writer.writeU8(static_cast<uint8_t>(C.ReturnType.kind()));
  Writer.writeU32(C.CacheSlotCount);
  Writer.writeU32(C.CacheBytes);
}

bool dspec::deserializeChunk(ByteReader &Reader, Chunk &Out,
                             std::string &Error) {
  Out = Chunk();
  Out.Name = Reader.readString();

  uint32_t CodeCount = Reader.readU32();
  if (Reader.ok() && plausibleCount(Reader, CodeCount, 13, "instruction")) {
    Out.Code.reserve(CodeCount);
    for (uint32_t I = 0; I < CodeCount && Reader.ok(); ++I) {
      Instr In;
      uint8_t RawOp = Reader.readU8();
      if (!validOpcode(RawOp)) {
        Reader.fail("invalid opcode " + std::to_string(RawOp) +
                    " in instruction " + std::to_string(I));
        break;
      }
      In.Op = static_cast<OpCode>(RawOp);
      In.A = Reader.readI32();
      In.B = Reader.readI32();
      In.C = Reader.readI32();
      Out.Code.push_back(In);
    }
  }

  uint32_t ConstCount = Reader.readU32();
  if (Reader.ok() && plausibleCount(Reader, ConstCount, 21, "constant")) {
    Out.Constants.reserve(ConstCount);
    for (uint32_t I = 0; I < ConstCount && Reader.ok(); ++I)
      Out.Constants.push_back(deserializeValue(Reader));
  }

  uint32_t LocalCount = Reader.readU32();
  if (Reader.ok() && plausibleCount(Reader, LocalCount, 1, "local")) {
    Out.LocalTypes.reserve(LocalCount);
    for (uint32_t I = 0; I < LocalCount && Reader.ok(); ++I) {
      uint8_t RawKind = Reader.readU8();
      if (!validTypeKind(RawKind)) {
        Reader.fail("invalid local type tag " + std::to_string(RawKind));
        break;
      }
      Out.LocalTypes.push_back(static_cast<TypeKind>(RawKind));
    }
  }

  Out.NumParams = Reader.readU32();
  uint8_t RawReturn = Reader.readU8();
  if (Reader.ok() && !validTypeKind(RawReturn))
    Reader.fail("invalid return type tag " + std::to_string(RawReturn));
  else
    Out.ReturnType = Type(static_cast<TypeKind>(RawReturn));
  Out.CacheSlotCount = Reader.readU32();
  Out.CacheBytes = Reader.readU32();

  if (!Reader.ok()) {
    Error = "malformed chunk: " + Reader.error();
    return false;
  }
  return verifyChunk(Out, Error);
}

bool dspec::verifyChunk(const Chunk &C, std::string &Error) {
  const size_t N = C.Code.size();
  const size_t NumBuiltins = allBuiltins().size();

  auto Fail = [&](size_t IP, const std::string &Message) {
    Error = "chunk '" + C.Name + "' fails verification at instruction " +
            std::to_string(IP) + ": " + Message;
    return false;
  };

  if (C.NumParams > C.numLocals())
    return Fail(0, "parameter count exceeds the local count");

  // Abstract stack depth per instruction: -1 = not yet reached. Every
  // path reaching an instruction must agree on the depth, which our
  // compiler guarantees and which makes underflow statically decidable.
  std::vector<int> Depth(N, -1);
  std::vector<size_t> Worklist;
  if (N > 0) {
    Depth[0] = 0;
    Worklist.push_back(0);
  }

  auto Flow = [&](size_t Target, int D, size_t From) {
    if (Target > N)
      return Fail(From, "jump target " + std::to_string(Target) +
                            " is out of range");
    if (Target == N)
      return true; // falling off the end halts with a void result
    if (Depth[Target] == -1) {
      Depth[Target] = D;
      Worklist.push_back(Target);
    } else if (Depth[Target] != D) {
      return Fail(From, "inconsistent stack depth at join point " +
                            std::to_string(Target));
    }
    return true;
  };

  while (!Worklist.empty()) {
    size_t IP = Worklist.back();
    Worklist.pop_back();
    const Instr &In = C.Code[IP];
    int D = Depth[IP];
    int Pops = 0, Pushes = 0;
    bool Terminal = false;
    size_t JumpTarget = SIZE_MAX;

    switch (In.Op) {
    case OpCode::OC_Const:
      if (In.A < 0 || static_cast<size_t>(In.A) >= C.Constants.size())
        return Fail(IP, "constant index out of range");
      Pushes = 1;
      break;
    case OpCode::OC_LoadLocal:
      if (In.A < 0 || static_cast<unsigned>(In.A) >= C.numLocals())
        return Fail(IP, "local index out of range");
      Pushes = 1;
      break;
    case OpCode::OC_StoreLocal:
      if (In.A < 0 || static_cast<unsigned>(In.A) >= C.numLocals())
        return Fail(IP, "local index out of range");
      Pops = 1;
      break;
    case OpCode::OC_Convert:
      if (In.A < 0 || !validTypeKind(static_cast<uint8_t>(In.A)))
        return Fail(IP, "invalid conversion target type");
      Pops = 1;
      Pushes = 1;
      break;
    case OpCode::OC_Pop:
      Pops = 1;
      break;
    case OpCode::OC_Neg:
    case OpCode::OC_Not:
      Pops = 1;
      Pushes = 1;
      break;
    case OpCode::OC_Add:
    case OpCode::OC_Sub:
    case OpCode::OC_Mul:
    case OpCode::OC_Div:
    case OpCode::OC_Mod:
    case OpCode::OC_Lt:
    case OpCode::OC_Le:
    case OpCode::OC_Gt:
    case OpCode::OC_Ge:
    case OpCode::OC_Eq:
    case OpCode::OC_Ne:
    case OpCode::OC_And:
    case OpCode::OC_Or:
      Pops = 2;
      Pushes = 1;
      break;
    case OpCode::OC_Select:
      Pops = 3;
      Pushes = 1;
      break;
    case OpCode::OC_Jump:
      if (In.A < 0)
        return Fail(IP, "negative jump target");
      JumpTarget = static_cast<size_t>(In.A);
      Terminal = true; // no fall-through
      break;
    case OpCode::OC_JumpIfFalse:
      if (In.A < 0)
        return Fail(IP, "negative jump target");
      Pops = 1;
      JumpTarget = static_cast<size_t>(In.A);
      break;
    case OpCode::OC_CallBuiltin: {
      if (In.A < 0 || static_cast<size_t>(In.A) >= NumBuiltins)
        return Fail(IP, "unknown builtin id");
      const BuiltinInfo &Info =
          getBuiltinInfo(static_cast<BuiltinId>(In.A));
      if (In.B < 0 ||
          static_cast<size_t>(In.B) != Info.ParamTypes.size())
        return Fail(IP, std::string("builtin '") + Info.Name +
                            "' argument count mismatch");
      Pops = In.B;
      Pushes = 1;
      break;
    }
    case OpCode::OC_Member:
      if (In.A < 0 || In.A > 3)
        return Fail(IP, "vector component index out of range");
      Pops = 1;
      Pushes = 1;
      break;
    case OpCode::OC_CacheLoad:
    case OpCode::OC_CacheStore: {
      if (In.B < 0 || In.C < 0 || !validTypeKind(static_cast<uint8_t>(In.C)))
        return Fail(IP, "invalid cache slot type");
      Type SlotType(static_cast<TypeKind>(In.C));
      if (SlotType.isVoid())
        return Fail(IP, "void cache slot");
      if (static_cast<uint64_t>(In.B) + SlotType.sizeInBytes() >
          C.CacheBytes)
        return Fail(IP, "cache access past the chunk's declared layout");
      if (In.A < 0 || static_cast<unsigned>(In.A) >= C.CacheSlotCount)
        return Fail(IP, "cache slot index out of range");
      if (In.Op == OpCode::OC_CacheLoad) {
        Pushes = 1;
      } else {
        // The stored value stays on the stack: net zero, but the store
        // reads the top, so one element must exist.
        if (D < 1)
          return Fail(IP, "cache store on an empty stack");
      }
      break;
    }
    case OpCode::OC_Return:
      Pops = 1;
      Terminal = true;
      break;
    case OpCode::OC_ReturnVoid:
      Terminal = true;
      break;
    }

    if (D < Pops)
      return Fail(IP, "stack underflow (depth " + std::to_string(D) +
                          ", pops " + std::to_string(Pops) + ")");
    int After = D - Pops + Pushes;

    if (JumpTarget != SIZE_MAX && !Flow(JumpTarget, After, IP))
      return false;
    if (!Terminal && !Flow(IP + 1, After, IP))
      return false;
  }

  return true;
}
