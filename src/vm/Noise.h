//===- vm/Noise.h - Gradient noise library ----------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic Perlin-style gradient noise library — the expensive
/// "noise functions" of the shaders' math library (the paper's shaders 3,
/// 4, and 5 owe their up-to-100x speedups to caching noise values). All
/// functions are pure and reproducible across runs.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_NOISE_H
#define DATASPEC_VM_NOISE_H

namespace dspec {

/// 3-D gradient noise in roughly [-1, 1].
float perlinNoise3(float X, float Y, float Z);

/// 1-D convenience wrapper.
inline float perlinNoise1(float X) { return perlinNoise3(X, 0.37f, 0.73f); }

/// 2-D convenience wrapper.
inline float perlinNoise2(float X, float Y) {
  return perlinNoise3(X, Y, 0.5f);
}

/// Fractal Brownian motion: \p Octaves octaves of noise with frequency
/// ratio \p Lacunarity and amplitude ratio \p Gain.
float fbm3(float X, float Y, float Z, int Octaves, float Lacunarity,
           float Gain);

/// Turbulence: sum of absolute noise over \p Octaves octaves.
float turbulence3(float X, float Y, float Z, int Octaves);

} // namespace dspec

#endif // DATASPEC_VM_NOISE_H
