//===- vm/ExecChunk.cpp - Decoded, fused execution form ----------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/ExecChunk.h"

#include "lang/Builtins.h"
#include "vm/Serde.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace dspec;

const char *dspec::fusedOpName(FusedOp Op) {
  if (!isSuperinstruction(Op))
    return opcodeName(static_cast<OpCode>(Op));
  switch (Op) {
  case FusedOp::F_ConstAdd:
    return "const+add";
  case FusedOp::F_ConstMul:
    return "const+mul";
  case FusedOp::F_LoadLoad:
    return "load+load";
  case FusedOp::F_StoreLoad:
    return "store+load";
  case FusedOp::F_LoadCall:
    return "load+call";
  case FusedOp::F_CacheLoadAdd:
    return "cload+add";
  case FusedOp::F_CacheLoadMul:
    return "cload+mul";
  case FusedOp::F_CacheLoadStore:
    return "cload+store";
  case FusedOp::F_CacheLoadRet:
    return "cload+ret";
  case FusedOp::F_LtJf:
    return "lt+jfalse";
  case FusedOp::F_LeJf:
    return "le+jfalse";
  case FusedOp::F_GtJf:
    return "gt+jfalse";
  case FusedOp::F_GeJf:
    return "ge+jfalse";
  default:
    return "?";
  }
}

namespace {

/// Maximum abstract stack depth over every reachable path. The chunk has
/// already passed verifyChunk, which guarantees consistent depths at join
/// points and no underflow, so this pass cannot fail.
unsigned computeMaxStack(const Chunk &C) {
  const size_t N = C.Code.size();
  std::vector<int> Depth(N, -1);
  std::vector<size_t> Worklist;
  if (N > 0) {
    Depth[0] = 0;
    Worklist.push_back(0);
  }
  int Max = 0;

  auto Flow = [&](size_t Target, int D) {
    if (Target >= N)
      return;
    if (Depth[Target] == -1) {
      Depth[Target] = D;
      Worklist.push_back(Target);
    }
  };

  while (!Worklist.empty()) {
    size_t IP = Worklist.back();
    Worklist.pop_back();
    const Instr &In = C.Code[IP];
    int D = Depth[IP];
    int After = D;
    bool Terminal = false;
    size_t JumpTarget = SIZE_MAX;

    switch (In.Op) {
    case OpCode::OC_Const:
    case OpCode::OC_LoadLocal:
    case OpCode::OC_CacheLoad:
      After = D + 1;
      break;
    case OpCode::OC_StoreLocal:
    case OpCode::OC_Pop:
      After = D - 1;
      break;
    case OpCode::OC_Convert:
    case OpCode::OC_Neg:
    case OpCode::OC_Not:
    case OpCode::OC_Member:
    case OpCode::OC_CacheStore:
      break; // net zero
    case OpCode::OC_Add:
    case OpCode::OC_Sub:
    case OpCode::OC_Mul:
    case OpCode::OC_Div:
    case OpCode::OC_Mod:
    case OpCode::OC_Lt:
    case OpCode::OC_Le:
    case OpCode::OC_Gt:
    case OpCode::OC_Ge:
    case OpCode::OC_Eq:
    case OpCode::OC_Ne:
    case OpCode::OC_And:
    case OpCode::OC_Or:
      After = D - 1;
      break;
    case OpCode::OC_Select:
      After = D - 2;
      break;
    case OpCode::OC_Jump:
      JumpTarget = static_cast<size_t>(In.A);
      Terminal = true;
      break;
    case OpCode::OC_JumpIfFalse:
      After = D - 1;
      JumpTarget = static_cast<size_t>(In.A);
      break;
    case OpCode::OC_CallBuiltin:
      After = D - In.B + 1;
      break;
    case OpCode::OC_Return:
    case OpCode::OC_ReturnVoid:
      Terminal = true;
      break;
    }

    Max = std::max(Max, D + 1); // peak while executing this instruction
    Max = std::max(Max, After);
    if (JumpTarget != SIZE_MAX)
      Flow(JumpTarget, After);
    if (!Terminal)
      Flow(IP + 1, After);
  }
  return static_cast<unsigned>(Max);
}

/// Tries to combine the pair (\p First, \p Second) into one
/// superinstruction; returns true and fills \p Out on a match.
bool fusePair(const Instr &First, const Instr &Second, ExecInstr &Out) {
  auto Second2 = [&]() {
    Out.A2 = Second.A;
    Out.B2 = Second.B;
    Out.C2 = Second.C;
  };
  switch (First.Op) {
  case OpCode::OC_Const:
    if (Second.Op == OpCode::OC_Add)
      Out.Op = FusedOp::F_ConstAdd;
    else if (Second.Op == OpCode::OC_Mul)
      Out.Op = FusedOp::F_ConstMul;
    else
      return false;
    return true;
  case OpCode::OC_LoadLocal:
    if (Second.Op == OpCode::OC_LoadLocal) {
      Out.Op = FusedOp::F_LoadLoad;
      Second2();
      return true;
    }
    if (Second.Op == OpCode::OC_CallBuiltin) {
      Out.Op = FusedOp::F_LoadCall;
      Second2();
      return true;
    }
    return false;
  case OpCode::OC_StoreLocal:
    if (Second.Op != OpCode::OC_LoadLocal)
      return false;
    Out.Op = FusedOp::F_StoreLoad;
    Second2();
    return true;
  case OpCode::OC_CacheLoad:
    switch (Second.Op) {
    case OpCode::OC_Add:
      Out.Op = FusedOp::F_CacheLoadAdd;
      return true;
    case OpCode::OC_Mul:
      Out.Op = FusedOp::F_CacheLoadMul;
      return true;
    case OpCode::OC_StoreLocal:
      Out.Op = FusedOp::F_CacheLoadStore;
      Second2();
      return true;
    case OpCode::OC_Return:
      Out.Op = FusedOp::F_CacheLoadRet;
      return true;
    default:
      return false;
    }
  case OpCode::OC_Lt:
  case OpCode::OC_Le:
  case OpCode::OC_Gt:
  case OpCode::OC_Ge:
    if (Second.Op != OpCode::OC_JumpIfFalse)
      return false;
    switch (First.Op) {
    case OpCode::OC_Lt:
      Out.Op = FusedOp::F_LtJf;
      break;
    case OpCode::OC_Le:
      Out.Op = FusedOp::F_LeJf;
      break;
    case OpCode::OC_Gt:
      Out.Op = FusedOp::F_GtJf;
      break;
    default:
      Out.Op = FusedOp::F_GeJf;
      break;
    }
    Second2(); // A2 = jump target (old index; remapped by the caller)
    return true;
  default:
    return false;
  }
}

/// True if the decoded instruction carries a jump target that needs
/// remapping, returning a pointer to the operand holding it.
int32_t *jumpOperand(ExecInstr &In) {
  switch (In.Op) {
  case FusedOp::F_Jump:
  case FusedOp::F_JumpIfFalse:
    return &In.A;
  case FusedOp::F_LtJf:
  case FusedOp::F_LeJf:
  case FusedOp::F_GtJf:
  case FusedOp::F_GeJf:
    return &In.A2;
  default:
    return nullptr;
  }
}

/// Decoded jump target of \p In, or -1 if it is not a jump.
int32_t decodedTarget(const ExecInstr &In) {
  switch (In.Op) {
  case FusedOp::F_Jump:
  case FusedOp::F_JumpIfFalse:
    return In.A;
  case FusedOp::F_LtJf:
  case FusedOp::F_LeJf:
  case FusedOp::F_GtJf:
  case FusedOp::F_GeJf:
    return In.A2;
  default:
    return -1;
  }
}

bool isCondBranch(FusedOp Op) {
  switch (Op) {
  case FusedOp::F_JumpIfFalse:
  case FusedOp::F_LtJf:
  case FusedOp::F_LeJf:
  case FusedOp::F_GtJf:
  case FusedOp::F_GeJf:
    return true;
  default:
    return false;
  }
}

/// Operand-stack pops a conditional branch performs before deciding:
/// JumpIfFalse pops its condition, the fused compare+jf pairs pop both
/// compare operands.
int condBranchPops(FusedOp Op) {
  return Op == FusedOp::F_JumpIfFalse ? 1 : 2;
}

/// Abstract operand-stack depth on entry to every *decoded* instruction
/// (index Code.size() is the fall-off-the-end depth); -1 if unreachable.
/// The source chunk already passed verifyChunk, so depths are consistent
/// at join points — this is the same abstract interpretation run over the
/// fused stream, used by the diamond classifier's stack-neutrality check.
std::vector<int> decodedDepths(const ExecChunk &C) {
  const size_t N = C.Code.size();
  std::vector<int> Depth(N + 1, -1);
  std::vector<size_t> Worklist;
  if (N > 0) {
    Depth[0] = 0;
    Worklist.push_back(0);
  }

  auto Flow = [&](size_t Target, int D) {
    if (Target > N)
      return;
    if (Depth[Target] == -1) {
      Depth[Target] = D;
      if (Target < N)
        Worklist.push_back(Target);
    }
  };

  while (!Worklist.empty()) {
    size_t IP = Worklist.back();
    Worklist.pop_back();
    const ExecInstr &In = C.Code[IP];
    int D = Depth[IP];
    int After = D;
    bool Terminal = false;
    int32_t JumpTarget = -1;

    switch (In.Op) {
    case FusedOp::F_Const:
    case FusedOp::F_LoadLocal:
    case FusedOp::F_CacheLoad:
      After = D + 1;
      break;
    case FusedOp::F_StoreLocal:
    case FusedOp::F_Pop:
      After = D - 1;
      break;
    case FusedOp::F_Convert:
    case FusedOp::F_Neg:
    case FusedOp::F_Not:
    case FusedOp::F_Member:
    case FusedOp::F_CacheStore:
    case FusedOp::F_ConstAdd:
    case FusedOp::F_ConstMul:
    case FusedOp::F_StoreLoad:
    case FusedOp::F_CacheLoadAdd:
    case FusedOp::F_CacheLoadMul:
    case FusedOp::F_CacheLoadStore:
      break; // net zero
    case FusedOp::F_Add:
    case FusedOp::F_Sub:
    case FusedOp::F_Mul:
    case FusedOp::F_Div:
    case FusedOp::F_Mod:
    case FusedOp::F_Lt:
    case FusedOp::F_Le:
    case FusedOp::F_Gt:
    case FusedOp::F_Ge:
    case FusedOp::F_Eq:
    case FusedOp::F_Ne:
    case FusedOp::F_And:
    case FusedOp::F_Or:
      After = D - 1;
      break;
    case FusedOp::F_Select:
      After = D - 2;
      break;
    case FusedOp::F_LoadLoad:
      After = D + 2;
      break;
    case FusedOp::F_Jump:
      JumpTarget = In.A;
      Terminal = true;
      break;
    case FusedOp::F_JumpIfFalse:
      After = D - 1;
      JumpTarget = In.A;
      break;
    case FusedOp::F_LtJf:
    case FusedOp::F_LeJf:
    case FusedOp::F_GtJf:
    case FusedOp::F_GeJf:
      After = D - 2;
      JumpTarget = In.A2;
      break;
    case FusedOp::F_CallBuiltin:
      After = D - In.B + 1;
      break;
    case FusedOp::F_LoadCall:
      After = D + 2 - In.B2;
      break;
    case FusedOp::F_Return:
    case FusedOp::F_ReturnVoid:
    case FusedOp::F_CacheLoadRet:
      Terminal = true;
      break;
    case FusedOp::F_OpCount:
      break;
    }

    if (JumpTarget >= 0)
      Flow(static_cast<size_t>(JumpTarget), After);
    if (!Terminal)
      Flow(IP + 1, After);
  }
  return Depth;
}

/// Decides whether the conditional branch at decoded index \p I (forward
/// target \p Target) heads a maskable diamond; on success fills \p Join
/// with the reconvergence index. See ExecChunk::BranchJoin for the
/// criteria and why each one is load-bearing.
bool classifyDiamond(const ExecChunk &C, const std::vector<int> &Depth,
                     size_t I, int32_t Target, int32_t &Join) {
  const size_t N = C.Code.size();
  if (Target < 0 || static_cast<size_t>(Target) <= I)
    return false; // Backward conditional: a loop header, never masked.

  // If the instruction just before the else target is a forward
  // unconditional jump to or past it, this is an if/else and that
  // else-skip's target is the reconvergence point; otherwise the branch
  // target itself is (if without else).
  const size_t T = static_cast<size_t>(Target);
  Join = Target;
  if (T >= 1 && T - 1 > I) {
    const ExecInstr &Skip = C.Code[T - 1];
    if (Skip.Op == FusedOp::F_Jump && Skip.A >= Target)
      Join = Skip.A;
  }
  if (static_cast<size_t>(Join) > N)
    return false;

  // Both arms may leave the region only through the join: no returns
  // (they would strand masked-off lanes) and every inner jump must land
  // inside (I, Join]. Backward jumps *within* the region are inner loops
  // and are fine — their own exit branches classify separately, and the
  // runtime bails if one actually diverges.
  for (size_t P = I + 1; P < static_cast<size_t>(Join); ++P) {
    const ExecInstr &Arm = C.Code[P];
    if (Arm.Op == FusedOp::F_Return || Arm.Op == FusedOp::F_ReturnVoid ||
        Arm.Op == FusedOp::F_CacheLoadRet)
      return false;
    int32_t Q = decodedTarget(Arm);
    if (Q >= 0 && (static_cast<size_t>(Q) <= I || Q > Join))
      return false;
  }

  // Stack-neutral: the depth at the join must equal the depth right
  // after the branch pops its condition. Batched stack pushes write all
  // lanes unmasked, so a diamond that left a value on the stack would
  // let one arm clobber the other's row — classification forbids it.
  if (Depth[I] < 0 ||
      Depth[static_cast<size_t>(Join)] != Depth[I] - condBranchPops(C.Code[I].Op))
    return false;
  return true;
}

} // namespace

ExecChunk dspec::buildExecChunk(const Chunk &C, bool Fuse) {
  ExecChunk Out;
  std::string Error;
  if (!verifyChunk(C, Error))
    return Out; // Valid stays false; the caller falls back to VM::run.

  Out.Name = C.Name;
  Out.Constants = C.Constants;
  Out.LocalTypes = C.LocalTypes;
  Out.NumParams = C.NumParams;
  Out.CacheSlotCount = C.CacheSlotCount;
  Out.CacheBytes = C.CacheBytes;
  Out.MaxStack = computeMaxStack(C);

  const size_t N = C.Code.size();

  // Jump-target set and the static safety flags.
  std::vector<bool> IsTarget(N + 1, false);
  Out.StraightLine = true;
  for (const Instr &In : C.Code) {
    if (In.Op == OpCode::OC_Jump || In.Op == OpCode::OC_JumpIfFalse) {
      Out.StraightLine = false;
      IsTarget[static_cast<size_t>(In.A)] = true;
    }
    if (In.Op == OpCode::OC_CallBuiltin &&
        getBuiltinInfo(static_cast<BuiltinId>(In.A)).HasGlobalEffect)
      Out.HasEffects = true;
  }
  // Effect order is the only thing the masked batched tier cannot
  // reproduce; every other chunk at least *attempts* batching and bails
  // per-tile if unmaskable control flow actually diverges.
  Out.BatchSafe = !Out.HasEffects;

  // Decode with fusion. A pair is only fused when its second instruction
  // is not a jump target (jumping to the first of a fused pair is fine:
  // fall-through would execute both anyway).
  std::vector<int32_t> OldToNew(N + 1, -1);
  Out.Code.reserve(N);
  size_t I = 0;
  while (I < N) {
    const Instr &In = C.Code[I];
    ExecInstr E;
    E.A = In.A;
    E.B = In.B;
    E.C = In.C;
    OldToNew[I] = static_cast<int32_t>(Out.Code.size());
    if (Fuse && I + 1 < N && !IsTarget[I + 1] &&
        fusePair(In, C.Code[I + 1], E)) {
      I += 2;
    } else {
      E.Op = static_cast<FusedOp>(In.Op);
      I += 1;
    }
    if (E.Op == FusedOp::F_Const || E.Op == FusedOp::F_ConstAdd ||
        E.Op == FusedOp::F_ConstMul)
      E.K = &Out.Constants[E.A];
    Out.Code.push_back(E);
  }
  OldToNew[N] = static_cast<int32_t>(Out.Code.size());

  // Remap jump operands from source indices to decoded indices. Every
  // target maps: verifyChunk bounds it, and fusion skipped pairs whose
  // second half is targeted.
  for (ExecInstr &E : Out.Code)
    if (int32_t *Target = jumpOperand(E)) {
      assert(*Target >= 0 && static_cast<size_t>(*Target) <= N &&
             OldToNew[*Target] >= 0 && "jump into the middle of a fused pair");
      *Target = OldToNew[*Target];
    }

  // Loop census and maskable-diamond classification over the decoded
  // stream (targets are decoded indices from here on).
  bool AnyCond = false;
  for (size_t I = 0; I < Out.Code.size(); ++I) {
    int32_t T = decodedTarget(Out.Code[I]);
    if (T >= 0 && static_cast<size_t>(T) <= I)
      Out.HasLoops = true;
    if (isCondBranch(Out.Code[I].Op))
      AnyCond = true;
  }
  if (AnyCond) {
    const std::vector<int> Depth = decodedDepths(Out);
    Out.BranchJoin.assign(Out.Code.size(), -1);
    for (size_t I = 0; I < Out.Code.size(); ++I) {
      if (!isCondBranch(Out.Code[I].Op))
        continue;
      int32_t Join = -1;
      if (classifyDiamond(Out, Depth, I, decodedTarget(Out.Code[I]), Join)) {
        Out.BranchJoin[I] = Join;
        ++Out.MaskableBranches;
      } else {
        ++Out.UnmaskableBranches;
      }
    }
  }

  Out.Valid = true;
  return Out;
}

std::vector<unsigned> dspec::opcodeHistogram(const ExecChunk &C) {
  std::vector<unsigned> Counts(kNumFusedOps, 0);
  for (const ExecInstr &In : C.Code)
    ++Counts[static_cast<unsigned>(In.Op)];
  return Counts;
}

std::vector<std::pair<const char *, unsigned>>
dspec::fusedHistogram(const ExecChunk &C) {
  std::vector<unsigned> Counts = opcodeHistogram(C);
  std::vector<std::pair<const char *, unsigned>> Rows;
  for (unsigned Op = kNumBaseOps; Op < kNumFusedOps; ++Op)
    if (Counts[Op] > 0)
      Rows.emplace_back(fusedOpName(static_cast<FusedOp>(Op)), Counts[Op]);
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const auto &L, const auto &R) {
                     return L.second > R.second;
                   });
  return Rows;
}

std::string ExecChunk::disassemble() const {
  std::ostringstream OS;
  OS << Name << " (decoded, " << Code.size() << " instrs, max stack "
     << MaxStack << (BatchSafe ? ", batch-safe" : "") << "):\n";
  for (size_t I = 0; I < Code.size(); ++I) {
    const ExecInstr &In = Code[I];
    OS << "  " << I << ": " << fusedOpName(In.Op);
    OS << " " << In.A << " " << In.B << " " << In.C;
    if (isSuperinstruction(In.Op))
      OS << " | " << In.A2 << " " << In.B2 << " " << In.C2;
    OS << "\n";
  }
  return OS.str();
}
