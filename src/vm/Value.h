//===- vm/Value.h - Runtime values ------------------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's tagged runtime value: int, float, bool, or vec2/3/4. Scalars
/// occupy component 0 of the payload; equality is exact (the equivalence
/// tests rely on loader/reader/original computing bit-identical floats,
/// which they do because they execute the same operations).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_VALUE_H
#define DATASPEC_VM_VALUE_H

#include "lang/Type.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace dspec {

/// A runtime value.
struct Value {
  TypeKind Kind = TypeKind::TK_Void;
  float F[4] = {0, 0, 0, 0};
  int32_t I = 0;

  static Value makeVoid() { return Value(); }

  static Value makeInt(int32_t V) {
    Value Out;
    Out.Kind = TypeKind::TK_Int;
    Out.I = V;
    return Out;
  }

  static Value makeBool(bool V) {
    Value Out;
    Out.Kind = TypeKind::TK_Bool;
    Out.I = V ? 1 : 0;
    return Out;
  }

  static Value makeFloat(float V) {
    Value Out;
    Out.Kind = TypeKind::TK_Float;
    Out.F[0] = V;
    return Out;
  }

  static Value makeVec2(float X, float Y) {
    Value Out;
    Out.Kind = TypeKind::TK_Vec2;
    Out.F[0] = X;
    Out.F[1] = Y;
    return Out;
  }

  static Value makeVec3(float X, float Y, float Z) {
    Value Out;
    Out.Kind = TypeKind::TK_Vec3;
    Out.F[0] = X;
    Out.F[1] = Y;
    Out.F[2] = Z;
    return Out;
  }

  static Value makeVec4(float X, float Y, float Z, float W) {
    Value Out;
    Out.Kind = TypeKind::TK_Vec4;
    Out.F[0] = X;
    Out.F[1] = Y;
    Out.F[2] = Z;
    Out.F[3] = W;
    return Out;
  }

  /// Zero value of the given type (dsc's default initialization).
  static Value zeroOf(Type T) {
    Value Out;
    Out.Kind = T.kind();
    return Out;
  }

  bool isInt() const { return Kind == TypeKind::TK_Int; }
  bool isBool() const { return Kind == TypeKind::TK_Bool; }
  bool isFloat() const { return Kind == TypeKind::TK_Float; }
  bool isVector() const {
    return Kind == TypeKind::TK_Vec2 || Kind == TypeKind::TK_Vec3 ||
           Kind == TypeKind::TK_Vec4;
  }

  unsigned width() const {
    switch (Kind) {
    case TypeKind::TK_Vec2:
      return 2;
    case TypeKind::TK_Vec3:
      return 3;
    case TypeKind::TK_Vec4:
      return 4;
    default:
      return 1;
    }
  }

  int32_t asInt() const {
    assert(isInt() && "not an int");
    return I;
  }

  bool asBool() const {
    assert(isBool() && "not a bool");
    return I != 0;
  }

  /// Numeric scalar as float (ints promote).
  float asFloat() const {
    if (isInt())
      return static_cast<float>(I);
    assert(isFloat() && "not a numeric scalar");
    return F[0];
  }

  /// Converts to \p T (the implicit int->float conversion plus identity).
  Value convertTo(Type T) const;

  /// Exact structural equality.
  bool equals(const Value &RHS) const;

  /// Debug rendering, e.g. "vec3(1, 2, 3)".
  std::string str() const;
};

} // namespace dspec

#endif // DATASPEC_VM_VALUE_H
