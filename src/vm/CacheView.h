//===- vm/CacheView.h - Packed cache buffer view ----------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-owning view over one specialization instance's packed cache: a
/// raw byte buffer whose typed slots live at the byte offsets computed by
/// the specializer's CacheLayout. This is the runtime realization of the
/// paper's Figure 8 byte counts — a float slot really is 4 bytes, a vec3
/// slot 12 — instead of an array of tagged boxes. Cache instructions
/// carry (offset, type), so loads and stores are single bounds-checked
/// memcpys with no tag dispatch on the hot path.
///
/// Views are cheap value objects. The bytes they point at are typically
/// one pixel's stride inside a CacheArena (see engine/CacheArena.h), but
/// any buffer of at least the layout's totalBytes() works.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_CACHEVIEW_H
#define DATASPEC_VM_CACHEVIEW_H

#include "vm/Value.h"

#include <cstring>

namespace dspec {

/// A typed window onto one packed cache instance.
class CacheView {
public:
  CacheView() = default;
  CacheView(unsigned char *Data, unsigned SizeBytes)
      : Bytes(Data), Size(SizeBytes) {}

  bool valid() const { return Bytes != nullptr || Size == 0; }
  unsigned sizeInBytes() const { return Size; }
  unsigned char *data() { return Bytes; }
  const unsigned char *data() const { return Bytes; }

  /// True iff a slot of \p Kind at byte \p Offset lies inside the buffer.
  bool inBounds(unsigned Offset, TypeKind Kind) const {
    unsigned Width = Type(Kind).sizeInBytes();
    return Offset + Width <= Size && Width != 0;
  }

  /// Reads the slot of \p Kind at \p Offset. The caller must have
  /// bounds-checked via inBounds.
  Value load(unsigned Offset, TypeKind Kind) const {
    Value Out;
    Out.Kind = Kind;
    switch (Kind) {
    case TypeKind::TK_Bool:
    case TypeKind::TK_Int:
      std::memcpy(&Out.I, Bytes + Offset, sizeof(int32_t));
      break;
    case TypeKind::TK_Float:
      std::memcpy(&Out.F[0], Bytes + Offset, sizeof(float));
      break;
    case TypeKind::TK_Vec2:
      std::memcpy(Out.F, Bytes + Offset, 2 * sizeof(float));
      break;
    case TypeKind::TK_Vec3:
      std::memcpy(Out.F, Bytes + Offset, 3 * sizeof(float));
      break;
    case TypeKind::TK_Vec4:
      std::memcpy(Out.F, Bytes + Offset, 4 * sizeof(float));
      break;
    case TypeKind::TK_Void:
      break;
    }
    return Out;
  }

  /// Writes \p V into the slot at \p Offset. \p V's runtime kind selects
  /// the byte width; the caller must have bounds-checked via inBounds and
  /// verified the kind matches the layout's slot type.
  void store(unsigned Offset, const Value &V) {
    switch (V.Kind) {
    case TypeKind::TK_Bool:
    case TypeKind::TK_Int:
      std::memcpy(Bytes + Offset, &V.I, sizeof(int32_t));
      break;
    case TypeKind::TK_Float:
      std::memcpy(Bytes + Offset, &V.F[0], sizeof(float));
      break;
    case TypeKind::TK_Vec2:
      std::memcpy(Bytes + Offset, V.F, 2 * sizeof(float));
      break;
    case TypeKind::TK_Vec3:
      std::memcpy(Bytes + Offset, V.F, 3 * sizeof(float));
      break;
    case TypeKind::TK_Vec4:
      std::memcpy(Bytes + Offset, V.F, 4 * sizeof(float));
      break;
    case TypeKind::TK_Void:
      break;
    }
  }

private:
  unsigned char *Bytes = nullptr;
  unsigned Size = 0;
};

} // namespace dspec

#endif // DATASPEC_VM_CACHEVIEW_H
