//===- vm/CacheView.h - Packed cache buffer view ----------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-owning view over one specialization instance's packed cache: a
/// raw byte buffer whose typed slots live at the byte offsets computed by
/// the specializer's CacheLayout. This is the runtime realization of the
/// paper's Figure 8 byte counts — a float slot really is 4 bytes, a vec3
/// slot 12 — instead of an array of tagged boxes. Cache instructions
/// carry (offset, type), so loads and stores are single bounds-checked
/// memcpys with no tag dispatch on the hot path.
///
/// Two orthogonal extensions over a plain pointer+size:
///
///  - Read-only views. A view built from a const buffer (the reader-pass
///    path) has no store pointer; every execution tier traps a cache
///    store against it instead of silently writing through a loader-less
///    pass. readOnly() is the tiers' test.
///
///  - Mapped addressing. The CacheArena can arrange its bytes slot-major
///    or tile-blocked (engine/ArenaLayout.h) while bytecode keeps using
///    canonical pixel-major offsets. A mapped view carries a per-4-byte-
///    word table of affine address entries; the address of logical
///    offset O is
///
///        Base(O>>2) + BlockIdx * Block(O>>2) + Lane * LaneW(O>>2)
///        + (O & 3)
///
///    where (BlockIdx, Lane) locate the view's pixel inside its block.
///    A null map is the dense fast path — identical code to the seed.
///    Bounds checks always use the *logical* stride, so a mapped view
///    traps exactly where a dense one would.
///
/// Views are cheap value objects. The bytes they point at are typically
/// one pixel's stride inside a CacheArena (see engine/CacheArena.h), but
/// any buffer of at least the layout's totalBytes() works.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_CACHEVIEW_H
#define DATASPEC_VM_CACHEVIEW_H

#include "vm/Value.h"

#include <cstdint>
#include <cstring>

namespace dspec {

/// Affine address of one canonical 4-byte word of the cache stride under
/// a non-identity arena layout: physical byte = Base + BlockIdx * Block +
/// Lane * LaneW (all relative to the arena's buffer start).
struct ArenaSlotAddr {
  uint32_t Base = 0;  ///< column start + intra-slot word displacement
  uint32_t Block = 0; ///< physical bytes per pixel block
  uint32_t LaneW = 0; ///< slot width: per-lane element stride in a column
};

/// A typed window onto one packed cache instance.
class CacheView {
public:
  CacheView() = default;
  /// Writable dense view (loader path / plain buffers).
  CacheView(unsigned char *Data, unsigned SizeBytes)
      : Bytes(Data), Mut(Data), Size(SizeBytes) {}
  /// Read-only dense view: loads succeed, stores have no target — the
  /// interpreters trap them via readOnly(). This is the constructor
  /// CacheArena's const accessor uses instead of a const_cast.
  CacheView(const unsigned char *Data, unsigned SizeBytes)
      : Bytes(Data), Size(SizeBytes) {}

  /// Writable mapped view over the whole arena buffer for the pixel at
  /// (BlockIndex, LaneIndex). \p LogicalSize is the canonical stride.
  static CacheView mapped(unsigned char *Buffer, unsigned LogicalSize,
                          const ArenaSlotAddr *AddrMap, unsigned BlockIndex,
                          unsigned LaneIndex) {
    CacheView V(Buffer, LogicalSize);
    V.Map = AddrMap;
    V.BlockIdx = BlockIndex;
    V.Lane = LaneIndex;
    return V;
  }
  /// Read-only mapped view.
  static CacheView mapped(const unsigned char *Buffer, unsigned LogicalSize,
                          const ArenaSlotAddr *AddrMap, unsigned BlockIndex,
                          unsigned LaneIndex) {
    CacheView V(Buffer, LogicalSize);
    V.Map = AddrMap;
    V.BlockIdx = BlockIndex;
    V.Lane = LaneIndex;
    return V;
  }

  bool valid() const { return Bytes != nullptr || Size == 0; }
  /// True when stores must trap: the view was built over const bytes.
  bool readOnly() const { return Mut == nullptr && Bytes != nullptr; }
  /// True when offsets resolve through an arena address map (the native
  /// tier refuses such views; it only stitches dense addressing).
  bool mappedAddressing() const { return Map != nullptr; }
  unsigned sizeInBytes() const { return Size; }
  const unsigned char *data() const { return Bytes; }
  /// Store-side base pointer; null on read-only views.
  unsigned char *mutableData() const { return Mut; }

  /// True iff a slot of \p Kind at byte \p Offset lies inside the buffer.
  /// Always judged against the logical stride, never the physical
  /// arrangement, so every layout traps identically.
  bool inBounds(unsigned Offset, TypeKind Kind) const {
    unsigned Width = Type(Kind).sizeInBytes();
    return Offset + Width <= Size && Width != 0;
  }

  /// Builds a Value of \p Kind from the raw slot bytes at \p Slot.
  /// Exactly CacheView::load with the addressing hoisted out — the
  /// batched interpreter's strided row loops use it directly.
  static Value loadRaw(const unsigned char *Slot, TypeKind Kind) {
    Value Out;
    Out.Kind = Kind;
    switch (Kind) {
    case TypeKind::TK_Bool:
    case TypeKind::TK_Int:
      std::memcpy(&Out.I, Slot, sizeof(int32_t));
      break;
    case TypeKind::TK_Float:
      std::memcpy(&Out.F[0], Slot, sizeof(float));
      break;
    case TypeKind::TK_Vec2:
      std::memcpy(Out.F, Slot, 2 * sizeof(float));
      break;
    case TypeKind::TK_Vec3:
      std::memcpy(Out.F, Slot, 3 * sizeof(float));
      break;
    case TypeKind::TK_Vec4:
      std::memcpy(Out.F, Slot, 4 * sizeof(float));
      break;
    case TypeKind::TK_Void:
      break;
    }
    return Out;
  }

  /// Writes \p V's payload bytes to \p Slot (the store-side counterpart
  /// of loadRaw).
  static void storeRaw(unsigned char *Slot, const Value &V) {
    switch (V.Kind) {
    case TypeKind::TK_Bool:
    case TypeKind::TK_Int:
      std::memcpy(Slot, &V.I, sizeof(int32_t));
      break;
    case TypeKind::TK_Float:
      std::memcpy(Slot, &V.F[0], sizeof(float));
      break;
    case TypeKind::TK_Vec2:
      std::memcpy(Slot, V.F, 2 * sizeof(float));
      break;
    case TypeKind::TK_Vec3:
      std::memcpy(Slot, V.F, 3 * sizeof(float));
      break;
    case TypeKind::TK_Vec4:
      std::memcpy(Slot, V.F, 4 * sizeof(float));
      break;
    case TypeKind::TK_Void:
      break;
    }
  }

  /// Reads the slot of \p Kind at logical byte \p Offset. The caller must
  /// have bounds-checked via inBounds.
  Value load(unsigned Offset, TypeKind Kind) const {
    return loadRaw(Bytes + displacement(Offset), Kind);
  }

  /// Writes \p V into the slot at logical \p Offset. \p V's runtime kind
  /// selects the byte width; the caller must have bounds-checked via
  /// inBounds, verified the kind matches the layout's slot type, and
  /// rejected read-only views (readOnly()) with its tier's trap.
  void store(unsigned Offset, const Value &V) {
    if (!Mut)
      return; // defense in depth: the tiers trap before reaching here
    storeRaw(Mut + displacement(Offset), V);
  }

private:
  /// Physical byte displacement of logical \p Offset from the view base.
  size_t displacement(unsigned Offset) const {
    if (!Map)
      return Offset;
    const ArenaSlotAddr &E = Map[Offset >> 2];
    return static_cast<size_t>(E.Base) +
           static_cast<size_t>(BlockIdx) * E.Block +
           static_cast<size_t>(Lane) * E.LaneW + (Offset & 3u);
  }

  const unsigned char *Bytes = nullptr; ///< load base
  unsigned char *Mut = nullptr;         ///< store base; null = read-only
  const ArenaSlotAddr *Map = nullptr;   ///< null = dense (identity) layout
  unsigned Size = 0;                    ///< logical stride in bytes
  unsigned BlockIdx = 0;
  unsigned Lane = 0;
};

} // namespace dspec

#endif // DATASPEC_VM_CACHEVIEW_H
