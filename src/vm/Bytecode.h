//===- vm/Bytecode.h - Bytecode representation ------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack-machine bytecode that original fragments, cache loaders, and
/// cache readers all compile to. The VM substitutes for the paper's native
/// compiler/CPU: execution time is proportional to the operations
/// performed, so the relative speedups the paper measures keep their
/// shape.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_BYTECODE_H
#define DATASPEC_VM_BYTECODE_H

#include "vm/Value.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dspec {

namespace jit {
struct JitProgram;

/// Per-chunk cache of the native tier's stitched code, shared across
/// copies of the owning Chunk (and across UnitCache / snapshot warm
/// starts, which copy chunks by value). Keyed by jit::chunkFingerprint
/// so a chunk mutated after stitching can never run stale code, and a
/// chunk that failed to stitch is not retried per pixel. The slot knows
/// nothing about code generation; src/jit/ fills it via
/// jit::ensureCompiled.
class JitSlot {
public:
  std::shared_ptr<const JitProgram> get(uint64_t Key) const {
    std::lock_guard<std::mutex> Lock(Mu);
    return ProgKey == Key ? Prog : nullptr;
  }
  void put(uint64_t Key, std::shared_ptr<const JitProgram> P) {
    std::lock_guard<std::mutex> Lock(Mu);
    Prog = std::move(P);
    ProgKey = Key;
  }
  bool failedFor(uint64_t Key) const {
    std::lock_guard<std::mutex> Lock(Mu);
    return HasFailed && FailKey == Key;
  }
  void markFailed(uint64_t Key) {
    std::lock_guard<std::mutex> Lock(Mu);
    HasFailed = true;
    FailKey = Key;
  }

private:
  mutable std::mutex Mu;
  std::shared_ptr<const JitProgram> Prog;
  uint64_t ProgKey = 0;
  uint64_t FailKey = 0;
  bool HasFailed = false;
};

} // namespace jit

/// VM operation codes.
enum class OpCode : uint8_t {
  OC_Const,       ///< push Constants[A]
  OC_LoadLocal,   ///< push Locals[A]
  OC_StoreLocal,  ///< Locals[A] = pop
  OC_Convert,     ///< convert top of stack to TypeKind(A)
  OC_Pop,         ///< drop top of stack
  OC_Neg,         ///< arithmetic negation
  OC_Not,         ///< boolean negation
  OC_Add,
  OC_Sub,
  OC_Mul,
  OC_Div,
  OC_Mod,
  OC_Lt,
  OC_Le,
  OC_Gt,
  OC_Ge,
  OC_Eq,
  OC_Ne,
  OC_And,
  OC_Or,
  OC_Select,      ///< pop F, T, C (bool); push C ? T : F
  OC_Jump,        ///< ip = A
  OC_JumpIfFalse, ///< pop bool; if false ip = A
  OC_CallBuiltin, ///< pop B args; push result of builtin A
  OC_Member,      ///< pop vector; push component A
  OC_CacheLoad,   ///< push cache slot A (packed: TypeKind(C) at byte B)
  OC_CacheStore,  ///< cache slot A = top of stack, which stays on the
                  ///< stack (packed: TypeKind(C) at byte offset B)
  OC_Return,      ///< pop result and halt
  OC_ReturnVoid,  ///< halt with void result
};

/// Mnemonic for disassembly.
const char *opcodeName(OpCode Op);

/// One fixed-width instruction. Cache instructions carry the full slot
/// description: A = slot index (boxed compatibility path), B = byte
/// offset in the packed cache buffer, C = the slot's TypeKind — both
/// assigned from the specialization's CacheLayout.
struct Instr {
  OpCode Op;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
};

/// A compiled function.
struct Chunk {
  std::string Name;
  std::vector<Instr> Code;
  std::vector<Value> Constants;
  /// Declared type of every local slot (parameters first); used to
  /// zero-initialize frames.
  std::vector<TypeKind> LocalTypes;
  unsigned NumParams = 0;
  Type ReturnType;
  /// Cache requirements of this chunk, derived from the CacheLayout the
  /// cache instructions were compiled against. Zero for plain fragments.
  /// The VM pre-sizes boxed caches to CacheSlotCount and traps on any
  /// access past it; packed CacheViews must span CacheBytes.
  unsigned CacheSlotCount = 0;
  unsigned CacheBytes = 0;

  /// Native-tier code cache (see jit::JitSlot). A shared_ptr so chunk
  /// copies — UnitCache hits, snapshot warm starts — reuse already
  /// stitched code instead of re-stitching per copy. Always non-null.
  std::shared_ptr<jit::JitSlot> Jit = std::make_shared<jit::JitSlot>();

  unsigned numLocals() const {
    return static_cast<unsigned>(LocalTypes.size());
  }

  /// Human-readable disassembly (for tests and debugging).
  std::string disassemble() const;
};

} // namespace dspec

#endif // DATASPEC_VM_BYTECODE_H
