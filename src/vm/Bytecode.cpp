//===- vm/Bytecode.cpp - Bytecode representation ----------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include "support/StringUtil.h"

using namespace dspec;

const char *dspec::opcodeName(OpCode Op) {
  switch (Op) {
  case OpCode::OC_Const:
    return "const";
  case OpCode::OC_LoadLocal:
    return "load";
  case OpCode::OC_StoreLocal:
    return "store";
  case OpCode::OC_Convert:
    return "convert";
  case OpCode::OC_Pop:
    return "pop";
  case OpCode::OC_Neg:
    return "neg";
  case OpCode::OC_Not:
    return "not";
  case OpCode::OC_Add:
    return "add";
  case OpCode::OC_Sub:
    return "sub";
  case OpCode::OC_Mul:
    return "mul";
  case OpCode::OC_Div:
    return "div";
  case OpCode::OC_Mod:
    return "mod";
  case OpCode::OC_Lt:
    return "lt";
  case OpCode::OC_Le:
    return "le";
  case OpCode::OC_Gt:
    return "gt";
  case OpCode::OC_Ge:
    return "ge";
  case OpCode::OC_Eq:
    return "eq";
  case OpCode::OC_Ne:
    return "ne";
  case OpCode::OC_And:
    return "and";
  case OpCode::OC_Or:
    return "or";
  case OpCode::OC_Select:
    return "select";
  case OpCode::OC_Jump:
    return "jump";
  case OpCode::OC_JumpIfFalse:
    return "jfalse";
  case OpCode::OC_CallBuiltin:
    return "call";
  case OpCode::OC_Member:
    return "member";
  case OpCode::OC_CacheLoad:
    return "cload";
  case OpCode::OC_CacheStore:
    return "cstore";
  case OpCode::OC_Return:
    return "ret";
  case OpCode::OC_ReturnVoid:
    return "retv";
  }
  return "???";
}

std::string Chunk::disassemble() const {
  std::string Out = Name + ":\n";
  for (size_t I = 0; I < Code.size(); ++I) {
    const Instr &In = Code[I];
    if (In.Op == OpCode::OC_CacheLoad || In.Op == OpCode::OC_CacheStore)
      Out += formatString("  %4zu  %-8s %d @%d %s\n", I, opcodeName(In.Op),
                          In.A, In.B,
                          Type(static_cast<TypeKind>(In.C)).name());
    else
      Out += formatString("  %4zu  %-8s %d %d\n", I, opcodeName(In.Op), In.A,
                          In.B);
  }
  return Out;
}
