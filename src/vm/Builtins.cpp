//===- vm/Builtins.cpp - Builtin semantics ----------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime implementations of the dsc builtin library (lang/Builtins.h):
/// scalar math, vector operations, rotation transforms, the noise family,
/// and the two effectful builtins used to exercise Rule 2.
///
//===----------------------------------------------------------------------===//

#include "lang/Builtins.h"
#include "vm/Noise.h"
#include "vm/VM.h"

#include <cmath>

using namespace dspec;

namespace {

Value vecOp2(const Value &A, const Value &B, float (*Op)(float, float)) {
  Value Out;
  Out.Kind = A.Kind;
  for (unsigned I = 0; I < A.width(); ++I)
    Out.F[I] = Op(A.F[I], B.F[I]);
  return Out;
}

float dot(const Value &A, const Value &B) {
  float Sum = 0;
  for (unsigned I = 0; I < A.width(); ++I)
    Sum += A.F[I] * B.F[I];
  return Sum;
}

Value normalize(const Value &V) {
  float Len = std::sqrt(dot(V, V));
  Value Out = V;
  if (Len == 0.0f)
    return Out;
  for (unsigned I = 0; I < V.width(); ++I)
    Out.F[I] = V.F[I] / Len;
  return Out;
}

Value mixVec(const Value &A, const Value &B, float T) {
  Value Out = A;
  for (unsigned I = 0; I < A.width(); ++I)
    Out.F[I] = A.F[I] + (B.F[I] - A.F[I]) * T;
  return Out;
}

float smoothstepf(float E0, float E1, float X) {
  if (E0 == E1)
    return X < E0 ? 0.0f : 1.0f;
  float T = (X - E0) / (E1 - E0);
  T = T < 0.0f ? 0.0f : (T > 1.0f ? 1.0f : T);
  return T * T * (3.0f - 2.0f * T);
}

Value rotate(const Value &V, float Angle, unsigned Axis) {
  float C = std::cos(Angle);
  float S = std::sin(Angle);
  float X = V.F[0], Y = V.F[1], Z = V.F[2];
  switch (Axis) {
  case 0:
    return Value::makeVec3(X, C * Y - S * Z, S * Y + C * Z);
  case 1:
    return Value::makeVec3(C * X + S * Z, Y, -S * X + C * Z);
  default:
    return Value::makeVec3(C * X - S * Y, S * X + C * Y, Z);
  }
}

} // namespace

namespace dspec {

Value callBuiltinImpl(uint16_t Id, const Value *A, VM &Machine) {
  switch (static_cast<BuiltinId>(Id)) {
  case BuiltinId::BI_SqrtF:
    return Value::makeFloat(std::sqrt(A[0].asFloat()));
  case BuiltinId::BI_AbsF:
    return Value::makeFloat(std::fabs(A[0].asFloat()));
  case BuiltinId::BI_AbsI:
    return Value::makeInt(A[0].I < 0 ? -A[0].I : A[0].I);
  case BuiltinId::BI_FloorF:
    return Value::makeFloat(std::floor(A[0].asFloat()));
  case BuiltinId::BI_CeilF:
    return Value::makeFloat(std::ceil(A[0].asFloat()));
  case BuiltinId::BI_FractF: {
    float X = A[0].asFloat();
    return Value::makeFloat(X - std::floor(X));
  }
  case BuiltinId::BI_SinF:
    return Value::makeFloat(std::sin(A[0].asFloat()));
  case BuiltinId::BI_CosF:
    return Value::makeFloat(std::cos(A[0].asFloat()));
  case BuiltinId::BI_TanF:
    return Value::makeFloat(std::tan(A[0].asFloat()));
  case BuiltinId::BI_ExpF:
    return Value::makeFloat(std::exp(A[0].asFloat()));
  case BuiltinId::BI_LogF:
    return Value::makeFloat(std::log(A[0].asFloat()));
  case BuiltinId::BI_PowF:
    return Value::makeFloat(std::pow(A[0].asFloat(), A[1].asFloat()));
  case BuiltinId::BI_MinF:
    return Value::makeFloat(std::fmin(A[0].asFloat(), A[1].asFloat()));
  case BuiltinId::BI_MinI:
    return Value::makeInt(A[0].I < A[1].I ? A[0].I : A[1].I);
  case BuiltinId::BI_MaxF:
    return Value::makeFloat(std::fmax(A[0].asFloat(), A[1].asFloat()));
  case BuiltinId::BI_MaxI:
    return Value::makeInt(A[0].I > A[1].I ? A[0].I : A[1].I);
  case BuiltinId::BI_ClampF: {
    float X = A[0].asFloat(), Lo = A[1].asFloat(), Hi = A[2].asFloat();
    return Value::makeFloat(X < Lo ? Lo : (X > Hi ? Hi : X));
  }
  case BuiltinId::BI_MixF: {
    float X = A[0].asFloat(), Y = A[1].asFloat(), T = A[2].asFloat();
    return Value::makeFloat(X + (Y - X) * T);
  }
  case BuiltinId::BI_StepF:
    return Value::makeFloat(A[1].asFloat() < A[0].asFloat() ? 0.0f : 1.0f);
  case BuiltinId::BI_SmoothStepF:
    return Value::makeFloat(
        smoothstepf(A[0].asFloat(), A[1].asFloat(), A[2].asFloat()));
  case BuiltinId::BI_ModF:
    return Value::makeFloat(std::fmod(A[0].asFloat(), A[1].asFloat()));
  case BuiltinId::BI_ToInt:
    return Value::makeInt(static_cast<int32_t>(A[0].asFloat()));
  case BuiltinId::BI_ToFloat:
    return Value::makeFloat(static_cast<float>(A[0].I));
  case BuiltinId::BI_Vec2:
    return Value::makeVec2(A[0].asFloat(), A[1].asFloat());
  case BuiltinId::BI_Vec3:
    return Value::makeVec3(A[0].asFloat(), A[1].asFloat(), A[2].asFloat());
  case BuiltinId::BI_Vec3Splat: {
    float X = A[0].asFloat();
    return Value::makeVec3(X, X, X);
  }
  case BuiltinId::BI_Vec4:
    return Value::makeVec4(A[0].asFloat(), A[1].asFloat(), A[2].asFloat(),
                           A[3].asFloat());
  case BuiltinId::BI_Vec4FromVec3:
    return Value::makeVec4(A[0].F[0], A[0].F[1], A[0].F[2], A[1].asFloat());
  case BuiltinId::BI_DotV2:
  case BuiltinId::BI_DotV3:
  case BuiltinId::BI_DotV4:
    return Value::makeFloat(dot(A[0], A[1]));
  case BuiltinId::BI_CrossV3: {
    const Value &X = A[0], &Y = A[1];
    return Value::makeVec3(X.F[1] * Y.F[2] - X.F[2] * Y.F[1],
                           X.F[2] * Y.F[0] - X.F[0] * Y.F[2],
                           X.F[0] * Y.F[1] - X.F[1] * Y.F[0]);
  }
  case BuiltinId::BI_LengthV2:
  case BuiltinId::BI_LengthV3:
  case BuiltinId::BI_LengthV4:
    return Value::makeFloat(std::sqrt(dot(A[0], A[0])));
  case BuiltinId::BI_NormalizeV2:
  case BuiltinId::BI_NormalizeV3:
  case BuiltinId::BI_NormalizeV4:
    return normalize(A[0]);
  case BuiltinId::BI_DistanceV3: {
    Value Diff = vecOp2(A[0], A[1], [](float X, float Y) { return X - Y; });
    return Value::makeFloat(std::sqrt(dot(Diff, Diff)));
  }
  case BuiltinId::BI_ReflectV3: {
    // reflect(I, N) = I - 2*dot(N, I)*N
    float D = 2.0f * dot(A[1], A[0]);
    return Value::makeVec3(A[0].F[0] - D * A[1].F[0],
                           A[0].F[1] - D * A[1].F[1],
                           A[0].F[2] - D * A[1].F[2]);
  }
  case BuiltinId::BI_FaceForwardV3: {
    // faceforward(N, I): N flipped to oppose I.
    bool Flip = dot(A[1], A[0]) > 0.0f;
    if (!Flip)
      return A[0];
    return Value::makeVec3(-A[0].F[0], -A[0].F[1], -A[0].F[2]);
  }
  case BuiltinId::BI_MixV2:
  case BuiltinId::BI_MixV3:
  case BuiltinId::BI_MixV4:
    return mixVec(A[0], A[1], A[2].asFloat());
  case BuiltinId::BI_ClampV3: {
    float Lo = A[1].asFloat(), Hi = A[2].asFloat();
    Value Out = A[0];
    for (unsigned I = 0; I < 3; ++I)
      Out.F[I] = Out.F[I] < Lo ? Lo : (Out.F[I] > Hi ? Hi : Out.F[I]);
    return Out;
  }
  case BuiltinId::BI_MinV3:
    return vecOp2(A[0], A[1], [](float X, float Y) { return std::fmin(X, Y); });
  case BuiltinId::BI_MaxV3:
    return vecOp2(A[0], A[1], [](float X, float Y) { return std::fmax(X, Y); });
  case BuiltinId::BI_RotateXV3:
    return rotate(A[0], A[1].asFloat(), 0);
  case BuiltinId::BI_RotateYV3:
    return rotate(A[0], A[1].asFloat(), 1);
  case BuiltinId::BI_RotateZV3:
    return rotate(A[0], A[1].asFloat(), 2);
  case BuiltinId::BI_Noise1:
    return Value::makeFloat(perlinNoise1(A[0].asFloat()));
  case BuiltinId::BI_Noise2:
    return Value::makeFloat(perlinNoise2(A[0].F[0], A[0].F[1]));
  case BuiltinId::BI_Noise3:
    return Value::makeFloat(perlinNoise3(A[0].F[0], A[0].F[1], A[0].F[2]));
  case BuiltinId::BI_VNoise3:
    return Value::makeVec3(
        perlinNoise3(A[0].F[0], A[0].F[1], A[0].F[2]),
        perlinNoise3(A[0].F[1] + 31.7f, A[0].F[2] + 11.3f, A[0].F[0] + 5.1f),
        perlinNoise3(A[0].F[2] + 71.9f, A[0].F[0] + 43.1f, A[0].F[1] + 9.7f));
  case BuiltinId::BI_Fbm: {
    int Octaves = A[1].I < 0 ? 0 : (A[1].I > 16 ? 16 : A[1].I);
    return Value::makeFloat(fbm3(A[0].F[0], A[0].F[1], A[0].F[2], Octaves,
                                 A[2].asFloat(), A[3].asFloat()));
  }
  case BuiltinId::BI_Turbulence: {
    int Octaves = A[1].I < 0 ? 0 : (A[1].I > 16 ? 16 : A[1].I);
    return Value::makeFloat(
        turbulence3(A[0].F[0], A[0].F[1], A[0].F[2], Octaves));
  }
  case BuiltinId::BI_Trace:
    Machine.TraceLog.push_back(A[0].asFloat());
    return Value::makeVoid();
  case BuiltinId::BI_Clock:
    return Value::makeFloat(static_cast<float>(Machine.ClockCounter++));
  }
  return Value::makeVoid();
}

} // namespace dspec
