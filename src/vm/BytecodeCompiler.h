//===- vm/BytecodeCompiler.h - AST to bytecode ------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a resolved (post-Sema) dsc function — original fragment,
/// loader, or reader — to a Chunk. Implicit int->float conversions are
/// materialized as OC_Convert at assignments, initializers, builtin
/// arguments, and returns; binary operators promote at runtime.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_BYTECODECOMPILER_H
#define DATASPEC_VM_BYTECODECOMPILER_H

#include "lang/Function.h"
#include "vm/Bytecode.h"

#include <unordered_map>

namespace dspec {

/// One-shot compiler: construct and call compile().
class BytecodeCompiler {
public:
  /// Compiles \p F. The AST must be fully resolved and type checked.
  Chunk compile(Function *F);

private:
  unsigned slotOf(const VarDecl *Var);
  void compileStmt(Stmt *S);
  void compileExpr(Expr *E);
  /// Emits a conversion if \p From and \p To differ (int->float only).
  void emitConversion(Type From, Type To);
  unsigned addConstant(Value V);
  unsigned emit(OpCode Op, int32_t A = 0, int32_t B = 0, int32_t C = 0);
  /// Accumulates the chunk's cache requirements (slot count and packed
  /// byte span) from one cache instruction.
  void noteCacheAccess(unsigned Slot, unsigned Offset, Type SlotType);
  void patchJump(unsigned InstrIndex, unsigned Target);

  Chunk Out;
  Type ReturnType;
  std::unordered_map<const VarDecl *, unsigned> SlotMap;
};

} // namespace dspec

#endif // DATASPEC_VM_BYTECODECOMPILER_H
