//===- vm/ChunkOptimizer.cpp - Bytecode peephole optimizer ------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/ChunkOptimizer.h"

#include <cmath>
#include <optional>
#include <vector>

using namespace dspec;

namespace {

/// Folds a binary operation over two scalar constants. Returns nullopt
/// for anything unsafe or non-scalar (vectors only arise via builtin
/// calls, which are never folded).
std::optional<Value> foldBinary(OpCode Op, const Value &L, const Value &R) {
  bool BothInt = L.isInt() && R.isInt();
  bool Numeric = (L.isInt() || L.isFloat()) && (R.isInt() || R.isFloat());
  bool BothBool = L.isBool() && R.isBool();

  switch (Op) {
  case OpCode::OC_Add:
    if (BothInt)
      return Value::makeInt(L.I + R.I);
    if (Numeric)
      return Value::makeFloat(L.asFloat() + R.asFloat());
    return std::nullopt;
  case OpCode::OC_Sub:
    if (BothInt)
      return Value::makeInt(L.I - R.I);
    if (Numeric)
      return Value::makeFloat(L.asFloat() - R.asFloat());
    return std::nullopt;
  case OpCode::OC_Mul:
    if (BothInt)
      return Value::makeInt(L.I * R.I);
    if (Numeric)
      return Value::makeFloat(L.asFloat() * R.asFloat());
    return std::nullopt;
  case OpCode::OC_Div:
    if (BothInt)
      return R.I == 0 ? std::nullopt // keep the runtime trap
                      : std::optional<Value>(Value::makeInt(L.I / R.I));
    if (Numeric)
      return Value::makeFloat(L.asFloat() / R.asFloat());
    return std::nullopt;
  case OpCode::OC_Mod:
    if (BothInt && R.I != 0)
      return Value::makeInt(L.I % R.I);
    return std::nullopt;
  case OpCode::OC_Lt:
    if (Numeric)
      return Value::makeBool(L.asFloat() < R.asFloat());
    return std::nullopt;
  case OpCode::OC_Le:
    if (Numeric)
      return Value::makeBool(L.asFloat() <= R.asFloat());
    return std::nullopt;
  case OpCode::OC_Gt:
    if (Numeric)
      return Value::makeBool(L.asFloat() > R.asFloat());
    return std::nullopt;
  case OpCode::OC_Ge:
    if (Numeric)
      return Value::makeBool(L.asFloat() >= R.asFloat());
    return std::nullopt;
  case OpCode::OC_Eq:
    if (Numeric)
      return Value::makeBool(L.asFloat() == R.asFloat());
    if (BothBool)
      return Value::makeBool(L.I == R.I);
    return std::nullopt;
  case OpCode::OC_Ne:
    if (Numeric)
      return Value::makeBool(L.asFloat() != R.asFloat());
    if (BothBool)
      return Value::makeBool(L.I != R.I);
    return std::nullopt;
  case OpCode::OC_And:
    if (BothBool)
      return Value::makeBool(L.I != 0 && R.I != 0);
    return std::nullopt;
  case OpCode::OC_Or:
    if (BothBool)
      return Value::makeBool(L.I != 0 || R.I != 0);
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

std::optional<Value> foldUnary(OpCode Op, const Value &V) {
  if (Op == OpCode::OC_Neg) {
    if (V.isInt())
      return Value::makeInt(-V.I);
    if (V.isFloat())
      return Value::makeFloat(-V.F[0]);
    return std::nullopt;
  }
  if (Op == OpCode::OC_Not && V.isBool())
    return Value::makeBool(V.I == 0);
  return std::nullopt;
}

bool isBinaryOp(OpCode Op) {
  switch (Op) {
  case OpCode::OC_Add:
  case OpCode::OC_Sub:
  case OpCode::OC_Mul:
  case OpCode::OC_Div:
  case OpCode::OC_Mod:
  case OpCode::OC_Lt:
  case OpCode::OC_Le:
  case OpCode::OC_Gt:
  case OpCode::OC_Ge:
  case OpCode::OC_Eq:
  case OpCode::OC_Ne:
  case OpCode::OC_And:
  case OpCode::OC_Or:
    return true;
  default:
    return false;
  }
}

/// Marks every instruction that some jump lands on; peephole windows may
/// not span such a boundary (except at their first instruction).
std::vector<char> computeJumpTargets(const Chunk &C) {
  std::vector<char> Targets(C.Code.size() + 1, 0);
  for (const Instr &In : C.Code)
    if (In.Op == OpCode::OC_Jump || In.Op == OpCode::OC_JumpIfFalse)
      if (In.A >= 0 && static_cast<size_t>(In.A) < Targets.size())
        Targets[In.A] = 1;
  return Targets;
}

/// Removes instructions marked dead (OC_Pop reused as a NOP marker is
/// too clever; we use an explicit side vector) and remaps jump targets.
void compact(Chunk &C, const std::vector<char> &Dead) {
  std::vector<int32_t> NewIndex(C.Code.size() + 1, 0);
  int32_t Next = 0;
  for (size_t I = 0; I < C.Code.size(); ++I) {
    NewIndex[I] = Next;
    if (!Dead[I])
      ++Next;
  }
  NewIndex[C.Code.size()] = Next;

  std::vector<Instr> NewCode;
  NewCode.reserve(static_cast<size_t>(Next));
  for (size_t I = 0; I < C.Code.size(); ++I) {
    if (Dead[I])
      continue;
    Instr In = C.Code[I];
    if (In.Op == OpCode::OC_Jump || In.Op == OpCode::OC_JumpIfFalse)
      In.A = NewIndex[In.A];
    NewCode.push_back(In);
  }
  C.Code = std::move(NewCode);
}

} // namespace

OptimizeStats dspec::optimizeChunk(Chunk &C) {
  OptimizeStats Stats;
  Stats.InstructionsBefore = static_cast<unsigned>(C.Code.size());

  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<char> Targets = computeJumpTargets(C);
    std::vector<char> Dead(C.Code.size(), 0);

    for (size_t I = 0; I < C.Code.size(); ++I) {
      if (Dead[I])
        continue;
      const Instr &In = C.Code[I];

      // const k; convert T        =>  const convert(k)
      if (In.Op == OpCode::OC_Const && I + 1 < C.Code.size() &&
          !Dead[I + 1] && !Targets[I + 1] &&
          C.Code[I + 1].Op == OpCode::OC_Convert) {
        Value V = C.Constants[In.A];
        Type To(static_cast<TypeKind>(C.Code[I + 1].A));
        if (V.Kind == To.kind() || (V.isInt() && To.isFloat())) {
          C.Constants.push_back(V.convertTo(To));
          C.Code[I] = {OpCode::OC_Const,
                       static_cast<int32_t>(C.Constants.size() - 1), 0};
          Dead[I + 1] = 1;
          ++Stats.ConversionsFolded;
          Changed = true;
          continue;
        }
      }

      // const k; pop              =>  (nothing)
      if (In.Op == OpCode::OC_Const && I + 1 < C.Code.size() &&
          !Dead[I + 1] && !Targets[I + 1] &&
          C.Code[I + 1].Op == OpCode::OC_Pop) {
        Dead[I] = 1;
        Dead[I + 1] = 1;
        ++Stats.PushPopsRemoved;
        Changed = true;
        continue;
      }

      // const k; neg/not          =>  const folded
      if (In.Op == OpCode::OC_Const && I + 1 < C.Code.size() &&
          !Dead[I + 1] && !Targets[I + 1]) {
        OpCode Next = C.Code[I + 1].Op;
        if (Next == OpCode::OC_Neg || Next == OpCode::OC_Not) {
          if (auto Folded = foldUnary(Next, C.Constants[In.A])) {
            C.Constants.push_back(*Folded);
            C.Code[I] = {OpCode::OC_Const,
                         static_cast<int32_t>(C.Constants.size() - 1), 0};
            Dead[I + 1] = 1;
            ++Stats.ConstantsFolded;
            Changed = true;
            continue;
          }
        }
      }

      // const a; const b; binop   =>  const folded
      if (In.Op == OpCode::OC_Const && I + 2 < C.Code.size() &&
          !Dead[I + 1] && !Dead[I + 2] && !Targets[I + 1] &&
          !Targets[I + 2] && C.Code[I + 1].Op == OpCode::OC_Const &&
          isBinaryOp(C.Code[I + 2].Op)) {
        if (auto Folded = foldBinary(C.Code[I + 2].Op, C.Constants[In.A],
                                     C.Constants[C.Code[I + 1].A])) {
          C.Constants.push_back(*Folded);
          C.Code[I] = {OpCode::OC_Const,
                       static_cast<int32_t>(C.Constants.size() - 1), 0};
          Dead[I + 1] = 1;
          Dead[I + 2] = 1;
          ++Stats.ConstantsFolded;
          Changed = true;
          continue;
        }
      }
    }

    if (Changed)
      compact(C, Dead);
  }

  Stats.InstructionsAfter = static_cast<unsigned>(C.Code.size());
  return Stats;
}
