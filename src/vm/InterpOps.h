//===- vm/InterpOps.h - Shared interpreter operation semantics --*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value-level semantics of the arithmetic and comparison opcodes,
/// shared by every execution tier (the classic switch interpreter in
/// VM.cpp and the threaded/batched fast tiers in FastInterp.cpp). The
/// bit-identical-framebuffer guarantee across tiers rests on all of them
/// calling exactly these functions in exactly the same operand order, so
/// do not duplicate or "optimize" these per tier.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_INTERPOPS_H
#define DATASPEC_VM_INTERPOPS_H

#include "vm/Value.h"

#include <string>

namespace dspec {
namespace interp {

/// Renders the " at line:col" suffix for the divide-by-zero diagnostics.
/// The compiler stamps the offending operand's SourceLoc into the unused
/// A/B operands of OC_Div / OC_Mod; chunks compiled before that carry
/// zeros and get the bare message.
inline std::string srcLocSuffix(int32_t Line, int32_t Col) {
  if (Line <= 0)
    return std::string();
  return " at " + std::to_string(Line) + ":" + std::to_string(Col);
}

/// Componentwise binary arithmetic with scalar broadcasting. Sema
/// guarantees the combinations are sensible.
template <typename FloatOp, typename IntOp>
inline Value arith(const Value &L, const Value &R, FloatOp FOp, IntOp IOp) {
  if (L.isInt() && R.isInt())
    return Value::makeInt(IOp(L.I, R.I));
  if (!L.isVector() && !R.isVector())
    return Value::makeFloat(FOp(L.asFloat(), R.asFloat()));

  Value Out;
  if (L.isVector() && R.isVector()) {
    Out.Kind = L.Kind;
    for (unsigned I = 0; I < L.width(); ++I)
      Out.F[I] = FOp(L.F[I], R.F[I]);
    return Out;
  }
  if (L.isVector()) {
    float S = R.asFloat();
    Out.Kind = L.Kind;
    for (unsigned I = 0; I < L.width(); ++I)
      Out.F[I] = FOp(L.F[I], S);
    return Out;
  }
  float S = L.asFloat();
  Out.Kind = R.Kind;
  for (unsigned I = 0; I < R.width(); ++I)
    Out.F[I] = FOp(S, R.F[I]);
  return Out;
}

template <typename Cmp>
inline Value compare(const Value &L, const Value &R, Cmp Op) {
  if (L.isInt() && R.isInt())
    return Value::makeBool(Op(static_cast<float>(L.I),
                              static_cast<float>(R.I)));
  return Value::makeBool(Op(L.asFloat(), R.asFloat()));
}

inline Value opAdd(const Value &L, const Value &R) {
  return arith(
      L, R, [](float A, float B) { return A + B; },
      [](int32_t A, int32_t B) { return A + B; });
}

inline Value opSub(const Value &L, const Value &R) {
  return arith(
      L, R, [](float A, float B) { return A - B; },
      [](int32_t A, int32_t B) { return A - B; });
}

inline Value opMul(const Value &L, const Value &R) {
  return arith(
      L, R, [](float A, float B) { return A * B; },
      [](int32_t A, int32_t B) { return A * B; });
}

/// Caller must have rejected int/int division by zero.
inline Value opDiv(const Value &L, const Value &R) {
  return arith(
      L, R, [](float A, float B) { return A / B; },
      [](int32_t A, int32_t B) { return A / B; });
}

inline Value opNeg(const Value &V) {
  if (V.isInt())
    return Value::makeInt(-V.I);
  if (V.isVector()) {
    Value Out = V;
    for (unsigned I = 0; I < V.width(); ++I)
      Out.F[I] = -V.F[I];
    return Out;
  }
  return Value::makeFloat(-V.asFloat());
}

inline Value opLt(const Value &L, const Value &R) {
  return compare(L, R, [](float A, float B) { return A < B; });
}
inline Value opLe(const Value &L, const Value &R) {
  return compare(L, R, [](float A, float B) { return A <= B; });
}
inline Value opGt(const Value &L, const Value &R) {
  return compare(L, R, [](float A, float B) { return A > B; });
}
inline Value opGe(const Value &L, const Value &R) {
  return compare(L, R, [](float A, float B) { return A >= B; });
}

inline Value opEq(const Value &L, const Value &R) {
  if (L.isBool() && R.isBool())
    return Value::makeBool(L.I == R.I);
  return compare(L, R, [](float A, float B) { return A == B; });
}

inline Value opNe(const Value &L, const Value &R) {
  if (L.isBool() && R.isBool())
    return Value::makeBool(L.I != R.I);
  return compare(L, R, [](float A, float B) { return A != B; });
}

/// Branch-condition truth of the fused compare+JumpIfFalse pairs, shared
/// by the threaded tier's scalar jumps and the batched tier's per-lane
/// uniformity/divergence decisions so both agree bit-for-bit with the
/// boxed compare + OC_JumpIfFalse sequence they replace.
inline bool cmpLt(const Value &L, const Value &R) { return opLt(L, R).I != 0; }
inline bool cmpLe(const Value &L, const Value &R) { return opLe(L, R).I != 0; }
inline bool cmpGt(const Value &L, const Value &R) { return opGt(L, R).I != 0; }
inline bool cmpGe(const Value &L, const Value &R) { return opGe(L, R).I != 0; }

} // namespace interp
} // namespace dspec

#endif // DATASPEC_VM_INTERPOPS_H
