//===- vm/Value.cpp - Runtime values ---------------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Value.h"

#include "support/StringUtil.h"

using namespace dspec;

Value Value::convertTo(Type T) const {
  if (Kind == T.kind())
    return *this;
  if (isInt() && T.isFloat())
    return makeFloat(static_cast<float>(I));
  assert(false && "invalid runtime conversion");
  return zeroOf(T);
}

bool Value::equals(const Value &RHS) const {
  if (Kind != RHS.Kind)
    return false;
  switch (Kind) {
  case TypeKind::TK_Void:
    return true;
  case TypeKind::TK_Bool:
  case TypeKind::TK_Int:
    return I == RHS.I;
  case TypeKind::TK_Float:
    return F[0] == RHS.F[0];
  case TypeKind::TK_Vec2:
    return F[0] == RHS.F[0] && F[1] == RHS.F[1];
  case TypeKind::TK_Vec3:
    return F[0] == RHS.F[0] && F[1] == RHS.F[1] && F[2] == RHS.F[2];
  case TypeKind::TK_Vec4:
    return F[0] == RHS.F[0] && F[1] == RHS.F[1] && F[2] == RHS.F[2] &&
           F[3] == RHS.F[3];
  }
  return false;
}

std::string Value::str() const {
  switch (Kind) {
  case TypeKind::TK_Void:
    return "void";
  case TypeKind::TK_Bool:
    return I ? "true" : "false";
  case TypeKind::TK_Int:
    return std::to_string(I);
  case TypeKind::TK_Float:
    return formatFloat(F[0]);
  case TypeKind::TK_Vec2:
    return formatString("vec2(%s, %s)", formatFloat(F[0]).c_str(),
                        formatFloat(F[1]).c_str());
  case TypeKind::TK_Vec3:
    return formatString("vec3(%s, %s, %s)", formatFloat(F[0]).c_str(),
                        formatFloat(F[1]).c_str(), formatFloat(F[2]).c_str());
  case TypeKind::TK_Vec4:
    return formatString("vec4(%s, %s, %s, %s)", formatFloat(F[0]).c_str(),
                        formatFloat(F[1]).c_str(), formatFloat(F[2]).c_str(),
                        formatFloat(F[3]).c_str());
  }
  return "<invalid>";
}
