//===- vm/VM.h - Bytecode interpreter ---------------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack-machine interpreter that executes compiled fragments. A run
/// optionally binds a cache: loaders write it, readers read it, plain
/// fragments ignore it. Two cache representations are supported: the
/// packed CacheView (typed slots at byte offsets, the render engine's
/// native format) and the boxed Cache (one tagged Value per slot, kept as
/// a thin compatibility adapter for single-pixel callers). Both are
/// pre-sized from the chunk's CacheLayout-derived requirements and trap
/// on accesses past the layout. Runaway programs are stopped by an
/// instruction budget; errors (division by zero, missing cache) trap with
/// a message instead of crashing.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_VM_H
#define DATASPEC_VM_VM_H

#include "vm/Bytecode.h"
#include "vm/CacheView.h"
#include "vm/ExecChunk.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dspec {

namespace jit {
struct JitProgram;
}

/// A specialization's boxed data cache: one Value per slot. Compatibility
/// representation; the render path uses packed CacheViews instead.
using Cache = std::vector<Value>;

/// Outcome of one execution.
struct ExecResult {
  Value Result;
  bool Trapped = false;
  std::string TrapMessage;
  /// Scalar tiers: instructions retired. Batched tier: *active lanes*
  /// summed per retired instruction — a lane masked off by divergence is
  /// not billed, so the instruction budget charges a divergent tile the
  /// same work a per-pixel run would have done.
  uint64_t InstructionsExecuted = 0;

  /// Batched tier only: control flow diverged across lanes at a point
  /// that cannot run under a mask (a loop exit, or a diamond carrying a
  /// return). Not an error and not a trap: results are unwritten and the
  /// caller re-runs the tile per-pixel. Mutually exclusive with Trapped.
  bool Diverged = false;
  /// Batched tier only: instruction dispatches retired (each dispatch
  /// covers up to Lanes lanes). With InstructionsExecuted this yields the
  /// tile's average active-lane fraction:
  /// InstructionsExecuted / (BatchDispatches * Lanes).
  uint64_t BatchDispatches = 0;

  bool ok() const { return !Trapped; }
};

/// One tile's worth of pixels for the batched interpreter: lane-major
/// argument values, strided packed caches, and a result slot per lane.
/// The caller (the render engine) fills identical per-lane arguments to
/// what it would pass the scalar tiers.
struct BatchRequest {
  /// Lanes x NumArgs values, lane-major: lane L's arguments start at
  /// LaneArgs + L * NumArgs.
  const Value *LaneArgs = nullptr;
  unsigned NumArgs = 0;
  unsigned Lanes = 0;
  /// Load-side cache base. Null when the chunk performs no cache access.
  /// Dense arenas (CacheMap == null): lane 0's packed bytes, lane L's
  /// cache at CacheBase + L * CacheStride. Mapped arenas: the arena
  /// buffer start; per-slot rows resolve through CacheMap.
  const unsigned char *CacheBase = nullptr;
  /// Store-side base under the same addressing. Null on a read-only pass:
  /// cache stores trap instead of writing (loader-less passes cannot
  /// silently mutate the arena).
  unsigned char *CacheStoreBase = nullptr;
  size_t CacheStride = 0;
  /// Bytes visible to each lane (the per-lane *logical* view size; must
  /// cover the chunk's CacheBytes or cache accesses trap, exactly like a
  /// too-small CacheView would).
  unsigned CacheBytes = 0;
  /// Non-null = the arena is physically slot-major/tile-blocked: the
  /// per-4-byte-word affine table (see vm/CacheView.h), its block size
  /// in pixels, and the grid pixel index of lane 0. The caller must
  /// guarantee the tile does not straddle a block
  /// (CacheArena::batchCompatible).
  const ArenaSlotAddr *CacheMap = nullptr;
  unsigned CacheBlockPixels = 1;
  unsigned CacheFirstPixel = 0;
  /// Lanes result values, written on success.
  Value *Results = nullptr;
};

/// The interpreter. Holds the global state that the effectful builtins
/// (dsc_trace / dsc_clock) touch, so Rule 2 scenarios are observable.
class VM {
public:
  /// Runs \p C on \p Args with a boxed cache. \p CacheMem may be null for
  /// fragments that perform no cache access; otherwise it is pre-sized to
  /// the chunk's CacheSlotCount and any access past the layout traps.
  ///
  /// [[deprecated]] in spirit: the boxed cache is a compatibility adapter
  /// for single-invocation callers (kept un-annotated so benchmarks can
  /// still measure it against the packed path without warnings). New code
  /// should use the CacheView overload below — it is the render engine's
  /// native representation and the only one snapshots persist.
  ExecResult run(const Chunk &C, const std::vector<Value> &Args,
                 Cache *CacheMem = nullptr);

  /// Runs \p C on \p Args against a packed cache buffer. \p View must
  /// span at least the chunk's CacheBytes; accesses outside it trap.
  ExecResult run(const Chunk &C, const std::vector<Value> &Args,
                 CacheView View);

  /// Fast tier 1: executes a decoded (and typically superinstruction-
  /// fused) chunk with direct-threaded dispatch (computed goto on
  /// GCC/Clang; a token-threaded switch under DSPEC_FORCE_SWITCH_DISPATCH
  /// or other compilers). \p C must be Valid. Bit-identical results and
  /// trap messages to the classic run() — both call the shared semantics
  /// in vm/InterpOps.h. Pass a default CacheView for cache-less chunks.
  ExecResult runThreaded(const ExecChunk &C, const std::vector<Value> &Args,
                         CacheView View = CacheView());

  /// Fast tier 2: executes one instruction stream over a whole tile of
  /// lanes — one fetch/dispatch per instruction, a strided SoA inner
  /// loop per lane. \p C must be Valid and BatchSafe (effect-free).
  ///
  /// Control flow runs GPU-warp style. Branch conditions are evaluated
  /// over the *active* lanes only; a uniform outcome takes the jump (or
  /// falls through) in lockstep exactly like the scalar tiers, so
  /// straight-line chunks and uniform loops pay nothing. A divergent
  /// conditional that heads a maskable diamond (ExecChunk::BranchJoin)
  /// pushes a mask frame: both arms execute with inactive lanes
  /// suppressed — stores to locals and cache slots are masked, masked
  /// div/mod-by-zero does not trap — and lanes reconverge at the join.
  /// Divergence at an unmaskable branch sets ExecResult::Diverged and
  /// returns with results unwritten; the caller re-runs the tile
  /// per-pixel. On a real trap (always from a lane that is active) the
  /// result carries no lane attribution — the caller re-runs the tile
  /// through the switch tier to reproduce the canonical lowest-pixel
  /// diagnostic.
  ExecResult runBatch(const ExecChunk &C, const BatchRequest &Req);

  /// Fast tier 3: executes a stitched native program (jit::compileChunk)
  /// produced from the same verified ExecChunk the threaded tier runs.
  /// Argument validation, trap messages, and instruction accounting are
  /// identical to runThreaded — the stitched code calls the same
  /// vm/InterpOps.h semantics through per-opcode helpers. Defined in
  /// src/jit/JitRuntime.cpp; never called when jit::available() is false.
  ExecResult runJit(const jit::JitProgram &P, const std::vector<Value> &Args,
                    CacheView View = CacheView());

  /// Values recorded by dsc_trace, in call order.
  const std::vector<float> &traceLog() const { return TraceLog; }
  void clearTraceLog() { TraceLog.clear(); }

  /// Aborts executions that exceed this many instructions.
  uint64_t InstructionBudget = 500'000'000;

private:
  friend Value callBuiltinImpl(uint16_t Id, const Value *Args, VM &Machine);

  ExecResult runImpl(const Chunk &C, const std::vector<Value> &Args,
                     Cache *Boxed, CacheView Packed);

  std::vector<float> TraceLog;
  uint64_t ClockCounter = 0;
  /// Frame scratch reused across runs so that per-pixel invocations do not
  /// allocate (runs are not reentrant).
  std::vector<Value> LocalsScratch;
  std::vector<Value> StackScratch;
  /// SoA frame scratch for runBatch (slot-major: slot s, lane l lives at
  /// index s * Lanes + l), likewise reused across tiles.
  std::vector<Value> BatchLocals;
  std::vector<Value> BatchStack;

  /// Divergence scratch for runBatch: one mask frame per nested divergent
  /// diamond. Active holds the current arm's lane mask (1 = active),
  /// Pending the other arm's; frames are reused across tiles so steady-
  /// state divergence allocates nothing.
  struct MaskFrame {
    std::vector<uint8_t> Active;
    std::vector<uint8_t> Pending;
    int32_t Join = 0;
    bool InThen = false;
    unsigned ActiveCount = 0;
    unsigned PendingCount = 0;
  };
  std::vector<MaskFrame> BatchMasks;
  /// Per-lane branch-condition truth scratch (runBatch).
  std::vector<uint8_t> CondScratch;
};

} // namespace dspec

#endif // DATASPEC_VM_VM_H
