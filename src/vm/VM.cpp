//===- vm/VM.cpp - Bytecode interpreter -------------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "lang/Builtins.h"
#include "vm/InterpOps.h"

#include <cmath>

using namespace dspec;

// The arith/compare semantics live in vm/InterpOps.h, shared with the
// fast tiers in FastInterp.cpp so every tier computes bit-identical
// results.
using dspec::interp::arith;
using dspec::interp::compare;

namespace dspec {
/// Implemented in Builtins.cpp.
Value callBuiltinImpl(uint16_t Id, const Value *Args, VM &Machine);
} // namespace dspec

ExecResult VM::run(const Chunk &C, const std::vector<Value> &Args,
                   Cache *CacheMem) {
  // Boxed compatibility path: pre-size to the layout's slot count so a
  // store past the layout is a trap, never a silent resize.
  if (CacheMem && CacheMem->size() < C.CacheSlotCount)
    CacheMem->resize(C.CacheSlotCount);
  return runImpl(C, Args, CacheMem, CacheView());
}

ExecResult VM::run(const Chunk &C, const std::vector<Value> &Args,
                   CacheView View) {
  return runImpl(C, Args, nullptr, View);
}

ExecResult VM::runImpl(const Chunk &C, const std::vector<Value> &Args,
                       Cache *CacheMem, CacheView Packed) {
  ExecResult Result;
  const bool UsePacked = Packed.data() != nullptr;

  auto Trap = [&](std::string Message) {
    Result.Trapped = true;
    Result.TrapMessage = std::move(Message);
  };

  if (Args.size() != C.NumParams) {
    Trap("argument count mismatch calling '" + C.Name + "'");
    return Result;
  }

  std::vector<Value> &Locals = LocalsScratch;
  Locals.resize(C.numLocals());
  for (unsigned I = 0; I < C.numLocals(); ++I)
    Locals[I] = Value::zeroOf(Type(C.LocalTypes[I]));
  for (unsigned I = 0; I < C.NumParams; ++I) {
    Value Arg = Args[I];
    if (Arg.Kind != C.LocalTypes[I]) {
      if (Arg.isInt() && C.LocalTypes[I] == TypeKind::TK_Float) {
        Arg = Value::makeFloat(static_cast<float>(Arg.I));
      } else {
        Trap("argument type mismatch calling '" + C.Name + "'");
        return Result;
      }
    }
    Locals[I] = Arg;
  }

  std::vector<Value> &Stack = StackScratch;
  Stack.clear();
  Stack.reserve(64);
  uint64_t Executed = 0;
  size_t IP = 0;

  auto Pop = [&]() {
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };

  while (IP < C.Code.size()) {
    if (++Executed > InstructionBudget) {
      Trap("instruction budget exceeded in '" + C.Name + "'");
      Result.InstructionsExecuted = Executed;
      return Result;
    }
    const Instr &In = C.Code[IP++];
    switch (In.Op) {
    case OpCode::OC_Const:
      Stack.push_back(C.Constants[In.A]);
      break;
    case OpCode::OC_LoadLocal:
      Stack.push_back(Locals[In.A]);
      break;
    case OpCode::OC_StoreLocal:
      Locals[In.A] = Pop();
      break;
    case OpCode::OC_Convert: {
      Value V = Pop();
      Stack.push_back(V.convertTo(Type(static_cast<TypeKind>(In.A))));
      break;
    }
    case OpCode::OC_Pop:
      Pop();
      break;
    case OpCode::OC_Neg: {
      Value V = Pop();
      if (V.isInt()) {
        Stack.push_back(Value::makeInt(-V.I));
      } else if (V.isVector()) {
        Value Out = V;
        for (unsigned I = 0; I < V.width(); ++I)
          Out.F[I] = -V.F[I];
        Stack.push_back(Out);
      } else {
        Stack.push_back(Value::makeFloat(-V.asFloat()));
      }
      break;
    }
    case OpCode::OC_Not: {
      Value V = Pop();
      Stack.push_back(Value::makeBool(!V.asBool()));
      break;
    }
    case OpCode::OC_Add: {
      Value R = Pop(), L = Pop();
      Stack.push_back(arith(
          L, R, [](float A, float B) { return A + B; },
          [](int32_t A, int32_t B) { return A + B; }));
      break;
    }
    case OpCode::OC_Sub: {
      Value R = Pop(), L = Pop();
      Stack.push_back(arith(
          L, R, [](float A, float B) { return A - B; },
          [](int32_t A, int32_t B) { return A - B; }));
      break;
    }
    case OpCode::OC_Mul: {
      Value R = Pop(), L = Pop();
      Stack.push_back(arith(
          L, R, [](float A, float B) { return A * B; },
          [](int32_t A, int32_t B) { return A * B; }));
      break;
    }
    case OpCode::OC_Div: {
      Value R = Pop(), L = Pop();
      if (L.isInt() && R.isInt() && R.I == 0) {
        // The compiler stamps the divisor's SourceLoc into A/B.
        Trap("integer division by zero in '" + C.Name + "'" +
             interp::srcLocSuffix(In.A, In.B));
        Result.InstructionsExecuted = Executed;
        return Result;
      }
      Stack.push_back(arith(
          L, R, [](float A, float B) { return A / B; },
          [](int32_t A, int32_t B) { return A / B; }));
      break;
    }
    case OpCode::OC_Mod: {
      Value R = Pop(), L = Pop();
      if (R.I == 0) {
        Trap("integer modulo by zero in '" + C.Name + "'" +
             interp::srcLocSuffix(In.A, In.B));
        Result.InstructionsExecuted = Executed;
        return Result;
      }
      Stack.push_back(Value::makeInt(L.I % R.I));
      break;
    }
    case OpCode::OC_Lt: {
      Value R = Pop(), L = Pop();
      Stack.push_back(compare(L, R, [](float A, float B) { return A < B; }));
      break;
    }
    case OpCode::OC_Le: {
      Value R = Pop(), L = Pop();
      Stack.push_back(compare(L, R, [](float A, float B) { return A <= B; }));
      break;
    }
    case OpCode::OC_Gt: {
      Value R = Pop(), L = Pop();
      Stack.push_back(compare(L, R, [](float A, float B) { return A > B; }));
      break;
    }
    case OpCode::OC_Ge: {
      Value R = Pop(), L = Pop();
      Stack.push_back(compare(L, R, [](float A, float B) { return A >= B; }));
      break;
    }
    case OpCode::OC_Eq: {
      Value R = Pop(), L = Pop();
      if (L.isBool() && R.isBool())
        Stack.push_back(Value::makeBool(L.I == R.I));
      else
        Stack.push_back(
            compare(L, R, [](float A, float B) { return A == B; }));
      break;
    }
    case OpCode::OC_Ne: {
      Value R = Pop(), L = Pop();
      if (L.isBool() && R.isBool())
        Stack.push_back(Value::makeBool(L.I != R.I));
      else
        Stack.push_back(
            compare(L, R, [](float A, float B) { return A != B; }));
      break;
    }
    case OpCode::OC_And: {
      Value R = Pop(), L = Pop();
      Stack.push_back(Value::makeBool(L.asBool() && R.asBool()));
      break;
    }
    case OpCode::OC_Or: {
      Value R = Pop(), L = Pop();
      Stack.push_back(Value::makeBool(L.asBool() || R.asBool()));
      break;
    }
    case OpCode::OC_Select: {
      Value F = Pop(), T = Pop(), Cond = Pop();
      Stack.push_back(Cond.asBool() ? T : F);
      break;
    }
    case OpCode::OC_Jump:
      IP = static_cast<size_t>(In.A);
      break;
    case OpCode::OC_JumpIfFalse: {
      Value Cond = Pop();
      if (!Cond.asBool())
        IP = static_cast<size_t>(In.A);
      break;
    }
    case OpCode::OC_CallBuiltin: {
      unsigned Argc = static_cast<unsigned>(In.B);
      assert(Stack.size() >= Argc && "stack underflow in builtin call");
      const Value *ArgsBegin = Stack.data() + (Stack.size() - Argc);
      Value Out =
          callBuiltinImpl(static_cast<uint16_t>(In.A), ArgsBegin, *this);
      Stack.resize(Stack.size() - Argc);
      Stack.push_back(Out);
      break;
    }
    case OpCode::OC_Member: {
      Value V = Pop();
      Stack.push_back(Value::makeFloat(V.F[In.A]));
      break;
    }
    case OpCode::OC_CacheLoad: {
      if (UsePacked) {
        TypeKind Kind = static_cast<TypeKind>(In.C);
        unsigned Offset = static_cast<unsigned>(In.B);
        if (!Packed.inBounds(Offset, Kind)) {
          Trap("cache read past the layout in '" + C.Name + "'");
          Result.InstructionsExecuted = Executed;
          return Result;
        }
        Stack.push_back(Packed.load(Offset, Kind));
        break;
      }
      if (!CacheMem || static_cast<size_t>(In.A) >= CacheMem->size()) {
        Trap("cache read without a loaded cache in '" + C.Name + "'");
        Result.InstructionsExecuted = Executed;
        return Result;
      }
      Stack.push_back((*CacheMem)[In.A]);
      break;
    }
    case OpCode::OC_CacheStore: {
      // The stored value stays on the stack.
      if (UsePacked) {
        if (Packed.readOnly()) {
          Trap("cache store to a read-only cache in '" + C.Name + "'");
          Result.InstructionsExecuted = Executed;
          return Result;
        }
        TypeKind Kind = static_cast<TypeKind>(In.C);
        unsigned Offset = static_cast<unsigned>(In.B);
        const Value &V = Stack.back();
        if (!Packed.inBounds(Offset, Kind)) {
          Trap("cache store past the layout in '" + C.Name + "'");
          Result.InstructionsExecuted = Executed;
          return Result;
        }
        if (V.Kind != Kind) {
          Trap("cache store type mismatch in '" + C.Name + "': slot is " +
               Type(Kind).name() + ", value is " + Type(V.Kind).name());
          Result.InstructionsExecuted = Executed;
          return Result;
        }
        Packed.store(Offset, V);
        break;
      }
      if (!CacheMem) {
        Trap("cache write without cache storage in '" + C.Name + "'");
        Result.InstructionsExecuted = Executed;
        return Result;
      }
      if (static_cast<size_t>(In.A) >= CacheMem->size()) {
        // A store past the pre-sized layout means the loader and the
        // CacheLayout disagree; surface it instead of corrupting the
        // Figure 8 measurements by growing the cache.
        Trap("cache store past the layout in '" + C.Name + "'");
        Result.InstructionsExecuted = Executed;
        return Result;
      }
      (*CacheMem)[In.A] = Stack.back();
      break;
    }
    case OpCode::OC_Return:
      Result.Result = Pop();
      Result.InstructionsExecuted = Executed;
      return Result;
    case OpCode::OC_ReturnVoid:
      Result.Result = Value::makeVoid();
      Result.InstructionsExecuted = Executed;
      return Result;
    }
  }

  Result.InstructionsExecuted = Executed;
  return Result;
}
