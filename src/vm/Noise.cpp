//===- vm/Noise.cpp - Gradient noise library --------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Noise.h"

#include <cmath>
#include <cstdint>

using namespace dspec;

namespace {

/// Ken Perlin's reference permutation, doubled to avoid index wrapping.
const uint8_t Perm[512] = {
    151, 160, 137, 91,  90,  15,  131, 13,  201, 95,  96,  53,  194, 233, 7,
    225, 140, 36,  103, 30,  69,  142, 8,   99,  37,  240, 21,  10,  23,  190,
    6,   148, 247, 120, 234, 75,  0,   26,  197, 62,  94,  252, 219, 203, 117,
    35,  11,  32,  57,  177, 33,  88,  237, 149, 56,  87,  174, 20,  125, 136,
    171, 168, 68,  175, 74,  165, 71,  134, 139, 48,  27,  166, 77,  146, 158,
    231, 83,  111, 229, 122, 60,  211, 133, 230, 220, 105, 92,  41,  55,  46,
    245, 40,  244, 102, 143, 54,  65,  25,  63,  161, 1,   216, 80,  73,  209,
    76,  132, 187, 208, 89,  18,  169, 200, 196, 135, 130, 116, 188, 159, 86,
    164, 100, 109, 198, 173, 186, 3,   64,  52,  217, 226, 250, 124, 123, 5,
    202, 38,  147, 118, 126, 255, 82,  85,  212, 207, 206, 59,  227, 47,  16,
    58,  17,  182, 189, 28,  42,  223, 183, 170, 213, 119, 248, 152, 2,   44,
    154, 163, 70,  221, 153, 101, 155, 167, 43,  172, 9,   129, 22,  39,  253,
    19,  98,  108, 110, 79,  113, 224, 232, 178, 185, 112, 104, 218, 246, 97,
    228, 251, 34,  242, 193, 238, 210, 144, 12,  191, 179, 162, 241, 81,  51,
    145, 235, 249, 14,  239, 107, 49,  192, 214, 31,  181, 199, 106, 157, 184,
    84,  204, 176, 115, 121, 50,  45,  127, 4,   150, 254, 138, 236, 205, 93,
    222, 114, 67,  29,  24,  72,  243, 141, 128, 195, 78,  66,  215, 61,  156,
    180,
    // repeat
    151, 160, 137, 91,  90,  15,  131, 13,  201, 95,  96,  53,  194, 233, 7,
    225, 140, 36,  103, 30,  69,  142, 8,   99,  37,  240, 21,  10,  23,  190,
    6,   148, 247, 120, 234, 75,  0,   26,  197, 62,  94,  252, 219, 203, 117,
    35,  11,  32,  57,  177, 33,  88,  237, 149, 56,  87,  174, 20,  125, 136,
    171, 168, 68,  175, 74,  165, 71,  134, 139, 48,  27,  166, 77,  146, 158,
    231, 83,  111, 229, 122, 60,  211, 133, 230, 220, 105, 92,  41,  55,  46,
    245, 40,  244, 102, 143, 54,  65,  25,  63,  161, 1,   216, 80,  73,  209,
    76,  132, 187, 208, 89,  18,  169, 200, 196, 135, 130, 116, 188, 159, 86,
    164, 100, 109, 198, 173, 186, 3,   64,  52,  217, 226, 250, 124, 123, 5,
    202, 38,  147, 118, 126, 255, 82,  85,  212, 207, 206, 59,  227, 47,  16,
    58,  17,  182, 189, 28,  42,  223, 183, 170, 213, 119, 248, 152, 2,   44,
    154, 163, 70,  221, 153, 101, 155, 167, 43,  172, 9,   129, 22,  39,  253,
    19,  98,  108, 110, 79,  113, 224, 232, 178, 185, 112, 104, 218, 246, 97,
    228, 251, 34,  242, 193, 238, 210, 144, 12,  191, 179, 162, 241, 81,  51,
    145, 235, 249, 14,  239, 107, 49,  192, 214, 31,  181, 199, 106, 157, 184,
    84,  204, 176, 115, 121, 50,  45,  127, 4,   150, 254, 138, 236, 205, 93,
    222, 114, 67,  29,  24,  72,  243, 141, 128, 195, 78,  66,  215, 61,  156,
    180};

inline float fade(float T) { return T * T * T * (T * (T * 6 - 15) + 10); }

inline float lerp(float T, float A, float B) { return A + T * (B - A); }

inline float grad(int Hash, float X, float Y, float Z) {
  int H = Hash & 15;
  float U = H < 8 ? X : Y;
  float V = H < 4 ? Y : (H == 12 || H == 14 ? X : Z);
  return ((H & 1) == 0 ? U : -U) + ((H & 2) == 0 ? V : -V);
}

} // namespace

float dspec::perlinNoise3(float X, float Y, float Z) {
  int XI = static_cast<int>(std::floor(X)) & 255;
  int YI = static_cast<int>(std::floor(Y)) & 255;
  int ZI = static_cast<int>(std::floor(Z)) & 255;
  X -= std::floor(X);
  Y -= std::floor(Y);
  Z -= std::floor(Z);
  float U = fade(X);
  float V = fade(Y);
  float W = fade(Z);

  int A = Perm[XI] + YI;
  int AA = Perm[A] + ZI;
  int AB = Perm[A + 1] + ZI;
  int B = Perm[XI + 1] + YI;
  int BA = Perm[B] + ZI;
  int BB = Perm[B + 1] + ZI;

  return lerp(
      W,
      lerp(V, lerp(U, grad(Perm[AA], X, Y, Z), grad(Perm[BA], X - 1, Y, Z)),
           lerp(U, grad(Perm[AB], X, Y - 1, Z),
                grad(Perm[BB], X - 1, Y - 1, Z))),
      lerp(V,
           lerp(U, grad(Perm[AA + 1], X, Y, Z - 1),
                grad(Perm[BA + 1], X - 1, Y, Z - 1)),
           lerp(U, grad(Perm[AB + 1], X, Y - 1, Z - 1),
                grad(Perm[BB + 1], X - 1, Y - 1, Z - 1))));
}

float dspec::fbm3(float X, float Y, float Z, int Octaves, float Lacunarity,
                  float Gain) {
  float Sum = 0.0f;
  float Amplitude = 1.0f;
  float FX = X, FY = Y, FZ = Z;
  for (int Octave = 0; Octave < Octaves; ++Octave) {
    Sum += Amplitude * perlinNoise3(FX, FY, FZ);
    FX *= Lacunarity;
    FY *= Lacunarity;
    FZ *= Lacunarity;
    Amplitude *= Gain;
  }
  return Sum;
}

float dspec::turbulence3(float X, float Y, float Z, int Octaves) {
  float Sum = 0.0f;
  float Amplitude = 1.0f;
  float FX = X, FY = Y, FZ = Z;
  for (int Octave = 0; Octave < Octaves; ++Octave) {
    Sum += Amplitude * std::fabs(perlinNoise3(FX, FY, FZ));
    FX *= 2.0f;
    FY *= 2.0f;
    FZ *= 2.0f;
    Amplitude *= 0.5f;
  }
  return Sum;
}
