//===- vm/ExecChunk.h - Decoded, fused execution form -----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast tiers' execution form of a Chunk: a decoded, flattened
/// instruction stream with pre-resolved constant-pool pointers,
/// pre-remapped jump targets, a precomputed maximum stack depth, and
/// superinstructions fused over the dominant reader idioms. An ExecChunk
/// is a derived, in-memory-only artifact — snapshots keep serializing the
/// plain Chunk (serde format v1 unchanged) and the engine re-decodes and
/// re-fuses after every load, so files written before this tier existed
/// keep working.
///
/// The FusedOp numbering mirrors OpCode one-to-one for the first
/// kNumBaseOps values, so a non-fused decode is a plain widening copy and
/// dispatch tables can be indexed directly. Fused opcodes append after
/// the mirror range; buildExecChunk chooses them with a peephole pass
/// that never fuses across a jump target (entering the middle of a pair
/// must stay addressable) and remaps every jump operand from old to new
/// indices afterward.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_EXECCHUNK_H
#define DATASPEC_VM_EXECCHUNK_H

#include "vm/Bytecode.h"

#include <utility>
#include <vector>

namespace dspec {

/// Decoded operation codes: the OpCode mirror range first (identical
/// numeric values), then the superinstructions.
enum class FusedOp : uint8_t {
  // Mirror range — keep in exact OpCode order.
  F_Const,
  F_LoadLocal,
  F_StoreLocal,
  F_Convert,
  F_Pop,
  F_Neg,
  F_Not,
  F_Add,
  F_Sub,
  F_Mul,
  F_Div,
  F_Mod,
  F_Lt,
  F_Le,
  F_Gt,
  F_Ge,
  F_Eq,
  F_Ne,
  F_And,
  F_Or,
  F_Select,
  F_Jump,
  F_JumpIfFalse,
  F_CallBuiltin,
  F_Member,
  F_CacheLoad,
  F_CacheStore,
  F_Return,
  F_ReturnVoid,
  // Superinstructions (chosen from the static pair-frequency count over
  // the gallery readers; see docs/ENGINE.md for the measured table).
  F_ConstAdd,       ///< push K; add
  F_ConstMul,       ///< push K; mul
  F_LoadLoad,       ///< push Locals[A]; push Locals[A2]
  F_StoreLoad,      ///< Locals[A] = pop; push Locals[A2]
  F_LoadCall,       ///< push Locals[A]; call builtin A2 with B2 args
  F_CacheLoadAdd,   ///< push cache slot (B, C); add
  F_CacheLoadMul,   ///< push cache slot (B, C); mul
  F_CacheLoadStore, ///< Locals[A2] = cache slot (B, C)
  F_CacheLoadRet,   ///< return cache slot (B, C)
  F_LtJf,           ///< pop R, L; if !(L < R) ip = A2
  F_LeJf,           ///< pop R, L; if !(L <= R) ip = A2
  F_GtJf,           ///< pop R, L; if !(L > R) ip = A2
  F_GeJf,           ///< pop R, L; if !(L >= R) ip = A2
  F_OpCount
};

/// Number of mirror (non-fused) operations == number of OpCodes.
constexpr unsigned kNumBaseOps =
    static_cast<unsigned>(OpCode::OC_ReturnVoid) + 1;
constexpr unsigned kNumFusedOps = static_cast<unsigned>(FusedOp::F_OpCount);

inline bool isSuperinstruction(FusedOp Op) {
  return static_cast<unsigned>(Op) >= kNumBaseOps;
}

/// Mnemonic for disassembly and the explain histogram (e.g. "cload+mul").
const char *fusedOpName(FusedOp Op);

/// One decoded instruction. A/B/C carry the first source instruction's
/// operands, A2/B2/C2 the second's (superinstructions only). K is the
/// pre-resolved constant-pool pointer for F_Const / F_ConstAdd /
/// F_ConstMul, pointing into the owning ExecChunk's Constants vector.
struct ExecInstr {
  FusedOp Op = FusedOp::F_ReturnVoid;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  int32_t A2 = 0;
  int32_t B2 = 0;
  int32_t C2 = 0;
  const Value *K = nullptr;
};

/// A Chunk decoded for the fast execution tiers. Self-contained (owns
/// copies of the constant pool and frame description) so the source
/// Chunk may be freed or mutated; non-copyable because ExecInstr::K
/// points into Constants (moving is fine — the vector's heap buffer
/// survives a move).
struct ExecChunk {
  std::string Name;
  std::vector<ExecInstr> Code;
  std::vector<Value> Constants;
  std::vector<TypeKind> LocalTypes;
  unsigned NumParams = 0;
  unsigned CacheSlotCount = 0;
  unsigned CacheBytes = 0;

  /// Maximum operand-stack depth over every execution path, computed by
  /// the same abstract interpretation the serde verifier runs. The fast
  /// tiers pre-size a flat stack to this and never bounds-check pushes.
  unsigned MaxStack = 0;

  /// False if the source chunk failed verification or decoding; callers
  /// must fall back to the classic switch interpreter (which performs
  /// its own dynamic checks) instead of executing Code.
  bool Valid = false;
  /// No jumps anywhere in the source chunk: control flow cannot diverge
  /// between pixels, so a whole batch retires every instruction in
  /// lockstep and the first Return stops all lanes together.
  bool StraightLine = false;
  /// Calls at least one builtin with a global effect (dsc_trace /
  /// dsc_clock), whose call order is observable.
  bool HasEffects = false;
  /// Valid and effect-free: eligible for pixel-batched execution. Since
  /// the batched tier gained mask-based divergent-lane execution, branchy
  /// chunks qualify too — runBatch runs maskable diamonds under a
  /// per-lane mask, takes uniform branches in lockstep, and *bails out*
  /// of the tile (ExecResult::Diverged, not a trap) when an unmaskable
  /// branch actually diverges at runtime; the engine then re-runs the
  /// tile per-pixel. Only observable effect order still forces per-pixel
  /// execution up front.
  bool BatchSafe = false;
  /// Any backward jump in the decoded stream (loops).
  bool HasLoops = false;

  /// Static branch-region classification for the batched tier, computed
  /// over the decoded stream. A conditional branch at decoded index i is
  /// a *maskable diamond* iff its region is reducible straight-line
  /// control flow: a forward target, a determinable reconvergence (join)
  /// point, no Return/ReturnVoid/CacheLoadRet inside either arm, every
  /// inner jump staying within the region, and stack-neutrality (the
  /// operand stack at the join matches the depth after the branch pops
  /// its condition), so both arms can execute under a lane mask without
  /// stranding lanes or clobbering live stack rows.
  ///
  /// BranchJoin is sized to Code.size() when the chunk has conditional
  /// branches (empty otherwise): BranchJoin[i] is the decoded join index
  /// for a maskable conditional branch at i, or -1 (unmaskable or not a
  /// conditional branch).
  std::vector<int32_t> BranchJoin;
  /// Census of conditional branches in the decoded stream; a loop exit
  /// or a return-bearing arm counts as unmaskable (it executes batched
  /// anyway, relying on runtime uniformity, with the bail-out as the
  /// safety net).
  unsigned MaskableBranches = 0;
  unsigned UnmaskableBranches = 0;

  unsigned numLocals() const {
    return static_cast<unsigned>(LocalTypes.size());
  }

  ExecChunk() = default;
  ExecChunk(const ExecChunk &) = delete;
  ExecChunk &operator=(const ExecChunk &) = delete;
  ExecChunk(ExecChunk &&) = default;
  ExecChunk &operator=(ExecChunk &&) = default;

  /// Human-readable disassembly of the decoded stream.
  std::string disassemble() const;
};

/// Decodes (and, when \p Fuse is set, superinstruction-fuses) \p C. On
/// any verification failure the result has Valid == false and empty
/// Code. Fusion never changes observable behavior: a fused pair performs
/// exactly the two source operations in order, and pairs whose second
/// instruction is a jump target are left unfused.
ExecChunk buildExecChunk(const Chunk &C, bool Fuse = true);

/// Occurrence count per opcode in \p C's decoded stream, superinstruction
/// entries included, in FusedOp order (dense, size kNumFusedOps).
std::vector<unsigned> opcodeHistogram(const ExecChunk &C);

/// The superinstruction entries of opcodeHistogram with non-zero counts,
/// as (mnemonic, count) rows for the explain output, highest count first.
std::vector<std::pair<const char *, unsigned>>
fusedHistogram(const ExecChunk &C);

} // namespace dspec

#endif // DATASPEC_VM_EXECCHUNK_H
