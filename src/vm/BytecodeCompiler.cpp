//===- vm/BytecodeCompiler.cpp - AST to bytecode ---------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/BytecodeCompiler.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <algorithm>

using namespace dspec;

unsigned BytecodeCompiler::addConstant(Value V) {
  Out.Constants.push_back(V);
  return static_cast<unsigned>(Out.Constants.size() - 1);
}

unsigned BytecodeCompiler::emit(OpCode Op, int32_t A, int32_t B, int32_t C) {
  Out.Code.push_back({Op, A, B, C});
  return static_cast<unsigned>(Out.Code.size() - 1);
}

void BytecodeCompiler::noteCacheAccess(unsigned Slot, unsigned Offset,
                                       Type SlotType) {
  Out.CacheSlotCount = std::max(Out.CacheSlotCount, Slot + 1);
  Out.CacheBytes = std::max(Out.CacheBytes, Offset + SlotType.sizeInBytes());
}

void BytecodeCompiler::patchJump(unsigned InstrIndex, unsigned Target) {
  Out.Code[InstrIndex].A = static_cast<int32_t>(Target);
}

unsigned BytecodeCompiler::slotOf(const VarDecl *Var) {
  auto It = SlotMap.find(Var);
  assert(It != SlotMap.end() && "variable was never assigned a slot");
  return It->second;
}

void BytecodeCompiler::emitConversion(Type From, Type To) {
  if (From == To)
    return;
  assert(From.isInt() && To.isFloat() && "only int->float converts");
  emit(OpCode::OC_Convert, static_cast<int32_t>(To.kind()));
}

Chunk BytecodeCompiler::compile(Function *F) {
  Out = Chunk();
  Out.Name = F->name();
  Out.ReturnType = F->returnType();
  ReturnType = F->returnType();
  Out.NumParams = static_cast<unsigned>(F->params().size());
  SlotMap.clear();

  for (VarDecl *Param : F->params()) {
    SlotMap[Param] = static_cast<unsigned>(Out.LocalTypes.size());
    Out.LocalTypes.push_back(Param->type().kind());
  }
  // Assign every local declaration a slot up front (decl identity is
  // variable identity, so shadowing works naturally).
  walkStmts(F->body(), [&](Stmt *S) {
    if (auto *Decl = dyn_cast<DeclStmt>(S)) {
      SlotMap[Decl->var()] = static_cast<unsigned>(Out.LocalTypes.size());
      Out.LocalTypes.push_back(Decl->var()->type().kind());
    }
  });

  compileStmt(F->body());
  // Falling off the end of a void function (or a malformed non-void one)
  // halts cleanly; the VM reports the void result.
  emit(OpCode::OC_ReturnVoid);
  return std::move(Out);
}

void BytecodeCompiler::compileStmt(Stmt *S) {
  switch (S->kind()) {
  case StmtKind::SK_Block:
    for (Stmt *Child : cast<BlockStmt>(S)->body())
      compileStmt(Child);
    return;
  case StmtKind::SK_Decl: {
    auto *Decl = cast<DeclStmt>(S);
    unsigned Slot = slotOf(Decl->var());
    if (Decl->init()) {
      compileExpr(Decl->init());
      emitConversion(Decl->init()->type(), Decl->var()->type());
    } else {
      emit(OpCode::OC_Const, addConstant(Value::zeroOf(Decl->var()->type())));
    }
    emit(OpCode::OC_StoreLocal, static_cast<int32_t>(Slot));
    return;
  }
  case StmtKind::SK_Assign: {
    auto *Assign = cast<AssignStmt>(S);
    compileExpr(Assign->value());
    emitConversion(Assign->value()->type(), Assign->target()->type());
    emit(OpCode::OC_StoreLocal, static_cast<int32_t>(slotOf(Assign->target())));
    return;
  }
  case StmtKind::SK_ExprStmt:
    compileExpr(cast<ExprStmt>(S)->expr());
    emit(OpCode::OC_Pop);
    return;
  case StmtKind::SK_If: {
    auto *If = cast<IfStmt>(S);
    compileExpr(If->cond());
    unsigned ToElse = emit(OpCode::OC_JumpIfFalse);
    compileStmt(If->thenStmt());
    if (If->elseStmt()) {
      unsigned ToEnd = emit(OpCode::OC_Jump);
      patchJump(ToElse, static_cast<unsigned>(Out.Code.size()));
      compileStmt(If->elseStmt());
      patchJump(ToEnd, static_cast<unsigned>(Out.Code.size()));
    } else {
      patchJump(ToElse, static_cast<unsigned>(Out.Code.size()));
    }
    return;
  }
  case StmtKind::SK_While: {
    auto *While = cast<WhileStmt>(S);
    unsigned Top = static_cast<unsigned>(Out.Code.size());
    compileExpr(While->cond());
    unsigned ToEnd = emit(OpCode::OC_JumpIfFalse);
    compileStmt(While->body());
    emit(OpCode::OC_Jump, static_cast<int32_t>(Top));
    patchJump(ToEnd, static_cast<unsigned>(Out.Code.size()));
    return;
  }
  case StmtKind::SK_Return: {
    auto *Ret = cast<ReturnStmt>(S);
    if (!Ret->value()) {
      emit(OpCode::OC_ReturnVoid);
      return;
    }
    compileExpr(Ret->value());
    emitConversion(Ret->value()->type(), ReturnType);
    emit(OpCode::OC_Return);
    return;
  }
  }
}

void BytecodeCompiler::compileExpr(Expr *E) {
  switch (E->kind()) {
  case ExprKind::EK_IntLiteral:
    emit(OpCode::OC_Const,
         addConstant(Value::makeInt(cast<IntLiteralExpr>(E)->value())));
    return;
  case ExprKind::EK_FloatLiteral:
    emit(OpCode::OC_Const,
         addConstant(Value::makeFloat(cast<FloatLiteralExpr>(E)->value())));
    return;
  case ExprKind::EK_BoolLiteral:
    emit(OpCode::OC_Const,
         addConstant(Value::makeBool(cast<BoolLiteralExpr>(E)->value())));
    return;
  case ExprKind::EK_VarRef:
    emit(OpCode::OC_LoadLocal,
         static_cast<int32_t>(slotOf(cast<VarRefExpr>(E)->decl())));
    return;
  case ExprKind::EK_Unary: {
    auto *U = cast<UnaryExpr>(E);
    compileExpr(U->operand());
    emit(U->op() == UnaryOp::UO_Neg ? OpCode::OC_Neg : OpCode::OC_Not);
    return;
  }
  case ExprKind::EK_Binary: {
    auto *B = cast<BinaryExpr>(E);
    compileExpr(B->lhs());
    compileExpr(B->rhs());
    switch (B->op()) {
    case BinaryOp::BO_Add:
      emit(OpCode::OC_Add);
      return;
    case BinaryOp::BO_Sub:
      emit(OpCode::OC_Sub);
      return;
    case BinaryOp::BO_Mul:
      emit(OpCode::OC_Mul);
      return;
    case BinaryOp::BO_Div:
      // Div/Mod can trap at runtime; their operands are otherwise unused,
      // so carry the divisor's SourceLoc (A = line, B = column) for the
      // divide-by-zero diagnostic. Serde format v1 already round-trips
      // A/B/C, so this persists through snapshots for free, and chunks
      // compiled before this carry zeros (rendered as no location).
      emit(OpCode::OC_Div, static_cast<int32_t>(B->rhs()->loc().Line),
           static_cast<int32_t>(B->rhs()->loc().Column));
      return;
    case BinaryOp::BO_Mod:
      emit(OpCode::OC_Mod, static_cast<int32_t>(B->rhs()->loc().Line),
           static_cast<int32_t>(B->rhs()->loc().Column));
      return;
    case BinaryOp::BO_Lt:
      emit(OpCode::OC_Lt);
      return;
    case BinaryOp::BO_Le:
      emit(OpCode::OC_Le);
      return;
    case BinaryOp::BO_Gt:
      emit(OpCode::OC_Gt);
      return;
    case BinaryOp::BO_Ge:
      emit(OpCode::OC_Ge);
      return;
    case BinaryOp::BO_Eq:
      emit(OpCode::OC_Eq);
      return;
    case BinaryOp::BO_Ne:
      emit(OpCode::OC_Ne);
      return;
    case BinaryOp::BO_And:
      emit(OpCode::OC_And);
      return;
    case BinaryOp::BO_Or:
      emit(OpCode::OC_Or);
      return;
    }
    return;
  }
  case ExprKind::EK_Cond: {
    // dsc's ?: is strict: all three operands evaluate (see lang/Expr.h).
    auto *C = cast<CondExpr>(E);
    compileExpr(C->cond());
    compileExpr(C->trueExpr());
    emitConversion(C->trueExpr()->type(), E->type());
    compileExpr(C->falseExpr());
    emitConversion(C->falseExpr()->type(), E->type());
    emit(OpCode::OC_Select);
    return;
  }
  case ExprKind::EK_Call: {
    auto *Call = cast<CallExpr>(E);
    const BuiltinInfo &Info = getBuiltinInfo(Call->builtin());
    assert(Call->args().size() == Info.ParamTypes.size() &&
           "builtin arity mismatch survived Sema");
    for (size_t I = 0; I < Call->args().size(); ++I) {
      compileExpr(Call->args()[I]);
      emitConversion(Call->args()[I]->type(), Info.ParamTypes[I]);
    }
    emit(OpCode::OC_CallBuiltin, static_cast<int32_t>(Call->builtin()),
         static_cast<int32_t>(Call->args().size()));
    return;
  }
  case ExprKind::EK_Member: {
    auto *M = cast<MemberExpr>(E);
    compileExpr(M->base());
    emit(OpCode::OC_Member, static_cast<int32_t>(M->componentIndex()));
    return;
  }
  case ExprKind::EK_CacheRead: {
    auto *Read = cast<CacheReadExpr>(E);
    noteCacheAccess(Read->slot(), Read->byteOffset(), Read->type());
    emit(OpCode::OC_CacheLoad, static_cast<int32_t>(Read->slot()),
         static_cast<int32_t>(Read->byteOffset()),
         static_cast<int32_t>(Read->type().kind()));
    return;
  }
  case ExprKind::EK_CacheStore: {
    auto *Store = cast<CacheStoreExpr>(E);
    compileExpr(Store->operand());
    noteCacheAccess(Store->slot(), Store->byteOffset(), Store->type());
    emit(OpCode::OC_CacheStore, static_cast<int32_t>(Store->slot()),
         static_cast<int32_t>(Store->byteOffset()),
         static_cast<int32_t>(Store->type().kind()));
    return;
  }
  }
}
