//===- vm/ChunkOptimizer.h - Bytecode peephole optimizer --------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small peephole optimizer over linear bytecode: scalar constant
/// folding (`const a; const b; add` => `const a+b`), folding of
/// conversions applied to constants, and elimination of pushes that are
/// immediately popped. Windows containing a jump target are left alone;
/// after rewriting, the chunk is compacted and all jump targets remapped.
///
/// The optimizer is semantics-preserving by construction (folds only
/// total operations — division/modulo by a zero constant is left in
/// place so it still traps at run time). It is optional infrastructure:
/// the benchmark substrate runs *unoptimized* chunks so that loader,
/// reader, and original are measured under identical execution rules.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_CHUNKOPTIMIZER_H
#define DATASPEC_VM_CHUNKOPTIMIZER_H

#include "vm/Bytecode.h"

namespace dspec {

/// Statistics of one optimization run.
struct OptimizeStats {
  unsigned ConstantsFolded = 0;
  unsigned ConversionsFolded = 0;
  unsigned PushPopsRemoved = 0;
  unsigned InstructionsBefore = 0;
  unsigned InstructionsAfter = 0;

  unsigned removed() const { return InstructionsBefore - InstructionsAfter; }
};

/// Optimizes \p C in place; iterates to a fixed point.
OptimizeStats optimizeChunk(Chunk &C);

} // namespace dspec

#endif // DATASPEC_VM_CHUNKOPTIMIZER_H
