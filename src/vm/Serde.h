//===- vm/Serde.h - Value and Chunk binary serde ----------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary serialization for runtime Values and compiled Chunks,
/// used by the snapshot subsystem to persist specialized programs across
/// processes. Deserialization treats its input as untrusted: every enum
/// is range-checked, every count is sanity-capped, and a successfully
/// decoded chunk is additionally run through verifyChunk — an abstract
/// stack-depth/operand verifier that guarantees the VM cannot underflow
/// its stack or index out of bounds executing it. A chunk that decodes
/// and verifies is safe to run; anything else produces a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_VM_SERDE_H
#define DATASPEC_VM_SERDE_H

#include "support/ByteStream.h"
#include "vm/Bytecode.h"

#include <string>

namespace dspec {

/// Bump when the encoded shape of Value or Chunk changes. Snapshots
/// record the version they were written with; readers reject mismatches.
constexpr uint32_t kChunkSerdeVersion = 1;

/// Appends \p V to \p Writer (tag + full payload; bit-exact floats).
void serializeValue(ByteWriter &Writer, const Value &V);

/// Decodes one Value. On malformed input the reader's error latches and
/// the returned value is void.
Value deserializeValue(ByteReader &Reader);

/// Appends \p C to \p Writer.
void serializeChunk(ByteWriter &Writer, const Chunk &C);

/// Decodes one Chunk and verifies it (see verifyChunk). Returns false
/// with \p Error set on malformed, truncated, or unverifiable input;
/// \p Out is unspecified in that case.
bool deserializeChunk(ByteReader &Reader, Chunk &Out, std::string &Error);

/// Structural verification of a chunk: opcodes and TypeKinds in range,
/// constant/local/jump/member/builtin operands valid, cache offsets
/// consistent with the chunk's declared CacheBytes, and a consistent
/// abstract stack depth at every instruction (so Pop never underflows).
/// Freshly compiled chunks always pass; this exists so chunks decoded
/// from untrusted bytes are safe to execute.
bool verifyChunk(const Chunk &C, std::string &Error);

} // namespace dspec

#endif // DATASPEC_VM_SERDE_H
