//===- baseline/Memoizer.h - Function-caching baseline ----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline from the paper's Section 6.2: *incremental
/// computation via function caching* (Pugh & Teitelbaum [PT89], Hoover
/// [Hoo92]). Instead of statically splitting the fragment, keep the
/// original program and a per-instance memo table keyed by the varying
/// inputs; re-use a stored result when the exact inputs recur, otherwise
/// run the whole fragment and remember the result.
///
/// The paper's point, which bench_baseline reproduces: systems that cope
/// with input changes "by dynamically checking dependence ... avoid more
/// computations than data specialization does" (an exact repeat costs one
/// table probe, cheaper than any reader), "but they lose the efficiency
/// we gain from compiling away the dependence in advance" (a *new* value
/// of the varying input — the common case while dragging a slider —
/// costs a full re-execution plus the bookkeeping).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_BASELINE_MEMOIZER_H
#define DATASPEC_BASELINE_MEMOIZER_H

#include "vm/VM.h"

#include <cstdint>
#include <vector>

namespace dspec {

/// A memo table for one fragment instance (e.g. one pixel): maps the
/// tuple of varying inputs to the fragment result. Bounded size with
/// least-recently-inserted eviction.
class MemoTable {
public:
  explicit MemoTable(unsigned Capacity = 16) : Capacity(Capacity) {}

  /// Looks up a key (the flattened varying inputs). Returns null if
  /// absent.
  const Value *lookup(const std::vector<float> &Key) const;

  /// Inserts (evicting the oldest entry when full).
  void insert(std::vector<float> Key, Value Result);

  unsigned size() const { return static_cast<unsigned>(Entries.size()); }

private:
  struct Entry {
    std::vector<float> Key;
    Value Result;
  };
  std::vector<Entry> Entries;
  unsigned Capacity;
  unsigned NextVictim = 0;
};

/// Executes a fragment with per-instance memoization on its varying
/// parameters. One MemoizedFragment serves many instances; callers pass
/// the instance's table (exactly as dataspec callers pass the instance's
/// cache).
class MemoizedFragment {
public:
  /// \p VaryingParamIndices selects which argument positions form the
  /// memo key — the same information as a data-specialization input
  /// partition.
  MemoizedFragment(Chunk Fragment, std::vector<unsigned> VaryingParamIndices)
      : Fragment(std::move(Fragment)),
        VaryingIndices(std::move(VaryingParamIndices)) {}

  /// Runs with memoization. On a hit, no code executes. \p WasHit
  /// reports which path was taken (may be null).
  ExecResult run(VM &Machine, const std::vector<Value> &Args,
                 MemoTable &Table, bool *WasHit = nullptr) const;

  const Chunk &fragment() const { return Fragment; }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  std::vector<float> makeKey(const std::vector<Value> &Args) const;

  Chunk Fragment;
  std::vector<unsigned> VaryingIndices;
  mutable uint64_t Hits = 0;
  mutable uint64_t Misses = 0;
};

} // namespace dspec

#endif // DATASPEC_BASELINE_MEMOIZER_H
