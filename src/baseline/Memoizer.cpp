//===- baseline/Memoizer.cpp - Function-caching baseline --------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/Memoizer.h"

using namespace dspec;

const Value *MemoTable::lookup(const std::vector<float> &Key) const {
  for (const Entry &E : Entries)
    if (E.Key == Key)
      return &E.Result;
  return nullptr;
}

void MemoTable::insert(std::vector<float> Key, Value Result) {
  if (Entries.size() < Capacity) {
    Entries.push_back({std::move(Key), Result});
    return;
  }
  // Bounded table: overwrite entries round-robin (oldest first).
  Entries[NextVictim] = {std::move(Key), Result};
  NextVictim = (NextVictim + 1) % Capacity;
}

std::vector<float>
MemoizedFragment::makeKey(const std::vector<Value> &Args) const {
  std::vector<float> Key;
  Key.reserve(VaryingIndices.size() * 4);
  for (unsigned Index : VaryingIndices) {
    const Value &V = Args[Index];
    switch (V.Kind) {
    case TypeKind::TK_Int:
    case TypeKind::TK_Bool:
      Key.push_back(static_cast<float>(V.I));
      break;
    default:
      for (unsigned C = 0; C < V.width(); ++C)
        Key.push_back(V.F[C]);
      break;
    }
  }
  return Key;
}

ExecResult MemoizedFragment::run(VM &Machine, const std::vector<Value> &Args,
                                 MemoTable &Table, bool *WasHit) const {
  std::vector<float> Key = makeKey(Args);
  if (const Value *Cached = Table.lookup(Key)) {
    ++Hits;
    if (WasHit)
      *WasHit = true;
    ExecResult Result;
    Result.Result = *Cached;
    return Result;
  }
  ++Misses;
  if (WasHit)
    *WasHit = false;
  ExecResult Result = Machine.run(Fragment, Args);
  if (Result.ok())
    Table.insert(std::move(Key), Result.Result);
  return Result;
}
