//===- analysis/SingleValued.h - Rule 6 single-valuedness -------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SingleValued(t) predicate of Figure 3, Rule 6: a term may occupy a
/// single cache slot only if it produces one value per fragment execution.
/// That holds for every expression outside loops, and for expressions that
/// are invariant in all enclosing loops (no free variable has a reaching
/// definition inside any enclosing loop).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ANALYSIS_SINGLEVALUED_H
#define DATASPEC_ANALYSIS_SINGLEVALUED_H

#include "analysis/ReachingDefs.h"
#include "analysis/StructureInfo.h"

namespace dspec {

/// True if \p E yields at most one distinct value per execution of the
/// fragment (see file comment).
bool isSingleValued(Expr *E, const StructureInfo &SI, const ReachingDefs &RD);

} // namespace dspec

#endif // DATASPEC_ANALYSIS_SINGLEVALUED_H
