//===- analysis/StructureInfo.h - Structural context ------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-node structural facts gathered in a single walk over a function:
/// which control constructs guard each term (`Guards(t)` of Figure 3), the
/// enclosing loops (for single-valuedness and the loop cost multiplier),
/// the statement that owns each expression tree, and the declaration
/// statement of each local variable.
///
/// Conventions: an `if`/`while` condition is guarded by the construct's
/// *outer* context, not by the construct itself; a `while` condition counts
/// as *inside* the loop (it re-evaluates every iteration).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ANALYSIS_STRUCTUREINFO_H
#define DATASPEC_ANALYSIS_STRUCTUREINFO_H

#include "lang/Function.h"

#include <unordered_map>
#include <vector>

namespace dspec {

/// One enclosing control construct of a term.
struct GuardRecord {
  /// The guarding IfStmt or WhileStmt.
  Stmt *Construct;
  /// Its predicate expression.
  Expr *Cond;
  /// True when Construct is a loop.
  bool IsLoop;
};

/// Structural context for every node of one function.
class StructureInfo {
public:
  /// Builds the tables for \p F. \p NumNodeIds must be at least the owning
  /// context's numNodeIds().
  void build(Function *F, uint32_t NumNodeIds);

  /// Enclosing guard constructs of a node, outermost first.
  const std::vector<GuardRecord> &guards(uint32_t NodeId) const {
    return GuardsOf[NodeId];
  }
  const std::vector<GuardRecord> &guards(const Expr *E) const {
    return guards(E->nodeId());
  }
  const std::vector<GuardRecord> &guards(const Stmt *S) const {
    return guards(S->nodeId());
  }

  /// Enclosing loops of a node, outermost first.
  const std::vector<WhileStmt *> &loops(uint32_t NodeId) const {
    return LoopsOf[NodeId];
  }
  const std::vector<WhileStmt *> &loops(const Expr *E) const {
    return loops(E->nodeId());
  }

  unsigned loopDepth(const Expr *E) const {
    return static_cast<unsigned>(loops(E->nodeId()).size());
  }

  /// Number of enclosing non-loop guards (conditionals); the Section 4.3
  /// cost model divides by 2 per level.
  unsigned conditionalDepth(uint32_t NodeId) const {
    unsigned Count = 0;
    for (const GuardRecord &G : guards(NodeId))
      if (!G.IsLoop)
        ++Count;
    return Count;
  }

  /// The statement that directly owns expression \p E's tree (an
  /// AssignStmt for its RHS, an IfStmt for its condition, and so on).
  Stmt *ownerStmt(const Expr *E) const {
    Stmt *Owner = OwnerOf[E->nodeId()];
    assert(Owner && "expression has no owner statement");
    return Owner;
  }

  /// The DeclStmt that declares local \p Var (null for parameters).
  DeclStmt *declStmtOf(const VarDecl *Var) const {
    auto It = DeclStmts.find(Var);
    return It == DeclStmts.end() ? nullptr : It->second;
  }

  /// Every statement of the function, in preorder (deterministic).
  const std::vector<Stmt *> &allStmts() const { return AllStmts; }

  /// Every expression of the function, in preorder (deterministic).
  const std::vector<Expr *> &allExprs() const { return AllExprs; }

private:
  void walkStmt(Stmt *S);
  void recordExprTree(Expr *E, Stmt *Owner);

  std::vector<std::vector<GuardRecord>> GuardsOf;
  std::vector<std::vector<WhileStmt *>> LoopsOf;
  std::vector<Stmt *> OwnerOf;
  std::unordered_map<const VarDecl *, DeclStmt *> DeclStmts;
  std::vector<Stmt *> AllStmts;
  std::vector<Expr *> AllExprs;

  std::vector<GuardRecord> GuardStack;
  std::vector<WhileStmt *> LoopStack;
};

} // namespace dspec

#endif // DATASPEC_ANALYSIS_STRUCTUREINFO_H
