//===- analysis/CostModel.h - Section 4.3 static costs ----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static execution-cost estimation in the style of [WMGH94], as used by
/// Section 4.3 of the paper: each operator has a base cost (`+` costs 1,
/// `/` costs 9, builtins have table costs), a term's raw cost sums its
/// subterms, terms inside loops are multiplied by 5 per nesting level, and
/// terms guarded by conditionals are divided by 2 per level. The raw cost
/// also feeds the Trivial() predicate of the caching analysis ("constants
/// and expressions with very low execution costs are not cached").
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ANALYSIS_COSTMODEL_H
#define DATASPEC_ANALYSIS_COSTMODEL_H

#include "analysis/StructureInfo.h"
#include "lang/Function.h"

#include <vector>

namespace dspec {

/// Tunable constants of the cost model; defaults match the paper.
struct CostOptions {
  unsigned LoopMultiplier = 5;
  unsigned CondDivisor = 2;
  /// Modeled cost of one cache memory reference; an expression whose raw
  /// cost does not exceed this is "trivial" and not worth caching.
  unsigned CacheRefCost = 3;
};

/// Computes memoized per-expression cost estimates for one function.
class CostModel {
public:
  /// Builds cost tables for \p F.
  void build(Function *F, const StructureInfo &SI, CostOptions Options,
             uint32_t NumNodeIds);

  /// Cost of evaluating \p E once (operator cost plus subterm costs).
  unsigned rawCost(const Expr *E) const { return RawCost[E->nodeId()]; }

  /// Raw cost weighted by execution-frequency estimates:
  /// raw * LoopMultiplier^loopDepth / CondDivisor^condDepth.
  double weightedCost(const Expr *E) const;

  /// The frequency factor alone, independent of operator costs:
  /// LoopMultiplier^loopDepth / CondDivisor^condDepth. This doubles as a
  /// per-frame *reuse* estimate for a cached slot — >= 1 means the reader
  /// touches the slot on every evaluation (hot), < 1 means the slot sits
  /// under a conditional and is read less often than once per frame
  /// (cold). The arena's cold-slot packing keys off this figure.
  double structureWeight(const Expr *E) const;

  /// The base cost of \p E's own operator, excluding subterms. Vector
  /// operations scale with their width.
  static unsigned operatorCost(const Expr *E);

  const CostOptions &options() const { return Options; }

private:
  unsigned computeRaw(Expr *E);

  std::vector<unsigned> RawCost;
  const StructureInfo *Structure = nullptr;
  CostOptions Options;
};

} // namespace dspec

#endif // DATASPEC_ANALYSIS_COSTMODEL_H
