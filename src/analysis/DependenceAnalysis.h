//===- analysis/DependenceAnalysis.h - Section 3.1 dependence ---*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence analysis (Section 3.1 of the paper): determines, for each
/// term, whether its value or effects may depend on the varying part of
/// the input partition. A term is dependent if
///
///   1. it references a varying input,
///   2. it has a dependent operand,
///   3. it is reached by a dependent definition, or
///   4. it is (conditionally) defined under control dependent on a
///      dependent predicate (the join-point case; trivial here because dsc
///      control flow is fully structured — the paper makes the same
///      observation).
///
/// Additionally, builtins that read or write global state are treated as
/// dependent sources: their values cannot be cached, and their consumers
/// must re-execute (this feeds Rule 2 of the caching analysis).
///
/// The analysis is a flow-sensitive abstract interpretation over the set
/// of dependent variables, with local fixpoints at loops — the
/// "straightforward, worst-case quadratic-time solution based on abstract
/// interpretation" of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ANALYSIS_DEPENDENCEANALYSIS_H
#define DATASPEC_ANALYSIS_DEPENDENCEANALYSIS_H

#include "lang/Function.h"

#include <set>
#include <vector>

namespace dspec {

/// Computes and stores per-term dependence marks for one function and one
/// input partition.
class DependenceAnalysis {
public:
  /// Runs the analysis. \p VaryingParams are the parameters in the varying
  /// part of the input partition; all other inputs are fixed.
  void run(Function *F, const std::vector<VarDecl *> &VaryingParams,
           uint32_t NumNodeIds);

  /// Nodes created after the analysis ran (e.g. by reassociation) are
  /// conservatively reported as dependent.
  bool isDependent(uint32_t NodeId) const {
    return NodeId >= Marks.size() || Marks[NodeId] != 0;
  }
  bool isDependent(const Expr *E) const { return isDependent(E->nodeId()); }
  bool isDependent(const Stmt *S) const { return isDependent(S->nodeId()); }

  /// Number of dependent terms (for stats and tests).
  unsigned dependentCount() const;

private:
  using Env = std::set<const VarDecl *>;

  /// Computes the dependence of an expression under \p E, marking every
  /// subterm. Returns the root's dependence.
  bool analyzeExpr(Expr *Root, const Env &E);
  void analyzeStmt(Stmt *S, Env &E, unsigned DepControlDepth);

  std::vector<char> Marks;
  std::set<const VarDecl *> Varying;
};

} // namespace dspec

#endif // DATASPEC_ANALYSIS_DEPENDENCEANALYSIS_H
