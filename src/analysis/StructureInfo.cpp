//===- analysis/StructureInfo.cpp - Structural context ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StructureInfo.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

using namespace dspec;

void StructureInfo::build(Function *F, uint32_t NumNodeIds) {
  GuardsOf.assign(NumNodeIds, {});
  LoopsOf.assign(NumNodeIds, {});
  OwnerOf.assign(NumNodeIds, nullptr);
  DeclStmts.clear();
  AllStmts.clear();
  AllExprs.clear();
  GuardStack.clear();
  LoopStack.clear();

  walkStmt(F->body());
}

void StructureInfo::recordExprTree(Expr *E, Stmt *Owner) {
  walkExpr(E, [&](Expr *Sub) {
    assert(Sub->nodeId() < GuardsOf.size() && "node id out of range");
    GuardsOf[Sub->nodeId()] = GuardStack;
    LoopsOf[Sub->nodeId()] = LoopStack;
    OwnerOf[Sub->nodeId()] = Owner;
    AllExprs.push_back(Sub);
  });
}

void StructureInfo::walkStmt(Stmt *S) {
  assert(S->nodeId() < GuardsOf.size() && "node id out of range");
  GuardsOf[S->nodeId()] = GuardStack;
  LoopsOf[S->nodeId()] = LoopStack;
  AllStmts.push_back(S);

  switch (S->kind()) {
  case StmtKind::SK_Block: {
    // Early-return control dependence: once a child construct containing
    // a return statement has executed, the *remaining* statements of the
    // block run only if none of those returns fired — i.e. they are
    // control dependent on every predicate guarding those returns. The
    // guard stack is extended accordingly for the rest of the block (and
    // re-derived at each enclosing level, so popping at block exit is
    // correct).
    size_t DepthAtEntry = GuardStack.size();
    for (Stmt *Child : cast<BlockStmt>(S)->body()) {
      size_t PrefixDepth = GuardStack.size();
      walkStmt(Child);
      if (!isa<IfStmt>(Child) && !isa<WhileStmt>(Child))
        continue;
      walkStmts(Child, [&](Stmt *Sub) {
        if (!isa<ReturnStmt>(Sub))
          return;
        const std::vector<GuardRecord> &ReturnGuards =
            GuardsOf[Sub->nodeId()];
        for (size_t I = PrefixDepth; I < ReturnGuards.size(); ++I) {
          bool Present = false;
          for (const GuardRecord &Existing : GuardStack)
            if (Existing.Construct == ReturnGuards[I].Construct)
              Present = true;
          if (!Present)
            GuardStack.push_back(ReturnGuards[I]);
        }
      });
    }
    GuardStack.resize(DepthAtEntry);
    return;
  }
  case StmtKind::SK_Decl: {
    auto *Decl = cast<DeclStmt>(S);
    DeclStmts[Decl->var()] = Decl;
    if (Decl->init())
      recordExprTree(Decl->init(), S);
    return;
  }
  case StmtKind::SK_Assign:
    recordExprTree(cast<AssignStmt>(S)->value(), S);
    return;
  case StmtKind::SK_ExprStmt:
    recordExprTree(cast<ExprStmt>(S)->expr(), S);
    return;
  case StmtKind::SK_If: {
    auto *If = cast<IfStmt>(S);
    // The condition sits in the construct's outer context.
    recordExprTree(If->cond(), S);
    GuardStack.push_back({S, If->cond(), /*IsLoop=*/false});
    walkStmt(If->thenStmt());
    if (If->elseStmt())
      walkStmt(If->elseStmt());
    GuardStack.pop_back();
    return;
  }
  case StmtKind::SK_While: {
    auto *While = cast<WhileStmt>(S);
    // The condition re-evaluates each iteration: it is inside the loop,
    // but guarded only by outer constructs.
    LoopStack.push_back(While);
    recordExprTree(While->cond(), S);
    GuardStack.push_back({S, While->cond(), /*IsLoop=*/true});
    walkStmt(While->body());
    GuardStack.pop_back();
    LoopStack.pop_back();
    return;
  }
  case StmtKind::SK_Return:
    if (Expr *Value = cast<ReturnStmt>(S)->value())
      recordExprTree(Value, S);
    return;
  }
}
