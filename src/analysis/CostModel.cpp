//===- analysis/CostModel.cpp - Section 4.3 static costs -------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <cmath>

using namespace dspec;

unsigned CostModel::operatorCost(const Expr *E) {
  // Vector operations cost proportionally to their component count.
  unsigned Width = E->type().isVector() ? E->type().vectorWidth() : 1;
  switch (E->kind()) {
  case ExprKind::EK_IntLiteral:
  case ExprKind::EK_FloatLiteral:
  case ExprKind::EK_BoolLiteral:
    return 0;
  case ExprKind::EK_VarRef:
    return 1;
  case ExprKind::EK_Unary:
    return Width;
  case ExprKind::EK_Binary: {
    const auto *B = cast<BinaryExpr>(E);
    switch (B->op()) {
    case BinaryOp::BO_Add:
    case BinaryOp::BO_Sub:
      return 1 * Width;
    case BinaryOp::BO_Mul:
      return 2 * Width;
    case BinaryOp::BO_Div:
    case BinaryOp::BO_Mod:
      return 9 * Width;
    default:
      return 1; // comparisons and logical operators
    }
  }
  case ExprKind::EK_Cond:
    return 1;
  case ExprKind::EK_Call:
    return getBuiltinInfo(cast<CallExpr>(E)->builtin()).Cost;
  case ExprKind::EK_Member:
    return 1;
  case ExprKind::EK_CacheRead:
  case ExprKind::EK_CacheStore:
    return 3; // one memory reference
  }
  return 1;
}

unsigned CostModel::computeRaw(Expr *E) {
  unsigned Cost = operatorCost(E);
  forEachChildExpr(E, [&](Expr *Child) { Cost += computeRaw(Child); });
  RawCost[E->nodeId()] = Cost;
  return Cost;
}

void CostModel::build(Function *F, const StructureInfo &SI,
                      CostOptions Opts, uint32_t NumNodeIds) {
  RawCost.assign(NumNodeIds, 0);
  Structure = &SI;
  Options = Opts;
  walkStmts(F->body(), [&](Stmt *S) {
    forEachExprOfStmt(S, [&](Expr *Root) { computeRaw(Root); });
  });
}

double CostModel::weightedCost(const Expr *E) const {
  return RawCost[E->nodeId()] * structureWeight(E);
}

double CostModel::structureWeight(const Expr *E) const {
  assert(Structure && "cost model not built");
  double Weight = 1.0;
  unsigned LoopDepth = static_cast<unsigned>(
      Structure->loops(E->nodeId()).size());
  unsigned CondDepth = Structure->conditionalDepth(E->nodeId());
  for (unsigned I = 0; I < LoopDepth; ++I)
    Weight *= Options.LoopMultiplier;
  for (unsigned I = 0; I < CondDepth; ++I)
    Weight /= Options.CondDivisor;
  return Weight;
}
