//===- analysis/DependenceAnalysis.cpp - Section 3.1 dependence ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceAnalysis.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <algorithm>

using namespace dspec;

void DependenceAnalysis::run(Function *F,
                             const std::vector<VarDecl *> &VaryingParams,
                             uint32_t NumNodeIds) {
  Marks.assign(NumNodeIds, 0);
  Varying.clear();
  for (VarDecl *Param : VaryingParams)
    Varying.insert(Param);

  Env E;
  for (const VarDecl *Param : Varying)
    E.insert(Param);
  analyzeStmt(F->body(), E, /*DepControlDepth=*/0);
}

unsigned DependenceAnalysis::dependentCount() const {
  return static_cast<unsigned>(std::count(Marks.begin(), Marks.end(), 1));
}

bool DependenceAnalysis::analyzeExpr(Expr *Root, const Env &E) {
  bool Dependent = false;
  switch (Root->kind()) {
  case ExprKind::EK_IntLiteral:
  case ExprKind::EK_FloatLiteral:
  case ExprKind::EK_BoolLiteral:
    break;
  case ExprKind::EK_VarRef: {
    auto *Ref = cast<VarRefExpr>(Root);
    assert(Ref->decl() && "dependence analysis requires resolved AST");
    Dependent = E.count(Ref->decl()) != 0;
    break;
  }
  case ExprKind::EK_Call: {
    auto *Call = cast<CallExpr>(Root);
    // Global-state builtins are dependence sources: their values can never
    // be summarized by a load-time snapshot.
    if (getBuiltinInfo(Call->builtin()).HasGlobalEffect)
      Dependent = true;
    for (Expr *Arg : Call->args())
      Dependent |= analyzeExpr(Arg, E);
    break;
  }
  default:
    forEachChildExpr(Root, [&](Expr *Child) {
      Dependent |= analyzeExpr(Child, E);
    });
    break;
  }
  Marks[Root->nodeId()] = Dependent ? 1 : 0;
  return Dependent;
}

void DependenceAnalysis::analyzeStmt(Stmt *S, Env &E,
                                     unsigned DepControlDepth) {
  switch (S->kind()) {
  case StmtKind::SK_Block:
    Marks[S->nodeId()] = 0;
    for (Stmt *Child : cast<BlockStmt>(S)->body())
      analyzeStmt(Child, E, DepControlDepth);
    return;
  case StmtKind::SK_Decl: {
    auto *Decl = cast<DeclStmt>(S);
    bool Dep = Decl->init() && analyzeExpr(Decl->init(), E);
    // Case 4: a definition under dependent control yields a value the
    // reader cannot predict from fixed inputs alone.
    Dep |= DepControlDepth > 0;
    Marks[S->nodeId()] = Dep ? 1 : 0;
    if (Dep)
      E.insert(Decl->var());
    else
      E.erase(Decl->var());
    return;
  }
  case StmtKind::SK_Assign: {
    auto *Assign = cast<AssignStmt>(S);
    bool Dep = analyzeExpr(Assign->value(), E);
    Dep |= DepControlDepth > 0; // case 4
    Marks[S->nodeId()] = Dep ? 1 : 0;
    if (Dep)
      E.insert(Assign->target());
    else
      E.erase(Assign->target()); // strong update
    return;
  }
  case StmtKind::SK_ExprStmt: {
    bool Dep = analyzeExpr(cast<ExprStmt>(S)->expr(), E);
    Marks[S->nodeId()] = (Dep || DepControlDepth > 0) ? 1 : 0;
    return;
  }
  case StmtKind::SK_If: {
    auto *If = cast<IfStmt>(S);
    bool CondDep = analyzeExpr(If->cond(), E);
    Marks[S->nodeId()] = (CondDep || DepControlDepth > 0) ? 1 : 0;
    unsigned InnerDepth = DepControlDepth + (CondDep ? 1 : 0);
    Env ThenEnv = E;
    analyzeStmt(If->thenStmt(), ThenEnv, InnerDepth);
    Env ElseEnv = std::move(E);
    if (If->elseStmt())
      analyzeStmt(If->elseStmt(), ElseEnv, InnerDepth);
    // Join: a variable dependent on either path is dependent after.
    ThenEnv.insert(ElseEnv.begin(), ElseEnv.end());
    E = std::move(ThenEnv);
    return;
  }
  case StmtKind::SK_While: {
    auto *While = cast<WhileStmt>(S);
    // Local fixpoint over the dependent-variable set.
    Env LoopIn = E;
    while (true) {
      Env Body = LoopIn;
      bool CondDep = analyzeExpr(While->cond(), Body);
      Marks[S->nodeId()] = (CondDep || DepControlDepth > 0) ? 1 : 0;
      unsigned InnerDepth = DepControlDepth + (CondDep ? 1 : 0);
      analyzeStmt(While->body(), Body, InnerDepth);
      Env Next = LoopIn;
      Next.insert(Body.begin(), Body.end());
      if (Next == LoopIn)
        break;
      LoopIn = std::move(Next);
    }
    E = std::move(LoopIn);
    return;
  }
  case StmtKind::SK_Return: {
    bool Dep = false;
    if (Expr *Value = cast<ReturnStmt>(S)->value())
      Dep = analyzeExpr(Value, E);
    Marks[S->nodeId()] = (Dep || DepControlDepth > 0) ? 1 : 0;
    return;
  }
  }
}
