//===- analysis/ReachingDefs.h - Reaching definitions -----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reaching definitions over the structured dsc AST, producing use-def
/// chains: for each variable reference, the set of DeclStmt/AssignStmt
/// nodes whose value may reach it. Parameters act as definitions at
/// function entry; an entry definition is implicit (it never appears in a
/// use-def chain, since parameters are available to both the loader and the
/// reader by construction — both receive all inputs).
///
/// Loops are handled with a local fixpoint (merge-until-stable), which
/// always terminates because definition sets only grow.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ANALYSIS_REACHINGDEFS_H
#define DATASPEC_ANALYSIS_REACHINGDEFS_H

#include "lang/Function.h"

#include <map>
#include <unordered_map>
#include <vector>

namespace dspec {

/// Use-def chains for one function.
class ReachingDefs {
public:
  /// Computes chains for \p F. \p NumNodeIds sizes the side tables.
  void run(Function *F, uint32_t NumNodeIds);

  /// Definition statements reaching variable reference \p Ref, sorted by
  /// node id. An empty result means only the entry definition (parameter
  /// value or zero initialization) reaches it.
  const std::vector<Stmt *> &defs(const VarRefExpr *Ref) const {
    return RefDefs[Ref->nodeId()];
  }

  /// True when the variable's entry value (parameter or zero-init) may
  /// reach \p Ref.
  bool reachedByEntry(const VarRefExpr *Ref) const {
    return EntryReaches[Ref->nodeId()];
  }

  /// All definition statements of \p Var anywhere in the function
  /// (DeclStmt and AssignStmt nodes), in preorder.
  const std::vector<Stmt *> &allDefsOf(const VarDecl *Var) const;

private:
  /// A definition set: sorted vector of defining statements plus a flag
  /// for the implicit entry definition.
  struct DefSet {
    std::vector<Stmt *> Defs;
    bool Entry = false;

    bool operator==(const DefSet &RHS) const {
      return Entry == RHS.Entry && Defs == RHS.Defs;
    }
  };

  using Env = std::map<const VarDecl *, DefSet>;

  void analyzeStmt(Stmt *S, Env &E);
  void analyzeExprTree(Expr *Root, const Env &E);
  static void mergeInto(Env &Dest, const Env &Src);
  static void insertDef(DefSet &Set, Stmt *Def);

  std::vector<std::vector<Stmt *>> RefDefs;
  std::vector<char> EntryReaches;
  std::unordered_map<const VarDecl *, std::vector<Stmt *>> AllDefs;
};

} // namespace dspec

#endif // DATASPEC_ANALYSIS_REACHINGDEFS_H
