//===- analysis/SingleValued.cpp - Rule 6 single-valuedness ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SingleValued.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <algorithm>

using namespace dspec;

/// True if statement \p Def lies inside loop \p Loop.
static bool isInsideLoop(const Stmt *Def, const WhileStmt *Loop,
                         const StructureInfo &SI) {
  const auto &Loops = SI.loops(Def->nodeId());
  return std::find(Loops.begin(), Loops.end(), Loop) != Loops.end();
}

bool dspec::isSingleValued(Expr *E, const StructureInfo &SI,
                           const ReachingDefs &RD) {
  const auto &EnclosingLoops = SI.loops(E->nodeId());
  if (EnclosingLoops.empty())
    return true;

  // Invariant in every enclosing loop: no free variable may have a
  // reaching definition inside any of them.
  bool Invariant = true;
  walkExpr(E, [&](Expr *Sub) {
    if (!Invariant)
      return;
    auto *Ref = dyn_cast<VarRefExpr>(Sub);
    if (!Ref)
      return;
    for (const Stmt *Def : RD.defs(Ref)) {
      for (const WhileStmt *Loop : EnclosingLoops) {
        if (isInsideLoop(Def, Loop, SI)) {
          Invariant = false;
          return;
        }
      }
    }
  });
  return Invariant;
}
