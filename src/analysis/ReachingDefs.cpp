//===- analysis/ReachingDefs.cpp - Reaching definitions --------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ReachingDefs.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <algorithm>

using namespace dspec;

void ReachingDefs::insertDef(DefSet &Set, Stmt *Def) {
  auto It = std::lower_bound(Set.Defs.begin(), Set.Defs.end(), Def,
                             [](const Stmt *A, const Stmt *B) {
                               return A->nodeId() < B->nodeId();
                             });
  if (It == Set.Defs.end() || *It != Def)
    Set.Defs.insert(It, Def);
}

void ReachingDefs::mergeInto(Env &Dest, const Env &Src) {
  for (const auto &[Var, Set] : Src) {
    DefSet &DestSet = Dest[Var];
    DestSet.Entry |= Set.Entry;
    for (Stmt *Def : Set.Defs)
      insertDef(DestSet, Def);
  }
}

void ReachingDefs::run(Function *F, uint32_t NumNodeIds) {
  RefDefs.assign(NumNodeIds, {});
  EntryReaches.assign(NumNodeIds, 0);
  AllDefs.clear();

  // Collect every definition statement up front (deterministic preorder).
  walkStmts(F->body(), [&](Stmt *S) {
    if (auto *Decl = dyn_cast<DeclStmt>(S))
      AllDefs[Decl->var()].push_back(S);
    else if (auto *Assign = dyn_cast<AssignStmt>(S)) {
      assert(Assign->target() && "reaching defs requires resolved AST");
      AllDefs[Assign->target()].push_back(S);
    }
  });

  Env Entry;
  for (VarDecl *Param : F->params())
    Entry[Param].Entry = true;
  analyzeStmt(F->body(), Entry);
}

const std::vector<Stmt *> &
ReachingDefs::allDefsOf(const VarDecl *Var) const {
  static const std::vector<Stmt *> Empty;
  auto It = AllDefs.find(Var);
  return It == AllDefs.end() ? Empty : It->second;
}

void ReachingDefs::analyzeExprTree(Expr *Root, const Env &E) {
  walkExpr(Root, [&](Expr *Sub) {
    auto *Ref = dyn_cast<VarRefExpr>(Sub);
    if (!Ref)
      return;
    assert(Ref->decl() && "reaching defs requires resolved AST");
    auto It = E.find(Ref->decl());
    if (It == E.end()) {
      // Only possible for malformed input; treat as entry-reached.
      RefDefs[Ref->nodeId()].clear();
      EntryReaches[Ref->nodeId()] = 1;
      return;
    }
    RefDefs[Ref->nodeId()] = It->second.Defs;
    EntryReaches[Ref->nodeId()] = It->second.Entry ? 1 : 0;
  });
}

void ReachingDefs::analyzeStmt(Stmt *S, Env &E) {
  switch (S->kind()) {
  case StmtKind::SK_Block:
    for (Stmt *Child : cast<BlockStmt>(S)->body())
      analyzeStmt(Child, E);
    return;
  case StmtKind::SK_Decl: {
    auto *Decl = cast<DeclStmt>(S);
    if (Decl->init())
      analyzeExprTree(Decl->init(), E);
    DefSet Set;
    Set.Defs.push_back(S);
    E[Decl->var()] = std::move(Set);
    return;
  }
  case StmtKind::SK_Assign: {
    auto *Assign = cast<AssignStmt>(S);
    analyzeExprTree(Assign->value(), E);
    DefSet Set;
    Set.Defs.push_back(S);
    E[Assign->target()] = std::move(Set); // strong update
    return;
  }
  case StmtKind::SK_ExprStmt:
    analyzeExprTree(cast<ExprStmt>(S)->expr(), E);
    return;
  case StmtKind::SK_If: {
    auto *If = cast<IfStmt>(S);
    analyzeExprTree(If->cond(), E);
    Env ThenEnv = E;
    analyzeStmt(If->thenStmt(), ThenEnv);
    Env ElseEnv = std::move(E);
    if (If->elseStmt())
      analyzeStmt(If->elseStmt(), ElseEnv);
    mergeInto(ThenEnv, ElseEnv);
    E = std::move(ThenEnv);
    return;
  }
  case StmtKind::SK_While: {
    auto *While = cast<WhileStmt>(S);
    // Local fixpoint: grow the loop-entry environment until stable, then
    // the recordings from the last pass are the fixpoint chains.
    Env LoopIn = E;
    while (true) {
      Env Body = LoopIn;
      analyzeExprTree(While->cond(), Body);
      analyzeStmt(While->body(), Body);
      Env Next = LoopIn;
      mergeInto(Next, Body);
      if (Next == LoopIn)
        break;
      LoopIn = std::move(Next);
    }
    // Re-record condition uses with the final environment (zero-trip
    // executions still evaluate the condition once).
    analyzeExprTree(While->cond(), LoopIn);
    E = std::move(LoopIn);
    return;
  }
  case StmtKind::SK_Return:
    if (Expr *Value = cast<ReturnStmt>(S)->value())
      analyzeExprTree(Value, E);
    return;
  }
}
