//===- driver/Pipeline.h - End-to-end convenience API -----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-level API most clients want:
///
///   auto Unit = parseUnit(Source);                     // parse + Sema
///   auto Spec = specializeAndCompile(*Unit, "dotprod",
///                                    {"z1", "z2"});    // split + compile
///   VM Machine;
///   Cache PixelCache;
///   Machine.run(Spec->LoaderChunk, Args, &PixelCache); // early phase
///   Machine.run(Spec->ReaderChunk, Args, &PixelCache); // late phase(s)
///
/// Everything below is a thin composition of the lang / specialize / vm
/// libraries; nothing here adds semantics.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_DRIVER_PIPELINE_H
#define DATASPEC_DRIVER_PIPELINE_H

#include "lang/ASTContext.h"
#include "specialize/DataSpecializer.h"
#include "support/Diagnostics.h"
#include "vm/Bytecode.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace dspec {

/// One parsed-and-checked dsc source buffer. Owns the AST.
struct CompilationUnit {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  Program *Prog = nullptr;

  bool ok() const { return Prog != nullptr && !Diags.hasErrors(); }
};

/// Parses and semantically checks \p Source. Always returns a unit; check
/// ok() / Diags for failure details.
std::unique_ptr<CompilationUnit> parseUnit(std::string_view Source);

/// A specialization together with executable code for all three programs.
struct CompiledSpecialization {
  SpecializationResult Spec;
  Chunk OriginalChunk;
  Chunk LoaderChunk;
  Chunk ReaderChunk;

  /// C-like listings (Figure 2 style).
  std::string loaderSource() const;
  std::string readerSource() const;
  std::string normalizedSource() const;
};

/// Runs the specializer on function \p FragmentName of \p Unit with
/// \p VaryingParams varying, then compiles the original fragment, the
/// loader, and the reader. Returns nullopt (with diagnostics in the unit)
/// on failure.
std::optional<CompiledSpecialization>
specializeAndCompile(CompilationUnit &Unit, const std::string &FragmentName,
                     const std::vector<std::string> &VaryingParams,
                     const SpecializerOptions &Options = {});

/// One compiled member of a variant set.
struct CompiledVariant {
  VariantKey Key;
  std::string Label; // "generic", "grain=0", ...
  ConstantFoldStats Fold;
  /// Generic reader weighted cost minus this variant's (zero for the
  /// generic variant itself).
  double PredictedBenefit = 0.0;
  CompiledSpecialization Compiled;
};

/// A compiled variant set; Variants[0] is always the generic variant.
struct CompiledVariantSet {
  std::vector<CompiledVariant> Variants;
  unsigned VariantsEvicted = 0;
  unsigned TotalCacheBytes = 0;
  /// The `dspec --explain` variant table, rendered at build time.
  std::string Table;

  std::vector<VariantKey> keys() const;
  /// The variant with this exact (canonical) key, or null.
  const CompiledVariant *find(const VariantKey &Key) const;
};

/// Polyvariant counterpart of specializeAndCompile: builds and compiles
/// the generic variant plus the property-keyed variants (proposed, or
/// VOptions.ExplicitKeys verbatim), applying the cross-variant cache
/// budget. Returns nullopt (with diagnostics in the unit) on failure.
std::optional<CompiledVariantSet>
specializeAndCompileVariants(CompilationUnit &Unit,
                             const std::string &FragmentName,
                             const std::vector<std::string> &VaryingParams,
                             const SpecializerOptions &Options = {},
                             const VariantSetOptions &VOptions = {});

/// Compiles a plain function of \p Unit (no specialization).
std::optional<Chunk> compileFunction(CompilationUnit &Unit,
                                     const std::string &FunctionName);

} // namespace dspec

#endif // DATASPEC_DRIVER_PIPELINE_H
