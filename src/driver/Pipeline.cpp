//===- driver/Pipeline.cpp - End-to-end convenience API --------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "lang/ASTPrinter.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "vm/BytecodeCompiler.h"

#include <cassert>

using namespace dspec;

std::unique_ptr<CompilationUnit> dspec::parseUnit(std::string_view Source) {
  auto Unit = std::make_unique<CompilationUnit>();
  Parser P(Source, Unit->Ctx, Unit->Diags);
  Program *Prog = P.parseProgram();
  if (Unit->Diags.hasErrors())
    return Unit;
  Sema S(Unit->Diags);
  if (!S.run(Prog))
    return Unit;
  Unit->Prog = Prog;
  return Unit;
}

std::string CompiledSpecialization::loaderSource() const {
  return printFunction(Spec.Loader);
}

std::string CompiledSpecialization::readerSource() const {
  return printFunction(Spec.Reader);
}

std::string CompiledSpecialization::normalizedSource() const {
  PrintOptions Options;
  Options.AnnotatePhiCopies = true;
  return printFunction(Spec.NormalizedFragment, Options);
}

std::optional<CompiledSpecialization>
dspec::specializeAndCompile(CompilationUnit &Unit,
                            const std::string &FragmentName,
                            const std::vector<std::string> &VaryingParams,
                            const SpecializerOptions &Options) {
  if (!Unit.ok())
    return std::nullopt;
  Function *F = Unit.Prog->findFunction(FragmentName);
  if (!F) {
    Unit.Diags.error(SourceLoc(),
                     "no function named '" + FragmentName + "' in unit");
    return std::nullopt;
  }

  DataSpecializer Specializer(Unit.Ctx, Unit.Diags);
  auto Spec = Specializer.specialize(F, VaryingParams, Options);
  if (!Spec)
    return std::nullopt;

  CompiledSpecialization Out;
  Out.Spec = std::move(*Spec);
  Out.OriginalChunk = BytecodeCompiler().compile(F);
  Out.LoaderChunk = BytecodeCompiler().compile(Out.Spec.Loader);
  Out.ReaderChunk = BytecodeCompiler().compile(Out.Spec.Reader);

  // The CacheLayout is the authoritative runtime layout: stamp both cache
  // chunks with its full extent (the compiler only sees the slots each
  // chunk touches) so caches are always sized for the whole layout.
  const CacheLayout &Layout = Out.Spec.Layout;
  assert(Out.LoaderChunk.CacheSlotCount <= Layout.slotCount() &&
         Out.LoaderChunk.CacheBytes <= Layout.totalBytes() &&
         "loader accesses slots outside the finalized layout");
  assert(Out.ReaderChunk.CacheSlotCount <= Layout.slotCount() &&
         Out.ReaderChunk.CacheBytes <= Layout.totalBytes() &&
         "reader accesses slots outside the finalized layout");
  Out.LoaderChunk.CacheSlotCount = Layout.slotCount();
  Out.LoaderChunk.CacheBytes = Layout.totalBytes();
  Out.ReaderChunk.CacheSlotCount = Layout.slotCount();
  Out.ReaderChunk.CacheBytes = Layout.totalBytes();
  return Out;
}

std::optional<Chunk> dspec::compileFunction(CompilationUnit &Unit,
                                            const std::string &FunctionName) {
  if (!Unit.ok())
    return std::nullopt;
  Function *F = Unit.Prog->findFunction(FunctionName);
  if (!F) {
    Unit.Diags.error(SourceLoc(),
                     "no function named '" + FunctionName + "' in unit");
    return std::nullopt;
  }
  return BytecodeCompiler().compile(F);
}
