//===- driver/Pipeline.cpp - End-to-end convenience API --------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "lang/ASTPrinter.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "vm/BytecodeCompiler.h"

#include <cassert>

using namespace dspec;

std::unique_ptr<CompilationUnit> dspec::parseUnit(std::string_view Source) {
  auto Unit = std::make_unique<CompilationUnit>();
  Parser P(Source, Unit->Ctx, Unit->Diags);
  Program *Prog = P.parseProgram();
  if (Unit->Diags.hasErrors())
    return Unit;
  Sema S(Unit->Diags);
  if (!S.run(Prog))
    return Unit;
  Unit->Prog = Prog;
  return Unit;
}

std::string CompiledSpecialization::loaderSource() const {
  return printFunction(Spec.Loader);
}

std::string CompiledSpecialization::readerSource() const {
  return printFunction(Spec.Reader);
}

std::string CompiledSpecialization::normalizedSource() const {
  PrintOptions Options;
  Options.AnnotatePhiCopies = true;
  return printFunction(Spec.NormalizedFragment, Options);
}

/// Compiles the three programs of one specialization result and stamps
/// the cache chunks with the authoritative layout extent (the compiler
/// only sees the slots each chunk touches, but caches must always be
/// sized for the whole layout).
static CompiledSpecialization compileSpecialization(Function *F,
                                                    SpecializationResult &&Spec) {
  CompiledSpecialization Out;
  Out.Spec = std::move(Spec);
  Out.OriginalChunk = BytecodeCompiler().compile(F);
  Out.LoaderChunk = BytecodeCompiler().compile(Out.Spec.Loader);
  Out.ReaderChunk = BytecodeCompiler().compile(Out.Spec.Reader);

  const CacheLayout &Layout = Out.Spec.Layout;
  assert(Out.LoaderChunk.CacheSlotCount <= Layout.slotCount() &&
         Out.LoaderChunk.CacheBytes <= Layout.totalBytes() &&
         "loader accesses slots outside the finalized layout");
  assert(Out.ReaderChunk.CacheSlotCount <= Layout.slotCount() &&
         Out.ReaderChunk.CacheBytes <= Layout.totalBytes() &&
         "reader accesses slots outside the finalized layout");
  Out.LoaderChunk.CacheSlotCount = Layout.slotCount();
  Out.LoaderChunk.CacheBytes = Layout.totalBytes();
  Out.ReaderChunk.CacheSlotCount = Layout.slotCount();
  Out.ReaderChunk.CacheBytes = Layout.totalBytes();
  return Out;
}

std::optional<CompiledSpecialization>
dspec::specializeAndCompile(CompilationUnit &Unit,
                            const std::string &FragmentName,
                            const std::vector<std::string> &VaryingParams,
                            const SpecializerOptions &Options) {
  if (!Unit.ok())
    return std::nullopt;
  Function *F = Unit.Prog->findFunction(FragmentName);
  if (!F) {
    Unit.Diags.error(SourceLoc(),
                     "no function named '" + FragmentName + "' in unit");
    return std::nullopt;
  }

  DataSpecializer Specializer(Unit.Ctx, Unit.Diags);
  auto Spec = Specializer.specialize(F, VaryingParams, Options);
  if (!Spec)
    return std::nullopt;
  return compileSpecialization(F, std::move(*Spec));
}

std::vector<VariantKey> CompiledVariantSet::keys() const {
  std::vector<VariantKey> Out;
  Out.reserve(Variants.size());
  for (const CompiledVariant &V : Variants)
    Out.push_back(V.Key);
  return Out;
}

const CompiledVariant *CompiledVariantSet::find(const VariantKey &Key) const {
  for (const CompiledVariant &V : Variants)
    if (V.Key == Key)
      return &V;
  return nullptr;
}

std::optional<CompiledVariantSet>
dspec::specializeAndCompileVariants(CompilationUnit &Unit,
                                    const std::string &FragmentName,
                                    const std::vector<std::string> &VaryingParams,
                                    const SpecializerOptions &Options,
                                    const VariantSetOptions &VOptions) {
  if (!Unit.ok())
    return std::nullopt;
  Function *F = Unit.Prog->findFunction(FragmentName);
  if (!F) {
    Unit.Diags.error(SourceLoc(),
                     "no function named '" + FragmentName + "' in unit");
    return std::nullopt;
  }

  DataSpecializer Specializer(Unit.Ctx, Unit.Diags);
  auto Set = Specializer.specializeVariants(F, VaryingParams, Options,
                                            VOptions);
  if (!Set)
    return std::nullopt;

  CompiledVariantSet Out;
  Out.VariantsEvicted = Set->VariantsEvicted;
  Out.TotalCacheBytes = Set->TotalCacheBytes;
  Out.Table = formatVariantTable(*Set);
  Out.Variants.reserve(Set->Variants.size());
  for (SpecializedVariant &V : Set->Variants) {
    CompiledVariant C;
    C.Key = std::move(V.Key);
    C.Label = std::move(V.Label);
    C.Fold = V.Fold;
    C.PredictedBenefit = V.PredictedBenefit;
    C.Compiled = compileSpecialization(F, std::move(V.Result));
    Out.Variants.push_back(std::move(C));
  }
  return Out;
}

std::optional<Chunk> dspec::compileFunction(CompilationUnit &Unit,
                                            const std::string &FunctionName) {
  if (!Unit.ok())
    return std::nullopt;
  Function *F = Unit.Prog->findFunction(FunctionName);
  if (!F) {
    Unit.Diags.error(SourceLoc(),
                     "no function named '" + FunctionName + "' in unit");
    return std::nullopt;
  }
  return BytecodeCompiler().compile(F);
}
