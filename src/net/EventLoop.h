//===- net/EventLoop.h - One IO thread's reactor ----------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reactor that owns one IO thread: an epoll Poller, an eventfd
/// wakeup, a cross-thread task queue, and a timer heap. Everything a
/// loop touches (its fd handlers, its connections) is confined to the
/// loop's thread; other threads interact only through post(), which
/// enqueues a task and writes the wakeup fd. This is also how shutdown
/// works — stop() posts through the wakeup fd, so a parked epoll_wait
/// returns immediately instead of timing out on a poll interval.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_NET_EVENTLOOP_H
#define DATASPEC_NET_EVENTLOOP_H

#include "net/Poller.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dspec {

class EventLoop {
public:
  using Clock = std::chrono::steady_clock;
  /// Called with the ready EPOLL* bits for a registered fd.
  using FdHandler = std::function<void(uint32_t Events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

  bool valid() const;

  /// Runs until stop(). Call from exactly one thread; that thread
  /// becomes the loop thread.
  void run();

  /// Makes run() return after the current iteration. Thread-safe and
  /// signal-safe in effect: it rides the wakeup fd, so a parked
  /// epoll_wait returns immediately.
  void stop();

  /// Enqueues \p T to run on the loop thread (FIFO with other posts) and
  /// wakes the loop. Thread-safe. Tasks posted after stop() are dropped
  /// when the loop drains for exit.
  void post(Task T);

  /// Registers \p Fd with the poller. The handler runs on the loop
  /// thread. Call on the loop thread (or before run()).
  bool registerFd(int Fd, uint32_t Events, FdHandler Handler);
  bool updateFd(int Fd, uint32_t Events);
  void unregisterFd(int Fd);

  /// Arms a timer \p DelaySeconds from now; \p Repeat re-arms at the
  /// same interval after each fire. Returns an id for cancelTimer. Call
  /// on the loop thread (or before run()).
  uint64_t addTimer(double DelaySeconds, bool Repeat, Task Fire);
  void cancelTimer(uint64_t Id);

  bool inLoopThread() const {
    return std::this_thread::get_id() == LoopThread.load();
  }

  /// The eventfd other threads (and signal handlers) write to wake the
  /// loop; one 8-byte write is enough.
  int wakeupFd() const { return WakeFd; }

private:
  struct Timer {
    Task Fire;
    double IntervalSeconds = 0.0;
    bool Repeat = false;
    bool Cancelled = false;
  };
  struct TimerDeadline {
    Clock::time_point When;
    uint64_t Id;
    bool operator>(const TimerDeadline &RHS) const { return When > RHS.When; }
  };

  void drainWakeup();
  void runTasks();
  int millisToNextTimer() const;
  void fireDueTimers();

  Poller Ring;
  int WakeFd = -1;

  std::mutex TaskMutex;
  std::vector<Task> Tasks;

  std::unordered_map<int, std::shared_ptr<FdHandler>> Handlers;

  uint64_t NextTimerId = 1;
  std::unordered_map<uint64_t, Timer> Timers;
  /// Min-heap by deadline (std::greater via push_heap/pop_heap).
  std::vector<TimerDeadline> TimerHeap;

  std::atomic<bool> Stopping{false};
  std::atomic<std::thread::id> LoopThread{};
};

} // namespace dspec

#endif // DATASPEC_NET_EVENTLOOP_H
