//===- net/Acceptor.cpp - Nonblocking listening sockets ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Acceptor.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dspec;

bool dspec::splitHostPort(const std::string &HostPort, std::string &Host,
                          uint16_t &Port) {
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 >= HostPort.size())
    return false;
  Host = HostPort.substr(0, Colon);
  char *End = nullptr;
  unsigned long Value = std::strtoul(HostPort.c_str() + Colon + 1, &End, 10);
  if (*End != '\0' || Value > 65535)
    return false;
  Port = static_cast<uint16_t>(Value);
  return true;
}

bool Acceptor::listenTcp(const std::string &HostPort, std::string *Error) {
  std::string Host;
  uint16_t WantPort = 0;
  if (!splitHostPort(HostPort, Host, WantPort)) {
    if (Error)
      *Error = "malformed listen address '" + HostPort +
               "' (expected host:port)";
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(WantPort);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "cannot parse listen host '" + Host +
               "' (an IPv4 address like 127.0.0.1)";
    return false;
  }
  int NewFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (NewFd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(NewFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(NewFd, 128) < 0) {
    if (Error)
      *Error = "bind/listen on '" + HostPort + "': " + std::strerror(errno);
    ::close(NewFd);
    return false;
  }
  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(NewFd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
    Port = ntohs(Bound.sin_port);
  close();
  Fd = NewFd;
  return true;
}

bool Acceptor::listenUnix(const std::string &SocketPath, std::string *Error) {
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + SocketPath;
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int NewFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (NewFd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(SocketPath.c_str()); // stale socket from a previous run
  if (::bind(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(NewFd, 128) < 0) {
    if (Error)
      *Error = "bind/listen on '" + SocketPath +
               "': " + std::strerror(errno);
    ::close(NewFd);
    return false;
  }
  close();
  Fd = NewFd;
  Port = 0;
  UnixPath = SocketPath;
  return true;
}

int Acceptor::acceptOne() {
  if (Fd < 0)
    return -1;
  int Conn;
  do {
    Conn = ::accept4(Fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  } while (Conn < 0 && errno == EINTR);
  if (Conn < 0)
    return -1;
  if (UnixPath.empty()) {
    int One = 1;
    ::setsockopt(Conn, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  }
  return Conn;
}

void Acceptor::close() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
  Port = 0;
  if (!UnixPath.empty())
    ::unlink(UnixPath.c_str());
  UnixPath.clear();
}
