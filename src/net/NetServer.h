//===- net/NetServer.h - Event-loop service front end -----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-loop network front end for the specialization service: N IO
/// threads, each running one EventLoop, serving nonblocking TCP and
/// unix-socket connections speaking the DSPF protocol. Replaces the
/// thread-per-connection transport for production serving (that path
/// survives as a test shim).
///
/// Per-client fairness is enforced per connection, before a request ever
/// reaches the service queue: a token-bucket request quota and an
/// in-flight cap, both answered with a distinct ShedQuota status so a
/// greedy client sees *its* requests shed while well-behaved clients'
/// replies stay untouched. Slow-loris clients — a frame header trickled
/// byte by byte — are reaped by a per-loop sweep timer when the frame
/// they started sending stalls past the read deadline.
///
/// Shutdown is cooperative: beginDrain() closes the acceptors (in-flight
/// connections keep draining), quiesce() waits for every pending reply
/// to reach the kernel, shutdown() stops the loops and joins. The stop
/// signal rides each loop's eventfd wakeup, so a parked epoll_wait wakes
/// immediately — no polling interval anywhere on the shutdown path.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_NET_NETSERVER_H
#define DATASPEC_NET_NETSERVER_H

#include "net/Acceptor.h"
#include "net/Conn.h"
#include "net/EventLoop.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dspec {

class SpecializationService;

struct NetServerConfig {
  /// Unix-socket path to listen on; empty = no unix acceptor.
  std::string UnixPath;
  /// TCP listen address ("127.0.0.1:7654", port 0 = ephemeral); empty =
  /// no TCP acceptor. At least one of the two must be set.
  std::string TcpHostPort;
  /// IO threads (event loops); connections are assigned round-robin.
  unsigned IoThreads = 2;
  /// A connection whose in-progress frame stalls longer than this is
  /// reaped (the slow-loris defense). 0 disables reaping.
  unsigned ReadDeadlineMillis = 5000;
  /// Token-bucket request quota per connection, in requests/second;
  /// 0 = unlimited. Requests past the bucket shed with ShedQuota.
  double QuotaRps = 0.0;
  /// Bucket depth: how many requests may burst above the rate.
  double QuotaBurst = 8.0;
  /// Per-connection cap on in-flight (admitted, unanswered) renders;
  /// pipelining past it sheds with ShedQuota.
  unsigned MaxClientQueue = 32;
  /// A connection whose unread replies exceed this many bytes is closed
  /// (a reader this slow is indistinguishable from a dead one).
  size_t MaxWriteBacklog = 64u << 20;
  /// Pixels per RenderPartial frame when a client asks for StreamTiles.
  unsigned StreamChunkPixels = 4096;
};

/// Monotonic front-end counters (all atomics; readable while serving).
struct NetServerStats {
  uint64_t Accepted = 0;
  uint64_t ActiveConns = 0;
  uint64_t QuotaSheds = 0;
  uint64_t DeadlineReaps = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t BackpressureCloses = 0;
  uint64_t StreamedChunks = 0;
};

class NetServer {
public:
  NetServer(SpecializationService &Service, NetServerConfig Config);
  ~NetServer();
  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// Binds the acceptors and starts the IO threads. False with \p Error
  /// on bind failure or a config with no listen address.
  bool start(std::string *Error);

  /// The TCP port actually bound (after port-0 resolution); 0 if none.
  uint16_t boundTcpPort() const { return TcpPort; }

  /// Stops accepting new connections; established ones keep draining.
  /// Idempotent, callable from any thread.
  void beginDrain();

  /// Waits until every connection's pending replies have been serialized
  /// and written to the kernel (or \p TimeoutSeconds passed). Call after
  /// the service has drained so no new completions are in flight.
  bool quiesce(double TimeoutSeconds);

  /// beginDrain + stop every loop + join the IO threads. Idempotent;
  /// called by the destructor. Connections still open are torn down.
  void shutdownServer();

  NetServerStats stats() const;
  /// The /statsz "net" section: the same counters as a JSON object.
  std::string statsJson() const;

  const NetServerConfig &config() const { return Config; }

private:
  friend class Conn;

  struct IoLoop {
    EventLoop Loop;
    std::thread Thread;
    /// Owned by the loop thread (created/erased only there).
    std::unordered_map<uint64_t, std::shared_ptr<Conn>> Conns;
  };

  /// Handles one decoded frame from \p C; false closes the connection
  /// (protocol violation). Loop thread of \p C.
  bool handleFrame(Conn &C, FrameType Type,
                   const std::vector<unsigned char> &Payload);
  void handleRenderRequest(Conn &C, const std::vector<unsigned char> &Payload);

  void onAcceptable(Acceptor &A);
  /// Hands a fresh fd to the next loop (round-robin) for adoption.
  void adoptConnection(int Fd);
  /// Sweeps \p L's connections for stalled reads. Loop thread of \p L.
  void sweepDeadlines(IoLoop &L);
  /// Drops the server's reference to \p C. Loop thread of \p C.
  void removeConn(Conn &C);

  SpecializationService &Service;
  NetServerConfig Config;

  std::vector<std::unique_ptr<IoLoop>> Loops;
  std::vector<Acceptor> Acceptors;
  uint16_t TcpPort = 0;
  std::atomic<uint64_t> NextConnId{1};
  std::atomic<size_t> NextLoop{0};
  std::atomic<bool> Draining{false};
  std::atomic<bool> Stopped{false};
  bool Started = false;

  std::atomic<uint64_t> StatAccepted{0};
  std::atomic<uint64_t> StatActiveConns{0};
  std::atomic<uint64_t> StatQuotaSheds{0};
  std::atomic<uint64_t> StatDeadlineReaps{0};
  std::atomic<uint64_t> StatProtocolErrors{0};
  std::atomic<uint64_t> StatBackpressureCloses{0};
  std::atomic<uint64_t> StatStreamedChunks{0};
};

} // namespace dspec

#endif // DATASPEC_NET_NETSERVER_H
