//===- net/Conn.h - One client connection on an event loop ------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One nonblocking client connection, pinned to one EventLoop: owns the
/// fd, an incremental DSPF frame parser over a read buffer, a write
/// backlog with EPOLLOUT draining, a token-bucket request quota, and a
/// FIFO of reply slots so pipelined requests are answered strictly in
/// request order even when the service completes them out of order.
///
/// Threading: every method (and all state) belongs to the connection's
/// loop thread. The service's completion callbacks hop back onto the
/// loop via EventLoop::post with a weak_ptr, so a connection that died
/// mid-render is simply skipped.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_NET_CONN_H
#define DATASPEC_NET_CONN_H

#include "service/Protocol.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace dspec {

class EventLoop;
class NetServer;

class Conn : public std::enable_shared_from_this<Conn> {
public:
  using Clock = std::chrono::steady_clock;

  Conn(NetServer &Server, EventLoop &Loop, size_t LoopIndex, int Fd,
       uint64_t Id);
  ~Conn();
  Conn(const Conn &) = delete;
  Conn &operator=(const Conn &) = delete;

  /// Registers the fd with the loop. Loop thread only.
  bool start();

  /// Unregisters, closes the fd, fails every pending slot, and tells the
  /// server to drop its reference. Idempotent. Loop thread only.
  void close(const char *Why);

  uint64_t id() const { return Id; }
  bool closed() const { return Fd < 0; }

  /// Render slots admitted to the service and not yet completed.
  unsigned inFlightRenders() const { return InFlightRenders; }
  /// Bytes queued for write and not yet accepted by the kernel.
  size_t writeBacklogBytes() const { return OutBuf.size() - OutConsumed; }
  /// Reply slots not yet fully serialized to the write backlog.
  size_t pendingSlots() const { return Pending.size(); }

  /// Takes one token from the request quota bucket (refilled at the
  /// server's configured rate); false = over quota, shed this request.
  bool takeQuotaToken();

  /// True when a frame has been arriving piecemeal since before
  /// \p Deadline — the slow-loris signal the reaper sweeps for.
  bool readStalledSince(Clock::time_point Deadline) const {
    return PartialFrame && PartialSince <= Deadline;
  }

  //===--------------------------------------------------------------------===//
  // Reply slots (FIFO order)
  //===--------------------------------------------------------------------===//

  /// Reserves the next render reply slot (counts toward the in-flight
  /// cap); replies flush strictly in slot order.
  uint64_t openRenderSlot(bool Stream);
  /// Reserves the next stats reply slot.
  uint64_t openStatsSlot();
  /// Completes a render slot (loop thread; posted from the dispatcher).
  void completeRender(uint64_t Seq, RenderReply Reply);
  /// Completes a stats slot with the /statsz JSON document.
  void completeStats(uint64_t Seq, std::string Json);

private:
  friend class NetServer;

  struct Slot {
    uint64_t Seq = 0;
    bool Done = false;
    bool Stream = false;
    bool IsStats = false;
    bool CountsInFlight = false;
    RenderReply Reply;
    std::string StatsJson;
  };

  void onEvents(uint32_t Events);
  void onReadable();
  void onWritable();
  /// Parses complete frames out of InBuf; false = protocol violation.
  bool parseFrames();
  /// Serializes every leading completed slot into OutBuf, then writes.
  void flushReady();
  void serializeSlot(Slot &S);
  void appendFrame(FrameType Type, const std::vector<unsigned char> &Payload);
  void enableWriteInterest(bool On);
  Slot *findSlot(uint64_t Seq);

  NetServer &Server;
  EventLoop &Loop;
  size_t LoopIndex = 0;
  int Fd = -1;
  uint64_t Id = 0;
  bool WantWrite = false;

  std::vector<unsigned char> InBuf;
  bool PartialFrame = false;
  Clock::time_point PartialSince{};

  std::vector<unsigned char> OutBuf;
  size_t OutConsumed = 0;

  std::deque<Slot> Pending;
  uint64_t NextSeq = 1;
  unsigned InFlightRenders = 0;

  double QuotaTokens = 0.0;
  Clock::time_point QuotaRefilled{};
};

} // namespace dspec

#endif // DATASPEC_NET_CONN_H
