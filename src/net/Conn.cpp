//===- net/Conn.cpp - One client connection on an event loop ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Conn.h"

#include "net/EventLoop.h"
#include "net/NetServer.h"
#include "support/ByteStream.h"
#include "support/Crc32.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dspec;

Conn::Conn(NetServer &Server, EventLoop &Loop, size_t LoopIndex, int Fd,
           uint64_t Id)
    : Server(Server), Loop(Loop), LoopIndex(LoopIndex), Fd(Fd), Id(Id),
      QuotaTokens(Server.config().QuotaBurst),
      QuotaRefilled(Clock::now()) {}

Conn::~Conn() {
  if (Fd >= 0)
    ::close(Fd);
}

bool Conn::start() {
  // The handler keeps the connection alive for the duration of any
  // callback even if close() drops every other reference mid-call.
  auto Self = shared_from_this();
  return Loop.registerFd(Fd, EPOLLIN,
                         [Self](uint32_t Events) { Self->onEvents(Events); });
}

void Conn::close(const char *Why) {
  (void)Why;
  if (Fd < 0)
    return;
  Loop.unregisterFd(Fd);
  ::close(Fd);
  Fd = -1;
  Pending.clear();
  Server.removeConn(*this);
}

bool Conn::takeQuotaToken() {
  double Rate = Server.config().QuotaRps;
  if (Rate <= 0.0)
    return true;
  Clock::time_point Now = Clock::now();
  double Elapsed = std::chrono::duration<double>(Now - QuotaRefilled).count();
  QuotaRefilled = Now;
  QuotaTokens = std::min(Server.config().QuotaBurst,
                         QuotaTokens + Elapsed * Rate);
  if (QuotaTokens < 1.0)
    return false;
  QuotaTokens -= 1.0;
  return true;
}

void Conn::onEvents(uint32_t Events) {
  if (Events & (EPOLLHUP | EPOLLERR)) {
    close("socket error/hangup");
    return;
  }
  if (Events & EPOLLIN)
    onReadable();
  if (closed())
    return;
  if (Events & EPOLLOUT)
    onWritable();
}

void Conn::onReadable() {
  unsigned char Buf[64 * 1024];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      InBuf.insert(InBuf.end(), Buf, Buf + N);
      if (N < static_cast<ssize_t>(sizeof(Buf)))
        break;
      continue;
    }
    if (N == 0) { // clean EOF
      close("peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    close("read error");
    return;
  }
  if (!parseFrames()) {
    ++Server.StatProtocolErrors;
    close("protocol violation");
  }
}

bool Conn::parseFrames() {
  size_t Consumed = 0;
  for (;;) {
    size_t Avail = InBuf.size() - Consumed;
    if (Avail < 16)
      break;
    ByteReader R(InBuf.data() + Consumed, 16);
    uint32_t Magic = R.readU32();
    uint8_t RawType = R.readU8();
    R.readU8();
    R.readU8();
    R.readU8();
    uint32_t PayloadBytes = R.readU32();
    uint32_t StoredCrc = R.readU32();
    if (Magic != kFrameMagic ||
        RawType < static_cast<uint8_t>(FrameType::RenderRequest) ||
        RawType > static_cast<uint8_t>(FrameType::RenderDone) ||
        PayloadBytes > kMaxFramePayload)
      return false;
    if (Avail < 16 + static_cast<size_t>(PayloadBytes))
      break; // frame still arriving
    std::vector<unsigned char> Payload(
        InBuf.begin() + Consumed + 16,
        InBuf.begin() + Consumed + 16 + PayloadBytes);
    if (crc32(Payload.data(), Payload.size()) != StoredCrc)
      return false;
    Consumed += 16 + PayloadBytes;
    if (!Server.handleFrame(*this, static_cast<FrameType>(RawType), Payload))
      return false;
    if (closed())
      return true; // handleFrame (or backlog pressure) closed us
  }
  if (Consumed > 0)
    InBuf.erase(InBuf.begin(), InBuf.begin() + Consumed);
  // Track when the current *incomplete* frame started arriving. The
  // deadline is anchored to the frame start, not the last byte, so a
  // client dripping one byte per second cannot dodge the reaper.
  if (InBuf.empty()) {
    PartialFrame = false;
  } else if (!PartialFrame) {
    PartialFrame = true;
    PartialSince = Clock::now();
  }
  return true;
}

uint64_t Conn::openRenderSlot(bool Stream) {
  Slot S;
  S.Seq = NextSeq++;
  S.Stream = Stream;
  S.CountsInFlight = true;
  ++InFlightRenders;
  Pending.push_back(std::move(S));
  return Pending.back().Seq;
}

uint64_t Conn::openStatsSlot() {
  Slot S;
  S.Seq = NextSeq++;
  S.IsStats = true;
  Pending.push_back(std::move(S));
  return Pending.back().Seq;
}

Conn::Slot *Conn::findSlot(uint64_t Seq) {
  for (Slot &S : Pending)
    if (S.Seq == Seq)
      return &S;
  return nullptr;
}

void Conn::completeRender(uint64_t Seq, RenderReply Reply) {
  Slot *S = findSlot(Seq);
  if (!S)
    return; // connection already tore the slot down
  if (S->CountsInFlight && InFlightRenders > 0)
    --InFlightRenders;
  S->Reply = std::move(Reply);
  S->Done = true;
  flushReady();
}

void Conn::completeStats(uint64_t Seq, std::string Json) {
  Slot *S = findSlot(Seq);
  if (!S)
    return;
  S->StatsJson = std::move(Json);
  S->Done = true;
  flushReady();
}

void Conn::appendFrame(FrameType Type,
                       const std::vector<unsigned char> &Payload) {
  std::vector<unsigned char> Frame = encodeFrame(Type, Payload);
  OutBuf.insert(OutBuf.end(), Frame.begin(), Frame.end());
}

void Conn::serializeSlot(Slot &S) {
  if (S.IsStats) {
    appendFrame(FrameType::StatsReply,
                std::vector<unsigned char>(S.StatsJson.begin(),
                                           S.StatsJson.end()));
    return;
  }
  if (!S.Stream) {
    ByteWriter W;
    encodeRenderReply(W, S.Reply);
    appendFrame(FrameType::RenderReply, W.bytes());
    return;
  }
  // Streamed reply: chop the framebuffer into RenderPartial frames, then
  // a RenderDone trailer carrying status + a CRC over all the pixels.
  uint32_t Partials = 0;
  if (S.Reply.ok()) {
    uint64_t Total = static_cast<uint64_t>(S.Reply.Width) * S.Reply.Height;
    uint32_t Chunk = Server.config().StreamChunkPixels;
    if (Chunk == 0)
      Chunk = 4096;
    for (uint64_t Offset = 0; Offset < Total; Offset += Chunk) {
      RenderPartialChunk Part;
      Part.Width = S.Reply.Width;
      Part.Height = S.Reply.Height;
      Part.PixelOffset = static_cast<uint32_t>(Offset);
      Part.PixelCount =
          static_cast<uint32_t>(std::min<uint64_t>(Chunk, Total - Offset));
      Part.Pixels.assign(
          S.Reply.Pixels.begin() + static_cast<size_t>(Offset) * 3,
          S.Reply.Pixels.begin() +
              static_cast<size_t>(Offset + Part.PixelCount) * 3);
      ByteWriter W;
      encodeRenderPartial(W, Part);
      appendFrame(FrameType::RenderPartial, W.bytes());
      ++Partials;
    }
    Server.StatStreamedChunks += Partials;
  }
  RenderStreamDone Done;
  Done.Status = S.Reply.Status;
  Done.Error = S.Reply.Error;
  Done.Width = S.Reply.Width;
  Done.Height = S.Reply.Height;
  Done.CacheHit = S.Reply.CacheHit;
  Done.ServiceMicros = S.Reply.ServiceMicros;
  Done.NumPartials = Partials;
  Done.PixelCrc = S.Reply.ok() ? pixelCrc(S.Reply.Pixels) : 0;
  ByteWriter W;
  encodeRenderDone(W, Done);
  appendFrame(FrameType::RenderDone, W.bytes());
}

void Conn::flushReady() {
  // Strict FIFO: only leading completed slots serialize, so pipelined
  // replies always arrive in request order no matter which dispatcher
  // finished first.
  while (!Pending.empty() && Pending.front().Done) {
    serializeSlot(Pending.front());
    Pending.pop_front();
  }
  if (writeBacklogBytes() > Server.config().MaxWriteBacklog) {
    ++Server.StatBackpressureCloses;
    close("write backlog over limit");
    return;
  }
  onWritable();
}

void Conn::onWritable() {
  if (closed())
    return;
  while (OutConsumed < OutBuf.size()) {
    ssize_t N = ::send(Fd, OutBuf.data() + OutConsumed,
                       OutBuf.size() - OutConsumed, MSG_NOSIGNAL);
    if (N > 0) {
      OutConsumed += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      enableWriteInterest(true);
      // Reclaim the consumed prefix so a long-lived trickling connection
      // does not pin the full history of its replies in memory.
      if (OutConsumed > (1u << 20)) {
        OutBuf.erase(OutBuf.begin(), OutBuf.begin() + OutConsumed);
        OutConsumed = 0;
      }
      return;
    }
    if (N < 0 && errno == EINTR)
      continue;
    close("write error");
    return;
  }
  OutBuf.clear();
  OutConsumed = 0;
  enableWriteInterest(false);
}

void Conn::enableWriteInterest(bool On) {
  if (On == WantWrite)
    return;
  WantWrite = On;
  Loop.updateFd(Fd, EPOLLIN | (On ? EPOLLOUT : 0u));
}
