//===- net/Poller.h - epoll readiness multiplexer ---------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin RAII wrapper over epoll(7): register/modify/remove file
/// descriptors for readiness interest, then wait for events. One Poller
/// belongs to one EventLoop (and therefore to one thread); nothing here
/// is thread-safe by itself — cross-thread interaction goes through the
/// loop's wakeup fd.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_NET_POLLER_H
#define DATASPEC_NET_POLLER_H

#include <cstdint>
#include <vector>

#include <sys/epoll.h>

namespace dspec {

/// One ready file descriptor from a wait() call.
struct PollEvent {
  int Fd = -1;
  /// EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP bits.
  uint32_t Events = 0;
};

class Poller {
public:
  Poller();
  ~Poller();
  Poller(const Poller &) = delete;
  Poller &operator=(const Poller &) = delete;

  bool valid() const { return EpollFd >= 0; }

  /// Registers \p Fd for \p Events (EPOLLIN/EPOLLOUT). Level-triggered —
  /// handlers drain until EAGAIN, so no readiness edge is ever lost.
  bool add(int Fd, uint32_t Events);
  bool modify(int Fd, uint32_t Events);
  bool remove(int Fd);

  /// Blocks up to \p TimeoutMillis (-1 = forever) and fills \p Out with
  /// the ready set. Returns the event count (0 on timeout); EINTR is
  /// retried internally.
  int wait(std::vector<PollEvent> &Out, int TimeoutMillis);

private:
  int EpollFd = -1;
  std::vector<epoll_event> Scratch;
};

} // namespace dspec

#endif // DATASPEC_NET_POLLER_H
