//===- net/Poller.cpp - epoll readiness multiplexer -------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Poller.h"

#include <cerrno>

#include <unistd.h>

using namespace dspec;

Poller::Poller() : EpollFd(::epoll_create1(EPOLL_CLOEXEC)), Scratch(64) {}

Poller::~Poller() {
  if (EpollFd >= 0)
    ::close(EpollFd);
}

bool Poller::add(int Fd, uint32_t Events) {
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  return ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) == 0;
}

bool Poller::modify(int Fd, uint32_t Events) {
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  return ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, Fd, &Ev) == 0;
}

bool Poller::remove(int Fd) {
  epoll_event Ev{}; // non-null for pre-2.6.9 kernels, per epoll_ctl(2)
  return ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, &Ev) == 0;
}

int Poller::wait(std::vector<PollEvent> &Out, int TimeoutMillis) {
  Out.clear();
  int N;
  do {
    N = ::epoll_wait(EpollFd, Scratch.data(),
                     static_cast<int>(Scratch.size()), TimeoutMillis);
  } while (N < 0 && errno == EINTR);
  if (N <= 0)
    return 0;
  Out.reserve(static_cast<size_t>(N));
  for (int I = 0; I < N; ++I)
    Out.push_back({Scratch[I].data.fd, Scratch[I].events});
  if (static_cast<size_t>(N) == Scratch.size())
    Scratch.resize(Scratch.size() * 2); // saturated: widen the batch
  return N;
}
