//===- net/Acceptor.h - Nonblocking listening sockets -----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Listening sockets for the event-loop front end: TCP ("host:port",
/// port 0 picks an ephemeral port and boundPort() reports it) and
/// unix-domain paths. The listen fd is nonblocking so it can sit in an
/// EventLoop; acceptOne() drains one connection at a time until EAGAIN.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_NET_ACCEPTOR_H
#define DATASPEC_NET_ACCEPTOR_H

#include <cstdint>
#include <string>

namespace dspec {

class Acceptor {
public:
  Acceptor() = default;
  ~Acceptor() { close(); }
  Acceptor(Acceptor &&Other) noexcept
      : Fd(Other.Fd), Port(Other.Port), UnixPath(std::move(Other.UnixPath)) {
    Other.Fd = -1;
    Other.Port = 0;
  }
  Acceptor(const Acceptor &) = delete;
  Acceptor &operator=(const Acceptor &) = delete;
  Acceptor &operator=(Acceptor &&) = delete;

  /// Binds and listens on \p HostPort ("127.0.0.1:7654"; port 0 = pick).
  /// Nonblocking, CLOEXEC, SO_REUSEADDR. False with \p Error on failure.
  bool listenTcp(const std::string &HostPort, std::string *Error);

  /// Binds and listens on a unix-domain \p SocketPath (unlinking a stale
  /// file first). Nonblocking, CLOEXEC.
  bool listenUnix(const std::string &SocketPath, std::string *Error);

  /// Accepts one pending connection (nonblocking, CLOEXEC on the new
  /// fd; TCP_NODELAY for TCP). Returns -1 when none are pending.
  int acceptOne();

  bool listening() const { return Fd >= 0; }
  int fd() const { return Fd; }
  /// The actual bound TCP port (after port-0 resolution); 0 for unix.
  uint16_t boundPort() const { return Port; }

  /// Closes the listen fd (and unlinks a unix path). Idempotent.
  void close();

private:
  int Fd = -1;
  uint16_t Port = 0;
  std::string UnixPath;
};

/// Splits "host:port"; false on a malformed spec.
bool splitHostPort(const std::string &HostPort, std::string &Host,
                   uint16_t &Port);

} // namespace dspec

#endif // DATASPEC_NET_ACCEPTOR_H
