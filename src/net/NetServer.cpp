//===- net/NetServer.cpp - Event-loop service front end ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/NetServer.h"

#include "service/Service.h"
#include "support/ByteStream.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <chrono>
#include <future>

#include <sys/epoll.h>
#include <unistd.h>

using namespace dspec;

NetServer::NetServer(SpecializationService &Service, NetServerConfig InConfig)
    : Service(Service), Config(std::move(InConfig)) {
  if (Config.IoThreads == 0)
    Config.IoThreads = 1;
}

NetServer::~NetServer() { shutdownServer(); }

bool NetServer::start(std::string *Error) {
  if (Config.UnixPath.empty() && Config.TcpHostPort.empty()) {
    if (Error)
      *Error = "no listen address (need a unix path or host:port)";
    return false;
  }

  if (!Config.UnixPath.empty()) {
    Acceptor A;
    if (!A.listenUnix(Config.UnixPath, Error))
      return false;
    Acceptors.push_back(std::move(A));
  }
  if (!Config.TcpHostPort.empty()) {
    Acceptor A;
    if (!A.listenTcp(Config.TcpHostPort, Error)) {
      Acceptors.clear();
      return false;
    }
    TcpPort = A.boundPort();
    Acceptors.push_back(std::move(A));
  }

  Loops.reserve(Config.IoThreads);
  for (unsigned I = 0; I < Config.IoThreads; ++I) {
    auto L = std::make_unique<IoLoop>();
    if (!L->Loop.valid()) {
      if (Error)
        *Error = "cannot create event loop (epoll/eventfd)";
      Acceptors.clear();
      Loops.clear();
      return false;
    }
    Loops.push_back(std::move(L));
  }

  // Acceptors live on loop 0; fresh connections fan out round-robin.
  for (Acceptor &A : Acceptors)
    Loops[0]->Loop.registerFd(A.fd(), EPOLLIN,
                              [this, &A](uint32_t) { onAcceptable(A); });

  if (Config.ReadDeadlineMillis > 0) {
    double Sweep =
        std::max(0.01, static_cast<double>(Config.ReadDeadlineMillis) / 4000.0);
    for (auto &L : Loops) {
      IoLoop *Raw = L.get();
      L->Loop.addTimer(Sweep, /*Repeat=*/true,
                       [this, Raw] { sweepDeadlines(*Raw); });
    }
  }

  for (auto &L : Loops) {
    IoLoop *Raw = L.get();
    L->Thread = std::thread([Raw] { Raw->Loop.run(); });
  }
  Started = true;
  return true;
}

void NetServer::onAcceptable(Acceptor &A) {
  for (;;) {
    int Fd = A.acceptOne();
    if (Fd < 0)
      return;
    if (Draining.load()) {
      ::close(Fd); // drain began between the poll and the accept
      continue;
    }
    adoptConnection(Fd);
  }
}

void NetServer::adoptConnection(int Fd) {
  size_t Index = NextLoop.fetch_add(1) % Loops.size();
  IoLoop *Target = Loops[Index].get();
  uint64_t Id = NextConnId.fetch_add(1);
  ++StatAccepted;
  ++StatActiveConns;
  // Connection state belongs to its loop thread; creation happens there.
  Target->Loop.post([this, Target, Index, Fd, Id] {
    auto C = std::make_shared<Conn>(*this, Target->Loop, Index, Fd, Id);
    if (!C->start()) {
      --StatActiveConns;
      return; // registration failed; ~Conn closes the fd
    }
    Target->Conns.emplace(Id, std::move(C));
  });
}

void NetServer::removeConn(Conn &C) {
  --StatActiveConns;
  Loops[C.LoopIndex]->Conns.erase(C.id());
}

void NetServer::sweepDeadlines(IoLoop &L) {
  if (Config.ReadDeadlineMillis == 0)
    return;
  Conn::Clock::time_point Cutoff =
      Conn::Clock::now() - std::chrono::milliseconds(Config.ReadDeadlineMillis);
  // Collect first: close() mutates the map we are sweeping.
  std::vector<std::shared_ptr<Conn>> Stalled;
  for (auto &[Id, C] : L.Conns)
    if (C->readStalledSince(Cutoff))
      Stalled.push_back(C);
  for (auto &C : Stalled) {
    ++StatDeadlineReaps;
    C->close("read deadline (slow-loris)");
  }
}

bool NetServer::handleFrame(Conn &C, FrameType Type,
                            const std::vector<unsigned char> &Payload) {
  switch (Type) {
  case FrameType::RenderRequest:
    handleRenderRequest(C, Payload);
    return true;
  case FrameType::StatsRequest: {
    uint64_t Seq = C.openStatsSlot();
    C.completeStats(Seq, Service.statsz().toJson());
    return true;
  }
  default:
    // Reply frames from a client are a protocol violation.
    return false;
  }
}

void NetServer::handleRenderRequest(
    Conn &C, const std::vector<unsigned char> &Payload) {
  RenderRequest Request;
  ByteReader R(Payload);
  std::string Error;
  if (!decodeRenderRequest(R, Request, &Error)) {
    uint64_t Seq = C.openRenderSlot(/*Stream=*/false);
    RenderReply Reply;
    Reply.Status = RenderStatus::BadRequest;
    Reply.Error = std::move(Error);
    C.completeRender(Seq, std::move(Reply));
    return;
  }

  // Per-client fairness, enforced before the service queue: a token
  // bucket on request rate and a cap on in-flight pipelining. Both shed
  // with ShedQuota — the client sees exactly why, and other clients'
  // requests never queue behind the excess.
  const char *ShedWhy = nullptr;
  if (!C.takeQuotaToken())
    ShedWhy = "request quota exceeded (token bucket empty)";
  else if (C.inFlightRenders() >= Config.MaxClientQueue)
    ShedWhy = "per-client in-flight cap reached";
  if (ShedWhy) {
    ++StatQuotaSheds;
    Service.recordShedQuota();
    uint64_t Seq = C.openRenderSlot(Request.StreamTiles);
    RenderReply Reply;
    Reply.Status = RenderStatus::ShedQuota;
    Reply.Error = ShedWhy;
    C.completeRender(Seq, std::move(Reply));
    return;
  }

  uint64_t Seq = C.openRenderSlot(Request.StreamTiles);
  // The dispatcher finishes on its own thread; hop back to the loop with
  // a weak_ptr so a connection that died mid-render is skipped, and hold
  // the loop by pointer — loops outlive the service drain (see serve's
  // shutdown order).
  std::weak_ptr<Conn> Weak = C.weak_from_this();
  EventLoop *Loop = &C.Loop;
  Service.submitAsync(
      std::move(Request), [Weak, Loop, Seq](RenderReply Reply) {
        auto Boxed =
            std::make_shared<RenderReply>(std::move(Reply));
        Loop->post([Weak, Seq, Boxed] {
          if (auto C = Weak.lock())
            C->completeRender(Seq, std::move(*Boxed));
        });
      });
}

void NetServer::beginDrain() {
  if (Draining.exchange(true) || !Started)
    return;
  // Acceptors are loop-0 state; close them there so no accept races.
  Loops[0]->Loop.post([this] {
    for (Acceptor &A : Acceptors) {
      if (A.listening())
        Loops[0]->Loop.unregisterFd(A.fd());
      A.close();
    }
  });
}

bool NetServer::quiesce(double TimeoutSeconds) {
  if (!Started || Stopped.load())
    return true;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(TimeoutSeconds));
  for (;;) {
    size_t Busy = 0;
    for (auto &L : Loops) {
      // Query connection state on its owning thread.
      auto Promise = std::make_shared<std::promise<size_t>>();
      std::future<size_t> Done = Promise->get_future();
      IoLoop *Raw = L.get();
      L->Loop.post([Raw, Promise] {
        size_t Pending = 0;
        for (auto &[Id, C] : Raw->Conns)
          Pending += C->pendingSlots() + (C->writeBacklogBytes() > 0 ? 1 : 0);
        Promise->set_value(Pending);
      });
      if (Done.wait_for(std::chrono::seconds(2)) !=
          std::future_status::ready)
        return false; // loop wedged; shutdown will tear it down anyway
      Busy += Done.get();
    }
    if (Busy == 0)
      return true;
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void NetServer::shutdownServer() {
  if (!Started || Stopped.exchange(true))
    return;
  beginDrain();
  for (auto &L : Loops)
    L->Loop.stop();
  for (auto &L : Loops)
    if (L->Thread.joinable())
      L->Thread.join();
  // Loop threads are gone; tear down surviving connections directly
  // (their destructors close the fds).
  for (auto &L : Loops)
    L->Conns.clear();
  Acceptors.clear();
}

NetServerStats NetServer::stats() const {
  NetServerStats Out;
  Out.Accepted = StatAccepted;
  Out.ActiveConns = StatActiveConns;
  Out.QuotaSheds = StatQuotaSheds;
  Out.DeadlineReaps = StatDeadlineReaps;
  Out.ProtocolErrors = StatProtocolErrors;
  Out.BackpressureCloses = StatBackpressureCloses;
  Out.StreamedChunks = StatStreamedChunks;
  return Out;
}

std::string NetServer::statsJson() const {
  NetServerStats S = stats();
  return formatString(
      "{\"io_threads\":%u,\"accepted\":%llu,\"active_conns\":%llu,"
      "\"quota_sheds\":%llu,\"deadline_reaps\":%llu,"
      "\"protocol_errors\":%llu,\"backpressure_closes\":%llu,"
      "\"streamed_chunks\":%llu}",
      Config.IoThreads, static_cast<unsigned long long>(S.Accepted),
      static_cast<unsigned long long>(S.ActiveConns),
      static_cast<unsigned long long>(S.QuotaSheds),
      static_cast<unsigned long long>(S.DeadlineReaps),
      static_cast<unsigned long long>(S.ProtocolErrors),
      static_cast<unsigned long long>(S.BackpressureCloses),
      static_cast<unsigned long long>(S.StreamedChunks));
}
