//===- net/EventLoop.cpp - One IO thread's reactor --------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/EventLoop.h"

#include <algorithm>

#include <sys/eventfd.h>
#include <unistd.h>

using namespace dspec;

EventLoop::EventLoop()
    : WakeFd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (valid())
    Ring.add(WakeFd, EPOLLIN);
}

EventLoop::~EventLoop() {
  if (WakeFd >= 0)
    ::close(WakeFd);
}

bool EventLoop::valid() const { return Ring.valid() && WakeFd >= 0; }

void EventLoop::stop() {
  Stopping.store(true);
  uint64_t One = 1;
  [[maybe_unused]] ssize_t N = ::write(WakeFd, &One, sizeof(One));
}

void EventLoop::post(Task T) {
  {
    std::lock_guard<std::mutex> Lock(TaskMutex);
    Tasks.push_back(std::move(T));
  }
  uint64_t One = 1;
  [[maybe_unused]] ssize_t N = ::write(WakeFd, &One, sizeof(One));
}

bool EventLoop::registerFd(int Fd, uint32_t Events, FdHandler Handler) {
  if (!Ring.add(Fd, Events))
    return false;
  Handlers[Fd] = std::make_shared<FdHandler>(std::move(Handler));
  return true;
}

bool EventLoop::updateFd(int Fd, uint32_t Events) {
  return Ring.modify(Fd, Events);
}

void EventLoop::unregisterFd(int Fd) {
  Ring.remove(Fd);
  Handlers.erase(Fd);
}

uint64_t EventLoop::addTimer(double DelaySeconds, bool Repeat, Task Fire) {
  uint64_t Id = NextTimerId++;
  Timers[Id] = {std::move(Fire), DelaySeconds, Repeat, false};
  TimerHeap.push_back(
      {Clock::now() + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(DelaySeconds)),
       Id});
  std::push_heap(TimerHeap.begin(), TimerHeap.end(),
                 std::greater<TimerDeadline>());
  return Id;
}

void EventLoop::cancelTimer(uint64_t Id) {
  auto It = Timers.find(Id);
  if (It != Timers.end())
    It->second.Cancelled = true; // reaped lazily when its deadline pops
}

void EventLoop::drainWakeup() {
  uint64_t Count;
  while (::read(WakeFd, &Count, sizeof(Count)) > 0) {
  }
}

void EventLoop::runTasks() {
  std::vector<Task> Ready;
  {
    std::lock_guard<std::mutex> Lock(TaskMutex);
    Ready.swap(Tasks);
  }
  for (Task &T : Ready)
    T();
}

int EventLoop::millisToNextTimer() const {
  if (TimerHeap.empty())
    return -1;
  auto Delta = TimerHeap.front().When - Clock::now();
  auto Millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(Delta).count();
  if (Millis < 0)
    return 0;
  // +1 so we never spin on a deadline that rounds down to "now".
  return static_cast<int>(Millis) + 1;
}

void EventLoop::fireDueTimers() {
  Clock::time_point Now = Clock::now();
  while (!TimerHeap.empty() && TimerHeap.front().When <= Now) {
    TimerDeadline Due = TimerHeap.front();
    std::pop_heap(TimerHeap.begin(), TimerHeap.end(),
                  std::greater<TimerDeadline>());
    TimerHeap.pop_back();
    auto It = Timers.find(Due.Id);
    if (It == Timers.end())
      continue;
    if (It->second.Cancelled) {
      Timers.erase(It);
      continue;
    }
    // Copy the task out: the handler may add/cancel timers (rehash).
    Task Fire = It->second.Fire;
    bool Repeat = It->second.Repeat;
    double Interval = It->second.IntervalSeconds;
    if (Repeat) {
      TimerHeap.push_back(
          {Now + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(Interval)),
           Due.Id});
      std::push_heap(TimerHeap.begin(), TimerHeap.end(),
                     std::greater<TimerDeadline>());
    } else {
      Timers.erase(It);
    }
    Fire();
  }
}

void EventLoop::run() {
  LoopThread.store(std::this_thread::get_id());
  std::vector<PollEvent> Ready;
  while (!Stopping.load()) {
    Ring.wait(Ready, millisToNextTimer());
    for (const PollEvent &Ev : Ready) {
      if (Ev.Fd == WakeFd) {
        drainWakeup();
        continue;
      }
      // Hold the handler by shared_ptr across the call: it may
      // unregister itself (connection close) while running.
      auto It = Handlers.find(Ev.Fd);
      if (It == Handlers.end())
        continue;
      std::shared_ptr<FdHandler> Handler = It->second;
      (*Handler)(Ev.Events);
    }
    fireDueTimers();
    runTasks();
  }
  // One final drain so tasks posted concurrently with stop() still run
  // (completion callbacks racing a shutdown would otherwise vanish).
  runTasks();
  LoopThread.store(std::thread::id());
}
