//===- engine/RenderEngine.cpp - Batched multi-threaded renderer -----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/RenderEngine.h"

#include <atomic>
#include <cassert>

using namespace dspec;

RenderEngine::RenderEngine(unsigned Threads, unsigned TilePixels)
    : Pool(std::make_unique<ThreadPool>(Threads)),
      TileSize(TilePixels == 0 ? 1 : TilePixels) {
  Machines.resize(Pool->workerCount());
}

bool RenderEngine::runPass(const Chunk &Code, const RenderGrid &Grid,
                           const std::vector<float> &Controls,
                           CacheArena *Arena, Framebuffer *Out) {
  assert((!Out || (Out->width() == Grid.width() &&
                   Out->height() == Grid.height())) &&
         "framebuffer does not match the grid");

  const std::vector<PixelInput> &Pixels = Grid.pixels();
  const size_t Count = Grid.pixelCount();
  const size_t Tiles = (Count + TileSize - 1) / TileSize;
  const unsigned Width = Grid.width();

  /// Per-worker frame state: the reusable argument vector plus the first
  /// trap this worker hit.
  struct WorkerState {
    std::vector<Value> Args;
    size_t TrapPixel = SIZE_MAX;
    std::string TrapMessage;
  };
  std::vector<WorkerState> States(Pool->workerCount());
  for (WorkerState &S : States) {
    S.Args.resize(NumPixelParams + Controls.size());
    for (size_t C = 0; C < Controls.size(); ++C)
      S.Args[NumPixelParams + C] = Value::makeFloat(Controls[C]);
  }

  std::atomic<bool> AnyTrap{false};

  Pool->parallelFor(Tiles, [&](unsigned Worker, size_t Tile) {
    if (AnyTrap.load(std::memory_order_relaxed))
      return; // the pass already failed; stop starting new tiles
    WorkerState &S = States[Worker];
    VM &Machine = Machines[Worker];
    const size_t Begin = Tile * TileSize;
    const size_t End = Begin + TileSize < Count ? Begin + TileSize : Count;
    for (size_t Index = Begin; Index < End; ++Index) {
      const PixelInput &In = Pixels[Index];
      S.Args[0] = In.UV;
      S.Args[1] = In.P;
      S.Args[2] = In.N;
      S.Args[3] = In.I;
      ExecResult R =
          Arena ? Machine.run(Code, S.Args,
                              Arena->view(static_cast<unsigned>(Index)))
                : Machine.run(Code, S.Args);
      if (!R.ok()) {
        if (Index < S.TrapPixel) {
          S.TrapPixel = Index;
          S.TrapMessage = R.TrapMessage;
        }
        AnyTrap.store(true, std::memory_order_relaxed);
        return;
      }
      if (Out)
        Out->at(static_cast<unsigned>(Index) % Width,
                static_cast<unsigned>(Index) / Width) = R.Result;
    }
  });

  if (AnyTrap.load(std::memory_order_relaxed)) {
    // Report the lowest-numbered trapping pixel so failures read the same
    // at every thread count.
    size_t Best = SIZE_MAX;
    for (const WorkerState &S : States)
      if (S.TrapPixel < Best) {
        Best = S.TrapPixel;
        LastTrap = "pixel " + std::to_string(Best) + ": " + S.TrapMessage;
      }
    return false;
  }
  return true;
}

bool RenderEngine::loaderPass(const Chunk &Loader, const CacheLayout &Layout,
                              const RenderGrid &Grid,
                              const std::vector<float> &Controls,
                              CacheArena &Arena, Framebuffer *Out) {
  assert(Loader.CacheBytes <= Layout.totalBytes() &&
         "loader was compiled against a larger layout");
  if (Arena.pixelCount() != Grid.pixelCount() ||
      Arena.strideBytes() != Layout.totalBytes())
    Arena.reset(Grid.pixelCount(), Layout);
  return runPass(Loader, Grid, Controls, &Arena, Out);
}

bool RenderEngine::readerPass(const Chunk &Reader, const RenderGrid &Grid,
                              const std::vector<float> &Controls,
                              const CacheArena &Arena, Framebuffer *Out) {
  assert(Arena.pixelCount() == Grid.pixelCount() &&
         Arena.strideBytes() >= Reader.CacheBytes &&
         "arena was not loaded for this grid and layout");
  // Readers contain cache loads only (the splitter never emits stores in
  // the dynamic projection), so the arena stays untouched.
  return runPass(Reader, Grid, Controls, const_cast<CacheArena *>(&Arena),
                 Out);
}

bool RenderEngine::plainPass(const Chunk &Original, const RenderGrid &Grid,
                             const std::vector<float> &Controls,
                             Framebuffer *Out) {
  return runPass(Original, Grid, Controls, nullptr, Out);
}

bool RenderEngine::saveSnapshot(const std::string &Path,
                                const SnapshotMeta &Meta, const Chunk &Loader,
                                const Chunk &Reader, const CacheLayout &Layout,
                                const CacheArena &Arena, std::string *Error) {
  if (Arena.strideBytes() != Layout.totalBytes() ||
      Arena.pixelCount() != Meta.GridWidth * Meta.GridHeight) {
    if (Error)
      *Error = "snapshot: arena does not match the layout and grid (was "
               "loaderPass run?)";
    return false;
  }
  SpecializationSnapshot Snap;
  Snap.Meta = Meta;
  Snap.Loader = Loader;
  Snap.Reader = Reader;
  Snap.Layout = Layout;
  Snap.ArenaPixels = Arena.pixelCount();
  Snap.ArenaStride = Arena.strideBytes();
  Snap.ArenaBytes.assign(Arena.raw(), Arena.raw() + Arena.totalBytes());
  return writeSnapshotFile(Path, Snap, Error);
}

std::optional<RenderEngine::WarmStart>
RenderEngine::fromSnapshot(const std::string &Path, std::string *Error) {
  SpecializationSnapshot Snap;
  if (!readSnapshotFile(Path, Snap, Error))
    return std::nullopt;
  // The reader's signature must fit the engine's calling convention:
  // the four per-pixel inputs plus the recorded controls.
  if (Snap.Reader.NumParams !=
      NumPixelParams + static_cast<unsigned>(Snap.Meta.Controls.size())) {
    if (Error)
      *Error = "snapshot: reader takes " +
               std::to_string(Snap.Reader.NumParams) +
               " parameters but the snapshot records " +
               std::to_string(Snap.Meta.Controls.size()) +
               " controls (+4 pixel inputs)";
    return std::nullopt;
  }

  std::optional<WarmStart> Warm;
  Warm.emplace(Snap.Meta.GridWidth, Snap.Meta.GridHeight);
  Warm->Meta = std::move(Snap.Meta);
  Warm->Loader = std::move(Snap.Loader);
  Warm->Reader = std::move(Snap.Reader);
  Warm->Layout = Snap.Layout;
  if (!Warm->Arena.restore(Snap.ArenaPixels, Snap.Layout,
                           Snap.ArenaBytes.data(), Snap.ArenaBytes.size())) {
    if (Error)
      *Error = "snapshot: arena payload does not match pixels x stride";
    return std::nullopt;
  }
  return Warm;
}
