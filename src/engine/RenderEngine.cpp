//===- engine/RenderEngine.cpp - Batched multi-threaded renderer -----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/RenderEngine.h"

#include "jit/Jit.h"

#include <atomic>
#include <cassert>

using namespace dspec;

RenderEngine::RenderEngine(unsigned Threads, unsigned TilePixels)
    : Pool(std::make_unique<ThreadPool>(Threads)),
      TileSize(TilePixels == 0 ? 1 : TilePixels) {
  Machines.resize(Pool->workerCount());
}

namespace {

/// Whether any instruction of \p Code writes the cache (loader chunks do;
/// readers never — the splitter emits loads only in the dynamic
/// projection). One linear scan per pass, used to gate the native tier
/// off read-only arenas.
bool chunkStoresCache(const Chunk &Code) {
  for (const Instr &In : Code.Code)
    if (In.Op == OpCode::OC_CacheStore)
      return true;
  return false;
}

} // namespace

bool RenderEngine::runPass(const Chunk &Code, const RenderGrid &Grid,
                           const std::vector<float> &Controls,
                           CacheArena *MutArena, const CacheArena *ROArena,
                           Framebuffer *Out) {
  assert((!Out || (Out->width() == Grid.width() &&
                   Out->height() == Grid.height())) &&
         "framebuffer does not match the grid");
  assert(!(MutArena && ROArena) && "a pass binds at most one arena");
  const CacheArena *Arena = MutArena ? MutArena : ROArena;

  const std::vector<PixelInput> &Pixels = Grid.pixels();
  const size_t Count = Grid.pixelCount();
  const size_t Tiles = (Count + TileSize - 1) / TileSize;
  const unsigned Width = Grid.width();
  const unsigned NumArgs =
      NumPixelParams + static_cast<unsigned>(Controls.size());

  // Decode (and fuse) once per pass; the cost is one linear scan of the
  // chunk, negligible against per-pixel execution, and rebuilding here
  // is what keeps snapshots format-stable: files persist the plain Chunk
  // and every load re-fuses. An invalid decode (hand-built or hostile
  // bytecode) silently falls back to the switch tier, whose dynamic
  // checks produce the canonical diagnostics.
  // Native tier: fetch (or stitch) the chunk's machine code first. The
  // program owns its own decoded ExecChunk, so a hit skips buildExecChunk
  // entirely; a miss that stitches is charged to this pass's stats. Any
  // failure — unsupported host, DSPEC_FORCE_NO_JIT, W^X allocation,
  // inexpressible opcode — leaves Native null and the pass deopts to the
  // threaded tier below (bit-identical by construction).
  // Layout gates. The stitched cache fragments address one dense pixel
  // stride, so a mapped (slot-major / tile-blocked / cold-packed) arena
  // deopts the native tier to threaded — the ISSUE-sanctioned fallback —
  // and a read-only arena additionally deopts any chunk containing a
  // cache store (the JIT's store helper writes through the frame's one
  // pointer and cannot trap on constness). The batched tier needs every
  // work tile inside one arena block; otherwise it runs threaded, which
  // resolves the map per view.
  const bool ArenaDense = !Arena || Arena->denseViews();
  const bool ArenaReadOnly = ROArena != nullptr;
  const bool NativeEligible =
      ArenaDense && !(ArenaReadOnly && chunkStoresCache(Code));

  std::shared_ptr<const jit::JitProgram> Native;
  bool StitchedNow = false;
  if (Tier == ExecTier::Native && NativeEligible)
    Native = jit::ensureCompiled(Code, &StitchedNow);
  const bool UseNative = Native != nullptr;

  ExecChunk Decoded;
  if (Tier != ExecTier::Switch && !UseNative)
    Decoded = buildExecChunk(Code);
  const bool UseThreaded =
      !UseNative && Tier != ExecTier::Switch && Decoded.Valid;
  const bool UseBatched = Tier == ExecTier::Batched && Decoded.Valid &&
                          Decoded.BatchSafe &&
                          (!Arena || Arena->batchCompatible(TileSize));

  /// Per-worker frame state: the reusable argument vectors (scalar and
  /// lane-major batched forms), the first trap this worker hit, and the
  /// worker's share of the pass execution stats (summed after the join,
  /// so no atomics on the hot path).
  struct WorkerState {
    std::vector<Value> Args;
    std::vector<Value> LaneArgs; // TileSize x NumArgs, lane-major
    std::vector<Value> Results;  // TileSize batched results
    size_t TrapPixel = SIZE_MAX;
    std::string TrapMessage;
    PassExecStats Stats;
  };
  std::vector<WorkerState> States(Pool->workerCount());
  for (WorkerState &S : States) {
    S.Args.resize(NumArgs);
    for (size_t C = 0; C < Controls.size(); ++C)
      S.Args[NumPixelParams + C] = Value::makeFloat(Controls[C]);
    if (UseBatched) {
      // Controls are uniform across lanes; fill them once up front so the
      // per-tile loop only writes the four pixel params per lane.
      S.LaneArgs.resize(static_cast<size_t>(TileSize) * NumArgs);
      for (unsigned Lane = 0; Lane < TileSize; ++Lane)
        for (size_t C = 0; C < Controls.size(); ++C)
          S.LaneArgs[static_cast<size_t>(Lane) * NumArgs + NumPixelParams +
                     C] = Value::makeFloat(Controls[C]);
      S.Results.resize(TileSize);
    }
  }

  std::atomic<bool> AnyTrap{false};

  Pool->parallelFor(Tiles, [&](unsigned Worker, size_t Tile) {
    if (AnyTrap.load(std::memory_order_relaxed))
      return; // the pass already failed; stop starting new tiles
    WorkerState &S = States[Worker];
    VM &Machine = Machines[Worker];
    const size_t Begin = Tile * TileSize;
    const size_t End = Begin + TileSize < Count ? Begin + TileSize : Count;

    // Which scalar interpreter a per-pixel fallback uses: threaded by
    // default; a real batch *trap* pins it to the classic switch so the
    // reported message names the canonical lowest trapping pixel.
    bool PerPixelThreaded = UseThreaded;

    if (UseBatched) {
      const unsigned Lanes = static_cast<unsigned>(End - Begin);
      for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
        const PixelInput &In = Pixels[Begin + Lane];
        Value *A = S.LaneArgs.data() + static_cast<size_t>(Lane) * NumArgs;
        A[0] = In.UV;
        A[1] = In.P;
        A[2] = In.N;
        A[3] = In.I;
      }
      BatchRequest Req;
      Req.LaneArgs = S.LaneArgs.data();
      Req.NumArgs = NumArgs;
      Req.Lanes = Lanes;
      if (Arena) {
        Req.CacheBytes = Arena->strideBytes();
        if (Arena->denseViews()) {
          Req.CacheBase = Arena->raw() + Begin * Arena->strideBytes();
          Req.CacheStride = Arena->strideBytes();
          if (MutArena)
            Req.CacheStoreBase =
                MutArena->raw() + Begin * MutArena->strideBytes();
        } else {
          // Mapped arena: hand over the whole buffer plus the address
          // map; slot rows resolve per access. batchCompatible
          // guaranteed this tile lies inside one block.
          Req.CacheBase = Arena->raw();
          Req.CacheMap = Arena->map();
          Req.CacheBlockPixels = Arena->blockPixels();
          Req.CacheFirstPixel = static_cast<unsigned>(Begin);
          if (MutArena)
            Req.CacheStoreBase = MutArena->raw();
        }
      }
      Req.Results = S.Results.data();
      ExecResult R = Machine.runBatch(Decoded, Req);
      S.Stats.BatchDispatchLanes += R.BatchDispatches * Lanes;
      S.Stats.BatchActiveLanes += R.InstructionsExecuted;
      if (R.ok() && !R.Diverged) {
        ++S.Stats.BatchTiles;
        if (Out)
          for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
            const unsigned Index = static_cast<unsigned>(Begin + Lane);
            Out->at(Index % Width, Index / Width) = S.Results[Lane];
          }
        return;
      }
      if (R.Diverged) {
        // Unmaskable control flow diverged across the tile's lanes — not
        // an error. Re-run per-pixel on the threaded tier (bit-identical
        // by construction, and much faster than the switch).
        ++S.Stats.BailedTiles;
      } else {
        // A batch trap carries no lane attribution: re-run the tile
        // per-pixel through the classic switch interpreter so the
        // canonical lowest-pixel diagnostic comes out identical to the
        // scalar tiers.
        PerPixelThreaded = false;
      }
    }

    for (size_t Index = Begin; Index < End; ++Index) {
      const PixelInput &In = Pixels[Index];
      S.Args[0] = In.UV;
      S.Args[1] = In.P;
      S.Args[2] = In.N;
      S.Args[3] = In.I;
      // The const accessor yields a read-only view: reader passes cannot
      // write the arena, any tier's cache store against it traps.
      CacheView View =
          MutArena ? MutArena->view(static_cast<unsigned>(Index))
                   : (ROArena ? ROArena->view(static_cast<unsigned>(Index))
                              : CacheView());
      ExecResult R;
      if (UseNative) {
        R = Machine.runJit(*Native, S.Args, View);
        ++S.Stats.NativePixels;
        if (!R.ok()) {
          // Canonical diagnostics policy: re-derive the message through
          // the reference switch interpreter (tier switch on trap), the
          // same way a batch trap does. Only the message is taken — if
          // the reference run somehow succeeds, the native trap stands
          // so a semantics divergence would surface, not be masked.
          ExecResult Ref = Arena ? Machine.run(Code, S.Args, View)
                                 : Machine.run(Code, S.Args);
          if (!Ref.ok())
            R.TrapMessage = std::move(Ref.TrapMessage);
        }
      } else {
        R = PerPixelThreaded ? Machine.runThreaded(Decoded, S.Args, View)
                             : (Arena ? Machine.run(Code, S.Args, View)
                                      : Machine.run(Code, S.Args));
      }
      if (!R.ok()) {
        if (Index < S.TrapPixel) {
          S.TrapPixel = Index;
          S.TrapMessage = R.TrapMessage;
        }
        AnyTrap.store(true, std::memory_order_relaxed);
        return;
      }
      if (Out)
        Out->at(static_cast<unsigned>(Index) % Width,
                static_cast<unsigned>(Index) / Width) = R.Result;
    }
  });

  LastStats = PassExecStats();
  for (const WorkerState &S : States) {
    LastStats.BatchTiles += S.Stats.BatchTiles;
    LastStats.BailedTiles += S.Stats.BailedTiles;
    LastStats.BatchDispatchLanes += S.Stats.BatchDispatchLanes;
    LastStats.BatchActiveLanes += S.Stats.BatchActiveLanes;
    LastStats.NativePixels += S.Stats.NativePixels;
  }
  if (UseNative) {
    LastStats.NativeCompiles = StitchedNow ? 1 : 0;
    LastStats.NativeCodeBytes = Native->codeBytes();
    LastStats.NativeCompileSeconds = StitchedNow ? Native->compileSeconds() : 0.0;
  }

  if (AnyTrap.load(std::memory_order_relaxed)) {
    // Report the lowest-numbered trapping pixel so failures read the same
    // at every thread count.
    size_t Best = SIZE_MAX;
    for (const WorkerState &S : States)
      if (S.TrapPixel < Best) {
        Best = S.TrapPixel;
        LastTrap = "pixel " + std::to_string(Best) + ": " + S.TrapMessage;
      }
    return false;
  }
  return true;
}

bool RenderEngine::loaderPass(const Chunk &Loader, const CacheLayout &Layout,
                              const RenderGrid &Grid,
                              const std::vector<float> &Controls,
                              CacheArena &Arena, Framebuffer *Out) {
  assert(Loader.CacheBytes <= Layout.totalBytes() &&
         "loader was compiled against a larger layout");
  if (Arena.pixelCount() != Grid.pixelCount() ||
      Arena.strideBytes() != Layout.totalBytes() ||
      Arena.layoutConfig() != ArenaCfg)
    Arena.reset(Grid.pixelCount(), Layout, ArenaCfg);
  return runPass(Loader, Grid, Controls, &Arena, nullptr, Out);
}

bool RenderEngine::readerPass(const Chunk &Reader, const RenderGrid &Grid,
                              const std::vector<float> &Controls,
                              const CacheArena &Arena, Framebuffer *Out) {
  assert(Arena.pixelCount() == Grid.pixelCount() &&
         Arena.strideBytes() >= Reader.CacheBytes &&
         "arena was not loaded for this grid and layout");
  // Readers contain cache loads only (the splitter never emits stores in
  // the dynamic projection); the read-only binding makes that a hard
  // guarantee — a store through any tier traps instead of writing.
  return runPass(Reader, Grid, Controls, nullptr, &Arena, Out);
}

bool RenderEngine::plainPass(const Chunk &Original, const RenderGrid &Grid,
                             const std::vector<float> &Controls,
                             Framebuffer *Out) {
  return runPass(Original, Grid, Controls, nullptr, nullptr, Out);
}

bool RenderEngine::saveSnapshot(const std::string &Path,
                                const SnapshotMeta &Meta, const Chunk &Loader,
                                const Chunk &Reader, const CacheLayout &Layout,
                                const CacheArena &Arena, std::string *Error) {
  return saveSnapshot(Path, Meta, Loader, Reader, Layout, Arena, {}, Error);
}

bool RenderEngine::saveSnapshot(const std::string &Path,
                                const SnapshotMeta &Meta, const Chunk &Loader,
                                const Chunk &Reader, const CacheLayout &Layout,
                                const CacheArena &Arena,
                                const std::vector<SnapshotVariant> &Variants,
                                std::string *Error) {
  if (Arena.strideBytes() != Layout.totalBytes() ||
      Arena.pixelCount() != Meta.GridWidth * Meta.GridHeight) {
    if (Error)
      *Error = "snapshot: arena does not match the layout and grid (was "
               "loaderPass run?)";
    return false;
  }
  SpecializationSnapshot Snap;
  Snap.Meta = Meta;
  Snap.Loader = Loader;
  Snap.Reader = Reader;
  Snap.Layout = Layout;
  Snap.ArenaPixels = Arena.pixelCount();
  Snap.ArenaStride = Arena.strideBytes();
  // The ARENA section is always the canonical pixel-major image, whatever
  // physical layout the arena uses in memory — files stay compatible and
  // a load re-blocks into the restoring engine's layout.
  Snap.ArenaBytes = Arena.canonicalBytes();
  Snap.Variants = Variants;
  return writeSnapshotFile(Path, Snap, Error);
}

std::optional<size_t> RenderEngine::WarmStart::selectVariant(
    const std::vector<float> &Controls) const {
  std::optional<size_t> Best;
  unsigned BestSpecificity = 0;
  for (size_t I = 0; I < Variants.size(); ++I) {
    if (!Variants[I].Key.admits(Controls, NumPixelParams))
      continue;
    unsigned S = Variants[I].Key.specificity();
    if (!Best || S > BestSpecificity) {
      Best = I;
      BestSpecificity = S;
    }
  }
  return Best;
}

std::optional<RenderEngine::WarmStart>
RenderEngine::fromSnapshot(const std::string &Path, std::string *Error) {
  SpecializationSnapshot Snap;
  if (!readSnapshotFile(Path, Snap, Error))
    return std::nullopt;
  // The reader's signature must fit the engine's calling convention:
  // the four per-pixel inputs plus the recorded controls.
  if (Snap.Reader.NumParams !=
      NumPixelParams + static_cast<unsigned>(Snap.Meta.Controls.size())) {
    if (Error)
      *Error = "snapshot: reader takes " +
               std::to_string(Snap.Reader.NumParams) +
               " parameters but the snapshot records " +
               std::to_string(Snap.Meta.Controls.size()) +
               " controls (+4 pixel inputs)";
    return std::nullopt;
  }

  std::optional<WarmStart> Warm;
  Warm.emplace(Snap.Meta.GridWidth, Snap.Meta.GridHeight);
  Warm->Meta = std::move(Snap.Meta);
  Warm->Loader = std::move(Snap.Loader);
  Warm->Reader = std::move(Snap.Reader);
  Warm->Layout = Snap.Layout;
  if (!Warm->Arena.restore(Snap.ArenaPixels, Snap.Layout,
                           std::move(Snap.ArenaBytes))) {
    if (Error)
      *Error = "snapshot: arena payload does not match pixels x stride";
    return std::nullopt;
  }
  Warm->Variants.reserve(Snap.Variants.size());
  for (SnapshotVariant &V : Snap.Variants) {
    WarmVariant W;
    W.Key = std::move(V.Key);
    W.Label = std::move(V.Label);
    W.Loader = std::move(V.Loader);
    W.Reader = std::move(V.Reader);
    W.Layout = V.Layout;
    if (!W.Arena.restore(V.ArenaPixels, V.Layout,
                         std::move(V.ArenaBytes))) {
      if (Error)
        *Error = "snapshot: variant '" + W.Label +
                 "' arena payload does not match pixels x stride";
      return std::nullopt;
    }
    Warm->Variants.push_back(std::move(W));
  }
  return Warm;
}
