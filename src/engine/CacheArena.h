//===- engine/CacheArena.h - Packed per-pixel cache storage -----*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One contiguous, cacheline-aligned allocation holding every pixel's
/// packed specialization cache for a full render grid. Logically the
/// arena is always pixelCount x CacheLayout::totalBytes() canonical
/// bytes — what bytecode offsets address and what a snapshot's ARENA
/// section stores verbatim — but the *physical* arrangement follows an
/// ArenaLayoutConfig (engine/ArenaLayout.h):
///
///   PixelMajor          pixel strides back to back (identity: physical
///                       == canonical, views carry no map, zero
///                       overhead against the seed);
///   SlotMajor           one pixels-length column per slot (unit-stride
///                       batched lane loops);
///   TileBlocked         slot columns within fixed-size pixel blocks;
///   (+ PackCold)        within each block, slots whose ReuseWeight
///                       marks them cold move behind the hot columns,
///                       shrinking the stride streaming readers pay.
///
/// Non-identity layouts are described by a per-4-byte-word affine map
/// (ArenaSlotAddr): canonical word w of the pixel at (block B, lane L)
/// lives at Base(w) + B*Block(w) + L*LaneW(w). CacheView resolves the
/// map on scalar paths; the batched interpreter resolves one entry per
/// slot access and walks the column with unit stride.
///
/// The arena copies the layout it was built from, so views and decoding
/// stay valid regardless of where the owning specialization moves.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ENGINE_CACHEARENA_H
#define DATASPEC_ENGINE_CACHEARENA_H

#include "engine/ArenaLayout.h"
#include "specialize/CacheLayout.h"
#include "support/AlignedBuffer.h"
#include "vm/CacheView.h"

#include <vector>

namespace dspec {

/// Packed cache storage for a whole pixel grid.
class CacheArena {
public:
  /// Tail slack past the last mapped block so a hostile wide load at the
  /// end of the last column stays inside the allocation (mapped layouts
  /// only; dense bounds checks need none).
  static constexpr size_t kTailSlackBytes = 64;

  CacheArena() = default;

  CacheArena(unsigned PixelCount, const CacheLayout &CacheShape,
             const ArenaLayoutConfig &Cfg = ArenaLayoutConfig()) {
    reset(PixelCount, CacheShape, Cfg);
  }

  /// (Re)shapes the arena: one canonical stride of CacheShape.totalBytes()
  /// per pixel, zero-initialized, physically arranged per \p Cfg.
  void reset(unsigned PixelCount, const CacheLayout &CacheShape,
             const ArenaLayoutConfig &Cfg = ArenaLayoutConfig());

  /// Reshapes the arena and fills it from canonical pixel-major \p Bytes
  /// — the snapshot warm-start path (re-blocking into \p Cfg's physical
  /// arrangement as it copies). \p Size must be exactly PixelCount x
  /// CacheShape.totalBytes(); returns false (leaving the arena empty)
  /// otherwise.
  bool restore(unsigned PixelCount, const CacheLayout &CacheShape,
               const unsigned char *Bytes, size_t Size,
               const ArenaLayoutConfig &Cfg = ArenaLayoutConfig());

  /// Move-restore: adopts \p Bytes without a copy when \p Cfg is the
  /// identity layout (the common warm-start case), re-blocks otherwise.
  bool restore(unsigned PixelCount, const CacheLayout &CacheShape,
               ArenaBuffer &&Bytes,
               const ArenaLayoutConfig &Cfg = ArenaLayoutConfig());

  unsigned pixelCount() const { return Pixels; }
  /// Canonical (logical) bytes per pixel.
  unsigned strideBytes() const { return Stride; }
  /// Canonical bytes total: pixelCount x strideBytes.
  size_t totalBytes() const {
    return static_cast<size_t>(Pixels) * Stride;
  }
  /// Bytes actually allocated (padding blocks + tail slack included) —
  /// the figure /statsz charges per unit.
  size_t physicalBytes() const { return Storage.size(); }
  const CacheLayout &layout() const { return Shape; }
  const ArenaLayoutConfig &layoutConfig() const { return Config; }

  /// Bytes per pixel a streaming reader touches unconditionally: the
  /// hot-slot stride under PackCold, the full stride otherwise. The
  /// Section 4.3 measured bound is hotStrideBytes() x pixelCount().
  unsigned hotStrideBytes() const {
    return Config.PackCold ? Shape.hotBytes() : Stride;
  }

  /// True when views are map-free (physical == canonical) — the JIT's
  /// stitched cache fragments require this.
  bool denseViews() const { return Map.empty(); }
  /// Pixels per physical block (1 for dense/pixel-major arrangements).
  unsigned blockPixels() const { return BlockPx; }
  /// Per-word affine address table, or null when dense.
  const ArenaSlotAddr *map() const {
    return Map.empty() ? nullptr : Map.data();
  }

  /// True when the batched tier's strided row loops can address this
  /// arena with work tiles of \p TilePixels: dense, per-pixel blocks, a
  /// single block covering the grid, or blocks a multiple of the tile
  /// (so no tile straddles a block boundary).
  bool batchCompatible(unsigned TilePixels) const {
    return Map.empty() || BlockPx == 1 || BlockPx >= Pixels ||
           (TilePixels != 0 && BlockPx % TilePixels == 0);
  }

  /// The physical buffer. Dense arenas: canonical pixel-major bytes, and
  /// lane L of a tile starting at pixel P accesses
  /// raw() + (P + L) * strideBytes(). Mapped arenas: address through
  /// map()/view() only.
  const unsigned char *raw() const { return Storage.data(); }
  unsigned char *raw() { return Storage.data(); }

  /// The packed cache of one pixel. The const overload yields a
  /// read-only view: loads work, stores trap in every execution tier —
  /// loader-less passes cannot silently write.
  CacheView view(unsigned Pixel) {
    if (Map.empty())
      return CacheView(Storage.data() + static_cast<size_t>(Pixel) * Stride,
                       Stride);
    return CacheView::mapped(Storage.data(), Stride, Map.data(),
                             Pixel / BlockPx, Pixel % BlockPx);
  }
  CacheView view(unsigned Pixel) const {
    const unsigned char *Base = Storage.data();
    if (Map.empty())
      return CacheView(Base + static_cast<size_t>(Pixel) * Stride, Stride);
    return CacheView::mapped(Base, Stride, Map.data(), Pixel / BlockPx,
                             Pixel % BlockPx);
  }

  /// The canonical pixel-major image of the arena (what snapshots
  /// persist): a straight copy when dense, a gather when mapped.
  ArenaBuffer canonicalBytes() const;

  /// Decodes one pixel's cache into boxed values, slot by slot (test and
  /// debugging aid; the render path never boxes).
  std::vector<Value> decode(unsigned Pixel) const {
    std::vector<Value> Out;
    Out.reserve(Shape.slotCount());
    CacheView View = view(Pixel);
    for (const CacheSlot &Slot : Shape.slots())
      Out.push_back(View.load(Slot.Offset, Slot.SlotType.kind()));
    return Out;
  }

private:
  /// Derives Map/BlockPx from Shape + Config and returns the physical
  /// allocation size. Empty map = identity.
  size_t buildMap();

  ArenaBuffer Storage;
  CacheLayout Shape;
  ArenaLayoutConfig Config;
  std::vector<ArenaSlotAddr> Map;
  unsigned Pixels = 0;
  unsigned Stride = 0;
  unsigned BlockPx = 1;
};

} // namespace dspec

#endif // DATASPEC_ENGINE_CACHEARENA_H
