//===- engine/CacheArena.h - Packed per-pixel cache storage -----*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One contiguous allocation holding every pixel's packed specialization
/// cache for a full render grid: pixelCount x CacheLayout::totalBytes()
/// bytes, pixel-major. This replaces the seed's per-pixel
/// std::vector<Value> caches (24-byte tagged boxes, one heap allocation
/// per pixel) with exactly the densely packed buffers the paper's
/// Figure 8 byte counts describe, so the reader pass's working set equals
/// the reported cache size and scans memory linearly.
///
/// The arena copies the layout it was built from, so views and decoding
/// stay valid regardless of where the owning specialization moves.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ENGINE_CACHEARENA_H
#define DATASPEC_ENGINE_CACHEARENA_H

#include "specialize/CacheLayout.h"
#include "vm/CacheView.h"

#include <vector>

namespace dspec {

/// Packed cache storage for a whole pixel grid.
class CacheArena {
public:
  CacheArena() = default;

  CacheArena(unsigned PixelCount, const CacheLayout &CacheShape) {
    reset(PixelCount, CacheShape);
  }

  /// (Re)shapes the arena: one stride of CacheShape.totalBytes() per
  /// pixel, zero-initialized, in a single allocation.
  void reset(unsigned PixelCount, const CacheLayout &CacheShape) {
    Shape = CacheShape;
    Pixels = PixelCount;
    Stride = CacheShape.totalBytes();
    Storage.assign(static_cast<size_t>(Pixels) * Stride, 0);
  }

  /// Reshapes the arena and fills it from \p Bytes — the snapshot
  /// warm-start path. \p Size must be exactly PixelCount x
  /// CacheShape.totalBytes(); returns false (leaving the arena empty)
  /// otherwise.
  bool restore(unsigned PixelCount, const CacheLayout &CacheShape,
               const unsigned char *Bytes, size_t Size) {
    if (Size != static_cast<size_t>(PixelCount) * CacheShape.totalBytes()) {
      reset(0, CacheLayout());
      return false;
    }
    Shape = CacheShape;
    Pixels = PixelCount;
    Stride = CacheShape.totalBytes();
    Storage.assign(Bytes, Bytes + Size);
    return true;
  }

  unsigned pixelCount() const { return Pixels; }
  unsigned strideBytes() const { return Stride; }
  size_t totalBytes() const { return Storage.size(); }
  const CacheLayout &layout() const { return Shape; }

  /// The packed bytes of every pixel, pixel-major (what a snapshot's
  /// ARENA section stores verbatim). The mutable overload is the batched
  /// interpreter's strided base pointer: lane L of a tile starting at
  /// pixel P accesses raw() + (P + L) * strideBytes().
  const unsigned char *raw() const { return Storage.data(); }
  unsigned char *raw() { return Storage.data(); }

  /// The packed cache of one pixel.
  CacheView view(unsigned Pixel) {
    return CacheView(Storage.data() + static_cast<size_t>(Pixel) * Stride,
                     Stride);
  }
  CacheView view(unsigned Pixel) const {
    // Loads only; the VM never writes through a loader-less pass.
    return CacheView(
        const_cast<unsigned char *>(Storage.data()) +
            static_cast<size_t>(Pixel) * Stride,
        Stride);
  }

  /// Decodes one pixel's cache into boxed values, slot by slot (test and
  /// debugging aid; the render path never boxes).
  std::vector<Value> decode(unsigned Pixel) const {
    std::vector<Value> Out;
    Out.reserve(Shape.slotCount());
    CacheView View = view(Pixel);
    for (const CacheSlot &Slot : Shape.slots())
      Out.push_back(View.load(Slot.Offset, Slot.SlotType.kind()));
    return Out;
  }

private:
  std::vector<unsigned char> Storage;
  CacheLayout Shape;
  unsigned Pixels = 0;
  unsigned Stride = 0;
};

} // namespace dspec

#endif // DATASPEC_ENGINE_CACHEARENA_H
