//===- engine/ExecTier.h - Execution tier selection -------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four ways the render engine can execute a chunk over a pass, in
/// increasing order of specialization (see docs/ENGINE.md, "Execution
/// tiers"). Tiers are an A/B knob: every tier produces bit-identical
/// framebuffers; only the speed differs.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ENGINE_EXECTIER_H
#define DATASPEC_ENGINE_EXECTIER_H

#include <string_view>

namespace dspec {

/// How the engine executes chunks.
enum class ExecTier {
  /// The classic per-pixel switch interpreter (VM::run). The reference
  /// semantics and the fallback when a chunk fails decoding.
  Switch,
  /// Per-pixel direct-threaded execution of the decoded, fused ExecChunk
  /// (VM::runThreaded).
  Threaded,
  /// Tile-at-a-time SoA execution (VM::runBatch) for effect-free chunks.
  /// Uniform branches run in lockstep, divergent maskable diamonds run
  /// both arms under a per-lane mask (GPU-warp style), and a tile whose
  /// control flow diverges at an unmaskable branch re-runs per-pixel on
  /// the threaded tier. Effectful chunks run per-pixel up front.
  Batched,
  /// Per-pixel execution of copy-and-patch stitched machine code
  /// (VM::runJit): the verified ExecChunk is compiled once per
  /// specialization unit into executable memory (src/jit/), then every
  /// pixel runs native. Falls back to the threaded tier whenever the
  /// chunk cannot be stitched — non-x86-64 hosts, DSPEC_FORCE_NO_JIT
  /// builds, W^X allocation failure, or an inexpressible opcode.
  Native,
};

inline const char *execTierName(ExecTier Tier) {
  switch (Tier) {
  case ExecTier::Switch:
    return "switch";
  case ExecTier::Threaded:
    return "threaded";
  case ExecTier::Batched:
    return "batched";
  case ExecTier::Native:
    return "native";
  }
  return "?";
}

/// Parses "switch" / "threaded" / "batched" / "native"; returns false
/// (leaving \p Out untouched) on anything else.
inline bool parseExecTier(std::string_view Text, ExecTier &Out) {
  if (Text == "switch") {
    Out = ExecTier::Switch;
    return true;
  }
  if (Text == "threaded") {
    Out = ExecTier::Threaded;
    return true;
  }
  if (Text == "batched") {
    Out = ExecTier::Batched;
    return true;
  }
  if (Text == "native") {
    Out = ExecTier::Native;
    return true;
  }
  return false;
}

} // namespace dspec

#endif // DATASPEC_ENGINE_EXECTIER_H
