//===- engine/RenderContext.h - Per-pixel fixed inputs ---------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic per-pixel rendering contexts. The paper's shaders receive
/// "the pixel coordinates [and] various rendering information specific to
/// the pixel" from the interactive renderer of [GKR95]; we substitute a
/// procedural scene — a wavy height-field patch with analytic normals and
/// a fixed eye point — that produces the same four standard inputs every
/// gallery shader takes:
///
///   vec2 uv   texture coordinates in [0,1]^2
///   vec3 P    surface position
///   vec3 N    unit surface normal
///   vec3 I    unit direction from the surface point toward the eye
///
/// These are *fixed* inputs in every input partition (the user only drags
/// control parameters), which is what makes one cache per pixel viable.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ENGINE_RENDERCONTEXT_H
#define DATASPEC_ENGINE_RENDERCONTEXT_H

#include "vm/Value.h"

#include <vector>

namespace dspec {

/// The fixed inputs of one pixel.
struct PixelInput {
  Value UV;
  Value P;
  Value N;
  Value I;
};

/// A W x H grid of per-pixel fixed inputs over the procedural patch.
class RenderGrid {
public:
  RenderGrid(unsigned Width, unsigned Height);

  unsigned width() const { return W; }
  unsigned height() const { return H; }
  unsigned pixelCount() const { return static_cast<unsigned>(Inputs.size()); }
  const std::vector<PixelInput> &pixels() const { return Inputs; }

private:
  unsigned W;
  unsigned H;
  std::vector<PixelInput> Inputs;
};

/// A trivially small framebuffer for the examples: vec3 colors.
class Framebuffer {
public:
  Framebuffer(unsigned Width, unsigned Height)
      : W(Width), H(Height), Pixels(static_cast<size_t>(Width) * Height) {}

  unsigned width() const { return W; }
  unsigned height() const { return H; }
  Value &at(unsigned X, unsigned Y) { return Pixels[size_t(Y) * W + X]; }
  const Value &at(unsigned X, unsigned Y) const {
    return Pixels[size_t(Y) * W + X];
  }

  /// Renders the luminance of the image as ASCII art (examples print it).
  std::string asciiArt() const;

  /// Writes a binary PPM (P6) image file. Returns false on I/O failure.
  bool writePPM(const std::string &Path) const;

private:
  unsigned W;
  unsigned H;
  std::vector<Value> Pixels;
};

} // namespace dspec

#endif // DATASPEC_ENGINE_RENDERCONTEXT_H
