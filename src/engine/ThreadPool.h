//===- engine/ThreadPool.h - Small worker pool ------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed pool of workers driving parallelFor over an index space.
/// Items are handed out through an atomic counter, so any worker can take
/// any item; callers must make items write to disjoint state (the render
/// engine's tiles do). With one worker the calling thread runs everything
/// inline — no threads, no synchronization — which keeps the serial
/// configuration an honest baseline.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ENGINE_THREADPOOL_H
#define DATASPEC_ENGINE_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dspec {

/// Persistent worker pool. Workers sleep between parallelFor calls.
class ThreadPool {
public:
  /// \p Workers total workers including the calling thread; 0 means one
  /// per hardware thread. A pool of size 1 spawns no threads.
  explicit ThreadPool(unsigned Workers = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total workers participating in parallelFor (spawned threads + the
  /// calling thread).
  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size()) + 1;
  }

  /// Runs Fn(WorkerIndex, Item) for every Item in [0, ItemCount), spread
  /// over all workers. WorkerIndex is in [0, workerCount()); index 0 is
  /// the calling thread. Blocks until every item has completed.
  void parallelFor(size_t ItemCount,
                   const std::function<void(unsigned, size_t)> &Fn);

private:
  void workerLoop(unsigned WorkerIndex);
  void drain(unsigned WorkerIndex);

  std::vector<std::thread> Threads;

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable JobDone;
  const std::function<void(unsigned, size_t)> *Job = nullptr;
  size_t JobItemCount = 0;
  std::atomic<size_t> NextItem{0};
  unsigned ActiveWorkers = 0;
  uint64_t Generation = 0;
  bool ShuttingDown = false;
};

} // namespace dspec

#endif // DATASPEC_ENGINE_THREADPOOL_H
