//===- engine/ThreadPool.h - Small worker pool ------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed pool of workers driving parallelFor over an index space.
/// Items are handed out through an atomic counter, so any worker can take
/// any item; callers must make items write to disjoint state (the render
/// engine's tiles do). With one worker the calling thread runs everything
/// inline — no threads, no synchronization — which keeps the serial
/// configuration an honest baseline.
///
/// An exception thrown by an item does not terminate the process: the
/// failure with the lowest item index is captured, no item observed to
/// start after the failure runs (items already claimed by other workers
/// may still complete), and the exception is rethrown on the calling
/// thread once every worker has gone idle — so the pool stays reusable
/// after a throwing job.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ENGINE_THREADPOOL_H
#define DATASPEC_ENGINE_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dspec {

/// Persistent worker pool. Workers sleep between parallelFor calls.
class ThreadPool {
public:
  /// \p Workers total workers including the calling thread; 0 means one
  /// per hardware thread. A pool of size 1 spawns no threads.
  explicit ThreadPool(unsigned Workers = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total workers participating in parallelFor (spawned threads + the
  /// calling thread).
  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size()) + 1;
  }

  /// Runs Fn(WorkerIndex, Item) for every Item in [0, ItemCount), spread
  /// over all workers. WorkerIndex is in [0, workerCount()); index 0 is
  /// the calling thread. Blocks until every item has completed. If any
  /// item throws, the exception with the lowest item index is rethrown
  /// here after the job has fully drained.
  void parallelFor(size_t ItemCount,
                   const std::function<void(unsigned, size_t)> &Fn);

private:
  void workerLoop(unsigned WorkerIndex);
  void drain(unsigned WorkerIndex);

  std::vector<std::thread> Threads;

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable JobDone;
  const std::function<void(unsigned, size_t)> *Job = nullptr;
  size_t JobItemCount = 0;
  std::atomic<size_t> NextItem{0};
  unsigned ActiveWorkers = 0;
  uint64_t Generation = 0;
  bool ShuttingDown = false;

  // First failure of the current job: the flag lets workers consume the
  // remaining items without running them; the exception (lowest item
  // index wins, so reports are deterministic) is rethrown by parallelFor.
  std::atomic<bool> JobFailed{false};
  std::exception_ptr FirstException;
  size_t FirstExceptionItem = 0;
};

} // namespace dspec

#endif // DATASPEC_ENGINE_THREADPOOL_H
