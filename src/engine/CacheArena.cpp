//===- engine/CacheArena.cpp - Packed per-pixel cache storage --------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/CacheArena.h"

#include <cstring>

using namespace dspec;

size_t CacheArena::buildMap() {
  Map.clear();
  BlockPx = 1;
  if (Pixels == 0 || Stride == 0)
    return static_cast<size_t>(Pixels) * Stride;

  const bool Packing = Config.PackCold && Shape.hasColdSlots();
  if (Config.Layout == ArenaLayout::PixelMajor && !Packing)
    return static_cast<size_t>(Pixels) * Stride; // identity: no map, no slack

  switch (Config.Layout) {
  case ArenaLayout::PixelMajor:
    BlockPx = 1;
    break;
  case ArenaLayout::SlotMajor:
    BlockPx = Pixels;
    break;
  case ArenaLayout::TileBlocked:
    BlockPx = Config.TilePixels ? Config.TilePixels : 1024;
    break;
  }

  // Physical block = [hot columns][cold columns], BlockPx lanes each,
  // lane-major within a column. Canonical word w of (block B, lane L):
  //   physOff(slot) * BlockPx  +  B * (BlockPx * Stride)
  //   + L * slotWidth  +  wordDisplacementInSlot
  // where physOff reorders cold slots behind the hot prefix.
  const unsigned HotBytes = Packing ? Shape.hotBytes() : Stride;
  unsigned HotOff = 0, ColdOff = 0;
  Map.assign(Stride / 4, ArenaSlotAddr());
  for (const CacheSlot &S : Shape.slots()) {
    const unsigned Width = S.SlotType.sizeInBytes();
    if (Width == 0)
      continue;
    const bool Cold = Packing && S.isCold();
    const unsigned PhysOff = Cold ? HotBytes + ColdOff : HotOff;
    (Cold ? ColdOff : HotOff) += Width;
    for (unsigned D = 0; D < Width; D += 4) {
      ArenaSlotAddr &E = Map[(S.Offset + D) / 4];
      E.Base = PhysOff * BlockPx + D;
      E.Block = BlockPx * Stride;
      E.LaneW = Width;
    }
  }

  const size_t NumBlocks = (static_cast<size_t>(Pixels) + BlockPx - 1) / BlockPx;
  return NumBlocks * BlockPx * Stride + kTailSlackBytes;
}

void CacheArena::reset(unsigned PixelCount, const CacheLayout &CacheShape,
                       const ArenaLayoutConfig &Cfg) {
  Shape = CacheShape;
  Config = Cfg;
  Pixels = PixelCount;
  Stride = CacheShape.totalBytes();
  Storage.assign(buildMap(), 0);
}

bool CacheArena::restore(unsigned PixelCount, const CacheLayout &CacheShape,
                         const unsigned char *Bytes, size_t Size,
                         const ArenaLayoutConfig &Cfg) {
  if (Size !=
      static_cast<size_t>(PixelCount) * CacheShape.totalBytes()) {
    reset(0, CacheLayout());
    return false;
  }
  reset(PixelCount, CacheShape, Cfg);
  if (Map.empty()) {
    std::memcpy(Storage.data(), Bytes, Size);
    return true;
  }
  // Scatter canonical words into the blocked arrangement.
  const unsigned Words = Stride / 4;
  for (unsigned P = 0; P < Pixels; ++P) {
    const size_t B = P / BlockPx, L = P % BlockPx;
    const unsigned char *Src = Bytes + static_cast<size_t>(P) * Stride;
    for (unsigned W = 0; W < Words; ++W) {
      const ArenaSlotAddr &E = Map[W];
      std::memcpy(Storage.data() + E.Base + B * E.Block + L * E.LaneW,
                  Src + 4 * W, 4);
    }
  }
  return true;
}

bool CacheArena::restore(unsigned PixelCount, const CacheLayout &CacheShape,
                         ArenaBuffer &&Bytes, const ArenaLayoutConfig &Cfg) {
  if (Bytes.size() !=
      static_cast<size_t>(PixelCount) * CacheShape.totalBytes()) {
    reset(0, CacheLayout());
    return false;
  }
  // Identity layouts adopt the canonical buffer outright (the physical
  // image *is* the canonical image, and ArenaBuffer keeps it aligned);
  // anything else must re-block, so the copy path applies.
  Shape = CacheShape;
  Config = Cfg;
  Pixels = PixelCount;
  Stride = CacheShape.totalBytes();
  if (buildMap() == Bytes.size() && Map.empty()) {
    Storage = std::move(Bytes);
    return true;
  }
  return restore(PixelCount, CacheShape, Bytes.data(), Bytes.size(), Cfg);
}

ArenaBuffer CacheArena::canonicalBytes() const {
  ArenaBuffer Out;
  const size_t Logical = totalBytes();
  if (Map.empty()) {
    Out.assign(Storage.begin(), Storage.begin() + Logical);
    return Out;
  }
  Out.resize(Logical);
  const unsigned Words = Stride / 4;
  for (unsigned P = 0; P < Pixels; ++P) {
    const size_t B = P / BlockPx, L = P % BlockPx;
    unsigned char *Dst = Out.data() + static_cast<size_t>(P) * Stride;
    for (unsigned W = 0; W < Words; ++W) {
      const ArenaSlotAddr &E = Map[W];
      std::memcpy(Dst + 4 * W,
                  Storage.data() + E.Base + B * E.Block + L * E.LaneW, 4);
    }
  }
  return Out;
}
