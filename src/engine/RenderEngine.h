//===- engine/RenderEngine.h - Batched multi-threaded renderer --*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched render engine: executes a compiled chunk over every pixel
/// of a RenderGrid in tile-sized work items on a small thread pool, one
/// VM per worker. Three pass kinds mirror the paper's phases:
///
///   loaderPass    runs the cache loader once per fixed-input change,
///                 filling the grid's packed CacheArena (and optionally a
///                 framebuffer — the loader also computes the result);
///   readerPass    runs the cache reader once per parameter edit against
///                 the loaded arena;
///   plainPass     runs the unspecialized original (the baseline).
///
/// Determinism: a pixel's output depends only on its own inputs and its
/// own cache stride, every pixel is computed exactly once, and workers
/// write to disjoint framebuffer/arena regions — so the framebuffer is
/// bit-identical for every thread count and tile size. (Per-VM effects
/// like dsc_trace logs land on whichever worker ran the pixel; the
/// gallery shaders use none.)
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ENGINE_RENDERENGINE_H
#define DATASPEC_ENGINE_RENDERENGINE_H

#include "engine/CacheArena.h"
#include "engine/ExecTier.h"
#include "engine/RenderContext.h"
#include "engine/ThreadPool.h"
#include "snapshot/Snapshot.h"
#include "vm/VM.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dspec {

/// Runs chunks over pixel grids. Reusable across shaders and frames; the
/// pool and per-worker VMs are created once.
class RenderEngine {
public:
  /// Number of standard per-pixel parameters every renderable fragment
  /// takes before its controls: (uv, P, N, I) from the PixelInput.
  static constexpr unsigned NumPixelParams = 4;

  /// \p Threads workers (0 = one per hardware thread); pixels are handed
  /// out in tiles of \p TilePixels.
  explicit RenderEngine(unsigned Threads = 1, unsigned TilePixels = 128);

  unsigned threadCount() const { return Pool->workerCount(); }
  unsigned tilePixels() const { return TileSize; }

  /// Selects how passes execute chunks. The default is Batched — the
  /// fastest tier — which degrades gracefully: branchy chunks execute
  /// batched under per-lane masks (uniform branches run in lockstep;
  /// divergent maskable diamonds run both arms masked), a tile whose
  /// control flow diverges at an unmaskable branch re-runs per-pixel on
  /// the threaded tier, effectful chunks run per-pixel up front, and
  /// chunks that fail decoding fall back to the classic switch
  /// interpreter. Native stitches the chunk to machine code once per
  /// specialization unit (src/jit/) and deopts to Threaded when the host
  /// or chunk cannot be stitched. Every tier produces bit-identical
  /// framebuffers
  /// (tests/TestExecTiers.cpp pins this over the whole gallery); the
  /// knob exists for A/B measurement (`bench_exec_tier`, `dspec serve
  /// --exec-tier`).
  void setExecTier(ExecTier NewTier) { Tier = NewTier; }
  ExecTier execTier() const { return Tier; }

  /// Physical arena layout loaderPass builds (engine/ArenaLayout.h). The
  /// default is the identity pixel-major arrangement — bit-for-bit the
  /// seed behavior. Readers accept an arena in *any* layout (views carry
  /// the address map); this knob only governs what a loader pass on this
  /// engine produces. `auto` policy: pass chooseArenaLayout(tier,
  /// tilePixels()).
  void setArenaLayout(const ArenaLayoutConfig &Cfg) { ArenaCfg = Cfg; }
  const ArenaLayoutConfig &arenaLayout() const { return ArenaCfg; }

  /// Execution statistics of the last completed pass; the batch figures
  /// cover runBatch attempts only (zero under the scalar tiers), so the
  /// exec-tier bench can report a divergence column.
  struct PassExecStats {
    uint64_t BatchTiles = 0;  ///< tiles fully retired by runBatch
    uint64_t BailedTiles = 0; ///< tiles that diverged and re-ran per-pixel
    uint64_t BatchDispatchLanes = 0; ///< sum over tiles: dispatches x lanes
    uint64_t BatchActiveLanes = 0;   ///< sum: active-lane instructions
    /// Native tier only (zero elsewhere): 1 when this pass stitched fresh
    /// code, 0 when the chunk's JitSlot already held it — so warm starts
    /// that reuse snapshot-cached code are observable as zero compiles.
    uint64_t NativeCompiles = 0;
    /// Executable bytes of the stitched program this pass ran (0 when the
    /// native tier deopted to threaded).
    uint64_t NativeCodeBytes = 0;
    /// Pixels executed through stitched code.
    uint64_t NativePixels = 0;
    /// Seconds spent stitching during this pass (0 on a slot hit).
    double NativeCompileSeconds = 0.0;
    /// Average active-lane fraction per dispatched batch instruction
    /// (1.0 = no masking ever engaged).
    double activeFraction() const {
      return BatchDispatchLanes
                 ? static_cast<double>(BatchActiveLanes) /
                       static_cast<double>(BatchDispatchLanes)
                 : 1.0;
    }
  };
  const PassExecStats &lastPassStats() const { return LastStats; }

  /// Runs the loader over every pixel, filling \p Arena (which is reshaped
  /// to the grid and the chunk's layout extent if it does not match).
  /// Returns false on any trap; lastTrap() has the message.
  bool loaderPass(const Chunk &Loader, const CacheLayout &Layout,
                  const RenderGrid &Grid, const std::vector<float> &Controls,
                  CacheArena &Arena, Framebuffer *Out = nullptr);

  /// Runs the reader over every pixel against a loaded \p Arena.
  bool readerPass(const Chunk &Reader, const RenderGrid &Grid,
                  const std::vector<float> &Controls, const CacheArena &Arena,
                  Framebuffer *Out = nullptr);

  /// Runs an unspecialized fragment over every pixel.
  bool plainPass(const Chunk &Original, const RenderGrid &Grid,
                 const std::vector<float> &Controls,
                 Framebuffer *Out = nullptr);

  /// Trap message of the last failing pass (first trapping pixel in pixel
  /// order, so failures are deterministic too).
  const std::string &lastTrap() const { return LastTrap; }

  //===--------------------------------------------------------------------===//
  // Warm start: persist a loader pass, resume in a fresh process.
  //===--------------------------------------------------------------------===//

  /// One restored property-specialized variant: its own reader (and
  /// loader, for provenance), layout, and loader-filled arena over the
  /// warm start's grid.
  struct WarmVariant {
    VariantKey Key;
    std::string Label;
    Chunk Loader;
    Chunk Reader;
    CacheLayout Layout;
    CacheArena Arena;
  };

  /// Everything fromSnapshot restores: the specialization unit plus the
  /// loader-filled arena, with the grid rebuilt procedurally from the
  /// snapshot's dimensions. readerPass(Warm.Reader, Warm.Grid, Controls,
  /// Warm.Arena) then serves frames without ever running the loader.
  /// Version-2 snapshots additionally populate Variants, all warm.
  struct WarmStart {
    SnapshotMeta Meta;
    Chunk Loader;
    Chunk Reader;
    CacheLayout Layout;
    RenderGrid Grid;
    CacheArena Arena;
    /// Property-specialized variants (empty for version-1 snapshots).
    std::vector<WarmVariant> Variants;

    WarmStart(unsigned Width, unsigned Height) : Grid(Width, Height) {}

    /// Index into Variants of the most specific variant admissible for
    /// \p Controls, or nullopt when only the generic unit applies.
    std::optional<size_t>
    selectVariant(const std::vector<float> &Controls) const;
  };

  /// Writes \p Path: the specialization unit (\p Loader, \p Reader,
  /// \p Layout, provenance in \p Meta) and the loader-filled \p Arena.
  /// Call after a successful loaderPass over a grid whose dimensions are
  /// recorded in \p Meta. Returns false with \p Error set on
  /// inconsistent state or I/O failure.
  static bool saveSnapshot(const std::string &Path, const SnapshotMeta &Meta,
                           const Chunk &Loader, const Chunk &Reader,
                           const CacheLayout &Layout, const CacheArena &Arena,
                           std::string *Error = nullptr);

  /// As above, but also persists a property-specialized variant set (each
  /// with its own loader-filled arena over the same grid). With a
  /// non-empty \p Variants the file is written at format version 2.
  static bool saveSnapshot(const std::string &Path, const SnapshotMeta &Meta,
                           const Chunk &Loader, const Chunk &Reader,
                           const CacheLayout &Layout, const CacheArena &Arena,
                           const std::vector<SnapshotVariant> &Variants,
                           std::string *Error = nullptr);

  /// Validates and loads \p Path (header/version checks, per-section
  /// CRCs, bytecode verification — a truncated or corrupt file yields a
  /// diagnostic, never a crash) and rebuilds the grid and arena. Reader
  /// passes over the result are bit-identical to an in-process
  /// loader+reader run at any thread count.
  static std::optional<WarmStart> fromSnapshot(const std::string &Path,
                                               std::string *Error = nullptr);

private:
  /// Exactly one of \p MutArena / \p ROArena may be non-null: loader
  /// passes get a writable arena, reader passes a read-only one (cache
  /// stores trap in every tier — no const_cast anywhere on the path).
  bool runPass(const Chunk &Code, const RenderGrid &Grid,
               const std::vector<float> &Controls, CacheArena *MutArena,
               const CacheArena *ROArena, Framebuffer *Out);

  // Held by pointer so the engine stays movable (the pool owns mutexes
  // and worker threads, which pin it in place).
  std::unique_ptr<ThreadPool> Pool;
  std::vector<VM> Machines; // one per worker
  unsigned TileSize;
  ExecTier Tier = ExecTier::Batched;
  ArenaLayoutConfig ArenaCfg;
  std::string LastTrap;
  PassExecStats LastStats;
};

} // namespace dspec

#endif // DATASPEC_ENGINE_RENDERENGINE_H
