//===- engine/ThreadPool.cpp - Small worker pool ---------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/ThreadPool.h"

using namespace dspec;

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  Threads.reserve(Workers - 1);
  for (unsigned I = 1; I < Workers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::drain(unsigned WorkerIndex) {
  size_t Item;
  while ((Item = NextItem.fetch_add(1, std::memory_order_relaxed)) <
         JobItemCount) {
    // After a failure the remaining items are consumed but not run, so
    // the job still completes and the pool stays in a clean state.
    if (JobFailed.load(std::memory_order_relaxed))
      continue;
    try {
      (*Job)(WorkerIndex, Item);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!JobFailed.load(std::memory_order_relaxed) ||
          Item < FirstExceptionItem) {
        FirstException = std::current_exception();
        FirstExceptionItem = Item;
      }
      JobFailed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerLoop(unsigned WorkerIndex) {
  uint64_t SeenGeneration = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
    }
    drain(WorkerIndex);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--ActiveWorkers == 0)
        JobDone.notify_one();
    }
  }
}

void ThreadPool::parallelFor(
    size_t ItemCount, const std::function<void(unsigned, size_t)> &Fn) {
  if (ItemCount == 0)
    return;

  // Serial pool: run inline with zero synchronization. An exception
  // propagates directly; the unstarted items are skipped, matching the
  // threaded behaviour.
  if (Threads.empty()) {
    for (size_t Item = 0; Item < ItemCount; ++Item)
      Fn(0, Item);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Job = &Fn;
    JobItemCount = ItemCount;
    NextItem.store(0, std::memory_order_relaxed);
    ActiveWorkers = static_cast<unsigned>(Threads.size());
    JobFailed.store(false, std::memory_order_relaxed);
    FirstException = nullptr;
    FirstExceptionItem = SIZE_MAX;
    ++Generation;
  }
  WakeWorkers.notify_all();

  // The calling thread is worker 0 and helps drain the items.
  drain(0);

  std::unique_lock<std::mutex> Lock(Mutex);
  JobDone.wait(Lock, [&] { return ActiveWorkers == 0; });
  Job = nullptr;
  if (FirstException) {
    std::exception_ptr E = FirstException;
    FirstException = nullptr;
    JobFailed.store(false, std::memory_order_relaxed);
    Lock.unlock();
    std::rethrow_exception(E);
  }
}
