//===- engine/RenderContext.cpp - Per-pixel fixed inputs ------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/RenderContext.h"

#include <cmath>
#include <cstdio>

using namespace dspec;

RenderGrid::RenderGrid(unsigned Width, unsigned Height) : W(Width), H(Height) {
  Inputs.reserve(static_cast<size_t>(W) * H);
  const float EyeX = 0.0f, EyeY = 0.0f, EyeZ = 4.0f;
  for (unsigned PY = 0; PY < H; ++PY) {
    for (unsigned PX = 0; PX < W; ++PX) {
      float U = W > 1 ? static_cast<float>(PX) / (W - 1) : 0.0f;
      float V = H > 1 ? static_cast<float>(PY) / (H - 1) : 0.0f;
      float X = U * 2.0f - 1.0f;
      float Y = V * 2.0f - 1.0f;
      // Height field z = 0.25 sin(3x) cos(2y) with analytic gradient.
      float Z = 0.25f * std::sin(3.0f * X) * std::cos(2.0f * Y);
      float DZDX = 0.75f * std::cos(3.0f * X) * std::cos(2.0f * Y);
      float DZDY = -0.5f * std::sin(3.0f * X) * std::sin(2.0f * Y);

      float NX = -DZDX, NY = -DZDY, NZ = 1.0f;
      float NLen = std::sqrt(NX * NX + NY * NY + NZ * NZ);
      NX /= NLen;
      NY /= NLen;
      NZ /= NLen;

      float IX = EyeX - X, IY = EyeY - Y, IZ = EyeZ - Z;
      float ILen = std::sqrt(IX * IX + IY * IY + IZ * IZ);
      IX /= ILen;
      IY /= ILen;
      IZ /= ILen;

      PixelInput In;
      In.UV = Value::makeVec2(U, V);
      In.P = Value::makeVec3(X, Y, Z);
      In.N = Value::makeVec3(NX, NY, NZ);
      In.I = Value::makeVec3(IX, IY, IZ);
      Inputs.push_back(In);
    }
  }
}

std::string Framebuffer::asciiArt() const {
  static const char Ramp[] = " .:-=+*#%@";
  std::string Out;
  Out.reserve((W + 1) * H);
  for (unsigned Y = 0; Y < H; ++Y) {
    for (unsigned X = 0; X < W; ++X) {
      const Value &C = at(X, Y);
      float Lum = 0.299f * C.F[0] + 0.587f * C.F[1] + 0.114f * C.F[2];
      Lum = Lum < 0.0f ? 0.0f : (Lum > 1.0f ? 1.0f : Lum);
      Out += Ramp[static_cast<int>(Lum * 9.0f + 0.5f)];
    }
    Out += '\n';
  }
  return Out;
}

bool Framebuffer::writePPM(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  std::fprintf(File, "P6\n%u %u\n255\n", W, H);
  for (const Value &C : Pixels) {
    for (int Channel = 0; Channel < 3; ++Channel) {
      float Component = C.F[Channel];
      Component = Component < 0.0f ? 0.0f : (Component > 1.0f ? 1.0f : Component);
      unsigned char Byte = static_cast<unsigned char>(Component * 255.0f + 0.5f);
      std::fputc(Byte, File);
    }
  }
  std::fclose(File);
  return true;
}
