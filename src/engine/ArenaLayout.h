//===- engine/ArenaLayout.h - Arena storage layout policy -------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CacheArena's physical storage policy. Logically the arena is
/// always the same object — pixelCount x CacheLayout::totalBytes() typed
/// slots — but the bytes can be arranged three ways:
///
///   PixelMajor   one contiguous stride per pixel (the seed layout, and
///                the canonical on-disk form of a snapshot's ARENA
///                section);
///   SlotMajor    full struct-of-arrays: each slot is one pixels-length
///                column, so the batched tier's per-slot lane loops walk
///                unit-stride memory;
///   TileBlocked  slot-major within fixed-size pixel blocks, so one
///                block's working set fits L2/LLC while lane loops keep
///                unit stride inside the block.
///
/// Orthogonally, PackCold moves low-reuse slots (CacheSlot::ReuseWeight
/// < 1, i.e. terms the reader touches only under conditionals) behind
/// the hot slots of each block, shrinking the hot stride the streaming
/// reader actually pays for.
///
/// The helpers here also detect last-level-cache capacity (sysfs, with
/// an override) for the Section 4.3 measured-bytes limiter, and encode
/// the engine's `auto` policy: which layout each execution tier wants.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_ENGINE_ARENALAYOUT_H
#define DATASPEC_ENGINE_ARENALAYOUT_H

#include "engine/ExecTier.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace dspec {

/// Physical arrangement of the arena's bytes.
enum class ArenaLayout : uint8_t {
  PixelMajor = 0,
  SlotMajor = 1,
  TileBlocked = 2,
};

/// One arena's full storage policy.
struct ArenaLayoutConfig {
  ArenaLayout Layout = ArenaLayout::PixelMajor;
  /// TileBlocked only: pixels per block. 0 picks a default sized so one
  /// block's full stride stays comfortably inside L2 (and a multiple of
  /// the engine's tile size, keeping the batched tier block-aligned).
  unsigned TilePixels = 0;
  /// Pack slots with ReuseWeight < 1 behind the hot slots of each block.
  bool PackCold = false;

  friend bool operator==(const ArenaLayoutConfig &A,
                         const ArenaLayoutConfig &B) {
    return A.Layout == B.Layout && A.TilePixels == B.TilePixels &&
           A.PackCold == B.PackCold;
  }
  friend bool operator!=(const ArenaLayoutConfig &A,
                         const ArenaLayoutConfig &B) {
    return !(A == B);
  }
};

/// Stable lowercase name ("pixel-major" / "slot-major" / "tile-blocked").
const char *arenaLayoutName(ArenaLayout Layout);

/// Parses a layout name as printed by arenaLayoutName. Returns nullopt on
/// anything else — including "auto", which callers resolve themselves via
/// chooseArenaLayout because it depends on the execution tier.
std::optional<ArenaLayout> parseArenaLayout(const std::string &Name);

/// Last-level cache capacity in bytes: the largest unified cache under
/// /sys/devices/system/cpu/cpu0/cache/, or \p Fallback when sysfs is
/// unavailable (containers, non-Linux). Never zero.
uint64_t detectLlcBytes(uint64_t Fallback = 32ull << 20);

/// The engine's `--arena-layout auto` *cold-start prior* for \p Tier
/// with work tiles of \p EngineTilePixels:
///  - Batched wants TileBlocked with PackCold: unit-stride lane loops and
///    a hot stride below the pixel stride.
///  - Native wants PixelMajor: the stitched cache fragments address one
///    dense pixel stride, and a mapped arena would deopt every chunk.
///  - Switch/Threaded want PixelMajor: per-pixel execution already walks
///    one stride at a time, and identity keeps views map-free.
/// Where reader frames can actually be timed, prefer the measured policy
/// (arenaLayoutCandidates + pickArenaLayout) over this prior — layout
/// wins are memory-hierarchy effects that a static rule cannot rank.
ArenaLayoutConfig chooseArenaLayout(ExecTier Tier, unsigned EngineTilePixels);

/// The candidate set the measured `auto` policy sweeps for \p Tier:
/// pixel-major plus the packed slot-major/tile-blocked arrangements on
/// the interpreter tiers; pixel-major alone on Native, where a mapped
/// arena deopts every chunk and measuring it would grade the deopt path.
std::vector<ArenaLayoutConfig> arenaLayoutCandidates(ExecTier Tier,
                                                     unsigned EngineTilePixels);

/// Measured `auto`: calls \p Measure (reader seconds per frame — lower
/// is better) on every candidate and returns the winner. Ties and
/// wins within 2% break toward the earliest candidate, so pixel-major
/// (list it first) keeps identity addressing unless a layout actually
/// pays for its map.
ArenaLayoutConfig
pickArenaLayout(const std::vector<ArenaLayoutConfig> &Candidates,
                const std::function<double(const ArenaLayoutConfig &)> &Measure);

} // namespace dspec

#endif // DATASPEC_ENGINE_ARENALAYOUT_H
