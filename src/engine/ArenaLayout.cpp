//===- engine/ArenaLayout.cpp - Arena storage layout policy ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/ArenaLayout.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>

using namespace dspec;

const char *dspec::arenaLayoutName(ArenaLayout Layout) {
  switch (Layout) {
  case ArenaLayout::PixelMajor:
    return "pixel-major";
  case ArenaLayout::SlotMajor:
    return "slot-major";
  case ArenaLayout::TileBlocked:
    return "tile-blocked";
  }
  return "pixel-major";
}

std::optional<ArenaLayout> dspec::parseArenaLayout(const std::string &Name) {
  if (Name == "pixel-major")
    return ArenaLayout::PixelMajor;
  if (Name == "slot-major")
    return ArenaLayout::SlotMajor;
  if (Name == "tile-blocked")
    return ArenaLayout::TileBlocked;
  return std::nullopt;
}

namespace {

/// Reads one small sysfs file into \p Out. Returns false when absent.
bool readSysfsLine(const std::string &Path, char *Out, size_t OutSize) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  bool Ok = std::fgets(Out, static_cast<int>(OutSize), F) != nullptr;
  std::fclose(F);
  return Ok;
}

/// Parses "32768K" / "12M" / plain bytes from a sysfs size file.
uint64_t parseCacheSize(const char *Text) {
  char *End = nullptr;
  uint64_t V = std::strtoull(Text, &End, 10);
  if (End == Text)
    return 0;
  if (*End == 'K' || *End == 'k')
    V <<= 10;
  else if (*End == 'M' || *End == 'm')
    V <<= 20;
  else if (*End == 'G' || *End == 'g')
    V <<= 30;
  return V;
}

} // namespace

uint64_t dspec::detectLlcBytes(uint64_t Fallback) {
  const char *Root = "/sys/devices/system/cpu/cpu0/cache";
  uint64_t Best = 0;
  if (DIR *D = opendir(Root)) {
    while (dirent *E = readdir(D)) {
      if (std::strncmp(E->d_name, "index", 5) != 0)
        continue;
      std::string Dir = std::string(Root) + "/" + E->d_name;
      char Line[64];
      // Only data or unified caches count toward the working-set bound.
      if (readSysfsLine(Dir + "/type", Line, sizeof(Line)) &&
          std::strncmp(Line, "Instruction", 11) == 0)
        continue;
      if (!readSysfsLine(Dir + "/size", Line, sizeof(Line)))
        continue;
      uint64_t Bytes = parseCacheSize(Line);
      if (Bytes > Best)
        Best = Bytes;
    }
    closedir(D);
  }
  return Best ? Best : (Fallback ? Fallback : 32ull << 20);
}

std::vector<ArenaLayoutConfig>
dspec::arenaLayoutCandidates(ExecTier Tier, unsigned EngineTilePixels) {
  if (Tier == ExecTier::Native)
    return {ArenaLayoutConfig{}};
  unsigned Tile = EngineTilePixels ? EngineTilePixels : 128;
  return {
      ArenaLayoutConfig{}, // identity first: wins all ties
      ArenaLayoutConfig{ArenaLayout::SlotMajor, 0, true},
      ArenaLayoutConfig{ArenaLayout::TileBlocked, Tile * 8, true},
      ArenaLayoutConfig{ArenaLayout::TileBlocked, Tile * 32, true},
  };
}

ArenaLayoutConfig dspec::pickArenaLayout(
    const std::vector<ArenaLayoutConfig> &Candidates,
    const std::function<double(const ArenaLayoutConfig &)> &Measure) {
  if (Candidates.empty())
    return ArenaLayoutConfig{};
  size_t Best = 0;
  double BestSeconds = Measure(Candidates[0]);
  for (size_t I = 1; I < Candidates.size(); ++I) {
    double Seconds = Measure(Candidates[I]);
    // A later candidate must beat the incumbent by more than timer
    // noise (2%) to displace it — earlier entries are simpler layouts.
    if (Seconds < BestSeconds * 0.98) {
      Best = I;
      BestSeconds = Seconds;
    }
  }
  return Candidates[Best];
}

ArenaLayoutConfig dspec::chooseArenaLayout(ExecTier Tier,
                                           unsigned EngineTilePixels) {
  ArenaLayoutConfig Cfg;
  switch (Tier) {
  case ExecTier::Batched: {
    Cfg.Layout = ArenaLayout::TileBlocked;
    // Block = a few engine tiles: big enough that per-column streaming
    // amortizes, small enough that one block's stride x pixels stays in
    // L2. Must stay a multiple of the engine tile so a work tile never
    // straddles a block (CacheArena::batchCompatible).
    unsigned Tile = EngineTilePixels ? EngineTilePixels : 128;
    Cfg.TilePixels = Tile * 8;
    Cfg.PackCold = true;
    break;
  }
  case ExecTier::Switch:
  case ExecTier::Threaded:
  case ExecTier::Native:
    // Per-pixel tiers walk one stride at a time; Native additionally
    // requires a dense (map-free) arena or it deopts per chunk.
    Cfg.Layout = ArenaLayout::PixelMajor;
    break;
  }
  return Cfg;
}
