//===- specialize/CacheLayout.h - Cache slot layout -------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout of one specialization's cache: an ordered list of typed
/// slots with byte offsets. The byte total is the paper's Figure 8
/// metric ("single-pixel cache sizes"). All dsc types are 4-byte aligned,
/// so slots pack densely.
///
/// Offsets are *canonical*: sequential dense packing in slot order,
/// exactly what bytecode cache instructions address and what a
/// snapshot's ARENA section stores pixel-major. A CacheArena may place
/// the bytes elsewhere (engine/ArenaLayout.h), but that is invisible
/// here — the physical map is derived from this canonical layout.
///
/// Each slot also carries a reuse weight stamped by the specializer from
/// the Section 4.3 cost model: the structural execution weight
/// (LoopMultiplier^loopDepth / CondDivisor^condDepth) of the cached
/// term. Weight >= 1 means the reader touches the slot at least once per
/// pixel (hot); weight < 1 means it sits under a conditional and is
/// touched on some pixels only (cold) — the arena's PackCold layouts
/// move such slots out of the hot stride. A negative weight means
/// "unknown, assume hot" (layouts built by hand or loaded from a
/// version-1 snapshot).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_CACHELAYOUT_H
#define DATASPEC_SPECIALIZE_CACHELAYOUT_H

#include "lang/Type.h"

#include <vector>

namespace dspec {

/// One cache slot.
struct CacheSlot {
  unsigned Index;
  Type SlotType;
  unsigned Offset;
  /// Structural reuse weight of the cached term (see file comment).
  /// Negative = unknown (treated as hot).
  float ReuseWeight = -1.0f;

  /// Cold = provably executed less than once per reader invocation.
  bool isCold() const { return ReuseWeight >= 0.0f && ReuseWeight < 1.0f; }
};

/// Ordered slot list for one specialization.
class CacheLayout {
public:
  /// Appends a slot of type \p T; returns its index.
  unsigned addSlot(Type T) {
    unsigned Index = static_cast<unsigned>(Slots.size());
    Slots.push_back({Index, T, NextOffset, -1.0f});
    NextOffset += T.sizeInBytes();
    return Index;
  }

  const std::vector<CacheSlot> &slots() const { return Slots; }
  unsigned slotCount() const { return static_cast<unsigned>(Slots.size()); }

  /// Slot descriptor by index.
  const CacheSlot &slot(unsigned Index) const { return Slots[Index]; }

  /// Stamps slot \p Index's reuse weight (DataSpecializer, LayoutSerde).
  void setReuseWeight(unsigned Index, float Weight) {
    Slots[Index].ReuseWeight = Weight;
  }

  /// Total cache bytes per specialization instance.
  unsigned totalBytes() const { return NextOffset; }

  /// Bytes per pixel the hot (unconditionally touched) slots occupy —
  /// the stride the Section 4.3 measured-bytes limiter charges against
  /// the LLC. Unknown-weight slots count as hot.
  unsigned hotBytes() const {
    unsigned Bytes = 0;
    for (const CacheSlot &S : Slots)
      if (!S.isCold())
        Bytes += S.SlotType.sizeInBytes();
    return Bytes;
  }

  /// True when any slot is classified cold (PackCold has work to do).
  bool hasColdSlots() const {
    for (const CacheSlot &S : Slots)
      if (S.isCold())
        return true;
    return false;
  }

private:
  std::vector<CacheSlot> Slots;
  unsigned NextOffset = 0;
};

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_CACHELAYOUT_H
