//===- specialize/CacheLayout.h - Cache slot layout -------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout of one specialization's cache: an ordered list of typed
/// slots with byte offsets. The byte total is the paper's Figure 8
/// metric ("single-pixel cache sizes"). All dsc types are 4-byte aligned,
/// so slots pack densely.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_CACHELAYOUT_H
#define DATASPEC_SPECIALIZE_CACHELAYOUT_H

#include "lang/Type.h"

#include <vector>

namespace dspec {

/// One cache slot.
struct CacheSlot {
  unsigned Index;
  Type SlotType;
  unsigned Offset;
};

/// Ordered slot list for one specialization.
class CacheLayout {
public:
  /// Appends a slot of type \p T; returns its index.
  unsigned addSlot(Type T) {
    unsigned Index = static_cast<unsigned>(Slots.size());
    Slots.push_back({Index, T, NextOffset});
    NextOffset += T.sizeInBytes();
    return Index;
  }

  const std::vector<CacheSlot> &slots() const { return Slots; }
  unsigned slotCount() const { return static_cast<unsigned>(Slots.size()); }

  /// Slot descriptor by index.
  const CacheSlot &slot(unsigned Index) const { return Slots[Index]; }

  /// Total cache bytes per specialization instance.
  unsigned totalBytes() const { return NextOffset; }

private:
  std::vector<CacheSlot> Slots;
  unsigned NextOffset = 0;
};

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_CACHELAYOUT_H
