//===- specialize/CachingAnalysis.cpp - Section 3.2 solver -----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "specialize/CachingAnalysis.h"

#include "analysis/SingleValued.h"
#include "lang/ASTWalk.h"
#include "support/Casting.h"

#include <algorithm>

using namespace dspec;

CachingAnalysis::CachingAnalysis(Function *F, const DependenceAnalysis &Dep,
                                 const ReachingDefs &RD,
                                 const StructureInfo &SI, const CostModel &CM,
                                 const SpecializerOptions &Opts,
                                 uint32_t NumNodeIds)
    : F(F), Dep(Dep), RD(RD), SI(SI), CM(CM), Opts(Opts) {
  Labels.assign(NumNodeIds, CacheLabel::CL_Static); // Rule 8 default
  NeedsStorage.assign(NumNodeIds, 0);
  Slots.assign(NumNodeIds, -1);
}

bool CachingAnalysis::underDependentControl(uint32_t NodeId) const {
  for (const GuardRecord &G : SI.guards(NodeId))
    if (Dep.isDependent(G.Cond))
      return true;
  return false;
}

Stmt *CachingAnalysis::outermostDependentGuard(uint32_t NodeId) const {
  for (const GuardRecord &G : SI.guards(NodeId)) // outermost first
    if (Dep.isDependent(G.Cond))
      return G.Construct;
  return nullptr;
}

bool CachingAnalysis::isHoistableBefore(Expr *Op, const Stmt *Region) const {
  // Every reaching definition of every free variable of Op must lie
  // outside Region; then all of Op's context is available just before
  // Region, so the loader may evaluate it there unconditionally.
  bool Hoistable = true;
  walkExpr(Op, [&](Expr *Sub) {
    if (!Hoistable)
      return;
    auto *Ref = dyn_cast<VarRefExpr>(Sub);
    if (!Ref)
      return;
    for (const Stmt *Def : RD.defs(Ref)) {
      // Def is inside Region iff Region guards it.
      for (const GuardRecord &G : SI.guards(Def->nodeId())) {
        if (G.Construct == Region) {
          Hoistable = false;
          return;
        }
      }
    }
  });
  return Hoistable;
}

bool CachingAnalysis::isTrivial(Expr *Op) const {
  if (auto *Ref = dyn_cast<VarRefExpr>(Op)) {
    if (Opts.EnableJoinNormalize) {
      // Section 4.1: only phi-copy right-hand sides may be cached.
      Stmt *Owner = SI.ownerStmt(Ref);
      auto *Assign = dyn_cast<AssignStmt>(Owner);
      bool IsPhiRHS = Assign && Assign->isPhiCopy() && Assign->value() == Ref;
      return !IsPhiRHS;
    }
    // Naive mode (paper Figure 5): local references are worth caching,
    // parameter references never are (the reader receives all inputs).
    return !Ref->decl()->isLocal();
  }
  return CM.rawCost(Op) <= Opts.Cost.CacheRefCost;
}

bool CachingAnalysis::isCacheable(Expr *Op) const {
  if (Dep.isDependent(Op))
    return false;
  if (Op->type().isVoid())
    return false;
  if (isTrivial(Op))
    return false;
  if (!isSingleValued(Op, SI, RD))
    return false;
  return true;
}

bool CachingAnalysis::isRootExpr(const Expr *E) const {
  Stmt *Owner = SI.ownerStmt(E);
  switch (Owner->kind()) {
  case StmtKind::SK_Decl:
    return cast<DeclStmt>(Owner)->init() == E;
  case StmtKind::SK_Assign:
    return cast<AssignStmt>(Owner)->value() == E;
  case StmtKind::SK_ExprStmt:
    return cast<ExprStmt>(Owner)->expr() == E;
  case StmtKind::SK_If:
    return cast<IfStmt>(Owner)->cond() == E;
  case StmtKind::SK_While:
    return cast<WhileStmt>(Owner)->cond() == E;
  case StmtKind::SK_Return:
    return cast<ReturnStmt>(Owner)->value() == E;
  case StmtKind::SK_Block:
    return false;
  }
  return false;
}

void CachingAnalysis::markDynamicExpr(Expr *E) {
  if (Labels[E->nodeId()] == CacheLabel::CL_Dynamic)
    return;
  Labels[E->nodeId()] = CacheLabel::CL_Dynamic;
  Worklist.push_back({/*IsExpr=*/true, E, nullptr});
}

void CachingAnalysis::markDynamicStmt(Stmt *S) {
  if (Labels[S->nodeId()] == CacheLabel::CL_Dynamic)
    return;
  Labels[S->nodeId()] = CacheLabel::CL_Dynamic;
  Worklist.push_back({/*IsExpr=*/false, nullptr, S});
}

void CachingAnalysis::makeCachedOrDynamic(Expr *Op) {
  CacheLabel Current = Labels[Op->nodeId()];
  if (Current != CacheLabel::CL_Static)
    return; // already cached or dynamic

  if (isCacheable(Op)) {
    // Rule 3 / speculation interplay: in strict mode anything under a
    // dependent guard is already dynamic and never reaches this point.
    // In speculation mode it may, but the loader must be able to hoist
    // the store out of the dependent region.
    if (Opts.AllowSpeculation) {
      if (Stmt *Region = outermostDependentGuard(Op->nodeId())) {
        if (!isHoistableBefore(Op, Region)) {
          markDynamicExpr(Op);
          return;
        }
        Hoists[Region].push_back(Op);
      }
    }
    Labels[Op->nodeId()] = CacheLabel::CL_Cached; // Rule 6
    return;
  }
  markDynamicExpr(Op); // Rule 7
}

void CachingAnalysis::propagate() {
  while (!Worklist.empty()) {
    WorkItem Item = Worklist.front();
    Worklist.pop_front();

    if (Item.IsExpr) {
      Expr *E = Item.E;
      // Rule 4: a dynamic reference pulls its reaching definitions into
      // the reader.
      if (auto *Ref = dyn_cast<VarRefExpr>(E))
        for (Stmt *Def : RD.defs(Ref))
          markDynamicStmt(Def);
      // Rule 5: guards of a dynamic term are dynamic.
      for (const GuardRecord &G : SI.guards(E->nodeId()))
        markDynamicStmt(G.Construct);
      // Rules 6/7: operands must be available in the reader.
      forEachChildExpr(E, [&](Expr *Child) { makeCachedOrDynamic(Child); });
      // A dynamic root expression drags its owner statement into the
      // reader (the reader must perform the assignment / test / return).
      if (isRootExpr(E))
        markDynamicStmt(SI.ownerStmt(E));
      continue;
    }

    Stmt *S = Item.S;
    // Rule 5 for statements.
    for (const GuardRecord &G : SI.guards(S->nodeId()))
      markDynamicStmt(G.Construct);

    switch (S->kind()) {
    case StmtKind::SK_Decl: {
      auto *Decl = cast<DeclStmt>(S);
      if (Decl->init())
        makeCachedOrDynamic(Decl->init());
      break;
    }
    case StmtKind::SK_Assign: {
      auto *Assign = cast<AssignStmt>(S);
      makeCachedOrDynamic(Assign->value());
      // The reader performs this assignment, so the target's declaration
      // must exist there (bare, if otherwise static).
      if (Assign->target()->isLocal())
        if (DeclStmt *Decl = SI.declStmtOf(Assign->target()))
          NeedsStorage[Decl->nodeId()] = 1;
      break;
    }
    case StmtKind::SK_If:
      makeCachedOrDynamic(cast<IfStmt>(S)->cond());
      break;
    case StmtKind::SK_While:
      makeCachedOrDynamic(cast<WhileStmt>(S)->cond());
      break;
    case StmtKind::SK_Return:
      if (Expr *Value = cast<ReturnStmt>(S)->value())
        makeCachedOrDynamic(Value);
      break;
    case StmtKind::SK_ExprStmt:
      // The expression itself became dynamic first (that is the only way
      // an ExprStmt enters the worklist); nothing further to do.
      break;
    case StmtKind::SK_Block:
      break;
    }
  }
}

void CachingAnalysis::solve() {
  // Rules 1-3 seed the worklist.
  for (Expr *E : SI.allExprs()) {
    bool Base = Dep.isDependent(E); // Rule 1 (includes global effects)
    if (auto *Call = dyn_cast<CallExpr>(E))
      Base |= getBuiltinInfo(Call->builtin()).HasGlobalEffect; // Rule 2
    if (!Opts.AllowSpeculation)
      Base |= underDependentControl(E->nodeId()); // Rule 3
    if (Base)
      markDynamicExpr(E);
  }
  for (Stmt *S : SI.allStmts()) {
    bool Base = isa<ReturnStmt>(S); // the reader must produce the result
    Base |= !isa<BlockStmt>(S) && Dep.isDependent(S);
    if (!Opts.AllowSpeculation && !isa<BlockStmt>(S))
      Base |= underDependentControl(S->nodeId());
    if (Base)
      markDynamicStmt(S);
  }
  propagate();
}

void CachingAnalysis::forceDynamic(Expr *Victim) {
  assert(Labels[Victim->nodeId()] == CacheLabel::CL_Cached &&
         "victim must be a cached term");
  // Remove any hoist record for the victim.
  for (auto &[Construct, List] : Hoists)
    List.erase(std::remove(List.begin(), List.end(), Victim), List.end());
  Labels[Victim->nodeId()] = CacheLabel::CL_Static; // let markDynamic run
  markDynamicExpr(Victim);
  propagate();
}

std::vector<Expr *> CachingAnalysis::cachedTerms() const {
  std::vector<Expr *> Out;
  for (Expr *E : SI.allExprs())
    if (Labels[E->nodeId()] == CacheLabel::CL_Cached)
      Out.push_back(E);
  return Out;
}

unsigned CachingAnalysis::cacheBytes() const {
  unsigned Bytes = 0;
  for (Expr *E : SI.allExprs())
    if (Labels[E->nodeId()] == CacheLabel::CL_Cached)
      Bytes += E->type().sizeInBytes();
  return Bytes;
}

const std::vector<Expr *> &
CachingAnalysis::hoistsBefore(const Stmt *Construct) const {
  static const std::vector<Expr *> Empty;
  auto It = Hoists.find(Construct);
  return It == Hoists.end() ? Empty : It->second;
}

CacheLayout CachingAnalysis::finalizeLayout() {
  CacheLayout Layout;
  for (Expr *E : SI.allExprs())
    if (Labels[E->nodeId()] == CacheLabel::CL_Cached)
      Slots[E->nodeId()] = static_cast<int>(Layout.addSlot(E->type()));
  return Layout;
}

unsigned CachingAnalysis::countExprs(CacheLabel L) const {
  unsigned Count = 0;
  for (Expr *E : SI.allExprs())
    if (Labels[E->nodeId()] == L)
      ++Count;
  return Count;
}

unsigned CachingAnalysis::countDynamicStmts() const {
  unsigned Count = 0;
  for (Stmt *S : SI.allStmts())
    if (Labels[S->nodeId()] == CacheLabel::CL_Dynamic)
      ++Count;
  return Count;
}
