//===- specialize/Splitter.cpp - Section 3.3 splitting ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "specialize/Splitter.h"

#include "lang/ASTCloner.h"
#include "lang/ASTWalk.h"
#include "support/Casting.h"

using namespace dspec;

namespace {

/// Clones the fragment, wrapping each cached term in a cache store.
class LoaderCloner : public ASTCloner {
public:
  LoaderCloner(ASTContext &Ctx, CachingAnalysis &CA, const CacheLayout &Layout)
      : ASTCloner(Ctx), CA(CA), Layout(Layout) {}

  Expr *cloneExpr(Expr *E) override {
    int Slot = CA.slotOf(E);
    if (Slot < 0)
      return cloneExprStructure(E);
    // Frontier property: a cached term has no cached subterms, so the
    // structural clone below cannot produce nested stores.
    Expr *Inner = cloneExprStructure(E);
    return Ctx.create<CacheStoreExpr>(
        static_cast<unsigned>(Slot), Inner, E->loc(),
        Layout.slot(static_cast<unsigned>(Slot)).Offset);
  }

  Stmt *cloneStmt(Stmt *S) override {
    if (auto *Block = dyn_cast<BlockStmt>(S)) {
      std::vector<Stmt *> Body;
      for (Stmt *Child : Block->body()) {
        // Speculation: evaluate hoistable cached terms unconditionally
        // just before the dependent guard that protects their in-place
        // occurrence.
        for (Expr *Hoist : CA.hoistsBefore(Child)) {
          Expr *Store = cloneExpr(Hoist);
          Body.push_back(Ctx.create<ExprStmt>(Store, Hoist->loc()));
        }
        if (Stmt *Cloned = cloneStmt(Child))
          Body.push_back(Cloned);
      }
      return Ctx.create<BlockStmt>(std::move(Body), S->loc());
    }
    return ASTCloner::cloneStmt(S);
  }

private:
  CachingAnalysis &CA;
  const CacheLayout &Layout;
};

/// Clones only the dynamic projection of the fragment, replacing cached
/// terms by cache reads.
class ReaderCloner : public ASTCloner {
public:
  ReaderCloner(ASTContext &Ctx, CachingAnalysis &CA, const CacheLayout &Layout)
      : ASTCloner(Ctx), CA(CA), Layout(Layout) {}

  Expr *cloneExpr(Expr *E) override {
    if (CA.label(E) == CacheLabel::CL_Cached) {
      int Slot = CA.slotOf(E);
      assert(Slot >= 0 && "cached term without a slot");
      return Ctx.create<CacheReadExpr>(
          static_cast<unsigned>(Slot), E->type(), E->loc(),
          Layout.slot(static_cast<unsigned>(Slot)).Offset);
    }
    assert(CA.label(E) == CacheLabel::CL_Dynamic &&
           "reader reached a static expression");
    return cloneExprStructure(E);
  }

  Stmt *cloneStmt(Stmt *S) override {
    // Blocks have no label of their own; recurse and drop if empty.
    if (isa<BlockStmt>(S)) {
      Stmt *Cloned = ASTCloner::cloneStmt(S);
      if (auto *Block = dyn_cast_or_null<BlockStmt>(Cloned))
        if (Block->body().empty())
          return nullptr;
      return Cloned;
    }

    if (CA.label(S) == CacheLabel::CL_Dynamic)
      return ASTCloner::cloneStmt(S);

    // Static statement: normally dropped, but a declaration whose
    // variable the reader assigns must be re-emitted without its
    // initializer (the dynamic assignment dominates every reader use).
    if (auto *Decl = dyn_cast<DeclStmt>(S)) {
      if (CA.needsBareDecl(Decl)) {
        VarDecl *NewVar =
            Ctx.createVarDecl(Decl->var()->kind(), Decl->var()->name(),
                              Decl->var()->type(), Decl->var()->loc());
        mapDecl(Decl->var(), NewVar);
        return Ctx.create<DeclStmt>(NewVar, /*Init=*/nullptr, S->loc());
      }
    }
    return nullptr;
  }

private:
  CachingAnalysis &CA;
  const CacheLayout &Layout;
};

} // namespace

Function *Splitter::buildLoader(Function *F, const std::string &Name) {
  LoaderCloner Cloner(Ctx, CA, Layout);
  return Cloner.cloneFunction(F, Name);
}

Function *Splitter::buildReader(Function *F, const std::string &Name) {
  ReaderCloner Cloner(Ctx, CA, Layout);
  return Cloner.cloneFunction(F, Name);
}

unsigned Splitter::countBranchStmts(Function *F) {
  unsigned Branches = 0;
  walkStmts(F->body(), [&](Stmt *S) {
    if (S->kind() == StmtKind::SK_If || S->kind() == StmtKind::SK_While)
      ++Branches;
  });
  return Branches;
}

void Splitter::countBranchKinds(Function *F, unsigned &Maskable,
                                unsigned &Unmaskable) {
  Maskable = 0;
  Unmaskable = 0;
  walkStmts(F->body(), [&](Stmt *S) {
    if (S->kind() == StmtKind::SK_While) {
      ++Unmaskable;
      return;
    }
    if (S->kind() != StmtKind::SK_If)
      return;
    // An if is a maskable diamond unless its subtree escapes structured
    // reconvergence: a loop inside changes trip counts per lane, a
    // return leaves the diamond entirely.
    bool Escapes = false;
    walkStmts(S, [&](Stmt *Sub) {
      if (Sub->kind() == StmtKind::SK_While ||
          Sub->kind() == StmtKind::SK_Return)
        Escapes = true;
    });
    if (Escapes)
      ++Unmaskable;
    else
      ++Maskable;
  });
}
