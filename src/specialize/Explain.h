//===- specialize/Explain.h - Human-readable reports -------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a specialization decision report: the input partition, the
/// cache slot table (source text, cost, bytes), label counts, hoisted
/// terms, and an annotated statement listing. Used by `dspec --explain`
/// and handy when tuning shaders for specialization.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_EXPLAIN_H
#define DATASPEC_SPECIALIZE_EXPLAIN_H

#include "specialize/CachingAnalysis.h"

#include <string>
#include <vector>

namespace dspec {

/// Builds the report. \p Varying names the varying parameters;
/// \p Normalized is the preprocessed fragment the labels refer to.
std::string explainSpecialization(Function *Normalized,
                                  const std::vector<VarDecl *> &Varying,
                                  const CachingAnalysis &CA,
                                  const CostModel &CM,
                                  const CacheLayout &Layout,
                                  const StructureInfo &SI);

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_EXPLAIN_H
