//===- specialize/Explain.cpp - Human-readable reports ---------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "specialize/Explain.h"

#include "lang/ASTPrinter.h"
#include "lang/ASTWalk.h"
#include "support/Casting.h"
#include "support/StringUtil.h"

using namespace dspec;

namespace {

const char *labelName(CacheLabel Label) {
  switch (Label) {
  case CacheLabel::CL_Static:
    return "static";
  case CacheLabel::CL_Cached:
    return "cached";
  case CacheLabel::CL_Dynamic:
    return "dynamic";
  }
  return "?";
}

/// One-line rendering of an expression, truncated for the table.
std::string exprText(const Expr *E, size_t Limit = 48) {
  std::string Text = printExpr(E);
  if (Text.size() > Limit)
    Text = Text.substr(0, Limit - 3) + "...";
  return Text;
}

/// A short label for a statement kind in the annotated listing.
const char *stmtKindName(const Stmt *S) {
  switch (S->kind()) {
  case StmtKind::SK_Block:
    return "block";
  case StmtKind::SK_Decl:
    return "decl";
  case StmtKind::SK_Assign:
    return "assign";
  case StmtKind::SK_ExprStmt:
    return "expr";
  case StmtKind::SK_If:
    return "if";
  case StmtKind::SK_While:
    return "while";
  case StmtKind::SK_Return:
    return "return";
  }
  return "?";
}

} // namespace

std::string dspec::explainSpecialization(Function *Normalized,
                                         const std::vector<VarDecl *> &Varying,
                                         const CachingAnalysis &CA,
                                         const CostModel &CM,
                                         const CacheLayout &Layout,
                                         const StructureInfo &SI) {
  std::string Out;
  Out += "=== specialization report: " + Normalized->name() + " ===\n";

  Out += "input partition: ";
  Out += "fixed = {";
  bool First = true;
  for (VarDecl *Param : Normalized->params()) {
    bool IsVarying = false;
    for (VarDecl *V : Varying)
      if (V == Param)
        IsVarying = true;
    if (IsVarying)
      continue;
    if (!First)
      Out += ", ";
    Out += Param->name();
    First = false;
  }
  Out += "}, varying = {";
  First = true;
  for (VarDecl *V : Varying) {
    if (!First)
      Out += ", ";
    Out += V->name();
    First = false;
  }
  Out += "}\n\n";

  // Slot table.
  Out += formatString("cache: %u slot(s), %u byte(s)\n", Layout.slotCount(),
                      Layout.totalBytes());
  for (Expr *Term : CA.cachedTerms()) {
    int Slot = CA.slotOf(Term);
    Out += formatString("  slot%-3d %-6s %3uB  cost %4u (weighted %7.1f)  %s\n",
                        Slot, Term->type().name(),
                        Term->type().sizeInBytes(), CM.rawCost(Term),
                        CM.weightedCost(Term), exprText(Term).c_str());
  }
  Out += '\n';

  // Label census.
  Out += formatString(
      "expression labels: %u static, %u cached, %u dynamic\n",
      CA.countExprs(CacheLabel::CL_Static),
      CA.countExprs(CacheLabel::CL_Cached),
      CA.countExprs(CacheLabel::CL_Dynamic));
  Out += formatString("dynamic statements: %u\n\n", CA.countDynamicStmts());

  // Hoisted speculative stores, if any.
  bool AnyHoists = false;
  for (Stmt *S : SI.allStmts()) {
    const auto &Hoists = CA.hoistsBefore(S);
    if (Hoists.empty())
      continue;
    if (!AnyHoists) {
      Out += "speculative hoists (stores the loader executes before a "
             "dependent guard):\n";
      AnyHoists = true;
    }
    for (Expr *Hoist : Hoists)
      Out += formatString("  before %s at %s: %s\n", stmtKindName(S),
                          S->loc().str().c_str(), exprText(Hoist).c_str());
  }
  if (AnyHoists)
    Out += '\n';

  // Annotated statement listing (non-block statements).
  Out += "statement labels:\n";
  for (Stmt *S : SI.allStmts()) {
    if (isa<BlockStmt>(S))
      continue;
    std::string Line;
    switch (S->kind()) {
    case StmtKind::SK_Decl: {
      auto *Decl = cast<DeclStmt>(S);
      Line = std::string(Decl->var()->type().name()) + " " +
             Decl->var()->name();
      if (Decl->init())
        Line += " = " + exprText(Decl->init(), 36);
      break;
    }
    case StmtKind::SK_Assign: {
      auto *Assign = cast<AssignStmt>(S);
      Line = Assign->targetName() + " = " + exprText(Assign->value(), 36);
      if (Assign->isPhiCopy())
        Line += "  /* phi */";
      break;
    }
    case StmtKind::SK_If:
      Line = "if (" + exprText(cast<IfStmt>(S)->cond(), 36) + ") ...";
      break;
    case StmtKind::SK_While:
      Line = "while (" + exprText(cast<WhileStmt>(S)->cond(), 36) + ") ...";
      break;
    case StmtKind::SK_Return:
      Line = "return";
      if (Expr *Value = cast<ReturnStmt>(S)->value())
        Line += " " + exprText(Value, 36);
      break;
    case StmtKind::SK_ExprStmt:
      Line = exprText(cast<ExprStmt>(S)->expr(), 42);
      break;
    case StmtKind::SK_Block:
      break;
    }
    Out += formatString("  %-8s %s\n", labelName(CA.label(S)), Line.c_str());
  }
  return Out;
}
