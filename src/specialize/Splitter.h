//===- specialize/Splitter.h - Section 3.3 splitting ------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The splitting transformation (Section 3.3): traverses the labeled
/// fragment and emits the cache loader and the cache reader.
///
///   Static:  appears in the loader only.
///   Cached:  the loader wraps the term in a cache store
///            (`cache->slotN = ...`); the reader reads the slot.
///   Dynamic: appears in both.
///
/// The loader is the instrumented original (it evaluates every term and
/// also returns the fragment's result — the paper's signature (2)); the
/// reader is a projection containing only dynamic terms and cache reads.
/// Both receive the fragment's full parameter list (signature (1)).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_SPLITTER_H
#define DATASPEC_SPECIALIZE_SPLITTER_H

#include "lang/ASTContext.h"
#include "specialize/CacheLayout.h"
#include "specialize/CachingAnalysis.h"

#include <string>

namespace dspec {

/// Emits loader and reader functions from a labeled fragment. The
/// finalized CacheLayout is the single authoritative runtime layout: the
/// splitter stamps each emitted cache access with the slot's byte offset
/// so the compiled code addresses the packed cache buffer directly.
class Splitter {
public:
  Splitter(ASTContext &Ctx, CachingAnalysis &CA, const CacheLayout &Layout)
      : Ctx(Ctx), CA(CA), Layout(Layout) {}

  /// Builds the cache loader: the original fragment instrumented with
  /// cache stores (and, under speculation, hoisted stores before
  /// dependent guards).
  Function *buildLoader(Function *F, const std::string &Name);

  /// Builds the cache reader: dynamic terms only, cached terms replaced
  /// by cache reads, static declarations that the reader assigns to
  /// re-emitted bare.
  Function *buildReader(Function *F, const std::string &Name);

  /// Number of branching statements (if / while) in \p F's body. Zero
  /// means the function compiles to straight-line bytecode: control flow
  /// cannot diverge between pixels, so the render engine's batched tier
  /// executes it a whole tile per instruction fetch. (dsc's ?: is strict
  /// — OC_Select — and does not branch.) The bytecode-level
  /// ExecChunk::StraightLine flag remains authoritative at runtime; this
  /// AST-level count feeds the stats and the explain report.
  static unsigned countBranchStmts(Function *F);

  /// Splits countBranchStmts by how the batched tier handles divergence
  /// at each branch (docs/ENGINE.md, "Masked divergent-lane execution"):
  /// an if whose subtree contains no loop and no return is \p Maskable —
  /// divergent lanes execute both arms under a mask; whiles, and ifs
  /// carrying a while or return, are \p Unmaskable — uniform lanes still
  /// batch in lockstep, but a divergent tile bails to per-pixel
  /// execution. Mirrors the bytecode-level ExecChunk::BranchJoin
  /// classification, which remains authoritative at runtime.
  static void countBranchKinds(Function *F, unsigned &Maskable,
                               unsigned &Unmaskable);

private:
  ASTContext &Ctx;
  CachingAnalysis &CA;
  const CacheLayout &Layout;
};

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_SPLITTER_H
