//===- specialize/LayoutSerde.cpp - CacheLayout binary serde -----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "specialize/LayoutSerde.h"

#include <cmath>

using namespace dspec;

void dspec::serializeLayout(ByteWriter &Writer, const CacheLayout &Layout) {
  Writer.writeU32(Layout.slotCount());
  for (const CacheSlot &Slot : Layout.slots()) {
    Writer.writeU8(static_cast<uint8_t>(Slot.SlotType.kind()));
    Writer.writeU32(Slot.Offset);
  }
  Writer.writeU32(Layout.totalBytes());

  // Version 2 tail: per-slot reuse weights behind a presence flag. The
  // flag (rather than "if bytes remain") keeps the encoding usable
  // mid-stream — variant sets embed layouts between other payloads.
  bool HasWeights = false;
  for (const CacheSlot &Slot : Layout.slots())
    if (Slot.ReuseWeight >= 0.0f) {
      HasWeights = true;
      break;
    }
  Writer.writeU8(HasWeights ? 1 : 0);
  if (HasWeights)
    for (const CacheSlot &Slot : Layout.slots())
      Writer.writeF32(Slot.ReuseWeight);
}

bool dspec::deserializeLayout(ByteReader &Reader, CacheLayout &Out,
                              std::string &Error, uint32_t Version) {
  Out = CacheLayout();
  uint32_t SlotCount = Reader.readU32();
  // Each slot costs 5 encoded bytes; a count past the remaining data is
  // corrupt, and this also bounds the rebuild loop.
  if (Reader.ok() &&
      static_cast<uint64_t>(SlotCount) * 5 > Reader.remaining())
    Reader.fail("slot count " + std::to_string(SlotCount) +
                " exceeds the remaining data");

  for (uint32_t I = 0; I < SlotCount && Reader.ok(); ++I) {
    uint8_t RawKind = Reader.readU8();
    uint32_t StoredOffset = Reader.readU32();
    if (!Reader.ok())
      break;
    if (RawKind == static_cast<uint8_t>(TypeKind::TK_Void) ||
        RawKind > static_cast<uint8_t>(TypeKind::TK_Vec4)) {
      Reader.fail("slot " + std::to_string(I) + " has invalid type tag " +
                  std::to_string(RawKind));
      break;
    }
    Type SlotType(static_cast<TypeKind>(RawKind));
    unsigned Index = Out.addSlot(SlotType);
    if (Out.slot(Index).Offset != StoredOffset) {
      Reader.fail("slot " + std::to_string(I) + " offset " +
                  std::to_string(StoredOffset) +
                  " does not match the packing rule (expected " +
                  std::to_string(Out.slot(Index).Offset) + ")");
      break;
    }
  }

  uint32_t StoredTotal = Reader.readU32();
  if (Reader.ok() && StoredTotal != Out.totalBytes())
    Reader.fail("layout total " + std::to_string(StoredTotal) +
                " does not match the slots (expected " +
                std::to_string(Out.totalBytes()) + ")");

  if (Version >= 2 && Reader.ok()) {
    uint8_t HasWeights = Reader.readU8();
    if (Reader.ok() && HasWeights > 1)
      Reader.fail("invalid reuse-weight presence flag " +
                  std::to_string(HasWeights));
    if (Reader.ok() && HasWeights == 1) {
      for (uint32_t I = 0; I < SlotCount && Reader.ok(); ++I) {
        float Weight = Reader.readF32();
        if (!Reader.ok())
          break;
        if (!std::isfinite(Weight)) {
          Reader.fail("slot " + std::to_string(I) +
                      " has a non-finite reuse weight");
          break;
        }
        // Negative encodes "unknown" — the slot stays hot by default.
        if (Weight >= 0.0f)
          Out.setReuseWeight(I, Weight);
      }
    }
  }

  if (!Reader.ok()) {
    Error = "malformed cache layout: " + Reader.error();
    return false;
  }
  return true;
}
