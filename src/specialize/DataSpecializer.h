//===- specialize/DataSpecializer.h - Public facade -------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: given a fragment (a dsc
/// function) and an input partition (which parameters vary), produce the
/// cache loader and cache reader functions, the cache layout, and
/// statistics. This realizes the paper's signature
///
///   Fragment x Input-Partition ->
///       (All-Inputs -> Cache x Result)          // cache loader
///     x (Cache x All-Inputs -> Result)          // cache reader
///
/// Pipeline: clone the fragment -> join-normalize (Section 4.1) ->
/// dependence analysis (Section 3.1) -> optional reassociation
/// (Section 4.2, analyses re-run) -> caching analysis (Section 3.2) ->
/// optional cache limiting (Section 4.3) -> splitting (Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_DATASPECIALIZER_H
#define DATASPEC_SPECIALIZE_DATASPECIALIZER_H

#include "lang/ASTContext.h"
#include "specialize/CacheLayout.h"
#include "specialize/Polyvariant.h"
#include "specialize/SpecializerOptions.h"
#include "support/Diagnostics.h"
#include "transform/ConstantFold.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dspec {

/// Term/label counters describing one specialization.
struct SpecializationStats {
  unsigned FragmentTerms = 0;   ///< statements + expressions in the fragment
  unsigned NormalizedTerms = 0; ///< terms after phi insertion/reassociation
  unsigned LoaderTerms = 0;     ///< terms in the emitted loader
  unsigned ReaderTerms = 0;     ///< terms in the emitted reader
  unsigned StaticExprs = 0;
  unsigned CachedExprs = 0;
  unsigned DynamicExprs = 0;
  unsigned DynamicStmts = 0;
  unsigned DependentTerms = 0;
  unsigned PhiCopiesInserted = 0;
  unsigned ChainsReassociated = 0;
  unsigned LimiterVictims = 0;
  /// Measured Section 4.3: victims of the working-set (LLC) limiter, and
  /// the final per-frame figures it converged to (0 when the pass is off).
  unsigned WorkingSetVictims = 0;
  uint64_t HotBytesPerPixel = 0;
  uint64_t WorkingSetBytes = 0;
  /// Branching statements (if / while) in the emitted loader and reader.
  /// Since the masked batched tier, branches no longer disqualify a
  /// reader from batching: effect-free readers always start batched.
  /// The Maskable/Unmaskable split below says how each branch behaves
  /// when lanes disagree (see docs/ENGINE.md, "Masked divergent-lane
  /// execution").
  unsigned LoaderBranchStmts = 0;
  unsigned ReaderBranchStmts = 0;
  /// Reader branches split by divergence handling: maskable diamonds
  /// execute both arms under a per-lane mask; unmaskable branches
  /// (loops, return-carrying ifs) batch only while uniform — a
  /// divergent tile bails to per-pixel threaded execution.
  unsigned ReaderMaskableBranches = 0;
  unsigned ReaderUnmaskableBranches = 0;
};

/// Everything the specializer produces for one fragment + partition.
struct SpecializationResult {
  /// The preprocessed fragment the split was computed from (after phi
  /// insertion / reassociation). Useful for inspection; behaviorally
  /// equivalent to the input fragment (up to float reassociation).
  Function *NormalizedFragment = nullptr;
  /// The cache loader: evaluates everything, fills the cache, returns the
  /// fragment result.
  Function *Loader = nullptr;
  /// The cache reader: consumes the cache, returns the fragment result.
  Function *Reader = nullptr;
  CacheLayout Layout;
  SpecializationStats Stats;
  /// Decision report; filled when Options.CollectExplanation is set.
  std::string Explanation;
};

/// One member of a variant set: the property key plus a full
/// specialization built from the pinned fragment.
struct SpecializedVariant {
  VariantKey Key;
  /// Key rendered against the fragment's parameter names ("generic",
  /// "grain=0").
  std::string Label;
  SpecializationResult Result;
  ConstantFoldStats Fold;
  /// Estimated per-pixel reader savings versus the generic reader:
  /// generic reader weighted cost minus this variant's (Section 4.3's
  /// benefit currency). Zero for the generic variant.
  double PredictedBenefit = 0.0;
};

/// Controls variant-set construction.
struct VariantSetOptions {
  /// Upper bound on emitted variants, including the generic one.
  unsigned MaxVariants = 4;
  /// Section 4.3 byte budget applied across the whole set: whole
  /// low-benefit variants are evicted first; if the generic variant alone
  /// still exceeds the budget, its slots are relabeled (classic §4.3).
  std::optional<unsigned> TotalCacheByteLimit;
  /// When non-empty, these keys are built verbatim (after
  /// canonicalization) instead of running the proposal pass. The generic
  /// key need not be listed; it is always built.
  std::vector<VariantKey> ExplicitKeys;
};

/// Everything specializeVariants produces.
struct VariantSetResult {
  /// Variants[0] is always the generic variant.
  std::vector<SpecializedVariant> Variants;
  /// Whole variants evicted by the cross-variant §4.3 budget.
  unsigned VariantsEvicted = 0;
  /// Sum of surviving variants' per-pixel cache bytes.
  unsigned TotalCacheBytes = 0;

  /// The keys of the surviving variants, in order.
  std::vector<VariantKey> keys() const;
};

/// Renders the human-readable variant table printed by `dspec --explain`:
/// properties, reader size, cache bytes, predicted §4.3 benefit.
std::string formatVariantTable(const VariantSetResult &Set);

/// Drives the full specialization pipeline.
class DataSpecializer {
public:
  DataSpecializer(ASTContext &Ctx, DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  /// Specializes \p F with the parameters named in \p VaryingParams
  /// varying and everything else fixed. \p F must have passed Sema.
  /// Returns nullopt (with diagnostics) on invalid input.
  std::optional<SpecializationResult>
  specialize(Function *F, const std::vector<std::string> &VaryingParams,
             const SpecializerOptions &Options = {});

  /// Polyvariant entry point: builds the generic specialization plus one
  /// specialization per admissible property key (proposed automatically
  /// unless VOptions.ExplicitKeys is set), then applies the cross-variant
  /// §4.3 budget. Pins on a varying parameter remove it from that
  /// variant's varying set — the variant is only admissible when the
  /// request value equals the pin, so treating it as invariant is exact.
  std::optional<VariantSetResult>
  specializeVariants(Function *F,
                     const std::vector<std::string> &VaryingParams,
                     const SpecializerOptions &Options = {},
                     const VariantSetOptions &VOptions = {});

private:
  /// Shared pipeline tail: analyses through splitting on an already
  /// cloned (and possibly pinned/folded) working copy.
  void runPipeline(Function *Work, const std::vector<VarDecl *> &Varying,
                   const SpecializerOptions &Options,
                   SpecializationResult &Result);

  /// Builds one variant from scratch (clone, pin, fold, pipeline).
  std::optional<SpecializedVariant>
  buildVariant(Function *F, const std::vector<std::string> &VaryingParams,
               const SpecializerOptions &Options, const VariantKey &Key);

  ASTContext &Ctx;
  DiagnosticEngine &Diags;
};

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_DATASPECIALIZER_H
