//===- specialize/DataSpecializer.h - Public facade -------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: given a fragment (a dsc
/// function) and an input partition (which parameters vary), produce the
/// cache loader and cache reader functions, the cache layout, and
/// statistics. This realizes the paper's signature
///
///   Fragment x Input-Partition ->
///       (All-Inputs -> Cache x Result)          // cache loader
///     x (Cache x All-Inputs -> Result)          // cache reader
///
/// Pipeline: clone the fragment -> join-normalize (Section 4.1) ->
/// dependence analysis (Section 3.1) -> optional reassociation
/// (Section 4.2, analyses re-run) -> caching analysis (Section 3.2) ->
/// optional cache limiting (Section 4.3) -> splitting (Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_DATASPECIALIZER_H
#define DATASPEC_SPECIALIZE_DATASPECIALIZER_H

#include "lang/ASTContext.h"
#include "specialize/CacheLayout.h"
#include "specialize/SpecializerOptions.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <vector>

namespace dspec {

/// Term/label counters describing one specialization.
struct SpecializationStats {
  unsigned FragmentTerms = 0;   ///< statements + expressions in the fragment
  unsigned NormalizedTerms = 0; ///< terms after phi insertion/reassociation
  unsigned LoaderTerms = 0;     ///< terms in the emitted loader
  unsigned ReaderTerms = 0;     ///< terms in the emitted reader
  unsigned StaticExprs = 0;
  unsigned CachedExprs = 0;
  unsigned DynamicExprs = 0;
  unsigned DynamicStmts = 0;
  unsigned DependentTerms = 0;
  unsigned PhiCopiesInserted = 0;
  unsigned ChainsReassociated = 0;
  unsigned LimiterVictims = 0;
  /// Branching statements (if / while) in the emitted loader and reader.
  /// A zero ReaderBranchStmts reader compiles to straight-line bytecode
  /// and runs on the render engine's pixel-batched tier; a branchy one
  /// falls back to per-pixel threaded dispatch (see docs/ENGINE.md,
  /// "Execution tiers").
  unsigned LoaderBranchStmts = 0;
  unsigned ReaderBranchStmts = 0;
};

/// Everything the specializer produces for one fragment + partition.
struct SpecializationResult {
  /// The preprocessed fragment the split was computed from (after phi
  /// insertion / reassociation). Useful for inspection; behaviorally
  /// equivalent to the input fragment (up to float reassociation).
  Function *NormalizedFragment = nullptr;
  /// The cache loader: evaluates everything, fills the cache, returns the
  /// fragment result.
  Function *Loader = nullptr;
  /// The cache reader: consumes the cache, returns the fragment result.
  Function *Reader = nullptr;
  CacheLayout Layout;
  SpecializationStats Stats;
  /// Decision report; filled when Options.CollectExplanation is set.
  std::string Explanation;
};

/// Drives the full specialization pipeline.
class DataSpecializer {
public:
  DataSpecializer(ASTContext &Ctx, DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  /// Specializes \p F with the parameters named in \p VaryingParams
  /// varying and everything else fixed. \p F must have passed Sema.
  /// Returns nullopt (with diagnostics) on invalid input.
  std::optional<SpecializationResult>
  specialize(Function *F, const std::vector<std::string> &VaryingParams,
             const SpecializerOptions &Options = {});

private:
  ASTContext &Ctx;
  DiagnosticEngine &Diags;
};

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_DATASPECIALIZER_H
