//===- specialize/CacheLimiter.h - Section 4.3 limiting ---------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache size limiting (Section 4.3): while the cache exceeds a byte
/// bound, approximate the cost of *not* caching each frontier term —
/// its weighted execution cost plus the marginal cost of the definitions
/// and guards Rules 4-7 would drag into the reader — relabel the
/// minimum-cost term as dynamic, restart the constraint solver, and check
/// the bound again. The frontier may widen transiently, but every term is
/// relabeled at most twice, so the loop terminates.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_CACHELIMITER_H
#define DATASPEC_SPECIALIZE_CACHELIMITER_H

#include "specialize/CachingAnalysis.h"

namespace dspec {

/// Result of one limiting run.
struct CacheLimitResult {
  unsigned VictimsRelabeled = 0;
  unsigned FinalBytes = 0;
  /// True if the bound was met (it always is: with every term dynamic the
  /// cache is empty).
  bool BoundMet = false;
};

/// Shrinks the cache until it fits \p ByteLimit.
CacheLimitResult limitCacheSize(CachingAnalysis &CA, const CostModel &CM,
                                const ReachingDefs &RD,
                                const StructureInfo &SI, unsigned ByteLimit,
                                bool WeightBySize);

/// Result of one measured-bytes limiting run.
struct WorkingSetLimitResult {
  unsigned VictimsRelabeled = 0;
  /// Final bytes per pixel of hot (structureWeight >= 1) cached terms.
  uint64_t HotBytesPerPixel = 0;
  /// HotBytesPerPixel x ArenaPixels — what a reader frame streams.
  uint64_t WorkingSetBytes = 0;
  /// Always true on return (an empty hot set trivially fits).
  bool BoundMet = false;
};

/// The measured Section 4.3 variant: shrinks the *hot* per-frame working
/// set — hot-bytes-per-pixel x \p ArenaPixels — until it fits
/// \p LlcBytes. A cached term is hot when its structure weight is >= 1
/// (evaluated at least once per frame); cold terms are exempt because
/// cold-slot packing moves them behind the streamed hot stride. Victims
/// are the minimum uncacheCost hot terms, exactly the static limiter's
/// policy, so the two passes compose.
WorkingSetLimitResult limitToWorkingSet(CachingAnalysis &CA,
                                        const CostModel &CM,
                                        const ReachingDefs &RD,
                                        const StructureInfo &SI,
                                        uint64_t LlcBytes,
                                        unsigned ArenaPixels,
                                        bool WeightBySize);

/// The estimated cost of evicting \p Term from the cache (exposed for
/// tests): weighted execution cost plus marginal definition/guard costs.
double uncacheCost(Expr *Term, const CachingAnalysis &CA, const CostModel &CM,
                   const ReachingDefs &RD, const StructureInfo &SI);

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_CACHELIMITER_H
