//===- specialize/CacheLimiter.h - Section 4.3 limiting ---------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache size limiting (Section 4.3): while the cache exceeds a byte
/// bound, approximate the cost of *not* caching each frontier term —
/// its weighted execution cost plus the marginal cost of the definitions
/// and guards Rules 4-7 would drag into the reader — relabel the
/// minimum-cost term as dynamic, restart the constraint solver, and check
/// the bound again. The frontier may widen transiently, but every term is
/// relabeled at most twice, so the loop terminates.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_CACHELIMITER_H
#define DATASPEC_SPECIALIZE_CACHELIMITER_H

#include "specialize/CachingAnalysis.h"

namespace dspec {

/// Result of one limiting run.
struct CacheLimitResult {
  unsigned VictimsRelabeled = 0;
  unsigned FinalBytes = 0;
  /// True if the bound was met (it always is: with every term dynamic the
  /// cache is empty).
  bool BoundMet = false;
};

/// Shrinks the cache until it fits \p ByteLimit.
CacheLimitResult limitCacheSize(CachingAnalysis &CA, const CostModel &CM,
                                const ReachingDefs &RD,
                                const StructureInfo &SI, unsigned ByteLimit,
                                bool WeightBySize);

/// The estimated cost of evicting \p Term from the cache (exposed for
/// tests): weighted execution cost plus marginal definition/guard costs.
double uncacheCost(Expr *Term, const CachingAnalysis &CA, const CostModel &CM,
                   const ReachingDefs &RD, const StructureInfo &SI);

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_CACHELIMITER_H
