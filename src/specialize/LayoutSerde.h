//===- specialize/LayoutSerde.h - CacheLayout binary serde ------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary serialization for CacheLayout, used by the snapshot
/// subsystem. The layout is the authoritative description of the packed
/// cache bytes, so deserialization is strict: slot types must be valid
/// non-void kinds and the stored offsets must equal the offsets the
/// layout computes for those types — a mismatch means the bytes were
/// written by a different packing rule (or corrupted) and the arena
/// payload cannot be trusted.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_LAYOUTSERDE_H
#define DATASPEC_SPECIALIZE_LAYOUTSERDE_H

#include "specialize/CacheLayout.h"
#include "support/ByteStream.h"

#include <string>

namespace dspec {

/// Bump when the encoded shape of CacheLayout (or the packing rule it
/// implies) changes.
constexpr uint32_t kLayoutSerdeVersion = 1;

/// Appends \p Layout to \p Writer.
void serializeLayout(ByteWriter &Writer, const CacheLayout &Layout);

/// Decodes one CacheLayout. Returns false with \p Error set on invalid
/// slot types, offset mismatches, or truncation.
bool deserializeLayout(ByteReader &Reader, CacheLayout &Out,
                       std::string &Error);

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_LAYOUTSERDE_H
