//===- specialize/LayoutSerde.h - CacheLayout binary serde ------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary serialization for CacheLayout, used by the snapshot
/// subsystem. The layout is the authoritative description of the packed
/// cache bytes, so deserialization is strict: slot types must be valid
/// non-void kinds and the stored offsets must equal the offsets the
/// layout computes for those types — a mismatch means the bytes were
/// written by a different packing rule (or corrupted) and the arena
/// payload cannot be trusted.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_LAYOUTSERDE_H
#define DATASPEC_SPECIALIZE_LAYOUTSERDE_H

#include "specialize/CacheLayout.h"
#include "support/ByteStream.h"

#include <string>

namespace dspec {

/// Bump when the encoded shape of CacheLayout (or the packing rule it
/// implies) changes. Version 2 appended a presence flag plus per-slot
/// f32 reuse weights (the hot/cold figures cold-slot packing keys off)
/// after the stored total.
constexpr uint32_t kLayoutSerdeVersion = 2;
/// Oldest encoding deserializeLayout accepts. Version-1 layouts decode
/// with every reuse weight unknown (-1), i.e. all slots hot — exactly
/// the pre-weights behavior.
constexpr uint32_t kMinLayoutSerdeVersion = 1;

/// Appends \p Layout to \p Writer (always at kLayoutSerdeVersion).
void serializeLayout(ByteWriter &Writer, const CacheLayout &Layout);

/// Decodes one CacheLayout encoded at \p Version. Returns false with
/// \p Error set on invalid slot types, offset mismatches, or truncation.
bool deserializeLayout(ByteReader &Reader, CacheLayout &Out,
                       std::string &Error,
                       uint32_t Version = kLayoutSerdeVersion);

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_LAYOUTSERDE_H
