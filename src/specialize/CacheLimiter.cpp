//===- specialize/CacheLimiter.cpp - Section 4.3 limiting ------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "specialize/CacheLimiter.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"

using namespace dspec;

double dspec::uncacheCost(Expr *Term, const CachingAnalysis &CA,
                          const CostModel &CM, const ReachingDefs &RD,
                          const StructureInfo &SI) {
  // Base: what the reader would pay to re-execute the term.
  double Cost = CM.weightedCost(Term);

  // Marginal Rule 4 effect: definitions of referenced variables that are
  // not yet dynamic would join the reader.
  walkExpr(Term, [&](Expr *Sub) {
    auto *Ref = dyn_cast<VarRefExpr>(Sub);
    if (!Ref)
      return;
    for (Stmt *Def : RD.defs(Ref)) {
      if (CA.label(Def) == CacheLabel::CL_Dynamic)
        continue; // marginal cost of an already-dynamic definition is zero
      if (auto *Decl = dyn_cast<DeclStmt>(Def)) {
        if (Decl->init())
          Cost += CM.weightedCost(Decl->init());
      } else if (auto *Assign = dyn_cast<AssignStmt>(Def)) {
        Cost += CM.weightedCost(Assign->value());
      }
    }
  });

  // Marginal Rule 5 effect: guards not yet dynamic would join the reader.
  for (const GuardRecord &G : SI.guards(Term->nodeId()))
    if (CA.label(G.Construct) != CacheLabel::CL_Dynamic)
      Cost += CM.weightedCost(G.Cond);

  return Cost;
}

CacheLimitResult dspec::limitCacheSize(CachingAnalysis &CA,
                                       const CostModel &CM,
                                       const ReachingDefs &RD,
                                       const StructureInfo &SI,
                                       unsigned ByteLimit, bool WeightBySize) {
  CacheLimitResult Result;
  while (true) {
    unsigned Bytes = CA.cacheBytes();
    if (Bytes <= ByteLimit) {
      Result.FinalBytes = Bytes;
      Result.BoundMet = true;
      return Result;
    }

    std::vector<Expr *> Frontier = CA.cachedTerms();
    if (Frontier.empty()) {
      // Cannot happen: zero cached terms means zero bytes.
      Result.FinalBytes = Bytes;
      return Result;
    }

    Expr *Victim = nullptr;
    double VictimCost = 0.0;
    for (Expr *Term : Frontier) {
      double Cost = uncacheCost(Term, CA, CM, RD, SI);
      if (WeightBySize)
        Cost /= static_cast<double>(Term->type().sizeInBytes());
      // Ties resolve to the earlier (lower node id) term; Frontier is in
      // preorder, so strict less-than keeps the first minimum.
      if (!Victim || Cost < VictimCost) {
        Victim = Term;
        VictimCost = Cost;
      }
    }

    CA.forceDynamic(Victim);
    ++Result.VictimsRelabeled;
  }
}

WorkingSetLimitResult dspec::limitToWorkingSet(
    CachingAnalysis &CA, const CostModel &CM, const ReachingDefs &RD,
    const StructureInfo &SI, uint64_t LlcBytes, unsigned ArenaPixels,
    bool WeightBySize) {
  WorkingSetLimitResult Result;
  while (true) {
    std::vector<Expr *> Frontier = CA.cachedTerms();
    uint64_t HotBytes = 0;
    for (Expr *Term : Frontier)
      if (CM.structureWeight(Term) >= 1.0)
        HotBytes += Term->type().sizeInBytes();

    Result.HotBytesPerPixel = HotBytes;
    Result.WorkingSetBytes = HotBytes * ArenaPixels;
    if (Result.WorkingSetBytes <= LlcBytes) {
      Result.BoundMet = true;
      return Result;
    }

    // Same victim policy as the static limiter, restricted to hot terms
    // (evicting a cold term cannot shrink the streamed working set).
    Expr *Victim = nullptr;
    double VictimCost = 0.0;
    for (Expr *Term : Frontier) {
      if (CM.structureWeight(Term) < 1.0)
        continue;
      double Cost = uncacheCost(Term, CA, CM, RD, SI);
      if (WeightBySize)
        Cost /= static_cast<double>(Term->type().sizeInBytes());
      if (!Victim || Cost < VictimCost) {
        Victim = Term;
        VictimCost = Cost;
      }
    }
    if (!Victim) {
      // Cannot happen: no hot terms means a zero working set.
      Result.BoundMet = true;
      return Result;
    }

    CA.forceDynamic(Victim);
    ++Result.VictimsRelabeled;
  }
}
