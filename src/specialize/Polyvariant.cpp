//===- specialize/Polyvariant.cpp - Property-keyed variant sets ------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "specialize/Polyvariant.h"

#include "lang/ASTWalk.h"
#include "lang/Function.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

using namespace dspec;

void VariantKey::canonicalize() {
  std::stable_sort(Pins.begin(), Pins.end(),
                   [](const VariantPin &A, const VariantPin &B) {
                     return A.ParamIndex < B.ParamIndex;
                   });
  Pins.erase(std::unique(Pins.begin(), Pins.end(),
                         [](const VariantPin &A, const VariantPin &B) {
                           return A.ParamIndex == B.ParamIndex;
                         }),
             Pins.end());
}

uint64_t VariantKey::hash() const {
  // Seeded FNV-1a; the seed differs from the service's key hasher so the
  // variant dimension contributes independent bits.
  uint64_t H = 0x8f462907235ab4d9ull;
  for (const VariantPin &Pin : Pins) {
    for (unsigned Shift = 0; Shift < 32; Shift += 8) {
      H ^= static_cast<uint8_t>(Pin.ParamIndex >> Shift);
      H *= 0x100000001b3ull;
    }
    H ^= static_cast<uint8_t>(Pin.Prop);
    H *= 0x100000001b3ull;
  }
  return H;
}

bool VariantKey::admits(const std::vector<float> &ParamValues,
                        unsigned FirstParam) const {
  for (const VariantPin &Pin : Pins) {
    if (Pin.ParamIndex < FirstParam)
      return false;
    size_t Slot = Pin.ParamIndex - FirstParam;
    if (Slot >= ParamValues.size())
      return false;
    // Bit equality, not ==: -0.0f must not admit a Zero pin, because the
    // folded literal 0.0f would flip the sign the generic reader keeps.
    float Want = paramPropValue(Pin.Prop);
    if (std::memcmp(&ParamValues[Slot], &Want, sizeof(float)) != 0)
      return false;
  }
  return true;
}

std::string VariantKey::label(const std::vector<std::string> &ParamNames,
                              unsigned FirstParam) const {
  if (isGeneric())
    return "generic";
  std::string Out;
  for (const VariantPin &Pin : Pins) {
    if (!Out.empty())
      Out += ",";
    size_t Slot = Pin.ParamIndex - FirstParam;
    if (Pin.ParamIndex >= FirstParam && Slot < ParamNames.size()) {
      Out += ParamNames[Slot];
    } else {
      Out += "p";
      Out += std::to_string(Pin.ParamIndex);
    }
    Out += "=";
    Out += paramPropSpelling(Pin.Prop);
  }
  return Out;
}

std::optional<size_t>
dspec::selectVariant(const std::vector<VariantKey> &Keys,
                     const std::vector<float> &ParamValues,
                     unsigned FirstParam) {
  std::optional<size_t> Best;
  unsigned BestSpecificity = 0;
  for (size_t I = 0; I < Keys.size(); ++I) {
    if (!Keys[I].admits(ParamValues, FirstParam))
      continue;
    unsigned S = Keys[I].specificity();
    if (!Best || S > BestSpecificity) {
      Best = I;
      BestSpecificity = S;
    }
  }
  return Best;
}

std::vector<VariantKey>
dspec::proposeVariantKeys(const Function *F,
                          const std::vector<std::string> &VaryingParams,
                          unsigned MaxKeys) {
  std::vector<VariantKey> Keys;
  if (MaxKeys == 0)
    return Keys;

  std::unordered_set<std::string> Varying(VaryingParams.begin(),
                                          VaryingParams.end());

  // Fixed parameters referenced under a branch condition settle that
  // branch when pinned; collect their decls.
  std::unordered_set<const VarDecl *> InConds;
  auto CollectConds = [&](Expr *Cond) {
    walkExpr(Cond, [&](Expr *E) {
      if (auto *Ref = dyn_cast<VarRefExpr>(E))
        if (Ref->decl() && Ref->decl()->isParam())
          InConds.insert(Ref->decl());
    });
  };
  walkStmts(const_cast<Function *>(F)->body(), [&](Stmt *S) {
    if (auto *If = dyn_cast<IfStmt>(S))
      CollectConds(If->cond());
    else if (auto *W = dyn_cast<WhileStmt>(S))
      CollectConds(W->cond());
  });
  walkExprsInStmt(const_cast<Function *>(F)->body(), [&](Expr *E) {
    if (auto *C = dyn_cast<CondExpr>(E))
      walkExpr(C->cond(), [&](Expr *Sub) {
        if (auto *Ref = dyn_cast<VarRefExpr>(Sub))
          if (Ref->decl() && Ref->decl()->isParam())
            InConds.insert(Ref->decl());
      });
  });

  auto Push = [&](unsigned Index, ParamProp Prop) {
    if (Keys.size() >= MaxKeys)
      return;
    VariantKey Key;
    Key.Pins.push_back({Index, Prop});
    Keys.push_back(std::move(Key));
  };

  const auto &Params = F->params();
  // Varying pins first: they turn a varying input invariant, collapsing
  // its entire dependence cone into the cache.
  for (unsigned I = 0; I < Params.size() && Keys.size() < MaxKeys; ++I) {
    if (!Params[I]->type().isFloat() || !Varying.count(Params[I]->name()))
      continue;
    Push(I, ParamProp::PP_Zero);
    Push(I, ParamProp::PP_One);
  }
  // Then branch-settling pins on fixed parameters.
  for (unsigned I = 0; I < Params.size() && Keys.size() < MaxKeys; ++I) {
    if (!Params[I]->type().isFloat() || Varying.count(Params[I]->name()) ||
        !InConds.count(Params[I]))
      continue;
    Push(I, ParamProp::PP_Zero);
    Push(I, ParamProp::PP_One);
  }
  return Keys;
}
