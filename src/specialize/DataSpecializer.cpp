//===- specialize/DataSpecializer.cpp - Public facade ----------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "specialize/DataSpecializer.h"

#include "analysis/CostModel.h"
#include "analysis/DependenceAnalysis.h"
#include "analysis/ReachingDefs.h"
#include "analysis/StructureInfo.h"
#include "lang/ASTCloner.h"
#include "lang/ASTWalk.h"
#include "specialize/CacheLimiter.h"
#include "specialize/CachingAnalysis.h"
#include "specialize/Explain.h"
#include "specialize/Splitter.h"
#include "transform/JoinNormalize.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

using namespace dspec;

std::vector<VariantKey> VariantSetResult::keys() const {
  std::vector<VariantKey> Out;
  Out.reserve(Variants.size());
  for (const SpecializedVariant &V : Variants)
    Out.push_back(V.Key);
  return Out;
}

void DataSpecializer::runPipeline(Function *Work,
                                  const std::vector<VarDecl *> &Varying,
                                  const SpecializerOptions &Options,
                                  SpecializationResult &Result) {
  // Section 4.1 preprocessing.
  if (Options.EnableJoinNormalize)
    Result.Stats.PhiCopiesInserted = joinNormalize(Work, Ctx);

  // Analyses.
  StructureInfo SI;
  ReachingDefs RD;
  DependenceAnalysis Dep;
  SI.build(Work, Ctx.numNodeIds());
  RD.run(Work, Ctx.numNodeIds());
  Dep.run(Work, Varying, Ctx.numNodeIds());

  // Section 4.2: reassociation consults dependence, then everything is
  // recomputed on the rewritten tree.
  if (Options.EnableReassociate) {
    Result.Stats.ChainsReassociated =
        reassociate(Work, Ctx, Dep, Options.Reassoc);
    if (Result.Stats.ChainsReassociated != 0) {
      SI.build(Work, Ctx.numNodeIds());
      RD.run(Work, Ctx.numNodeIds());
      Dep.run(Work, Varying, Ctx.numNodeIds());
    }
  }

  CostModel CM;
  CM.build(Work, SI, Options.Cost, Ctx.numNodeIds());

  // Section 3.2 constraint solving.
  CachingAnalysis CA(Work, Dep, RD, SI, CM, Options, Ctx.numNodeIds());
  CA.solve();

  // Section 4.3 cache limiting: the static per-pixel bound first, then
  // the measured working-set bound (hot bytes x arena pixels vs the LLC)
  // when the caller supplied both figures.
  if (Options.CacheByteLimit) {
    CacheLimitResult Limited =
        limitCacheSize(CA, CM, RD, SI, *Options.CacheByteLimit,
                       Options.WeightVictimBySize);
    Result.Stats.LimiterVictims = Limited.VictimsRelabeled;
  }
  if (Options.LlcByteBound != 0 && Options.ArenaPixels != 0) {
    WorkingSetLimitResult WS =
        limitToWorkingSet(CA, CM, RD, SI, Options.LlcByteBound,
                          Options.ArenaPixels, Options.WeightVictimBySize);
    Result.Stats.WorkingSetVictims = WS.VictimsRelabeled;
    Result.Stats.HotBytesPerPixel = WS.HotBytesPerPixel;
    Result.Stats.WorkingSetBytes = WS.WorkingSetBytes;
  }

  Result.Layout = CA.finalizeLayout();

  // Stamp each slot's reuse weight (the cost model's structure weight of
  // its cached term) so the arena can classify slots hot/cold for
  // cold-slot packing and the measured Section 4.3 accounting.
  for (Expr *Term : CA.cachedTerms()) {
    int Slot = CA.slotOf(Term);
    if (Slot >= 0)
      Result.Layout.setReuseWeight(static_cast<unsigned>(Slot),
                                   static_cast<float>(CM.structureWeight(Term)));
  }

  if (Options.CollectExplanation) {
    Result.Explanation =
        explainSpecialization(Work, Varying, CA, CM, Result.Layout, SI);

    // Hot/cold census of the finalized layout, plus the measured
    // Section 4.3 verdict when a working-set bound was in force.
    unsigned ColdSlots = 0;
    for (const CacheSlot &Slot : Result.Layout.slots())
      if (Slot.isCold())
        ++ColdSlots;
    Result.Explanation +=
        "\narena hot stride: " + std::to_string(Result.Layout.hotBytes()) +
        " of " + std::to_string(Result.Layout.totalBytes()) +
        " bytes per pixel (" + std::to_string(ColdSlots) +
        " cold slot(s) packed behind)\n";
    if (Options.LlcByteBound != 0 && Options.ArenaPixels != 0) {
      Result.Explanation +=
          "working-set limit: " +
          std::to_string(Result.Stats.HotBytesPerPixel) + " hot B/px x " +
          std::to_string(Options.ArenaPixels) + " px = " +
          std::to_string(Result.Stats.WorkingSetBytes) +
          " bytes vs LLC bound " + std::to_string(Options.LlcByteBound) +
          " — fits, " + std::to_string(Result.Stats.WorkingSetVictims) +
          " victim(s) evicted\n";
    }
  }

  // Section 3.3 splitting. The finalized layout drives the byte offsets
  // embedded in the emitted cache accesses.
  Splitter Split(Ctx, CA, Result.Layout);
  Result.Loader = Split.buildLoader(Work, Work->name() + "_load");
  Result.Reader = Split.buildReader(Work, Work->name() + "_read");
  Result.NormalizedFragment = Work;

  Result.Stats.NormalizedTerms = countTerms(Work);
  Result.Stats.LoaderTerms = countTerms(Result.Loader);
  Result.Stats.ReaderTerms = countTerms(Result.Reader);
  Result.Stats.StaticExprs = CA.countExprs(CacheLabel::CL_Static);
  Result.Stats.CachedExprs = CA.countExprs(CacheLabel::CL_Cached);
  Result.Stats.DynamicExprs = CA.countExprs(CacheLabel::CL_Dynamic);
  Result.Stats.DynamicStmts = CA.countDynamicStmts();
  Result.Stats.DependentTerms = Dep.dependentCount();
  Result.Stats.LoaderBranchStmts = Splitter::countBranchStmts(Result.Loader);
  Result.Stats.ReaderBranchStmts = Splitter::countBranchStmts(Result.Reader);
  Splitter::countBranchKinds(Result.Reader,
                             Result.Stats.ReaderMaskableBranches,
                             Result.Stats.ReaderUnmaskableBranches);

  if (Options.CollectExplanation) {
    // Batch eligibility is a property of the emitted split, so it lands
    // after the main (pre-split) decision report. Every effect-free
    // reader starts on the batched tier; the branch-kind split says what
    // happens when lanes diverge (masked arms vs a per-pixel bail).
    const SpecializationStats &St = Result.Stats;
    Result.Explanation +=
        "\nreader control flow: " + std::to_string(St.ReaderBranchStmts) +
        " branch statement(s)";
    if (St.ReaderBranchStmts == 0) {
      Result.Explanation +=
          " — divergence-free, batched tier executes tiles in lockstep\n";
    } else {
      Result.Explanation +=
          " (" + std::to_string(St.ReaderMaskableBranches) +
          " maskable diamond(s), " +
          std::to_string(St.ReaderUnmaskableBranches) +
          " unmaskable loop(s)/return(s)) — batched tier masks divergent "
          "diamonds; divergence at an unmaskable branch re-runs the tile "
          "per-pixel (threaded tier)\n";
    }
  }
}

std::optional<SpecializationResult>
DataSpecializer::specialize(Function *F,
                            const std::vector<std::string> &VaryingParams,
                            const SpecializerOptions &Options) {
  SpecializationResult Result;
  Result.Stats.FragmentTerms = countTerms(F);

  // Clone the fragment so transformations never disturb the caller's AST.
  ASTCloner WorkCloner(Ctx);
  Function *Work = WorkCloner.cloneFunction(F, F->name());

  // Resolve the input partition against the fragment's parameters.
  std::vector<VarDecl *> Varying;
  for (const std::string &Name : VaryingParams) {
    VarDecl *Orig = F->findParam(Name);
    if (!Orig) {
      Diags.error(F->loc(), "input partition names unknown parameter '" +
                                Name + "' of fragment '" + F->name() + "'");
      return std::nullopt;
    }
    Varying.push_back(WorkCloner.lookupDecl(Orig));
  }

  runPipeline(Work, Varying, Options, Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// Polyvariant specialization.
//===----------------------------------------------------------------------===//

/// Weighted per-pixel execution cost of a reader, the currency the §4.3
/// benefit comparison is made in.
static double readerWeightedCost(Function *Reader, const CostOptions &Cost,
                                 ASTContext &Ctx) {
  StructureInfo SI;
  SI.build(Reader, Ctx.numNodeIds());
  CostModel CM;
  CM.build(Reader, SI, Cost, Ctx.numNodeIds());
  double Total = 0.0;
  walkStmts(Reader->body(), [&](Stmt *S) {
    forEachExprOfStmt(S, [&](Expr *E) { Total += CM.weightedCost(E); });
  });
  return Total;
}

std::optional<SpecializedVariant>
DataSpecializer::buildVariant(Function *F,
                              const std::vector<std::string> &VaryingParams,
                              const SpecializerOptions &Options,
                              const VariantKey &Key) {
  SpecializedVariant V;
  V.Key = Key;

  std::vector<std::string> Names;
  Names.reserve(F->params().size());
  for (VarDecl *P : F->params())
    Names.push_back(P->name());
  V.Label = Key.label(Names);

  V.Result.Stats.FragmentTerms = countTerms(F);

  ASTCloner Cloner(Ctx);
  Function *Work = Cloner.cloneFunction(F, F->name());

  std::vector<std::pair<VarDecl *, float>> Pins;
  std::unordered_set<std::string> PinnedNames;
  for (const VariantPin &Pin : Key.Pins) {
    if (Pin.ParamIndex >= F->params().size()) {
      Diags.error(F->loc(), "variant key pins parameter index " +
                                std::to_string(Pin.ParamIndex) +
                                " beyond fragment '" + F->name() + "'");
      return std::nullopt;
    }
    VarDecl *Orig = F->params()[Pin.ParamIndex];
    if (!Orig->type().isFloat()) {
      Diags.error(F->loc(), "variant key pins non-float parameter '" +
                                Orig->name() + "'");
      return std::nullopt;
    }
    Pins.emplace_back(Cloner.lookupDecl(Orig), paramPropValue(Pin.Prop));
    PinnedNames.insert(Orig->name());
  }

  // A pinned varying parameter leaves the variant's varying set: the
  // variant only serves requests where the parameter equals the pin, so
  // within the variant it is a genuine invariant.
  std::vector<VarDecl *> Varying;
  for (const std::string &Name : VaryingParams) {
    if (PinnedNames.count(Name))
      continue;
    VarDecl *Orig = F->findParam(Name);
    if (!Orig) {
      Diags.error(F->loc(), "input partition names unknown parameter '" +
                                Name + "' of fragment '" + F->name() + "'");
      return std::nullopt;
    }
    Varying.push_back(Cloner.lookupDecl(Orig));
  }

  V.Fold = constantFoldWithPins(Work, Ctx, Pins);
  runPipeline(Work, Varying, Options, V.Result);
  return V;
}

std::optional<VariantSetResult>
DataSpecializer::specializeVariants(Function *F,
                                    const std::vector<std::string> &VaryingParams,
                                    const SpecializerOptions &Options,
                                    const VariantSetOptions &VOptions) {
  VariantSetResult Set;

  // The generic variant anchors the set; it is always admissible.
  std::optional<SpecializedVariant> Generic =
      buildVariant(F, VaryingParams, Options, VariantKey());
  if (!Generic)
    return std::nullopt;
  double GenericCost =
      readerWeightedCost(Generic->Result.Reader, Options.Cost, Ctx);
  Set.Variants.push_back(std::move(*Generic));

  // Candidate keys: explicit or proposed.
  std::vector<VariantKey> Keys = VOptions.ExplicitKeys;
  if (Keys.empty() && VOptions.MaxVariants > 1)
    Keys = proposeVariantKeys(F, VaryingParams, VOptions.MaxVariants - 1);

  std::vector<VariantKey> Built;
  for (VariantKey Key : Keys) {
    if (Set.Variants.size() >= std::max(1u, VOptions.MaxVariants) &&
        VOptions.ExplicitKeys.empty())
      break;
    Key.canonicalize();
    if (Key.isGeneric() ||
        std::find(Built.begin(), Built.end(), Key) != Built.end())
      continue;
    std::optional<SpecializedVariant> V =
        buildVariant(F, VaryingParams, Options, Key);
    if (!V)
      return std::nullopt;
    V->PredictedBenefit =
        GenericCost - readerWeightedCost(V->Result.Reader, Options.Cost, Ctx);
    Built.push_back(Key);
    Set.Variants.push_back(std::move(*V));
  }

  // Cross-variant Section 4.3: evict whole low-benefit variants until the
  // set fits the budget; only then relabel slots (of the generic variant,
  // the one that cannot be evicted).
  auto TotalBytes = [&Set]() {
    unsigned Total = 0;
    for (const SpecializedVariant &V : Set.Variants)
      Total += V.Result.Layout.totalBytes();
    return Total;
  };
  if (VOptions.TotalCacheByteLimit) {
    unsigned Limit = *VOptions.TotalCacheByteLimit;
    while (TotalBytes() > Limit && Set.Variants.size() > 1) {
      // Victim: the non-generic variant with the least predicted benefit;
      // ties break toward the larger layout (cheapest benefit per byte).
      size_t Victim = 1;
      for (size_t I = 2; I < Set.Variants.size(); ++I) {
        const SpecializedVariant &A = Set.Variants[I];
        const SpecializedVariant &B = Set.Variants[Victim];
        if (A.PredictedBenefit < B.PredictedBenefit ||
            (A.PredictedBenefit == B.PredictedBenefit &&
             A.Result.Layout.totalBytes() > B.Result.Layout.totalBytes()))
          Victim = I;
      }
      Set.Variants.erase(Set.Variants.begin() +
                         static_cast<ptrdiff_t>(Victim));
      ++Set.VariantsEvicted;
    }
    if (TotalBytes() > Limit) {
      // Only the generic variant remains and it alone busts the budget:
      // fall back to the classic per-slot §4.3 relabeling.
      SpecializerOptions Narrowed = Options;
      Narrowed.CacheByteLimit = Limit;
      std::optional<SpecializedVariant> Replacement =
          buildVariant(F, VaryingParams, Narrowed, VariantKey());
      if (!Replacement)
        return std::nullopt;
      Set.Variants.front() = std::move(*Replacement);
    }
  }

  Set.TotalCacheBytes = TotalBytes();
  return Set;
}

std::string dspec::formatVariantTable(const VariantSetResult &Set) {
  std::string Out;
  Out += "variant table (" + std::to_string(Set.Variants.size()) +
         " variant(s), " + std::to_string(Set.TotalCacheBytes) +
         " cache byte(s) total";
  if (Set.VariantsEvicted)
    Out += ", " + std::to_string(Set.VariantsEvicted) +
           " evicted by the cross-variant budget";
  Out += ")\n";
  Out += "  properties            reader terms  branches m/u  cache B  "
         "tier          predicted benefit\n";
  for (const SpecializedVariant &V : Set.Variants) {
    const SpecializationStats &St = V.Result.Stats;
    // Every effect-free reader starts batched; unmaskable branches mean
    // a divergent tile bails to the threaded tier at runtime.
    const char *TierName = St.ReaderUnmaskableBranches
                               ? "batched/bail"
                               : "batched";
    char Line[160];
    std::snprintf(Line, sizeof(Line),
                  "  %-20s  %12u  %7u %2u/%-2u  %7u  %-12s  %17.1f\n",
                  V.Label.c_str(), St.ReaderTerms, St.ReaderBranchStmts,
                  St.ReaderMaskableBranches, St.ReaderUnmaskableBranches,
                  V.Result.Layout.totalBytes(), TierName,
                  V.PredictedBenefit);
    Out += Line;
  }
  return Out;
}
