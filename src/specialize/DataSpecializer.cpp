//===- specialize/DataSpecializer.cpp - Public facade ----------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "specialize/DataSpecializer.h"

#include "analysis/CostModel.h"
#include "analysis/DependenceAnalysis.h"
#include "analysis/ReachingDefs.h"
#include "analysis/StructureInfo.h"
#include "lang/ASTCloner.h"
#include "lang/ASTWalk.h"
#include "specialize/CacheLimiter.h"
#include "specialize/CachingAnalysis.h"
#include "specialize/Explain.h"
#include "specialize/Splitter.h"
#include "transform/JoinNormalize.h"

using namespace dspec;

std::optional<SpecializationResult>
DataSpecializer::specialize(Function *F,
                            const std::vector<std::string> &VaryingParams,
                            const SpecializerOptions &Options) {
  SpecializationResult Result;
  Result.Stats.FragmentTerms = countTerms(F);

  // Clone the fragment so transformations never disturb the caller's AST.
  ASTCloner WorkCloner(Ctx);
  Function *Work = WorkCloner.cloneFunction(F, F->name());

  // Resolve the input partition against the fragment's parameters.
  std::vector<VarDecl *> Varying;
  for (const std::string &Name : VaryingParams) {
    VarDecl *Orig = F->findParam(Name);
    if (!Orig) {
      Diags.error(F->loc(), "input partition names unknown parameter '" +
                                Name + "' of fragment '" + F->name() + "'");
      return std::nullopt;
    }
    Varying.push_back(WorkCloner.lookupDecl(Orig));
  }

  // Section 4.1 preprocessing.
  if (Options.EnableJoinNormalize)
    Result.Stats.PhiCopiesInserted = joinNormalize(Work, Ctx);

  // Analyses.
  StructureInfo SI;
  ReachingDefs RD;
  DependenceAnalysis Dep;
  SI.build(Work, Ctx.numNodeIds());
  RD.run(Work, Ctx.numNodeIds());
  Dep.run(Work, Varying, Ctx.numNodeIds());

  // Section 4.2: reassociation consults dependence, then everything is
  // recomputed on the rewritten tree.
  if (Options.EnableReassociate) {
    Result.Stats.ChainsReassociated =
        reassociate(Work, Ctx, Dep, Options.Reassoc);
    if (Result.Stats.ChainsReassociated != 0) {
      SI.build(Work, Ctx.numNodeIds());
      RD.run(Work, Ctx.numNodeIds());
      Dep.run(Work, Varying, Ctx.numNodeIds());
    }
  }

  CostModel CM;
  CM.build(Work, SI, Options.Cost, Ctx.numNodeIds());

  // Section 3.2 constraint solving.
  CachingAnalysis CA(Work, Dep, RD, SI, CM, Options, Ctx.numNodeIds());
  CA.solve();

  // Section 4.3 cache limiting.
  if (Options.CacheByteLimit) {
    CacheLimitResult Limited =
        limitCacheSize(CA, CM, RD, SI, *Options.CacheByteLimit,
                       Options.WeightVictimBySize);
    Result.Stats.LimiterVictims = Limited.VictimsRelabeled;
  }

  Result.Layout = CA.finalizeLayout();

  if (Options.CollectExplanation)
    Result.Explanation =
        explainSpecialization(Work, Varying, CA, CM, Result.Layout, SI);

  // Section 3.3 splitting. The finalized layout drives the byte offsets
  // embedded in the emitted cache accesses.
  Splitter Split(Ctx, CA, Result.Layout);
  Result.Loader = Split.buildLoader(Work, F->name() + "_load");
  Result.Reader = Split.buildReader(Work, F->name() + "_read");
  Result.NormalizedFragment = Work;

  Result.Stats.NormalizedTerms = countTerms(Work);
  Result.Stats.LoaderTerms = countTerms(Result.Loader);
  Result.Stats.ReaderTerms = countTerms(Result.Reader);
  Result.Stats.StaticExprs = CA.countExprs(CacheLabel::CL_Static);
  Result.Stats.CachedExprs = CA.countExprs(CacheLabel::CL_Cached);
  Result.Stats.DynamicExprs = CA.countExprs(CacheLabel::CL_Dynamic);
  Result.Stats.DynamicStmts = CA.countDynamicStmts();
  Result.Stats.DependentTerms = Dep.dependentCount();
  Result.Stats.LoaderBranchStmts = Splitter::countBranchStmts(Result.Loader);
  Result.Stats.ReaderBranchStmts = Splitter::countBranchStmts(Result.Reader);

  if (Options.CollectExplanation) {
    // Batch eligibility is a property of the emitted split, so it lands
    // after the main (pre-split) decision report.
    Result.Explanation +=
        "\nreader control flow: " +
        std::to_string(Result.Stats.ReaderBranchStmts) +
        " branch statement(s) — " +
        (Result.Stats.ReaderBranchStmts == 0
             ? "divergence-free, eligible for pixel-batched execution\n"
             : "divergent, executes per-pixel (threaded tier)\n");
  }
  return Result;
}
