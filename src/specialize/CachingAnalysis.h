//===- specialize/CachingAnalysis.h - Section 3.2 solver --------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The caching analysis of Section 3.2: labels every term of a fragment
/// Static, Cached, or Dynamic by solving the consistency constraints of
/// Figure 3 as a demand-driven monotone rewrite system:
///
///   1. Dependent(t)              -> Dynamic(t)
///   2. HasGlobalEffect(t)        -> Dynamic(t)
///   3. UnderDependentControl(t)  -> Dynamic(t)   (strict; speculation opt)
///   4. dynamic variable ref      -> its reaching definitions are Dynamic
///   5. Dynamic(t)                -> guards of t are Dynamic
///   6/7. operands of a Dynamic t -> Cached if possible, else Dynamic
///   8. everything else           -> Static
///
/// An operand is cacheable (Rule 6) when it is not dependent, is
/// single-valued in all enclosing loops, and is not trivial. Bare variable
/// references are special-cased per Section 4.1: with join normalization
/// enabled, only the right-hand side of a phi copy may be cached; without
/// it, any local reference may (the paper's Figure 5 behavior).
///
/// Labels only move up the order static < cached < dynamic, so the solver
/// is restartable: the cache limiter (Section 4.3) relabels victims to
/// dynamic and re-propagates.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_CACHINGANALYSIS_H
#define DATASPEC_SPECIALIZE_CACHINGANALYSIS_H

#include "analysis/DependenceAnalysis.h"
#include "analysis/ReachingDefs.h"
#include "analysis/StructureInfo.h"
#include "analysis/CostModel.h"
#include "specialize/CacheLayout.h"
#include "specialize/SpecializerOptions.h"

#include <deque>
#include <map>
#include <vector>

namespace dspec {

/// Term labels, ordered: a label may only ever increase.
enum class CacheLabel : uint8_t {
  CL_Static = 0,
  CL_Cached = 1,
  CL_Dynamic = 2,
};

/// Runs the Figure 3 constraint solver for one fragment.
class CachingAnalysis {
public:
  CachingAnalysis(Function *F, const DependenceAnalysis &Dep,
                  const ReachingDefs &RD, const StructureInfo &SI,
                  const CostModel &CM, const SpecializerOptions &Opts,
                  uint32_t NumNodeIds);

  /// Establishes rules 1-3 and propagates to a fixed point.
  void solve();

  CacheLabel label(const Expr *E) const { return Labels[E->nodeId()]; }
  CacheLabel label(const Stmt *S) const { return Labels[S->nodeId()]; }

  /// Cached terms (the loader/reader frontier) in preorder.
  std::vector<Expr *> cachedTerms() const;

  /// Total bytes the currently cached terms would occupy.
  unsigned cacheBytes() const;

  /// Relabels a cached term as dynamic and re-propagates (the Section 4.3
  /// restart). The frontier may widen as a result.
  void forceDynamic(Expr *Victim);

  /// Statements that need their declaration present in the reader for
  /// storage even though the declaration itself is static (the reader
  /// emits them without an initializer).
  bool needsBareDecl(const DeclStmt *Decl) const {
    return NeedsStorage[Decl->nodeId()] != 0;
  }

  /// Speculation support: cached terms to hoist in the loader immediately
  /// before dependent guard construct \p Construct (empty unless
  /// AllowSpeculation produced any).
  const std::vector<Expr *> &hoistsBefore(const Stmt *Construct) const;

  /// Assigns slot indices to the cached terms (preorder) and returns the
  /// layout. Call after solving (and limiting) is complete.
  CacheLayout finalizeLayout();

  /// Slot index of a cached term after finalizeLayout (-1 if none).
  int slotOf(const Expr *E) const { return Slots[E->nodeId()]; }

  /// Label counters for stats and tests.
  unsigned countExprs(CacheLabel L) const;
  unsigned countDynamicStmts() const;

private:
  void markDynamicExpr(Expr *E);
  void markDynamicStmt(Stmt *S);
  void makeCachedOrDynamic(Expr *Op);
  bool isCacheable(Expr *Op) const;
  bool isTrivial(Expr *Op) const;
  bool underDependentControl(uint32_t NodeId) const;
  /// The outermost enclosing construct with a dependent predicate, or null.
  Stmt *outermostDependentGuard(uint32_t NodeId) const;
  /// True if every free variable of \p Op has all reaching definitions
  /// outside \p Region (so the loader may hoist Op before Region).
  bool isHoistableBefore(Expr *Op, const Stmt *Region) const;
  void propagate();

  /// True if \p E is the root expression of its owner statement.
  bool isRootExpr(const Expr *E) const;

  Function *F;
  const DependenceAnalysis &Dep;
  const ReachingDefs &RD;
  const StructureInfo &SI;
  const CostModel &CM;
  const SpecializerOptions &Opts;

  std::vector<CacheLabel> Labels;
  std::vector<char> NeedsStorage;
  std::vector<int> Slots;
  std::map<const Stmt *, std::vector<Expr *>> Hoists;

  struct WorkItem {
    bool IsExpr;
    Expr *E;
    Stmt *S;
  };
  std::deque<WorkItem> Worklist;
};

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_CACHINGANALYSIS_H
