//===- specialize/Polyvariant.h - Property-keyed variant sets ---*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Polyvariant specialization in the style of property-based abstraction
/// (Gallagher): instead of one (loader, reader) pair per input partition,
/// emit a *variant set* — the generic reader plus readers specialized on
/// abstract properties of individual parameters (parameter-is-zero,
/// parameter-is-one). A pinned parameter's references fold to literals,
/// branches on it settle, and — when the pinned parameter was a *varying*
/// input — everything that depended on it becomes invariant and collapses
/// into the cache, so the variant reader is a strict subset of the generic
/// one. A variant is *admissible* for a request when every pinned
/// parameter's concrete value bit-equals its pin; on admissible inputs
/// every variant renders bit-identical to the generic reader.
///
/// The Section 4.3 cache-byte budget generalizes across the set: when a
/// total byte limit is given, whole low-benefit variants are evicted
/// before any surviving variant's slots are relabeled.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_POLYVARIANT_H
#define DATASPEC_SPECIALIZE_POLYVARIANT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dspec {

class Function;

/// The abstract properties a parameter can be pinned to. The two constant
/// properties are the ones that settle branches and absorb arithmetic in
/// practice (step/mix/pow thresholds, intensity scales).
enum class ParamProp : uint8_t {
  PP_Zero = 0,
  PP_One = 1,
};

/// The concrete value a property pins its parameter to.
inline float paramPropValue(ParamProp P) {
  return P == ParamProp::PP_Zero ? 0.0f : 1.0f;
}

/// Source-level spelling used in variant labels ("grain=0").
inline const char *paramPropSpelling(ParamProp P) {
  return P == ParamProp::PP_Zero ? "0" : "1";
}

/// One pinned parameter.
struct VariantPin {
  /// Index into the fragment's parameter list.
  uint32_t ParamIndex = 0;
  ParamProp Prop = ParamProp::PP_Zero;
  bool operator==(const VariantPin &RHS) const = default;
};

/// The abstract-property key identifying one variant: a canonical
/// (sorted, duplicate-free) pin list. The empty key is the generic
/// variant, admissible for every request.
struct VariantKey {
  std::vector<VariantPin> Pins;

  bool isGeneric() const { return Pins.empty(); }

  /// Sorts pins by parameter index and drops duplicate indices (first
  /// occurrence wins). Keys must be canonical before comparison/hashing.
  void canonicalize();

  /// Seeded FNV-1a over the canonical pin list. Stable across runs, used
  /// for cache keying and snapshot serde.
  uint64_t hash() const;

  /// True when every pin is satisfied: ParamValues[I] holds the concrete
  /// value of parameter FirstParam + I, and a pin on parameter P requires
  /// ParamValues[P - FirstParam] to bit-equal the pin value. Pins on
  /// parameters below FirstParam (per-pixel inputs) or past the vector
  /// are never admissible.
  bool admits(const std::vector<float> &ParamValues,
              unsigned FirstParam = 0) const;

  /// Number of pins; the most specific admissible variant wins selection.
  unsigned specificity() const { return static_cast<unsigned>(Pins.size()); }

  /// "generic" or "grain=0,ks=1". ParamNames[I] names parameter
  /// FirstParam + I; out-of-range pins render as "p<index>".
  std::string label(const std::vector<std::string> &ParamNames,
                    unsigned FirstParam = 0) const;

  bool operator==(const VariantKey &RHS) const = default;
};

/// Selects the most specific key in \p Keys admissible for
/// \p ParamValues; ties break toward the earlier key. Returns the index
/// into \p Keys, or nullopt when none admits (callers fall back to the
/// generic variant).
std::optional<size_t>
selectVariant(const std::vector<VariantKey> &Keys,
              const std::vector<float> &ParamValues, unsigned FirstParam = 0);

/// Proposes up to \p MaxKeys single-pin variant keys for \p F: zero/one
/// pins on varying float parameters first (pinning a varying input makes
/// its whole dependence cone invariant — the biggest §4.3 win), then
/// zero/one pins on fixed float parameters that appear under a branch
/// condition (branch-settling candidates). \p VaryingParams names the
/// varying parameters, as passed to DataSpecializer::specialize.
std::vector<VariantKey>
proposeVariantKeys(const Function *F,
                   const std::vector<std::string> &VaryingParams,
                   unsigned MaxKeys);

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_POLYVARIANT_H
