//===- specialize/SpecializerOptions.h - Tuning knobs -----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Options controlling the data specializer. Defaults follow the paper's
/// prototype: join normalization on (Section 4.1), reassociation off
/// (Section 4.2, optional), strict Rule 3 (no speculation, Section 7.1
/// lists weakening it as future work), no cache size limit.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SPECIALIZE_SPECIALIZEROPTIONS_H
#define DATASPEC_SPECIALIZE_SPECIALIZEROPTIONS_H

#include "analysis/CostModel.h"
#include "transform/Reassociate.h"

#include <optional>

namespace dspec {

/// Tuning knobs for DataSpecializer.
struct SpecializerOptions {
  /// Section 4.1: insert `v = v` phi copies at join points and restrict
  /// variable-reference caching to phi-copy right-hand sides. When off,
  /// the specializer behaves like the paper's "naive" Figure 5 variant
  /// (bare local references may be cached at each use).
  bool EnableJoinNormalize = true;

  /// Section 4.2: reorder associative chains so independent operands
  /// group together.
  bool EnableReassociate = false;
  ReassociateOptions Reassoc;

  /// Section 7.1 extension: allow caching (and loader-side hoisting of)
  /// terms guarded by dependent predicates, weakening Rule 3. Only terms
  /// whose free variables are defined outside the dependent region are
  /// hoisted.
  bool AllowSpeculation = false;

  /// Section 4.3: when set, the cache limiter relabels minimum-benefit
  /// cached terms as dynamic until the cache fits in this many bytes.
  std::optional<unsigned> CacheByteLimit;

  /// Victim selection: divide the estimated recomputation cost by the
  /// slot size, preferring to evict big, cheap slots first.
  bool WeightVictimBySize = false;

  /// Section 4.3, measured-bytes variant: when both fields are nonzero,
  /// after the static CacheByteLimit pass the limiter keeps evicting
  /// minimum-benefit *hot* terms (structureWeight >= 1; cold slots sit
  /// behind the hot stride under cold packing and do not stream) until
  /// hot-bytes-per-pixel x ArenaPixels fits within LlcByteBound — the
  /// working set a reader frame actually walks, measured against the
  /// detected last-level cache instead of a hand-picked per-pixel budget.
  uint64_t LlcByteBound = 0;
  /// Pixel count of the arena the working-set bound is measured over.
  unsigned ArenaPixels = 0;

  /// Static cost model constants (Section 4.3).
  CostOptions Cost;

  /// When set, SpecializationResult::Explanation carries a human-readable
  /// decision report (slot table, label census, annotated listing).
  bool CollectExplanation = false;
};

} // namespace dspec

#endif // DATASPEC_SPECIALIZE_SPECIALIZEROPTIONS_H
