//===- support/StringUtil.cpp - String helpers ----------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

using namespace dspec;

std::string dspec::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string dspec::formatFloat(float Value) {
  // Find the shortest precision that round-trips through strtof.
  char Buf[64];
  for (int Precision = 1; Precision <= 9; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, Value);
    if (std::strtof(Buf, nullptr) == Value)
      break;
  }
  std::string Out = Buf;
  // Ensure the literal re-lexes as a float, not an int.
  if (Out.find_first_of(".eE") == std::string::npos &&
      Out.find_first_of("nN") == std::string::npos)
    Out += ".0";
  return Out;
}

std::vector<std::string> dspec::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(Text.substr(Start));
      return Out;
    }
    Out.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view dspec::trimString(std::string_view Text) {
  const char *WS = " \t\r\n";
  size_t Begin = Text.find_first_not_of(WS);
  if (Begin == std::string_view::npos)
    return std::string_view();
  size_t Last = Text.find_last_not_of(WS);
  return Text.substr(Begin, Last - Begin + 1);
}

bool dspec::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string dspec::joinStrings(const std::vector<std::string> &Parts,
                               std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
