//===- support/ByteStream.h - Bounds-checked binary serde -------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary writer/reader used by the snapshot subsystem's
/// serde layers. ByteWriter appends into a growable buffer; ByteReader
/// walks a read-only span and *never* reads past it — every read is
/// bounds-checked, and the first failure latches an error message so
/// callers can check once at the end instead of after every field.
/// Corrupt or truncated input therefore produces a diagnostic, not UB.
///
/// All integers are written little-endian regardless of host order;
/// floats are written as their IEEE-754 bit pattern, which round-trips
/// NaN payloads and signed zeros exactly (the snapshot round-trip
/// guarantee is bit-identity).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SUPPORT_BYTESTREAM_H
#define DATASPEC_SUPPORT_BYTESTREAM_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dspec {

/// Appends little-endian fields to a byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t V) { Buffer.push_back(V); }

  void writeU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buffer.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buffer.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeI32(int32_t V) { writeU32(static_cast<uint32_t>(V)); }

  void writeF32(float V) {
    uint32_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    writeU32(Bits);
  }

  /// Length-prefixed UTF-8 string.
  void writeString(const std::string &S) {
    writeU32(static_cast<uint32_t>(S.size()));
    Buffer.insert(Buffer.end(), S.begin(), S.end());
  }

  void writeBytes(const void *Data, size_t Size) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    Buffer.insert(Buffer.end(), P, P + Size);
  }

  /// Appends zero bytes until size() is a multiple of \p Alignment.
  void alignTo(size_t Alignment) {
    while (Buffer.size() % Alignment != 0)
      Buffer.push_back(0);
  }

  size_t size() const { return Buffer.size(); }
  const std::vector<unsigned char> &bytes() const { return Buffer; }
  std::vector<unsigned char> takeBytes() { return std::move(Buffer); }

private:
  std::vector<unsigned char> Buffer;
};

/// Walks a read-only byte span; reads past the end latch an error and
/// return zero values instead of touching out-of-bounds memory.
class ByteReader {
public:
  ByteReader(const unsigned char *Data, size_t Size)
      : Data(Data), Size(Size) {}
  ByteReader(const std::vector<unsigned char> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  bool ok() const { return !Failed; }
  const std::string &error() const { return ErrorMessage; }
  size_t position() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }
  bool atEnd() const { return Failed || Pos == Size; }

  /// Latches a caller-detected semantic error (bad enum value, count out
  /// of range, ...) through the same channel as truncation.
  void fail(const std::string &Message) {
    if (!Failed) {
      Failed = true;
      ErrorMessage = Message;
    }
  }

  uint8_t readU8() {
    if (!require(1))
      return 0;
    return Data[Pos++];
  }

  uint32_t readU32() {
    if (!require(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }

  uint64_t readU64() {
    if (!require(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }

  int32_t readI32() { return static_cast<int32_t>(readU32()); }

  float readF32() {
    uint32_t Bits = readU32();
    float V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  std::string readString() {
    uint32_t Length = readU32();
    if (!require(Length))
      return std::string();
    std::string S(reinterpret_cast<const char *>(Data + Pos), Length);
    Pos += Length;
    return S;
  }

  /// Copies \p Count bytes out; on truncation returns an empty vector.
  std::vector<unsigned char> readBytes(size_t Count) {
    if (!require(Count))
      return {};
    std::vector<unsigned char> Out(Data + Pos, Data + Pos + Count);
    Pos += Count;
    return Out;
  }

private:
  bool require(size_t Count) {
    if (Failed)
      return false;
    if (Count > Size - Pos) {
      fail("unexpected end of data at byte " + std::to_string(Pos) +
           " (need " + std::to_string(Count) + " more, have " +
           std::to_string(Size - Pos) + ")");
      return false;
    }
    return true;
  }

  const unsigned char *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
  std::string ErrorMessage;
};

} // namespace dspec

#endif // DATASPEC_SUPPORT_BYTESTREAM_H
