//===- support/Crc32.h - CRC-32 checksums -----------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) used to checksum
/// snapshot file sections. Table-driven, byte at a time — snapshot files
/// are small and read once per process, so simplicity wins over speed.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SUPPORT_CRC32_H
#define DATASPEC_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>

namespace dspec {

/// CRC-32 of \p Size bytes at \p Data. \p Seed allows incremental use:
/// crc32(B, crc32(A)) == crc32(A ++ B).
uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0);

} // namespace dspec

#endif // DATASPEC_SUPPORT_CRC32_H
