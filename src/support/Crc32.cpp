//===- support/Crc32.cpp - CRC-32 checksums ----------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Crc32.h"

#include <array>

using namespace dspec;

namespace {

/// The reflected IEEE 802.3 polynomial table (same one zlib and PNG use).
std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t N = 0; N < 256; ++N) {
    uint32_t C = N;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[N] = C;
  }
  return Table;
}

} // namespace

uint32_t dspec::crc32(const void *Data, size_t Size, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = makeTable();
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint32_t C = Seed ^ 0xFFFFFFFFu;
  for (size_t I = 0; I < Size; ++I)
    C = Table[(C ^ Bytes[I]) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}
