//===- support/Diagnostics.h - Diagnostic collection ------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Frontend phases report errors and warnings
/// here instead of printing or aborting; clients inspect the engine after
/// each phase. No exceptions are used anywhere in the library.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SUPPORT_DIAGNOSTICS_H
#define DATASPEC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace dspec {

/// Severity of a diagnostic.
enum class DiagKind {
  DK_Error,
  DK_Warning,
  DK_Note,
};

/// A single reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error: 3:14: message".
  std::string str() const;
};

/// Collects diagnostics produced while processing one compilation unit.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::DK_Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::DK_Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::DK_Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Drops all collected diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Concatenates all diagnostics, one per line. Handy in tests and tools.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace dspec

#endif // DATASPEC_SUPPORT_DIAGNOSTICS_H
