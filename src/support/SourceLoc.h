//===- support/SourceLoc.h - Source locations -------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source locations used by the lexer, parser, and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SUPPORT_SOURCELOC_H
#define DATASPEC_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace dspec {

/// A 1-based (line, column) position in a source buffer. A default
/// constructed location is invalid (line 0).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Column == RHS.Column;
  }
  bool operator!=(const SourceLoc &RHS) const { return !(*this == RHS); }

  /// Renders as "line:col" (or "<unknown>" when invalid).
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

} // namespace dspec

#endif // DATASPEC_SUPPORT_SOURCELOC_H
