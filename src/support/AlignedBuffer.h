//===- support/AlignedBuffer.h - Cacheline-aligned byte buffers -*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal over-aligning allocator and the ArenaBuffer alias built on
/// it. CacheArena storage must start on a cacheline: an unaligned base
/// skews any layout comparison (the same logical stride straddles one
/// more line on some runs than others) and defeats the tile-blocked
/// layout's premise that a slot column begins at a line boundary.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SUPPORT_ALIGNEDBUFFER_H
#define DATASPEC_SUPPORT_ALIGNEDBUFFER_H

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace dspec {

/// std::allocator drop-in that over-aligns every allocation to
/// \p Alignment bytes (a power of two, at least alignof(T)).
template <typename T, size_t Alignment> struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) {}

  T *allocate(size_t N) {
    if (N == 0)
      return nullptr;
    // Over-aligned operator new is C++17; size must be a multiple of the
    // alignment for some implementations of aligned allocation, so round.
    size_t Bytes = (N * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    return static_cast<T *>(
        ::operator new(Bytes, std::align_val_t(Alignment)));
  }

  void deallocate(T *P, size_t) {
    ::operator delete(P, std::align_val_t(Alignment));
  }

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator &, const AlignedAllocator &) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &, const AlignedAllocator &) {
    return false;
  }
};

/// Cacheline width every arena allocation is aligned to.
constexpr size_t kArenaAlignBytes = 64;

/// Byte buffer whose data() is 64-byte aligned. The type CacheArena
/// stores and snapshots move in and out of (so a canonical arena image
/// can be adopted without a copy when the layout is identity).
using ArenaBuffer =
    std::vector<unsigned char, AlignedAllocator<unsigned char, kArenaAlignBytes>>;

} // namespace dspec

#endif // DATASPEC_SUPPORT_ALIGNEDBUFFER_H
