//===- support/Diagnostics.cpp - Diagnostic collection --------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace dspec;

static const char *kindString(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::DK_Error:
    return "error";
  case DiagKind::DK_Warning:
    return "warning";
  case DiagKind::DK_Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = kindString(Kind);
  Out += ": ";
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
