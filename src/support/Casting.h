//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight reimplementation of the LLVM casting templates (`isa<>`,
/// `cast<>`, `dyn_cast<>`). A class hierarchy opts in by providing a static
/// `classof(const Base *)` predicate on each derived class, typically
/// implemented against a `Kind` discriminator stored in the base.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SUPPORT_CASTING_H
#define DATASPEC_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace dspec {

/// Returns true if \p Val is an instance of \p To (or of any of the listed
/// alternatives). \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returning false).
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagating it).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace dspec

#endif // DATASPEC_SUPPORT_CASTING_H
