//===- support/Arena.h - Arena allocation with destructors ------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena that also runs destructors for non-trivially
/// destructible objects when the arena itself is destroyed. The AST context
/// allocates all nodes here, so nodes are plain raw pointers with arena
/// lifetime — no per-node ownership bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SUPPORT_ARENA_H
#define DATASPEC_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace dspec {

/// Bump-pointer arena. Allocations are served from geometrically growing
/// slabs; objects registered for destruction are destroyed in reverse
/// allocation order when the arena dies.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena() { reset(); }

  /// Constructs a \p T in the arena and returns it. The object lives until
  /// the arena is destroyed or reset.
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(CtorArgs)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Raw aligned allocation.
  void *allocate(size_t Size, size_t Align) {
    uintptr_t Cur = reinterpret_cast<uintptr_t>(Next);
    uintptr_t Aligned = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      newSlab(Size + Align);
      Cur = reinterpret_cast<uintptr_t>(Next);
      Aligned = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Next = reinterpret_cast<char *>(Aligned + Size);
    TotalAllocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Destroys every registered object (reverse order) and frees all slabs.
  void reset() {
    for (auto It = Dtors.rbegin(); It != Dtors.rend(); ++It)
      It->Destroy(It->Object);
    Dtors.clear();
    Slabs.clear();
    Next = End = nullptr;
    TotalAllocated = 0;
  }

  /// Total bytes handed out (excluding alignment padding and slab slack).
  size_t bytesAllocated() const { return TotalAllocated; }

  /// Number of slabs currently held.
  size_t slabCount() const { return Slabs.size(); }

private:
  struct DtorEntry {
    void *Object;
    void (*Destroy)(void *);
  };

  void newSlab(size_t MinSize) {
    size_t Size = SlabSize;
    while (Size < MinSize)
      Size *= 2;
    Slabs.push_back(std::make_unique<char[]>(Size));
    Next = Slabs.back().get();
    End = Next + Size;
    SlabSize = Size * 2;
  }

  static constexpr size_t InitialSlabSize = 4096;

  std::vector<std::unique_ptr<char[]>> Slabs;
  std::vector<DtorEntry> Dtors;
  char *Next = nullptr;
  char *End = nullptr;
  size_t SlabSize = InitialSlabSize;
  size_t TotalAllocated = 0;
};

} // namespace dspec

#endif // DATASPEC_SUPPORT_ARENA_H
