//===- support/StringUtil.h - String helpers --------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string formatting and splitting helpers shared across the project.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_SUPPORT_STRINGUTIL_H
#define DATASPEC_SUPPORT_STRINGUTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace dspec {

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a float the way the pretty-printer wants it: shortest form that
/// round-trips, always containing a '.' or exponent so it re-lexes as float.
std::string formatFloat(float Value);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view Text);

/// True if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Joins \p Parts with \p Sep.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

} // namespace dspec

#endif // DATASPEC_SUPPORT_STRINGUTIL_H
