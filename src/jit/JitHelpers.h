//===- jit/JitHelpers.h - Fragment helper ABI (internal) --------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal to src/jit/: the per-opcode helper functions stitched code
/// calls. The contract is part of the fragment ABI (docs/ENGINE.md):
///
///   extern "C" Value *dspec_jit_<op>(JitFrame *F, Value *SP,
///                                    const ExecInstr *In);
///
/// SP is one past the top of the operand stack. A helper performs exactly
/// its opcode's interpreter semantics (the bodies call vm/InterpOps.h)
/// and returns the new SP — or null after filling F->Result with the trap
/// (only the opcodes listed as trap-capable in the compiler may return
/// null; the stitcher omits the null check for the rest). Conditional
/// branches communicate through F->Cond: 1 means take the patched jump.
/// extern "C" pins the symbol names and the SysV integer-argument
/// registers (rdi/rsi/rdx) the fragments hard-code.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_JIT_JITHELPERS_H
#define DATASPEC_JIT_JITHELPERS_H

#include "jit/Jit.h"

namespace dspec {
namespace jit {

extern "C" {
#define DSPEC_JIT_HELPER(NAME)                                                 \
  Value *dspec_jit_##NAME(JitFrame *F, Value *SP, const ExecInstr *In)
DSPEC_JIT_HELPER(convert);
DSPEC_JIT_HELPER(neg);
DSPEC_JIT_HELPER(not_);
DSPEC_JIT_HELPER(add);
DSPEC_JIT_HELPER(sub);
DSPEC_JIT_HELPER(mul);
DSPEC_JIT_HELPER(div);
DSPEC_JIT_HELPER(mod);
DSPEC_JIT_HELPER(lt);
DSPEC_JIT_HELPER(le);
DSPEC_JIT_HELPER(gt);
DSPEC_JIT_HELPER(ge);
DSPEC_JIT_HELPER(eq);
DSPEC_JIT_HELPER(ne);
DSPEC_JIT_HELPER(and_);
DSPEC_JIT_HELPER(or_);
DSPEC_JIT_HELPER(select);
DSPEC_JIT_HELPER(jump_if_false);
DSPEC_JIT_HELPER(call_builtin);
DSPEC_JIT_HELPER(member);
DSPEC_JIT_HELPER(cache_load);
DSPEC_JIT_HELPER(cache_store);
DSPEC_JIT_HELPER(return_);
DSPEC_JIT_HELPER(return_void);
DSPEC_JIT_HELPER(const_add);
DSPEC_JIT_HELPER(const_mul);
DSPEC_JIT_HELPER(load_call);
DSPEC_JIT_HELPER(cache_load_add);
DSPEC_JIT_HELPER(cache_load_mul);
DSPEC_JIT_HELPER(cache_load_store);
DSPEC_JIT_HELPER(cache_load_ret);
DSPEC_JIT_HELPER(lt_jf);
DSPEC_JIT_HELPER(le_jf);
DSPEC_JIT_HELPER(gt_jf);
DSPEC_JIT_HELPER(ge_jf);
#undef DSPEC_JIT_HELPER

/// The budget stub's trap filler: the fragment-level budget check jumped
/// here after spilling r13 into F->Executed.
void dspec_jit_budget_trap(JitFrame *F);
}

} // namespace jit
} // namespace dspec

#endif // DATASPEC_JIT_JITHELPERS_H
