//===- jit/CodeBuffer.cpp - W^X executable memory ----------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeBuffer.h"
#include "jit/Jit.h"

#include <atomic>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define DSPEC_JIT_HAVE_MMAP 1
#else
#define DSPEC_JIT_HAVE_MMAP 0
#endif

using namespace dspec;
using namespace dspec::jit;

namespace {
/// Test hook (jit::testForceAllocFailure): simulates mmap failure so the
/// fallback-to-threaded path can be pinned without exhausting memory.
std::atomic<bool> ForceAllocFailure{false};
} // namespace

void dspec::jit::testForceAllocFailure(bool Fail) {
  ForceAllocFailure.store(Fail, std::memory_order_relaxed);
}

bool CodeBuffer::allocate(const uint8_t *Blob, size_t Len, std::string *Error) {
  release();
  if (Len == 0) {
    if (Error)
      *Error = "empty code blob";
    return false;
  }
  if (ForceAllocFailure.load(std::memory_order_relaxed)) {
    if (Error)
      *Error = "forced allocation failure (test hook)";
    return false;
  }
#if DSPEC_JIT_HAVE_MMAP
  const size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t Rounded = (Len + Page - 1) / Page * Page;
  void *P = ::mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED) {
    if (Error)
      *Error = "mmap failed for " + std::to_string(Rounded) + " bytes";
    return false;
  }
  std::memcpy(P, Blob, Len);
  if (::mprotect(P, Rounded, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(P, Rounded);
    if (Error)
      *Error = "mprotect(PROT_READ|PROT_EXEC) failed";
    return false;
  }
  // x86 keeps instruction fetch coherent with stores; this is a no-op
  // there and the required flush on ARM and friends.
  __builtin___clear_cache(static_cast<char *>(P),
                          static_cast<char *>(P) + Len);
  Mem = P;
  MapBytes = Rounded;
  CodeBytes = Len;
  return true;
#else
  if (Error)
    *Error = "no executable-memory support on this platform";
  return false;
#endif
}

void CodeBuffer::release() {
#if DSPEC_JIT_HAVE_MMAP
  if (Mem)
    ::munmap(Mem, MapBytes);
#endif
  Mem = nullptr;
  MapBytes = 0;
  CodeBytes = 0;
}
