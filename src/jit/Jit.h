//===- jit/Jit.h - Copy-and-patch template JIT ------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution tier: a copy-and-patch template JIT that stitches
/// a verified, fused ExecChunk into executable memory. Every decoded
/// instruction becomes a short position-independent x86-64 fragment; the
/// hot data movers (const push, local load/store, pop, jumps and the
/// load/load, store/load superinstructions) are fully inlined machine
/// code, while the value-semantics opcodes call pre-compiled per-opcode
/// C++ helpers that share vm/InterpOps.h with the interpreter tiers —
/// which is what keeps framebuffers, arenas, and trap messages
/// bit-identical to the switch tier.
///
/// Fragments are stitched against a fixed register contract
/// (docs/ENGINE.md, "Native tier"):
///
///   rbx   JitFrame*                 r14   instruction budget
///   r12   operand stack top         r15   locals base
///   r13   instructions executed
///
/// Immediate holes patched at stitch time: constant-pool Value pointers
/// and ExecInstr addresses (imm64), helper entry points (imm64), and
/// in-buffer jump targets / shared epilogue stubs (rel32). The blob is
/// fully position-independent, so it is emitted into a plain vector and
/// copied once into a W^X CodeBuffer.
///
/// Deopt policy: compileChunk returns null for invalid chunks, opcodes a
/// fragment cannot express, unsupported platforms (non-x86-64 or
/// DSPEC_FORCE_NO_JIT builds), and mmap/mprotect failure; the engine
/// falls back to the threaded tier. Failures are memoized per chunk
/// fingerprint so a dead path is probed once, not once per frame.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_JIT_JIT_H
#define DATASPEC_JIT_JIT_H

#include "jit/CodeBuffer.h"
#include "vm/ExecChunk.h"

#include <cstdint>
#include <memory>

namespace dspec {

class VM;
struct Chunk;
struct ExecResult;

namespace jit {

/// The mutable execution state one stitched chunk runs against. The
/// compiler hard-codes these byte offsets into fragment encodings
/// (static_asserts in JitCompiler.cpp pin them), so the field order is
/// ABI: append only.
struct JitFrame {
  Value *Stack = nullptr;          ///< +0   operand stack base
  Value *Locals = nullptr;         ///< +8   locals base (params first)
  uint64_t Executed = 0;           ///< +16  instructions retired (r13 spill)
  uint64_t Budget = 0;             ///< +24  VM::InstructionBudget
  VM *Machine = nullptr;           ///< +32  for builtin calls
  const ExecChunk *Chunk = nullptr;///< +40  for trap messages
  ExecResult *Result = nullptr;    ///< +48  filled on trap / return
  unsigned char *CacheBytes = nullptr; ///< +56 packed cache (null = none)
  uint32_t CacheSize = 0;          ///< +64  cache view size in bytes
  uint32_t Cond = 0;               ///< +68  1 = conditional branch taken
};

/// One chunk compiled to native code. Immutable after compileChunk
/// returns it; shared (and executed concurrently) across engine worker
/// threads, UnitCache hits, and snapshot warm starts. Owns the decoded
/// ExecChunk the stitched imm64 holes point into, so the code can never
/// outlive its constants.
struct JitProgram {
  using EntryFn = uint64_t (*)(JitFrame *);

  ExecChunk Exec;
  CodeBuffer Code;
  EntryFn Entry = nullptr;
  double CompileSeconds = 0.0;
  /// chunkFingerprint of the source Chunk at stitch time; JitSlot uses it
  /// to detect source mutation and recompile.
  uint64_t Fingerprint = 0;

  const ExecChunk &chunk() const { return Exec; }
  EntryFn entry() const { return Entry; }
  size_t codeBytes() const { return Code.size(); }
  double compileSeconds() const { return CompileSeconds; }
};

/// True when this build and platform can stitch native code at all
/// (x86-64, not DSPEC_FORCE_NO_JIT). Runtime mmap failures still deopt
/// per chunk even when this is true.
bool available();

/// Content fingerprint of a Chunk (code, constants, frame and cache
/// shape). Keys the JitSlot cache: a chunk mutated after compilation
/// hashes differently and is re-stitched instead of running stale code.
uint64_t chunkFingerprint(const Chunk &C);

/// Decodes, fuses, and stitches \p C. Null on any deopt condition (see
/// file header); never throws. The returned program is self-contained.
std::shared_ptr<const JitProgram> compileChunk(const Chunk &C);

/// compileChunk through the chunk's JitSlot: returns the cached program
/// when the fingerprint still matches (UnitCache / snapshot warm starts
/// hit this without re-stitching), compiles and caches otherwise.
/// \p StitchedNow, when non-null, reports whether this call compiled
/// (false on a slot hit or deopt). Null when the chunk cannot run native.
std::shared_ptr<const JitProgram> ensureCompiled(const Chunk &C,
                                                 bool *StitchedNow = nullptr);

/// Process-wide stitching counters for /statsz and --explain.
struct JitStatsSnapshot {
  uint64_t Compiles = 0;   ///< programs successfully stitched
  uint64_t CodeBytes = 0;  ///< total executable bytes emitted
  uint64_t CompileNanos = 0;
  uint64_t Failures = 0;   ///< deopts at compile time (incl. mmap failure)
};
JitStatsSnapshot stats();

/// Test hook: forces every subsequent CodeBuffer allocation to fail as if
/// mmap/mprotect had, exercising the fallback-to-threaded path.
void testForceAllocFailure(bool Fail);

} // namespace jit
} // namespace dspec

#endif // DATASPEC_JIT_JIT_H
