//===- jit/JitCompiler.cpp - x86-64 fragment stitcher ------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The compile half of the native tier: stitches one verified, fused
// ExecChunk into a position-independent x86-64 blob.
//
// Register contract (pinned by the prologue; docs/ENGINE.md):
//
//   rbx  JitFrame*            callee-saved, live across helper calls
//   r12  operand stack top    Value*, one past the top
//   r13  instructions retired mirrors the threaded tier's Executed
//   r14  instruction budget   VM::InstructionBudget
//   r15  locals base          Value*
//
// Every instruction's fragment starts with the budget check
// (inc r13; cmp r13, r14; ja BUDGET) so retired counts and the budget
// trap point are identical to the threaded tier. The hot data movers
// (Const, LoadLocal, StoreLocal, Pop, Jump, LoadLoad, StoreLoad) are
// inlined as raw moves — a Value is three qwords — and the arithmetic /
// compare / cache-load workhorses get inline fast paths for the kind
// combinations the batched tier's arithRows also fast-paths (same-kind
// float, vector, and int operands; statically-typed cache slots), with a
// short-jump fallback into the generic helper for everything else. The
// fast paths mirror FastInterp's in-place component updates, which the
// exec-tier differential tests already pin as bit-identical. Everything
// else with value semantics calls its per-opcode helper (JitRuntime.cpp):
//
//   mov [rbx+16], r13          ; spill Executed for trap reporting
//   mov rdi, rbx               ; F
//   mov rsi, r12               ; SP
//   movabs rdx, <&ExecInstr>   ; imm64 hole: this instruction
//   movabs rax, <helper>       ; imm64 hole: mmap'd code may sit >2GB
//   call rax                   ;   from the static helpers, so no rel32
//   test rax, rax ; je TRAP    ; trap-capable opcodes only
//   mov r12, rax               ; new SP
//
// Conditional branches read the helper's verdict from F->Cond
// (cmp byte [rbx+68], 0; jne <target>). Jump targets, the shared DONE /
// TRAP / BUDGET epilogues, and every other in-buffer displacement are
// rel32 holes recorded as fixups and patched after emission — two-pass
// stitching, so the blob needs no relocation once copied into the
// CodeBuffer.
//
// Five callee-saved pushes keep rsp 16-byte aligned at every call site
// (entry rsp ≡ 8 mod 16, minus 40 bytes of pushes).
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"
#include "jit/JitHelpers.h"
#include "vm/Bytecode.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <vector>

using namespace dspec;
using namespace dspec::jit;

// The emitter exists only where it can run: x86-64, not pinned off by the
// DSPEC_FORCE_NO_JIT build. Everything else (helpers, runJit, stats)
// stays platform-neutral.
#if defined(__x86_64__) && !defined(DSPEC_FORCE_NO_JIT)
#define DSPEC_JIT_ENABLED 1
#else
#define DSPEC_JIT_ENABLED 0
#endif

namespace {

std::atomic<uint64_t> StatCompiles{0};
std::atomic<uint64_t> StatCodeBytes{0};
std::atomic<uint64_t> StatCompileNanos{0};
std::atomic<uint64_t> StatFailures{0};

uint64_t fnv1a(const void *Data, size_t Len, uint64_t H) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

uint64_t dspec::jit::chunkFingerprint(const Chunk &C) {
  // Field-by-field hashing: Instr and Value contain padding bytes whose
  // contents are unspecified, so raw struct bytes would make identical
  // chunks hash differently.
  uint64_t H = 1469598103934665603ull;
  auto Mix32 = [&H](uint32_t V) { H = fnv1a(&V, sizeof(V), H); };
  auto Mix8 = [&H](uint8_t V) { H = fnv1a(&V, sizeof(V), H); };
  H = fnv1a(C.Name.data(), C.Name.size(), H);
  Mix32(static_cast<uint32_t>(C.Name.size()));
  Mix32(C.NumParams);
  Mix32(C.CacheSlotCount);
  Mix32(C.CacheBytes);
  Mix8(static_cast<uint8_t>(C.ReturnType.kind()));
  Mix32(static_cast<uint32_t>(C.LocalTypes.size()));
  for (TypeKind K : C.LocalTypes)
    Mix8(static_cast<uint8_t>(K));
  Mix32(static_cast<uint32_t>(C.Code.size()));
  for (const Instr &In : C.Code) {
    Mix8(static_cast<uint8_t>(In.Op));
    Mix32(static_cast<uint32_t>(In.A));
    Mix32(static_cast<uint32_t>(In.B));
    Mix32(static_cast<uint32_t>(In.C));
  }
  Mix32(static_cast<uint32_t>(C.Constants.size()));
  for (const Value &K : C.Constants) {
    Mix8(static_cast<uint8_t>(K.Kind));
    uint32_t Bits;
    for (float F : K.F) {
      std::memcpy(&Bits, &F, sizeof(Bits));
      Mix32(Bits);
    }
    Mix32(static_cast<uint32_t>(K.I));
  }
  return H;
}

bool dspec::jit::available() {
#if DSPEC_JIT_ENABLED
  return true;
#else
  return false;
#endif
}

JitStatsSnapshot dspec::jit::stats() {
  JitStatsSnapshot S;
  S.Compiles = StatCompiles.load(std::memory_order_relaxed);
  S.CodeBytes = StatCodeBytes.load(std::memory_order_relaxed);
  S.CompileNanos = StatCompileNanos.load(std::memory_order_relaxed);
  S.Failures = StatFailures.load(std::memory_order_relaxed);
  return S;
}

#if DSPEC_JIT_ENABLED

// The fragment encodings below hard-code these layouts.
static_assert(offsetof(JitFrame, Stack) == 0, "fragment ABI");
static_assert(offsetof(JitFrame, Locals) == 8, "fragment ABI");
static_assert(offsetof(JitFrame, Executed) == 16, "fragment ABI");
static_assert(offsetof(JitFrame, Budget) == 24, "fragment ABI");
static_assert(offsetof(JitFrame, Machine) == 32, "fragment ABI");
static_assert(offsetof(JitFrame, Chunk) == 40, "fragment ABI");
static_assert(offsetof(JitFrame, Result) == 48, "fragment ABI");
static_assert(offsetof(JitFrame, CacheBytes) == 56, "fragment ABI");
static_assert(offsetof(JitFrame, CacheSize) == 64, "fragment ABI");
static_assert(offsetof(JitFrame, Cond) == 68, "fragment ABI");
static_assert(sizeof(Value) == 24, "inline fragments copy three qwords");
static_assert(offsetof(Value, Kind) == 0 && offsetof(Value, F) == 4 &&
                  offsetof(Value, I) == 20,
              "inline fragments assume this Value layout");

namespace {

/// rel32 fixup targets: a decoded instruction index, or one of the
/// shared epilogue stubs.
constexpr int32_t kTargetDone = -1;
constexpr int32_t kTargetTrap = -2;
constexpr int32_t kTargetBudget = -3;

struct Fixup {
  size_t Pos;     ///< offset of the 4 rel32 bytes in the blob
  int32_t Target; ///< instruction index, or a kTarget* sentinel
};

template <typename Fn> uint64_t fnAddr(Fn *F) {
  return reinterpret_cast<uint64_t>(reinterpret_cast<void *>(F));
}

/// Minimal emitter: appends encodings to a plain vector and records
/// rel32 holes for the post-pass patcher.
struct Asm {
  std::vector<uint8_t> Code;
  std::vector<Fixup> Fixups;
  /// Set when a bind8 target lands outside rel8 range — the chunk deopts
  /// instead of emitting a wrong displacement. Fast-path fragments are
  /// well under 127 bytes, so this only fires on an emitter bug.
  bool Rel8Overflow = false;

  void byte(uint8_t B) { Code.push_back(B); }
  void bytes(std::initializer_list<uint8_t> Bs) {
    Code.insert(Code.end(), Bs.begin(), Bs.end());
  }
  void imm32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void imm64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void rel32To(int32_t Target) {
    Fixups.push_back({Code.size(), Target});
    imm32(0);
  }
  size_t here() const { return Code.size(); }

  /// inc r13; cmp r13, r14; ja BUDGET — every instruction is billed
  /// before it runs, so counts and the budget trap point match the
  /// threaded tier exactly.
  void budget() {
    bytes({0x49, 0xFF, 0xC5});
    bytes({0x4D, 0x39, 0xF5});
    bytes({0x0F, 0x87});
    rel32To(kTargetBudget);
  }

  /// mov [rbx+16], r13 — publish Executed into the frame.
  void spillExecuted() { bytes({0x4C, 0x89, 0x6B, 0x10}); }

  void helperCall(uint64_t Fn, const ExecInstr *In, bool CanTrap) {
    spillExecuted();
    bytes({0x48, 0x89, 0xDF}); // mov rdi, rbx
    bytes({0x4C, 0x89, 0xE6}); // mov rsi, r12
    bytes({0x48, 0xBA});       // movabs rdx, &In
    imm64(reinterpret_cast<uint64_t>(In));
    bytes({0x48, 0xB8});       // movabs rax, helper
    imm64(Fn);
    bytes({0xFF, 0xD0});       // call rax
    if (CanTrap) {
      bytes({0x48, 0x85, 0xC0}); // test rax, rax
      bytes({0x0F, 0x84});       // je TRAP
      rel32To(kTargetTrap);
    }
    bytes({0x49, 0x89, 0xC4}); // mov r12, rax (new SP)
  }

  /// mov {rcx,rdx,rax}, Locals[Slot] — one Value into scratch regs.
  void loadLocalToRegs(int32_t Slot) {
    const uint32_t D = static_cast<uint32_t>(Slot) * sizeof(Value);
    bytes({0x49, 0x8B, 0x8F});
    imm32(D);
    bytes({0x49, 0x8B, 0x97});
    imm32(D + 8);
    bytes({0x49, 0x8B, 0x87});
    imm32(D + 16);
  }
  void storeRegsToLocal(int32_t Slot) {
    const uint32_t D = static_cast<uint32_t>(Slot) * sizeof(Value);
    bytes({0x49, 0x89, 0x8F});
    imm32(D);
    bytes({0x49, 0x89, 0x97});
    imm32(D + 8);
    bytes({0x49, 0x89, 0x87});
    imm32(D + 16);
  }
  /// mov [r12+Disp .. +16], {rcx,rdx,rax}; Disp relative to the stack
  /// top, disp8 range.
  void storeRegsToStack(int8_t Disp) {
    bytes({0x49, 0x89, 0x4C, 0x24, static_cast<uint8_t>(Disp)});
    bytes({0x49, 0x89, 0x54, 0x24, static_cast<uint8_t>(Disp + 8)});
    bytes({0x49, 0x89, 0x44, 0x24, static_cast<uint8_t>(Disp + 16)});
  }
  void loadStackToRegs(int8_t Disp) {
    bytes({0x49, 0x8B, 0x4C, 0x24, static_cast<uint8_t>(Disp)});
    bytes({0x49, 0x8B, 0x54, 0x24, static_cast<uint8_t>(Disp + 8)});
    bytes({0x49, 0x8B, 0x44, 0x24, static_cast<uint8_t>(Disp + 16)});
  }
  void addSP(int8_t N) { bytes({0x49, 0x83, 0xC4, static_cast<uint8_t>(N)}); }
  void subSP(int8_t N) { bytes({0x49, 0x83, 0xEC, static_cast<uint8_t>(N)}); }

  /// movabs rax, &K; copy *K to the stack top; push.
  void inlineConst(const Value *K) {
    bytes({0x48, 0xB8});
    imm64(reinterpret_cast<uint64_t>(K));
    bytes({0x48, 0x8B, 0x08});       // mov rcx, [rax]
    bytes({0x48, 0x8B, 0x50, 0x08}); // mov rdx, [rax+8]
    bytes({0x48, 0x8B, 0x40, 0x10}); // mov rax, [rax+16]
    storeRegsToStack(0);
    addSP(sizeof(Value));
  }

  /// Forward-only rel8 jumps inside one instruction's fragment: emit the
  /// opcode with a zero displacement, then bind8 at the landing point.
  size_t jmp8() {
    bytes({0xEB, 0x00});
    return Code.size() - 1;
  }
  /// \p Cc is the x86 condition nibble (4 = e, 5 = ne, 2 = b, 6 = be).
  size_t jcc8(uint8_t Cc) {
    bytes({static_cast<uint8_t>(0x70 | Cc), 0x00});
    return Code.size() - 1;
  }
  void bind8(size_t Pos) {
    const int64_t Rel = static_cast<int64_t>(Code.size()) -
                        (static_cast<int64_t>(Pos) + 1);
    if (Rel < -128 || Rel > 127) {
      Rel8Overflow = true;
      return;
    }
    Code[Pos] = static_cast<uint8_t>(Rel);
  }

  /// cmp byte [rbx+68], 0; jne Target — branch on the helper's F->Cond
  /// verdict (1 = take the jump).
  void condJump(int32_t Target) {
    bytes({0x80, 0x7B, 0x44, 0x00});
    bytes({0x0F, 0x85});
    rel32To(Target);
  }

  /// pop r15/r14/r13/r12/rbx; ret.
  void popsAndRet() {
    bytes({0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D, 0x41, 0x5C, 0x5B, 0xC3});
  }
};

//===----------------------------------------------------------------------===//
// Inline fast paths
//
// These mirror vm/FastInterp.cpp's arithRows/arithRowConst fast paths —
// in-place component updates on same-kind operands, full re-boxing where
// the interpreter re-boxes — and bail to the generic helper (a short
// forward jne) for every kind combination they do not cover, so the
// observable Value bytes match the helper tier exactly. Packed (4-lane)
// SSE ops are safe on vec2/vec3 because unused lanes are zero by
// construction everywhere Values are built, and 0 op 0 == 0 for add, sub
// and mul.
//
// Stack addressing: r12 is one past the top, a Value is 24 bytes, so the
// top's fields sit at [r12-24..-1] (Kind, F0 at -20, I at -4) and the
// second operand's at [r12-48..-25].
//===----------------------------------------------------------------------===//

constexpr uint8_t kKindBool = static_cast<uint8_t>(TypeKind::TK_Bool);
constexpr uint8_t kKindInt = static_cast<uint8_t>(TypeKind::TK_Int);
constexpr uint8_t kKindFloat = static_cast<uint8_t>(TypeKind::TK_Float);
constexpr uint8_t kKindVec2 = static_cast<uint8_t>(TypeKind::TK_Vec2);

/// movzx eax, L.Kind; cmp al, R.Kind; jne slow — the shared same-kind
/// gate of the binary fast paths. Returns the rel8 position to bind.
size_t emitSameKindGate(Asm &A) {
  A.bytes({0x41, 0x0F, 0xB6, 0x44, 0x24, 0xD0}); // movzx eax, byte [r12-48]
  A.bytes({0x41, 0x3A, 0x44, 0x24, 0xE8});       // cmp al, [r12-24]
  return A.jcc8(0x5);                            // jne SLOW
}

/// F_Add / F_Sub / F_Mul: in-place same-kind float, packed vector, and
/// re-boxed int paths; mixed shapes (scalar-vector broadcasts, promoted
/// ints) take the helper.
void emitArith(Asm &A, const ExecInstr *In, FusedOp Op) {
  const uint8_t Ss = Op == FusedOp::F_Add   ? 0x58
                     : Op == FusedOp::F_Sub ? 0x5C
                                            : 0x59;
  const uint64_t Helper = Op == FusedOp::F_Add   ? fnAddr(&dspec_jit_add)
                          : Op == FusedOp::F_Sub ? fnAddr(&dspec_jit_sub)
                                                 : fnAddr(&dspec_jit_mul);
  const size_t ToSlow1 = emitSameKindGate(A);
  A.bytes({0x3C, kKindFloat});                         // cmp al, float
  const size_t ToVec = A.jcc8(0x5);                    // jne
  A.bytes({0xF3, 0x41, 0x0F, 0x10, 0x44, 0x24, 0xD4}); // movss xmm0,[r12-44]
  A.bytes({0xF3, 0x41, 0x0F, Ss, 0x44, 0x24, 0xEC});   //  opss xmm0,[r12-20]
  A.bytes({0xF3, 0x41, 0x0F, 0x11, 0x44, 0x24, 0xD4}); // movss [r12-44],xmm0
  const size_t ToTail1 = A.jmp8();
  A.bind8(ToVec);
  A.bytes({0x3C, kKindVec2});                    // cmp al, first vector kind
  const size_t ToInt = A.jcc8(0x2);              // jb (bool/int/void)
  A.bytes({0x41, 0x0F, 0x10, 0x44, 0x24, 0xD4}); // movups xmm0, [r12-44]
  A.bytes({0x41, 0x0F, 0x10, 0x4C, 0x24, 0xEC}); // movups xmm1, [r12-20]
  A.bytes({0x0F, Ss, 0xC1});                     //  opps xmm0, xmm1
  A.bytes({0x41, 0x0F, 0x11, 0x44, 0x24, 0xD4}); // movups [r12-44], xmm0
  const size_t ToTail2 = A.jmp8();
  A.bind8(ToInt);
  A.bytes({0x3C, kKindInt});                     // cmp al, int
  const size_t ToSlow2 = A.jcc8(0x5);            // jne SLOW
  A.bytes({0x41, 0x8B, 0x44, 0x24, 0xE4});       // mov eax, [r12-28]  L.I
  if (Op == FusedOp::F_Mul)
    A.bytes({0x41, 0x0F, 0xAF, 0x44, 0x24, 0xFC}); // imul eax, [r12-4]
  else
    A.bytes({0x41, static_cast<uint8_t>(Op == FusedOp::F_Add ? 0x03 : 0x2B),
             0x44, 0x24, 0xFC});                 //  add/sub eax, [r12-4]
  // Re-box exactly like makeInt: the int path of interp::arith re-boxes.
  A.bytes({0x41, 0xC7, 0x44, 0x24, 0xD0});       // mov dword [r12-48], int
  A.imm32(kKindInt);
  A.bytes({0x0F, 0x57, 0xC9});                   // xorps xmm1, xmm1
  A.bytes({0x41, 0x0F, 0x11, 0x4C, 0x24, 0xD4}); // movups [r12-44], xmm1
  A.bytes({0x41, 0x89, 0x44, 0x24, 0xE4});       // mov [r12-28], eax
  A.bind8(ToTail1);
  A.bind8(ToTail2);
  A.subSP(sizeof(Value));
  const size_t Done = A.jmp8();
  A.bind8(ToSlow1);
  A.bind8(ToSlow2);
  A.helperCall(Helper, In, false);
  A.bind8(Done);
}

/// F_Lt / F_Le / F_Gt / F_Ge: both-float fast path pushing a re-boxed
/// bool. Operand order and NaN behaviour match interp::compare — the
/// ucomiss direction is chosen so unordered always yields false.
void emitCompare(Asm &A, const ExecInstr *In, FusedOp Op) {
  const uint64_t Helper = Op == FusedOp::F_Lt   ? fnAddr(&dspec_jit_lt)
                          : Op == FusedOp::F_Le ? fnAddr(&dspec_jit_le)
                          : Op == FusedOp::F_Gt ? fnAddr(&dspec_jit_gt)
                                                : fnAddr(&dspec_jit_ge);
  const bool Rev = Op == FusedOp::F_Lt || Op == FusedOp::F_Le;
  const bool Strict = Op == FusedOp::F_Lt || Op == FusedOp::F_Gt;
  const size_t ToSlow1 = emitSameKindGate(A);
  A.bytes({0x3C, kKindFloat});
  const size_t ToSlow2 = A.jcc8(0x5);                  // jne SLOW
  A.bytes({0xF3, 0x41, 0x0F, 0x10, 0x44, 0x24, 0xD4}); // movss xmm0, L.F0
  A.bytes({0xF3, 0x41, 0x0F, 0x10, 0x4C, 0x24, 0xEC}); // movss xmm1, R.F0
  A.bytes({0x31, 0xD2});                               // xor edx, edx
  if (Rev)
    A.bytes({0x0F, 0x2E, 0xC8}); // ucomiss xmm1, xmm0   (L<R as R>L)
  else
    A.bytes({0x0F, 0x2E, 0xC1}); // ucomiss xmm0, xmm1
  A.bytes({0x0F, static_cast<uint8_t>(Strict ? 0x97 : 0x93), 0xC2});
  // ^ seta/setae dl — CF=1 on unordered, so NaN compares false.
  A.bytes({0x41, 0xC7, 0x44, 0x24, 0xD0}); // mov dword [r12-48], bool
  A.imm32(kKindBool);
  A.bytes({0x0F, 0x57, 0xC9});                   // xorps xmm1, xmm1
  A.bytes({0x41, 0x0F, 0x11, 0x4C, 0x24, 0xD4}); // movups [r12-44], xmm1
  A.bytes({0x41, 0x89, 0x54, 0x24, 0xE4});       // mov [r12-28], edx
  A.subSP(sizeof(Value));
  const size_t Done = A.jmp8();
  A.bind8(ToSlow1);
  A.bind8(ToSlow2);
  A.helperCall(Helper, In, false);
  A.bind8(Done);
}

/// F_LtJf / F_LeJf / F_GtJf / F_GeJf: both-float compare feeding the
/// branch directly — no Cond round trip through the frame.
void emitCmpJf(Asm &A, const ExecInstr *In, FusedOp Op) {
  const uint64_t Helper = Op == FusedOp::F_LtJf   ? fnAddr(&dspec_jit_lt_jf)
                          : Op == FusedOp::F_LeJf ? fnAddr(&dspec_jit_le_jf)
                          : Op == FusedOp::F_GtJf ? fnAddr(&dspec_jit_gt_jf)
                                                  : fnAddr(&dspec_jit_ge_jf);
  const bool Rev = Op == FusedOp::F_LtJf || Op == FusedOp::F_LeJf;
  const bool Strict = Op == FusedOp::F_LtJf || Op == FusedOp::F_GtJf;
  const size_t ToSlow1 = emitSameKindGate(A);
  A.bytes({0x3C, kKindFloat});
  const size_t ToSlow2 = A.jcc8(0x5);                  // jne SLOW
  A.bytes({0xF3, 0x41, 0x0F, 0x10, 0x44, 0x24, 0xD4}); // movss xmm0, L.F0
  A.bytes({0xF3, 0x41, 0x0F, 0x10, 0x4C, 0x24, 0xEC}); // movss xmm1, R.F0
  A.subSP(2 * sizeof(Value));
  if (Rev)
    A.bytes({0x0F, 0x2E, 0xC8}); // ucomiss xmm1, xmm0
  else
    A.bytes({0x0F, 0x2E, 0xC1}); // ucomiss xmm0, xmm1
  // Jump when the condition is FALSE; unordered (CF=1) takes the jump,
  // matching !(NaN cmp) in the interpreter.
  A.bytes({0x0F, static_cast<uint8_t>(Strict ? 0x86 : 0x82)}); // jbe / jb
  A.rel32To(In->A2);
  const size_t Done = A.jmp8();
  A.bind8(ToSlow1);
  A.bind8(ToSlow2);
  A.helperCall(Helper, In, false);
  A.condJump(In->A2);
  A.bind8(Done);
}

/// F_Member: makeFloat(top.F[A]) unconditionally — exactly the helper,
/// no kinds to dispatch on. Caller guarantees A in [0, 3].
void emitMember(Asm &A, int32_t Comp) {
  const uint8_t D = static_cast<uint8_t>(-20 + 4 * Comp);
  A.bytes({0xF3, 0x41, 0x0F, 0x10, 0x44, 0x24, D}); // movss xmm0,[r12-20+4A]
  A.bytes({0x41, 0xC7, 0x44, 0x24, 0xE8});          // mov dword [r12-24], flt
  A.imm32(kKindFloat);
  A.bytes({0xF3, 0x41, 0x0F, 0x11, 0x44, 0x24, 0xEC}); // movss [r12-20],xmm0
  A.bytes({0x0F, 0x57, 0xC9});                         // xorps xmm1, xmm1
  A.bytes({0x41, 0x0F, 0x11, 0x4C, 0x24, 0xF0});       // movups [r12-16],xmm1
}

/// F_Select: cond ? then : else as a straight 24-byte Value copy, like
/// the helper (cond.I != 0 is release-mode asBool).
void emitSelect(Asm &A) {
  A.bytes({0x41, 0x8B, 0x44, 0x24, 0xCC}); // mov eax, [r12-52]  cond.I
  A.bytes({0x49, 0x8D, 0x4C, 0x24, 0xD0}); // lea rcx, [r12-48]  then-value
  A.bytes({0x85, 0xC0});                   // test eax, eax
  const size_t Pick = A.jcc8(0x5);         // jne
  A.bytes({0x49, 0x8D, 0x4C, 0x24, 0xE8}); // lea rcx, [r12-24]  else-value
  A.bind8(Pick);
  A.bytes({0x0F, 0x10, 0x01});                   // movups xmm0, [rcx]
  A.bytes({0x48, 0x8B, 0x41, 0x10});             // mov rax, [rcx+16]
  A.bytes({0x41, 0x0F, 0x11, 0x44, 0x24, 0xB8}); // movups [r12-72], xmm0
  A.bytes({0x49, 0x89, 0x44, 0x24, 0xC8});       // mov [r12-56], rax
  A.subSP(2 * sizeof(Value));
}

/// F_ConstAdd / F_ConstMul with a scalar-float constant baked in as an
/// imm32: in-place on a float top; broadcast mulps on a vector top (only
/// for finite K, where 0*K keeps the unused lanes zero). Everything else
/// — int tops, vector constants — rides the helper.
void emitConstArith(Asm &A, const ExecInstr *In, FusedOp Op) {
  const uint8_t Ss = Op == FusedOp::F_ConstAdd ? 0x58 : 0x59;
  const uint64_t Helper = Op == FusedOp::F_ConstAdd
                              ? fnAddr(&dspec_jit_const_add)
                              : fnAddr(&dspec_jit_const_mul);
  uint32_t Bits;
  std::memcpy(&Bits, &In->K->F[0], sizeof(Bits));
  const bool VecOk =
      Op == FusedOp::F_ConstMul && std::isfinite(In->K->F[0]);
  A.bytes({0x41, 0x0F, 0xB6, 0x44, 0x24, 0xE8}); // movzx eax, top.Kind
  A.bytes({0x3C, kKindFloat});
  const size_t ToVec = A.jcc8(0x5); // jne → vector try (or straight slow)
  A.byte(0xB9);                     // mov ecx, K bits
  A.imm32(Bits);
  A.bytes({0x66, 0x0F, 0x6E, 0xC9});                   // movd xmm1, ecx
  A.bytes({0xF3, 0x41, 0x0F, 0x10, 0x44, 0x24, 0xEC}); // movss xmm0,[r12-20]
  A.bytes({0xF3, 0x0F, Ss, 0xC1});                     //  opss xmm0, xmm1
  A.bytes({0xF3, 0x41, 0x0F, 0x11, 0x44, 0x24, 0xEC}); // movss [r12-20],xmm0
  const size_t Done1 = A.jmp8();
  A.bind8(ToVec);
  size_t Done2 = 0;
  size_t ToSlow = 0;
  if (VecOk) {
    A.bytes({0x3C, kKindVec2});
    ToSlow = A.jcc8(0x2); // jb SLOW (bool/int/void)
    A.byte(0xB9);
    A.imm32(Bits);
    A.bytes({0x66, 0x0F, 0x6E, 0xC9});             // movd xmm1, ecx
    A.bytes({0x0F, 0xC6, 0xC9, 0x00});             // shufps xmm1, xmm1, 0
    A.bytes({0x41, 0x0F, 0x10, 0x44, 0x24, 0xEC}); // movups xmm0, [r12-20]
    A.bytes({0x0F, Ss, 0xC1});                     // mulps xmm0, xmm1
    A.bytes({0x41, 0x0F, 0x11, 0x44, 0x24, 0xEC}); // movups [r12-20], xmm0
    Done2 = A.jmp8();
  }
  if (VecOk)
    A.bind8(ToSlow);
  A.helperCall(Helper, In, false);
  A.bind8(Done1);
  if (VecOk)
    A.bind8(Done2);
}

/// Null-cache and bounds guards shared by the cache fast paths: leaves
/// the cache base in rax, jumping to the slow path (which re-checks and
/// traps with the canonical message) when either guard fails.
void emitCacheGuard(Asm &A, uint32_t Limit, std::vector<size_t> &Slow) {
  A.bytes({0x48, 0x8B, 0x43, 0x38}); // mov rax, [rbx+56]  CacheBytes
  A.bytes({0x48, 0x85, 0xC0});       // test rax, rax
  Slow.push_back(A.jcc8(0x4));       // je SLOW
  A.bytes({0x81, 0x7B, 0x40});       // cmp dword [rbx+64], Limit
  A.imm32(Limit);
  Slow.push_back(A.jcc8(0x2)); // jb SLOW
}

/// Builds CacheView::load's fresh Value at [rcx] from the slot at
/// [rax+Off]: Kind stamped as a zero-padded dword, loaded components,
/// everything else zeroed — byte-for-byte what the helper pushes.
void emitCacheFetch(Asm &A, TypeKind Kind, uint32_t Off) {
  switch (Kind) {
  case TypeKind::TK_Bool:
  case TypeKind::TK_Int:
    A.bytes({0x8B, 0x90}); // mov edx, [rax+Off]
    A.imm32(Off);
    A.bytes({0xC7, 0x01}); // mov dword [rcx], Kind
    A.imm32(static_cast<uint32_t>(Kind));
    A.bytes({0x0F, 0x57, 0xC9});       // xorps xmm1, xmm1
    A.bytes({0x0F, 0x11, 0x49, 0x04}); // movups [rcx+4], xmm1  (F zeroed)
    A.bytes({0x89, 0x51, 0x14});       // mov [rcx+20], edx
    break;
  case TypeKind::TK_Float:
    A.bytes({0xF3, 0x0F, 0x10, 0x80}); // movss xmm0, [rax+Off]
    A.imm32(Off);
    A.bytes({0xC7, 0x01});
    A.imm32(static_cast<uint32_t>(Kind));
    A.bytes({0xF3, 0x0F, 0x11, 0x41, 0x04}); // movss [rcx+4], xmm0
    A.bytes({0x0F, 0x57, 0xC9});             // xorps xmm1, xmm1
    A.bytes({0x0F, 0x11, 0x49, 0x08});       // movups [rcx+8], xmm1
    break;
  case TypeKind::TK_Vec2:
    A.bytes({0x48, 0x8B, 0x90}); // mov rdx, [rax+Off]  (F0, F1)
    A.imm32(Off);
    A.bytes({0xC7, 0x01});
    A.imm32(static_cast<uint32_t>(Kind));
    A.bytes({0x48, 0x89, 0x51, 0x04}); // mov [rcx+4], rdx
    A.bytes({0x48, 0xC7, 0x41, 0x0C}); // mov qword [rcx+12], 0  (F2, F3)
    A.imm32(0);
    A.bytes({0xC7, 0x41, 0x14}); // mov dword [rcx+20], 0  (I)
    A.imm32(0);
    break;
  case TypeKind::TK_Vec3:
    A.bytes({0x48, 0x8B, 0x90}); // mov rdx, [rax+Off]  (F0, F1)
    A.imm32(Off);
    A.bytes({0x8B, 0xB0}); // mov esi, [rax+Off+8]  (F2)
    A.imm32(Off + 8);
    A.bytes({0xC7, 0x01});
    A.imm32(static_cast<uint32_t>(Kind));
    A.bytes({0x48, 0x89, 0x51, 0x04}); // mov [rcx+4], rdx
    A.bytes({0x89, 0x71, 0x0C});       // mov [rcx+12], esi
    A.bytes({0xC7, 0x41, 0x10});       // mov dword [rcx+16], 0  (F3)
    A.imm32(0);
    A.bytes({0xC7, 0x41, 0x14}); // mov dword [rcx+20], 0  (I)
    A.imm32(0);
    break;
  case TypeKind::TK_Vec4:
    A.bytes({0x0F, 0x10, 0x80}); // movups xmm0, [rax+Off]
    A.imm32(Off);
    A.bytes({0xC7, 0x01});
    A.imm32(static_cast<uint32_t>(Kind));
    A.bytes({0x0F, 0x11, 0x41, 0x04}); // movups [rcx+4], xmm0
    A.bytes({0xC7, 0x41, 0x14});       // mov dword [rcx+20], 0  (I)
    A.imm32(0);
    break;
  case TypeKind::TK_Void:
    break; // gated out by the caller
  }
}

/// F_CacheLoad: push the slot. Kind and offset are compile-time
/// constants, so the fast path is a guard pair plus straight moves.
void emitCacheLoad(Asm &A, const ExecInstr *In) {
  const TypeKind Kind = static_cast<TypeKind>(In->C);
  const uint32_t Off = static_cast<uint32_t>(In->B);
  std::vector<size_t> Slow;
  emitCacheGuard(A, Off + Type(Kind).sizeInBytes(), Slow);
  A.bytes({0x4C, 0x89, 0xE1}); // mov rcx, r12  (dest = stack top)
  emitCacheFetch(A, Kind, Off);
  A.addSP(sizeof(Value));
  const size_t Done = A.jmp8();
  for (size_t P : Slow)
    A.bind8(P);
  A.helperCall(fnAddr(&dspec_jit_cache_load), In, true);
  A.bind8(Done);
}

/// F_CacheLoadStore: the same fetch straight into Locals[A2].
void emitCacheLoadStore(Asm &A, const ExecInstr *In) {
  const TypeKind Kind = static_cast<TypeKind>(In->C);
  const uint32_t Off = static_cast<uint32_t>(In->B);
  std::vector<size_t> Slow;
  emitCacheGuard(A, Off + Type(Kind).sizeInBytes(), Slow);
  A.bytes({0x49, 0x8D, 0x8F}); // lea rcx, [r15 + 24*A2]
  A.imm32(static_cast<uint32_t>(In->A2) * sizeof(Value));
  emitCacheFetch(A, Kind, Off);
  const size_t Done = A.jmp8();
  for (size_t P : Slow)
    A.bind8(P);
  A.helperCall(fnAddr(&dspec_jit_cache_load_store), In, true);
  A.bind8(Done);
}

/// F_CacheLoadAdd / F_CacheLoadMul on a float slot and a float top:
/// one guarded memory-operand opss, in place.
void emitCacheLoadArith(Asm &A, const ExecInstr *In, FusedOp Op) {
  const uint8_t Ss = Op == FusedOp::F_CacheLoadAdd ? 0x58 : 0x59;
  const uint64_t Helper = Op == FusedOp::F_CacheLoadAdd
                              ? fnAddr(&dspec_jit_cache_load_add)
                              : fnAddr(&dspec_jit_cache_load_mul);
  const uint32_t Off = static_cast<uint32_t>(In->B);
  std::vector<size_t> Slow;
  A.bytes({0x41, 0x80, 0x7C, 0x24, 0xE8, kKindFloat}); // cmp top.Kind, flt
  Slow.push_back(A.jcc8(0x5));                         // jne SLOW
  emitCacheGuard(A, Off + sizeof(float), Slow);
  A.bytes({0xF3, 0x41, 0x0F, 0x10, 0x44, 0x24, 0xEC}); // movss xmm0,[r12-20]
  A.bytes({0xF3, 0x0F, Ss, 0x80});                     //  opss xmm0,[rax+Off]
  A.imm32(Off);
  A.bytes({0xF3, 0x41, 0x0F, 0x11, 0x44, 0x24, 0xEC}); // movss [r12-20],xmm0
  const size_t Done = A.jmp8();
  for (size_t P : Slow)
    A.bind8(P);
  A.helperCall(Helper, In, true);
  A.bind8(Done);
}

/// Stitches \p C into \p Out. False when an opcode cannot be expressed
/// (the caller deopts to threaded).
bool emitChunk(const ExecChunk &C, std::vector<uint8_t> &Out) {
  Asm A;

  // Prologue: save callee-saved regs, unpack the frame.
  A.bytes({0x53, 0x41, 0x54, 0x41, 0x55, 0x41, 0x56, 0x41, 0x57});
  A.bytes({0x48, 0x89, 0xFB});       // mov rbx, rdi
  A.bytes({0x4C, 0x8B, 0x23});       // mov r12, [rbx]     Stack
  A.bytes({0x4C, 0x8B, 0x7B, 0x08}); // mov r15, [rbx+8]   Locals
  A.bytes({0x4C, 0x8B, 0x6B, 0x10}); // mov r13, [rbx+16]  Executed
  A.bytes({0x4C, 0x8B, 0x73, 0x18}); // mov r14, [rbx+24]  Budget

  const size_t N = C.Code.size();
  // InstrOff[N] is the fall-off-the-end jmp: a jump target of N (legal —
  // the interpreter halts there) lands on it and reaches DONE.
  std::vector<size_t> InstrOff(N + 1, 0);

  for (size_t I = 0; I < N; ++I) {
    InstrOff[I] = A.here();
    const ExecInstr *In = &C.Code[I];
    A.budget();
    switch (In->Op) {
    // Inlined data movers: raw three-qword Value copies.
    case FusedOp::F_Const:
      if (!In->K)
        return false;
      A.inlineConst(In->K);
      break;
    case FusedOp::F_LoadLocal:
      A.loadLocalToRegs(In->A);
      A.storeRegsToStack(0);
      A.addSP(sizeof(Value));
      break;
    case FusedOp::F_StoreLocal:
      A.loadStackToRegs(-static_cast<int8_t>(sizeof(Value)));
      A.storeRegsToLocal(In->A);
      A.subSP(sizeof(Value));
      break;
    case FusedOp::F_Pop:
      A.subSP(sizeof(Value));
      break;
    case FusedOp::F_Jump:
      A.byte(0xE9);
      A.rel32To(In->A);
      break;
    case FusedOp::F_LoadLoad:
      A.loadLocalToRegs(In->A);
      A.storeRegsToStack(0);
      A.loadLocalToRegs(In->A2);
      A.storeRegsToStack(sizeof(Value));
      A.addSP(2 * sizeof(Value));
      break;
    case FusedOp::F_StoreLoad:
      // Store first, then load — preserves sequential semantics when
      // both name the same local; SP is unchanged.
      A.loadStackToRegs(-static_cast<int8_t>(sizeof(Value)));
      A.storeRegsToLocal(In->A);
      A.loadLocalToRegs(In->A2);
      A.storeRegsToStack(-static_cast<int8_t>(sizeof(Value)));
      break;

    // Conditional branches. JumpIfFalse pops a verified bool — test its
    // I field directly, exactly release-mode asBool.
    case FusedOp::F_JumpIfFalse:
      A.bytes({0x41, 0x8B, 0x44, 0x24, 0xFC}); // mov eax, [r12-4]  top.I
      A.subSP(sizeof(Value));
      A.bytes({0x85, 0xC0}); // test eax, eax
      A.bytes({0x0F, 0x84}); // je <target>
      A.rel32To(In->A);
      break;
    case FusedOp::F_LtJf:
    case FusedOp::F_LeJf:
    case FusedOp::F_GtJf:
    case FusedOp::F_GeJf:
      emitCmpJf(A, In, In->Op);
      break;

    // Halting opcodes: helper fills the result, fragment exits.
    case FusedOp::F_Return:
      A.helperCall(fnAddr(&dspec_jit_return_), In, false);
      A.byte(0xE9);
      A.rel32To(kTargetDone);
      break;
    case FusedOp::F_ReturnVoid:
      A.helperCall(fnAddr(&dspec_jit_return_void), In, false);
      A.byte(0xE9);
      A.rel32To(kTargetDone);
      break;
    case FusedOp::F_CacheLoadRet:
      A.helperCall(fnAddr(&dspec_jit_cache_load_ret), In, true);
      A.byte(0xE9);
      A.rel32To(kTargetDone);
      break;

    // Value-semantics opcodes: per-opcode helper. Only the opcodes whose
    // interpreter handler can TRAP get the null check.
    case FusedOp::F_Convert:
      A.helperCall(fnAddr(&dspec_jit_convert), In, false);
      break;
    case FusedOp::F_Neg:
      A.helperCall(fnAddr(&dspec_jit_neg), In, false);
      break;
    case FusedOp::F_Not:
      A.helperCall(fnAddr(&dspec_jit_not_), In, false);
      break;
    case FusedOp::F_Add:
    case FusedOp::F_Sub:
    case FusedOp::F_Mul:
      emitArith(A, In, In->Op);
      break;
    case FusedOp::F_Div:
      A.helperCall(fnAddr(&dspec_jit_div), In, true);
      break;
    case FusedOp::F_Mod:
      A.helperCall(fnAddr(&dspec_jit_mod), In, true);
      break;
    case FusedOp::F_Lt:
    case FusedOp::F_Le:
    case FusedOp::F_Gt:
    case FusedOp::F_Ge:
      emitCompare(A, In, In->Op);
      break;
    case FusedOp::F_Eq:
      A.helperCall(fnAddr(&dspec_jit_eq), In, false);
      break;
    case FusedOp::F_Ne:
      A.helperCall(fnAddr(&dspec_jit_ne), In, false);
      break;
    case FusedOp::F_And:
      A.helperCall(fnAddr(&dspec_jit_and_), In, false);
      break;
    case FusedOp::F_Or:
      A.helperCall(fnAddr(&dspec_jit_or_), In, false);
      break;
    case FusedOp::F_Select:
      emitSelect(A);
      break;
    case FusedOp::F_CallBuiltin:
      A.helperCall(fnAddr(&dspec_jit_call_builtin), In, false);
      break;
    case FusedOp::F_Member:
      if (In->A >= 0 && In->A < 4)
        emitMember(A, In->A);
      else
        A.helperCall(fnAddr(&dspec_jit_member), In, false);
      break;
    case FusedOp::F_CacheLoad:
      if (In->B >= 0 && In->C >= static_cast<int32_t>(TypeKind::TK_Bool) &&
          In->C <= static_cast<int32_t>(TypeKind::TK_Vec4))
        emitCacheLoad(A, In);
      else
        A.helperCall(fnAddr(&dspec_jit_cache_load), In, true);
      break;
    case FusedOp::F_CacheStore:
      A.helperCall(fnAddr(&dspec_jit_cache_store), In, true);
      break;
    case FusedOp::F_ConstAdd:
    case FusedOp::F_ConstMul:
      if (In->K && In->K->Kind == TypeKind::TK_Float)
        emitConstArith(A, In, In->Op);
      else
        A.helperCall(In->Op == FusedOp::F_ConstAdd
                         ? fnAddr(&dspec_jit_const_add)
                         : fnAddr(&dspec_jit_const_mul),
                     In, false);
      break;
    case FusedOp::F_LoadCall:
      A.helperCall(fnAddr(&dspec_jit_load_call), In, false);
      break;
    case FusedOp::F_CacheLoadAdd:
    case FusedOp::F_CacheLoadMul:
      if (In->B >= 0 &&
          static_cast<TypeKind>(In->C) == TypeKind::TK_Float)
        emitCacheLoadArith(A, In, In->Op);
      else
        A.helperCall(In->Op == FusedOp::F_CacheLoadAdd
                         ? fnAddr(&dspec_jit_cache_load_add)
                         : fnAddr(&dspec_jit_cache_load_mul),
                     In, true);
      break;
    case FusedOp::F_CacheLoadStore:
      if (In->B >= 0 && In->A2 >= 0 &&
          In->C >= static_cast<int32_t>(TypeKind::TK_Bool) &&
          In->C <= static_cast<int32_t>(TypeKind::TK_Vec4))
        emitCacheLoadStore(A, In);
      else
        A.helperCall(fnAddr(&dspec_jit_cache_load_store), In, true);
      break;

    case FusedOp::F_OpCount:
      return false; // inexpressible: deopt to threaded
    }
  }

  // Fall off the end: void halt, exactly like the interpreter tiers.
  InstrOff[N] = A.here();
  A.byte(0xE9);
  A.rel32To(kTargetDone);

  const size_t DoneOff = A.here();
  A.spillExecuted();
  A.bytes({0xB8, 0x01, 0x00, 0x00, 0x00}); // mov eax, 1
  A.popsAndRet();

  const size_t BudgetOff = A.here();
  A.spillExecuted(); // the trap message reports the billed instruction
  A.bytes({0x48, 0x89, 0xDF}); // mov rdi, rbx
  A.bytes({0x48, 0xB8});
  A.imm64(fnAddr(&dspec_jit_budget_trap));
  A.bytes({0xFF, 0xD0});
  // falls through into the trap epilogue

  const size_t TrapOff = A.here();
  A.bytes({0x31, 0xC0}); // xor eax, eax
  A.popsAndRet();

  if (A.Rel8Overflow)
    return false;

  for (const Fixup &Fx : A.Fixups) {
    size_t T;
    if (Fx.Target >= 0) {
      if (static_cast<size_t>(Fx.Target) > N)
        return false;
      T = InstrOff[static_cast<size_t>(Fx.Target)];
    } else if (Fx.Target == kTargetDone) {
      T = DoneOff;
    } else if (Fx.Target == kTargetTrap) {
      T = TrapOff;
    } else {
      T = BudgetOff;
    }
    const int64_t Rel =
        static_cast<int64_t>(T) - (static_cast<int64_t>(Fx.Pos) + 4);
    const int32_t R32 = static_cast<int32_t>(Rel);
    if (R32 != Rel)
      return false;
    std::memcpy(&A.Code[Fx.Pos], &R32, sizeof(R32));
  }

  Out = std::move(A.Code);
  return true;
}

} // namespace

#endif // DSPEC_JIT_ENABLED

std::shared_ptr<const JitProgram> dspec::jit::compileChunk(const Chunk &C) {
#if !DSPEC_JIT_ENABLED
  (void)C;
  return nullptr;
#else
  const auto Start = std::chrono::steady_clock::now();
  ExecChunk Exec = buildExecChunk(C);
  if (!Exec.Valid) {
    // Not stitchable by any tier; the engine's !Valid path already falls
    // back to the switch interpreter.
    StatFailures.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto P = std::make_shared<JitProgram>();
  // Move before taking imm64 addresses: K pointers and &Code[i] must
  // name the program's own (heap) buffers, which survive the move.
  P->Exec = std::move(Exec);
  std::vector<uint8_t> Blob;
  if (!emitChunk(P->Exec, Blob)) {
    StatFailures.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::string Error;
  if (!P->Code.allocate(Blob.data(), Blob.size(), &Error)) {
    StatFailures.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  P->Entry = reinterpret_cast<JitProgram::EntryFn>(
      reinterpret_cast<uintptr_t>(P->Code.entry()));
  P->Fingerprint = chunkFingerprint(C);
  const auto End = std::chrono::steady_clock::now();
  P->CompileSeconds = std::chrono::duration<double>(End - Start).count();
  StatCompiles.fetch_add(1, std::memory_order_relaxed);
  StatCodeBytes.fetch_add(Blob.size(), std::memory_order_relaxed);
  StatCompileNanos.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
              .count()),
      std::memory_order_relaxed);
  return P;
#endif
}

std::shared_ptr<const JitProgram>
dspec::jit::ensureCompiled(const Chunk &C, bool *StitchedNow) {
  if (StitchedNow)
    *StitchedNow = false;
  if (!available() || !C.Jit)
    return nullptr;
  const uint64_t Key = chunkFingerprint(C);
  if (auto P = C.Jit->get(Key))
    return P;
  if (C.Jit->failedFor(Key))
    return nullptr;
  auto P = compileChunk(C);
  if (!P) {
    C.Jit->markFailed(Key);
    return nullptr;
  }
  C.Jit->put(Key, P);
  if (StitchedNow)
    *StitchedNow = true;
  return P;
}
