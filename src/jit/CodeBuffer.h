//===- jit/CodeBuffer.h - W^X executable memory -----------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owner of one stitched program's executable pages. Allocation follows
/// the W^X discipline: the pages are mapped read+write, the finished blob
/// is copied in, then the mapping is flipped to read+execute (never both
/// writable and executable) and the instruction cache is flushed where
/// the architecture needs it. Any failure — mmap, mprotect, or an
/// unsupported platform — reports cleanly through the bool return so the
/// caller can deopt to the threaded tier instead of crashing.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_JIT_CODEBUFFER_H
#define DATASPEC_JIT_CODEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace dspec {
namespace jit {

/// One read+execute mapping holding a stitched program.
class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer() { release(); }

  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;
  CodeBuffer(CodeBuffer &&RHS) noexcept { *this = static_cast<CodeBuffer &&>(RHS); }
  CodeBuffer &operator=(CodeBuffer &&RHS) noexcept {
    if (this != &RHS) {
      release();
      Mem = RHS.Mem;
      MapBytes = RHS.MapBytes;
      CodeBytes = RHS.CodeBytes;
      RHS.Mem = nullptr;
      RHS.MapBytes = 0;
      RHS.CodeBytes = 0;
    }
    return *this;
  }

  /// Maps fresh pages, copies \p Len bytes of \p Blob in, and seals them
  /// read+execute. False (with \p Error filled when non-null) on any
  /// failure; the buffer is left empty and reusable.
  bool allocate(const uint8_t *Blob, size_t Len, std::string *Error);

  /// Entry address of the sealed code; null before a successful allocate.
  const void *entry() const { return Mem; }
  size_t size() const { return CodeBytes; }

private:
  void release();

  void *Mem = nullptr;
  size_t MapBytes = 0;
  size_t CodeBytes = 0;
};

} // namespace jit
} // namespace dspec

#endif // DATASPEC_JIT_CODEBUFFER_H
