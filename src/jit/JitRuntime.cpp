//===- jit/JitRuntime.cpp - Helper bodies and the native-tier entry ----------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The runtime half of the native tier: the per-opcode helpers stitched
// code calls, and VM::runJit, the wrapper that builds a JitFrame and
// enters a compiled program. Helper bodies replicate the threaded tier's
// handlers (vm/FastInterp.cpp) operation for operation — same
// vm/InterpOps.h calls, same operand order, same trap messages verbatim —
// which is what extends the bit-identity contract to native code. Keep
// all three in sync.
//
//===----------------------------------------------------------------------===//

#include "jit/JitHelpers.h"
#include "vm/InterpOps.h"
#include "vm/VM.h"

using namespace dspec;
using namespace dspec::jit;

namespace dspec {
/// Implemented in Builtins.cpp.
Value callBuiltinImpl(uint16_t Id, const Value *Args, VM &Machine);
} // namespace dspec

namespace {

/// Records a trap in the frame's result. The stitched code spilled r13
/// into F->Executed before every helper call, so the retired-instruction
/// count here matches what the threaded tier would report.
Value *trap(JitFrame *F, std::string Msg) {
  ExecResult &R = *F->Result;
  R.Trapped = true;
  R.TrapMessage = std::move(Msg);
  R.InstructionsExecuted = F->Executed;
  return nullptr;
}

CacheView view(const JitFrame *F) {
  return CacheView(F->CacheBytes, F->CacheSize);
}

} // namespace

#define DSPEC_JIT_HELPER(NAME)                                                 \
  Value *dspec::jit::dspec_jit_##NAME(JitFrame *F, Value *SP,                  \
                                      const ExecInstr *In)
// Unreferenced parameters per helper vary; silence uniformly.
#define UNUSED3()                                                              \
  do {                                                                         \
    (void)F;                                                                   \
    (void)SP;                                                                  \
    (void)In;                                                                  \
  } while (0)

DSPEC_JIT_HELPER(convert) {
  UNUSED3();
  Value &V = SP[-1];
  V = V.convertTo(Type(static_cast<TypeKind>(In->A)));
  return SP;
}

DSPEC_JIT_HELPER(neg) {
  UNUSED3();
  Value &V = SP[-1];
  V = interp::opNeg(V);
  return SP;
}

DSPEC_JIT_HELPER(not_) {
  UNUSED3();
  Value &V = SP[-1];
  V = Value::makeBool(!V.asBool());
  return SP;
}

DSPEC_JIT_HELPER(add) {
  UNUSED3();
  SP[-2] = interp::opAdd(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(sub) {
  UNUSED3();
  SP[-2] = interp::opSub(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(mul) {
  UNUSED3();
  SP[-2] = interp::opMul(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(div) {
  UNUSED3();
  const Value &Rv = SP[-1];
  Value &Lv = SP[-2];
  if (Lv.isInt() && Rv.isInt() && Rv.I == 0)
    return trap(F, "integer division by zero in '" + F->Chunk->Name + "'" +
                       interp::srcLocSuffix(In->A, In->B));
  Lv = interp::opDiv(Lv, Rv);
  return SP - 1;
}

DSPEC_JIT_HELPER(mod) {
  UNUSED3();
  const Value &Rv = SP[-1];
  Value &Lv = SP[-2];
  if (Rv.I == 0)
    return trap(F, "integer modulo by zero in '" + F->Chunk->Name + "'" +
                       interp::srcLocSuffix(In->A, In->B));
  Lv = Value::makeInt(Lv.I % Rv.I);
  return SP - 1;
}

DSPEC_JIT_HELPER(lt) {
  UNUSED3();
  SP[-2] = interp::opLt(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(le) {
  UNUSED3();
  SP[-2] = interp::opLe(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(gt) {
  UNUSED3();
  SP[-2] = interp::opGt(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(ge) {
  UNUSED3();
  SP[-2] = interp::opGe(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(eq) {
  UNUSED3();
  SP[-2] = interp::opEq(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(ne) {
  UNUSED3();
  SP[-2] = interp::opNe(SP[-2], SP[-1]);
  return SP - 1;
}

DSPEC_JIT_HELPER(and_) {
  UNUSED3();
  SP[-2] = Value::makeBool(SP[-2].asBool() && SP[-1].asBool());
  return SP - 1;
}

DSPEC_JIT_HELPER(or_) {
  UNUSED3();
  SP[-2] = Value::makeBool(SP[-2].asBool() || SP[-1].asBool());
  return SP - 1;
}

DSPEC_JIT_HELPER(select) {
  UNUSED3();
  // Stack bottom-to-top: condition, then-value, else-value.
  Value *NS = SP - 2;
  NS[-1] = NS[-1].asBool() ? NS[0] : NS[1];
  return NS;
}

DSPEC_JIT_HELPER(jump_if_false) {
  UNUSED3();
  F->Cond = SP[-1].asBool() ? 0 : 1;
  return SP - 1;
}

DSPEC_JIT_HELPER(call_builtin) {
  UNUSED3();
  Value *Base = SP - In->B;
  // Assign after the call returns (the result overwrites argument 0),
  // exactly like the interpreter tiers.
  Value R = callBuiltinImpl(static_cast<uint16_t>(In->A), Base, *F->Machine);
  Base[0] = R;
  return Base + 1;
}

DSPEC_JIT_HELPER(member) {
  UNUSED3();
  Value &V = SP[-1];
  V = Value::makeFloat(V.F[In->A]);
  return SP;
}

DSPEC_JIT_HELPER(cache_load) {
  UNUSED3();
  if (!F->CacheBytes)
    return trap(F, "cache read without a loaded cache in '" + F->Chunk->Name +
                       "'");
  const TypeKind Kind = static_cast<TypeKind>(In->C);
  const unsigned Offset = static_cast<unsigned>(In->B);
  CacheView Packed = view(F);
  if (!Packed.inBounds(Offset, Kind))
    return trap(F, "cache read past the layout in '" + F->Chunk->Name + "'");
  SP[0] = Packed.load(Offset, Kind);
  return SP + 1;
}

DSPEC_JIT_HELPER(cache_store) {
  UNUSED3();
  // The stored value stays on the stack.
  if (!F->CacheBytes)
    return trap(F, "cache write without cache storage in '" + F->Chunk->Name +
                       "'");
  const TypeKind Kind = static_cast<TypeKind>(In->C);
  const unsigned Offset = static_cast<unsigned>(In->B);
  const Value &V = SP[-1];
  CacheView Packed = view(F);
  if (!Packed.inBounds(Offset, Kind))
    return trap(F, "cache store past the layout in '" + F->Chunk->Name + "'");
  if (V.Kind != Kind)
    return trap(F, "cache store type mismatch in '" + F->Chunk->Name +
                       "': slot is " + Type(Kind).name() + ", value is " +
                       Type(V.Kind).name());
  Packed.store(Offset, V);
  return SP;
}

DSPEC_JIT_HELPER(return_) {
  UNUSED3();
  F->Result->Result = SP[-1];
  return SP - 1;
}

DSPEC_JIT_HELPER(return_void) {
  UNUSED3();
  F->Result->Result = Value::makeVoid();
  return SP;
}

DSPEC_JIT_HELPER(const_add) {
  UNUSED3();
  SP[-1] = interp::opAdd(SP[-1], *In->K);
  return SP;
}

DSPEC_JIT_HELPER(const_mul) {
  UNUSED3();
  SP[-1] = interp::opMul(SP[-1], *In->K);
  return SP;
}

DSPEC_JIT_HELPER(load_call) {
  UNUSED3();
  SP[0] = F->Locals[In->A];
  Value *Base = SP + 1 - In->B2;
  Value R = callBuiltinImpl(static_cast<uint16_t>(In->A2), Base, *F->Machine);
  Base[0] = R;
  return Base + 1;
}

DSPEC_JIT_HELPER(cache_load_add) {
  UNUSED3();
  if (!F->CacheBytes)
    return trap(F, "cache read without a loaded cache in '" + F->Chunk->Name +
                       "'");
  const TypeKind Kind = static_cast<TypeKind>(In->C);
  const unsigned Offset = static_cast<unsigned>(In->B);
  CacheView Packed = view(F);
  if (!Packed.inBounds(Offset, Kind))
    return trap(F, "cache read past the layout in '" + F->Chunk->Name + "'");
  SP[-1] = interp::opAdd(SP[-1], Packed.load(Offset, Kind));
  return SP;
}

DSPEC_JIT_HELPER(cache_load_mul) {
  UNUSED3();
  if (!F->CacheBytes)
    return trap(F, "cache read without a loaded cache in '" + F->Chunk->Name +
                       "'");
  const TypeKind Kind = static_cast<TypeKind>(In->C);
  const unsigned Offset = static_cast<unsigned>(In->B);
  CacheView Packed = view(F);
  if (!Packed.inBounds(Offset, Kind))
    return trap(F, "cache read past the layout in '" + F->Chunk->Name + "'");
  SP[-1] = interp::opMul(SP[-1], Packed.load(Offset, Kind));
  return SP;
}

DSPEC_JIT_HELPER(cache_load_store) {
  UNUSED3();
  if (!F->CacheBytes)
    return trap(F, "cache read without a loaded cache in '" + F->Chunk->Name +
                       "'");
  const TypeKind Kind = static_cast<TypeKind>(In->C);
  const unsigned Offset = static_cast<unsigned>(In->B);
  CacheView Packed = view(F);
  if (!Packed.inBounds(Offset, Kind))
    return trap(F, "cache read past the layout in '" + F->Chunk->Name + "'");
  F->Locals[In->A2] = Packed.load(Offset, Kind);
  return SP;
}

DSPEC_JIT_HELPER(cache_load_ret) {
  UNUSED3();
  if (!F->CacheBytes)
    return trap(F, "cache read without a loaded cache in '" + F->Chunk->Name +
                       "'");
  const TypeKind Kind = static_cast<TypeKind>(In->C);
  const unsigned Offset = static_cast<unsigned>(In->B);
  CacheView Packed = view(F);
  if (!Packed.inBounds(Offset, Kind))
    return trap(F, "cache read past the layout in '" + F->Chunk->Name + "'");
  F->Result->Result = Packed.load(Offset, Kind);
  return SP;
}

DSPEC_JIT_HELPER(lt_jf) {
  UNUSED3();
  F->Cond = interp::cmpLt(SP[-2], SP[-1]) ? 0 : 1;
  return SP - 2;
}

DSPEC_JIT_HELPER(le_jf) {
  UNUSED3();
  F->Cond = interp::cmpLe(SP[-2], SP[-1]) ? 0 : 1;
  return SP - 2;
}

DSPEC_JIT_HELPER(gt_jf) {
  UNUSED3();
  F->Cond = interp::cmpGt(SP[-2], SP[-1]) ? 0 : 1;
  return SP - 2;
}

DSPEC_JIT_HELPER(ge_jf) {
  UNUSED3();
  F->Cond = interp::cmpGe(SP[-2], SP[-1]) ? 0 : 1;
  return SP - 2;
}

#undef DSPEC_JIT_HELPER

void dspec::jit::dspec_jit_budget_trap(JitFrame *F) {
  ExecResult &R = *F->Result;
  R.Trapped = true;
  R.TrapMessage =
      "instruction budget exceeded in '" + F->Chunk->Name + "'";
  R.InstructionsExecuted = F->Executed;
}

//===----------------------------------------------------------------------===//
// VM::runJit — the native-tier entry wrapper
//===----------------------------------------------------------------------===//

#define TRAP(MSG)                                                              \
  do {                                                                         \
    Result.Trapped = true;                                                     \
    Result.TrapMessage = (MSG);                                                \
    Result.InstructionsExecuted = Executed;                                    \
    return Result;                                                             \
  } while (0)

ExecResult VM::runJit(const jit::JitProgram &P, const std::vector<Value> &Args,
                      CacheView Packed) {
  ExecResult Result;
  uint64_t Executed = 0;
  const ExecChunk &C = P.chunk();

  // Preamble identical to runThreaded: same checks, same messages, same
  // zero-init and int->float parameter promotion.
  if (!C.Valid)
    TRAP("invalid decoded chunk '" + C.Name + "'");
  if (Args.size() != C.NumParams)
    TRAP("argument count mismatch calling '" + C.Name + "'");

  std::vector<Value> &Locals = LocalsScratch;
  Locals.resize(C.numLocals());
  for (unsigned I = 0; I < C.numLocals(); ++I)
    Locals[I] = Value::zeroOf(Type(C.LocalTypes[I]));
  for (unsigned I = 0; I < C.NumParams; ++I) {
    Value Arg = Args[I];
    if (Arg.Kind != C.LocalTypes[I]) {
      if (Arg.isInt() && C.LocalTypes[I] == TypeKind::TK_Float)
        Arg = Value::makeFloat(static_cast<float>(Arg.I));
      else
        TRAP("argument type mismatch calling '" + C.Name + "'");
    }
    Locals[I] = Arg;
  }

  if (StackScratch.size() < C.MaxStack)
    StackScratch.resize(C.MaxStack);

  // The stitched cache fragments compute `base + offset` directly — they
  // cannot resolve a slot-major/tile-blocked address map. The engine
  // never hands the native tier a mapped arena (it deopts to threaded);
  // trap a direct caller instead of reading the wrong bytes.
  if (Packed.mappedAddressing())
    TRAP("native tier requires a dense cache view for '" + C.Name + "'");

  jit::JitFrame F;
  F.Stack = StackScratch.data();
  F.Locals = Locals.data();
  F.Executed = 0;
  F.Budget = InstructionBudget;
  F.Machine = this;
  F.Chunk = &C;
  F.Result = &Result;
  // The frame carries one pointer at its ABI-pinned slot and the inline
  // fragments only load through it; the sole store path (the cache_store
  // helper) is unreachable on read-only passes because the engine deopts
  // native whenever a read-only arena meets a chunk containing a cache
  // store. That gate makes this the single audited const escape.
  F.CacheBytes = const_cast<unsigned char *>(Packed.data());
  F.CacheSize = Packed.sizeInBytes();
  F.Cond = 0;

  // Entry returns 1 on completion, 0 on trap; trap paths already filled
  // Result (message + retired count) through the frame.
  if (P.entry()(&F))
    Result.InstructionsExecuted = F.Executed;
  return Result;
}

#undef TRAP
