//===- lang/ASTContext.h - AST ownership and node ids -----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ASTContext owns every AST node (arena allocation) and hands out dense
/// node ids, which analyses use to index side tables. Specialized functions
/// (loaders/readers) produced from a fragment live in the same context as
/// the fragment.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_ASTCONTEXT_H
#define DATASPEC_LANG_ASTCONTEXT_H

#include "lang/Function.h"
#include "support/Arena.h"

#include <type_traits>
#include <utility>

namespace dspec {

/// Owns all AST nodes of one compilation unit plus anything derived from it.
class ASTContext {
public:
  ASTContext() = default;
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  /// Creates an Expr or Stmt node, assigning it the next dense node id.
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    T *Node = Alloc.create<T>(std::forward<Args>(CtorArgs)...);
    if constexpr (std::is_base_of_v<Expr, T> || std::is_base_of_v<Stmt, T>)
      Node->setNodeId(NextNodeId++);
    return Node;
  }

  /// Creates a VarDecl (decls have no node ids; their pointer identity is
  /// the variable's identity).
  VarDecl *createVarDecl(VarDecl::DeclKind Kind, std::string Name, Type T,
                         SourceLoc Loc) {
    return Alloc.create<VarDecl>(Kind, std::move(Name), T, Loc);
  }

  /// Creates a Function or Program node.
  template <typename T, typename... Args> T *createTopLevel(Args &&...A) {
    return Alloc.create<T>(std::forward<Args>(A)...);
  }

  /// One past the largest node id handed out so far. Analyses size their
  /// side tables with this.
  uint32_t numNodeIds() const { return NextNodeId; }

  /// Bytes currently allocated for this unit's AST.
  size_t bytesAllocated() const { return Alloc.bytesAllocated(); }

private:
  Arena Alloc;
  uint32_t NextNodeId = 0;
};

} // namespace dspec

#endif // DATASPEC_LANG_ASTCONTEXT_H
