//===- lang/Builtins.cpp - Builtin function registry ----------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Builtins.h"

#include <cassert>

using namespace dspec;

static std::vector<BuiltinInfo> makeBuiltinTable() {
  const Type F = Type::floatTy();
  const Type I = Type::intTy();
  const Type V2 = Type::vec2Ty();
  const Type V3 = Type::vec3Ty();
  const Type V4 = Type::vec4Ty();
  const Type Void = Type::voidTy();

  // Costs follow the flavor of the paper's examples: '+' costs 1, '/' costs
  // 9; transcendental and noise functions are much more expensive. The exact
  // values only matter relatively (victim selection in the cache limiter and
  // the Trivial() threshold).
  std::vector<BuiltinInfo> Table = {
      {BuiltinId::BI_SqrtF, "sqrt", F, {F}, 10, false},
      {BuiltinId::BI_AbsF, "abs", F, {F}, 1, false},
      {BuiltinId::BI_AbsI, "abs", I, {I}, 1, false},
      {BuiltinId::BI_FloorF, "floor", F, {F}, 2, false},
      {BuiltinId::BI_CeilF, "ceil", F, {F}, 2, false},
      {BuiltinId::BI_FractF, "fract", F, {F}, 3, false},
      {BuiltinId::BI_SinF, "sin", F, {F}, 14, false},
      {BuiltinId::BI_CosF, "cos", F, {F}, 14, false},
      {BuiltinId::BI_TanF, "tan", F, {F}, 18, false},
      {BuiltinId::BI_ExpF, "exp", F, {F}, 16, false},
      {BuiltinId::BI_LogF, "log", F, {F}, 16, false},
      {BuiltinId::BI_PowF, "pow", F, {F, F}, 24, false},
      {BuiltinId::BI_MinF, "min", F, {F, F}, 1, false},
      {BuiltinId::BI_MinI, "min", I, {I, I}, 1, false},
      {BuiltinId::BI_MaxF, "max", F, {F, F}, 1, false},
      {BuiltinId::BI_MaxI, "max", I, {I, I}, 1, false},
      {BuiltinId::BI_ClampF, "clamp", F, {F, F, F}, 2, false},
      {BuiltinId::BI_MixF, "mix", F, {F, F, F}, 3, false},
      {BuiltinId::BI_StepF, "step", F, {F, F}, 1, false},
      {BuiltinId::BI_SmoothStepF, "smoothstep", F, {F, F, F}, 8, false},
      {BuiltinId::BI_ModF, "mod", F, {F, F}, 9, false},
      {BuiltinId::BI_ToInt, "toInt", I, {F}, 2, false},
      {BuiltinId::BI_ToFloat, "toFloat", F, {I}, 1, false},
      {BuiltinId::BI_Vec2, "vec2", V2, {F, F}, 2, false},
      {BuiltinId::BI_Vec3, "vec3", V3, {F, F, F}, 3, false},
      {BuiltinId::BI_Vec3Splat, "vec3", V3, {F}, 2, false},
      {BuiltinId::BI_Vec4, "vec4", V4, {F, F, F, F}, 4, false},
      {BuiltinId::BI_Vec4FromVec3, "vec4", V4, {V3, F}, 3, false},
      {BuiltinId::BI_DotV2, "dot", F, {V2, V2}, 4, false},
      {BuiltinId::BI_DotV3, "dot", F, {V3, V3}, 6, false},
      {BuiltinId::BI_DotV4, "dot", F, {V4, V4}, 8, false},
      {BuiltinId::BI_CrossV3, "cross", V3, {V3, V3}, 9, false},
      {BuiltinId::BI_LengthV2, "length", F, {V2}, 12, false},
      {BuiltinId::BI_LengthV3, "length", F, {V3}, 14, false},
      {BuiltinId::BI_LengthV4, "length", F, {V4}, 16, false},
      {BuiltinId::BI_NormalizeV2, "normalize", V2, {V2}, 16, false},
      {BuiltinId::BI_NormalizeV3, "normalize", V3, {V3}, 18, false},
      {BuiltinId::BI_NormalizeV4, "normalize", V4, {V4}, 20, false},
      {BuiltinId::BI_DistanceV3, "distance", F, {V3, V3}, 16, false},
      {BuiltinId::BI_ReflectV3, "reflect", V3, {V3, V3}, 12, false},
      {BuiltinId::BI_FaceForwardV3, "faceforward", V3, {V3, V3}, 9, false},
      {BuiltinId::BI_MixV2, "mix", V2, {V2, V2, F}, 6, false},
      {BuiltinId::BI_MixV3, "mix", V3, {V3, V3, F}, 9, false},
      {BuiltinId::BI_MixV4, "mix", V4, {V4, V4, F}, 12, false},
      {BuiltinId::BI_ClampV3, "clamp", V3, {V3, F, F}, 6, false},
      {BuiltinId::BI_MinV3, "min", V3, {V3, V3}, 3, false},
      {BuiltinId::BI_MaxV3, "max", V3, {V3, V3}, 3, false},
      {BuiltinId::BI_RotateXV3, "rotateX", V3, {V3, F}, 32, false},
      {BuiltinId::BI_RotateYV3, "rotateY", V3, {V3, F}, 32, false},
      {BuiltinId::BI_RotateZV3, "rotateZ", V3, {V3, F}, 32, false},
      {BuiltinId::BI_Noise1, "noise1", F, {F}, 40, false},
      {BuiltinId::BI_Noise2, "noise2", F, {V2}, 45, false},
      {BuiltinId::BI_Noise3, "noise", F, {V3}, 50, false},
      {BuiltinId::BI_VNoise3, "vnoise", V3, {V3}, 140, false},
      {BuiltinId::BI_Fbm, "fbm", F, {V3, I, F, F}, 240, false},
      {BuiltinId::BI_Turbulence, "turbulence", F, {V3, I}, 220, false},
      {BuiltinId::BI_Trace, "dsc_trace", Void, {F}, 5, true},
      {BuiltinId::BI_Clock, "dsc_clock", F, {}, 5, true},
  };

  // The table must be indexed by BuiltinId.
  for (size_t Index = 0; Index < Table.size(); ++Index)
    assert(static_cast<size_t>(Table[Index].Id) == Index &&
           "builtin table out of order");
  return Table;
}

const std::vector<BuiltinInfo> &dspec::allBuiltins() {
  static const std::vector<BuiltinInfo> Table = makeBuiltinTable();
  return Table;
}

const BuiltinInfo &dspec::getBuiltinInfo(BuiltinId Id) {
  const auto &Table = allBuiltins();
  size_t Index = static_cast<size_t>(Id);
  assert(Index < Table.size() && "invalid builtin id");
  return Table[Index];
}

/// Returns 0 for an exact signature match, 1 for a match requiring
/// promotion, and -1 for no match.
static int matchQuality(const BuiltinInfo &Info,
                        const std::vector<Type> &ArgTypes) {
  if (Info.ParamTypes.size() != ArgTypes.size())
    return -1;
  int Quality = 0;
  for (size_t I = 0; I < ArgTypes.size(); ++I) {
    if (ArgTypes[I] == Info.ParamTypes[I])
      continue;
    if (!isImplicitlyConvertible(ArgTypes[I], Info.ParamTypes[I]))
      return -1;
    Quality = 1;
  }
  return Quality;
}

const BuiltinInfo *dspec::lookupBuiltin(std::string_view Name,
                                        const std::vector<Type> &ArgTypes) {
  const BuiltinInfo *Best = nullptr;
  int BestQuality = 2;
  for (const BuiltinInfo &Info : allBuiltins()) {
    if (Name != Info.Name)
      continue;
    int Quality = matchQuality(Info, ArgTypes);
    if (Quality < 0)
      continue;
    if (Quality == 0)
      return &Info;
    if (Quality < BestQuality) {
      Best = &Info;
      BestQuality = Quality;
    }
  }
  return Best;
}

bool dspec::isBuiltinName(std::string_view Name) {
  for (const BuiltinInfo &Info : allBuiltins())
    if (Name == Info.Name)
      return true;
  return false;
}
