//===- lang/Sema.cpp - Semantic analysis -----------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"
#include "support/StringUtil.h"

using namespace dspec;

VarDecl *Sema::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

bool Sema::declare(VarDecl *Var) {
  assert(!Scopes.empty() && "no active scope");
  auto [It, Inserted] = Scopes.back().emplace(Var->name(), Var);
  (void)It;
  if (!Inserted) {
    Diags.error(Var->loc(),
                "redeclaration of '" + Var->name() + "' in the same scope");
    return false;
  }
  return true;
}

bool Sema::run(Program *Prog) {
  bool OK = true;
  std::unordered_map<std::string, Function *> Seen;
  for (Function *F : Prog->functions()) {
    auto [It, Inserted] = Seen.emplace(F->name(), F);
    (void)It;
    if (!Inserted) {
      Diags.error(F->loc(), "redefinition of function '" + F->name() + "'");
      OK = false;
      continue;
    }
    OK &= runOnFunction(F);
  }
  return OK;
}

bool Sema::runOnFunction(Function *F) {
  CurrentFunction = F;
  Scopes.clear();
  pushScope();

  bool OK = true;
  for (size_t I = 0; I < F->params().size(); ++I) {
    VarDecl *P = F->params()[I];
    P->setParamIndex(static_cast<unsigned>(I));
    OK &= declare(P);
  }
  OK &= checkStmt(F->body());

  popScope();
  CurrentFunction = nullptr;
  return OK && !Diags.hasErrors();
}

bool Sema::requireConvertible(Type From, Type To, SourceLoc Loc,
                              const char *Context) {
  if (isImplicitlyConvertible(From, To))
    return true;
  Diags.error(Loc, formatString("cannot convert '%s' to '%s' %s", From.name(),
                                To.name(), Context));
  return false;
}

bool Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case StmtKind::SK_Block: {
    auto *Block = cast<BlockStmt>(S);
    pushScope();
    bool OK = true;
    for (Stmt *Child : Block->body())
      OK &= checkStmt(Child);
    popScope();
    return OK;
  }
  case StmtKind::SK_Decl: {
    auto *Decl = cast<DeclStmt>(S);
    bool OK = true;
    if (Expr *Init = Decl->init()) {
      OK = checkExpr(Init);
      if (OK)
        OK = requireConvertible(Init->type(), Decl->var()->type(),
                                Init->loc(), "in initialization");
    }
    // Declare after checking the initializer: `int x = x;` is an error.
    OK &= declare(Decl->var());
    return OK;
  }
  case StmtKind::SK_Assign: {
    auto *Assign = cast<AssignStmt>(S);
    VarDecl *Target = lookup(Assign->targetName());
    if (!Target) {
      Diags.error(S->loc(), "assignment to undeclared variable '" +
                                Assign->targetName() + "'");
      return false;
    }
    Assign->setTarget(Target);
    if (!checkExpr(Assign->value()))
      return false;
    return requireConvertible(Assign->value()->type(), Target->type(),
                              Assign->value()->loc(), "in assignment");
  }
  case StmtKind::SK_ExprStmt:
    return checkExpr(cast<ExprStmt>(S)->expr());
  case StmtKind::SK_If: {
    auto *If = cast<IfStmt>(S);
    bool OK = checkExpr(If->cond());
    if (OK && !If->cond()->type().isBool()) {
      Diags.error(If->cond()->loc(),
                  formatString("if condition must be 'bool', found '%s'",
                               If->cond()->type().name()));
      OK = false;
    }
    OK &= checkStmt(If->thenStmt());
    if (If->elseStmt())
      OK &= checkStmt(If->elseStmt());
    return OK;
  }
  case StmtKind::SK_While: {
    auto *While = cast<WhileStmt>(S);
    bool OK = checkExpr(While->cond());
    if (OK && !While->cond()->type().isBool()) {
      Diags.error(While->cond()->loc(),
                  formatString("while condition must be 'bool', found '%s'",
                               While->cond()->type().name()));
      OK = false;
    }
    OK &= checkStmt(While->body());
    return OK;
  }
  case StmtKind::SK_Return: {
    auto *Ret = cast<ReturnStmt>(S);
    Type RetType = CurrentFunction->returnType();
    if (!Ret->value()) {
      if (RetType.isVoid())
        return true;
      Diags.error(S->loc(), formatString("non-void function '%s' must return "
                                         "a value",
                                         CurrentFunction->name().c_str()));
      return false;
    }
    if (!checkExpr(Ret->value()))
      return false;
    if (RetType.isVoid()) {
      Diags.error(S->loc(), "void function may not return a value");
      return false;
    }
    return requireConvertible(Ret->value()->type(), RetType,
                              Ret->value()->loc(), "in return statement");
  }
  }
  return false;
}

bool Sema::checkBinary(BinaryExpr *Bin) {
  Type L = Bin->lhs()->type();
  Type R = Bin->rhs()->type();
  BinaryOp Op = Bin->op();
  SourceLoc Loc = Bin->loc();

  auto Fail = [&]() {
    Diags.error(Loc, formatString("invalid operands to '%s' ('%s' and '%s')",
                                  binaryOpSpelling(Op), L.name(), R.name()));
    return false;
  };

  switch (Op) {
  case BinaryOp::BO_Add:
  case BinaryOp::BO_Sub:
    if (L.isNumericScalar() && R.isNumericScalar()) {
      Bin->setType(promoteNumeric(L, R));
      return true;
    }
    if (L.isVector() && L == R) {
      Bin->setType(L);
      return true;
    }
    return Fail();
  case BinaryOp::BO_Mul:
  case BinaryOp::BO_Div:
    if (L.isNumericScalar() && R.isNumericScalar()) {
      Bin->setType(promoteNumeric(L, R));
      return true;
    }
    if (L.isVector() && L == R) {
      Bin->setType(L);
      return true;
    }
    if (L.isVector() && R.isNumericScalar()) {
      Bin->setType(L);
      return true;
    }
    if (Op == BinaryOp::BO_Mul && L.isNumericScalar() && R.isVector()) {
      Bin->setType(R);
      return true;
    }
    return Fail();
  case BinaryOp::BO_Mod:
    if (L.isInt() && R.isInt()) {
      Bin->setType(Type::intTy());
      return true;
    }
    return Fail();
  case BinaryOp::BO_Lt:
  case BinaryOp::BO_Le:
  case BinaryOp::BO_Gt:
  case BinaryOp::BO_Ge:
    if (L.isNumericScalar() && R.isNumericScalar()) {
      Bin->setType(Type::boolTy());
      return true;
    }
    return Fail();
  case BinaryOp::BO_Eq:
  case BinaryOp::BO_Ne:
    if ((L.isNumericScalar() && R.isNumericScalar()) ||
        (L.isBool() && R.isBool())) {
      Bin->setType(Type::boolTy());
      return true;
    }
    return Fail();
  case BinaryOp::BO_And:
  case BinaryOp::BO_Or:
    if (L.isBool() && R.isBool()) {
      Bin->setType(Type::boolTy());
      return true;
    }
    return Fail();
  }
  return Fail();
}

bool Sema::checkCall(CallExpr *Call) {
  std::vector<Type> ArgTypes;
  ArgTypes.reserve(Call->args().size());
  for (Expr *Arg : Call->args())
    ArgTypes.push_back(Arg->type());

  const BuiltinInfo *Info = lookupBuiltin(Call->callee(), ArgTypes);
  if (!Info) {
    if (isBuiltinName(Call->callee())) {
      std::vector<std::string> Names;
      for (Type T : ArgTypes)
        Names.push_back(T.name());
      Diags.error(Call->loc(),
                  formatString("no overload of '%s' matches (%s)",
                               Call->callee().c_str(),
                               joinStrings(Names, ", ").c_str()));
    } else {
      Diags.error(Call->loc(), "call to unknown function '" + Call->callee() +
                                   "' (dsc fragments may only call builtin "
                                   "library functions)");
    }
    return false;
  }
  Call->setBuiltin(Info->Id);
  Call->setType(Info->ResultType);
  return true;
}

bool Sema::checkExpr(Expr *E) {
  switch (E->kind()) {
  case ExprKind::EK_IntLiteral:
    E->setType(Type::intTy());
    return true;
  case ExprKind::EK_FloatLiteral:
    E->setType(Type::floatTy());
    return true;
  case ExprKind::EK_BoolLiteral:
    E->setType(Type::boolTy());
    return true;
  case ExprKind::EK_VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    VarDecl *Decl = lookup(Ref->name());
    if (!Decl) {
      Diags.error(E->loc(),
                  "reference to undeclared variable '" + Ref->name() + "'");
      return false;
    }
    Ref->setDecl(Decl);
    Ref->setType(Decl->type());
    return true;
  }
  case ExprKind::EK_Unary: {
    auto *Unary = cast<UnaryExpr>(E);
    if (!checkExpr(Unary->operand()))
      return false;
    Type T = Unary->operand()->type();
    if (Unary->op() == UnaryOp::UO_Neg) {
      if (!T.isNumeric()) {
        Diags.error(E->loc(), formatString("cannot negate a value of type "
                                           "'%s'",
                                           T.name()));
        return false;
      }
      E->setType(T);
      return true;
    }
    if (!T.isBool()) {
      Diags.error(E->loc(),
                  formatString("operand of '!' must be 'bool', found '%s'",
                               T.name()));
      return false;
    }
    E->setType(Type::boolTy());
    return true;
  }
  case ExprKind::EK_Binary: {
    auto *Bin = cast<BinaryExpr>(E);
    if (!checkExpr(Bin->lhs()) || !checkExpr(Bin->rhs()))
      return false;
    return checkBinary(Bin);
  }
  case ExprKind::EK_Cond: {
    auto *Cond = cast<CondExpr>(E);
    if (!checkExpr(Cond->cond()) || !checkExpr(Cond->trueExpr()) ||
        !checkExpr(Cond->falseExpr()))
      return false;
    if (!Cond->cond()->type().isBool()) {
      Diags.error(Cond->cond()->loc(),
                  formatString("'?:' condition must be 'bool', found '%s'",
                               Cond->cond()->type().name()));
      return false;
    }
    Type TrueType = Cond->trueExpr()->type();
    Type FalseType = Cond->falseExpr()->type();
    if (TrueType == FalseType) {
      E->setType(TrueType);
      return true;
    }
    if (TrueType.isNumericScalar() && FalseType.isNumericScalar()) {
      E->setType(promoteNumeric(TrueType, FalseType));
      return true;
    }
    Diags.error(E->loc(), formatString("'?:' arms have mismatched types "
                                       "('%s' and '%s')",
                                       TrueType.name(), FalseType.name()));
    return false;
  }
  case ExprKind::EK_Call: {
    auto *Call = cast<CallExpr>(E);
    for (Expr *Arg : Call->args())
      if (!checkExpr(Arg))
        return false;
    return checkCall(Call);
  }
  case ExprKind::EK_Member: {
    auto *Member = cast<MemberExpr>(E);
    if (!checkExpr(Member->base()))
      return false;
    Type BaseType = Member->base()->type();
    if (!BaseType.isVector()) {
      Diags.error(E->loc(),
                  formatString("component access on non-vector type '%s'",
                               BaseType.name()));
      return false;
    }
    if (Member->componentIndex() >= BaseType.vectorWidth()) {
      Diags.error(E->loc(),
                  formatString("vector of type '%s' has no component '%c'",
                               BaseType.name(), Member->componentName()));
      return false;
    }
    E->setType(Type::floatTy());
    return true;
  }
  case ExprKind::EK_CacheRead:
  case ExprKind::EK_CacheStore:
    // Only the splitter creates these, with types already assigned; they
    // never reach Sema.
    assert(false && "cache access nodes cannot appear in parsed source");
    return false;
  }
  return false;
}
