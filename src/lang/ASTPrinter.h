//===- lang/ASTPrinter.h - C-like pretty printer ----------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints dsc ASTs back to C-like source. Cache accesses print in
/// the paper's Figure 2 notation: `cache->slotN` for reads and
/// `cache->slotN = (...)` for loader-side stores. Printing a specialized
/// function therefore yields exactly the style of loader/reader listing
/// the paper shows.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_ASTPRINTER_H
#define DATASPEC_LANG_ASTPRINTER_H

#include "lang/Function.h"

#include <string>

namespace dspec {

/// Pretty-printer options.
struct PrintOptions {
  /// Number of spaces per indentation level.
  unsigned IndentWidth = 2;
  /// When true, a `/* phi */` marker is printed after assignments inserted
  /// by the join-normalization pass.
  bool AnnotatePhiCopies = false;
};

/// Renders \p F as C-like source.
std::string printFunction(const Function *F, PrintOptions Options = {});

/// Renders one statement subtree.
std::string printStmt(const Stmt *S, PrintOptions Options = {});

/// Renders one expression.
std::string printExpr(const Expr *E);

} // namespace dspec

#endif // DATASPEC_LANG_ASTPRINTER_H
