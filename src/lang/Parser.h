//===- lang/Parser.h - dsc parser -------------------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for dsc. Produces an AST in a caller-provided
/// ASTContext. Two constructs are desugared on the way in so downstream
/// analyses see a minimal statement language:
///
///   for (init; cond; step) body   =>   { init; while (cond) { body step } }
///   x op= e                       =>   x = x op e
///
/// On syntax errors the parser reports diagnostics and recovers at
/// statement boundaries; the caller must check the DiagnosticEngine before
/// trusting the result.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_PARSER_H
#define DATASPEC_LANG_PARSER_H

#include "lang/ASTContext.h"
#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string_view>
#include <vector>

namespace dspec {

/// Parses dsc source text into a Program.
class Parser {
public:
  Parser(std::string_view Source, ASTContext &Ctx, DiagnosticEngine &Diags);

  /// Parses a whole compilation unit. Returns a Program (possibly partial
  /// when errors occurred — check the diagnostics).
  Program *parseProgram();

  /// Parses a single expression (used by tests and tools).
  Expr *parseExpression();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void syncToStatement();

  std::optional<Type> parseTypeName();
  Function *parseFunction();
  BlockStmt *parseBlock();
  Stmt *parseStatement();
  Stmt *parseDeclStatement(Type DeclType, bool ConsumeSemi);
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseFor();
  Stmt *parseReturn();
  Stmt *parseExprOrAssign(bool ConsumeSemi);
  Stmt *parseSimpleStatement(bool ConsumeSemi);

  Expr *parseTernary();
  Expr *parseBinary(int MinPrecedence);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  ASTContext &Ctx;
  DiagnosticEngine &Diags;
};

} // namespace dspec

#endif // DATASPEC_LANG_PARSER_H
