//===- lang/Lexer.h - dsc lexer ---------------------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for dsc. Supports `//` line comments and `/* */`
/// block comments, decimal int and float literals (optional `f` suffix),
/// and the operators listed in Token.h. Malformed input yields TK_Error
/// tokens plus diagnostics; the lexer always terminates with TK_EOF.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_LEXER_H
#define DATASPEC_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <string_view>
#include <vector>

namespace dspec {

/// Converts dsc source text into a token stream.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes the next token.
  Token next();

  /// Lexes the entire input (convenience for the parser and tests). The
  /// final token is always TK_EOF.
  std::vector<Token> lexAll();

private:
  char peek(unsigned Ahead = 0) const {
    size_t Index = Pos + Ahead;
    return Index < Source.size() ? Source[Index] : '\0';
  }
  char advance();
  bool match(char Expected);
  void skipTrivia();

  Token makeToken(TokenKind Kind, SourceLoc Loc) const;
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifier(SourceLoc Loc);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace dspec

#endif // DATASPEC_LANG_LEXER_H
