//===- lang/ASTPrinter.cpp - C-like pretty printer -------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/ASTPrinter.h"

#include "lang/ASTWalk.h"
#include "support/Casting.h"
#include "support/StringUtil.h"

using namespace dspec;

namespace {

/// Precedence levels used to decide parenthesization; mirrors the parser.
enum Precedence {
  PrecLowest = 0,
  PrecCond = 1,
  PrecOr = 2,
  PrecAnd = 3,
  PrecEquality = 4,
  PrecRelational = 5,
  PrecAdditive = 6,
  PrecMultiplicative = 7,
  PrecUnary = 8,
  PrecPostfix = 9,
};

int binaryPrecedence(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::BO_Or:
    return PrecOr;
  case BinaryOp::BO_And:
    return PrecAnd;
  case BinaryOp::BO_Eq:
  case BinaryOp::BO_Ne:
    return PrecEquality;
  case BinaryOp::BO_Lt:
  case BinaryOp::BO_Le:
  case BinaryOp::BO_Gt:
  case BinaryOp::BO_Ge:
    return PrecRelational;
  case BinaryOp::BO_Add:
  case BinaryOp::BO_Sub:
    return PrecAdditive;
  case BinaryOp::BO_Mul:
  case BinaryOp::BO_Div:
  case BinaryOp::BO_Mod:
    return PrecMultiplicative;
  }
  return PrecLowest;
}

class PrinterImpl {
public:
  PrinterImpl(PrintOptions Options) : Options(Options) {}

  std::string Out;

  void printExpr(const Expr *E, int ParentPrecedence) {
    switch (E->kind()) {
    case ExprKind::EK_IntLiteral:
      Out += std::to_string(cast<IntLiteralExpr>(E)->value());
      return;
    case ExprKind::EK_FloatLiteral:
      Out += formatFloat(cast<FloatLiteralExpr>(E)->value());
      return;
    case ExprKind::EK_BoolLiteral:
      Out += cast<BoolLiteralExpr>(E)->value() ? "true" : "false";
      return;
    case ExprKind::EK_VarRef:
      Out += cast<VarRefExpr>(E)->name();
      return;
    case ExprKind::EK_Unary: {
      const auto *U = cast<UnaryExpr>(E);
      bool Paren = ParentPrecedence > PrecUnary;
      if (Paren)
        Out += '(';
      Out += U->op() == UnaryOp::UO_Neg ? '-' : '!';
      printExpr(U->operand(), PrecUnary);
      if (Paren)
        Out += ')';
      return;
    }
    case ExprKind::EK_Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int Prec = binaryPrecedence(B->op());
      bool Paren = ParentPrecedence > Prec;
      if (Paren)
        Out += '(';
      printExpr(B->lhs(), Prec);
      Out += ' ';
      Out += binaryOpSpelling(B->op());
      Out += ' ';
      // Left-associative: the right child needs one level more.
      printExpr(B->rhs(), Prec + 1);
      if (Paren)
        Out += ')';
      return;
    }
    case ExprKind::EK_Cond: {
      const auto *C = cast<CondExpr>(E);
      bool Paren = ParentPrecedence > PrecCond;
      if (Paren)
        Out += '(';
      printExpr(C->cond(), PrecCond + 1);
      Out += " ? ";
      printExpr(C->trueExpr(), PrecLowest);
      Out += " : ";
      printExpr(C->falseExpr(), PrecCond);
      if (Paren)
        Out += ')';
      return;
    }
    case ExprKind::EK_Call: {
      const auto *Call = cast<CallExpr>(E);
      Out += Call->callee();
      Out += '(';
      for (size_t I = 0; I < Call->args().size(); ++I) {
        if (I != 0)
          Out += ", ";
        printExpr(Call->args()[I], PrecLowest);
      }
      Out += ')';
      return;
    }
    case ExprKind::EK_Member: {
      const auto *M = cast<MemberExpr>(E);
      printExpr(M->base(), PrecPostfix);
      Out += '.';
      Out += M->componentName();
      return;
    }
    case ExprKind::EK_CacheRead:
      Out += "cache->slot" + std::to_string(cast<CacheReadExpr>(E)->slot());
      return;
    case ExprKind::EK_CacheStore: {
      const auto *Store = cast<CacheStoreExpr>(E);
      Out += "(cache->slot" + std::to_string(Store->slot()) + " = ";
      printExpr(Store->operand(), PrecLowest);
      Out += ')';
      return;
    }
    }
  }

  void indent() { Out.append(Level * Options.IndentWidth, ' '); }

  void printStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::SK_Block: {
      indent();
      Out += "{\n";
      ++Level;
      for (const Stmt *Child : cast<BlockStmt>(S)->body())
        printStmt(Child);
      --Level;
      indent();
      Out += "}\n";
      return;
    }
    case StmtKind::SK_Decl: {
      const auto *Decl = cast<DeclStmt>(S);
      indent();
      Out += Decl->var()->type().name();
      Out += ' ';
      Out += Decl->var()->name();
      if (Decl->init()) {
        Out += " = ";
        printExpr(Decl->init(), PrecLowest);
      }
      Out += ";\n";
      return;
    }
    case StmtKind::SK_Assign: {
      const auto *Assign = cast<AssignStmt>(S);
      indent();
      Out += Assign->targetName();
      Out += " = ";
      printExpr(Assign->value(), PrecLowest);
      Out += ';';
      if (Options.AnnotatePhiCopies && Assign->isPhiCopy())
        Out += " /* phi */";
      Out += '\n';
      return;
    }
    case StmtKind::SK_ExprStmt: {
      indent();
      printExpr(cast<ExprStmt>(S)->expr(), PrecLowest);
      Out += ";\n";
      return;
    }
    case StmtKind::SK_If: {
      const auto *If = cast<IfStmt>(S);
      indent();
      Out += "if (";
      printExpr(If->cond(), PrecLowest);
      Out += ")\n";
      printNested(If->thenStmt());
      if (If->elseStmt()) {
        indent();
        Out += "else\n";
        printNested(If->elseStmt());
      }
      return;
    }
    case StmtKind::SK_While: {
      const auto *While = cast<WhileStmt>(S);
      indent();
      Out += "while (";
      printExpr(While->cond(), PrecLowest);
      Out += ")\n";
      printNested(While->body());
      return;
    }
    case StmtKind::SK_Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      indent();
      Out += "return";
      if (Ret->value()) {
        Out += ' ';
        printExpr(Ret->value(), PrecLowest);
      }
      Out += ";\n";
      return;
    }
    }
  }

  /// Prints a statement nested under a control construct: blocks stay at
  /// the current level, other statements get one extra indent.
  void printNested(const Stmt *S) {
    if (isa<BlockStmt>(S)) {
      printStmt(S);
      return;
    }
    ++Level;
    printStmt(S);
    --Level;
  }

  void printFunction(const Function *F) {
    Out += F->returnType().name();
    Out += ' ';
    Out += F->name();
    Out += '(';
    for (size_t I = 0; I < F->params().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += F->params()[I]->type().name();
      Out += ' ';
      Out += F->params()[I]->name();
    }
    // Loaders and readers take the cache as an extra argument; show it in
    // the signature the way the paper's Figure 2 does.
    if (usesCache(F)) {
      if (!F->params().empty())
        Out += ", ";
      Out += "cache";
    }
    Out += ")\n";
    printStmt(F->body());
  }

  static bool usesCache(const Function *F) {
    bool Uses = false;
    walkExprsInStmt(const_cast<BlockStmt *>(
                        static_cast<const BlockStmt *>(F->body())),
                    [&](Expr *E) {
                      if (isa<CacheReadExpr>(E) || isa<CacheStoreExpr>(E))
                        Uses = true;
                    });
    return Uses;
  }

private:
  PrintOptions Options;
  unsigned Level = 0;
};

} // namespace

std::string dspec::printFunction(const Function *F, PrintOptions Options) {
  PrinterImpl P(Options);
  P.printFunction(F);
  return std::move(P.Out);
}

std::string dspec::printStmt(const Stmt *S, PrintOptions Options) {
  PrinterImpl P(Options);
  P.printStmt(S);
  return std::move(P.Out);
}

std::string dspec::printExpr(const Expr *E) {
  PrinterImpl P(PrintOptions{});
  P.printExpr(E, 0);
  return std::move(P.Out);
}
