//===- lang/Parser.cpp - dsc parser ----------------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/Casting.h"

#include <cassert>

using namespace dspec;

Parser::Parser(std::string_view Source, ASTContext &Ctx,
               DiagnosticEngine &Diags)
    : Ctx(Ctx), Diags(Diags) {
  Lexer Lex(Source, Diags);
  Tokens = Lex.lexAll();
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EOF token
  return Tokens[Index];
}

Token Parser::consume() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::syncToStatement() {
  while (!check(TokenKind::TK_EOF)) {
    if (accept(TokenKind::TK_Semi))
      return;
    if (check(TokenKind::TK_RBrace) || check(TokenKind::TK_LBrace))
      return;
    consume();
  }
}

std::optional<Type> Parser::parseTypeName() {
  switch (current().Kind) {
  case TokenKind::TK_KwVoid:
    consume();
    return Type::voidTy();
  case TokenKind::TK_KwBool:
    consume();
    return Type::boolTy();
  case TokenKind::TK_KwInt:
    consume();
    return Type::intTy();
  case TokenKind::TK_KwFloat:
    consume();
    return Type::floatTy();
  case TokenKind::TK_KwVec2:
    consume();
    return Type::vec2Ty();
  case TokenKind::TK_KwVec3:
    consume();
    return Type::vec3Ty();
  case TokenKind::TK_KwVec4:
    consume();
    return Type::vec4Ty();
  default:
    return std::nullopt;
  }
}

/// True if the token begins a type name.
static bool isTypeToken(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::TK_KwVoid:
  case TokenKind::TK_KwBool:
  case TokenKind::TK_KwInt:
  case TokenKind::TK_KwFloat:
  case TokenKind::TK_KwVec2:
  case TokenKind::TK_KwVec3:
  case TokenKind::TK_KwVec4:
    return true;
  default:
    return false;
  }
}

Program *Parser::parseProgram() {
  Program *Prog = Ctx.createTopLevel<Program>();
  while (!check(TokenKind::TK_EOF)) {
    if (Function *F = parseFunction()) {
      Prog->addFunction(F);
      continue;
    }
    // Error recovery: skip one token and retry.
    if (!check(TokenKind::TK_EOF))
      consume();
  }
  return Prog;
}

Function *Parser::parseFunction() {
  SourceLoc Loc = current().Loc;
  std::optional<Type> RetType = parseTypeName();
  if (!RetType) {
    Diags.error(Loc, "expected a return type to begin a function definition");
    return nullptr;
  }

  if (!check(TokenKind::TK_Identifier)) {
    Diags.error(current().Loc, "expected function name");
    return nullptr;
  }
  std::string Name = consume().Text;

  if (!expect(TokenKind::TK_LParen, "after function name"))
    return nullptr;

  std::vector<VarDecl *> Params;
  if (!check(TokenKind::TK_RParen)) {
    do {
      SourceLoc ParamLoc = current().Loc;
      std::optional<Type> ParamType = parseTypeName();
      if (!ParamType) {
        Diags.error(ParamLoc, "expected parameter type");
        return nullptr;
      }
      if (ParamType->isVoid()) {
        Diags.error(ParamLoc, "parameters may not have type 'void'");
        return nullptr;
      }
      if (!check(TokenKind::TK_Identifier)) {
        Diags.error(current().Loc, "expected parameter name");
        return nullptr;
      }
      std::string ParamName = consume().Text;
      Params.push_back(Ctx.createVarDecl(VarDecl::DeclKind::DK_Param,
                                         std::move(ParamName), *ParamType,
                                         ParamLoc));
    } while (accept(TokenKind::TK_Comma));
  }
  if (!expect(TokenKind::TK_RParen, "to close the parameter list"))
    return nullptr;

  if (!check(TokenKind::TK_LBrace)) {
    Diags.error(current().Loc, "expected '{' to begin function body");
    return nullptr;
  }
  BlockStmt *Body = parseBlock();
  if (!Body)
    return nullptr;

  return Ctx.createTopLevel<Function>(std::move(Name), *RetType,
                                      std::move(Params), Body, Loc);
}

BlockStmt *Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  if (!expect(TokenKind::TK_LBrace, "to begin a block"))
    return nullptr;
  std::vector<Stmt *> Body;
  while (!check(TokenKind::TK_RBrace) && !check(TokenKind::TK_EOF)) {
    if (Stmt *S = parseStatement()) {
      Body.push_back(S);
    } else {
      syncToStatement();
    }
  }
  expect(TokenKind::TK_RBrace, "to close the block");
  return Ctx.create<BlockStmt>(std::move(Body), Loc);
}

Stmt *Parser::parseStatement() {
  switch (current().Kind) {
  case TokenKind::TK_LBrace:
    return parseBlock();
  case TokenKind::TK_KwIf:
    return parseIf();
  case TokenKind::TK_KwWhile:
    return parseWhile();
  case TokenKind::TK_KwFor:
    return parseFor();
  case TokenKind::TK_KwReturn:
    return parseReturn();
  default:
    break;
  }
  if (isTypeToken(current().Kind)) {
    std::optional<Type> DeclType = parseTypeName();
    assert(DeclType && "isTypeToken / parseTypeName mismatch");
    return parseDeclStatement(*DeclType, /*ConsumeSemi=*/true);
  }
  return parseExprOrAssign(/*ConsumeSemi=*/true);
}

Stmt *Parser::parseDeclStatement(Type DeclType, bool ConsumeSemi) {
  SourceLoc Loc = current().Loc;
  if (DeclType.isVoid()) {
    Diags.error(Loc, "variables may not have type 'void'");
    return nullptr;
  }
  if (!check(TokenKind::TK_Identifier)) {
    Diags.error(current().Loc, "expected variable name in declaration");
    return nullptr;
  }
  std::string Name = consume().Text;

  Expr *Init = nullptr;
  if (accept(TokenKind::TK_Assign)) {
    Init = parseExpression();
    if (!Init)
      return nullptr;
  }
  if (ConsumeSemi && !expect(TokenKind::TK_Semi, "after declaration"))
    return nullptr;

  VarDecl *Var = Ctx.createVarDecl(VarDecl::DeclKind::DK_Local,
                                   std::move(Name), DeclType, Loc);
  return Ctx.create<DeclStmt>(Var, Init, Loc);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = consume().Loc; // 'if'
  if (!expect(TokenKind::TK_LParen, "after 'if'"))
    return nullptr;
  Expr *Cond = parseExpression();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::TK_RParen, "after if condition"))
    return nullptr;
  Stmt *Then = parseStatement();
  if (!Then)
    return nullptr;
  Stmt *Else = nullptr;
  if (accept(TokenKind::TK_KwElse)) {
    Else = parseStatement();
    if (!Else)
      return nullptr;
  }
  return Ctx.create<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = consume().Loc; // 'while'
  if (!expect(TokenKind::TK_LParen, "after 'while'"))
    return nullptr;
  Expr *Cond = parseExpression();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::TK_RParen, "after while condition"))
    return nullptr;
  Stmt *Body = parseStatement();
  if (!Body)
    return nullptr;
  return Ctx.create<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseSimpleStatement(bool ConsumeSemi) {
  if (isTypeToken(current().Kind)) {
    std::optional<Type> DeclType = parseTypeName();
    assert(DeclType && "isTypeToken / parseTypeName mismatch");
    return parseDeclStatement(*DeclType, ConsumeSemi);
  }
  return parseExprOrAssign(ConsumeSemi);
}

Stmt *Parser::parseFor() {
  // Desugars to { init; while (cond) { body; step; } }.
  SourceLoc Loc = consume().Loc; // 'for'
  if (!expect(TokenKind::TK_LParen, "after 'for'"))
    return nullptr;

  Stmt *Init = nullptr;
  if (!check(TokenKind::TK_Semi)) {
    Init = parseSimpleStatement(/*ConsumeSemi=*/false);
    if (!Init)
      return nullptr;
  }
  if (!expect(TokenKind::TK_Semi, "after for-loop initializer"))
    return nullptr;

  Expr *Cond = nullptr;
  if (!check(TokenKind::TK_Semi)) {
    Cond = parseExpression();
    if (!Cond)
      return nullptr;
  } else {
    Cond = Ctx.create<BoolLiteralExpr>(true, Loc);
  }
  if (!expect(TokenKind::TK_Semi, "after for-loop condition"))
    return nullptr;

  Stmt *Step = nullptr;
  if (!check(TokenKind::TK_RParen)) {
    Step = parseExprOrAssign(/*ConsumeSemi=*/false);
    if (!Step)
      return nullptr;
  }
  if (!expect(TokenKind::TK_RParen, "to close the for-loop header"))
    return nullptr;

  Stmt *Body = parseStatement();
  if (!Body)
    return nullptr;

  std::vector<Stmt *> LoopBody;
  LoopBody.push_back(Body);
  if (Step)
    LoopBody.push_back(Step);
  Stmt *While = Ctx.create<WhileStmt>(
      Cond, Ctx.create<BlockStmt>(std::move(LoopBody), Loc), Loc);

  std::vector<Stmt *> Outer;
  if (Init)
    Outer.push_back(Init);
  Outer.push_back(While);
  return Ctx.create<BlockStmt>(std::move(Outer), Loc);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = consume().Loc; // 'return'
  Expr *Value = nullptr;
  if (!check(TokenKind::TK_Semi)) {
    Value = parseExpression();
    if (!Value)
      return nullptr;
  }
  if (!expect(TokenKind::TK_Semi, "after return statement"))
    return nullptr;
  return Ctx.create<ReturnStmt>(Value, Loc);
}

/// Maps a compound-assignment token to the underlying binary operator.
static std::optional<BinaryOp> compoundAssignOp(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::TK_PlusAssign:
    return BinaryOp::BO_Add;
  case TokenKind::TK_MinusAssign:
    return BinaryOp::BO_Sub;
  case TokenKind::TK_StarAssign:
    return BinaryOp::BO_Mul;
  case TokenKind::TK_SlashAssign:
    return BinaryOp::BO_Div;
  default:
    return std::nullopt;
  }
}

Stmt *Parser::parseExprOrAssign(bool ConsumeSemi) {
  SourceLoc Loc = current().Loc;

  // Assignment: identifier followed by an assignment operator.
  if (check(TokenKind::TK_Identifier)) {
    TokenKind NextKind = peek(1).Kind;
    bool IsAssign = NextKind == TokenKind::TK_Assign ||
                    compoundAssignOp(NextKind).has_value();
    if (IsAssign) {
      std::string Name = consume().Text;
      Token OpTok = consume();
      Expr *Value = parseExpression();
      if (!Value)
        return nullptr;
      if (auto Op = compoundAssignOp(OpTok.Kind)) {
        // x op= e  =>  x = x op e
        Expr *Ref = Ctx.create<VarRefExpr>(Name, Loc);
        Value = Ctx.create<BinaryExpr>(*Op, Ref, Value, OpTok.Loc);
      }
      if (ConsumeSemi && !expect(TokenKind::TK_Semi, "after assignment"))
        return nullptr;
      return Ctx.create<AssignStmt>(std::move(Name), Value, Loc);
    }
  }

  Expr *E = parseExpression();
  if (!E)
    return nullptr;
  if (ConsumeSemi && !expect(TokenKind::TK_Semi, "after expression"))
    return nullptr;
  return Ctx.create<ExprStmt>(E, Loc);
}

Expr *Parser::parseExpression() { return parseTernary(); }

Expr *Parser::parseTernary() {
  Expr *Cond = parseBinary(0);
  if (!Cond)
    return nullptr;
  if (!accept(TokenKind::TK_Question))
    return Cond;
  Expr *TrueExpr = parseExpression();
  if (!TrueExpr)
    return nullptr;
  if (!expect(TokenKind::TK_Colon, "in conditional expression"))
    return nullptr;
  Expr *FalseExpr = parseTernary();
  if (!FalseExpr)
    return nullptr;
  return Ctx.create<CondExpr>(Cond, TrueExpr, FalseExpr, Cond->loc());
}

namespace {
struct BinOpInfo {
  BinaryOp Op;
  int Precedence;
};
} // namespace

/// Binary operator precedence (higher binds tighter).
static std::optional<BinOpInfo> binOpInfo(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::TK_PipePipe:
    return BinOpInfo{BinaryOp::BO_Or, 1};
  case TokenKind::TK_AmpAmp:
    return BinOpInfo{BinaryOp::BO_And, 2};
  case TokenKind::TK_EqEq:
    return BinOpInfo{BinaryOp::BO_Eq, 3};
  case TokenKind::TK_NotEq:
    return BinOpInfo{BinaryOp::BO_Ne, 3};
  case TokenKind::TK_Less:
    return BinOpInfo{BinaryOp::BO_Lt, 4};
  case TokenKind::TK_LessEq:
    return BinOpInfo{BinaryOp::BO_Le, 4};
  case TokenKind::TK_Greater:
    return BinOpInfo{BinaryOp::BO_Gt, 4};
  case TokenKind::TK_GreaterEq:
    return BinOpInfo{BinaryOp::BO_Ge, 4};
  case TokenKind::TK_Plus:
    return BinOpInfo{BinaryOp::BO_Add, 5};
  case TokenKind::TK_Minus:
    return BinOpInfo{BinaryOp::BO_Sub, 5};
  case TokenKind::TK_Star:
    return BinOpInfo{BinaryOp::BO_Mul, 6};
  case TokenKind::TK_Slash:
    return BinOpInfo{BinaryOp::BO_Div, 6};
  case TokenKind::TK_Percent:
    return BinOpInfo{BinaryOp::BO_Mod, 6};
  default:
    return std::nullopt;
  }
}

Expr *Parser::parseBinary(int MinPrecedence) {
  Expr *LHS = parseUnary();
  if (!LHS)
    return nullptr;
  while (true) {
    auto Info = binOpInfo(current().Kind);
    if (!Info || Info->Precedence < MinPrecedence)
      return LHS;
    SourceLoc OpLoc = consume().Loc;
    Expr *RHS = parseBinary(Info->Precedence + 1);
    if (!RHS)
      return nullptr;
    LHS = Ctx.create<BinaryExpr>(Info->Op, LHS, RHS, OpLoc);
  }
}

Expr *Parser::parseUnary() {
  if (check(TokenKind::TK_Minus)) {
    SourceLoc Loc = consume().Loc;
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<UnaryExpr>(UnaryOp::UO_Neg, Operand, Loc);
  }
  if (check(TokenKind::TK_Bang)) {
    SourceLoc Loc = consume().Loc;
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<UnaryExpr>(UnaryOp::UO_Not, Operand, Loc);
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  while (accept(TokenKind::TK_Dot)) {
    SourceLoc Loc = current().Loc;
    if (!check(TokenKind::TK_Identifier) || current().Text.size() != 1) {
      Diags.error(Loc, "expected vector component ('x', 'y', 'z', or 'w')");
      return nullptr;
    }
    char Component = consume().Text[0];
    const char *Components = "xyzw";
    const char *Found = nullptr;
    for (const char *P = Components; *P; ++P)
      if (*P == Component)
        Found = P;
    if (!Found) {
      Diags.error(Loc, std::string("unknown vector component '") + Component +
                           "'");
      return nullptr;
    }
    E = Ctx.create<MemberExpr>(E, static_cast<unsigned>(Found - Components),
                               Loc);
  }
  return E;
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::TK_IntLiteral: {
    Token T = consume();
    return Ctx.create<IntLiteralExpr>(T.IntValue, Loc);
  }
  case TokenKind::TK_FloatLiteral: {
    Token T = consume();
    return Ctx.create<FloatLiteralExpr>(T.FloatValue, Loc);
  }
  case TokenKind::TK_KwTrue:
    consume();
    return Ctx.create<BoolLiteralExpr>(true, Loc);
  case TokenKind::TK_KwFalse:
    consume();
    return Ctx.create<BoolLiteralExpr>(false, Loc);
  case TokenKind::TK_LParen: {
    consume();
    Expr *E = parseExpression();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::TK_RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  // Vector constructors are calls spelled with type keywords.
  case TokenKind::TK_KwVec2:
  case TokenKind::TK_KwVec3:
  case TokenKind::TK_KwVec4:
  case TokenKind::TK_Identifier: {
    std::string Name;
    if (current().Kind == TokenKind::TK_Identifier) {
      Name = consume().Text;
    } else {
      Name = (current().Kind == TokenKind::TK_KwVec2)   ? "vec2"
             : (current().Kind == TokenKind::TK_KwVec3) ? "vec3"
                                                        : "vec4";
      consume();
      if (!check(TokenKind::TK_LParen)) {
        Diags.error(current().Loc,
                    "expected '(' after vector constructor name");
        return nullptr;
      }
    }
    if (!check(TokenKind::TK_LParen))
      return Ctx.create<VarRefExpr>(std::move(Name), Loc);
    consume(); // '('
    std::vector<Expr *> Args;
    if (!check(TokenKind::TK_RParen)) {
      do {
        Expr *Arg = parseExpression();
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
      } while (accept(TokenKind::TK_Comma));
    }
    if (!expect(TokenKind::TK_RParen, "to close the argument list"))
      return nullptr;
    return Ctx.create<CallExpr>(std::move(Name), std::move(Args), Loc);
  }
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(current().Kind));
    return nullptr;
  }
}
