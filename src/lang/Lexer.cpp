//===- lang/Lexer.cpp - dsc lexer ------------------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace dspec;

const char *dspec::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::TK_EOF:
    return "end of input";
  case TokenKind::TK_Error:
    return "invalid token";
  case TokenKind::TK_Identifier:
    return "identifier";
  case TokenKind::TK_IntLiteral:
    return "integer literal";
  case TokenKind::TK_FloatLiteral:
    return "float literal";
  case TokenKind::TK_KwVoid:
    return "'void'";
  case TokenKind::TK_KwBool:
    return "'bool'";
  case TokenKind::TK_KwInt:
    return "'int'";
  case TokenKind::TK_KwFloat:
    return "'float'";
  case TokenKind::TK_KwVec2:
    return "'vec2'";
  case TokenKind::TK_KwVec3:
    return "'vec3'";
  case TokenKind::TK_KwVec4:
    return "'vec4'";
  case TokenKind::TK_KwIf:
    return "'if'";
  case TokenKind::TK_KwElse:
    return "'else'";
  case TokenKind::TK_KwWhile:
    return "'while'";
  case TokenKind::TK_KwFor:
    return "'for'";
  case TokenKind::TK_KwReturn:
    return "'return'";
  case TokenKind::TK_KwTrue:
    return "'true'";
  case TokenKind::TK_KwFalse:
    return "'false'";
  case TokenKind::TK_LParen:
    return "'('";
  case TokenKind::TK_RParen:
    return "')'";
  case TokenKind::TK_LBrace:
    return "'{'";
  case TokenKind::TK_RBrace:
    return "'}'";
  case TokenKind::TK_Semi:
    return "';'";
  case TokenKind::TK_Comma:
    return "','";
  case TokenKind::TK_Dot:
    return "'.'";
  case TokenKind::TK_Question:
    return "'?'";
  case TokenKind::TK_Colon:
    return "':'";
  case TokenKind::TK_Plus:
    return "'+'";
  case TokenKind::TK_Minus:
    return "'-'";
  case TokenKind::TK_Star:
    return "'*'";
  case TokenKind::TK_Slash:
    return "'/'";
  case TokenKind::TK_Percent:
    return "'%'";
  case TokenKind::TK_Assign:
    return "'='";
  case TokenKind::TK_PlusAssign:
    return "'+='";
  case TokenKind::TK_MinusAssign:
    return "'-='";
  case TokenKind::TK_StarAssign:
    return "'*='";
  case TokenKind::TK_SlashAssign:
    return "'/='";
  case TokenKind::TK_EqEq:
    return "'=='";
  case TokenKind::TK_NotEq:
    return "'!='";
  case TokenKind::TK_Less:
    return "'<'";
  case TokenKind::TK_LessEq:
    return "'<='";
  case TokenKind::TK_Greater:
    return "'>'";
  case TokenKind::TK_GreaterEq:
    return "'>='";
  case TokenKind::TK_AmpAmp:
    return "'&&'";
  case TokenKind::TK_PipePipe:
    return "'||'";
  case TokenKind::TK_Bang:
    return "'!'";
  }
  return "<unknown token>";
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start(Line, Column);
      advance();
      advance();
      bool Closed = false;
      while (Pos < Source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();

  bool IsFloat = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    unsigned Ahead = 1;
    if (peek(1) == '+' || peek(1) == '-')
      Ahead = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(Ahead)))) {
      IsFloat = true;
      while (Ahead-- > 0)
        advance();
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
  }

  std::string Spelling(Source.substr(Start, Pos - Start));
  if (peek() == 'f' || peek() == 'F') {
    IsFloat = true;
    advance();
  }

  Token T;
  T.Loc = Loc;
  if (IsFloat) {
    T.Kind = TokenKind::TK_FloatLiteral;
    T.FloatValue = std::strtof(Spelling.c_str(), nullptr);
  } else {
    T.Kind = TokenKind::TK_IntLiteral;
    long Value = std::strtol(Spelling.c_str(), nullptr, 10);
    if (Value > INT32_MAX) {
      Diags.error(Loc, "integer literal '" + Spelling + "' overflows int");
      Value = INT32_MAX;
    }
    T.IntValue = static_cast<int32_t>(Value);
  }
  return T;
}

Token Lexer::lexIdentifier(SourceLoc Loc) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"void", TokenKind::TK_KwVoid},     {"bool", TokenKind::TK_KwBool},
      {"int", TokenKind::TK_KwInt},       {"float", TokenKind::TK_KwFloat},
      {"vec2", TokenKind::TK_KwVec2},     {"vec3", TokenKind::TK_KwVec3},
      {"vec4", TokenKind::TK_KwVec4},     {"if", TokenKind::TK_KwIf},
      {"else", TokenKind::TK_KwElse},     {"while", TokenKind::TK_KwWhile},
      {"for", TokenKind::TK_KwFor},       {"return", TokenKind::TK_KwReturn},
      {"true", TokenKind::TK_KwTrue},     {"false", TokenKind::TK_KwFalse},
  };

  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string_view Spelling = Source.substr(Start, Pos - Start);

  auto It = Keywords.find(Spelling);
  Token T;
  T.Loc = Loc;
  if (It != Keywords.end()) {
    T.Kind = It->second;
  } else {
    T.Kind = TokenKind::TK_Identifier;
    T.Text = std::string(Spelling);
  }
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc(Line, Column);
  if (Pos >= Source.size())
    return makeToken(TokenKind::TK_EOF, Loc);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::TK_LParen, Loc);
  case ')':
    return makeToken(TokenKind::TK_RParen, Loc);
  case '{':
    return makeToken(TokenKind::TK_LBrace, Loc);
  case '}':
    return makeToken(TokenKind::TK_RBrace, Loc);
  case ';':
    return makeToken(TokenKind::TK_Semi, Loc);
  case ',':
    return makeToken(TokenKind::TK_Comma, Loc);
  case '.':
    return makeToken(TokenKind::TK_Dot, Loc);
  case '?':
    return makeToken(TokenKind::TK_Question, Loc);
  case ':':
    return makeToken(TokenKind::TK_Colon, Loc);
  case '+':
    return makeToken(match('=') ? TokenKind::TK_PlusAssign
                                : TokenKind::TK_Plus,
                     Loc);
  case '-':
    return makeToken(match('=') ? TokenKind::TK_MinusAssign
                                : TokenKind::TK_Minus,
                     Loc);
  case '*':
    return makeToken(match('=') ? TokenKind::TK_StarAssign
                                : TokenKind::TK_Star,
                     Loc);
  case '/':
    return makeToken(match('=') ? TokenKind::TK_SlashAssign
                                : TokenKind::TK_Slash,
                     Loc);
  case '%':
    return makeToken(TokenKind::TK_Percent, Loc);
  case '=':
    return makeToken(match('=') ? TokenKind::TK_EqEq : TokenKind::TK_Assign,
                     Loc);
  case '!':
    return makeToken(match('=') ? TokenKind::TK_NotEq : TokenKind::TK_Bang,
                     Loc);
  case '<':
    return makeToken(match('=') ? TokenKind::TK_LessEq : TokenKind::TK_Less,
                     Loc);
  case '>':
    return makeToken(match('=') ? TokenKind::TK_GreaterEq
                                : TokenKind::TK_Greater,
                     Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::TK_AmpAmp, Loc);
    break;
  case '|':
    if (match('|'))
      return makeToken(TokenKind::TK_PipePipe, Loc);
    break;
  default:
    break;
  }

  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  Token T = makeToken(TokenKind::TK_Error, Loc);
  T.Text = std::string(1, C);
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::TK_EOF))
      return Tokens;
  }
}
