//===- lang/Stmt.h - Statement AST nodes ------------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement nodes of the dsc AST. The parser desugars `for` loops into
/// `{ init; while (cond) { body; step; } }` and compound assignments into
/// plain assignments, so analyses only see the kinds below. There is no
/// `goto` and no unstructured control flow (the paper's prototype makes the
/// same restriction, which keeps control dependence at join points easy —
/// Section 3.1, case 4).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_STMT_H
#define DATASPEC_LANG_STMT_H

#include "lang/Expr.h"

#include <cstdint>
#include <vector>

namespace dspec {

/// Discriminator for Stmt subclasses (LLVM-style RTTI).
enum class StmtKind : uint8_t {
  SK_Block,
  SK_Decl,
  SK_Assign,
  SK_ExprStmt,
  SK_If,
  SK_While,
  SK_Return,
};

/// Base class of all dsc statements.
class Stmt {
public:
  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;
  virtual ~Stmt() = default;

  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Dense id assigned by the owning ASTContext.
  uint32_t nodeId() const { return NodeId; }
  void setNodeId(uint32_t Id) { NodeId = Id; }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
  uint32_t NodeId = ~0u;
};

/// `{ s1; s2; ... }`.
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<Stmt *> Body, SourceLoc Loc)
      : Stmt(StmtKind::SK_Block, Loc), Body(std::move(Body)) {}

  const std::vector<Stmt *> &body() const { return Body; }
  std::vector<Stmt *> &body() { return Body; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::SK_Block;
  }

private:
  std::vector<Stmt *> Body;
};

/// A local variable declaration, `float x = e;`. A declaration with no
/// initializer zero-initializes the variable; either way it is a
/// definition for the reaching-definitions analysis.
class DeclStmt : public Stmt {
public:
  DeclStmt(VarDecl *Var, Expr *Init, SourceLoc Loc)
      : Stmt(StmtKind::SK_Decl, Loc), Var(Var), Init(Init) {}

  VarDecl *var() const { return Var; }
  Expr *init() const { return Init; }
  void setInit(Expr *E) { Init = E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::SK_Decl; }

private:
  VarDecl *Var;
  Expr *Init; // may be null (zero-initialization)
};

/// An assignment `x = e;`. The target is always a whole variable (dsc has
/// no pointers, arrays, or component lvalues). Assignments inserted by the
/// Section 4.1 join-normalization pass are flagged as phi copies; the
/// caching analysis only allows caching a bare variable reference when it
/// is the right-hand side of such a copy.
class AssignStmt : public Stmt {
public:
  AssignStmt(std::string TargetName, Expr *Value, SourceLoc Loc)
      : Stmt(StmtKind::SK_Assign, Loc), TargetName(std::move(TargetName)),
        Value(Value) {}

  const std::string &targetName() const { return TargetName; }
  Expr *value() const { return Value; }
  void setValue(Expr *E) { Value = E; }

  VarDecl *target() const { return Target; }
  void setTarget(VarDecl *D) { Target = D; }

  bool isPhiCopy() const { return PhiCopy; }
  void setPhiCopy(bool Value) { PhiCopy = Value; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::SK_Assign;
  }

private:
  std::string TargetName;
  Expr *Value;
  VarDecl *Target = nullptr;
  bool PhiCopy = false;
};

/// An expression evaluated for its effect, `dsc_trace(x);`.
class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLoc Loc)
      : Stmt(StmtKind::SK_ExprStmt, Loc), Inner(E) {}

  Expr *expr() const { return Inner; }
  void setExpr(Expr *E) { Inner = E; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::SK_ExprStmt;
  }

private:
  Expr *Inner;
};

/// `if (c) then else`.
class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(StmtKind::SK_If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; }
  void setCond(Expr *E) { Cond = E; }
  void setThenStmt(Stmt *S) { Then = S; }
  void setElseStmt(Stmt *S) { Else = S; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::SK_If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; // may be null
};

/// `while (c) body`.
class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(StmtKind::SK_While, Loc), Cond(Cond), Body(Body) {}

  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  void setCond(Expr *E) { Cond = E; }
  void setBody(Stmt *S) { Body = S; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::SK_While;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

/// `return e;` (or `return;` in a void fragment). Return statements always
/// appear in the cache reader — the reader must produce the fragment's
/// result — so the caching analysis labels them Dynamic unconditionally.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLoc Loc)
      : Stmt(StmtKind::SK_Return, Loc), Value(Value) {}

  Expr *value() const { return Value; }
  void setValue(Expr *E) { Value = E; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::SK_Return;
  }

private:
  Expr *Value; // may be null
};

} // namespace dspec

#endif // DATASPEC_LANG_STMT_H
