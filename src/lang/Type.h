//===- lang/Type.h - dsc type system ----------------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dsc language's types. The language is a C subset (per the paper,
/// no pointers and no goto) extended with small vector types so shaders can
/// be written naturally. Types are value objects — there is only a fixed,
/// closed set of them. Sizes drive cache-byte accounting (Figure 8 of the
/// paper): int/float/bool are 4 bytes, vecN is 4*N bytes.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_TYPE_H
#define DATASPEC_LANG_TYPE_H

#include <cassert>
#include <cstdint>

namespace dspec {

/// Discriminator for the closed set of dsc types.
enum class TypeKind : uint8_t {
  TK_Void,
  TK_Bool,
  TK_Int,
  TK_Float,
  TK_Vec2,
  TK_Vec3,
  TK_Vec4,
};

/// A dsc type. Cheap value object; compare with ==.
class Type {
public:
  Type() : Kind(TypeKind::TK_Void) {}
  explicit Type(TypeKind Kind) : Kind(Kind) {}

  static Type voidTy() { return Type(TypeKind::TK_Void); }
  static Type boolTy() { return Type(TypeKind::TK_Bool); }
  static Type intTy() { return Type(TypeKind::TK_Int); }
  static Type floatTy() { return Type(TypeKind::TK_Float); }
  static Type vec2Ty() { return Type(TypeKind::TK_Vec2); }
  static Type vec3Ty() { return Type(TypeKind::TK_Vec3); }
  static Type vec4Ty() { return Type(TypeKind::TK_Vec4); }

  /// The vector type with \p Width float components (2..4).
  static Type vecTy(unsigned Width) {
    assert(Width >= 2 && Width <= 4 && "invalid vector width");
    switch (Width) {
    case 2:
      return vec2Ty();
    case 3:
      return vec3Ty();
    default:
      return vec4Ty();
    }
  }

  TypeKind kind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::TK_Void; }
  bool isBool() const { return Kind == TypeKind::TK_Bool; }
  bool isInt() const { return Kind == TypeKind::TK_Int; }
  bool isFloat() const { return Kind == TypeKind::TK_Float; }
  bool isScalar() const { return isBool() || isInt() || isFloat(); }
  bool isNumericScalar() const { return isInt() || isFloat(); }
  bool isVector() const {
    return Kind == TypeKind::TK_Vec2 || Kind == TypeKind::TK_Vec3 ||
           Kind == TypeKind::TK_Vec4;
  }
  bool isNumeric() const { return isNumericScalar() || isVector(); }

  /// Number of float components for vector types (2..4).
  unsigned vectorWidth() const {
    assert(isVector() && "vectorWidth on non-vector type");
    switch (Kind) {
    case TypeKind::TK_Vec2:
      return 2;
    case TypeKind::TK_Vec3:
      return 3;
    default:
      return 4;
    }
  }

  /// Storage size in bytes; drives cache-size accounting.
  unsigned sizeInBytes() const {
    switch (Kind) {
    case TypeKind::TK_Void:
      return 0;
    case TypeKind::TK_Bool:
    case TypeKind::TK_Int:
    case TypeKind::TK_Float:
      return 4;
    case TypeKind::TK_Vec2:
      return 8;
    case TypeKind::TK_Vec3:
      return 12;
    case TypeKind::TK_Vec4:
      return 16;
    }
    return 0;
  }

  /// Source-level spelling.
  const char *name() const {
    switch (Kind) {
    case TypeKind::TK_Void:
      return "void";
    case TypeKind::TK_Bool:
      return "bool";
    case TypeKind::TK_Int:
      return "int";
    case TypeKind::TK_Float:
      return "float";
    case TypeKind::TK_Vec2:
      return "vec2";
    case TypeKind::TK_Vec3:
      return "vec3";
    case TypeKind::TK_Vec4:
      return "vec4";
    }
    return "<invalid>";
  }

  bool operator==(const Type &RHS) const { return Kind == RHS.Kind; }
  bool operator!=(const Type &RHS) const { return Kind != RHS.Kind; }

private:
  TypeKind Kind;
};

/// Result of the usual arithmetic conversion between two numeric scalar
/// types: float wins over int.
inline Type promoteNumeric(Type A, Type B) {
  assert(A.isNumericScalar() && B.isNumericScalar());
  if (A.isFloat() || B.isFloat())
    return Type::floatTy();
  return Type::intTy();
}

/// True if a value of type \p From may be implicitly converted to \p To.
/// The only implicit conversion in dsc is int -> float.
inline bool isImplicitlyConvertible(Type From, Type To) {
  if (From == To)
    return true;
  return From.isInt() && To.isFloat();
}

} // namespace dspec

#endif // DATASPEC_LANG_TYPE_H
