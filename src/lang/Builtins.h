//===- lang/Builtins.h - Builtin function registry --------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dsc builtin function library. The paper's shaders "invoke a small
/// mathematical library that supports vector and matrix operations as well
/// as noise functions"; this registry declares that library. Sema resolves
/// calls against it (with int->float promotion), the cost model consults the
/// per-builtin static cost (Section 4.3 of the paper), and the caching
/// analysis consults the global-effect flag (Rule 2 of Figure 3). The VM
/// implements the semantics in vm/Builtins.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_BUILTINS_H
#define DATASPEC_LANG_BUILTINS_H

#include "lang/Type.h"

#include <string_view>
#include <vector>

namespace dspec {

/// Every builtin overload gets its own identifier.
enum class BuiltinId : uint16_t {
  // Scalar math.
  BI_SqrtF,
  BI_AbsF,
  BI_AbsI,
  BI_FloorF,
  BI_CeilF,
  BI_FractF,
  BI_SinF,
  BI_CosF,
  BI_TanF,
  BI_ExpF,
  BI_LogF,
  BI_PowF,
  BI_MinF,
  BI_MinI,
  BI_MaxF,
  BI_MaxI,
  BI_ClampF,
  BI_MixF,
  BI_StepF,
  BI_SmoothStepF,
  BI_ModF,
  BI_ToInt,
  BI_ToFloat,
  // Vector constructors.
  BI_Vec2,
  BI_Vec3,
  BI_Vec3Splat,
  BI_Vec4,
  BI_Vec4FromVec3,
  // Vector operations.
  BI_DotV2,
  BI_DotV3,
  BI_DotV4,
  BI_CrossV3,
  BI_LengthV2,
  BI_LengthV3,
  BI_LengthV4,
  BI_NormalizeV2,
  BI_NormalizeV3,
  BI_NormalizeV4,
  BI_DistanceV3,
  BI_ReflectV3,
  BI_FaceForwardV3,
  BI_MixV2,
  BI_MixV3,
  BI_MixV4,
  BI_ClampV3,
  BI_MinV3,
  BI_MaxV3,
  // Matrix-style transforms (the "matrix operations" of the paper's
  // math library, exposed as rotation transforms).
  BI_RotateXV3,
  BI_RotateYV3,
  BI_RotateZV3,
  // Noise functions.
  BI_Noise1,
  BI_Noise2,
  BI_Noise3,
  BI_VNoise3,
  BI_Fbm,
  BI_Turbulence,
  // Effectful builtins; these exist so Rule 2 (global effects) of the
  // caching analysis has real coverage.
  BI_Trace,
  BI_Clock,
};

/// Static description of one builtin overload.
struct BuiltinInfo {
  BuiltinId Id;
  const char *Name;
  Type ResultType;
  std::vector<Type> ParamTypes;
  /// Static execution-cost estimate used by the Section 4.3 cost model.
  unsigned Cost;
  /// True if the builtin reads or writes global state (I/O, clocks);
  /// such calls are forced Dynamic by Rule 2 of Figure 3.
  bool HasGlobalEffect;
};

/// All registered builtins, in BuiltinId order.
const std::vector<BuiltinInfo> &allBuiltins();

/// Description of a specific builtin.
const BuiltinInfo &getBuiltinInfo(BuiltinId Id);

/// Finds the overload of \p Name callable with \p ArgTypes, allowing
/// int->float promotion. Returns null if there is no match. Exact matches
/// are preferred over promoted matches.
const BuiltinInfo *lookupBuiltin(std::string_view Name,
                                 const std::vector<Type> &ArgTypes);

/// True if at least one overload with this name exists (used for "unknown
/// function" vs "no matching overload" diagnostics).
bool isBuiltinName(std::string_view Name);

} // namespace dspec

#endif // DATASPEC_LANG_BUILTINS_H
