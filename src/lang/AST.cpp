//===- lang/AST.cpp - Out-of-line AST helpers -----------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/ASTWalk.h"
#include "lang/Expr.h"
#include "lang/Function.h"

using namespace dspec;

const char *dspec::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::BO_Add:
    return "+";
  case BinaryOp::BO_Sub:
    return "-";
  case BinaryOp::BO_Mul:
    return "*";
  case BinaryOp::BO_Div:
    return "/";
  case BinaryOp::BO_Mod:
    return "%";
  case BinaryOp::BO_Lt:
    return "<";
  case BinaryOp::BO_Le:
    return "<=";
  case BinaryOp::BO_Gt:
    return ">";
  case BinaryOp::BO_Ge:
    return ">=";
  case BinaryOp::BO_Eq:
    return "==";
  case BinaryOp::BO_Ne:
    return "!=";
  case BinaryOp::BO_And:
    return "&&";
  case BinaryOp::BO_Or:
    return "||";
  }
  return "?";
}

unsigned dspec::countTerms(Stmt *S) {
  unsigned Count = 0;
  walkStmts(S, [&](Stmt *Sub) {
    ++Count;
    forEachExprOfStmt(Sub, [&](Expr *E) {
      walkExpr(E, [&](Expr *) { ++Count; });
    });
  });
  return Count;
}

unsigned dspec::countTerms(Function *F) { return countTerms(F->body()); }
