//===- lang/ASTCloner.cpp - Deep AST cloning -------------------------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/ASTCloner.h"

#include "support/Casting.h"

using namespace dspec;

Expr *ASTCloner::cloneExprStructure(Expr *E) {
  Expr *Out = nullptr;
  switch (E->kind()) {
  case ExprKind::EK_IntLiteral:
    Out = Ctx.create<IntLiteralExpr>(cast<IntLiteralExpr>(E)->value(),
                                     E->loc());
    break;
  case ExprKind::EK_FloatLiteral:
    Out = Ctx.create<FloatLiteralExpr>(cast<FloatLiteralExpr>(E)->value(),
                                       E->loc());
    break;
  case ExprKind::EK_BoolLiteral:
    Out = Ctx.create<BoolLiteralExpr>(cast<BoolLiteralExpr>(E)->value(),
                                      E->loc());
    break;
  case ExprKind::EK_VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    auto *NewRef = Ctx.create<VarRefExpr>(Ref->name(), E->loc());
    if (Ref->decl())
      NewRef->setDecl(lookupDecl(Ref->decl()));
    Out = NewRef;
    break;
  }
  case ExprKind::EK_Unary: {
    auto *U = cast<UnaryExpr>(E);
    Out = Ctx.create<UnaryExpr>(U->op(), cloneExpr(U->operand()), E->loc());
    break;
  }
  case ExprKind::EK_Binary: {
    auto *B = cast<BinaryExpr>(E);
    Out = Ctx.create<BinaryExpr>(B->op(), cloneExpr(B->lhs()),
                                 cloneExpr(B->rhs()), E->loc());
    break;
  }
  case ExprKind::EK_Cond: {
    auto *C = cast<CondExpr>(E);
    Out = Ctx.create<CondExpr>(cloneExpr(C->cond()), cloneExpr(C->trueExpr()),
                               cloneExpr(C->falseExpr()), E->loc());
    break;
  }
  case ExprKind::EK_Call: {
    auto *Call = cast<CallExpr>(E);
    std::vector<Expr *> Args;
    Args.reserve(Call->args().size());
    for (Expr *Arg : Call->args())
      Args.push_back(cloneExpr(Arg));
    auto *NewCall =
        Ctx.create<CallExpr>(Call->callee(), std::move(Args), E->loc());
    if (Call->isResolved())
      NewCall->setBuiltin(Call->builtin());
    Out = NewCall;
    break;
  }
  case ExprKind::EK_Member: {
    auto *M = cast<MemberExpr>(E);
    Out = Ctx.create<MemberExpr>(cloneExpr(M->base()), M->componentIndex(),
                                 E->loc());
    break;
  }
  case ExprKind::EK_CacheRead: {
    auto *Read = cast<CacheReadExpr>(E);
    Out = Ctx.create<CacheReadExpr>(Read->slot(), Read->type(), E->loc(),
                                    Read->byteOffset());
    break;
  }
  case ExprKind::EK_CacheStore: {
    auto *Store = cast<CacheStoreExpr>(E);
    Out = Ctx.create<CacheStoreExpr>(Store->slot(),
                                     cloneExpr(Store->operand()), E->loc(),
                                     Store->byteOffset());
    break;
  }
  }
  Out->setType(E->type());
  return Out;
}

Expr *ASTCloner::cloneExpr(Expr *E) { return cloneExprStructure(E); }

Stmt *ASTCloner::cloneStmt(Stmt *S) {
  switch (S->kind()) {
  case StmtKind::SK_Block: {
    auto *Block = cast<BlockStmt>(S);
    std::vector<Stmt *> Body;
    Body.reserve(Block->body().size());
    for (Stmt *Child : Block->body())
      if (Stmt *Cloned = cloneStmt(Child))
        Body.push_back(Cloned);
    return Ctx.create<BlockStmt>(std::move(Body), S->loc());
  }
  case StmtKind::SK_Decl: {
    auto *Decl = cast<DeclStmt>(S);
    VarDecl *NewVar =
        Ctx.createVarDecl(Decl->var()->kind(), Decl->var()->name(),
                          Decl->var()->type(), Decl->var()->loc());
    mapDecl(Decl->var(), NewVar);
    Expr *Init = Decl->init() ? cloneExpr(Decl->init()) : nullptr;
    return Ctx.create<DeclStmt>(NewVar, Init, S->loc());
  }
  case StmtKind::SK_Assign: {
    auto *Assign = cast<AssignStmt>(S);
    auto *NewAssign = Ctx.create<AssignStmt>(
        Assign->targetName(), cloneExpr(Assign->value()), S->loc());
    if (Assign->target())
      NewAssign->setTarget(lookupDecl(Assign->target()));
    NewAssign->setPhiCopy(Assign->isPhiCopy());
    return NewAssign;
  }
  case StmtKind::SK_ExprStmt:
    return Ctx.create<ExprStmt>(cloneExpr(cast<ExprStmt>(S)->expr()),
                                S->loc());
  case StmtKind::SK_If: {
    auto *If = cast<IfStmt>(S);
    Expr *Cond = cloneExpr(If->cond());
    Stmt *Then = cloneStmt(If->thenStmt());
    Stmt *Else = If->elseStmt() ? cloneStmt(If->elseStmt()) : nullptr;
    if (!Then)
      Then = Ctx.create<BlockStmt>(std::vector<Stmt *>(), S->loc());
    return Ctx.create<IfStmt>(Cond, Then, Else, S->loc());
  }
  case StmtKind::SK_While: {
    auto *While = cast<WhileStmt>(S);
    Expr *Cond = cloneExpr(While->cond());
    Stmt *Body = cloneStmt(While->body());
    if (!Body)
      Body = Ctx.create<BlockStmt>(std::vector<Stmt *>(), S->loc());
    return Ctx.create<WhileStmt>(Cond, Body, S->loc());
  }
  case StmtKind::SK_Return: {
    auto *Ret = cast<ReturnStmt>(S);
    Expr *Value = Ret->value() ? cloneExpr(Ret->value()) : nullptr;
    return Ctx.create<ReturnStmt>(Value, S->loc());
  }
  }
  return nullptr;
}

Function *ASTCloner::cloneFunction(Function *F, std::string NewName) {
  std::vector<VarDecl *> Params;
  Params.reserve(F->params().size());
  for (VarDecl *P : F->params()) {
    VarDecl *NewParam = Ctx.createVarDecl(VarDecl::DeclKind::DK_Param,
                                          P->name(), P->type(), P->loc());
    NewParam->setParamIndex(P->paramIndex());
    mapDecl(P, NewParam);
    Params.push_back(NewParam);
  }
  Stmt *Body = cloneStmt(F->body());
  if (!Body)
    Body = Ctx.create<BlockStmt>(std::vector<Stmt *>(), F->loc());
  return Ctx.createTopLevel<Function>(std::move(NewName), F->returnType(),
                                      std::move(Params),
                                      cast<BlockStmt>(Body), F->loc());
}
