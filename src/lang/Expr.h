//===- lang/Expr.h - Expression AST nodes -----------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression nodes of the dsc AST. Nodes are arena-allocated by an
/// ASTContext, which also assigns each node a dense integer id; analyses
/// store per-node facts in vectors indexed by those ids.
///
/// Two node kinds exist only in specializer output: CacheReadExpr (the
/// reader's `cache->slotN`) and CacheStoreExpr (the loader's
/// `cache->slotN = (...)`, which evaluates its operand, stores it, and
/// yields it) — see Figure 2 of the paper.
///
/// Note on semantics: `&&`, `||`, and `?:` are *strict* in dsc (both sides
/// always evaluate). This keeps evaluation of any term unconditional within
/// its guarding statements, which is what the caching analysis's Rule 3
/// reasons about.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_EXPR_H
#define DATASPEC_LANG_EXPR_H

#include "lang/Decl.h"
#include "lang/Builtins.h"
#include "lang/Type.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace dspec {

/// Discriminator for Expr subclasses (LLVM-style RTTI).
enum class ExprKind : uint8_t {
  EK_IntLiteral,
  EK_FloatLiteral,
  EK_BoolLiteral,
  EK_VarRef,
  EK_Unary,
  EK_Binary,
  EK_Cond,
  EK_Call,
  EK_Member,
  EK_CacheRead,
  EK_CacheStore,
};

/// Base class of all dsc expressions.
class Expr {
public:
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Dense id assigned by the owning ASTContext.
  uint32_t nodeId() const { return NodeId; }
  void setNodeId(uint32_t Id) { NodeId = Id; }

  /// The expression's type; set by Sema (or by the creating transform).
  Type type() const { return ExprType; }
  void setType(Type T) { ExprType = T; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
  uint32_t NodeId = ~0u;
  Type ExprType;
};

/// An integer literal, e.g. `42`.
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(int32_t Value, SourceLoc Loc)
      : Expr(ExprKind::EK_IntLiteral, Loc), Value(Value) {}

  int32_t value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_IntLiteral;
  }

private:
  int32_t Value;
};

/// A floating point literal, e.g. `1.5`.
class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(float Value, SourceLoc Loc)
      : Expr(ExprKind::EK_FloatLiteral, Loc), Value(Value) {}

  float value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_FloatLiteral;
  }

private:
  float Value;
};

/// `true` or `false`.
class BoolLiteralExpr : public Expr {
public:
  BoolLiteralExpr(bool Value, SourceLoc Loc)
      : Expr(ExprKind::EK_BoolLiteral, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_BoolLiteral;
  }

private:
  bool Value;
};

/// A reference to a parameter or local variable. The decl is resolved by
/// Sema; until then only the spelling is available.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::EK_VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  VarDecl *decl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_VarRef;
  }

private:
  std::string Name;
  VarDecl *Decl = nullptr;
};

/// Unary operators.
enum class UnaryOp : uint8_t {
  UO_Neg,
  UO_Not,
};

/// `-x` or `!x`.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Operand, SourceLoc Loc)
      : Expr(ExprKind::EK_Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }
  void setOperand(Expr *E) { Operand = E; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_Unary;
  }

private:
  UnaryOp Op;
  Expr *Operand;
};

/// Binary operators. `&&` and `||` are strict (see file comment).
enum class BinaryOp : uint8_t {
  BO_Add,
  BO_Sub,
  BO_Mul,
  BO_Div,
  BO_Mod,
  BO_Lt,
  BO_Le,
  BO_Gt,
  BO_Ge,
  BO_Eq,
  BO_Ne,
  BO_And,
  BO_Or,
};

/// Returns the source spelling of \p Op (e.g. "+").
const char *binaryOpSpelling(BinaryOp Op);

/// True for `+` and `*`, the operators the Section 4.2 reassociation pass
/// may rebalance.
inline bool isAssociativeOp(BinaryOp Op) {
  return Op == BinaryOp::BO_Add || Op == BinaryOp::BO_Mul;
}

/// True for comparison operators (result type bool).
inline bool isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::BO_Lt:
  case BinaryOp::BO_Le:
  case BinaryOp::BO_Gt:
  case BinaryOp::BO_Ge:
  case BinaryOp::BO_Eq:
  case BinaryOp::BO_Ne:
    return true;
  default:
    return false;
  }
}

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Expr(ExprKind::EK_Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }
  void setLHS(Expr *E) { LHS = E; }
  void setRHS(Expr *E) { RHS = E; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_Binary;
  }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// The conditional expression `c ? a : b` (strict: all three evaluate).
class CondExpr : public Expr {
public:
  CondExpr(Expr *Cond, Expr *TrueExpr, Expr *FalseExpr, SourceLoc Loc)
      : Expr(ExprKind::EK_Cond, Loc), Cond(Cond), TrueExpr(TrueExpr),
        FalseExpr(FalseExpr) {}

  Expr *cond() const { return Cond; }
  Expr *trueExpr() const { return TrueExpr; }
  Expr *falseExpr() const { return FalseExpr; }
  void setCond(Expr *E) { Cond = E; }
  void setTrueExpr(Expr *E) { TrueExpr = E; }
  void setFalseExpr(Expr *E) { FalseExpr = E; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::EK_Cond; }

private:
  Expr *Cond;
  Expr *TrueExpr;
  Expr *FalseExpr;
};

/// A call to a builtin function (dsc fragments are single nonrecursive
/// procedures, as in the paper's prototype, so all callees are builtins).
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<Expr *> Args, SourceLoc Loc)
      : Expr(ExprKind::EK_Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }
  std::vector<Expr *> &args() { return Args; }

  /// The resolved builtin; valid only after Sema.
  BuiltinId builtin() const {
    assert(Resolved && "call not resolved by Sema");
    return Builtin;
  }
  bool isResolved() const { return Resolved; }
  void setBuiltin(BuiltinId Id) {
    Builtin = Id;
    Resolved = true;
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::EK_Call; }

private:
  std::string Callee;
  std::vector<Expr *> Args;
  BuiltinId Builtin = BuiltinId::BI_SqrtF;
  bool Resolved = false;
};

/// Component access on a vector value: `v.x`, `v.y`, `v.z`, `v.w`.
class MemberExpr : public Expr {
public:
  MemberExpr(Expr *Base, unsigned ComponentIndex, SourceLoc Loc)
      : Expr(ExprKind::EK_Member, Loc), Base(Base),
        ComponentIndex(ComponentIndex) {
    assert(ComponentIndex < 4 && "invalid vector component");
  }

  Expr *base() const { return Base; }
  void setBase(Expr *E) { Base = E; }
  unsigned componentIndex() const { return ComponentIndex; }

  /// The component's source spelling ('x', 'y', 'z', or 'w').
  char componentName() const { return "xyzw"[ComponentIndex]; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_Member;
  }

private:
  Expr *Base;
  unsigned ComponentIndex;
};

/// Reader-side access to a cache slot: `cache->slotN`. Only created by the
/// splitting transformation.
class CacheReadExpr : public Expr {
public:
  CacheReadExpr(unsigned Slot, Type SlotType, SourceLoc Loc,
                unsigned ByteOffset = 0)
      : Expr(ExprKind::EK_CacheRead, Loc), Slot(Slot),
        ByteOffset(ByteOffset) {
    setType(SlotType);
  }

  unsigned slot() const { return Slot; }

  /// Byte offset of the slot in the packed cache buffer, as assigned by
  /// the specialization's CacheLayout (the authoritative runtime layout).
  unsigned byteOffset() const { return ByteOffset; }
  void setByteOffset(unsigned Offset) { ByteOffset = Offset; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_CacheRead;
  }

private:
  unsigned Slot;
  unsigned ByteOffset;
};

/// Loader-side store to a cache slot: `cache->slotN = (operand)`. Evaluates
/// the operand, stores it into the slot, and yields the value. Only created
/// by the splitting transformation.
class CacheStoreExpr : public Expr {
public:
  CacheStoreExpr(unsigned Slot, Expr *Operand, SourceLoc Loc,
                 unsigned ByteOffset = 0)
      : Expr(ExprKind::EK_CacheStore, Loc), Slot(Slot), Operand(Operand),
        ByteOffset(ByteOffset) {
    setType(Operand->type());
  }

  unsigned slot() const { return Slot; }
  Expr *operand() const { return Operand; }
  void setOperand(Expr *E) { Operand = E; }

  /// Byte offset of the slot in the packed cache buffer, as assigned by
  /// the specialization's CacheLayout (the authoritative runtime layout).
  unsigned byteOffset() const { return ByteOffset; }
  void setByteOffset(unsigned Offset) { ByteOffset = Offset; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::EK_CacheStore;
  }

private:
  unsigned Slot;
  Expr *Operand;
  unsigned ByteOffset;
};

} // namespace dspec

#endif // DATASPEC_LANG_EXPR_H
