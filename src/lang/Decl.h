//===- lang/Decl.h - Variable declarations ----------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable declarations. Because dsc has no pointers or arrays, a VarDecl
/// is the only kind of storage and identity of a VarDecl object *is* the
/// identity of the variable (Sema resolves every reference to its decl).
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_DECL_H
#define DATASPEC_LANG_DECL_H

#include "lang/Type.h"
#include "support/SourceLoc.h"

#include <string>

namespace dspec {

/// A parameter or local variable.
class VarDecl {
public:
  enum class DeclKind : uint8_t {
    DK_Param,
    DK_Local,
  };

  VarDecl(DeclKind Kind, std::string Name, Type VarType, SourceLoc Loc)
      : Kind(Kind), Name(std::move(Name)), VarType(VarType), Loc(Loc) {}

  DeclKind kind() const { return Kind; }
  bool isParam() const { return Kind == DeclKind::DK_Param; }
  bool isLocal() const { return Kind == DeclKind::DK_Local; }

  const std::string &name() const { return Name; }
  Type type() const { return VarType; }
  SourceLoc loc() const { return Loc; }

  /// Index of a parameter within its function's parameter list; set by
  /// Sema. Meaningless for locals.
  unsigned paramIndex() const { return ParamIndex; }
  void setParamIndex(unsigned Index) { ParamIndex = Index; }

private:
  DeclKind Kind;
  std::string Name;
  Type VarType;
  SourceLoc Loc;
  unsigned ParamIndex = ~0u;
};

} // namespace dspec

#endif // DATASPEC_LANG_DECL_H
