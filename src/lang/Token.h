//===- lang/Token.h - Lexical tokens ----------------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the Lexer.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_TOKEN_H
#define DATASPEC_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace dspec {

/// All dsc token kinds.
enum class TokenKind : uint8_t {
  TK_EOF,
  TK_Error,
  TK_Identifier,
  TK_IntLiteral,
  TK_FloatLiteral,
  // Keywords.
  TK_KwVoid,
  TK_KwBool,
  TK_KwInt,
  TK_KwFloat,
  TK_KwVec2,
  TK_KwVec3,
  TK_KwVec4,
  TK_KwIf,
  TK_KwElse,
  TK_KwWhile,
  TK_KwFor,
  TK_KwReturn,
  TK_KwTrue,
  TK_KwFalse,
  // Punctuation.
  TK_LParen,
  TK_RParen,
  TK_LBrace,
  TK_RBrace,
  TK_Semi,
  TK_Comma,
  TK_Dot,
  TK_Question,
  TK_Colon,
  // Operators.
  TK_Plus,
  TK_Minus,
  TK_Star,
  TK_Slash,
  TK_Percent,
  TK_Assign,
  TK_PlusAssign,
  TK_MinusAssign,
  TK_StarAssign,
  TK_SlashAssign,
  TK_EqEq,
  TK_NotEq,
  TK_Less,
  TK_LessEq,
  TK_Greater,
  TK_GreaterEq,
  TK_AmpAmp,
  TK_PipePipe,
  TK_Bang,
};

/// Human-readable name of a token kind, for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::TK_EOF;
  SourceLoc Loc;
  /// Spelling for identifiers and error tokens.
  std::string Text;
  /// Value for TK_IntLiteral.
  int32_t IntValue = 0;
  /// Value for TK_FloatLiteral.
  float FloatValue = 0.0f;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace dspec

#endif // DATASPEC_LANG_TOKEN_H
