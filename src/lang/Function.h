//===- lang/Function.h - Functions and programs -----------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function and Program nodes. A dsc "fragment" (the unit the specializer
/// operates on, in the paper's terminology) is a single nonrecursive
/// function whose only callees are builtins.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_FUNCTION_H
#define DATASPEC_LANG_FUNCTION_H

#include "lang/Stmt.h"

#include <string>
#include <vector>

namespace dspec {

/// A dsc function: name, typed parameters, and a body block.
class Function {
public:
  Function(std::string Name, Type ReturnType, std::vector<VarDecl *> Params,
           BlockStmt *Body, SourceLoc Loc)
      : Name(std::move(Name)), ReturnType(ReturnType),
        Params(std::move(Params)), Body(Body), Loc(Loc) {}

  const std::string &name() const { return Name; }
  Type returnType() const { return ReturnType; }
  const std::vector<VarDecl *> &params() const { return Params; }
  BlockStmt *body() const { return Body; }
  void setBody(BlockStmt *B) { Body = B; }
  SourceLoc loc() const { return Loc; }

  /// Finds a parameter by name; returns null if absent.
  VarDecl *findParam(const std::string &ParamName) const {
    for (VarDecl *P : Params)
      if (P->name() == ParamName)
        return P;
    return nullptr;
  }

private:
  std::string Name;
  Type ReturnType;
  std::vector<VarDecl *> Params;
  BlockStmt *Body;
  SourceLoc Loc;
};

/// A parsed compilation unit: an ordered list of functions.
class Program {
public:
  void addFunction(Function *F) { Functions.push_back(F); }

  const std::vector<Function *> &functions() const { return Functions; }

  /// Finds a function by name; returns null if absent.
  Function *findFunction(const std::string &Name) const {
    for (Function *F : Functions)
      if (F->name() == Name)
        return F;
    return nullptr;
  }

private:
  std::vector<Function *> Functions;
};

} // namespace dspec

#endif // DATASPEC_LANG_FUNCTION_H
