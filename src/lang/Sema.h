//===- lang/Sema.h - Semantic analysis --------------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for dsc: block-scoped name resolution (binding every
/// VarRefExpr and AssignStmt to a VarDecl), type checking, and builtin
/// overload resolution. Types are recorded directly on expression nodes.
///
/// Conversion rules: the only implicit conversion is int -> float, applied
/// at binary operands (usual promotion), assignments, initializers, builtin
/// arguments, and return values. The bytecode compiler materializes the
/// conversions from the static types; no cast nodes are inserted.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_SEMA_H
#define DATASPEC_LANG_SEMA_H

#include "lang/ASTContext.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace dspec {

/// Resolves names and checks types for a whole Program (or a single
/// Function, e.g. one synthesized by a transformation).
class Sema {
public:
  Sema(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Analyzes every function in \p Prog. Returns true on success.
  bool run(Program *Prog);

  /// Analyzes a single function. Returns true on success.
  bool runOnFunction(Function *F);

private:
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  VarDecl *lookup(const std::string &Name) const;
  bool declare(VarDecl *Var);

  bool checkStmt(Stmt *S);
  /// Type checks \p E; returns false (and reports) on error. On success the
  /// node's type has been set.
  bool checkExpr(Expr *E);
  bool checkCall(CallExpr *Call);
  bool checkBinary(BinaryExpr *Bin);

  /// Reports an error if \p From cannot implicitly convert to \p To.
  bool requireConvertible(Type From, Type To, SourceLoc Loc,
                          const char *Context);

  DiagnosticEngine &Diags;
  std::vector<std::unordered_map<std::string, VarDecl *>> Scopes;
  Function *CurrentFunction = nullptr;
};

} // namespace dspec

#endif // DATASPEC_LANG_SEMA_H
