//===- lang/ASTCloner.h - Deep AST cloning ----------------------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-clones AST subtrees. Variable declarations are remapped through a
/// decl map: parameters are remapped up front (callers register them), and
/// local declarations get fresh decls as their DeclStmt is encountered.
/// The expression hook `cloneExpr` is virtual so transformations (notably
/// the splitting transformation) can substitute nodes mid-clone.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_ASTCLONER_H
#define DATASPEC_LANG_ASTCLONER_H

#include "lang/ASTContext.h"

#include <string>
#include <unordered_map>

namespace dspec {

/// Clones expressions, statements, and whole functions into \p Ctx.
class ASTCloner {
public:
  explicit ASTCloner(ASTContext &Ctx) : Ctx(Ctx) {}
  virtual ~ASTCloner() = default;

  /// Registers a decl substitution applied to every cloned reference.
  void mapDecl(VarDecl *From, VarDecl *To) { DeclMap[From] = To; }

  /// The substitution for \p D (or \p D itself when unmapped).
  VarDecl *lookupDecl(VarDecl *D) const {
    auto It = DeclMap.find(D);
    return It == DeclMap.end() ? D : It->second;
  }

  /// Clones an expression subtree. Override to transform while cloning.
  virtual Expr *cloneExpr(Expr *E);

  /// Clones a statement subtree. May return null when a subclass decides
  /// the statement should be dropped (the base implementation never does).
  virtual Stmt *cloneStmt(Stmt *S);

  /// Clones a whole function under a new name, giving it fresh parameter
  /// and local decls.
  Function *cloneFunction(Function *F, std::string NewName);

protected:
  /// Clones the node-kind-specific payload of \p E with already-cloned
  /// children; used by cloneExpr.
  Expr *cloneExprStructure(Expr *E);

  ASTContext &Ctx;
  std::unordered_map<VarDecl *, VarDecl *> DeclMap;
};

} // namespace dspec

#endif // DATASPEC_LANG_ASTCLONER_H
