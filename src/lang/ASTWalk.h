//===- lang/ASTWalk.h - Generic AST traversal helpers -----------*- C++ -*-===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small traversal helpers used by every analysis: enumerate the direct
/// expression/statement children of a node, or walk a whole subtree in
/// preorder. Keeping these in one place means analyses cannot disagree
/// about what a node's children are.
///
//===----------------------------------------------------------------------===//

#ifndef DATASPEC_LANG_ASTWALK_H
#define DATASPEC_LANG_ASTWALK_H

#include "lang/Stmt.h"
#include "support/Casting.h"

namespace dspec {

class Function;

/// Invokes \p Fn on each direct child expression of \p E.
template <typename F> void forEachChildExpr(Expr *E, F &&Fn) {
  switch (E->kind()) {
  case ExprKind::EK_IntLiteral:
  case ExprKind::EK_FloatLiteral:
  case ExprKind::EK_BoolLiteral:
  case ExprKind::EK_VarRef:
  case ExprKind::EK_CacheRead:
    return;
  case ExprKind::EK_Unary:
    Fn(cast<UnaryExpr>(E)->operand());
    return;
  case ExprKind::EK_Binary: {
    auto *B = cast<BinaryExpr>(E);
    Fn(B->lhs());
    Fn(B->rhs());
    return;
  }
  case ExprKind::EK_Cond: {
    auto *C = cast<CondExpr>(E);
    Fn(C->cond());
    Fn(C->trueExpr());
    Fn(C->falseExpr());
    return;
  }
  case ExprKind::EK_Call:
    for (Expr *Arg : cast<CallExpr>(E)->args())
      Fn(Arg);
    return;
  case ExprKind::EK_Member:
    Fn(cast<MemberExpr>(E)->base());
    return;
  case ExprKind::EK_CacheStore:
    Fn(cast<CacheStoreExpr>(E)->operand());
    return;
  }
}

/// Invokes \p Fn on each expression directly hanging off statement \p S
/// (not statements' nested statements' expressions).
template <typename F> void forEachExprOfStmt(Stmt *S, F &&Fn) {
  switch (S->kind()) {
  case StmtKind::SK_Block:
    return;
  case StmtKind::SK_Decl:
    if (Expr *Init = cast<DeclStmt>(S)->init())
      Fn(Init);
    return;
  case StmtKind::SK_Assign:
    Fn(cast<AssignStmt>(S)->value());
    return;
  case StmtKind::SK_ExprStmt:
    Fn(cast<ExprStmt>(S)->expr());
    return;
  case StmtKind::SK_If:
    Fn(cast<IfStmt>(S)->cond());
    return;
  case StmtKind::SK_While:
    Fn(cast<WhileStmt>(S)->cond());
    return;
  case StmtKind::SK_Return:
    if (Expr *Value = cast<ReturnStmt>(S)->value())
      Fn(Value);
    return;
  }
}

/// Invokes \p Fn on each direct child statement of \p S.
template <typename F> void forEachChildStmt(Stmt *S, F &&Fn) {
  switch (S->kind()) {
  case StmtKind::SK_Block:
    for (Stmt *Child : cast<BlockStmt>(S)->body())
      Fn(Child);
    return;
  case StmtKind::SK_If: {
    auto *If = cast<IfStmt>(S);
    Fn(If->thenStmt());
    if (Stmt *Else = If->elseStmt())
      Fn(Else);
    return;
  }
  case StmtKind::SK_While:
    Fn(cast<WhileStmt>(S)->body());
    return;
  case StmtKind::SK_Decl:
  case StmtKind::SK_Assign:
  case StmtKind::SK_ExprStmt:
  case StmtKind::SK_Return:
    return;
  }
}

/// Preorder walk over \p E and every expression below it.
template <typename F> void walkExpr(Expr *E, F &&Fn) {
  Fn(E);
  forEachChildExpr(E, [&](Expr *Child) { walkExpr(Child, Fn); });
}

/// Preorder walk over \p S and every statement below it.
template <typename F> void walkStmts(Stmt *S, F &&Fn) {
  Fn(S);
  forEachChildStmt(S, [&](Stmt *Child) { walkStmts(Child, Fn); });
}

/// Preorder walk over every expression anywhere inside statement \p S.
template <typename F> void walkExprsInStmt(Stmt *S, F &&Fn) {
  walkStmts(S, [&](Stmt *Sub) {
    forEachExprOfStmt(Sub, [&](Expr *E) { walkExpr(E, Fn); });
  });
}

/// Counts AST terms (statements plus expressions) in a statement subtree.
/// Used for the Section 3.3 code-size accounting.
unsigned countTerms(Stmt *S);

/// Counts AST terms in a whole function (body plus nothing else).
unsigned countTerms(Function *F);

} // namespace dspec

#endif // DATASPEC_LANG_ASTWALK_H
