//===- shading/ShaderLab.cpp - Section 5 measurement driver ----------------===//
//
// Part of the dataspec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shading/ShaderLab.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace dspec;

static_assert(ShaderInfo::NumPixelParams == RenderEngine::NumPixelParams,
              "gallery shaders and the engine must agree on the per-pixel "
              "parameter convention");

SpecializedShader::SpecializedShader(CompiledSpecialization Compiled,
                                     const ShaderInfo &Info,
                                     size_t VaryingIndex)
    : Compiled(std::move(Compiled)), Info(Info), VaryingIndex(VaryingIndex) {}

bool SpecializedShader::load(RenderEngine &Engine, const RenderGrid &Grid,
                             const std::vector<float> &Controls,
                             Framebuffer *Out) {
  assert(Controls.size() == Info.Controls.size() &&
         "control vector arity mismatch");
  return Engine.loaderPass(Compiled.LoaderChunk, Compiled.Spec.Layout, Grid,
                           Controls, Arena, Out);
}

bool SpecializedShader::readFrame(RenderEngine &Engine, const RenderGrid &Grid,
                                  const std::vector<float> &Controls,
                                  Framebuffer *Out) {
  assert(Controls.size() == Info.Controls.size() &&
         "control vector arity mismatch");
  return Engine.readerPass(Compiled.ReaderChunk, Grid, Controls, Arena, Out);
}

bool SpecializedShader::originalFrame(RenderEngine &Engine,
                                      const RenderGrid &Grid,
                                      const std::vector<float> &Controls,
                                      Framebuffer *Out) {
  assert(Controls.size() == Info.Controls.size() &&
         "control vector arity mismatch");
  return Engine.plainPass(Compiled.OriginalChunk, Grid, Controls, Out);
}

ShaderLab::ShaderLab(unsigned Width, unsigned Height,
                     unsigned FramesPerMeasurement, unsigned Threads)
    : Grid(Width, Height), Engine(Threads),
      FramesPerMeasurement(FramesPerMeasurement) {}

CompilationUnit *ShaderLab::unitFor(const ShaderInfo &Info) {
  for (auto &[Name, Unit] : Units)
    if (Name == Info.Name)
      return Unit.get();
  auto Unit = parseUnit(Info.Source);
  CompilationUnit *Raw = Unit.get();
  Units.emplace_back(Info.Name, std::move(Unit));
  return Raw;
}

bool ShaderLab::prepare(const ShaderInfo &Info) {
  CompilationUnit *Unit = unitFor(Info);
  if (!Unit->ok()) {
    LastError = "shader '" + Info.Name + "': " + Unit->Diags.str();
    return false;
  }
  return true;
}

std::vector<float> ShaderLab::defaultControls(const ShaderInfo &Info) {
  std::vector<float> Out;
  Out.reserve(Info.Controls.size());
  for (const ControlParam &Param : Info.Controls)
    Out.push_back(Param.Default);
  return Out;
}

std::vector<float> ShaderLab::sweepValues(const ControlParam &Param,
                                          unsigned Count) const {
  std::vector<float> Out;
  Out.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    float T = Count > 1 ? static_cast<float>(I) / (Count - 1) : 0.0f;
    Out.push_back(Param.SweepMin + (Param.SweepMax - Param.SweepMin) * T);
  }
  return Out;
}

std::optional<SpecializedShader>
ShaderLab::specializePartition(const ShaderInfo &Info, size_t VaryingIndex,
                               const SpecializerOptions &Options) {
  assert(VaryingIndex < Info.Controls.size() && "bad control index");
  CompilationUnit *Unit = unitFor(Info);
  if (!Unit->ok()) {
    LastError = "shader '" + Info.Name + "': " + Unit->Diags.str();
    return std::nullopt;
  }
  auto Compiled = specializeAndCompile(
      *Unit, Info.Name, {Info.Controls[VaryingIndex].Name}, Options);
  if (!Compiled) {
    LastError = "specializing '" + Info.Name + "' on '" +
                Info.Controls[VaryingIndex].Name +
                "': " + Unit->Diags.str();
    return std::nullopt;
  }
  return SpecializedShader(std::move(*Compiled), Info, VaryingIndex);
}

namespace {

/// Times one call of \p Body in seconds.
template <typename Fn> double timeSeconds(Fn &&Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

double median(std::vector<double> Samples) {
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

} // namespace

std::optional<PartitionReport>
ShaderLab::measurePartition(const ShaderInfo &Info, size_t VaryingIndex,
                            const SpecializerOptions &Options) {
  auto Spec = specializePartition(Info, VaryingIndex, Options);
  if (!Spec)
    return std::nullopt;

  PartitionReport Report;
  Report.ShaderIndex = Info.Index;
  Report.ShaderName = Info.Name;
  Report.ParamName = Info.Controls[VaryingIndex].Name;
  Report.CacheBytes = Spec->compiled().Spec.Layout.totalBytes();
  Report.CacheSlots = Spec->compiled().Spec.Layout.slotCount();

  std::vector<float> Controls = defaultControls(Info);
  std::vector<float> Sweep =
      sweepValues(Info.Controls[VaryingIndex], FramesPerMeasurement);

  // Warm up and verify one loader pass (also fills the arena).
  if (!Spec->load(Engine, Grid, Controls)) {
    LastError = "loader trapped for '" + Info.Name + "' / '" +
                Report.ParamName + "': " + Engine.lastTrap();
    return std::nullopt;
  }

  std::vector<double> OrigTimes, LoadTimes, ReadTimes;
  for (unsigned Frame = 0; Frame < FramesPerMeasurement; ++Frame) {
    Controls[VaryingIndex] = Sweep[Frame];
    bool OK = true;
    OrigTimes.push_back(timeSeconds(
        [&] { OK &= Spec->originalFrame(Engine, Grid, Controls); }));
    ReadTimes.push_back(
        timeSeconds([&] { OK &= Spec->readFrame(Engine, Grid, Controls); }));
    if (!OK) {
      LastError = "frame trapped for '" + Info.Name + "' / '" +
                  Report.ParamName + "': " + Engine.lastTrap();
      return std::nullopt;
    }
  }
  // Loader timing: reinvoked when the fixed context changes.
  Controls = defaultControls(Info);
  for (unsigned Frame = 0; Frame < FramesPerMeasurement; ++Frame) {
    bool OK = true;
    LoadTimes.push_back(
        timeSeconds([&] { OK &= Spec->load(Engine, Grid, Controls); }));
    if (!OK) {
      LastError = "loader trapped for '" + Info.Name +
                  "': " + Engine.lastTrap();
      return std::nullopt;
    }
  }

  Report.OriginalSeconds = median(OrigTimes);
  Report.LoaderSeconds = median(LoadTimes);
  Report.ReaderSeconds = median(ReadTimes);
  Report.Speedup = Report.OriginalSeconds / Report.ReaderSeconds;
  Report.LoaderOverhead = Report.LoaderSeconds / Report.OriginalSeconds;

  // Break-even: smallest k with loadT + (k-1)*readT <= k*origT. The first
  // use runs the loader (which also produces the frame).
  double LoadT = Report.LoaderSeconds;
  double ReadT = Report.ReaderSeconds;
  double OrigT = Report.OriginalSeconds;
  if (LoadT <= OrigT) {
    Report.BreakevenUses = 1;
  } else if (ReadT < OrigT) {
    double K = (LoadT - ReadT) / (OrigT - ReadT);
    Report.BreakevenUses = static_cast<unsigned>(std::ceil(K - 1e-9));
    if (Report.BreakevenUses < 1)
      Report.BreakevenUses = 1;
    if (Report.BreakevenUses > PartitionReport::BreakevenCap)
      Report.BreakevenUses = PartitionReport::BreakevenCap;
  } else {
    Report.BreakevenUses = PartitionReport::BreakevenCap;
  }
  return Report;
}

std::vector<PartitionReport>
ShaderLab::measureAllPartitions(const SpecializerOptions &Options) {
  std::vector<PartitionReport> Reports;
  for (const ShaderInfo &Info : shaderGallery()) {
    for (size_t Index = 0; Index < Info.Controls.size(); ++Index) {
      auto Report = measurePartition(Info, Index, Options);
      if (Report)
        Reports.push_back(std::move(*Report));
    }
  }
  return Reports;
}
